GO ?= go
BENCH_DIR ?= bench

.PHONY: all build vet test race bench bench-json ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short benchmark pass: one iteration of every benchmark, no unit tests.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable per-strategy report (steps, prune rates, wall time) as
# $(BENCH_DIR)/BENCH_<date>.json.
bench-json:
	$(GO) run ./cmd/benchrun -fig none -maxm 500 -queries 3 -bench-out $(BENCH_DIR)

ci: vet build race bench

clean:
	rm -rf $(BENCH_DIR)
