GO ?= go
BENCH_DIR ?= bench

.PHONY: all build vet lint bce-baseline test race race-concurrency bench bench-json bench-record bench-compare load-record smoke ingest-smoke govulncheck ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repository-specific invariant checks (internal/lint): Tally confinement,
# nil-sink guards, float equality, hot-path allocations, squared-space bounds,
# atomic/plain access mixes, lock ordering, lower-bound admissibility, and the
# BCE baseline. -timing prints per-analyzer finding counts and wall time.
lint:
	$(GO) run ./cmd/lbkeoghvet -timing ./...

# Regenerate the committed bounds-check baseline for //lbkeogh:hotpath
# functions after a deliberate kernel change, then commit the file it names.
bce-baseline:
	$(GO) run ./cmd/lbkeoghvet -bce-update ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the concurrency-heavy packages (server admission and
# session pooling, open-loop load generation, streaming ingest, rolling
# telemetry windows): -count=2 reruns shake out init-order-dependent
# interleavings that a single -race pass can miss.
race-concurrency:
	$(GO) test -race -count=2 ./internal/server/... ./internal/loadgen/... ./internal/stream/... ./internal/obs/...

# Short benchmark pass: one iteration of every benchmark, no unit tests.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Machine-readable per-strategy report (steps, prune rates, wall time) as
# $(BENCH_DIR)/BENCH_<date>.json, plus a disk-resident segment-store block at
# m=100k (ingest throughput, mmap size, index fetch fraction).
# Fails (non-zero, no JSON written) if any strategy's step accounting or the
# segment store's disk-read accounting does not reconcile; see cmd/benchrun.
bench-json:
	$(GO) run ./cmd/benchrun -fig none -maxm 500 -queries 3 -segment-m 100000 -bench-out $(BENCH_DIR)

# Append a fresh point to the committed bench trajectory. Same run as
# bench-json; the separate name marks the intent: record a point you mean to
# commit, so bench-compare always has a previous point to diff against.
bench-record: bench-json

# Diff the two most recent $(BENCH_DIR)/BENCH_*.json reports (steps, wall
# time, search p50/p99 per strategy). Fails when the trajectory has fewer
# than 2 points or a strategy's search-stage p99 regressed >25%. Also prints
# the LOAD_*.json capacity trajectory when shapeload has recorded one.
bench-compare:
	$(GO) run ./cmd/benchrun -compare $(BENCH_DIR)

# Record a capacity point: boot a synthetic shapeserver, run the shapeload
# saturation search against it, and write $(BENCH_DIR)/LOAD_<date>.json.
# Knobs (addr, workload size, SLO) live in the script.
load-record:
	./scripts/load-record.sh $(BENCH_DIR)

# Observability smoke test: start benchrun -serve, curl /metrics and
# /debug/lbkeogh, assert both answer 200 with parseable content. Part 5 runs
# the segment-store ingest smoke (ingest-smoke below).
smoke:
	./scripts/smoke.sh

# Segment-store end-to-end: shapeingest 50k shapes, serve the store with
# shapeserver -segments, search, online-ingest, compact, and assert the
# record counts on /livez and /metrics reconcile at every step.
ingest-smoke:
	./scripts/ingest-smoke.sh

# Known-vulnerability scan, skipped gracefully where the tool is not
# installed (the container has no network to fetch it).
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

ci: build vet lint race race-concurrency bench smoke govulncheck

clean:
	rm -rf $(BENCH_DIR)
