package lbkeogh

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"lbkeogh/internal/obs"
)

// SearchStats is a point-in-time snapshot of a query's (or index's, or
// monitor's) instrumentation record: where the search spent its num_steps
// and how each rotation was disposed of. The outcome buckets reconcile —
// for any snapshot,
//
//	Rotations = FullDistEvals + EarlyAbandons + WedgePrunedMembers
//	          + WedgeLeafLBPrunes + FFTRejectedMembers + CancelledMembers
//
// so pruning rates per bound can be read off directly (the breakdown the
// paper's Tables 1–3 and Section 5.3 are about). All counters are cumulative
// since the record was created or last reset.
type SearchStats struct {
	// Comparisons counts rotation-invariant comparisons (one per database
	// series matched); Rotations the rotation-matrix rows they covered.
	Comparisons int64 `json:"comparisons"`
	Rotations   int64 `json:"rotations"`
	// Steps is the paper's num_steps metric: real-value subtractions.
	Steps int64 `json:"steps"`

	// FullDistEvals counts exact kernel distances computed to completion;
	// EarlyAbandons those cut short by the best-so-far.
	FullDistEvals int64 `json:"full_dist_evals"`
	EarlyAbandons int64 `json:"early_abandons"`

	// WedgeNodeVisits counts internal wedges whose children were explored;
	// WedgeLeafVisits rotations H-Merge reached individually;
	// WedgePrunedMembers rotations excluded wholesale by an internal-wedge
	// lower bound; WedgeLeafLBPrunes rotations excluded by their
	// singleton-wedge bound (warped measures only). WedgePrunesByLevel
	// breaks the internal-wedge prunes down by dendrogram depth (0 = root).
	WedgeNodeVisits    int64   `json:"wedge_node_visits"`
	WedgeLeafVisits    int64   `json:"wedge_leaf_visits"`
	WedgePrunedMembers int64   `json:"wedge_pruned_members"`
	WedgeLeafLBPrunes  int64   `json:"wedge_leaf_lb_prunes"`
	WedgePrunesByLevel []int64 `json:"wedge_prunes_by_level,omitempty"`

	// FFTRejects counts comparisons the Fourier-magnitude bound rejected
	// whole (FFTSearch only); FFTRejectedMembers the rotations they covered;
	// FFTFallbacks the comparisons that fell through to early abandoning.
	FFTRejects         int64 `json:"fft_rejects"`
	FFTRejectedMembers int64 `json:"fft_rejected_members"`
	FFTFallbacks       int64 `json:"fft_fallbacks"`

	// CancelledMembers counts rotations left undisposed when a context
	// cancellation (or deadline) stopped a Search*Context scan mid-way;
	// zero for uncancelled searches.
	CancelledMembers int64 `json:"cancelled_members,omitempty"`

	// IndexCandidates / IndexFetches / DiskReads are populated by indexed
	// searches: candidates surviving the compressed bound, full-resolution
	// fetches for verification, and record reads charged by the store.
	IndexCandidates int64 `json:"index_candidates"`
	IndexFetches    int64 `json:"index_fetches"`
	DiskReads       int64 `json:"disk_reads"`

	// KChanges counts dynamic wedge-set-size adjustments; KTrajectory is the
	// (bounded) sequence of them.
	KChanges    int64     `json:"k_changes"`
	KTrajectory []KChange `json:"k_trajectory,omitempty"`

	// PruneRate is the fraction of rotations disposed of without a full
	// distance evaluation; StepsPerComparison the paper's per-comparison
	// cost metric.
	PruneRate          float64 `json:"prune_rate"`
	StepsPerComparison float64 `json:"steps_per_comparison"`

	// StepsHistogram is the per-comparison num_steps distribution over
	// fixed power-of-two buckets (non-empty buckets only);
	// StepsHistogramSum its exact sum of observations, which the bucket
	// bounds alone cannot reconstruct. It can differ from Steps: the
	// histogram only sees per-comparison costs, while Steps also counts
	// work outside any comparison.
	StepsHistogram    []HistogramBucket `json:"steps_histogram,omitempty"`
	StepsHistogramSum int64             `json:"steps_histogram_sum,omitempty"`

	// StageLatencies holds per-stage wall-clock latency summaries, present
	// when a TraceLog is attached to the source.
	StageLatencies []StageLatency `json:"stage_latencies,omitempty"`
}

// KChange is one dynamic-K controller adjustment: after Comparison
// comparisons the settled wedge-set size moved From -> To.
type KChange struct {
	Comparison int64 `json:"comparison"`
	From       int   `json:"from"`
	To         int   `json:"to"`
}

// HistogramBucket is one non-empty fixed bucket of a steps histogram;
// UpperBound is the bucket's inclusive upper bound (a power of two), or -1
// for the overflow bucket.
type HistogramBucket struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// Reconciles reports whether the snapshot's outcome buckets account for
// every rotation covered — true for any record maintained by this library.
func (s SearchStats) Reconciles() bool {
	return s.Rotations == s.FullDistEvals+s.EarlyAbandons+
		s.WedgePrunedMembers+s.WedgeLeafLBPrunes+s.FFTRejectedMembers+
		s.CancelledMembers
}

// Tracer receives fine-grained search events for debugging admissibility
// and pruning behavior: OnWedgeVisit for every wedge whose lower bound was
// evaluated, OnAbandon when an exact distance computation was cut short,
// OnKChange when the dynamic controller settles on a new wedge-set size,
// and OnFetch when an indexed search retrieves a full-resolution object.
// Install one with WithTracer (queries), Index.SetTracer, or
// Monitor.SetTracer. Implementations must be safe for concurrent calls when
// used with SearchParallel.
//
// Tracer is an alias of the internal interface, so a single implementation
// satisfies every layer and the public API needs no adapter types.
type Tracer = obs.Tracer

// Compile-time check: the alias really is the interface the internal layers
// consume (a Tracer value is an obs.Tracer value with no conversion).
var _ obs.Tracer = Tracer(nil)

// StatsSource is anything exposing an instrumentation snapshot: *Query,
// *Index and *Monitor all qualify.
type StatsSource interface {
	Stats() SearchStats
}

// MetricsHandler returns an http.Handler that renders the given sources in
// Prometheus text exposition format, one metric family per counter named
// `<name>_<field>` plus a `<name>_comparison_steps` histogram. Mount it at
// /metrics to scrape live pruning telemetry:
//
//	http.Handle("/metrics", lbkeogh.MetricsHandler(map[string]lbkeogh.StatsSource{
//	        "lbkeogh_query": q,
//	}))
func MetricsHandler(sources map[string]StatsSource) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		names := make([]string, 0, len(sources))
		for n := range sources {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			WriteMetrics(w, n, sources[n].Stats())
		}
	})
}

// WriteMetrics renders one stats snapshot under the given metric-name prefix
// in Prometheus text exposition format: every family carries # HELP and
// # TYPE lines, histograms emit cumulative buckets with a +Inf bucket equal
// to _count, and _sum values are the exact observed sums.
func WriteMetrics(w io.Writer, name string, s SearchStats) {
	emit := func(field, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			name, field, help, name, field, name, field, v)
	}
	emit("comparisons", "Rotation-invariant comparisons (one per database series matched).", s.Comparisons)
	emit("rotations", "Rotation-matrix rows covered by the comparisons.", s.Rotations)
	emit("steps", "num_steps spent: real-value subtractions, the paper's cost metric.", s.Steps)
	emit("full_dist_evals", "Exact kernel distances computed to completion.", s.FullDistEvals)
	emit("early_abandons", "Exact distance computations cut short by the best-so-far.", s.EarlyAbandons)
	emit("wedge_node_visits", "Internal wedges whose children were explored.", s.WedgeNodeVisits)
	emit("wedge_leaf_visits", "Rotations H-Merge reached individually.", s.WedgeLeafVisits)
	emit("wedge_pruned_members", "Rotations excluded wholesale by an internal-wedge lower bound.", s.WedgePrunedMembers)
	emit("wedge_leaf_lb_prunes", "Rotations excluded by their singleton-wedge lower bound.", s.WedgeLeafLBPrunes)
	emit("fft_rejects", "Comparisons rejected whole by the Fourier-magnitude bound.", s.FFTRejects)
	emit("fft_rejected_members", "Rotations covered by FFT-rejected comparisons.", s.FFTRejectedMembers)
	emit("fft_fallbacks", "Comparisons falling through the FFT filter to early abandoning.", s.FFTFallbacks)
	emit("cancelled_members", "Rotations left undisposed by cancelled or deadline-bounded searches.", s.CancelledMembers)
	emit("index_candidates", "Index candidates surviving the compressed lower bound.", s.IndexCandidates)
	emit("index_fetches", "Full-resolution fetches for exact verification.", s.IndexFetches)
	emit("disk_reads", "Record reads charged by the series store.", s.DiskReads)
	emit("k_changes", "Dynamic wedge-set-size adjustments.", s.KChanges)
	var anyLevel bool
	for _, v := range s.WedgePrunesByLevel {
		if v != 0 {
			anyLevel = true
			break
		}
	}
	if anyLevel {
		fmt.Fprintf(w, "# HELP %s_wedge_prunes_by_level Internal-wedge prunes by dendrogram depth (0 = root).\n", name)
		fmt.Fprintf(w, "# TYPE %s_wedge_prunes_by_level counter\n", name)
		for lvl, v := range s.WedgePrunesByLevel {
			if v != 0 {
				fmt.Fprintf(w, "%s_wedge_prunes_by_level{level=\"%d\"} %d\n", name, lvl, v)
			}
		}
	}
	if len(s.StepsHistogram) > 0 {
		fmt.Fprintf(w, "# HELP %s_comparison_steps Per-comparison num_steps distribution.\n", name)
		fmt.Fprintf(w, "# TYPE %s_comparison_steps histogram\n", name)
		var cum, total int64
		for _, b := range s.StepsHistogram {
			total += b.Count
		}
		for _, b := range s.StepsHistogram {
			if b.UpperBound < 0 {
				continue // overflow bucket folds into +Inf
			}
			cum += b.Count
			fmt.Fprintf(w, "%s_comparison_steps_bucket{le=\"%d\"} %d\n", name, b.UpperBound, cum)
		}
		fmt.Fprintf(w, "%s_comparison_steps_bucket{le=\"+Inf\"} %d\n", name, total)
		fmt.Fprintf(w, "%s_comparison_steps_sum %d\n%s_comparison_steps_count %d\n",
			name, s.StepsHistogramSum, name, total)
	}
	if len(s.StageLatencies) > 0 {
		fmt.Fprintf(w, "# HELP %s_stage_latency_ns Per-stage query latency in nanoseconds.\n", name)
		fmt.Fprintf(w, "# TYPE %s_stage_latency_ns histogram\n", name)
		for _, sl := range s.StageLatencies {
			var cum int64
			for _, b := range sl.Buckets {
				if b.UpperBound < 0 {
					continue
				}
				cum += b.Count
				fmt.Fprintf(w, "%s_stage_latency_ns_bucket{stage=%q,le=\"%d\"} %d\n", name, sl.Stage, b.UpperBound, cum)
			}
			fmt.Fprintf(w, "%s_stage_latency_ns_bucket{stage=%q,le=\"+Inf\"} %d\n", name, sl.Stage, sl.Count)
			fmt.Fprintf(w, "%s_stage_latency_ns_sum{stage=%q} %d\n", name, sl.Stage, sl.SumNS)
			fmt.Fprintf(w, "%s_stage_latency_ns_count{stage=%q} %d\n", name, sl.Stage, sl.Count)
		}
	}
}

// expvar publication bookkeeping (expvar.Publish panics on duplicates).
var (
	expvarMu   sync.Mutex
	expvarSeen = map[string]bool{}
)

// PublishExpvar exposes a StatsSource under the given expvar name (visible
// at /debug/vars once expvar's handler is mounted). Re-publishing the same
// name is a no-op.
func PublishExpvar(name string, src StatsSource) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarSeen[name] {
		return
	}
	expvarSeen[name] = true
	expvar.Publish(name, expvar.Func(func() any { return src.Stats() }))
}

// statsFromSnapshot converts the internal snapshot to the public record.
func statsFromSnapshot(sn obs.Snapshot) SearchStats {
	out := SearchStats{
		Comparisons:        sn.Comparisons,
		Rotations:          sn.Rotations,
		Steps:              sn.Steps,
		FullDistEvals:      sn.FullDistEvals,
		EarlyAbandons:      sn.EarlyAbandons,
		WedgeNodeVisits:    sn.WedgeNodeVisits,
		WedgeLeafVisits:    sn.WedgeLeafVisits,
		WedgePrunedMembers: sn.WedgePrunedMembers,
		WedgeLeafLBPrunes:  sn.WedgeLeafLBPrunes,
		WedgePrunesByLevel: sn.WedgePrunesByLevel,
		FFTRejects:         sn.FFTRejects,
		FFTRejectedMembers: sn.FFTRejectedMembers,
		FFTFallbacks:       sn.FFTFallbacks,
		CancelledMembers:   sn.CancelledMembers,
		IndexCandidates:    sn.IndexCandidates,
		IndexFetches:       sn.IndexFetches,
		DiskReads:          sn.DiskReads,
		KChanges:           sn.KChanges,
		PruneRate:          sn.PruneRate,
		StepsPerComparison: sn.StepsPerComparison,
	}
	if len(sn.KTrajectory) > 0 {
		out.KTrajectory = make([]KChange, len(sn.KTrajectory))
		for i, k := range sn.KTrajectory {
			out.KTrajectory[i] = KChange{Comparison: k.Comparison, From: k.From, To: k.To}
		}
	}
	if len(sn.StepsHistogram) > 0 {
		out.StepsHistogram = make([]HistogramBucket, len(sn.StepsHistogram))
		for i, b := range sn.StepsHistogram {
			out.StepsHistogram[i] = HistogramBucket{UpperBound: b.UpperBound, Count: b.Count}
		}
		out.StepsHistogramSum = sn.StepsHistogramSum
	}
	return out
}
