package lbkeogh

// End-to-end integration scenario: the "anthropology workflow" the paper's
// introduction motivates — a collection of raster shapes is segmented,
// converted to signatures, persisted to disk, indexed, searched, clustered
// and mined, with every answer cross-checked against brute force.

import (
	"math"
	"path/filepath"
	"testing"

	"lbkeogh/internal/shape"
	"lbkeogh/internal/ts"
)

func TestEndToEndAnthropologyWorkflow(t *testing.T) {
	const (
		sigLen     = 128
		rasterSize = 96
		perClass   = 4
	)

	// 1. "Photograph" the collection: three families of raster shapes at
	// random orientations, one specimen duplicated at a different rotation
	// (the planted motif).
	families := []shape.Superformula{
		{M: 4, N1: 3, N2: 7, N3: 7, A: 1, B: 1},
		{M: 5, N1: 2.2, N2: 6, N3: 6, A: 1, B: 1},
		{M: 3, N1: 4.5, N2: 10, N3: 10, A: 1, B: 1},
	}
	rng := ts.NewRand(2026)
	var bitmaps []*Bitmap
	var labels []int
	for fi, sf := range families {
		base := shape.NewRadialShape(sf.Radius)
		for k := 0; k < perClass; k++ {
			inst := shape.NewRadialShape(base.Radius).WithNoise(rng, 0.015)
			bmp := shape.FromRadial(inst.Radius, rasterSize)
			bitmaps = append(bitmaps, bmp.Rotate(rng.Float64()*2*math.Pi))
			labels = append(labels, fi)
		}
	}
	m := len(bitmaps) + 1 // +1 for the planted duplicate below

	// 2. Segment: contour → signature.
	db := make([]Series, 0, m)
	for i, b := range bitmaps {
		sig, err := Signature(b, sigLen)
		if err != nil {
			t.Fatalf("signature %d: %v", i, err)
		}
		db = append(db, sig)
	}
	// Plant the motif: the same specimen re-registered at another rotation
	// (a circular shift of its signature with a whisper of sensor noise).
	motifOriginal := 2
	db = append(db, ts.ZNorm(ts.AddNoise(rng, ts.Rotate(db[motifOriginal], 37), 0.003)))
	labels = append(labels, labels[motifOriginal])

	// 3. Persist the collection and open a disk-backed index.
	path := filepath.Join(t.TempDir(), "collection.lbks")
	if err := WriteSeriesFile(path, db); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndexFile(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// 4. Query: a fresh rotated specimen of family 1 must retrieve a
	// family-1 object, identically via linear scan, parallel scan and index.
	queryShape := shape.NewRadialShape(families[1].Radius).WithNoise(rng, 0.015)
	queryBmp := shape.FromRadial(queryShape.Radius, rasterSize).Rotate(2.0)
	query, err := Signature(queryBmp, sigLen)
	if err != nil {
		t.Fatal(err)
	}
	for _, meas := range []Measure{Euclidean(), DTW(4)} {
		q, err := NewQuery(query, meas, WithMirrorInvariance())
		if err != nil {
			t.Fatal(err)
		}
		linear, err := q.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		if labels[linear.Index] != 1 {
			t.Fatalf("%s: retrieved family %d, want 1", meas.Name(), labels[linear.Index])
		}
		q2, _ := NewQuery(query, meas, WithMirrorInvariance())
		par, err := q2.SearchParallel(db, 4)
		if err != nil {
			t.Fatal(err)
		}
		if par.Index != linear.Index || math.Abs(par.Dist-linear.Dist) > 1e-9 {
			t.Fatalf("%s: parallel (%d,%v) != linear (%d,%v)", meas.Name(), par.Index, par.Dist, linear.Index, linear.Dist)
		}
		q3, _ := NewQuery(query, meas, WithMirrorInvariance())
		ixRes, err := ix.Search(q3)
		if err != nil {
			t.Fatal(err)
		}
		if ixRes.Index != linear.Index || math.Abs(ixRes.Dist-linear.Dist) > 1e-9 {
			t.Fatalf("%s: index (%d,%v) != linear (%d,%v)", meas.Name(), ixRes.Index, ixRes.Dist, linear.Index, linear.Dist)
		}
	}

	// 5. Mine: the planted motif must be the closest pair...
	motif, err := ClosestPair(db, Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	if motif.I != motifOriginal || motif.J != m-1 {
		t.Fatalf("motif = (%d,%d), want (%d,%d)", motif.I, motif.J, motifOriginal, m-1)
	}
	// ...and clustering at K=3 must recover the three families.
	dend, err := Cluster(db, Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range dend.Clusters(3) {
		family := labels[group[0]]
		for _, idx := range group {
			if labels[idx] != family {
				t.Fatalf("K=3 cluster mixes families: %v", group)
			}
		}
	}

	// 6. Outlier scan: inject a shape from none of the families; Discord
	// must surface it.
	weird := shape.Superformula{M: 11, N1: 1.2, N2: 4, N3: 12, A: 1, B: 0.6}
	weirdSig, err := Signature(shape.FromRadial(weird.Radius, rasterSize), sigLen)
	if err != nil {
		t.Fatal(err)
	}
	withOutlier := append(append([]Series{}, db...), weirdSig)
	idx, nn, err := Discord(withOutlier, Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	if idx != len(withOutlier)-1 {
		t.Fatalf("discord = %d (nn %v), want the injected outlier %d", idx, nn, len(withOutlier)-1)
	}
}
