package lbkeogh

import (
	"math"
	"path/filepath"
	"testing"

	"lbkeogh/internal/ts"
)

func demoDB(seed int64, m, n int) []Series {
	return SyntheticProjectilePoints(seed, m, n)
}

func TestNewQueryValidation(t *testing.T) {
	if _, err := NewQuery(nil, Euclidean()); err == nil {
		t.Fatal("want error for empty series")
	}
	if _, err := NewQuery([]float64{1}, Euclidean()); err == nil {
		t.Fatal("want error for 1-sample series")
	}
	if _, err := NewQuery([]float64{1, 2, 3}, Measure{}); err == nil {
		t.Fatal("want error for zero Measure")
	}
	if _, err := NewQuery([]float64{1, 2, 3}, DTW(1), WithStrategy(FFTSearch)); err == nil {
		t.Fatal("want error for FFTSearch+DTW")
	}
	if _, err := NewQuery([]float64{1, 2, 3, 4}, Euclidean(), WithMaxRotationDegrees(200)); err == nil {
		t.Fatal("want error for degree limit >= 180")
	}
}

func TestMeasureNames(t *testing.T) {
	if Euclidean().Name() != "euclidean" || DTW(3).Name() != "dtw" || LCSS(2, 0.5).Name() != "lcss" {
		t.Fatal("measure names wrong")
	}
	if (Measure{}).Name() != "unset" {
		t.Fatal("zero measure name wrong")
	}
}

func TestQueryDistanceSelfZero(t *testing.T) {
	db := demoDB(1, 4, 64)
	for _, m := range []Measure{Euclidean(), DTW(3), LCSS(3, 0.3)} {
		q, err := NewQuery(db[0], m)
		if err != nil {
			t.Fatal(err)
		}
		d, rot, err := q.Distance(ts.Rotate(db[0], 17))
		if err != nil {
			t.Fatal(err)
		}
		if d > 1e-9 {
			t.Fatalf("%s: self distance under rotation = %v", m.Name(), d)
		}
		if rot.Shift != 17 && m.Name() != "lcss" { // LCSS can tie at several shifts
			t.Fatalf("%s: recovered shift %d, want 17", m.Name(), rot.Shift)
		}
	}
}

func TestRotationDegrees(t *testing.T) {
	db := demoDB(2, 1, 72)
	q, _ := NewQuery(db[0], Euclidean())
	_, rot, err := q.Distance(ts.Rotate(db[0], 18))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rot.Degrees-90) > 1e-9 {
		t.Fatalf("18/72 shift should be 90 degrees, got %v", rot.Degrees)
	}
}

func TestAllStrategiesAgreePublic(t *testing.T) {
	n := 64
	db := demoDB(3, 30, n)
	query := ts.Rotate(db[7], 11)
	var want SearchResult
	for i, s := range []Strategy{WedgeSearch, BruteForceSearch, EarlyAbandonSearch, FFTSearch} {
		q, err := NewQuery(query, Euclidean(), WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got.Index != want.Index || math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("strategy %d disagrees: %+v vs %+v", s, got, want)
		}
	}
	if want.Index != 7 {
		t.Fatalf("planted NN not found: %d", want.Index)
	}
}

func TestSearchParallelPublic(t *testing.T) {
	db := demoDB(40, 150, 64)
	query := ts.Rotate(db[42], 19)
	q, _ := NewQuery(query, Euclidean())
	want, err := q.Search(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 3} {
		qp, _ := NewQuery(query, DTW(2))
		wantD, err := qp.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		qp2, _ := NewQuery(query, DTW(2))
		gotD, err := qp2.SearchParallel(db, workers)
		if err != nil {
			t.Fatal(err)
		}
		if gotD.Index != wantD.Index || math.Abs(gotD.Dist-wantD.Dist) > 1e-9 {
			t.Fatalf("workers=%d DTW: parallel %+v != serial %+v", workers, gotD, wantD)
		}
		q2, _ := NewQuery(query, Euclidean())
		got, err := q2.SearchParallel(db, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != want.Index || math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("workers=%d: parallel %+v != serial %+v", workers, got, want)
		}
	}
	if _, err := q.SearchParallel(nil, 2); err == nil {
		t.Fatal("want error for empty db")
	}
	if _, err := q.SearchParallel([]Series{make(Series, 8)}, 2); err == nil {
		t.Fatal("want error for wrong-length db")
	}
}

func TestMatchThreshold(t *testing.T) {
	db := demoDB(4, 10, 48)
	q, _ := NewQuery(db[0], Euclidean())
	d, _, err := q.Distance(db[1])
	if err != nil {
		t.Fatal(err)
	}
	_, _, ok, err := q.Match(db[1], d*0.9)
	if err != nil || ok {
		t.Fatalf("tight threshold must not match (ok=%v err=%v)", ok, err)
	}
	got, _, ok, err := q.Match(db[1], d*1.1)
	if err != nil || !ok || math.Abs(got-d) > 1e-9 {
		t.Fatalf("loose threshold must match exactly: got=%v ok=%v err=%v", got, ok, err)
	}
}

func TestSearchTopKOrdering(t *testing.T) {
	db := demoDB(5, 25, 48)
	q, _ := NewQuery(db[3], DTW(2))
	top, err := q.SearchTopK(db, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 || top[0].Index != 3 || top[0].Dist > 1e-9 {
		t.Fatalf("self must rank first: %+v", top)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Dist < top[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	// Clamp k.
	all, err := q.SearchTopK(db, 100)
	if err != nil || len(all) != 25 {
		t.Fatalf("k clamp failed: %d, %v", len(all), err)
	}
}

func TestSearchErrors(t *testing.T) {
	db := demoDB(6, 5, 32)
	q, _ := NewQuery(db[0], Euclidean())
	if _, err := q.Search(nil); err == nil {
		t.Fatal("want error for empty db")
	}
	if _, err := q.Search([]Series{db[0], make(Series, 16)}); err == nil {
		t.Fatal("want error for ragged db")
	}
	if _, _, err := q.Distance(make(Series, 16)); err == nil {
		t.Fatal("want error for wrong-length candidate")
	}
	if _, err := q.SearchTopK(nil, 3); err == nil {
		t.Fatal("want error for empty db in TopK")
	}
}

func TestMirrorInvarianceOption(t *testing.T) {
	g, err := Glyphs(96)
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := NewQuery(g['b'], Euclidean())
	mir, _ := NewQuery(g['b'], Euclidean(), WithMirrorInvariance())
	if mir.Rotations() != 2*plain.Rotations() {
		t.Fatal("mirror invariance should double the alignment count")
	}
	dPlain, _, _ := plain.Distance(g['d'])
	dMir, rot, _ := mir.Distance(g['d'])
	if dMir >= dPlain {
		t.Fatalf("mirror match should be closer: %v vs %v", dMir, dPlain)
	}
	if !rot.Mirrored {
		t.Fatal("best alignment should be mirrored")
	}
}

func TestRotationLimitedOption(t *testing.T) {
	n := 72
	db := demoDB(7, 1, n)
	base := db[0]
	rotated := ts.Rotate(base, 18) // 90 degrees
	narrow, err := NewQuery(base, Euclidean(), WithMaxRotationDegrees(45))
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewQuery(base, Euclidean(), WithMaxRotationDegrees(120))
	if err != nil {
		t.Fatal(err)
	}
	dN, _, _ := narrow.Distance(rotated)
	dW, _, _ := wide.Distance(rotated)
	if dW > 1e-9 {
		t.Fatalf("120-degree limit should find the 90-degree match: %v", dW)
	}
	if dN <= 1e-9 {
		t.Fatal("45-degree limit must not find the 90-degree match")
	}
}

func TestSixVsNine(t *testing.T) {
	// The paper's flagship rotation-limited example: a '6' should not match
	// a '9' under a tight rotation limit, but unrestricted rotation-invariant
	// search confuses them (a 9 is a rotated 6-like glyph).
	g, err := Glyphs(96)
	if err != nil {
		t.Fatal(err)
	}
	free, _ := NewQuery(g['6'], Euclidean())
	limited, _ := NewQuery(g['6'], Euclidean(), WithMaxRotationDegrees(15))
	dFree, _, _ := free.Distance(g['9'])
	dLim, _, _ := limited.Distance(g['9'])
	if dLim < dFree {
		t.Fatalf("limited query should not match 9 better: %v vs %v", dLim, dFree)
	}
}

func TestStepsAccounting(t *testing.T) {
	db := demoDB(8, 20, 64)
	q, _ := NewQuery(db[0], Euclidean())
	setup := q.Steps()
	if setup == 0 {
		t.Fatal("construction should charge steps")
	}
	if _, err := q.Search(db); err != nil {
		t.Fatal(err)
	}
	if q.Steps() <= setup {
		t.Fatal("search should add steps")
	}
	q.ResetSteps()
	if q.Steps() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFixedWedgeAndBestFirstOptionsExact(t *testing.T) {
	db := demoDB(9, 15, 48)
	query := ts.Rotate(db[4], 9)
	ref, _ := NewQuery(query, Euclidean())
	want, err := ref.Search(db)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]QueryOption{
		{WithFixedWedgeCount(1)},
		{WithFixedWedgeCount(48)},
		{WithBestFirstTraversal()},
		{WithFixedWedgeCount(7), WithBestFirstTraversal()},
	} {
		q, err := NewQuery(query, Euclidean(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := q.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != want.Index || math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("options %v disagree: %+v vs %+v", opts, got, want)
		}
	}
}

func TestIndexSearchMatchesLinear(t *testing.T) {
	n := 64
	db := demoDB(10, 80, n)
	ix, err := NewIndex(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 80 || ix.Dims() != 8 {
		t.Fatalf("index metadata wrong: %d, %d", ix.Len(), ix.Dims())
	}
	for _, m := range []Measure{Euclidean(), DTW(3), LCSS(2, 0.4)} {
		q, err := NewQuery(ts.Rotate(db[13], 21), m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		q2, _ := NewQuery(ts.Rotate(db[13], 21), m)
		ix.ResetDiskReads()
		got, err := ix.Search(q2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != want.Index || math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("%s: index (%d,%v) != linear (%d,%v)", m.Name(), got.Index, got.Dist, want.Index, want.Dist)
		}
		if m.Name() != "lcss" && ix.DiskReads() >= ix.Len() {
			t.Fatalf("%s: index fetched everything (%d)", m.Name(), ix.DiskReads())
		}
	}
}

func TestIndexSearchRange(t *testing.T) {
	n := 48
	db := demoDB(30, 50, n)
	ix, err := NewIndex(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Measure{Euclidean(), DTW(2)} {
		q, _ := NewQuery(ts.Rotate(db[11], 5), m)
		nn, err := q.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		q2, _ := NewQuery(ts.Rotate(db[11], 5), m)
		hits, err := ix.SearchRange(q2, nn.Dist*1.5+0.1)
		if err != nil {
			t.Fatal(err)
		}
		foundNN := false
		for _, h := range hits {
			if h.Index == nn.Index {
				foundNN = true
				if math.Abs(h.Dist-nn.Dist) > 1e-9 {
					t.Fatalf("%s: range dist %v != NN dist %v", m.Name(), h.Dist, nn.Dist)
				}
			}
			if h.Dist >= nn.Dist*1.5+0.1 {
				t.Fatalf("%s: hit beyond radius: %v", m.Name(), h.Dist)
			}
		}
		if !foundNN {
			t.Fatalf("%s: range query missed the nearest neighbour", m.Name())
		}
	}
	// Validation.
	q, _ := NewQuery(db[0], Euclidean())
	if _, err := ix.SearchRange(q, -1); err == nil {
		t.Fatal("want error for non-positive radius")
	}
	qShort, _ := NewQuery(make(Series, 16), Euclidean())
	if _, err := ix.SearchRange(qShort, 1); err == nil {
		t.Fatal("want error for length mismatch")
	}
	qLCSS, _ := NewQuery(db[0], LCSS(2, 0.3))
	if _, err := ix.SearchRange(qLCSS, 1); err == nil {
		t.Fatal("want error for LCSS range search")
	}
}

func TestFileBackedIndex(t *testing.T) {
	n := 48
	db := demoDB(50, 60, n)
	path := filepath.Join(t.TempDir(), "db.lbks")
	if err := WriteSeriesFile(path, db); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndexFile(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Len() != 60 || ix.Dims() != 8 {
		t.Fatalf("file index metadata (%d,%d)", ix.Len(), ix.Dims())
	}
	// Exactness against the in-memory linear scan, for ED and DTW.
	for _, m := range []Measure{Euclidean(), DTW(3)} {
		q, _ := NewQuery(ts.Rotate(db[17], 9), m)
		want, err := q.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		q2, _ := NewQuery(ts.Rotate(db[17], 9), m)
		ix.ResetDiskReads()
		got, err := ix.Search(q2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != want.Index || math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("%s: file index (%d,%v) != scan (%d,%v)", m.Name(), got.Index, got.Dist, want.Index, want.Dist)
		}
		if ix.DiskReads() == 0 || ix.DiskReads() >= ix.Len() {
			t.Fatalf("%s: disk reads = %d of %d", m.Name(), ix.DiskReads(), ix.Len())
		}
	}
	// Validation paths.
	if _, err := OpenIndexFile(filepath.Join(t.TempDir(), "missing"), 8); err == nil {
		t.Fatal("want error for missing file")
	}
	if _, err := OpenIndexFile(path, 0); err == nil {
		t.Fatal("want error for dims < 1")
	}
	// In-memory index Close is a no-op.
	mem, _ := NewIndex(db, 4)
	if err := mem.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexValidation(t *testing.T) {
	if _, err := NewIndex(nil, 4); err == nil {
		t.Fatal("want error for empty db")
	}
	if _, err := NewIndex([]Series{{1, 2}, {1}}, 4); err == nil {
		t.Fatal("want error for ragged db")
	}
	if _, err := NewIndex([]Series{{1, 2, 3, 4}}, 0); err == nil {
		t.Fatal("want error for dims < 1")
	}
	db := demoDB(11, 5, 32)
	ix, _ := NewIndex(db, 4)
	q, _ := NewQuery(make(Series, 16), Euclidean())
	if _, err := ix.Search(q); err == nil {
		t.Fatal("want error for length mismatch")
	}
}

func TestDatasetGenerators(t *testing.T) {
	lc := SyntheticLightCurves(1, 30, 64, 0.1)
	if len(lc.Series) != 30 || lc.NumClasses != 3 {
		t.Fatalf("light curves malformed: %d series", len(lc.Series))
	}
	het := SyntheticHeterogeneous(2, 20, 64)
	if len(het) != 20 {
		t.Fatal("heterogeneous size wrong")
	}
	names := Table8Names()
	if len(names) != 10 {
		t.Fatal("Table8Names wrong")
	}
	d, err := Table8Dataset("Chicken", 0.5)
	if err != nil || d.NumClasses != 5 {
		t.Fatalf("Chicken dataset: %v", err)
	}
	if _, err := Table8Dataset("bogus", 1); err == nil {
		t.Fatal("want error for unknown dataset")
	}
	skulls, species := SkullDataset(3, 2, 64, 0.02)
	if len(skulls.Series) != 2*len(species) {
		t.Fatal("skull dataset size wrong")
	}
}

func TestShapePipelinePublic(t *testing.T) {
	bmp := NewBitmap(120, 120)
	bmp.FillDisk(60, 60, 30)
	bmp.FillDisk(85, 60, 14) // asymmetric feature
	sig, err := Signature(bmp, 96)
	if err != nil {
		t.Fatal(err)
	}
	rotSig, err := Signature(bmp.Rotate(math.Pi/2), 96)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQuery(sig, Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := q.Distance(rotSig)
	if err != nil {
		t.Fatal(err)
	}
	raw := 0.0
	for i := range sig {
		diff := sig[i] - rotSig[i]
		raw += diff * diff
	}
	raw = math.Sqrt(raw)
	if d > raw {
		t.Fatalf("rotation-invariant distance %v exceeds raw %v", d, raw)
	}
	if d > 2.0 {
		t.Fatalf("rotated shape should match closely: %v", d)
	}
	if _, err := TraceContour(bmp); err != nil {
		t.Fatal(err)
	}
	if _, err := AngularSignature(bmp, 64); err != nil {
		t.Fatal(err)
	}
	if LetterBitmap('b', 64).Count() == 0 {
		t.Fatal("letter bitmap empty")
	}
}
