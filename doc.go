// Package lbkeogh is an exact rotation-invariant shape and time-series
// matching library, implementing Keogh, Wei, Xi, Vlachos, Lee & Protopapas,
// "LB_Keogh Supports Exact Indexing of Shapes under Rotation Invariance with
// Arbitrary Representations and Distance Measures" (VLDB 2006).
//
// # Overview
//
// A closed 2-D shape is converted to a 1-D "time series" — the distance from
// each contour point to the shape's centroid. Rotating the shape circularly
// shifts the series, and mirroring the shape reverses it, so rotation- and
// mirror-invariant shape matching reduces to comparing a series against
// every circular shift of another. Star light curves folded at an unknown
// phase are the same problem with no conversion at all.
//
// The naive approach costs O(n²) per comparison for Euclidean distance and
// O(n²R) for Dynamic Time Warping. This library groups similar rotations
// into hierarchically nested wedges, lower-bounds whole groups at once with
// the LB_Keogh family of admissible bounds, and adapts the grouping
// granularity as the search tightens — typically orders of magnitude faster,
// with exactly the same answers as brute force (no false dismissals).
//
// # Quick start
//
//	q, _ := lbkeogh.NewQuery(signature, lbkeogh.Euclidean())
//	res, _ := q.Search(database)             // exact nearest neighbour
//	d, rot, _ := q.Distance(someSeries)      // exact rotation-invariant distance
//
// DTW, LCSS, mirror-image invariance and rotation-limited queries ("allow at
// most 15 degrees") are options:
//
//	q, _ := lbkeogh.NewQuery(signature, lbkeogh.DTW(5),
//	        lbkeogh.WithMirrorInvariance(),
//	        lbkeogh.WithMaxRotationDegrees(15))
//
// For datasets that do not fit in memory, NewIndex builds a compressed
// rotation-invariant index (Fourier magnitudes in a VP-tree, PAA means in an
// R-tree) that answers the same 1-NN and range queries exactly while
// fetching only a small fraction of the objects; WriteSeriesFile and
// OpenIndexFile persist the collection to a real file-backed store.
//
// Beyond search, the data-mining subroutines the paper motivates are built
// in: ClosestPair (motif discovery), Cluster (hierarchical clustering under
// exact rotation-invariant distances), Medoid, and Discord (the light-curve
// outlier scan); NewMonitor filters live streams against a pattern
// dictionary ("Atomic Wedgie"); SearchParallel shards scans across
// goroutines.
//
// Shapes are converted with the helpers in shape.go (NewBitmap, Signature);
// synthetic datasets mirroring the paper's evaluation are available from the
// generators in dataset.go.
//
// # Observability
//
// Query, Index and Monitor each keep a SearchStats record of the work a
// search performed — comparisons, rotations, the paper's num_steps metric,
// the pruning breakdown per mechanism and hierarchy level, index fetch and
// disk-read counts, and the dynamic-K trajectory. Stats() returns a
// JSON-serialisable snapshot whose Reconciles method verifies that every
// rotation was either fully evaluated or pruned by exactly one mechanism.
// Collection uses atomic counters and is safe under SearchParallel; with no
// consumer the sink is a nil pointer and costs only a branch. WithTracer
// attaches per-event callbacks (wedge visits, abandons, K changes, fetches),
// and MetricsHandler / PublishExpvar export live counters in Prometheus text
// and expvar form.
//
// # Static analysis
//
// The repository enforces its own invariants with a custom analyzer suite,
// cmd/lbkeoghvet (see internal/lint): stats.Tally goroutine confinement,
// nil-guarded observability sinks, no floating-point equality in the
// admissibility-critical packages, allocation-free //lbkeogh:hotpath
// kernels, and squared-space lower bounds outside //lbkeogh:rootspace
// boundaries. Run it with `make lint`; it also runs inside `make ci` and,
// via internal/lint's self-check test, inside `go test ./...`.
package lbkeogh
