package lbkeogh

import (
	"fmt"
	"io"
	"time"

	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/trace"
)

// TraceOption customizes NewTraceLog.
type TraceOption func(*trace.Config)

// WithTraceCapacity sets the sampled-trace ring size (default 64).
func WithTraceCapacity(n int) TraceOption {
	return func(c *trace.Config) { c.Capacity = n }
}

// WithSlowTraceCapacity sets the slow-trace ring size (default 32).
func WithSlowTraceCapacity(n int) TraceOption {
	return func(c *trace.Config) { c.SlowCapacity = n }
}

// WithSampleRate sets the probability a completed trace is retained in the
// sampled ring (default 0.25; >= 1 keeps everything; <= 0 keeps only slow
// traces). Sampling never affects slow-query capture or the latency
// histograms, which see every traced query.
func WithSampleRate(rate float64) TraceOption {
	return func(c *trace.Config) {
		if rate <= 0 {
			rate = -1 // the log's "slow traces only" sentinel
		}
		c.SampleRate = rate
	}
}

// WithSlowThreshold sets the duration at or above which a query trace is
// always captured, bypassing sampling (default 50ms; d < 0 disables slow
// capture).
func WithSlowThreshold(d time.Duration) TraceOption {
	return func(c *trace.Config) {
		if d == 0 {
			d = -1
		}
		c.SlowThreshold = d
	}
}

// WithTraceSpanCap bounds the spans recorded per trace (default 512); spans
// beyond the cap are dropped and counted, never reallocated.
func WithTraceSpanCap(n int) TraceOption {
	return func(c *trace.Config) { c.SpanCap = n }
}

// WithTraceSeed seeds the sampling RNG. The default seed is fixed, so runs
// are reproducible unless a varying seed is supplied.
func WithTraceSeed(seed uint64) TraceOption {
	return func(c *trace.Config) { c.Seed = seed }
}

// TraceLog collects query-lifecycle traces: per-stage latency histograms
// over every traced query, a bounded ring of sampled traces, and a separate
// ring of slow queries (always captured at or above the slow threshold —
// retention is decided when the query finishes, so outliers cannot be
// sampled away). Attach one to queries with WithTraceLog, to indexes with
// Index.SetTraceLog, and to monitors with Monitor.SetTraceLog; one log may
// serve several sources. A nil *TraceLog is a valid no-op everywhere.
type TraceLog struct {
	log *trace.Log
}

// NewTraceLog returns a trace log with the given options.
func NewTraceLog(opts ...TraceOption) *TraceLog {
	var cfg trace.Config
	for _, o := range opts {
		o(&cfg)
	}
	return &TraceLog{log: trace.NewLog(cfg)}
}

// inner returns the internal log (nil-safe).
func (t *TraceLog) inner() *trace.Log {
	if t == nil {
		return nil
	}
	return t.log
}

// TraceSummary describes one retained query trace.
type TraceSummary struct {
	// ID identifies the trace within its log (stable across ring eviction).
	ID int64 `json:"id"`
	// Label names the traced operation (e.g. "search", "index_search_ed").
	Label string `json:"label"`
	// Start is the wall-clock time the trace began.
	Start time.Time `json:"start"`
	// Duration is the traced operation's total wall time.
	Duration time.Duration `json:"duration"`
	// Slow reports whether the trace met the slow-query threshold.
	Slow bool `json:"slow"`
	// Spans is the number of recorded spans; DroppedSpans how many the span
	// cap discarded.
	Spans        int   `json:"spans"`
	DroppedSpans int64 `json:"dropped_spans,omitempty"`
	// Stats holds the counter deltas attributable to this query alone; its
	// outcome buckets reconcile exactly like cumulative SearchStats.
	Stats SearchStats `json:"stats"`
}

func summarize(tr trace.Trace) TraceSummary {
	return TraceSummary{
		ID:           tr.ID,
		Label:        tr.Label,
		Start:        tr.Wall,
		Duration:     time.Duration(tr.DurNS),
		Slow:         tr.Slow,
		Spans:        len(tr.Spans),
		DroppedSpans: tr.Dropped,
		Stats:        statsFromCounts(tr.Attrs),
	}
}

func summarizeAll(trs []trace.Trace) []TraceSummary {
	if len(trs) == 0 {
		return nil
	}
	out := make([]TraceSummary, len(trs))
	for i, tr := range trs {
		out[i] = summarize(tr)
	}
	return out
}

// Recent summarizes the retained sampled traces, oldest first.
func (t *TraceLog) Recent() []TraceSummary { return summarizeAll(t.inner().Recent()) }

// Slow summarizes the retained slow traces, oldest first.
func (t *TraceLog) Slow() []TraceSummary { return summarizeAll(t.inner().Slow()) }

// Totals reports how many traces have finished and how many the sampled
// ring retained since the log was created.
func (t *TraceLog) Totals() (finished, sampled int64) { return t.inner().Totals() }

// SlowThreshold reports the effective slow-capture threshold.
func (t *TraceLog) SlowThreshold() time.Duration { return t.inner().SlowThreshold() }

// StageLatencies summarizes the per-stage latency histograms across every
// traced query (sampled away or not), in stage order, stages with at least
// one observation only.
func (t *TraceLog) StageLatencies() []StageLatency {
	return stageLatenciesFromInternal(t.inner().Latencies().Snapshot())
}

// WriteChromeTrace writes the identified trace in Chrome trace-event JSON —
// load the output at ui.perfetto.dev or chrome://tracing to see the span
// waterfall. The trace must still be retained in a ring.
func (t *TraceLog) WriteChromeTrace(w io.Writer, id int64) error {
	tr, ok := t.inner().Get(id)
	if !ok {
		return fmt.Errorf("lbkeogh: trace %d not retained", id)
	}
	return trace.WriteChrome(w, tr)
}

// WriteChromeTraces writes every retained trace (sampled then slow, minus
// duplicates) into one Chrome trace-event file, one track per trace.
func (t *TraceLog) WriteChromeTraces(w io.Writer) error {
	l := t.inner()
	traces := l.Recent()
	seen := make(map[int64]bool, len(traces))
	for _, tr := range traces {
		seen[tr.ID] = true
	}
	for _, tr := range l.Slow() {
		if !seen[tr.ID] {
			traces = append(traces, tr)
		}
	}
	return trace.WriteChromeAll(w, traces)
}

// WriteTraceJSONL writes the identified trace as JSON Lines: a header object
// followed by one flat span object per line, for jq-style analysis.
func (t *TraceLog) WriteTraceJSONL(w io.Writer, id int64) error {
	tr, ok := t.inner().Get(id)
	if !ok {
		return fmt.Errorf("lbkeogh: trace %d not retained", id)
	}
	return trace.WriteJSONL(w, tr)
}

// StageLatency is one pipeline stage's latency summary: exact observation
// count and nanosecond sum, the non-empty power-of-two buckets, and
// bucket-resolution quantiles (the bucket upper bound each quantile falls
// in; -1 means the overflow bucket).
type StageLatency struct {
	Stage   string            `json:"stage"`
	Count   int64             `json:"count"`
	SumNS   int64             `json:"sum_ns"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
	P50NS   int64             `json:"p50_ns"`
	P90NS   int64             `json:"p90_ns"`
	P99NS   int64             `json:"p99_ns"`
}

func stageLatenciesFromInternal(in []trace.StageLatency) []StageLatency {
	if len(in) == 0 {
		return nil
	}
	out := make([]StageLatency, len(in))
	for i, sl := range in {
		pub := StageLatency{
			Stage: sl.Stage,
			Count: sl.Count,
			SumNS: sl.SumNS,
			P50NS: sl.P50NS,
			P90NS: sl.P90NS,
			P99NS: sl.P99NS,
		}
		if len(sl.Buckets) > 0 {
			pub.Buckets = make([]HistogramBucket, len(sl.Buckets))
			for j, b := range sl.Buckets {
				pub.Buckets[j] = HistogramBucket{UpperBound: b.UpperBound, Count: b.Count}
			}
		}
		out[i] = pub
	}
	return out
}

// statsFromCounts lifts a per-trace (or per-span) counter delta into the
// public record; the same Reconciles identity holds for the result.
func statsFromCounts(c obs.Counts) SearchStats {
	s := SearchStats{
		Comparisons:        c.Comparisons,
		Rotations:          c.Rotations,
		Steps:              c.Steps,
		FullDistEvals:      c.FullDistEvals,
		EarlyAbandons:      c.EarlyAbandons,
		WedgeNodeVisits:    c.WedgeNodeVisits,
		WedgeLeafVisits:    c.WedgeLeafVisits,
		WedgePrunedMembers: c.WedgePrunedMembers,
		WedgeLeafLBPrunes:  c.WedgeLeafLBPrunes,
		FFTRejects:         c.FFTRejects,
		FFTRejectedMembers: c.FFTRejectedMembers,
		FFTFallbacks:       c.FFTFallbacks,
		CancelledMembers:   c.CancelledMembers,
		IndexCandidates:    c.IndexCandidates,
		IndexFetches:       c.IndexFetches,
		DiskReads:          c.DiskReads,
		KChanges:           c.KChanges,
	}
	if c.Rotations > 0 {
		s.PruneRate = 1 - float64(c.FullDistEvals)/float64(c.Rotations)
	}
	if c.Comparisons > 0 {
		s.StepsPerComparison = float64(c.Steps) / float64(c.Comparisons)
	}
	return s
}
