package lbkeogh

import (
	"math"
	"path/filepath"
	"testing"

	"lbkeogh/internal/segment"
	"lbkeogh/internal/ts"
)

// buildSegmentStore writes db into a fresh segment-store directory split
// across several segments, returning the directory.
func buildSegmentStore(t *testing.T, db []Series, dims int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	b, err := segment.NewBulkWriter(dir, len(db[0]), dims, int64(len(db)/3+1))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range db {
		if err := b.Add(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSegmentBackedIndex(t *testing.T) {
	n := 48
	db := demoDB(50, 60, n)
	dir := buildSegmentStore(t, db, 8)

	ix, err := OpenSegmentIndex(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Len() != 60 || ix.Dims() != 8 {
		t.Fatalf("segment index metadata (%d,%d)", ix.Len(), ix.Dims())
	}
	// Exactness against the in-memory linear scan, for ED and DTW, plus the
	// acceptance identity: SearchStats disk-read accounting must reconcile
	// exactly with the segment store's own fetch counter.
	for _, m := range []Measure{Euclidean(), DTW(3)} {
		q, _ := NewQuery(ts.Rotate(db[17], 9), m)
		want, err := q.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		q2, _ := NewQuery(ts.Rotate(db[17], 9), m)
		ix.ResetDiskReads()
		ix.ResetStats()
		got, err := ix.Search(q2)
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != want.Index || math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("%s: segment index (%d,%v) != scan (%d,%v)", m.Name(), got.Index, got.Dist, want.Index, want.Dist)
		}
		if ix.DiskReads() == 0 || ix.DiskReads() >= ix.Len() {
			t.Fatalf("%s: disk reads = %d of %d", m.Name(), ix.DiskReads(), ix.Len())
		}
		if st := ix.Stats(); st.DiskReads != int64(ix.DiskReads()) {
			t.Fatalf("%s: SearchStats.DiskReads=%d, store counted %d", m.Name(), st.DiskReads, ix.DiskReads())
		}
	}
	// Range search agrees with the scan plane too.
	q, _ := NewQuery(ts.Rotate(db[3], 5), Euclidean())
	wantRange, err := q.SearchRange(db, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	q2, _ := NewQuery(ts.Rotate(db[3], 5), Euclidean())
	gotRange, err := ix.SearchRange(q2, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRange) != len(wantRange) {
		t.Fatalf("range: %d results, scan found %d", len(gotRange), len(wantRange))
	}
	for i := range gotRange {
		if gotRange[i].Index != wantRange[i].Index {
			t.Fatalf("range result %d: index %d != %d", i, gotRange[i].Index, wantRange[i].Index)
		}
	}

	// Validation paths.
	if _, err := OpenSegmentIndex(filepath.Join(t.TempDir(), "missing"), 8); err == nil {
		t.Fatal("want error for empty store directory")
	}
}
