package lbkeogh

import (
	"math"
	"testing"

	"lbkeogh/internal/ts"
)

func TestMonitorPublicAPI(t *testing.T) {
	rng := ts.NewRand(31)
	patterns := []Series{
		ts.RandomWalk(rng, 24),
		ts.RandomWalk(rng, 24),
	}
	mon, err := NewMonitor(patterns, Euclidean(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if mon.WindowLen() != 24 {
		t.Fatalf("WindowLen = %d", mon.WindowLen())
	}
	// Noise, then pattern 1 verbatim, then noise.
	stream := ts.RandomSeries(rng, 100)
	stream = append(stream, patterns[1]...)
	stream = append(stream, ts.RandomSeries(rng, 50)...)

	var hits []StreamMatch
	hits = append(hits, mon.PushAll(stream)...)
	foundExact := false
	for _, h := range hits {
		if h.Pattern == 1 && h.End == 123 && h.Dist < 1e-9 {
			foundExact = true
		}
		if h.Dist >= 1.0 {
			t.Fatalf("match above threshold reported: %+v", h)
		}
	}
	if !foundExact {
		t.Fatalf("verbatim pattern not detected; hits: %+v", hits)
	}
	if mon.Steps() == 0 {
		t.Fatal("steps not accounted")
	}
}

func TestMonitorPublicValidation(t *testing.T) {
	if _, err := NewMonitor(nil, Euclidean(), 1); err == nil {
		t.Fatal("want error for empty patterns")
	}
	if _, err := NewMonitor([]Series{{1, 2}}, Measure{}, 1); err == nil {
		t.Fatal("want error for zero measure")
	}
	if _, err := NewMonitor([]Series{{1, 2}}, Euclidean(), -1); err == nil {
		t.Fatal("want error for bad threshold")
	}
}

func TestMonitorDTWPublic(t *testing.T) {
	rng := ts.NewRand(32)
	pat := ts.RandomWalk(rng, 20)
	mon, err := NewMonitor([]Series{pat}, DTW(2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Locally warped copy: shift one bump by one sample.
	warped := make(Series, 20)
	copy(warped, pat)
	warped[10], warped[11] = pat[11], pat[10]
	stream := append(ts.RandomSeries(rng, 40), warped...)
	hits := mon.PushAll(stream)
	found := false
	for _, h := range hits {
		if h.End == 59 {
			found = true
			if h.Dist > 0.5 || math.IsNaN(h.Dist) {
				t.Fatalf("bad match distance %v", h.Dist)
			}
		}
	}
	if !found {
		t.Fatal("DTW monitor missed the warped pattern")
	}
}
