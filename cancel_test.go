package lbkeogh

import (
	"context"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lbkeogh/internal/core"
)

// flipCtx is a deterministic cancellable context: Err reports Canceled from
// the (after+1)'th poll onward. It lets cancellation tests place the trip at
// an exact checkpoint instead of racing a timer.
type flipCtx struct {
	context.Context // Background, for Deadline/Value
	done            chan struct{}
	polls           atomic.Int64
	after           int64
}

func newFlipCtx(after int64) *flipCtx {
	return &flipCtx{Context: context.Background(), done: make(chan struct{}), after: after}
}

func (c *flipCtx) Done() <-chan struct{} { return c.done }

func (c *flipCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func allStrategies() []Strategy {
	return []Strategy{WedgeSearch, BruteForceSearch, EarlyAbandonSearch, FFTSearch}
}

func TestSearchContextAlreadyCancelled(t *testing.T) {
	db := demoDB(3, 6, 64)
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	for _, s := range allStrategies() {
		q, err := NewQuery(db[0], Euclidean(), WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.SearchContext(ctx, db); err != context.Canceled {
			t.Fatalf("strategy %v: want context.Canceled, got %v", s, err)
		}
		if _, err := q.SearchTopKContext(ctx, db, 3); err != context.Canceled {
			t.Fatalf("strategy %v topk: want context.Canceled, got %v", s, err)
		}
		if _, err := q.SearchRangeContext(ctx, db, 10); err != context.Canceled {
			t.Fatalf("strategy %v range: want context.Canceled, got %v", s, err)
		}
		if _, err := q.SearchParallelContext(ctx, db, 2); err != context.Canceled {
			t.Fatalf("strategy %v parallel: want context.Canceled, got %v", s, err)
		}
		// Cancelled before the scan started: nothing was compared.
		if st := q.Stats(); st.Comparisons != 0 || st.Rotations != 0 {
			t.Fatalf("strategy %v: pre-cancelled search still scanned: %+v", s, st)
		}
	}
}

// TestSearchContextMidScanPromptness cancels at a known checkpoint poll and
// checks the scan stops within one checkpoint interval of it — far short of
// the full rotation budget — with the undisposed rotations attributed to the
// CancelledMembers bucket so the record still reconciles.
func TestSearchContextMidScanPromptness(t *testing.T) {
	const n = 512
	db := demoDB(4, 1, n) // single candidate: all work is rotation disposal
	for _, s := range allStrategies() {
		opts := []QueryOption{WithStrategy(s)}
		if s == WedgeSearch {
			// Pin the wedge set to one singleton wedge per rotation so the
			// walk checkpoints at rotation granularity; the dynamic controller
			// would prune most of the single comparison away and finish before
			// the chosen poll trips.
			opts = append(opts, WithFixedWedgeCount(n))
		}
		q, err := NewQuery(db[0], Euclidean(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		const after = 4 // trip on the 5th ctx.Err() poll
		ctx := newFlipCtx(after)
		if _, err := q.SearchContext(ctx, db); err != context.Canceled {
			t.Fatalf("strategy %v: want context.Canceled, got %v", s, err)
		}
		st := q.Stats()
		if !st.Reconciles() {
			t.Fatalf("strategy %v: cancelled-search stats do not reconcile: %+v", s, st)
		}
		if st.CancelledMembers == 0 {
			t.Fatalf("strategy %v: cancelled mid-scan but CancelledMembers = 0: %+v", s, st)
		}
		// Entry checks burn 2 polls; each checkpoint poll admits at most
		// CancelCheckInterval more checkpoints before the next one. Anything
		// at or under this bound stopped within one interval of the trip.
		disposed := st.Rotations - st.CancelledMembers
		bound := int64((after + 1) * core.CancelCheckInterval)
		if disposed > bound {
			t.Fatalf("strategy %v: disposed %d rotations before stopping, want <= %d (of %d total)",
				s, disposed, bound, st.Rotations)
		}
		if st.Rotations != int64(q.Rotations()) {
			t.Fatalf("strategy %v: aborted comparison accounted %d rotations, want all %d",
				s, st.Rotations, q.Rotations())
		}
	}
}

// TestSearchContextCancelledQueryReusable cancels a search mid-scan and then
// reruns it uncancelled: the query must stay valid and return the exact
// result a fresh query does.
func TestSearchContextCancelledQueryReusable(t *testing.T) {
	db := demoDB(5, 8, 128)
	for _, s := range allStrategies() {
		q, err := NewQuery(db[0], Euclidean(), WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := q.SearchContext(newFlipCtx(3), db); err != context.Canceled {
			t.Fatalf("strategy %v: want context.Canceled, got %v", s, err)
		}
		got, err := q.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewQuery(db[0], Euclidean(), WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != want.Index || math.Float64bits(got.Dist) != math.Float64bits(want.Dist) {
			t.Fatalf("strategy %v: post-cancel search %+v != fresh-query search %+v", s, got, want)
		}
	}
}

// TestSearchContextUncancelledBitIdentical runs every search flavour through
// a live (but never cancelled) context and requires bit-identical results to
// the context-free methods.
func TestSearchContextUncancelledBitIdentical(t *testing.T) {
	db := demoDB(6, 10, 96)
	ctx, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	for _, s := range allStrategies() {
		q1, err := NewQuery(db[0], Euclidean(), WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		q2, err := NewQuery(db[0], Euclidean(), WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		plain, err := q1.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		ctxed, err := q2.SearchContext(ctx, db)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Index != ctxed.Index || math.Float64bits(plain.Dist) != math.Float64bits(ctxed.Dist) ||
			plain.Rotation != ctxed.Rotation {
			t.Fatalf("strategy %v: SearchContext %+v != Search %+v", s, ctxed, plain)
		}
		tk1, err := q1.SearchTopK(db, 4)
		if err != nil {
			t.Fatal(err)
		}
		tk2, err := q2.SearchTopKContext(ctx, db, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(tk1) != len(tk2) {
			t.Fatalf("strategy %v: topk lengths differ", s)
		}
		for i := range tk1 {
			if tk1[i].Index != tk2[i].Index || math.Float64bits(tk1[i].Dist) != math.Float64bits(tk2[i].Dist) {
				t.Fatalf("strategy %v: topk[%d] %+v != %+v", s, i, tk2[i], tk1[i])
			}
		}
	}
}

func TestSearchRangeMatchesDistances(t *testing.T) {
	db := demoDB(7, 12, 64)
	q, err := NewQuery(db[0], Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	all, err := q.SearchTopK(db, len(db))
	if err != nil {
		t.Fatal(err)
	}
	threshold := all[len(db)/2].Dist // strictly-below semantics: midpoint hit excluded
	got, err := q.SearchRange(db, threshold)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range all {
		if r.Dist < threshold {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("SearchRange returned %d hits, want %d", len(got), want)
	}
	for i, r := range got {
		if r.Dist >= threshold {
			t.Fatalf("hit %d dist %v >= threshold %v", i, r.Dist, threshold)
		}
		if i > 0 && got[i-1].Dist > r.Dist {
			t.Fatalf("range results not ascending at %d", i)
		}
		if r.Index != all[i].Index || math.Float64bits(r.Dist) != math.Float64bits(all[i].Dist) {
			t.Fatalf("range hit %d = %+v, want %+v", i, r, all[i])
		}
	}
}

// TestSearchParallelContextNoGoroutineLeak cancels parallel scans mid-flight
// and checks every worker goroutine is joined before the call returns.
func TestSearchParallelContextNoGoroutineLeak(t *testing.T) {
	db := demoDB(8, 64, 128)
	q, err := NewQuery(db[0], Euclidean(), WithStrategy(EarlyAbandonSearch))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		if _, err := q.SearchParallelContext(newFlipCtx(2), db, 4); err != context.Canceled {
			t.Fatalf("iteration %d: want context.Canceled, got %v", i, err)
		}
	}
	// Workers are WaitGroup-joined before return, so no settling time should
	// be needed; allow a few scheduler beats anyway before failing.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if i >= 100 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// And the query still works.
	if _, err := q.SearchParallel(db, 4); err != nil {
		t.Fatal(err)
	}
}

// TestSearchParallelInvariantUnreachable exercises SearchParallel across
// strategies, worker counts, and degenerate-but-valid databases: the
// internal-invariant "scan returned no result" error must never surface
// through the public API.
func TestSearchParallelInvariantUnreachable(t *testing.T) {
	dbs := [][]Series{
		demoDB(9, 1, 32),  // fewer series than workers
		demoDB(10, 2, 32), // ties possible with identical pairs below
		demoDB(11, 33, 32),
	}
	dup := demoDB(12, 1, 32)
	dbs = append(dbs, []Series{dup[0], dup[0], dup[0]}) // all-equal distances
	for _, s := range allStrategies() {
		for _, db := range dbs {
			for _, workers := range []int{0, 1, 2, 8} {
				q, err := NewQuery(db[0], Euclidean(), WithStrategy(s))
				if err != nil {
					t.Fatal(err)
				}
				r, err := q.SearchParallel(db, workers)
				if err != nil {
					if strings.Contains(err.Error(), "internal invariant") {
						t.Fatalf("strategy %v workers %d db %d: invariant error escaped: %v",
							s, workers, len(db), err)
					}
					t.Fatalf("strategy %v workers %d: %v", s, workers, err)
				}
				if r.Index < 0 {
					t.Fatalf("strategy %v workers %d: negative index without error", s, workers)
				}
			}
		}
	}
}

func TestSearchContextNilContext(t *testing.T) {
	db := demoDB(13, 4, 48)
	q, err := NewQuery(db[0], Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.SearchContext(nil, db) //nolint:staticcheck // nil ctx tolerance is part of the contract
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Search(db)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("nil-ctx search %+v != Search %+v", got, want)
	}
}
