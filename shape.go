package lbkeogh

import (
	"lbkeogh/internal/shape"
)

// Bitmap is a binary raster image of a shape. Build one with NewBitmap and
// the Fill* methods, or bring your own segmentation and set pixels directly.
type Bitmap = shape.Bitmap

// NewBitmap returns an all-background bitmap of the given size.
func NewBitmap(w, h int) *Bitmap { return shape.NewBitmap(w, h) }

// Signature converts the shape in b into its centroid-distance time series
// of length n (z-normalized, arc-length parametrized along the traced
// contour): the standard 1-D representation of Figure 2 of the paper, and
// the natural input to NewQuery. Rotating the bitmap circularly shifts the
// signature; mirroring it reverses it.
func Signature(b *Bitmap, n int) (Series, error) { return shape.Signature(b, n) }

// AngularSignature extracts the signature by casting n rays from the
// centroid (angle-parametrized). Exact for star-convex shapes; use Signature
// for general contours.
func AngularSignature(b *Bitmap, n int) (Series, error) { return shape.AngularSignature(b, n) }

// TraceContour returns the ordered outer boundary pixels of the shape in b
// (Moore-neighbour tracing), for callers that want the raw contour.
func TraceContour(b *Bitmap) ([][2]int, error) { return shape.Trace(b) }

// LetterBitmap rasterizes the demo glyphs used throughout the paper's
// motivating examples: 'b', 'd', 'p', 'q' (mirror/flip family) and
// '6', '9' (rotation family).
func LetterBitmap(ch byte, size int) *Bitmap { return shape.Letter(ch, size) }
