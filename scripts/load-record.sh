#!/bin/sh
# Record a capacity point into the bench trajectory: boot shapeserver on a
# synthetic database, run the shapeload saturation search against it, and
# leave bench/LOAD_<date>.json behind. Used by `make load-record`; commit the
# report so the load trajectory grows alongside the BENCH_*.json one.
#
# The serving shape (one in-flight search, a two-deep wait queue over a
# 2000x256 synthetic database) is chosen so the knee manifests as 429
# shedding at a rate a single-core CI box can comfortably offer: a deep
# queue or a high in-flight bound turns overload into queueing latency
# first — some of it upstream of admission when client and server share
# cores — which hides the admission controller from the saturation search.
set -eu

BENCH_DIR=${1:-bench}
GO=${GO:-go}
tmp=$(mktemp -d)
spid=""
cleanup() {
	[ -n "$spid" ] && kill "$spid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

$GO build -o "$tmp/shapeserver" ./cmd/shapeserver
$GO build -o "$tmp/shapeload" ./cmd/shapeload

sok=""
for try in 0 1 2 3 4; do
	saddr="127.0.0.1:$((18681 + try))"
	"$tmp/shapeserver" -addr "$saddr" -synthetic 2000,256 -seed 7 \
		-inflight 1 -queue 2 \
		>"$tmp/shapeserver.log" 2>&1 &
	spid=$!
	i=0
	while [ $i -lt 100 ]; do
		if ! kill -0 "$spid" 2>/dev/null; then
			break # died; likely the port was in use
		fi
		if curl -fsS "http://$saddr/readyz" >/dev/null 2>&1; then
			sok=1
			break
		fi
		sleep 0.2
		i=$((i + 1))
	done
	[ -n "$sok" ] && break
	kill "$spid" 2>/dev/null || true
	wait "$spid" 2>/dev/null || true
	spid=""
done
if [ -z "$sok" ]; then
	echo "load-record: shapeserver failed to start" >&2
	cat "$tmp/shapeserver.log" >&2
	exit 1
fi

"$tmp/shapeload" -target "http://$saddr" -mode ramp \
	-mix search=2,topk=1,range=1 -repeat 0.5 -timeout 2s \
	-start-qps 8 -max-qps 512 -step 2s \
	-slo-p99 250ms -slo-errors 0.01 \
	-out "$BENCH_DIR"

kill -TERM "$spid" 2>/dev/null || true
wait "$spid" 2>/dev/null || true
spid=""
echo "load-record: done"
