#!/bin/sh
# Segment-store ingest smoke test: bulk-ingest 50k shapes into an mmap-backed
# segment store with shapeingest (indexes deferred, full checksum verify),
# serve the store with shapeserver -segments, then exercise the online path —
# search a stored row (self-match), POST /v1/ingest two more rows, POST
# /v1/compact down to one segment, and assert the record counts on /livez and
# /metrics reconcile with what was loaded at every step.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
spid=""
cleanup() {
	[ -n "$spid" ] && kill "$spid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
	echo "ingest-smoke: $1" >&2
	exit 1
}

command -v curl >/dev/null 2>&1 || fail "curl not installed"

$GO build -o "$tmp/shapeingest" ./cmd/shapeingest
$GO build -o "$tmp/shapeserver" ./cmd/shapeserver

store="$tmp/store"
n=64
count=50000

# Bulk ingest: 50k shapes, segments rolled every 16k records (so compaction
# below has real work), indexes deferred, then a full-checksum reopen.
# Progress is structured slog JSON on stderr; the run summary is one JSON
# line on stdout.
"$tmp/shapeingest" -dir "$store" -count $count -n $n -segment-records 16384 \
	-verify >"$tmp/summary.json" 2>"$tmp/ingest.log" ||
	{
		cat "$tmp/ingest.log" >&2
		fail "shapeingest failed"
	}
grep -q '"msg":"ingest complete"' "$tmp/ingest.log" ||
	fail "shapeingest did not log ingest complete"
grep -q "\"rows\":$count" "$tmp/ingest.log" ||
	fail "shapeingest did not report the full load"
grep -q '"msg":"verify complete"' "$tmp/ingest.log" ||
	fail "shapeingest did not log verify complete"
grep -q '"segments":4' "$tmp/ingest.log" ||
	fail "expected 4 segments from the 16384-record roll"
grep -q '"checksums":"good"' "$tmp/ingest.log" ||
	fail "checksum verification did not pass"
# Bulk progress flows through the storage event journal: one sealed-segment
# event per roll, then the manifest swap that publishes the load.
sealed=$(grep -c '"kind":"segment_sealed"' "$tmp/ingest.log" || true)
[ "$sealed" = 4 ] ||
	fail "journal logged $sealed segment_sealed events, want 4"
grep -q '"kind":"manifest_swap"' "$tmp/ingest.log" ||
	fail "journal did not log the manifest swap"
# The stdout summary is machine-readable: rows, stage durations, and the
# journal's per-kind counts must reconcile with the log above.
grep -q "\"rows\":$count" "$tmp/summary.json" ||
	fail "run summary rows != $count: $(cat "$tmp/summary.json")"
grep -q '"segments":4' "$tmp/summary.json" ||
	fail "run summary segments != 4"
grep -q '"generate_ingest"' "$tmp/summary.json" ||
	fail "run summary has no stage durations"
grep -q '"segment_sealed":4' "$tmp/summary.json" ||
	fail "run summary journal_events does not carry 4 sealed segments"
[ -f "$store/MANIFEST.json" ] ||
	fail "no manifest written"

# Serve the store. Wait on /readyz: the listener binds first, and during the
# map the probe answers 503 with a "loading"/"mapping" reason.
sok=""
for try in 0 1 2 3 4; do
	saddr="127.0.0.1:$((18841 + try))"
	"$tmp/shapeserver" -addr "$saddr" -segments "$store" \
		>"$tmp/server.log" 2>&1 &
	spid=$!
	i=0
	while [ $i -lt 100 ]; do
		if ! kill -0 "$spid" 2>/dev/null; then
			break # died; likely the port was in use
		fi
		if curl -fsS "http://$saddr/readyz" >"$tmp/ready.json" 2>/dev/null; then
			sok=1
			break
		fi
		sleep 0.2
		i=$((i + 1))
	done
	[ -n "$sok" ] && break
	kill "$spid" 2>/dev/null || true
	wait "$spid" 2>/dev/null || true
	spid=""
done
[ -n "$sok" ] || {
	echo "ingest-smoke: shapeserver -segments failed to start" >&2
	cat "$tmp/server.log" >&2
	exit 1
}
grep -q '"reason": "serving"' "$tmp/ready.json" ||
	fail "readyz reason is not serving: $(cat "$tmp/ready.json")"
grep -q '"msg":"segment store mapped"' "$tmp/server.log" ||
	fail "server log does not report the store mapping"

# The mapped store serves the full load.
curl -fsS "http://$saddr/livez" >"$tmp/livez.json" ||
	fail "/livez did not answer 200"
grep -q "\"db_size\": $count" "$tmp/livez.json" ||
	fail "livez db_size != $count: $(cat "$tmp/livez.json")"

# Self-match against a stored row, served from the mmap'd raw column.
curl -fsS "http://$saddr/v1/search" -d '{"query_index":31415}' >"$tmp/search.json" ||
	fail "/v1/search did not answer 200"
grep -q '"index": 31415' "$tmp/search.json" ||
	fail "stored row did not self-match"
grep -q '"dist": 0' "$tmp/search.json" ||
	fail "self-match distance is not 0"

# Online ingest: two more (distinct) rows of the store's series length.
series1=$(seq 1 $n | awk '{printf "%s%.1f", s, ($1 % 7) + 0.5; s=","}')
series2=$(seq 1 $n | awk '{printf "%s%.1f", s, ($1 % 5) + 1.5; s=","}')
curl -fsS "http://$saddr/v1/ingest" \
	-d "{\"series\":[[$series1],[$series2]]}" >"$tmp/ingested.json" ||
	fail "/v1/ingest did not answer 200"
grep -q "\"first_id\": $count" "$tmp/ingested.json" ||
	fail "online ingest first_id != $count: $(cat "$tmp/ingested.json")"
grep -q "\"records\": $((count + 2))" "$tmp/ingested.json" ||
	fail "online ingest did not grow the store to $((count + 2))"

# The appended row is immediately searchable.
curl -fsS "http://$saddr/v1/search" -d "{\"query_index\":$((count + 1))}" >"$tmp/search2.json" ||
	fail "search of the ingested row did not answer 200"
grep -q "\"index\": $((count + 1))" "$tmp/search2.json" ||
	fail "ingested row did not self-match"

# Compact everything into one segment; counts must survive the swap.
curl -fsS "http://$saddr/v1/compact" -d '{}' >"$tmp/compact.json" ||
	fail "/v1/compact did not answer 200"
grep -q '"segments": 1' "$tmp/compact.json" ||
	fail "compact did not merge to one segment: $(cat "$tmp/compact.json")"
curl -fsS "http://$saddr/metrics" >"$tmp/metrics.txt" ||
	fail "/metrics did not answer 200"
grep -q "^shapeserver_store_records $((count + 2))$" "$tmp/metrics.txt" ||
	fail "store_records != $((count + 2)) after compact"
grep -q '^shapeserver_store_segments 1$' "$tmp/metrics.txt" ||
	fail "store_segments != 1 after compact"
grep -q '^shapeserver_store_compactions_total 1$' "$tmp/metrics.txt" ||
	fail "compactions_total != 1"
grep -q '^shapeserver_store_mapped_bytes [1-9]' "$tmp/metrics.txt" ||
	fail "no mapped bytes reported"

# Post-compact search: rows keep their IDs across the merge.
curl -fsS "http://$saddr/v1/search" -d '{"query_index":31415}' >"$tmp/search3.json" ||
	fail "post-compact search did not answer 200"
grep -q '"index": 31415' "$tmp/search3.json" ||
	fail "row 31415 lost across compaction"

# Storage-plane observability: /debug/storage renders the heatmap, and the
# journal's per-kind counters on /metrics reconcile with the store counters
# across the ingest -> compact lifecycle this run performed (1 online
# ingest, 1 compaction, hence 2 manifest swaps).
curl -fsS "http://$saddr/debug/storage" >"$tmp/storage.html" ||
	fail "/debug/storage did not answer 200"
grep -q 'segment heatmap' "$tmp/storage.html" ||
	fail "/debug/storage did not render the heatmap"
grep -q 'event journal' "$tmp/storage.html" ||
	fail "/debug/storage did not render the journal"
curl -fsS "http://$saddr/debug/storage?format=json" >"$tmp/storage.json" ||
	fail "/debug/storage?format=json did not answer 200"
grep -q '"journal_counts"' "$tmp/storage.json" ||
	fail "storage report has no journal counts"
curl -fsS "http://$saddr/metrics" >"$tmp/metrics2.txt" ||
	fail "/metrics did not answer 200 after the post-compact search"
grep -q '^lbkeogh_store_journal_events_total{kind="ingest_batch"} 1$' "$tmp/metrics2.txt" ||
	fail "journal ingest_batch count != shapeserver_store_ingests_total delta of 1"
grep -q '^lbkeogh_store_journal_events_total{kind="segment_compacted"} 1$' "$tmp/metrics2.txt" ||
	fail "journal segment_compacted count != compactions_total delta of 1"
grep -q '^lbkeogh_store_journal_events_total{kind="manifest_swap"} 2$' "$tmp/metrics2.txt" ||
	fail "journal manifest_swap count != ingests + compactions"
grep -q '^shapeserver_store_ingests_total 1$' "$tmp/metrics2.txt" ||
	fail "ingests_total != 1"
grep -q '^shapeserver_store_compactions_total 1$' "$tmp/metrics2.txt" ||
	fail "compactions_total != 1 on the second scrape"
grep -q 'lbkeogh_store_fetches_total{temperature="cold"}' "$tmp/metrics2.txt" ||
	fail "no cold/warm fetch split on /metrics"
grep -q 'shapeserver_segment_file_bytes{segment="seg-' "$tmp/metrics2.txt" ||
	fail "no per-segment heat families on /metrics"
grep -Eq 'shapeserver_segment_reads_total\{segment="seg-[0-9]+\.lbseg"\} [1-9]' "$tmp/metrics2.txt" ||
	fail "post-compact search left no per-segment reads"

kill -TERM "$spid" 2>/dev/null || true
wait "$spid" 2>/dev/null || true
spid=""

# Strict OpenMetrics-shape parse of the composite /metrics page with the
# storage families present (the test spins its own observed server).
$GO test ./internal/server/ -run 'TestStoreObsMetricsParse' -count=1 >/dev/null ||
	fail "strict exposition parse of the storage metric families failed"

echo "ingest-smoke: ok ($saddr: 50k bulk ingest, mmap serve, online ingest, compact, journal reconciles, storage dashboard renders)"
