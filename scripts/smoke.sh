#!/bin/sh
# Observability and serving smoke test. Part 1: run benchrun -serve on a
# tiny workload, then assert that /metrics serves parseable Prometheus text,
# /debug/lbkeogh serves the dashboard, and the Chrome trace export is
# well-formed. Part 2: boot shapeserver on a synthetic database, exercise
# nearest-neighbour and top-K search plus a deliberately timed-out request,
# check the structured request log correlates with response trace IDs, the
# profiling ring serves captures, and /readyz flips while the server drains
# gracefully on SIGTERM. Part 3: boot a fresh shapeserver and fire a short
# shapeload burst at it, asserting the SLO report is written, parses, and
# the client's request counts reconciled against the server's /metrics
# counters (shapeload exits non-zero when they disagree). Part 4: boot a
# shapeserver, run an EXPLAIN search, and assert the plan parses, its stage
# waterfall reconciles exactly with the /metrics pruning-waterfall counter
# deltas, and /debug/index serves the index-health report.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
spid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	[ -n "$spid" ] && kill "$spid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

if ! command -v curl >/dev/null 2>&1; then
	echo "smoke: curl not installed" >&2
	exit 1
fi

$GO build -o "$tmp/benchrun" ./cmd/benchrun

# Try a few ports in case one is taken; wait for the post-experiment
# "still serving" line so the instrumented scan has populated the logs.
ok=""
for try in 0 1 2 3 4; do
	addr="127.0.0.1:$((18621 + try))"
	"$tmp/benchrun" -fig none -maxm 100 -queries 2 -serve "$addr" >"$tmp/serve.log" 2>&1 &
	pid=$!
	i=0
	while [ $i -lt 100 ]; do
		if ! kill -0 "$pid" 2>/dev/null; then
			break # died; likely the port was in use
		fi
		if grep -q "still serving" "$tmp/serve.log"; then
			ok=1
			break
		fi
		sleep 0.2
		i=$((i + 1))
	done
	[ -n "$ok" ] && break
	kill "$pid" 2>/dev/null || true
	wait "$pid" 2>/dev/null || true
	pid=""
done
if [ -z "$ok" ]; then
	echo "smoke: benchrun -serve failed to start" >&2
	cat "$tmp/serve.log" >&2
	exit 1
fi

fail() {
	echo "smoke: $1" >&2
	exit 1
}

curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt" ||
	fail "/metrics did not answer 200"
grep -q '^# HELP lbkeogh_wedge_comparisons ' "$tmp/metrics.txt" ||
	fail "/metrics is missing the wedge HELP line"
grep -q '^# TYPE lbkeogh_wedge_comparisons counter$' "$tmp/metrics.txt" ||
	fail "/metrics is missing the wedge TYPE line"
grep -q 'stage_latency_ns_bucket{stage="hmerge"' "$tmp/metrics.txt" ||
	fail "/metrics is missing the hmerge stage-latency histogram"

curl -fsS "http://$addr/debug/lbkeogh" >"$tmp/dash.html" ||
	fail "/debug/lbkeogh did not answer 200"
grep -q '<h1>lbkeogh observability</h1>' "$tmp/dash.html" ||
	fail "dashboard HTML is missing its heading"
grep -q 'trace log: lbkeogh_wedge' "$tmp/dash.html" ||
	fail "dashboard is missing the wedge trace log"

curl -fsS "http://$addr/debug/lbkeogh?log=lbkeogh_wedge&format=chrome" >"$tmp/trace.json" ||
	fail "Chrome trace export did not answer 200"
grep -q '"traceEvents"' "$tmp/trace.json" ||
	fail "Chrome trace export is missing traceEvents"
grep -q '"name":"hmerge"' "$tmp/trace.json" ||
	fail "Chrome trace export is missing hmerge spans"
if command -v python3 >/dev/null 2>&1; then
	python3 -m json.tool "$tmp/trace.json" >/dev/null ||
		fail "Chrome trace export is not valid JSON"
fi

echo "smoke: ok ($addr: /metrics, /debug/lbkeogh, chrome export)"

# ---- Part 2: the shapeserver serving layer -------------------------------

$GO build -o "$tmp/shapeserver" ./cmd/shapeserver

# Wait on /readyz, not /healthz: the listener binds before the database
# loads, and during that window /healthz already answers 200 (alive) while
# /readyz stays 503 until the real handler is in.
sok=""
for try in 0 1 2 3 4; do
	saddr="127.0.0.1:$((18651 + try))"
	"$tmp/shapeserver" -addr "$saddr" -synthetic 400,128 -seed 7 \
		-drain-wait 2s -profile-interval 1s -profile-cpu 200ms \
		>"$tmp/shapeserver.log" 2>&1 &
	spid=$!
	i=0
	while [ $i -lt 100 ]; do
		if ! kill -0 "$spid" 2>/dev/null; then
			break # died; likely the port was in use
		fi
		if curl -fsS "http://$saddr/readyz" >"$tmp/ready.json" 2>/dev/null; then
			sok=1
			break
		fi
		sleep 0.2
		i=$((i + 1))
	done
	[ -n "$sok" ] && break
	kill "$spid" 2>/dev/null || true
	wait "$spid" 2>/dev/null || true
	spid=""
done
if [ -z "$sok" ]; then
	echo "smoke: shapeserver failed to start" >&2
	cat "$tmp/shapeserver.log" >&2
	exit 1
fi
grep -q '"status": "ready"' "$tmp/ready.json" ||
	fail "readyz is not ready"
curl -fsS "http://$saddr/healthz" >"$tmp/health.json" ||
	fail "healthz did not answer 200"
grep -q '"status": "ok"' "$tmp/health.json" ||
	fail "healthz is not ok"

# Nearest neighbour: a database row queried against the database matches
# itself at distance 0, and the response carries the pruning stats. Capture
# the response headers too, for the request-log correlation check below.
curl -fsS -D "$tmp/hdrs.txt" "http://$saddr/v1/search" -d '{"query_index":3}' >"$tmp/search.json" ||
	fail "/v1/search did not answer 200"
grep -q '"index": 3' "$tmp/search.json" ||
	fail "/v1/search did not return the self-match"
grep -q '"comparisons": 400' "$tmp/search.json" ||
	fail "/v1/search response is missing its SearchStats"

# Structured request log: the X-Request-ID header and the response trace_id
# must land together on one JSON log line.
rid=$(awk 'tolower($1) == "x-request-id:" {print $2}' "$tmp/hdrs.txt" | tr -d '\r')
[ -n "$rid" ] ||
	fail "/v1/search response has no X-Request-ID header"
tid=$(grep -o '"trace_id": *[0-9]*' "$tmp/search.json" | grep -o '[0-9]*$')
[ -n "$tid" ] && [ "$tid" != 0 ] ||
	fail "/v1/search response has no trace_id"
grep "\"request_id\":\"$rid\"" "$tmp/shapeserver.log" | grep -q "\"trace_id\":$tid" ||
	fail "no log line carries both request_id $rid and trace_id $tid"

# The same query again must hit the session pool.
curl -fsS "http://$saddr/v1/search" -d '{"query_index":3}' >"$tmp/search2.json" ||
	fail "repeated /v1/search did not answer 200"
grep -q '"pool_hit": true' "$tmp/search2.json" ||
	fail "repeated query did not reuse the pooled session"

# Top-K returns k ascending hits.
curl -fsS "http://$saddr/v1/topk" -d '{"query_index":3,"k":3}' >"$tmp/topk.json" ||
	fail "/v1/topk did not answer 200"
[ "$(grep -c '"index":' "$tmp/topk.json")" = 3 ] ||
	fail "/v1/topk did not return 3 hits"

# A hopeless deadline on a brute-force DTW scan must come back 504, promptly.
code=$(curl -s -o "$tmp/timeout.json" -w '%{http_code}' "http://$saddr/v1/search" \
	-d '{"query_index":0,"measure":"dtw","strategy":"brute","timeout_ms":1}')
[ "$code" = 504 ] ||
	fail "timed-out search answered $code, want 504"
grep -q 'deadline' "$tmp/timeout.json" ||
	fail "504 body does not mention the deadline"

curl -fsS "http://$saddr/metrics" >"$tmp/smetrics.txt" ||
	fail "shapeserver /metrics did not answer 200"
grep -q '^shapeserver_requests_total ' "$tmp/smetrics.txt" ||
	fail "shapeserver /metrics is missing requests_total"
grep -q '^shapeserver_timeouts_total 1$' "$tmp/smetrics.txt" ||
	fail "shapeserver /metrics did not count the timeout"
curl -fsS "http://$saddr/debug/lbkeogh" >/dev/null ||
	fail "shapeserver dashboard did not answer 200"

# The profiling ring captures a heap profile immediately on start.
curl -fsS "http://$saddr/debug/profiles" >"$tmp/profiles.html" ||
	fail "/debug/profiles did not answer 200"
grep -q 'heap' "$tmp/profiles.html" ||
	fail "/debug/profiles lists no heap capture"

# Graceful shutdown: SIGTERM flips /readyz to 503 (the -drain-wait window),
# then the process drains and reports it in the log.
kill -TERM "$spid"
i=0
drained=""
while [ $i -lt 50 ]; do
	code=$(curl -s -o /dev/null -w '%{http_code}' "http://$saddr/readyz" || true)
	if [ "$code" = 503 ]; then
		drained=1
		break
	fi
	sleep 0.1
	i=$((i + 1))
done
[ -n "$drained" ] ||
	fail "/readyz did not flip to 503 during the drain window"
wait "$spid" 2>/dev/null || fail "shapeserver exited non-zero on SIGTERM"
spid=""
grep -q '"msg":"drained"' "$tmp/shapeserver.log" ||
	fail "shapeserver did not report a clean drain"

echo "smoke: ok ($saddr: search, topk, pool hit, 504 deadline, log correlation, profiles, readyz drain)"

# ---- Part 3: shapeload capacity burst ------------------------------------

$GO build -o "$tmp/shapeload" ./cmd/shapeload

lok=""
for try in 0 1 2 3 4; do
	laddr="127.0.0.1:$((18711 + try))"
	"$tmp/shapeserver" -addr "$laddr" -synthetic 200,128 -seed 7 \
		>"$tmp/loadserver.log" 2>&1 &
	spid=$!
	i=0
	while [ $i -lt 100 ]; do
		if ! kill -0 "$spid" 2>/dev/null; then
			break # died; likely the port was in use
		fi
		if curl -fsS "http://$laddr/readyz" >/dev/null 2>&1; then
			lok=1
			break
		fi
		sleep 0.2
		i=$((i + 1))
	done
	[ -n "$lok" ] && break
	kill "$spid" 2>/dev/null || true
	wait "$spid" 2>/dev/null || true
	spid=""
done
[ -n "$lok" ] || {
	echo "smoke: shapeserver for the load burst failed to start" >&2
	cat "$tmp/loadserver.log" >&2
	exit 1
}

# A ~2s mixed burst well under capacity. shapeload itself exits non-zero if
# the client/server counter reconciliation fails, so the burst succeeding is
# already the cross-validation assertion; the greps below pin the artifact.
"$tmp/shapeload" -target "http://$laddr" -mode fixed -qps 40 -duration 2s \
	-mix search=2,topk=1,range=1 -repeat 0.5 -timeout 2s \
	-out "$tmp/loadbench" >"$tmp/shapeload.log" 2>&1 ||
	{
		cat "$tmp/shapeload.log" >&2
		fail "shapeload burst failed (client/server counters disagree?)"
	}
report=$(ls "$tmp"/loadbench/LOAD_*.json 2>/dev/null | head -1)
[ -n "$report" ] ||
	fail "shapeload wrote no LOAD_*.json report"
if command -v python3 >/dev/null 2>&1; then
	python3 -m json.tool "$report" >/dev/null ||
		fail "SLO report is not valid JSON"
fi
grep -q '"counts_agree": true' "$report" ||
	fail "SLO report does not record client/server count agreement"
grep -q '"offered_qps": 40' "$report" ||
	fail "SLO report is missing the offered load"
grep -q '"p99_ms"' "$report" ||
	fail "SLO report is missing latency quantiles"

kill -TERM "$spid" 2>/dev/null || true
wait "$spid" 2>/dev/null || true
spid=""

echo "smoke: ok ($laddr: shapeload burst, SLO report written, client/server counts reconcile)"
# ---- Part 4: query EXPLAIN and index introspection -----------------------

eok=""
for try in 0 1 2 3 4; do
	eaddr="127.0.0.1:$((18771 + try))"
	"$tmp/shapeserver" -addr "$eaddr" -synthetic 400,128 -seed 7 \
		>"$tmp/explainserver.log" 2>&1 &
	spid=$!
	i=0
	while [ $i -lt 100 ]; do
		if ! kill -0 "$spid" 2>/dev/null; then
			break # died; likely the port was in use
		fi
		if curl -fsS "http://$eaddr/readyz" >/dev/null 2>&1; then
			eok=1
			break
		fi
		sleep 0.2
		i=$((i + 1))
	done
	[ -n "$eok" ] && break
	kill "$spid" 2>/dev/null || true
	wait "$spid" 2>/dev/null || true
	spid=""
done
[ -n "$eok" ] || {
	echo "smoke: shapeserver for the explain checks failed to start" >&2
	cat "$tmp/explainserver.log" >&2
	exit 1
}

# Snapshot the pruning-waterfall counters, run one EXPLAIN search, snapshot
# again: the plan's stage counts must equal the counter deltas exactly.
curl -fsS "http://$eaddr/metrics" >"$tmp/wf_before.txt" ||
	fail "explain server /metrics did not answer 200"
curl -fsS "http://$eaddr/v1/search" -d '{"query_index":5,"explain":true}' >"$tmp/explain.json" ||
	fail "explain search did not answer 200"
curl -fsS "http://$eaddr/metrics" >"$tmp/wf_after.txt" ||
	fail "explain server /metrics did not answer 200 after the search"

grep -q '"plan":' "$tmp/explain.json" ||
	fail "explain:true response carries no plan"
grep -q '"waterfall":' "$tmp/explain.json" ||
	fail "explain plan carries no waterfall"
grep -q '"admitted_by":' "$tmp/explain.json" ||
	fail "explain plan carries no survivor annotations"
grep -q '^# TYPE shapeserver_pruning_waterfall_members_total counter$' "$tmp/wf_after.txt" ||
	fail "/metrics is missing the pruning-waterfall family"

if command -v python3 >/dev/null 2>&1; then
	python3 - "$tmp/explain.json" "$tmp/wf_before.txt" "$tmp/wf_after.txt" <<'PY' || fail "explain plan does not reconcile with the /metrics waterfall deltas"
import json, sys

plan = json.load(open(sys.argv[1]))["plan"]
wf = plan["waterfall"]

def counters(path):
    out = {}
    for line in open(path):
        if line.startswith("shapeserver_pruning_waterfall_"):
            name, value = line.rsplit(None, 1)
            out[name] = out.get(name, 0) + int(value)
    return out

before, after = counters(sys.argv[2]), counters(sys.argv[3])
def delta(name):
    return after.get(name, 0) - before.get(name, 0)

stages = {s["stage"]: s["members"] for s in wf["eliminated"]}
eliminated = sum(stages.values())
total = eliminated + wf["survivors"] + wf.get("cancelled", 0)
assert total == wf["rotations"], f"plan waterfall does not reconcile: {wf}"
assert delta("shapeserver_pruning_waterfall_rotations_total") == wf["rotations"]
assert delta("shapeserver_pruning_waterfall_survivors_total") == wf["survivors"]
for stage, members in stages.items():
    got = delta('shapeserver_pruning_waterfall_members_total{stage="%s"}' % stage)
    assert got == members, f"stage {stage}: metrics delta {got} != plan {members}"
print(f"explain waterfall reconciles: {wf['rotations']} rotations, "
      f"{eliminated} eliminated, {wf['survivors']} survivors")
PY
fi

# Index-health introspection serves a structural report of both trees.
curl -fsS "http://$eaddr/debug/index" >"$tmp/index.json" ||
	fail "/debug/index did not answer 200"
grep -q '"vp_tree":' "$tmp/index.json" ||
	fail "/debug/index is missing the VP-tree report"
grep -q '"r_tree":' "$tmp/index.json" ||
	fail "/debug/index is missing the R-tree report"
grep -q '"k_profiles":' "$tmp/index.json" ||
	fail "/debug/index is missing the wedge K profiles"
if command -v python3 >/dev/null 2>&1; then
	python3 -m json.tool "$tmp/index.json" >/dev/null ||
		fail "/debug/index is not valid JSON"
fi

kill -TERM "$spid" 2>/dev/null || true
wait "$spid" 2>/dev/null || true
spid=""

echo "smoke: ok ($eaddr: explain plan reconciles with /metrics, /debug/index serves)"

# ---- Part 5: segment-store ingest, serve, compact ------------------------

./scripts/ingest-smoke.sh || fail "segment-store ingest smoke failed"
