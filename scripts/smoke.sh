#!/bin/sh
# Observability smoke test: run benchrun -serve on a tiny workload, then
# assert that /metrics serves parseable Prometheus text, /debug/lbkeogh
# serves the dashboard, and the Chrome trace export is well-formed.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

if ! command -v curl >/dev/null 2>&1; then
	echo "smoke: curl not installed" >&2
	exit 1
fi

$GO build -o "$tmp/benchrun" ./cmd/benchrun

# Try a few ports in case one is taken; wait for the post-experiment
# "still serving" line so the instrumented scan has populated the logs.
ok=""
for try in 0 1 2 3 4; do
	addr="127.0.0.1:$((18621 + try))"
	"$tmp/benchrun" -fig none -maxm 100 -queries 2 -serve "$addr" >"$tmp/serve.log" 2>&1 &
	pid=$!
	i=0
	while [ $i -lt 100 ]; do
		if ! kill -0 "$pid" 2>/dev/null; then
			break # died; likely the port was in use
		fi
		if grep -q "still serving" "$tmp/serve.log"; then
			ok=1
			break
		fi
		sleep 0.2
		i=$((i + 1))
	done
	[ -n "$ok" ] && break
	kill "$pid" 2>/dev/null || true
	wait "$pid" 2>/dev/null || true
	pid=""
done
if [ -z "$ok" ]; then
	echo "smoke: benchrun -serve failed to start" >&2
	cat "$tmp/serve.log" >&2
	exit 1
fi

fail() {
	echo "smoke: $1" >&2
	exit 1
}

curl -fsS "http://$addr/metrics" >"$tmp/metrics.txt" ||
	fail "/metrics did not answer 200"
grep -q '^# HELP lbkeogh_wedge_comparisons ' "$tmp/metrics.txt" ||
	fail "/metrics is missing the wedge HELP line"
grep -q '^# TYPE lbkeogh_wedge_comparisons counter$' "$tmp/metrics.txt" ||
	fail "/metrics is missing the wedge TYPE line"
grep -q 'stage_latency_ns_bucket{stage="hmerge"' "$tmp/metrics.txt" ||
	fail "/metrics is missing the hmerge stage-latency histogram"

curl -fsS "http://$addr/debug/lbkeogh" >"$tmp/dash.html" ||
	fail "/debug/lbkeogh did not answer 200"
grep -q '<h1>lbkeogh observability</h1>' "$tmp/dash.html" ||
	fail "dashboard HTML is missing its heading"
grep -q 'trace log: lbkeogh_wedge' "$tmp/dash.html" ||
	fail "dashboard is missing the wedge trace log"

curl -fsS "http://$addr/debug/lbkeogh?log=lbkeogh_wedge&format=chrome" >"$tmp/trace.json" ||
	fail "Chrome trace export did not answer 200"
grep -q '"traceEvents"' "$tmp/trace.json" ||
	fail "Chrome trace export is missing traceEvents"
grep -q '"name":"hmerge"' "$tmp/trace.json" ||
	fail "Chrome trace export is missing hmerge spans"
if command -v python3 >/dev/null 2>&1; then
	python3 -m json.tool "$tmp/trace.json" >/dev/null ||
		fail "Chrome trace export is not valid JSON"
fi

echo "smoke: ok ($addr: /metrics, /debug/lbkeogh, chrome export)"
