package lbkeogh

import (
	"fmt"
	"io"

	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/explain"
	"lbkeogh/internal/obs/ops"
)

// BoundSampler is the shared bound-tightness sink: attach one to any number
// of queries with Query.SetBoundSampler and it measures, for every n-th
// comparison across all of them, the full bound waterfall — the
// FFT-magnitude, PAA and LB_Keogh envelope lower bounds plus the true
// rotation-invariant distance — yielding per-bound tightness-ratio
// histograms, false-positive attribution and elimination counts. The
// measurement never charges the queries' own counters, so the statistics it
// explains stay unperturbed. Safe for concurrent use; a nil *BoundSampler is
// a valid "off" value everywhere.
type BoundSampler struct {
	rec *explain.Recorder
}

// NewBoundSampler returns a sampler measuring every n-th comparison (n < 1
// samples every comparison). A few hundred is a good serving default: one
// waterfall measurement costs roughly one brute-force comparison.
func NewBoundSampler(n int) *BoundSampler {
	return &BoundSampler{rec: explain.NewRecorder(n)}
}

func (b *BoundSampler) recorder() *explain.Recorder {
	if b == nil {
		return nil
	}
	return b.rec
}

// BoundSamplerSnapshot is a point-in-time copy of a sampler's aggregate.
type BoundSamplerSnapshot = explain.RecorderSnapshot

// BoundTightness summarizes one bound's sampled evidence: tightness-ratio
// distribution (bound/true — the paper's own figure of merit for LB_Keogh),
// false-positive fraction, and how many sampled candidates it eliminated.
type BoundTightness = explain.BoundTightness

// Snapshot copies the sampler's aggregate out. Safe on a nil receiver.
func (b *BoundSampler) Snapshot() BoundSamplerSnapshot {
	return b.recorder().Snapshot()
}

// WriteMetrics writes the sampler's aggregate in Prometheus text exposition
// format: waterfall sample counters, per-bound check/false-positive/
// elimination counters, and per-bound tightness-ratio histograms whose
// buckets carry OpenMetrics exemplars linking to the trace id of a recorded
// query that landed there. Safe on a nil receiver (writes headers with zero
// samples).
func (b *BoundSampler) WriteMetrics(w io.Writer) {
	snap := b.Snapshot()
	ops.WriteCounter(w, "lbkeogh_explain_comparisons_seen_total",
		"Comparisons considered by the bound-tightness sampler.", snap.Seen)
	ops.WriteCounter(w, "lbkeogh_explain_samples_total",
		"Comparisons whose full bound waterfall was measured.", snap.Sampled)
	ops.WriteCounter(w, "lbkeogh_explain_sampled_survivors_total",
		"Sampled candidates that survived every waterfall stage.", snap.Survived)
	ops.WriteCounter(w, "lbkeogh_explain_sampled_kernel_kills_total",
		"Sampled candidates that passed every bound but were killed by the exact kernel.", snap.KernelKills)

	ops.WriteFamily(w, "lbkeogh_explain_bound_checks_total", "counter",
		"Sampled bound evaluations, per waterfall stage.")
	for _, bt := range snap.Bounds {
		fmt.Fprintf(w, "lbkeogh_explain_bound_checks_total{bound=%q} %d\n", bt.Bound, bt.Checks)
	}
	ops.WriteFamily(w, "lbkeogh_explain_bound_false_positives_total", "counter",
		"Sampled candidates a bound passed that the exact kernel then killed.")
	for _, bt := range snap.Bounds {
		fmt.Fprintf(w, "lbkeogh_explain_bound_false_positives_total{bound=%q} %d\n", bt.Bound, bt.FalsePositives)
	}
	ops.WriteFamily(w, "lbkeogh_explain_bound_eliminated_total", "counter",
		"Sampled candidates first eliminated by each waterfall stage.")
	for _, bt := range snap.Bounds {
		fmt.Fprintf(w, "lbkeogh_explain_bound_eliminated_total{bound=%q} %d\n", bt.Bound, bt.Eliminated)
	}

	ops.WriteFamily(w, "lbkeogh_explain_bound_tightness_ratio", "histogram",
		"Distribution of lower bound / true rotation-invariant distance, per bound (1 = perfectly tight).")
	for _, bt := range snap.Bounds {
		var cum int64
		for i, bk := range bt.Buckets {
			cum += bk.Count
			le := fmt.Sprintf("%.2f", float64(i+1)*explain.RatioBucketWidth)
			if i == len(bt.Buckets)-1 {
				le = "+Inf"
			}
			fmt.Fprintf(w, "lbkeogh_explain_bound_tightness_ratio_bucket{bound=%q,le=%q} %d", bt.Bound, le, cum)
			if bk.ExemplarTraceID != 0 {
				fmt.Fprintf(w, " # {trace_id=\"%d\"} %s", bk.ExemplarTraceID, ops.FormatFloat(bk.ExemplarValue))
			}
			fmt.Fprintf(w, "\n")
		}
		fmt.Fprintf(w, "lbkeogh_explain_bound_tightness_ratio_sum{bound=%q} %s\n", bt.Bound, ops.FormatFloat(bt.SumRatio))
		fmt.Fprintf(w, "lbkeogh_explain_bound_tightness_ratio_count{bound=%q} %d\n", bt.Bound, bt.Samples)
	}
}

// SetBoundSampler attaches (or with nil detaches) a shared bound-tightness
// sampler: every subsequent search feeds its sampled comparisons into the
// sampler's aggregate. Not safe to call concurrently with searches.
func (q *Query) SetBoundSampler(b *BoundSampler) {
	q.expSink = b.recorder()
	q.rearmExplain()
}

// SetExplain turns per-query EXPLAIN mode on or off. While on, every search
// additionally records per-comparison counter deltas and a query-local
// tightness aggregate (measuring every few comparisons), from which Explain
// builds the structured plan of the most recent search. EXPLAIN mode costs
// roughly one extra waterfall measurement per explain.DefaultOpInterval
// comparisons plus one Counts snapshot per comparison; leave it off outside
// diagnostics. Not safe to call concurrently with searches.
//
// Parallel searches (SearchParallel*) bypass the per-comparison hooks — the
// plan still carries the reconciling stage waterfall, but no survivor
// annotations or query-local tightness.
func (q *Query) SetExplain(on bool) {
	q.explainOn = on
	q.rearmExplain()
}

// rearmExplain (re)builds the searcher's explain op from the current
// sink/flag pair; with both off the searcher pays one nil check per
// comparison.
func (q *Query) rearmExplain() {
	if q.expSink == nil && !q.explainOn {
		q.exp = nil
		q.expValid = false
		q.searcher.SetExplain(nil)
		return
	}
	q.exp = explain.NewOp(q.searcher.ExplainContext(), q.expSink, q.explainOn)
	q.searcher.SetExplain(q.exp)
}

// beginExplainOp resets the explain op for one operation and snapshots the
// counters its waterfall will be derived from.
func (q *Query) beginExplainOp() {
	if q.exp == nil {
		return
	}
	q.exp.Reset()
	q.expBefore = q.obs.Counts()
	q.expValid = false
}

// endExplainOp captures the operation's counter delta and correlates the
// sampler exemplars with the finished trace (tid 0 = untraced).
func (q *Query) endExplainOp(tid int64) {
	if q.exp == nil {
		return
	}
	q.expDelta = q.obs.Counts().Sub(q.expBefore)
	q.expTraceID = tid
	q.expValid = true
	q.exp.FinishTrace(tid)
}

// ExplainWaterfall is the per-stage pruning breakdown of one search.
type ExplainWaterfall = explain.Waterfall

// ExplainStage is one waterfall stage with its eliminated-rotation count.
type ExplainStage = explain.StageCount

// ExplainSurvivor is one database candidate that survived the waterfall,
// annotated with the stage that admitted it into the exact kernel.
type ExplainSurvivor struct {
	// Index is the candidate's position in the scanned database.
	Index int `json:"index"`
	// Dist is its exact rotation-invariant distance.
	Dist float64 `json:"dist"`
	// AdmittedBy names the last waterfall stage the candidate passed through
	// before the kernel confirmed it ("kernel" when no bound applied).
	AdmittedBy string `json:"admitted_by"`
}

// maxExplainSurvivors caps the survivor annotations in one plan; range
// queries can match arbitrarily many candidates and the plan must stay a
// bounded response payload. The most recent survivors are kept (for a 1-NN
// search the improving chain ends at the answer).
const maxExplainSurvivors = 64

// ExplainPlan is the structured result of a search run in EXPLAIN mode: the
// stage waterfall (whose counts reconcile with the search's SearchStats
// delta by construction), the sampled tightness summary, and the surviving
// candidates annotated with the bound that admitted them.
type ExplainPlan struct {
	Strategy string `json:"strategy"`
	Measure  string `json:"measure"`
	// TraceID correlates the plan to the recorded trace of the same search
	// (0 when untraced or sampled away).
	TraceID            int64             `json:"trace_id,omitempty"`
	Waterfall          ExplainWaterfall  `json:"waterfall"`
	SampledComparisons int64             `json:"sampled_comparisons"`
	Tightness          []BoundTightness  `json:"tightness,omitempty"`
	Survivors          []ExplainSurvivor `json:"survivors,omitempty"`
	// SurvivorsDropped counts older survivors trimmed from the annotation
	// list when a search admitted more than the plan cap.
	SurvivorsDropped int `json:"survivors_dropped,omitempty"`
}

// admittedBy derives, from one comparison's counter delta, the last
// waterfall stage the candidate passed through before its exact evaluation.
func admittedBy(d obs.Counts) string {
	switch {
	case d.WedgeNodeVisits+d.WedgeLeafVisits > 0:
		return explain.StageEnvelope
	case d.FFTFallbacks > 0:
		return explain.StageFFT
	default:
		return explain.StageKernel
	}
}

// Explain returns the plan of the query's most recent search, or nil when
// EXPLAIN mode was off (see SetExplain) or no search has run since it was
// turned on.
func (q *Query) Explain() *ExplainPlan {
	if q.exp == nil || !q.expValid {
		return nil
	}
	plan := &ExplainPlan{
		Strategy:           q.strategy.String(),
		Measure:            q.measure.Name(),
		TraceID:            q.expTraceID,
		Waterfall:          explain.FromCounts(q.expDelta),
		SampledComparisons: q.exp.LocalSamples(),
		Tightness:          q.exp.LocalTightness(),
	}
	for i, c := range q.exp.Comparisons() {
		if !c.Found {
			continue
		}
		plan.Survivors = append(plan.Survivors, ExplainSurvivor{
			Index:      i,
			Dist:       c.Dist,
			AdmittedBy: admittedBy(c.Delta),
		})
	}
	if n := len(plan.Survivors); n > maxExplainSurvivors {
		plan.SurvivorsDropped = n - maxExplainSurvivors
		plan.Survivors = plan.Survivors[n-maxExplainSurvivors:]
	}
	return plan
}
