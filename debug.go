package lbkeogh

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"time"

	"lbkeogh/internal/obs/trace"
)

// DebugHandler serves the live observability dashboard. Mount it at
// /debug/lbkeogh:
//
//	http.Handle("/debug/lbkeogh", lbkeogh.DebugHandler(
//	        map[string]lbkeogh.StatsSource{"query": q},
//	        map[string]*lbkeogh.TraceLog{"query": tlog},
//	))
//
// The page renders each source's counter record, each log's per-stage
// latency quantiles, the slow-query log, and a span waterfall per retained
// trace. Query parameters select machine-readable exports instead of HTML:
// ?log=<name>&format=chrome downloads every retained trace of that log as a
// Chrome trace-event file (Perfetto-loadable); adding &trace=<id> narrows to
// one trace; &format=jsonl emits one span per line. Either map may be nil.
func DebugHandler(stats map[string]StatsSource, logs map[string]*TraceLog) http.Handler {
	return DebugHandlerWithPanels(stats, logs)
}

// DebugPanel is an extra dashboard section rendered between the counter
// tables and the trace logs. HTML is called per request, so panels can show
// live state; the serving layer uses this to splice its RED/SLO and
// pruning-power windows into the same page.
type DebugPanel struct {
	Title string
	HTML  func() template.HTML
}

// DebugHandlerWithPanels is DebugHandler with extra dashboard panels.
func DebugHandlerWithPanels(stats map[string]StatsSource, logs map[string]*TraceLog, panels ...DebugPanel) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if name := r.URL.Query().Get("log"); name != "" {
			serveTraceExport(w, r, logs[name])
			return
		}
		page := buildDebugPage(stats, logs)
		for _, p := range panels {
			page.Panels = append(page.Panels, debugPanel{Title: p.Title, Body: p.HTML()})
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := debugTemplate.Execute(w, page); err != nil {
			// Headers are already out; all we can do is log into the body.
			fmt.Fprintf(w, "<!-- render error: %v -->", err)
		}
	})
}

// serveTraceExport answers the ?log=&format=&trace= download routes.
func serveTraceExport(w http.ResponseWriter, r *http.Request, t *TraceLog) {
	if t == nil {
		http.Error(w, "unknown trace log", http.StatusNotFound)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "chrome"
	}
	idStr := r.URL.Query().Get("trace")
	switch format {
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		if idStr == "" {
			if err := t.WriteChromeTraces(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		if err := t.WriteChromeTrace(w, id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
		}
	case "jsonl":
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			http.Error(w, "jsonl export needs a trace id", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		if err := t.WriteTraceJSONL(w, id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
		}
	default:
		http.Error(w, "format must be chrome or jsonl", http.StatusBadRequest)
	}
}

// maxWaterfallRows bounds the spans rendered per trace so a saturated trace
// cannot blow up the page; exports always carry every span.
const maxWaterfallRows = 96

type debugPage struct {
	Generated time.Time
	Sources   []debugSource
	Panels    []debugPanel
	Logs      []debugLog
}

type debugPanel struct {
	Title string
	Body  template.HTML
}

type debugSource struct {
	Name  string
	Stats SearchStats
}

type debugLog struct {
	Name          string
	Finished      int64
	Sampled       int64
	SlowThreshold time.Duration
	Stages        []StageLatency
	Slow          []debugTrace
	Recent        []debugTrace
}

type debugTrace struct {
	ID        int64
	Label     string
	Start     string
	Dur       time.Duration
	Slow      bool
	Dropped   int64
	Truncated int // rows hidden beyond maxWaterfallRows
	ChromeURL string
	JSONLURL  string
	Rows      []debugSpanRow
}

type debugSpanRow struct {
	Indent   int
	Stage    string
	Ref      int32
	Dur      time.Duration
	LeftPct  float64
	WidthPct float64
	Attrs    string
	Visits   string
}

func buildDebugPage(stats map[string]StatsSource, logs map[string]*TraceLog) debugPage {
	page := debugPage{Generated: time.Now()}
	names := make([]string, 0, len(stats))
	for n := range stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		page.Sources = append(page.Sources, debugSource{Name: n, Stats: stats[n].Stats()})
	}
	logNames := make([]string, 0, len(logs))
	for n := range logs {
		logNames = append(logNames, n)
	}
	sort.Strings(logNames)
	for _, n := range logNames {
		t := logs[n]
		if t == nil {
			continue
		}
		finished, sampled := t.Totals()
		dl := debugLog{
			Name:          n,
			Finished:      finished,
			Sampled:       sampled,
			SlowThreshold: t.SlowThreshold(),
			Stages:        t.StageLatencies(),
		}
		for _, tr := range t.inner().Slow() {
			dl.Slow = append(dl.Slow, buildDebugTrace(n, tr))
		}
		for _, tr := range t.inner().Recent() {
			dl.Recent = append(dl.Recent, buildDebugTrace(n, tr))
		}
		// Newest first reads better in a live log.
		reverse(dl.Slow)
		reverse(dl.Recent)
		page.Logs = append(page.Logs, dl)
	}
	return page
}

func reverse(ts []debugTrace) {
	for i, j := 0, len(ts)-1; i < j; i, j = i+1, j-1 {
		ts[i], ts[j] = ts[j], ts[i]
	}
}

func buildDebugTrace(logName string, tr trace.Trace) debugTrace {
	out := debugTrace{
		ID:        tr.ID,
		Label:     tr.Label,
		Start:     tr.Wall.Format("15:04:05.000"),
		Dur:       time.Duration(tr.DurNS),
		Slow:      tr.Slow,
		Dropped:   tr.Dropped,
		ChromeURL: fmt.Sprintf("?log=%s&trace=%d&format=chrome", logName, tr.ID),
		JSONLURL:  fmt.Sprintf("?log=%s&trace=%d&format=jsonl", logName, tr.ID),
	}
	total := tr.DurNS
	if total <= 0 {
		total = 1
	}
	depth := make([]int, len(tr.Spans))
	for i, sp := range tr.Spans {
		if sp.Parent >= 0 && int(sp.Parent) < i {
			depth[i] = depth[sp.Parent] + 1
		}
	}
	n := len(tr.Spans)
	if n > maxWaterfallRows {
		out.Truncated = n - maxWaterfallRows
		n = maxWaterfallRows
	}
	for i := 0; i < n; i++ {
		sp := tr.Spans[i]
		row := debugSpanRow{
			Indent:   depth[i],
			Stage:    sp.Stage.String(),
			Ref:      sp.Ref,
			Dur:      time.Duration(sp.Dur),
			LeftPct:  float64(sp.Start) / float64(total) * 100,
			WidthPct: float64(sp.Dur) / float64(total) * 100,
		}
		if row.WidthPct < 0.25 {
			row.WidthPct = 0.25 // keep hair-thin spans visible
		}
		if !sp.Attrs.IsZero() {
			if b, err := json.Marshal(sp.Attrs); err == nil {
				row.Attrs = string(b)
			}
		}
		if len(sp.VisitsByLevel) > 0 {
			row.Visits = fmt.Sprint(sp.VisitsByLevel)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

var debugTemplate = template.Must(template.New("debug").Funcs(template.FuncMap{
	"ns": func(v int64) string { return time.Duration(v).String() },
	"indentPx": func(n int) int {
		return n * 14
	},
}).Parse(`<!DOCTYPE html>
<html><head><title>lbkeogh debug</title><style>
body { font: 13px/1.5 system-ui, sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
h3 { font-size: 1em; margin: 1em 0 0.3em; }
table { border-collapse: collapse; margin: 0.4em 0 1em; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #f2f2f2; }
td.l, th.l { text-align: left; }
.wf { width: 30em; position: relative; background: #fafafa; }
.bar { position: absolute; top: 2px; bottom: 2px; background: #4a90d9; border-radius: 2px; }
.bar.kernel { background: #d97a4a; } .bar.hmerge { background: #5cb85c; }
.bar.envelope { background: #b07cc6; } .bar.fetch { background: #c6b30a; }
.slow { color: #b00; font-weight: bold; }
.meta { color: #777; }
details { margin: 0.3em 0; }
summary { cursor: pointer; }
</style></head><body>
<h1>lbkeogh observability</h1>
<p class="meta">generated {{.Generated.Format "2006-01-02 15:04:05.000"}}</p>

{{range .Sources}}
<h2>stats: {{.Name}}</h2>
<table>
<tr><th>comparisons</th><th>rotations</th><th>steps</th><th>full dist</th><th>abandons</th>
<th>wedge pruned</th><th>leaf LB prunes</th><th>fft rejected</th><th>prune rate</th>
<th>index fetches</th><th>disk reads</th></tr>
<tr><td>{{.Stats.Comparisons}}</td><td>{{.Stats.Rotations}}</td><td>{{.Stats.Steps}}</td>
<td>{{.Stats.FullDistEvals}}</td><td>{{.Stats.EarlyAbandons}}</td>
<td>{{.Stats.WedgePrunedMembers}}</td><td>{{.Stats.WedgeLeafLBPrunes}}</td>
<td>{{.Stats.FFTRejectedMembers}}</td><td>{{printf "%.4f" .Stats.PruneRate}}</td>
<td>{{.Stats.IndexFetches}}</td><td>{{.Stats.DiskReads}}</td></tr>
</table>
{{end}}

{{range .Panels}}
<h2>{{.Title}}</h2>
{{.Body}}
{{end}}

{{range .Logs}}
<h2>trace log: {{.Name}}</h2>
<p class="meta">{{.Finished}} traces finished, {{.Sampled}} sampled;
slow threshold {{.SlowThreshold}} &middot;
<a href="?log={{.Name}}&format=chrome">download all retained traces (Chrome trace-event JSON)</a></p>

{{if .Stages}}
<h3>stage latencies</h3>
<table>
<tr><th class="l">stage</th><th>count</th><th>sum</th><th>p50</th><th>p90</th><th>p99</th></tr>
{{range .Stages}}
<tr><td class="l">{{.Stage}}</td><td>{{.Count}}</td><td>{{ns .SumNS}}</td>
<td>{{ns .P50NS}}</td><td>{{ns .P90NS}}</td><td>{{ns .P99NS}}</td></tr>
{{end}}
</table>
{{end}}

{{if .Slow}}
<h3>slow queries</h3>
{{template "traces" .Slow}}
{{end}}

{{if .Recent}}
<h3>recent traces (sampled)</h3>
{{template "traces" .Recent}}
{{end}}
{{end}}

{{define "traces"}}
{{range .}}
<details>
<summary>#{{.ID}} {{.Label}} &middot; {{.Start}} &middot;
{{if .Slow}}<span class="slow">{{.Dur}}</span>{{else}}{{.Dur}}{{end}}
&middot; {{len .Rows}} spans{{if .Dropped}} ({{.Dropped}} dropped){{end}}
&middot; <a href="{{.ChromeURL}}">chrome</a> <a href="{{.JSONLURL}}">jsonl</a></summary>
<table>
<tr><th class="l">stage</th><th>ref</th><th>dur</th><th class="l wf">waterfall</th><th class="l">attrs</th></tr>
{{range .Rows}}
<tr>
<td class="l" style="padding-left: {{indentPx .Indent}}px">{{.Stage}}</td>
<td>{{if ge .Ref 0}}{{.Ref}}{{end}}</td>
<td>{{.Dur}}</td>
<td class="wf"><div class="bar {{.Stage}}" style="left: {{printf "%.2f" .LeftPct}}%; width: {{printf "%.2f" .WidthPct}}%"></div></td>
<td class="l">{{.Attrs}}{{if .Visits}} visits={{.Visits}}{{end}}</td>
</tr>
{{end}}
</table>
{{if .Truncated}}<p class="meta">{{.Truncated}} more spans not shown (exports carry all).</p>{{end}}
</details>
{{end}}
{{end}}
</body></html>
`))
