package lbkeogh_test

import (
	"fmt"

	"lbkeogh"
)

// The basic workflow: compile a query, search a database.
func ExampleNewQuery() {
	db := lbkeogh.SyntheticProjectilePoints(42, 100, 128)
	// Query with a rotated copy of database object 25.
	query := make(lbkeogh.Series, 128)
	for i := range query {
		query[i] = db[25][(i+40)%128]
	}
	q, err := lbkeogh.NewQuery(query, lbkeogh.Euclidean())
	if err != nil {
		panic(err)
	}
	res, err := q.Search(db)
	if err != nil {
		panic(err)
	}
	fmt.Printf("nearest: object %d at distance %.3f, rotated %.1f degrees\n",
		res.Index, res.Dist, res.Rotation.Degrees)
	// Output:
	// nearest: object 25 at distance 0.000, rotated 247.5 degrees
}

// Exact rotation-invariant distance between two series.
func ExampleQuery_Distance() {
	db := lbkeogh.SyntheticProjectilePoints(7, 2, 64)
	q, _ := lbkeogh.NewQuery(db[0], lbkeogh.DTW(3))
	// A rotated copy matches at distance zero.
	rotated := make(lbkeogh.Series, 64)
	for i := range rotated {
		rotated[i] = db[0][(i+10)%64]
	}
	d, rot, _ := q.Distance(rotated)
	fmt.Printf("distance %.3f at shift %d\n", d, rot.Shift)
	// Output:
	// distance 0.000 at shift 10
}

// Mirror-image (enantiomorphic) invariance: a "d" is a mirrored "b".
func ExampleWithMirrorInvariance() {
	glyphs, _ := lbkeogh.Glyphs(96)
	plain, _ := lbkeogh.NewQuery(glyphs['b'], lbkeogh.Euclidean())
	mirror, _ := lbkeogh.NewQuery(glyphs['b'], lbkeogh.Euclidean(),
		lbkeogh.WithMirrorInvariance())
	dPlain, _, _ := plain.Distance(glyphs['d'])
	dMirror, rot, _ := mirror.Distance(glyphs['d'])
	fmt.Printf("b-d without mirror invariance is close: %v\n", dPlain < 1)
	fmt.Printf("b-d with mirror invariance is close: %v (mirrored: %v)\n",
		dMirror < 1, rot.Mirrored)
	// Output:
	// b-d without mirror invariance is close: false
	// b-d with mirror invariance is close: true (mirrored: true)
}

// Hierarchical clustering under exact rotation-invariant distances.
func ExampleCluster() {
	skulls, species := lbkeogh.SkullDataset(7, 1, 96, 0.01)
	dend, _ := lbkeogh.Cluster(skulls.Series, lbkeogh.Euclidean())
	groups := dend.Clusters(4)
	// Count how many of the 4 clusters pair two forms of the same genus
	// (labels are sorted species names; related forms share a prefix).
	paired := 0
	for _, g := range groups {
		if len(g) == 2 {
			a := species[skulls.Labels[g[0]]]
			b := species[skulls.Labels[g[1]]]
			if a[:3] == b[:3] {
				paired++
			}
		}
	}
	fmt.Printf("%d of 4 clusters pair related skull forms\n", paired)
	// Output:
	// 4 of 4 clusters pair related skull forms
}

// Streaming query filtering: a pattern dictionary watches a live stream.
func ExampleNewMonitor() {
	pattern := make(lbkeogh.Series, 32)
	for i := range pattern {
		pattern[i] = float64(i%8) - 3.5 // sawtooth
	}
	mon, _ := lbkeogh.NewMonitor([]lbkeogh.Series{pattern}, lbkeogh.Euclidean(), 0.5)
	stream := make([]float64, 100)      // silence...
	stream = append(stream, pattern...) // ...then the pattern verbatim
	stream = append(stream, make([]float64, 20)...)
	for _, m := range mon.PushAll(stream) {
		fmt.Printf("pattern %d matched at t=%d (dist %.2f)\n", m.Pattern, m.End, m.Dist)
	}
	// Output:
	// pattern 0 matched at t=131 (dist 0.00)
}
