package lbkeogh_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"lbkeogh"
)

func obsTestDB(t *testing.T, m, n int) []lbkeogh.Series {
	t.Helper()
	return lbkeogh.SyntheticProjectilePoints(7, m, n)
}

func reconciles(s lbkeogh.SearchStats) bool {
	return s.Rotations == s.FullDistEvals+s.EarlyAbandons+
		s.WedgePrunedMembers+s.WedgeLeafLBPrunes+s.FFTRejectedMembers
}

func TestQueryStatsReconcile(t *testing.T) {
	db := obsTestDB(t, 41, 64)
	q, db := db[0], db[1:]
	for _, strat := range []lbkeogh.Strategy{
		lbkeogh.WedgeSearch, lbkeogh.BruteForceSearch,
		lbkeogh.EarlyAbandonSearch, lbkeogh.FFTSearch,
	} {
		query, err := lbkeogh.NewQuery(q, lbkeogh.Euclidean(), lbkeogh.WithStrategy(strat))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := query.Search(db); err != nil {
			t.Fatal(err)
		}
		st := query.Stats()
		if st.Comparisons != int64(len(db)) {
			t.Fatalf("strategy %v: Comparisons = %d, want %d", strat, st.Comparisons, len(db))
		}
		if !st.Reconciles() || !reconciles(st) {
			t.Fatalf("strategy %v: stats do not reconcile: %+v", strat, st)
		}
		if st.Steps <= 0 || st.StepsPerComparison <= 0 {
			t.Fatalf("strategy %v: no steps recorded: %+v", strat, st)
		}
		query.ResetStats()
		if st := query.Stats(); st.Comparisons != 0 || st.Steps != 0 {
			t.Fatalf("ResetStats left data: %+v", st)
		}
	}
}

func TestQueryStatsCoverParallelSearch(t *testing.T) {
	db := obsTestDB(t, 101, 64)
	q, db := db[0], db[1:]
	query, err := lbkeogh.NewQuery(q, lbkeogh.Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := query.Search(db)
	if err != nil {
		t.Fatal(err)
	}
	query.ResetStats()
	got, err := query.SearchParallel(db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != serial.Index {
		t.Fatalf("parallel index %d != serial %d", got.Index, serial.Index)
	}
	st := query.Stats()
	if st.Comparisons < int64(len(db)) {
		t.Fatalf("parallel scan recorded %d comparisons, want >= %d", st.Comparisons, len(db))
	}
	if !st.Reconciles() {
		t.Fatalf("parallel stats do not reconcile: %+v", st)
	}
}

func TestQueryTracerEvents(t *testing.T) {
	db := obsTestDB(t, 31, 64)
	q, db := db[0], db[1:]
	var abandons, kchanges int
	tr := traceFns{
		abandon: func(int) { abandons++ },
		kchange: func(int, int) { kchanges++ },
	}
	query, err := lbkeogh.NewQuery(q, lbkeogh.Euclidean(), lbkeogh.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := query.Search(db); err != nil {
		t.Fatal(err)
	}
	st := query.Stats()
	if int64(abandons) != st.EarlyAbandons {
		t.Fatalf("tracer saw %d abandons, stats %d", abandons, st.EarlyAbandons)
	}
	if int64(kchanges) != st.KChanges {
		t.Fatalf("tracer saw %d K changes, stats %d", kchanges, st.KChanges)
	}
}

// traceFns is a minimal Tracer for tests.
type traceFns struct {
	abandon func(int)
	kchange func(int, int)
}

func (t traceFns) OnWedgeVisit(node, level int, lb float64, pruned bool) {}
func (t traceFns) OnAbandon(member int) {
	if t.abandon != nil {
		t.abandon(member)
	}
}
func (t traceFns) OnKChange(oldK, newK int) {
	if t.kchange != nil {
		t.kchange(oldK, newK)
	}
}
func (t traceFns) OnFetch(id int) {}

func TestIndexStatsCountFetches(t *testing.T) {
	db := obsTestDB(t, 61, 64)
	q, db := db[0], db[1:]
	ix, err := lbkeogh.NewIndex(db, 8)
	if err != nil {
		t.Fatal(err)
	}
	query, err := lbkeogh.NewQuery(q, lbkeogh.Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(query); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.IndexFetches == 0 {
		t.Fatal("indexed search recorded no fetches")
	}
	if st.DiskReads != int64(ix.DiskReads()) {
		t.Fatalf("stats DiskReads %d != store reads %d", st.DiskReads, ix.DiskReads())
	}
	if !st.Reconciles() {
		t.Fatalf("index stats do not reconcile: %+v", st)
	}
	ix.ResetStats()
	if st := ix.Stats(); st.IndexFetches != 0 {
		t.Fatalf("ResetStats left fetches: %+v", st)
	}
}

func TestMonitorStatsReconcile(t *testing.T) {
	patterns := obsTestDB(t, 4, 32)
	mon, err := lbkeogh.NewMonitor(patterns, lbkeogh.Euclidean(), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	stream := obsTestDB(t, 1, 32)[0]
	mon.PushAll(stream)
	mon.PushAll(stream)
	st := mon.Stats()
	if st.Comparisons == 0 {
		t.Fatal("monitor recorded no window comparisons")
	}
	if !st.Reconciles() {
		t.Fatalf("monitor stats do not reconcile: %+v", st)
	}
	if st.Steps != mon.Steps() {
		t.Fatalf("stats steps %d != monitor steps %d", st.Steps, mon.Steps())
	}
	mon.ResetStats()
	if st := mon.Stats(); st.Comparisons != 0 {
		t.Fatalf("ResetStats left data: %+v", st)
	}
}

func TestMetricsHandlerServesPrometheusText(t *testing.T) {
	db := obsTestDB(t, 21, 64)
	q, db := db[0], db[1:]
	query, err := lbkeogh.NewQuery(q, lbkeogh.Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := query.Search(db); err != nil {
		t.Fatal(err)
	}
	h := lbkeogh.MetricsHandler(map[string]lbkeogh.StatsSource{"test_query": query})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE test_query_comparisons counter",
		"test_query_comparisons 20",
		"# TYPE test_query_comparison_steps histogram",
		`test_query_comparison_steps_bucket{le="+Inf"} 20`,
		"test_query_comparison_steps_count 20",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q\n---\n%s", want, body)
		}
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	db := obsTestDB(t, 21, 64)
	q, db := db[0], db[1:]
	query, err := lbkeogh.NewQuery(q, lbkeogh.Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := query.Search(db); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(query.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var back lbkeogh.SearchStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Comparisons != 20 || !back.Reconciles() {
		t.Fatalf("round-tripped stats wrong: %+v", back)
	}
}
