package lbkeogh

import (
	"fmt"

	"lbkeogh/internal/cluster"
	"lbkeogh/internal/core"
	"lbkeogh/internal/mining"
)

// Motif is the closest pair in a collection under a rotation-invariant
// measure — the shape-mining primitive the paper lists among its
// applications ("cluster, classify and discover motifs").
type Motif struct {
	// I, J index the two closest series.
	I, J int
	// Dist is their exact rotation-invariant distance.
	Dist float64
	// Rotation aligns series I onto series J.
	Rotation Rotation
}

// miningConfig reuses the query options that make sense for whole-collection
// operations (strategy and K tuning are internal to the scan).
func miningConfig(opts []QueryOption) (core.Options, error) {
	cfg := queryConfig{maxShift: -1, intervals: 5}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxShift == -2 {
		return core.Options{}, fmt.Errorf("lbkeogh: degree-based rotation limits need a series length; use WithMaxRotationSamples for mining operations")
	}
	return core.Options{Mirror: cfg.mirror, MaxShift: cfg.maxShift}, nil
}

func validateDB(db []Series) (int, error) {
	if len(db) == 0 {
		return 0, fmt.Errorf("lbkeogh: empty database")
	}
	n := len(db[0])
	if n < 2 {
		return 0, fmt.Errorf("lbkeogh: series need >= 2 samples")
	}
	for i, s := range db {
		if len(s) != n {
			return 0, fmt.Errorf("lbkeogh: database series %d length %d != %d", i, len(s), n)
		}
	}
	return n, nil
}

// ClosestPair returns the exact motif of db: the pair of series with the
// smallest rotation-invariant distance under m. Options WithMirrorInvariance
// and WithMaxRotationSamples apply.
func ClosestPair(db []Series, m Measure, opts ...QueryOption) (Motif, error) {
	if err := m.validate(); err != nil {
		return Motif{}, err
	}
	n, err := validateDB(db)
	if err != nil {
		return Motif{}, err
	}
	if len(db) < 2 {
		return Motif{}, fmt.Errorf("lbkeogh: closest pair needs >= 2 series")
	}
	copts, err := miningConfig(opts)
	if err != nil {
		return Motif{}, err
	}
	p, err := mining.ClosestPair(db, m.kern, copts, nil)
	if err != nil {
		return Motif{}, err
	}
	return Motif{
		I: p.I, J: p.J, Dist: p.Dist,
		Rotation: Rotation{
			Shift:    p.Member.Shift,
			Mirrored: p.Member.Mirrored,
			Degrees:  float64(p.Member.Shift) / float64(n) * 360,
		},
	}, nil
}

// Dendrogram is the merge tree of a hierarchical clustering: Leaves()
// recovers cluster membership at any granularity.
type Dendrogram struct {
	d *cluster.Dendrogram
}

// Clusters returns the indices of db partitioned into k groups (the
// dendrogram cut of Figure 10): one slice of series indices per cluster.
func (dd *Dendrogram) Clusters(k int) [][]int {
	front := dd.d.Frontier(k)
	out := make([][]int, len(front))
	for i, id := range front {
		out[i] = dd.d.Leaves(id)
	}
	return out
}

// Height returns the merge distances of the dendrogram's internal nodes in
// creation order (useful for choosing k).
func (dd *Dendrogram) Heights() []float64 { return dd.d.CutHeights() }

// Render draws the dendrogram as indented ASCII with the given leaf labels
// (nil renders indices) — the textual analogue of the paper's clustering
// figures.
func (dd *Dendrogram) Render(labels []string) string { return dd.d.Render(labels) }

// Cluster hierarchically clusters db under the exact rotation-invariant
// measure m with group-average linkage — the engine behind the paper's
// skull, reptile and butterfly dendrograms (Figures 3, 16, 17, 18).
func Cluster(db []Series, m Measure, opts ...QueryOption) (*Dendrogram, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	if _, err := validateDB(db); err != nil {
		return nil, err
	}
	copts, err := miningConfig(opts)
	if err != nil {
		return nil, err
	}
	return &Dendrogram{d: mining.Cluster(db, m.kern, copts, cluster.Average, nil)}, nil
}

// Medoid returns the index of the most central series of db — smallest sum
// of rotation-invariant distances to all others.
func Medoid(db []Series, m Measure, opts ...QueryOption) (int, error) {
	if err := m.validate(); err != nil {
		return -1, err
	}
	if _, err := validateDB(db); err != nil {
		return -1, err
	}
	copts, err := miningConfig(opts)
	if err != nil {
		return -1, err
	}
	return mining.Medoid(db, m.kern, copts, nil)
}

// Discord returns the index of the most anomalous series of db — the one
// whose nearest neighbour is furthest away — and that nearest-neighbour
// distance. This is the outlier-scan primitive used on star light curves
// (Section 2.4, reference [29]).
func Discord(db []Series, m Measure, opts ...QueryOption) (int, float64, error) {
	if err := m.validate(); err != nil {
		return -1, 0, err
	}
	if _, err := validateDB(db); err != nil {
		return -1, 0, err
	}
	copts, err := miningConfig(opts)
	if err != nil {
		return -1, 0, err
	}
	return mining.Discord(db, m.kern, copts, nil)
}
