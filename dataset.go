package lbkeogh

import (
	"fmt"

	"lbkeogh/internal/lightcurve"
	"lbkeogh/internal/synth"
	"lbkeogh/internal/ts"
)

// Dataset is a labelled collection of equal-length series, as produced by
// the synthetic generators that reproduce the paper's evaluation workloads.
type Dataset struct {
	// Name identifies the dataset.
	Name string
	// Series holds the instances (all of length N).
	Series []Series
	// Labels holds the class label of each instance.
	Labels []int
	// NumClasses is the number of distinct classes.
	NumClasses int
	// N is the series length.
	N int
}

func fromInternal(d *synth.Dataset) *Dataset {
	return &Dataset{Name: d.Name, Series: d.Series, Labels: d.Labels, NumClasses: d.NumClasses, N: d.N}
}

// SyntheticProjectilePoints generates the homogeneous projectile-point
// workload of the paper's Figures 19–20: m spiky contour signatures of
// length n at arbitrary rotation (the paper uses m up to 16,000, n = 251).
func SyntheticProjectilePoints(seed int64, m, n int) []Series {
	return synth.ProjectilePoints(seed, m, n)
}

// SyntheticHeterogeneous generates the mixed-shape workload of Figure 21
// (the paper uses 5,844 objects of length 1,024).
func SyntheticHeterogeneous(seed int64, m, n int) []Series {
	return synth.Heterogeneous(seed, m, n)
}

// SyntheticLightCurves generates m folded, noisy star light curves of
// length n drawn evenly from three morphological families (eclipsing
// binaries, Cepheid-like and RR-Lyrae-like pulsators); labels identify the
// family. See Section 2.4 of the paper.
func SyntheticLightCurves(seed int64, m, n int, noise float64) *Dataset {
	series, labels := lightcurve.Dataset(seed, m, n, noise)
	return &Dataset{
		Name:       "light-curves",
		Series:     series,
		Labels:     labels,
		NumClasses: lightcurve.NumClasses,
		N:          n,
	}
}

// Table8Names lists the ten classification datasets of the paper's Table 8
// in row order.
func Table8Names() []string { return synth.Table8Names() }

// Table8Dataset instantiates a synthetic stand-in for one of the paper's
// Table 8 datasets (same class count, scaled instance count). sizeScale
// multiplies the default per-class instance count; pass 1 for defaults.
func Table8Dataset(name string, sizeScale float64) (*Dataset, error) {
	d, err := synth.Table8Dataset(name, sizeScale)
	if err != nil {
		return nil, err
	}
	return fromInternal(d), nil
}

// Glyphs returns signatures of the demo glyphs 'b', 'd', 'p', 'q', '6', '9'
// rendered through the full raster pipeline at signature length n.
func Glyphs(n int) (map[byte]Series, error) {
	g, err := synth.Glyphs(n)
	if err != nil {
		return nil, err
	}
	out := make(map[byte]Series, len(g))
	for k, v := range g {
		out[k] = v
	}
	return out, nil
}

// SkullDataset generates the procedural primate-skull collection used by
// the clustering demos (Figures 3 and 16 of the paper): instances per named
// species, at random rotations, with smooth contour noise. Labels index the
// sorted species names returned as the second value.
func SkullDataset(seed int64, perSpecies, n int, noise float64) (*Dataset, []string) {
	if perSpecies < 1 {
		panic(fmt.Sprintf("lbkeogh: perSpecies must be >= 1, got %d", perSpecies))
	}
	species := synth.SkullSpecies()
	names := make([]string, 0, len(species))
	for name := range species {
		names = append(names, name)
	}
	// Sort for determinism.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	rng := ts.NewRand(seed)
	d := &Dataset{Name: "skulls", NumClasses: len(names), N: n}
	for li, name := range names {
		for k := 0; k < perSpecies; k++ {
			d.Series = append(d.Series, synth.SkullSignature(rng, species[name], n, noise))
			d.Labels = append(d.Labels, li)
		}
	}
	return d, names
}
