// Streaming demonstrates wedge-based query filtering on a live stream (the
// "Atomic Wedgie" application, reference [40] of the paper): a monitor
// compiled from a dictionary of patterns fires whenever a sliding window of
// the stream comes within a distance threshold of any pattern — with the
// exact same matches as a brute-force scan at a fraction of the cost.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"lbkeogh"
)

func main() {
	const n = 64

	// A dictionary of ECG-ish beat morphologies to watch for.
	patterns := []lbkeogh.Series{
		beat(n, 0.5, 8, 1.0),  // narrow spike
		beat(n, 0.5, 20, 0.7), // broad dome
		wobble(n, 3),          // triphasic wave
	}
	names := []string{"narrow-spike", "broad-dome", "triphasic"}

	mon, err := lbkeogh.NewMonitor(patterns, lbkeogh.Euclidean(), 2.0)
	if err != nil {
		log.Fatal(err)
	}

	// A noisy stream with the patterns embedded at known positions.
	rng := rand.New(rand.NewSource(42))
	stream := make([]float64, 3000)
	for i := range stream {
		stream[i] = 0.15 * rng.NormFloat64()
	}
	embedded := map[int]int{400: 0, 1200: 1, 2100: 2, 2600: 0}
	for at, p := range embedded {
		for i, v := range patterns[p] {
			stream[at+i] = v + 0.1*rng.NormFloat64()
		}
	}

	// Adjacent windows all match while the pattern slides past, so debounce:
	// report only the best-aligned window of each run of firings.
	type run struct {
		best    lbkeogh.StreamMatch
		lastEnd int
	}
	active := map[int]*run{}
	fired := 0
	flush := func(p int, r *run) {
		fmt.Printf("t=%4d: %-12s detected (dist %.3f, window starts at %d)\n",
			r.best.End, names[p], r.best.Dist, r.best.End-n+1)
		fired++
	}
	for _, v := range stream {
		matched := map[int]bool{}
		for _, match := range mon.Push(v) {
			matched[match.Pattern] = true
			if r, ok := active[match.Pattern]; ok {
				r.lastEnd = match.End
				if match.Dist < r.best.Dist {
					r.best = match
				}
			} else {
				active[match.Pattern] = &run{best: match, lastEnd: match.End}
			}
		}
		for p, r := range active {
			if !matched[p] {
				flush(p, r)
				delete(active, p)
			}
		}
	}
	for p, r := range active {
		flush(p, r)
	}

	bruteSteps := int64(len(stream)-n+1) * int64(len(patterns)) * int64(n)
	fmt.Printf("\n%d firings over %d values\n", fired, len(stream))
	fmt.Printf("filtering cost: %d steps vs %d brute force (%.0fx saved)\n",
		mon.Steps(), bruteSteps, float64(bruteSteps)/float64(mon.Steps()))
}

// beat is a gaussian bump of the given width and height at phase c.
func beat(n int, c float64, width, height float64) lbkeogh.Series {
	out := make(lbkeogh.Series, n)
	for i := range out {
		x := float64(i)/float64(n) - c
		out[i] = height * math.Exp(-x*x*float64(n)*float64(n)/(2*width*width))
	}
	return out
}

// wobble is k cycles of a damped sine.
func wobble(n int, k float64) lbkeogh.Series {
	out := make(lbkeogh.Series, n)
	for i := range out {
		p := float64(i) / float64(n)
		out[i] = math.Sin(2*math.Pi*k*p) * math.Exp(-2*p)
	}
	return out
}
