// Lightcurves demonstrates the paper's astronomy application (Section 2.4):
// a folded star light curve has no natural starting point, so comparing two
// of them requires checking every circular shift — exactly the rotation-
// invariance problem. The example searches a synthetic catalogue for the
// best phase-invariant match, classifies it, and runs the outlier scan of
// Protopapas et al. (finding the curves least similar to everything else).
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"lbkeogh"
)

func main() {
	const (
		n     = 256
		m     = 240
		noise = 0.15
	)
	classNames := []string{"eclipsing-binary", "cepheid", "rr-lyrae"}
	cat := lbkeogh.SyntheticLightCurves(99, m, n, noise)

	// --- Phase-invariant nearest neighbour ---------------------------------
	queryIdx := 5
	query := cat.Series[queryIdx]
	db := append([]lbkeogh.Series{}, cat.Series[:queryIdx]...)
	db = append(db, cat.Series[queryIdx+1:]...)
	labelOf := func(dbIdx int) int {
		if dbIdx >= queryIdx {
			dbIdx++
		}
		return cat.Labels[dbIdx]
	}

	q, err := lbkeogh.NewQuery(query, lbkeogh.Euclidean())
	if err != nil {
		log.Fatal(err)
	}
	top, err := q.SearchTopK(db, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: star %d (%s)\n", queryIdx, classNames[cat.Labels[queryIdx]])
	for i, r := range top {
		fmt.Printf("  #%d dist %.3f at phase shift %.2f: %s\n",
			i+1, r.Dist, r.Rotation.Degrees/360, classNames[labelOf(r.Index)])
	}

	// DTW tolerates small period-estimation errors that locally stretch the
	// folded curve — the reason Table 8's Light-Curve row favours DTW.
	qd, err := lbkeogh.NewQuery(query, lbkeogh.DTW(5))
	if err != nil {
		log.Fatal(err)
	}
	res, err := qd.Search(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DTW best match: dist %.3f (%s)\n\n", res.Dist, classNames[labelOf(res.Index)])

	// --- Catalogue-scale indexing ------------------------------------------
	ix, err := lbkeogh.NewIndex(db, 16)
	if err != nil {
		log.Fatal(err)
	}
	q2, _ := lbkeogh.NewQuery(query, lbkeogh.Euclidean())
	ires, err := ix.Search(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed search fetched %d of %d curves (same answer: dist %.3f)\n\n",
		ix.DiskReads(), ix.Len(), ires.Dist)

	// --- Outlier scan -------------------------------------------------------
	// "researchers discover unusual light curves worthy of further
	// examination by finding the examples with the least similarity to other
	// objects" [29]. Inject two anomalies and rank by NN distance.
	anomalies := []lbkeogh.Series{flare(n), doubleDip(n)}
	scan := append(append([]lbkeogh.Series{}, cat.Series...), anomalies...)
	type scored struct {
		idx  int
		dist float64
	}
	scores := make([]scored, len(scan))
	for i, s := range scan {
		qq, err := lbkeogh.NewQuery(s, lbkeogh.Euclidean())
		if err != nil {
			log.Fatal(err)
		}
		rest := make([]lbkeogh.Series, 0, len(scan)-1)
		for j, x := range scan {
			if j != i {
				rest = append(rest, x)
			}
		}
		r, err := qq.Search(rest)
		if err != nil {
			log.Fatal(err)
		}
		scores[i] = scored{idx: i, dist: r.Dist}
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].dist > scores[b].dist })
	fmt.Println("top-5 outliers by phase-invariant NN distance:")
	found := 0
	for i := 0; i < 5; i++ {
		tag := ""
		if scores[i].idx >= m {
			tag = "  <- injected anomaly"
			found++
		}
		fmt.Printf("  star %-4d NN dist %.3f%s\n", scores[i].idx, scores[i].dist, tag)
	}
	fmt.Printf("(%d of 2 injected anomalies surfaced)\n", found)
}

// flare: quiescent flux with a burst of rapid oscillations — unlike the
// smooth single-period morphology of every catalogue class.
func flare(n int) lbkeogh.Series {
	out := make(lbkeogh.Series, n)
	for i := range out {
		p := float64(i) / float64(n)
		if p > 0.3 && p < 0.7 {
			w := math.Sin(math.Pi * (p - 0.3) / 0.4)
			out[i] = 2 * w * math.Sin(40*math.Pi*p)
		}
	}
	return znorm(out)
}

// doubleDip: three equal eclipses — unlike any catalogue class.
func doubleDip(n int) lbkeogh.Series {
	out := make(lbkeogh.Series, n)
	for i := range out {
		p := float64(i) / float64(n)
		for _, c := range []float64{0.2, 0.5, 0.8} {
			d := math.Abs(p - c)
			if d < 0.04 {
				out[i] -= (1 + math.Cos(math.Pi*d/0.04)) / 2
			}
		}
	}
	return znorm(out)
}

func znorm(s lbkeogh.Series) lbkeogh.Series {
	var mean float64
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	var sd float64
	for _, v := range s {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(s)))
	if sd < 1e-12 {
		return s
	}
	out := make(lbkeogh.Series, len(s))
	for i, v := range s {
		out[i] = (v - mean) / sd
	}
	return out
}
