// Mining demonstrates the shape data-mining subroutines the paper lists as
// applications of fast rotation-invariant matching (Sections 1 and 6):
// motif discovery (the closest pair), clustering, medoid selection, and the
// discord (anomaly) scan — all exact, all wedge-accelerated.
package main

import (
	"fmt"
	"log"

	"lbkeogh"
)

func main() {
	const n = 128

	// A collection of projectile points with a planted motif: two "traded"
	// points from the same workshop — one is a rotated near-copy of the other.
	db := lbkeogh.SyntheticProjectilePoints(7, 60, n)
	copyOf := 13
	rotated := make(lbkeogh.Series, n)
	copy(rotated, db[copyOf])
	for i := range rotated {
		rotated[i] = db[copyOf][(i+37)%n]
	}
	db[41] = rotated

	motif, err := lbkeogh.ClosestPair(db, lbkeogh.Euclidean())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("motif: points %d and %d, distance %.4f, aligned at %.1f°\n",
		motif.I, motif.J, motif.Dist, motif.Rotation.Degrees)

	// Clustering: the skull collection of the skulls example, but through
	// the public API — the engine behind the paper's dendrogram figures.
	skulls, species := lbkeogh.SkullDataset(7, 1, n, 0.015)
	dend, err := lbkeogh.Cluster(skulls.Series, lbkeogh.Euclidean())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nskulls at K=4 (related forms should pair up):")
	for _, group := range dend.Clusters(4) {
		fmt.Print("  {")
		for k, idx := range group {
			if k > 0 {
				fmt.Print(", ")
			}
			fmt.Print(species[skulls.Labels[idx]])
		}
		fmt.Println("}")
	}

	// Medoid: the most representative curve of one light-curve family.
	lc := lbkeogh.SyntheticLightCurves(11, 30, n, 0.05)
	var cepheids []lbkeogh.Series
	for i, s := range lc.Series {
		if lc.Labels[i] == 1 {
			cepheids = append(cepheids, s)
		}
	}
	med, err := lbkeogh.Medoid(cepheids, lbkeogh.Euclidean())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmedoid of %d cepheid light curves: instance %d\n", len(cepheids), med)

	// Discord: the single most anomalous object in the collection.
	idx, nn, err := lbkeogh.Discord(db, lbkeogh.DTW(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discord under DTW: point %d (nearest neighbour at %.4f)\n", idx, nn)
}
