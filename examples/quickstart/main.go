// Quickstart: build a small shape database, run exact rotation-invariant
// nearest-neighbour queries under Euclidean distance and DTW, and see how
// much work the wedge machinery saves over brute force.
package main

import (
	"fmt"
	"log"

	"lbkeogh"
)

func main() {
	// A database of 400 synthetic projectile-point signatures (length 251,
	// arbitrary rotations) plus one extra instance to use as the query.
	const n = 251
	all := lbkeogh.SyntheticProjectilePoints(42, 401, n)
	db, query := all[:400], all[400]

	// --- Euclidean ---------------------------------------------------------
	q, err := lbkeogh.NewQuery(query, lbkeogh.Euclidean())
	if err != nil {
		log.Fatal(err)
	}
	res, err := q.Search(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Euclidean NN: object %d at distance %.4f (query rotated %.1f°)\n",
		res.Index, res.Dist, res.Rotation.Degrees)

	// The same search with the brute-force strategy returns the identical
	// answer — the wedge search is exact — but costs far more "steps"
	// (real-value subtractions, the paper's implementation-free cost metric).
	bq, _ := lbkeogh.NewQuery(query, lbkeogh.Euclidean(),
		lbkeogh.WithStrategy(lbkeogh.BruteForceSearch))
	bres, _ := bq.Search(db)
	fmt.Printf("brute force agrees: object %d, distance %.4f\n", bres.Index, bres.Dist)
	fmt.Printf("steps: wedge %d vs brute force %d (%.0fx saved)\n\n",
		q.Steps(), bq.Steps(), float64(bq.Steps())/float64(q.Steps()))

	// --- DTW ---------------------------------------------------------------
	// DTW absorbs local feature shifts (articulated wings, different
	// proportions); R is the Sakoe-Chiba band radius in samples.
	qd, err := lbkeogh.NewQuery(query, lbkeogh.DTW(5))
	if err != nil {
		log.Fatal(err)
	}
	top, err := qd.SearchTopK(db, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("DTW top-3:")
	for i, r := range top {
		fmt.Printf("  #%d object %-4d dist %.4f at %.1f°\n", i+1, r.Index, r.Dist, r.Rotation.Degrees)
	}

	// --- Range query -------------------------------------------------------
	// Match is the cheap primitive: "is anything within threshold?".
	if d, rot, ok, _ := qd.Match(db[top[0].Index], top[0].Dist*1.01); ok {
		fmt.Printf("\nrange check: object %d within threshold (%.4f at %.1f°)\n",
			top[0].Index, d, rot.Degrees)
	}

	// --- Disk index --------------------------------------------------------
	// For data that does not fit in memory: same exact answers, few fetches.
	ix, err := lbkeogh.NewIndex(db, 16)
	if err != nil {
		log.Fatal(err)
	}
	q2, _ := lbkeogh.NewQuery(query, lbkeogh.Euclidean())
	ires, err := ix.Search(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindexed search: object %d, distance %.4f, fetched %d of %d objects\n",
		ires.Index, ires.Dist, ix.DiskReads(), ix.Len())
}
