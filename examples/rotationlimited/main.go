// Rotationlimited demonstrates the paper's two query refinements (Section 3):
//
//   - Rotation-limited queries: retrieve "6" without retrieving "9" by
//     bounding the allowed rotation ("find the best match to this shape
//     allowing a maximum rotation of 15 degrees").
//   - Mirror-image (enantiomorphic) invariance: a "d" is a mirrored "b" —
//     sometimes you want them to match (skulls facing either way), sometimes
//     you emphatically do not (letters).
package main

import (
	"fmt"
	"log"

	"lbkeogh"
)

func main() {
	glyphs, err := lbkeogh.Glyphs(128)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- 6 vs 9: rotation-limited queries ---")
	fmt.Println("A 9 is (roughly) an upside-down 6; full rotation invariance")
	fmt.Println("cannot tell them apart, a ±15° limit can.")
	free, err := lbkeogh.NewQuery(glyphs['6'], lbkeogh.Euclidean())
	if err != nil {
		log.Fatal(err)
	}
	limited, err := lbkeogh.NewQuery(glyphs['6'], lbkeogh.Euclidean(),
		lbkeogh.WithMaxRotationDegrees(15))
	if err != nil {
		log.Fatal(err)
	}
	for _, target := range []byte{'6', '9'} {
		dF, rotF, _ := free.Distance(glyphs[target])
		dL, _, _ := limited.Distance(glyphs[target])
		fmt.Printf("  6 vs %c:  unrestricted %.3f (best at %.0f°)   ±15° limit %.3f\n",
			target, dF, rotF.Degrees, dL)
	}
	fmt.Println()

	fmt.Println("--- b vs d: mirror-image invariance ---")
	fmt.Println("A d is a mirrored b. With mirror invariance they match; without, not.")
	plain, err := lbkeogh.NewQuery(glyphs['b'], lbkeogh.Euclidean())
	if err != nil {
		log.Fatal(err)
	}
	mirror, err := lbkeogh.NewQuery(glyphs['b'], lbkeogh.Euclidean(),
		lbkeogh.WithMirrorInvariance())
	if err != nil {
		log.Fatal(err)
	}
	for _, target := range []byte{'b', 'd', 'p', 'q'} {
		dP, _, _ := plain.Distance(glyphs[target])
		dM, rotM, _ := mirror.Distance(glyphs[target])
		tag := ""
		if rotM.Mirrored {
			tag = " (via mirror)"
		}
		fmt.Printf("  b vs %c:  rotation-only %.3f   +mirror %.3f%s\n", target, dP, dM, tag)
	}
	fmt.Println()

	fmt.Println("--- retrieval demo: query '6' against a glyph database ---")
	db := []lbkeogh.Series{glyphs['6'], glyphs['9'], glyphs['b'], glyphs['d'], glyphs['p'], glyphs['q']}
	names := []byte{'6', '9', 'b', 'd', 'p', 'q'}
	for _, q := range []*lbkeogh.Query{free, limited} {
		top, err := q.SearchTopK(db, 3)
		if err != nil {
			log.Fatal(err)
		}
		label := "unrestricted"
		if q == limited {
			label = "±15° limit  "
		}
		fmt.Printf("  %s:", label)
		for _, r := range top {
			fmt.Printf("  %c (%.2f)", names[r.Index], r.Dist)
		}
		fmt.Println()
	}
}
