// Skulls reproduces the paper's Figure 3 / Figure 16 demonstration: cluster
// procedural primate skulls with (a) landmark alignment — rotate every
// signature so its maximum radius sits at position zero, the classic
// "major axis" heuristic — and (b) exact best-rotation alignment. Landmark
// alignment scrambles related species; best-rotation alignment recovers the
// pairs.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"strings"

	"lbkeogh"
)

func main() {
	const n = 128
	data, species := lbkeogh.SkullDataset(7, 1, n, 0.015)
	names := make([]string, len(data.Series))
	for i, l := range data.Labels {
		names[i] = species[l]
	}

	fmt.Println("=== landmark alignment (rotate so the max-radius point leads) ===")
	landmark := make([]lbkeogh.Series, len(data.Series))
	for i, s := range data.Series {
		landmark[i] = alignToMax(s)
	}
	printDendrogram(clusterAvg(distancesEuclid(landmark)), names)

	fmt.Println("\n=== best-rotation alignment (exact rotation-invariant distance) ===")
	printDendrogram(clusterAvg(distancesRED(data.Series)), names)

	fmt.Println("\nThe paper's lesson (Section 2.1): \"rotation (mis)alignment is the")
	fmt.Println("most important invariance for shape matching — unless we have the")
	fmt.Println("best rotation then nothing else matters.\"")
}

// alignToMax implements domain-independent landmarking: start the contour at
// its most protruding point (the analogue of major-axis alignment).
func alignToMax(s lbkeogh.Series) lbkeogh.Series {
	best := 0
	for i, v := range s {
		if v > s[best] {
			best = i
		}
	}
	out := make(lbkeogh.Series, len(s))
	for i := range s {
		out[i] = s[(i+best)%len(s)]
	}
	return out
}

func distancesEuclid(set []lbkeogh.Series) [][]float64 {
	d := square(len(set))
	for i := range set {
		for j := i + 1; j < len(set); j++ {
			var acc float64
			for k := range set[i] {
				diff := set[i][k] - set[j][k]
				acc += diff * diff
			}
			d[i][j] = math.Sqrt(acc)
			d[j][i] = d[i][j]
		}
	}
	return d
}

func distancesRED(set []lbkeogh.Series) [][]float64 {
	d := square(len(set))
	for i := range set {
		q, err := lbkeogh.NewQuery(set[i], lbkeogh.Euclidean())
		if err != nil {
			log.Fatal(err)
		}
		for j := i + 1; j < len(set); j++ {
			dist, _, err := q.Distance(set[j])
			if err != nil {
				log.Fatal(err)
			}
			d[i][j] = dist
			d[j][i] = dist
		}
	}
	return d
}

func square(n int) [][]float64 {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	return d
}

// node is a dendrogram vertex for the example's own group-average clustering
// (a downstream user of the library writes exactly this kind of code).
type node struct {
	left, right *node
	leaf        int
	height      float64
	members     []int
}

func clusterAvg(dist [][]float64) *node {
	var clusters []*node
	for i := range dist {
		clusters = append(clusters, &node{leaf: i, members: []int{i}})
	}
	link := func(a, b *node) float64 {
		var sum float64
		for _, i := range a.members {
			for _, j := range b.members {
				sum += dist[i][j]
			}
		}
		return sum / float64(len(a.members)*len(b.members))
	}
	for len(clusters) > 1 {
		bi, bj, best := 0, 1, math.Inf(1)
		for i := range clusters {
			for j := i + 1; j < len(clusters); j++ {
				if d := link(clusters[i], clusters[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		merged := &node{
			left: clusters[bi], right: clusters[bj], leaf: -1, height: best,
			members: append(append([]int{}, clusters[bi].members...), clusters[bj].members...),
		}
		clusters = append(clusters[:bj], clusters[bj+1:]...)
		clusters[bi] = merged
	}
	return clusters[0]
}

func printDendrogram(root *node, names []string) {
	// Render each merge as an indented tree, children sorted for stability.
	var walk func(nd *node, depth int)
	walk = func(nd *node, depth int) {
		indent := strings.Repeat("    ", depth)
		if nd.leaf >= 0 {
			fmt.Printf("%s- %s\n", indent, names[nd.leaf])
			return
		}
		fmt.Printf("%s+ (height %.3f)\n", indent, nd.height)
		kids := []*node{nd.left, nd.right}
		sort.Slice(kids, func(a, b int) bool { return minLeaf(kids[a]) < minLeaf(kids[b]) })
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	walk(root, 0)
}

func minLeaf(nd *node) int {
	if nd.leaf >= 0 {
		return nd.leaf
	}
	a, b := minLeaf(nd.left), minLeaf(nd.right)
	if a < b {
		return a
	}
	return b
}
