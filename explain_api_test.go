package lbkeogh

import (
	"context"
	"math"
	"strings"
	"testing"

	"lbkeogh/internal/obs/explain"
	"lbkeogh/internal/obs/expofmt"
)

// assertPlanMatchesStats checks the satellite contract: every waterfall
// stage count in the plan reconciles term-by-term with the search's own
// SearchStats record.
func assertPlanMatchesStats(t *testing.T, plan *ExplainPlan, st SearchStats) {
	t.Helper()
	if plan == nil {
		t.Fatal("EXPLAIN mode on but plan is nil")
	}
	if !plan.Waterfall.Reconciles() {
		t.Fatalf("plan waterfall does not reconcile: %+v", plan.Waterfall)
	}
	if plan.Waterfall.Comparisons != st.Comparisons {
		t.Errorf("plan comparisons %d != stats %d", plan.Waterfall.Comparisons, st.Comparisons)
	}
	if plan.Waterfall.Rotations != st.Rotations {
		t.Errorf("plan rotations %d != stats %d", plan.Waterfall.Rotations, st.Rotations)
	}
	if got := plan.Waterfall.Stage(explain.StageFFT); got != st.FFTRejectedMembers {
		t.Errorf("fft stage %d != FFTRejectedMembers %d", got, st.FFTRejectedMembers)
	}
	if got := plan.Waterfall.Stage(explain.StageEnvelope); got != st.WedgePrunedMembers+st.WedgeLeafLBPrunes {
		t.Errorf("envelope stage %d != wedge prunes %d",
			got, st.WedgePrunedMembers+st.WedgeLeafLBPrunes)
	}
	if got := plan.Waterfall.Stage(explain.StageKernel); got != st.EarlyAbandons {
		t.Errorf("kernel stage %d != EarlyAbandons %d", got, st.EarlyAbandons)
	}
	if plan.Waterfall.Survivors != st.FullDistEvals {
		t.Errorf("survivors %d != FullDistEvals %d", plan.Waterfall.Survivors, st.FullDistEvals)
	}
	if plan.Waterfall.Cancelled != st.CancelledMembers {
		t.Errorf("cancelled %d != CancelledMembers %d", plan.Waterfall.Cancelled, st.CancelledMembers)
	}
}

// TestExplainPlanReconcilesAcrossStrategies runs every search flavour in
// EXPLAIN mode under every strategy: a fresh query's SearchStats after one
// operation IS that operation's delta, so the plan waterfall must match it
// exactly.
func TestExplainPlanReconcilesAcrossStrategies(t *testing.T) {
	db := demoDB(21, 12, 64)
	for _, s := range allStrategies() {
		t.Run(s.internal().String(), func(t *testing.T) {
			q, err := NewQuery(db[0], Euclidean(), WithStrategy(s))
			if err != nil {
				t.Fatal(err)
			}
			q.SetExplain(true)
			if q.Explain() != nil {
				t.Fatal("plan before any search must be nil")
			}

			r, err := q.Search(db)
			if err != nil {
				t.Fatal(err)
			}
			plan := q.Explain()
			assertPlanMatchesStats(t, plan, q.Stats())
			if plan.Strategy != s.internal().String() {
				t.Errorf("plan strategy %q, want %q", plan.Strategy, s.internal().String())
			}
			if plan.Measure != "euclidean" {
				t.Errorf("plan measure %q, want euclidean", plan.Measure)
			}
			// The 1-NN improving chain ends at the answer.
			if len(plan.Survivors) == 0 {
				t.Fatal("1-NN plan has no survivors")
			}
			last := plan.Survivors[len(plan.Survivors)-1]
			if last.Index != r.Index || math.Float64bits(last.Dist) != math.Float64bits(r.Dist) {
				t.Errorf("last survivor %+v != search result %+v", last, r)
			}
			for _, sv := range plan.Survivors {
				switch sv.AdmittedBy {
				case explain.StageFFT, explain.StageEnvelope, explain.StageKernel:
				default:
					t.Errorf("survivor %d admitted by unknown stage %q", sv.Index, sv.AdmittedBy)
				}
			}

			// Top-K and range flavours must reconcile the same way.
			q.ResetStats()
			if _, err := q.SearchTopK(db, 4); err != nil {
				t.Fatal(err)
			}
			assertPlanMatchesStats(t, q.Explain(), q.Stats())

			q.ResetStats()
			if _, err := q.SearchRange(db, r.Dist*2); err != nil {
				t.Fatal(err)
			}
			assertPlanMatchesStats(t, q.Explain(), q.Stats())
		})
	}
}

// TestExplainPlanCancelledSearch cancels mid-scan: the plan's waterfall must
// carry the CancelledMembers bucket and still reconcile.
func TestExplainPlanCancelledSearch(t *testing.T) {
	const n = 512
	db := demoDB(22, 1, n)
	for _, s := range allStrategies() {
		opts := []QueryOption{WithStrategy(s)}
		if s == WedgeSearch {
			opts = append(opts, WithFixedWedgeCount(n))
		}
		q, err := NewQuery(db[0], Euclidean(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		q.SetExplain(true)
		if _, err := q.SearchContext(newFlipCtx(4), db); err != context.Canceled {
			t.Fatalf("strategy %v: want context.Canceled, got %v", s, err)
		}
		plan := q.Explain()
		assertPlanMatchesStats(t, plan, q.Stats())
		if plan.Waterfall.Cancelled == 0 {
			t.Errorf("strategy %v: cancelled mid-scan but plan.Cancelled = 0", s)
		}
	}
}

// TestExplainParallelWaterfall: parallel scans bypass the per-comparison
// hooks, but the plan's waterfall still reconciles from the query-level
// counter delta (with no survivor annotations).
func TestExplainParallelWaterfall(t *testing.T) {
	db := demoDB(23, 16, 64)
	q, err := NewQuery(db[0], Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	q.SetExplain(true)
	if _, err := q.SearchParallel(db, 4); err != nil {
		t.Fatal(err)
	}
	assertPlanMatchesStats(t, q.Explain(), q.Stats())
}

func TestExplainOffReturnsNil(t *testing.T) {
	db := demoDB(24, 4, 48)
	q, err := NewQuery(db[0], Euclidean())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Search(db); err != nil {
		t.Fatal(err)
	}
	if q.Explain() != nil {
		t.Fatal("plan must be nil with EXPLAIN off")
	}
	q.SetExplain(true)
	if _, err := q.Search(db); err != nil {
		t.Fatal(err)
	}
	if q.Explain() == nil {
		t.Fatal("plan must be recorded with EXPLAIN on")
	}
	q.SetExplain(false)
	if q.Explain() != nil {
		t.Fatal("turning EXPLAIN off must drop the plan")
	}
}

// TestExplainResultsUnperturbed: EXPLAIN mode and an attached sampler must
// not change what a search returns or how its stats reconcile.
func TestExplainResultsUnperturbed(t *testing.T) {
	db := demoDB(25, 10, 96)
	for _, s := range allStrategies() {
		plainQ, err := NewQuery(db[0], Euclidean(), WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		expQ, err := NewQuery(db[0], Euclidean(), WithStrategy(s))
		if err != nil {
			t.Fatal(err)
		}
		expQ.SetExplain(true)
		expQ.SetBoundSampler(NewBoundSampler(1))
		want, err := plainQ.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := expQ.Search(db)
		if err != nil {
			t.Fatal(err)
		}
		if got.Index != want.Index || math.Float64bits(got.Dist) != math.Float64bits(want.Dist) ||
			got.Rotation != want.Rotation {
			t.Fatalf("strategy %v: explained search %+v != plain %+v", s, got, want)
		}
		ps, es := plainQ.Stats(), expQ.Stats()
		if ps.Comparisons != es.Comparisons || ps.Rotations != es.Rotations ||
			ps.FullDistEvals != es.FullDistEvals || ps.EarlyAbandons != es.EarlyAbandons ||
			ps.WedgePrunedMembers != es.WedgePrunedMembers ||
			ps.WedgeLeafLBPrunes != es.WedgeLeafLBPrunes ||
			ps.FFTRejectedMembers != es.FFTRejectedMembers {
			t.Fatalf("strategy %v: explained stats %+v != plain %+v", s, es, ps)
		}
	}
}

// TestBoundSamplerMetricsRoundTrip feeds a sampler from a traced query and
// requires its exposition to parse strictly — HELP/TYPE before samples, the
// tightness histogram resolving as a histogram family, and the bucket
// exemplars carrying the query's retained trace id.
func TestBoundSamplerMetricsRoundTrip(t *testing.T) {
	db := demoDB(26, 8, 64)
	tlog := NewTraceLog(WithSampleRate(1))
	sampler := NewBoundSampler(1)
	q, err := NewQuery(db[0], Euclidean(), WithTraceLog(tlog))
	if err != nil {
		t.Fatal(err)
	}
	q.SetBoundSampler(sampler)
	if _, err := q.Search(db); err != nil {
		t.Fatal(err)
	}
	if q.LastTraceID() == 0 {
		t.Fatal("sample-everything trace log retained no trace")
	}

	var sb strings.Builder
	sampler.WriteMetrics(&sb)
	exp, err := expofmt.Parse(sb.String())
	if err != nil {
		t.Fatalf("sampler exposition does not parse: %v\n%s", err, sb.String())
	}
	if got := exp.Types["lbkeogh_explain_bound_tightness_ratio"]; got != "histogram" {
		t.Fatalf("tightness family type = %q, want histogram", got)
	}
	if exp.Counter("lbkeogh_explain_samples_total", nil) == 0 {
		t.Fatal("interval-1 sampler recorded no samples")
	}
	snap := sampler.Snapshot()
	if len(snap.Bounds) == 0 {
		t.Fatal("no bounds in snapshot")
	}
	for _, bt := range snap.Bounds {
		if got := exp.Counter("lbkeogh_explain_bound_checks_total",
			map[string]string{"bound": bt.Bound}); got != bt.Checks {
			t.Errorf("%s checks metric %d != snapshot %d", bt.Bound, got, bt.Checks)
		}
		// The last bucket must be the +Inf edge and equal the sample count.
		buckets := exp.Find("lbkeogh_explain_bound_tightness_ratio_bucket")
		var cum float64
		seen := false
		for _, s := range buckets {
			if s.Labels["bound"] != bt.Bound {
				continue
			}
			cum = s.Value
			if s.Labels["le"] == "+Inf" {
				seen = true
			}
		}
		if !seen {
			t.Errorf("%s histogram missing +Inf bucket", bt.Bound)
		}
		if int64(cum) != bt.Samples {
			t.Errorf("%s +Inf bucket %v != sample count %d", bt.Bound, cum, bt.Samples)
		}
	}
	// At least one exemplar correlates to the retained trace.
	var exemplars int
	for _, s := range exp.Find("lbkeogh_explain_bound_tightness_ratio_bucket") {
		if s.Exemplar != nil && s.Exemplar["trace_id"] != "" {
			exemplars++
		}
	}
	if exemplars == 0 {
		t.Fatal("no bucket exemplars after a traced, fully-sampled search")
	}
}
