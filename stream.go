package lbkeogh

import (
	"lbkeogh/internal/stream"
)

// StreamMatch reports one pattern firing on a monitored stream.
type StreamMatch struct {
	// End is the stream index of the last value of the matching window.
	End int
	// Pattern indexes the pattern slice given to NewMonitor.
	Pattern int
	// Dist is the exact distance between the window and the pattern.
	Dist float64
}

// Monitor filters a live stream against a fixed set of query patterns using
// the same hierarchical-wedge lower bounds as search — the "Atomic Wedgie"
// application (reference [40] of the paper). It reports exactly the matches
// a brute-force sliding-window scan would, typically at a small fraction of
// the cost.
type Monitor struct {
	m    *stream.Monitor
	tlog *TraceLog
}

// NewMonitor compiles the patterns (equal length n) for streaming threshold
// filtering under measure m. A window matches when its distance to a pattern
// is strictly below threshold. Streaming filtering compares raw windows: for
// amplitude-invariant matching, z-normalize patterns and feed a z-normalized
// stream.
func NewMonitor(patterns []Series, m Measure, threshold float64) (*Monitor, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	inner, err := stream.NewMonitor(patterns, m.kern, threshold)
	if err != nil {
		return nil, err
	}
	return &Monitor{m: inner}, nil
}

// WindowLen returns the pattern/window length.
func (mo *Monitor) WindowLen() int { return mo.m.WindowLen() }

// Steps reports cumulative filtering cost in the paper's num_steps metric.
func (mo *Monitor) Steps() int64 { return mo.m.Steps() }

// Stats returns a snapshot of the monitor's instrumentation record: each
// full window is one comparison, and every pattern in it was either
// wedge-pruned, abandoned early, or fully evaluated. When a TraceLog is
// attached, the snapshot additionally carries the monitor_filter latency
// summary.
func (mo *Monitor) Stats() SearchStats {
	s := statsFromSnapshot(mo.m.Stats().Snapshot())
	s.StageLatencies = stageLatenciesFromInternal(mo.tlog.inner().Latencies().Snapshot())
	return s
}

// SetTraceLog attaches a TraceLog whose monitor_filter stage histogram
// receives the wall duration of every full-window filter pass (nil
// detaches). Not safe to call concurrently with Push.
func (mo *Monitor) SetTraceLog(t *TraceLog) {
	mo.tlog = t
	mo.m.SetTraceLog(t.inner())
}

// ResetStats zeroes the instrumentation record.
func (mo *Monitor) ResetStats() { mo.m.Stats().Reset() }

// SetTracer installs a Tracer receiving per-wedge filter events (nil
// removes it). Not safe to call concurrently with Push.
func (mo *Monitor) SetTracer(t Tracer) { mo.m.SetTracer(t) }

// Push consumes one stream value and returns any patterns matching the
// window ending at it.
func (mo *Monitor) Push(v float64) []StreamMatch {
	return convertMatches(mo.m.Push(v))
}

// PushAll consumes a batch of values.
func (mo *Monitor) PushAll(values []float64) []StreamMatch {
	return convertMatches(mo.m.PushAll(values))
}

func convertMatches(in []stream.Match) []StreamMatch {
	if len(in) == 0 {
		return nil
	}
	out := make([]StreamMatch, len(in))
	for i, m := range in {
		out[i] = StreamMatch{End: m.End, Pattern: m.Pattern, Dist: m.Dist}
	}
	return out
}
