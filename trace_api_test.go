package lbkeogh_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"

	"lbkeogh"
	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/expofmt"
)

// tracedSearch runs one fully-sampled traced search and returns the query,
// its trace log, and the retained search trace.
func tracedSearch(t *testing.T, opts ...lbkeogh.QueryOption) (*lbkeogh.Query, *lbkeogh.TraceLog, lbkeogh.TraceSummary) {
	t.Helper()
	db := lbkeogh.SyntheticProjectilePoints(3, 24, 32)
	tlog := lbkeogh.NewTraceLog(lbkeogh.WithSampleRate(1))
	opts = append(opts, lbkeogh.WithTraceLog(tlog))
	q, err := lbkeogh.NewQuery(db[0], lbkeogh.Euclidean(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Search(db[1:]); err != nil {
		t.Fatal(err)
	}
	for _, tr := range tlog.Recent() {
		if tr.Label == "search" {
			return q, tlog, tr
		}
	}
	t.Fatal("no search trace retained at sample rate 1")
	return nil, nil, lbkeogh.TraceSummary{}
}

// chromeEvent mirrors one Chrome trace-event as exported by WriteChromeTrace;
// ts/dur are microseconds.
type chromeEvent struct {
	Name string                     `json:"name"`
	Ph   string                     `json:"ph"`
	Ts   float64                    `json:"ts"`
	Dur  float64                    `json:"dur"`
	Pid  int64                      `json:"pid"`
	Tid  int64                      `json:"tid"`
	Args map[string]json.RawMessage `json:"args"`
}

// traceCounts is the per-span counter-delta attribute, decoded with the same
// JSON names SearchStats uses — the Reconciles identity must hold span-wise.
type traceCounts struct {
	Comparisons        int64 `json:"comparisons"`
	Rotations          int64 `json:"rotations"`
	FullDistEvals      int64 `json:"full_dist_evals"`
	EarlyAbandons      int64 `json:"early_abandons"`
	WedgePrunedMembers int64 `json:"wedge_pruned_members"`
	WedgeLeafLBPrunes  int64 `json:"wedge_leaf_lb_prunes"`
	FFTRejectedMembers int64 `json:"fft_rejected_members"`
}

func (c traceCounts) reconciles() bool {
	return c.Rotations == c.FullDistEvals+c.EarlyAbandons+
		c.WedgePrunedMembers+c.WedgeLeafLBPrunes+c.FFTRejectedMembers
}

func eventContains(outer, inner chromeEvent) bool {
	const eps = 1e-6 // µs; ns→µs conversion is exact well past this
	return outer.Ts <= inner.Ts+eps && inner.Ts+inner.Dur <= outer.Ts+outer.Dur+eps
}

// TestChromeExportNestsStagesAndReconciles is the issue's acceptance check: a
// traced Query.Search exports a Chrome trace-event JSON whose span tree nests
// envelope -> H-Merge -> kernel stages, and whose per-span counter attributes
// satisfy the same Reconciles identity as SearchStats.
func TestChromeExportNestsStagesAndReconciles(t *testing.T) {
	_, tlog, tr := tracedSearch(t)
	var buf bytes.Buffer
	if err := tlog.WriteChromeTrace(&buf, tr.ID); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) < 5 {
		t.Fatalf("only %d events exported", len(file.TraceEvents))
	}

	byStage := map[string][]chromeEvent{}
	for _, e := range file.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete events (X)", e.Name, e.Ph)
		}
		byStage[e.Name] = append(byStage[e.Name], e)
	}
	for _, stage := range []string{"search", "comparison", "envelope", "hmerge", "kernel"} {
		if len(byStage[stage]) == 0 {
			t.Fatalf("export has no %q spans (stages present: %v)", stage, stageNamesOf(byStage))
		}
	}

	// The root event duplicates the search span; take the shorter "search"
	// event as the search span proper.
	search := byStage["search"][0]
	for _, e := range byStage["search"][1:] {
		if e.Dur < search.Dur {
			search = e
		}
	}

	// Span-tree nesting, checked structurally by interval containment (the
	// Chrome format has no parent field — nesting IS containment per track).
	requireNested := func(innerStage, outerStage string) {
		t.Helper()
		for _, in := range byStage[innerStage] {
			found := false
			for _, out := range byStage[outerStage] {
				if eventContains(out, in) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s span at ts=%v is not nested in any %s span", innerStage, in.Ts, outerStage)
			}
		}
	}
	requireNested("comparison", "search")
	requireNested("envelope", "comparison")
	requireNested("hmerge", "envelope")
	requireNested("kernel", "hmerge")

	// Counter attributes: the root reconciles, every comparison reconciles,
	// and the comparisons sum back to the root — the SearchStats identity.
	decodeCounts := func(e chromeEvent) (traceCounts, bool) {
		raw, ok := e.Args["counts"]
		if !ok {
			return traceCounts{}, false
		}
		var c traceCounts
		if err := json.Unmarshal(raw, &c); err != nil {
			t.Fatalf("counts arg does not decode: %v", err)
		}
		return c, true
	}
	root, ok := decodeCounts(file.TraceEvents[0])
	if !ok {
		t.Fatal("root event has no counts attribute")
	}
	if !root.reconciles() {
		t.Fatalf("root counts do not reconcile: %+v", root)
	}
	if root.Rotations != tr.Stats.Rotations || root.FullDistEvals != tr.Stats.FullDistEvals {
		t.Fatalf("root counts %+v disagree with the trace summary stats %+v", root, tr.Stats)
	}
	var sum traceCounts
	for _, e := range byStage["comparison"] {
		c, ok := decodeCounts(e)
		if !ok {
			t.Fatalf("comparison span at ts=%v has no counts attribute", e.Ts)
		}
		if !c.reconciles() {
			t.Fatalf("comparison counts do not reconcile: %+v", c)
		}
		sum.Comparisons += c.Comparisons
		sum.Rotations += c.Rotations
		sum.FullDistEvals += c.FullDistEvals
		sum.EarlyAbandons += c.EarlyAbandons
		sum.WedgePrunedMembers += c.WedgePrunedMembers
		sum.WedgeLeafLBPrunes += c.WedgeLeafLBPrunes
		sum.FFTRejectedMembers += c.FFTRejectedMembers
	}
	if sum != root {
		t.Fatalf("per-comparison counts sum to %+v, root has %+v", sum, root)
	}

	// The summary layer agrees too.
	if !tr.Stats.Reconciles() {
		t.Fatal("trace summary stats do not reconcile")
	}
	if tr.Slow {
		t.Error("trace marked slow under the default 50ms threshold")
	}
}

func stageNamesOf(m map[string][]chromeEvent) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func TestTraceLogStageLatencies(t *testing.T) {
	_, tlog, _ := tracedSearch(t)
	lats := tlog.StageLatencies()
	got := map[string]lbkeogh.StageLatency{}
	for _, sl := range lats {
		got[sl.Stage] = sl
	}
	for _, stage := range []string{"search", "comparison", "envelope", "hmerge", "kernel"} {
		sl, ok := got[stage]
		if !ok {
			t.Fatalf("no latency histogram for stage %q", stage)
		}
		if sl.Count <= 0 || sl.SumNS <= 0 || len(sl.Buckets) == 0 {
			t.Errorf("stage %q latency summary is empty: %+v", stage, sl)
		}
		var bucketTotal int64
		for _, b := range sl.Buckets {
			bucketTotal += b.Count
		}
		if bucketTotal != sl.Count {
			t.Errorf("stage %q buckets sum to %d, count is %d", stage, bucketTotal, sl.Count)
		}
	}
	// The query's Stats carries the same summaries once a log is attached.
	q, _, _ := tracedSearch(t)
	if len(q.Stats().StageLatencies) == 0 {
		t.Error("Query.Stats() does not surface stage latencies with a TraceLog attached")
	}
}

// Tracer must be a true alias of the internal interface: one implementation
// satisfies every layer, with no conversion and no adapter types.
func TestTracerIsAliasOfInternalInterface(t *testing.T) {
	pub := reflect.TypeOf((*lbkeogh.Tracer)(nil)).Elem()
	internal := reflect.TypeOf((*obs.Tracer)(nil)).Elem()
	if pub != internal {
		t.Fatalf("lbkeogh.Tracer (%v) is not an alias of obs.Tracer (%v)", pub, internal)
	}
	// Assignability both ways without conversion, checked by compilation.
	var ft obs.FuncTracer
	var asPublic lbkeogh.Tracer = &ft
	var asInternal obs.Tracer = asPublic
	_ = asInternal
}

// parseExposition parses a /metrics body through internal/obs/expofmt — the
// supported parser this helper was promoted into — failing the test on any
// format violation (HELP/TYPE ordering, malformed samples or exemplars).
func parseExposition(t *testing.T, body string) (samples []expofmt.Sample, types map[string]string) {
	t.Helper()
	e, err := expofmt.Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	return e.Samples, e.Types
}

// TestMetricsExpositionWellFormed validates the full /metrics output with a
// text-format parser: HELP/TYPE precede samples, histogram buckets are
// cumulative and monotone, the +Inf bucket equals _count, and the steps
// histogram's _sum is the exact observed sum (not the global Steps counter).
func TestMetricsExpositionWellFormed(t *testing.T) {
	q, tlog, _ := tracedSearch(t)
	_ = tlog
	h := lbkeogh.MetricsHandler(map[string]lbkeogh.StatsSource{"lbkeogh_query": q})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q is not the text exposition format", ct)
	}
	samples, types := parseExposition(t, rr.Body.String())
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}

	// Histogram invariants, per (family, non-le labelset).
	type key struct{ fam, labels string }
	buckets := map[key][]expofmt.Sample{}
	counts := map[key]float64{}
	sums := map[key]float64{}
	nonLE := func(s expofmt.Sample) string {
		var parts []string
		for k, v := range s.Labels {
			if k != "le" {
				parts = append(parts, k+"="+v)
			}
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	for _, s := range samples {
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			k := key{strings.TrimSuffix(s.Name, "_bucket"), nonLE(s)}
			buckets[k] = append(buckets[k], s)
		case strings.HasSuffix(s.Name, "_count") && types[strings.TrimSuffix(s.Name, "_count")] == "histogram":
			counts[key{strings.TrimSuffix(s.Name, "_count"), nonLE(s)}] = s.Value
		case strings.HasSuffix(s.Name, "_sum") && types[strings.TrimSuffix(s.Name, "_sum")] == "histogram":
			sums[key{strings.TrimSuffix(s.Name, "_sum"), nonLE(s)}] = s.Value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets in the exposition")
	}
	for k, bs := range buckets {
		prevLE, prevV := -1.0, -1.0
		for i, b := range bs {
			leStr := b.Labels["le"]
			le := -1.0
			if leStr == "+Inf" {
				if i != len(bs)-1 {
					t.Errorf("%v: +Inf bucket is not last", k)
				}
			} else {
				var err error
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					t.Fatalf("%v: bad le %q", k, leStr)
				}
				if le <= prevLE {
					t.Errorf("%v: le %v not increasing after %v", k, le, prevLE)
				}
				prevLE = le
			}
			if b.Value < prevV {
				t.Errorf("%v: bucket value %v decreased from %v (not cumulative)", k, b.Value, prevV)
			}
			prevV = b.Value
		}
		last := bs[len(bs)-1]
		if last.Labels["le"] != "+Inf" {
			t.Errorf("%v: histogram has no +Inf bucket", k)
		}
		if c, ok := counts[k]; !ok || last.Value != c {
			t.Errorf("%v: +Inf bucket %v != _count %v", k, last.Value, c)
		}
		if _, ok := sums[k]; !ok {
			t.Errorf("%v: histogram has no _sum", k)
		}
	}

	// The steps histogram _sum must be the exact observed sum.
	st := q.Stats()
	k := key{"lbkeogh_query_comparison_steps", ""}
	if got := sums[k]; got != float64(st.StepsHistogramSum) {
		t.Errorf("comparison_steps_sum = %v, want the exact StepsHistogramSum %d", got, st.StepsHistogramSum)
	}
	if st.StepsHistogramSum == st.Steps {
		t.Log("note: StepsHistogramSum equals Steps on this workload; the distinction is untested here")
	}

	// Stage-latency histograms must appear with the stage label.
	if _, ok := buckets[key{"lbkeogh_query_stage_latency_ns", "stage=hmerge"}]; !ok {
		t.Error("no stage_latency_ns histogram for stage=hmerge")
	}
}

type staticStats lbkeogh.SearchStats

func (s staticStats) Stats() lbkeogh.SearchStats { return lbkeogh.SearchStats(s) }

func TestPublishExpvarRepublishIsNoop(t *testing.T) {
	src := staticStats{Comparisons: 1}
	lbkeogh.PublishExpvar("lbkeogh_test_republish", src)
	// A second publication under the same name must not panic (expvar.Publish
	// panics on duplicates; the wrapper must swallow the re-publish).
	lbkeogh.PublishExpvar("lbkeogh_test_republish", staticStats{Comparisons: 2})
}

func TestMetricsHandlerEmptyAndNilSources(t *testing.T) {
	for _, sources := range []map[string]lbkeogh.StatsSource{nil, {}} {
		rr := httptest.NewRecorder()
		lbkeogh.MetricsHandler(sources).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
		if rr.Code != 200 {
			t.Errorf("sources=%v: status %d, want 200", sources, rr.Code)
		}
		if rr.Body.Len() != 0 {
			t.Errorf("sources=%v: non-empty body %q", sources, rr.Body.String())
		}
	}
}

func TestDebugHandlerRoutes(t *testing.T) {
	q, tlog, tr := tracedSearch(t)
	h := lbkeogh.DebugHandler(
		map[string]lbkeogh.StatsSource{"test_query": q},
		map[string]*lbkeogh.TraceLog{"test_query": tlog},
	)
	get := func(target string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", target, nil))
		return rr
	}

	rr := get("/debug/lbkeogh")
	if rr.Code != 200 {
		t.Fatalf("dashboard: status %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{"<h1>lbkeogh observability</h1>", "test_query", "hmerge"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard HTML is missing %q", want)
		}
	}

	rr = get("/debug/lbkeogh?log=test_query&format=chrome")
	if rr.Code != 200 {
		t.Fatalf("chrome export: status %d: %s", rr.Code, rr.Body.String())
	}
	var all struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &all); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(all.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	rr = get("/debug/lbkeogh?log=test_query&trace=" + strconv.FormatInt(tr.ID, 10) + "&format=jsonl")
	if rr.Code != 200 {
		t.Fatalf("jsonl export: status %d: %s", rr.Code, rr.Body.String())
	}
	for i, line := range strings.Split(strings.TrimSpace(rr.Body.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("jsonl line %d is not valid JSON: %v", i+1, err)
		}
	}

	if rr := get("/debug/lbkeogh?log=nope"); rr.Code != 404 {
		t.Errorf("unknown log: status %d, want 404", rr.Code)
	}
	if rr := get("/debug/lbkeogh?log=test_query&format=bogus"); rr.Code != 400 {
		t.Errorf("bad format: status %d, want 400", rr.Code)
	}
	if rr := get("/debug/lbkeogh?log=test_query&format=jsonl"); rr.Code != 400 {
		t.Errorf("jsonl without trace id: status %d, want 400", rr.Code)
	}
}
