// Command shapeserver serves rotation-invariant shape search over HTTP: load
// a CSV database (as written by mkdata) or a synthetic one, then answer
// nearest-neighbour, top-K, and range queries as JSON, each response carrying
// its own pruning breakdown. The server bounds concurrency with admission
// control (429 once the wait queue fills), bounds every search with a
// deadline wired into the library's cooperative cancellation (504 on
// expiry), pools compiled query sessions so repeated queries skip the O(n²)
// rotation-set build, and drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	mkdata -dataset projectile -m 500 > db.csv
//	shapeserver -db db.csv
//	shapeserver -synthetic 400,128 -addr :8321
//
//	curl -s localhost:8321/v1/search -d '{"query_index":0}'
//	curl -s localhost:8321/v1/topk   -d '{"series":[...], "k":5, "measure":"dtw", "r":5}'
//	curl -s localhost:8321/v1/range  -d '{"query_index":3, "threshold":2.5}'
//	curl -s localhost:8321/healthz
//	curl -s localhost:8321/metrics
//
// The live dashboard is at /debug/lbkeogh (traces downloadable as Chrome
// trace-event JSON for ui.perfetto.dev), expvar at /debug/vars, and pprof at
// /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lbkeogh"
	"lbkeogh/internal/seriesio"
	"lbkeogh/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8321", "listen address")
		dbPath    = flag.String("db", "", "CSV database file (label,v0,v1,...)")
		synthetic = flag.String("synthetic", "", "generate a synthetic database instead: m,n (series,samples)")
		seed      = flag.Int64("seed", 42, "synthetic dataset seed")
		inflight  = flag.Int("inflight", 4, "max concurrent searches")
		queue     = flag.Int("queue", 16, "max requests waiting beyond the in-flight slots (then 429)")
		pool      = flag.Int("pool", 32, "max idle query sessions kept for reuse")
		timeout   = flag.Duration("timeout", 10*time.Second, "default per-request search deadline")
		maxTO     = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested timeout_ms")
		grace     = flag.Duration("grace", 15*time.Second, "shutdown grace period for draining in-flight requests")
		notrace   = flag.Bool("notrace", false, "disable query tracing (smaller overhead, empty dashboard)")
	)
	flag.Parse()

	var labels []int
	var db []lbkeogh.Series
	switch {
	case *dbPath != "" && *synthetic != "":
		fmt.Fprintln(os.Stderr, "shapeserver: -db and -synthetic are mutually exclusive")
		os.Exit(2)
	case *dbPath != "":
		var rows [][]float64
		var err error
		labels, rows, err = seriesio.ReadCSV(*dbPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shapeserver: %v\n", err)
			os.Exit(1)
		}
		db = make([]lbkeogh.Series, len(rows))
		for i, r := range rows {
			db[i] = r
		}
	case *synthetic != "":
		parts := strings.Split(*synthetic, ",")
		var m, n int
		var err1, err2 error
		if len(parts) == 2 {
			m, err1 = strconv.Atoi(strings.TrimSpace(parts[0]))
			n, err2 = strconv.Atoi(strings.TrimSpace(parts[1]))
		}
		if len(parts) != 2 || err1 != nil || err2 != nil || m < 2 || n < 2 {
			fmt.Fprintf(os.Stderr, "shapeserver: -synthetic wants m,n with m,n >= 2, got %q\n", *synthetic)
			os.Exit(2)
		}
		db = lbkeogh.SyntheticProjectilePoints(*seed, m, n)
	default:
		fmt.Fprintln(os.Stderr, "shapeserver: one of -db or -synthetic is required")
		os.Exit(2)
	}

	var tlog *lbkeogh.TraceLog
	if !*notrace {
		tlog = lbkeogh.NewTraceLog()
	}
	srv, err := server.New(server.Config{
		DB:             db,
		Labels:         labels,
		MaxInflight:    *inflight,
		MaxQueue:       *queue,
		PoolSize:       *pool,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
		TraceLog:       tlog,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "shapeserver: %v\n", err)
		os.Exit(1)
	}
	lbkeogh.PublishExpvar("shapeserver", srv)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("shapeserver: serving %d series of length %d on %s (/v1/search /v1/topk /v1/range /healthz /metrics /debug/lbkeogh)\n",
		len(db), srv.Len(), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "shapeserver: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("shapeserver: %v: draining (grace %v)\n", s, *grace)
	}
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "shapeserver: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("shapeserver: drained")
}
