// Command shapeserver serves rotation-invariant shape search over HTTP: load
// a CSV database (as written by mkdata) or a synthetic one, then answer
// nearest-neighbour, top-K, and range queries as JSON, each response carrying
// its own pruning breakdown. The server bounds concurrency with admission
// control (429 once the wait queue fills), bounds every search with a
// deadline wired into the library's cooperative cancellation (504 on
// expiry), pools compiled query sessions so repeated queries skip the O(n²)
// rotation-set build, and drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	mkdata -dataset projectile -m 500 > db.csv
//	shapeserver -db db.csv
//	shapeserver -synthetic 400,128 -addr :8321
//	shapeserver -segments /data/shapes     # mmap a segment store (see shapeingest)
//
//	curl -s localhost:8321/v1/search -d '{"query_index":0}'
//	curl -s localhost:8321/v1/topk   -d '{"series":[...], "k":5, "measure":"dtw", "r":5}'
//	curl -s localhost:8321/v1/range  -d '{"query_index":3, "threshold":2.5}'
//	curl -s localhost:8321/readyz
//	curl -s localhost:8321/metrics
//
// The process emits a structured request log (JSON by default; see -log and
// -log-level), binds the listener before the database load so /livez answers
// immediately (/readyz stays 503 until the database is in), and keeps a
// continuous-profiling ring at /debug/profiles (see -profile-interval). The
// live dashboard is at /debug/lbkeogh (traces downloadable as Chrome
// trace-event JSON for ui.perfetto.dev), expvar at /debug/vars, and pprof at
// /debug/pprof/.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"lbkeogh"
	"lbkeogh/internal/obs/ops"
	"lbkeogh/internal/obs/storeobs"
	"lbkeogh/internal/segment"
	"lbkeogh/internal/seriesio"
	"lbkeogh/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8321", "listen address")
		dbPath      = flag.String("db", "", "CSV database file (label,v0,v1,...)")
		segments    = flag.String("segments", "", "memory-mapped segment store directory (see shapeingest); enables /v1/ingest and /v1/compact")
		segDims     = flag.Int("segment-dims", 8, "feature dims for segments created by online ingest into an empty store")
		segVerify   = flag.Bool("verify-on-open", false, "recompute every segment section CRC while mapping the store (faults the whole file in; default trusts shapeingest -verify and checks headers only)")
		resEvery    = flag.Duration("residency-interval", 30*time.Second, "page-residency (mincore) sampling interval in segment mode; 0 disables the sampler")
		journalSize = flag.Int("journal-size", 512, "storage event journal ring size in segment mode")
		synthetic   = flag.String("synthetic", "", "generate a synthetic database instead: m,n (series,samples)")
		seed        = flag.Int64("seed", 42, "synthetic dataset seed")
		inflight    = flag.Int("inflight", 4, "max concurrent searches")
		queue       = flag.Int("queue", 16, "max requests waiting beyond the in-flight slots (then 429)")
		pool        = flag.Int("pool", 32, "max idle query sessions kept for reuse")
		timeout     = flag.Duration("timeout", 10*time.Second, "default per-request search deadline")
		maxTO       = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested timeout_ms")
		grace       = flag.Duration("grace", 15*time.Second, "shutdown grace period for draining in-flight requests")
		drainWait   = flag.Duration("drain-wait", 2*time.Second, "pause between flipping /readyz and closing the listener, so load balancers observe the flip")
		notrace     = flag.Bool("notrace", false, "disable query tracing (smaller overhead, empty dashboard)")
		traceSample = flag.Float64("trace-sample", 1.0, "fraction of non-slow traces the trace log retains")
		logFormat   = flag.String("log", "json", "structured log format: json or text")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn, error")
		profEvery   = flag.Duration("profile-interval", 60*time.Second, "continuous-profiling capture interval (0 disables the ring)")
		profCPU     = flag.Duration("profile-cpu", 2*time.Second, "CPU profile duration per capture round")
		profKeep    = flag.Int("profile-keep", 16, "profile captures retained in the ring")
		expSample   = flag.Int("explain-sample-interval", 0, "measure the full bound waterfall for one in N comparisons (0 = default 512, negative disables the sampler)")
	)
	flag.Parse()
	logger := ops.NewLogger(os.Stderr, *logFormat, *logLevel)

	// Bind before loading the database: /livez answers as soon as the
	// process is up, while /readyz reports "loading" until the real handler
	// is swapped in. The swap is one atomic store — no requests are dropped.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err)
		os.Exit(1)
	}
	var handler atomic.Value // of http.Handler
	var phase atomic.Value   // "loading" → "mapping" → swapped out by the real mux
	phase.Store("loading")
	handler.Store(loadingHandler(&phase))
	httpSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	})}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String())

	var labels []int
	var db []lbkeogh.Series
	var store *segment.DB
	sources := 0
	for _, set := range []bool{*dbPath != "", *synthetic != "", *segments != ""} {
		if set {
			sources++
		}
	}
	switch {
	case sources > 1:
		logger.Error("-db, -synthetic, and -segments are mutually exclusive")
		os.Exit(2)
	case *segments != "":
		// Distinct readiness phase: mapping a large store is not the same
		// wait as parsing a CSV, and probes can tell them apart.
		phase.Store("mapping")
		// Headers and section tables are always verified; skipping the data
		// CRCs keeps the open a true map — RSS grows with the pages queries
		// touch, not with store size.
		openOpts := []segment.OpenOption{segment.WithoutDataCRC()}
		if *segVerify {
			openOpts = nil
		}
		store, err = segment.OpenDB(*segments, *segDims, openOpts...)
		if err != nil {
			logger.Error("segment store open failed", "dir", *segments, "error", err)
			os.Exit(1)
		}
		defer store.Close()
		st := store.Stats()
		logger.Info("segment store mapped", "dir", *segments,
			"generation", st.Generation, "segments", len(st.Segments),
			"records", st.Records, "mapped_bytes", st.MappedBytes, "zero_copy", st.ZeroCopy)
		if len(st.Orphans) > 0 {
			logger.Warn("ignoring orphaned segment files not named by the manifest", "files", st.Orphans)
		}
	case *dbPath != "":
		var rows [][]float64
		labels, rows, err = seriesio.ReadCSV(*dbPath)
		if err != nil {
			logger.Error("database load failed", "path", *dbPath, "error", err)
			os.Exit(1)
		}
		db = make([]lbkeogh.Series, len(rows))
		for i, r := range rows {
			db[i] = r
		}
		logger.Info("database loaded", "path", *dbPath, "series", len(db))
	case *synthetic != "":
		parts := strings.Split(*synthetic, ",")
		var m, n int
		var err1, err2 error
		if len(parts) == 2 {
			m, err1 = strconv.Atoi(strings.TrimSpace(parts[0]))
			n, err2 = strconv.Atoi(strings.TrimSpace(parts[1]))
		}
		if len(parts) != 2 || err1 != nil || err2 != nil || m < 2 || n < 2 {
			logger.Error("-synthetic wants m,n with m,n >= 2", "got", *synthetic)
			os.Exit(2)
		}
		db = lbkeogh.SyntheticProjectilePoints(*seed, m, n)
		logger.Info("database generated", "series", m, "samples", n, "seed", *seed)
	default:
		logger.Error("one of -db, -synthetic, or -segments is required")
		os.Exit(2)
	}

	var tlog *lbkeogh.TraceLog
	if !*notrace {
		tlog = lbkeogh.NewTraceLog(lbkeogh.WithSampleRate(*traceSample))
	}
	var profiler *ops.Profiler
	if *profEvery > 0 {
		profiler = ops.NewProfiler(ops.ProfilerConfig{
			Interval:    *profEvery,
			CPUDuration: *profCPU,
			MaxCaptures: *profKeep,
			Logger:      logger,
		})
		profiler.Start()
		defer profiler.Stop()
	}
	// Storage-plane observability (segment mode): every fetch and lifecycle
	// event flows into the recorder, and the mincore sampler keeps the
	// /debug/storage residency heatmap current off the query path.
	var storeRec *storeobs.Recorder
	if store != nil {
		storeRec = storeobs.NewRecorder(storeobs.Config{
			JournalSize: *journalSize,
			Logger:      logger,
		})
		store.SetObserver(storeRec)
		if *resEvery > 0 {
			sampler := storeobs.NewSampler(storeRec, segment.ProbeResidency(store), *resEvery)
			sampler.Start()
			defer sampler.Stop()
		}
	}
	srv, err := server.New(server.Config{
		DB:             db,
		Labels:         labels,
		Store:          store,
		StoreObs:       storeRec,
		MaxInflight:    *inflight,
		MaxQueue:       *queue,
		PoolSize:       *pool,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
		TraceLog:       tlog,
		Logger:         logger,
		Profiler:       profiler,

		ExplainSampleInterval: *expSample,
	})
	if err != nil {
		logger.Error("server build failed", "error", err)
		os.Exit(1)
	}
	lbkeogh.PublishExpvar("shapeserver", srv)
	handler.Store(srv.Handler())
	size := len(db)
	if store != nil {
		size = store.Len()
	}
	logger.Info("serving",
		"series", size, "series_len", srv.Len(), "addr", ln.Addr().String(),
		"endpoints", "/v1/search /v1/topk /v1/range /v1/ingest /v1/compact /livez /readyz /metrics /debug/lbkeogh /debug/index /debug/storage /debug/profiles")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("serve failed", "error", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("signal received", "signal", s.String(), "grace", grace.String(), "drain_wait", drainWait.String())
	}
	// Flip readiness first and leave the listener open for drainWait so
	// probes observe the 503 before connections stop being accepted; then
	// Shutdown waits out in-flight requests up to the grace period.
	srv.BeginDrain()
	time.Sleep(*drainWait)
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown failed", "error", err)
		os.Exit(1)
	}
	logger.Info("drained")
}

// loadingHandler answers probes while the database comes up: alive but not
// ready, with the current startup phase ("loading" a CSV / synthetic build,
// "mapping" a segment store) as the unready reason so a slow start is never a
// bare 503. Everything else gets a 503 with Retry-After.
func loadingHandler(phase *atomic.Value) http.Handler {
	reason := func() string { return phase.Load().(string) }
	mux := http.NewServeMux()
	alive := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"status": "ok", "phase": reason()}) //nolint:errcheck // probe body
	}
	mux.HandleFunc("/livez", alive)
	mux.HandleFunc("/healthz", alive)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "unready", "reason": reason()}) //nolint:errcheck // probe body
	})
	return mux
}
