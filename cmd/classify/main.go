// Command classify regenerates Table 8 of the paper: one-nearest-neighbour
// leave-one-out classification error under rotation-invariant Euclidean
// distance and DTW (warping window learned on a training split), for each of
// the ten synthetic stand-in datasets.
//
// Usage:
//
//	classify                     # all ten datasets at the default scale
//	classify -dataset "Fish"     # a single dataset
//	classify -scale 2            # double the per-class instance count
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"lbkeogh/internal/experiments"
	"lbkeogh/internal/synth"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "single dataset name (default: all)")
		scale   = flag.Float64("scale", 1.0, "per-class instance-count multiplier")
	)
	flag.Parse()

	names := synth.Table8Names()
	if *dataset != "" {
		names = []string{*dataset}
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tclasses\tinstances (paper)\tEuclidean err%\tDTW err% {R}\tpaper Eucl\tpaper DTW {R}")
	for _, name := range names {
		row, err := experiments.Table8(name, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "classify: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d (%d)\t%.2f\t%.2f {%d}\t%.2f\t%.2f {%d}\n",
			row.Name, row.Classes, row.Instances, row.PaperSize,
			row.EuclideanErr, row.DTWErr, row.BestR,
			row.PaperEuclErr, row.PaperDTWErr, row.PaperR)
	}
	tw.Flush()
}
