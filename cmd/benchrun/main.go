// Command benchrun regenerates the paper's evaluation figures and tables on
// the synthetic workloads (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	benchrun -fig 19                 # Figure 19 (projectile points, Euclidean)
//	benchrun -fig 20 -maxm 16000     # Figure 20 at the paper's full size
//	benchrun -fig 24                 # Figure 24 (disk accesses)
//	benchrun -fig table8             # Table 8 (classification error)
//	benchrun -fig exponent           # the O(n^1.06) empirical-complexity fit
//	benchrun -fig all                # everything at the default scale
//	benchrun -fig none -stats-json - # per-strategy pruning breakdowns as JSON
//	benchrun -fig none -bench-out .  # machine-readable BENCH_<date>.json
//	benchrun -compare .              # diff the two most recent BENCH files
//	benchrun -fig 19 -serve :8080    # /metrics, /debug/lbkeogh and pprof live
//
// Each figure prints the same series the paper plots: the ratio of
// num_steps per comparison against brute force (figures 19–23), the
// fraction of objects fetched from disk (figure 24), or leave-one-out error
// rates (table 8). Paper-scale runs are available via -maxm/-n/-queries but
// take correspondingly longer; the defaults reproduce the curve shapes in
// seconds to minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"lbkeogh/internal/experiments"
	"lbkeogh/internal/obs/ops"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which experiment: 19|20|21|22|23|24|table8|exponent|landmark|mixedbag|sampling|occlusion|chaincode|probes|all")
		maxM    = flag.Int("maxm", 2000, "largest database size for the efficiency sweeps")
		queries = flag.Int("queries", 5, "queries to average per point (paper: 50)")
		nProj   = flag.Int("n", 251, "series length for projectile points (paper: 251)")
		nHet    = flag.Int("nhet", 256, "series length for the heterogeneous dataset (paper: 1024)")
		nLC     = flag.Int("nlc", 256, "series length for light curves")
		scale   = flag.Float64("scale", 1.0, "table 8 per-class instance-count multiplier")
		rBand   = flag.Int("r", 5, "Sakoe-Chiba radius for DTW figures")
		seed    = flag.Int64("seed", 2006, "base RNG seed")
		format  = flag.String("format", "table", "output format for figure series: table | csv")

		serve     = flag.String("serve", "", "serve /metrics (Prometheus text), /debug/lbkeogh (live trace dashboard), /debug/vars and /debug/pprof/ on this address (e.g. :8080) and keep running after the experiments")
		statsJSON = flag.String("stats-json", "", "write per-strategy pruning breakdowns as JSON to this file (\"-\" for stdout)")
		segmentM  = flag.Int("segment-m", 0, "also benchmark a disk-resident segment store at this size (bulk ingest, mmap, index fetch fraction); 0 disables")
		benchOut  = flag.String("bench-out", "", "write a machine-readable BENCH_<date>.json (steps, prune rates, stage latencies, wall time) into this directory")
		compare   = flag.String("compare", "", "diff the two most recent BENCH_*.json files in this directory, then exit")
		logLevel  = flag.String("log-level", "info", "stderr diagnostic log level: debug, info, warn, error")
	)
	flag.Parse()
	outputFormat = *format
	// Result tables go to stdout; diagnostics go to stderr as structured
	// text log lines, so scripted callers can separate the two streams.
	diag := ops.NewLogger(os.Stderr, "text", *logLevel)

	if *compare != "" {
		if err := compareBench(*compare); err != nil {
			diag.Error("bench comparison failed", "dir", *compare, "error", err)
			os.Exit(1)
		}
		return
	}

	var live *liveObs
	if *serve != "" {
		live = newLiveObs()
		if err := serveObs(*serve, live); err != nil {
			diag.Error("serve failed", "addr", *serve, "error", err)
			os.Exit(1)
		}
		fmt.Printf("serving /metrics, /debug/lbkeogh, /debug/vars and /debug/pprof/ on %s\n", *serve)
	}

	run := func(name string, fn func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		fmt.Printf("==> %s\n", title(name))
		if err := fn(); err != nil {
			diag.Error("experiment failed", "fig", name, "error", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("19", func() error {
		return efficiency(experiments.EfficiencyConfig{
			Workload: experiments.ProjectilePoints, Sizes: experiments.GeometricSizes(*maxM),
			N: *nProj, Queries: *queries, Seed: *seed,
		})
	})
	run("20", func() error {
		return efficiency(experiments.EfficiencyConfig{
			Workload: experiments.ProjectilePoints, UseDTW: true, R: *rBand,
			Sizes: experiments.GeometricSizes(*maxM), N: *nProj, Queries: *queries, Seed: *seed,
		})
	})
	run("21", func() error {
		if err := efficiency(experiments.EfficiencyConfig{
			Workload: experiments.Heterogeneous, Sizes: experiments.GeometricSizes(min(*maxM, 8000)),
			N: *nHet, Queries: *queries, Seed: *seed + 1,
		}); err != nil {
			return err
		}
		fmt.Println("   (DTW panel)")
		return efficiency(experiments.EfficiencyConfig{
			Workload: experiments.Heterogeneous, UseDTW: true, R: *rBand,
			Sizes: experiments.GeometricSizes(min(*maxM, 8000)), N: *nHet, Queries: *queries, Seed: *seed + 1,
		})
	})
	run("22", func() error {
		return efficiency(experiments.EfficiencyConfig{
			Workload: experiments.LightCurves, Sizes: experiments.GeometricSizes(min(*maxM, 953)),
			N: *nLC, Queries: *queries, Seed: *seed + 2,
		})
	})
	run("23", func() error {
		return efficiency(experiments.EfficiencyConfig{
			Workload: experiments.LightCurves, UseDTW: true, R: *rBand,
			Sizes: experiments.GeometricSizes(min(*maxM, 953)), N: *nLC, Queries: *queries, Seed: *seed + 2,
		})
	})
	run("24", func() error {
		for _, w := range []experiments.Workload{experiments.ProjectilePoints, experiments.Heterogeneous} {
			fmt.Printf("   dataset: %s\n", w)
			n := *nProj
			if w == experiments.Heterogeneous {
				n = *nHet
			}
			curves, err := experiments.DiskAccesses(experiments.DiskConfig{
				Workload: w, Dims: []int{4, 8, 16, 32},
				M: min(*maxM, 2000), N: n, R: *rBand, Queries: *queries, Seed: *seed + 3,
			})
			if err != nil {
				return err
			}
			tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintf(tw, "   D\t%s\t%s\n", curves[0].Label, curves[1].Label)
			for i, d := range curves[0].Dims {
				fmt.Fprintf(tw, "   %d\t%.4f\t%.4f\n", d, curves[0].Fraction[i], curves[1].Fraction[i])
			}
			tw.Flush()
		}
		return nil
	})
	run("table8", func() error {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "   dataset\tclasses\tm (paper m)\tED err%\tDTW err% {R}\tpaper ED\tpaper DTW {R}")
		for _, name := range listTable8() {
			row, err := experiments.Table8(name, *scale)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "   %s\t%d\t%d (%d)\t%.2f\t%.2f {%d}\t%.2f\t%.2f {%d}\n",
				row.Name, row.Classes, row.Instances, row.PaperSize,
				row.EuclideanErr, row.DTWErr, row.BestR,
				row.PaperEuclErr, row.PaperDTWErr, row.PaperR)
		}
		tw.Flush()
		return nil
	})
	run("landmark", func() error {
		res, err := experiments.LandmarkVsRotation("Yoga", *scale, 2)
		if err != nil {
			return err
		}
		fmt.Printf("   %s: landmark ED %.2f%% / DTW %.2f%%   rotation-invariant ED %.2f%% / DTW %.2f%%\n",
			res.Dataset, res.LandmarkED, res.LandmarkDTW, res.RotInvED, res.RotInvDTW)
		fmt.Println("   (paper, human-annotated landmarks: 17.0 / 15.5 vs 4.70 / 4.85)")
		return nil
	})
	run("mixedbag", func() error {
		res, err := experiments.ImageSpaceBaselines(*seed+5, 9, 4, 64, 24, 128)
		if err != nil {
			return err
		}
		fmt.Printf("   %d rasters: Chamfer %.2f%%   Hausdorff %.2f%%   signature+RED %.2f%%\n",
			res.Instances, res.ChamferErr, res.HausdorffErr, res.SignatureEuclideanErr)
		fmt.Println("   (paper on MixedBag: Chamfer 6.0, Hausdorff 7.0, Euclidean 4.375)")
		return nil
	})
	run("sampling", func() error {
		res, err := experiments.SamplingAblation("Fish", *scale, 40)
		if err != nil {
			return err
		}
		fmt.Printf("   %s: full n=%d error %.2f%%   sampled to %d points error %.2f%%\n",
			res.Dataset, res.FullLen, res.FullErr, res.SampledLen, res.SampledErr)
		fmt.Println("   (paper: 40-point sampling 36.0% error vs raw-signature 11.43%)")
		return nil
	})
	run("occlusion", func() error {
		res, err := experiments.OcclusionRobustness(*seed+6, 6, 10, 128, 0.5, 4, 0.5)
		if err != nil {
			return err
		}
		fmt.Printf("   50%% occluded instances: ED %.2f%%   DTW %.2f%%   LCSS %.2f%%\n",
			res.EDErr, res.DTWErr, res.LCSSErr)
		return nil
	})
	run("chaincode", func() error {
		res, err := experiments.ChainCodeBaseline(*seed+8, 6, 4, 64, 128)
		if err != nil {
			return err
		}
		fmt.Printf("   %d rasters: chain-code error %.2f%%   signature+RED error %.2f%%\n",
			res.Instances, res.ChainCodeErr, res.SignatureErr)
		fmt.Printf("   cost/comparison: chain codes (n²·log n model) %.0f   wedge (measured) %.0f   -> %.0fx\n",
			res.ChainCodeSteps, res.SignatureSteps, res.SpeedupOverChains)
		fmt.Println("   (paper §2.3: \"we are thousands of times faster while also able to avoid discretization errors\")")
		return nil
	})
	run("probes", func() error {
		res, err := experiments.ProbeIntervalSensitivity(*seed+7, min(*maxM, 1000), *nProj, *queries,
			[]int{3, 5, 10, 20})
		if err != nil {
			return err
		}
		for i, iv := range res.Intervals {
			fmt.Printf("   intervals=%d: %.1f steps/comparison\n", iv, res.Steps[i])
		}
		fmt.Printf("   max spread %.1f%% (paper: within 4%% across 3..20)\n", 100*res.MaxSpread)
		return nil
	})
	run("exponent", func() error {
		res, err := experiments.EmpiricalExponent(experiments.ExponentConfig{
			Lengths: []int{32, 64, 128, 256, 512},
			M:       min(*maxM, 2000),
			Queries: *queries,
			Seed:    *seed + 4,
		})
		if err != nil {
			return err
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "   n\tsteps/comparison")
		for i, n := range res.Lengths {
			fmt.Fprintf(tw, "   %d\t%.1f\n", n, res.Steps[i])
		}
		tw.Flush()
		fmt.Printf("   fitted: steps ≈ %.2f · n^%.3f   (paper: O(n^1.06); brute force is n^2)\n",
			res.Coeff, res.Exponent)
		return nil
	})

	if !ran(*fig) {
		diag.Error("unknown -fig (want 19|20|21|22|23|24|table8|exponent|none|all)", "fig", *fig)
		os.Exit(2)
	}

	if *statsJSON != "" || *benchOut != "" || *serve != "" {
		fmt.Println("==> Instrumented per-strategy scan (pruning breakdowns)")
		rep, err := collectStats(min(*maxM, 500), *nProj, *queries, *seed, live)
		if err != nil {
			diag.Error("instrumented scan failed", "error", err)
			os.Exit(1)
		}
		broken := 0
		for _, s := range rep.Strategies {
			if !s.Reconciles || !s.StepsMatchCounter {
				broken++
			}
			fmt.Printf("   %-14s steps=%-12d prune_rate=%.4f reconciles=%v (%.2fs)\n",
				s.Strategy, s.Steps, s.Stats.PruneRate, s.Reconciles && s.StepsMatchCounter, s.WallSeconds)
		}
		if *statsJSON != "" {
			// The stats report is diagnostic output: write it even when
			// reconciliation failed, so the failure can be inspected.
			if err := writeReport(rep, *statsJSON); err != nil {
				diag.Error("stats-json write failed", "path", *statsJSON, "error", err)
				os.Exit(1)
			}
		}
		if broken > 0 {
			// The bench JSON is a quality gate artifact; a report whose
			// accounting does not reconcile must fail the run, not be
			// archived as if it were a valid measurement.
			diag.Error("step reconciliation failed; not writing bench JSON",
				"broken", broken, "strategies", len(rep.Strategies))
			os.Exit(1)
		}
		if *segmentM > 0 {
			fmt.Println("==> Segment-store scan (mmap-backed, index fetch fraction)")
			sr, err := collectSegmentBench(*segmentM, 64, *queries, *seed)
			if err != nil {
				diag.Error("segment bench failed", "error", err)
				os.Exit(1)
			}
			printSegmentReport(sr)
			if !sr.ReadsReconcile {
				// Same admissibility standard as the step counters: a fetch
				// count the stats layer cannot reproduce is not a measurement.
				diag.Error("segment disk-read accounting does not reconcile; not writing bench JSON")
				os.Exit(1)
			}
			rep.Segment = sr
		}
		if *benchOut != "" {
			path, err := writeBenchJSON(rep, *benchOut)
			if err != nil {
				diag.Error("bench-out write failed", "dir", *benchOut, "error", err)
				os.Exit(1)
			}
			fmt.Printf("   wrote %s\n", path)
		}
	}

	if *serve != "" {
		fmt.Printf("experiments done; still serving on %s (interrupt to stop)\n", *serve)
		select {}
	}
}

func ran(fig string) bool {
	switch fig {
	case "all", "none", "19", "20", "21", "22", "23", "24", "table8", "exponent",
		"landmark", "mixedbag", "sampling", "occlusion", "chaincode", "probes":
		return true
	}
	return false
}

func title(name string) string {
	switch name {
	case "19":
		return "Figure 19 — projectile points, Euclidean (steps ratio vs brute force)"
	case "20":
		return "Figure 20 — projectile points, DTW"
	case "21":
		return "Figure 21 — heterogeneous dataset, Euclidean then DTW"
	case "22":
		return "Figure 22 — star light curves, Euclidean"
	case "23":
		return "Figure 23 — star light curves, DTW"
	case "24":
		return "Figure 24 — fraction of objects fetched from disk vs dimensionality"
	case "table8":
		return "Table 8 — 1-NN leave-one-out error, ED vs DTW"
	case "exponent":
		return "Empirical complexity — wedge steps/comparison vs n"
	case "landmark":
		return "Section 5.1 — landmark alignment vs rotation invariance (Yoga)"
	case "mixedbag":
		return "Section 5.1 — image-space baselines (Chamfer/Hausdorff) vs signature"
	case "sampling":
		return "Sections 2.3/5.1 — contour sampling vs full-resolution signature"
	case "occlusion":
		return "Figures 14–15 — occlusion robustness (ED vs DTW vs LCSS)"
	case "chaincode":
		return "Section 2.3 — chain-code cyclic matching [23] vs wedge signatures"
	case "probes":
		return "Section 5.3 — dynamic-K probe-interval sensitivity"
	default:
		return name
	}
}

var outputFormat = "table"

func efficiency(cfg experiments.EfficiencyConfig) error {
	curves, err := experiments.Efficiency(cfg)
	if err != nil {
		return err
	}
	if outputFormat == "csv" {
		header := []string{"m"}
		for _, c := range curves {
			header = append(header, c.Label)
		}
		fmt.Println(strings.Join(header, ","))
		for i, m := range cfg.Sizes {
			row := []string{fmt.Sprint(m)}
			for _, c := range curves {
				row = append(row, fmt.Sprintf("%.6g", c.Ratio[i]))
			}
			fmt.Println(strings.Join(row, ","))
		}
		return nil
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := []string{"   m"}
	for _, c := range curves {
		header = append(header, c.Label)
	}
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	for i, m := range cfg.Sizes {
		row := []string{fmt.Sprintf("   %d", m)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.5f", c.Ratio[i]))
		}
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	fmt.Printf("   wedge speedup over brute force at m=%d: %.0fx\n",
		cfg.Sizes[len(cfg.Sizes)-1], experiments.SpeedupAtLargestM(curves))
	return nil
}

func listTable8() []string {
	return []string{"Face", "Swedish Leaves", "Chicken", "MixedBag", "OSU Leaves",
		"Diatoms", "Aircraft", "Fish", "Light-Curve", "Yoga"}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
