package main

// Segment-store benchmark (-segment-m): the disk-resident counterpart to the
// in-heap instrumented scan. It bulk-writes m synthetic shapes into a
// temporary mmap-backed segment store, builds the rotation-invariant index
// from the store's precomputed feature columns, and answers queries through
// the index — reporting the fraction of records actually fetched (the
// paper's Figure 24 metric, here at six-figure scale) alongside ingest and
// build throughput. The block rides in BENCH_<date>.json next to the
// in-heap strategies, so bench-compare tracks both trajectories.

import (
	"fmt"
	"os"
	"time"

	"lbkeogh"
	"lbkeogh/internal/obs/storeobs"
	"lbkeogh/internal/segment"
)

// segmentReport is the machine-readable segment-store block of a BENCH file.
type segmentReport struct {
	M           int   `json:"m"`
	N           int   `json:"n"`
	Dims        int   `json:"dims"`
	Segments    int   `json:"segments"`
	ZeroCopy    bool  `json:"zero_copy"`
	DiskBytes   int64 `json:"disk_bytes"`
	MappedBytes int64 `json:"mapped_bytes"`

	IngestSeconds     float64 `json:"ingest_seconds"`
	IngestRowsPerSec  float64 `json:"ingest_rows_per_sec"`
	IndexBuildSeconds float64 `json:"index_build_seconds"`

	Queries        int     `json:"queries"`
	QuerySeconds   float64 `json:"query_seconds"`
	AvgDiskReads   float64 `json:"avg_disk_reads"`
	FetchFraction  float64 `json:"fetch_fraction"`  // avg reads / m — Figure 24 at scale
	ReadsReconcile bool    `json:"reads_reconcile"` // SearchStats.DiskReads == store fetch counter

	// Storage-plane observability block (storeobs attached to the store):
	// cold = first-touch page-fault fetches, warm = page-cache hits; read
	// amplification = faulted page bytes / requested bytes. Zero-valued in
	// trajectory files that predate the recorder.
	ColdFetches       int64   `json:"cold_fetches,omitempty"`
	WarmFetches       int64   `json:"warm_fetches,omitempty"`
	ReadAmplification float64 `json:"read_amplification,omitempty"`
	FetchesReconcile  bool    `json:"fetches_reconcile,omitempty"` // recorder fetches == store reads
	// ResidentFraction is the post-query mincore sample of the mapping, -1
	// where residency sampling is unsupported (non-Linux or pread fallback).
	ResidentFraction float64 `json:"resident_fraction,omitempty"`
}

// segmentDims is the compressed dimensionality of the stored feature columns
// and the index built from them — the paper's default operating point.
const segmentDims = 8

// collectSegmentBench ingests m shapes into a throwaway segment store and
// measures the full disk-resident query path.
func collectSegmentBench(m, n, queries int, seed int64) (*segmentReport, error) {
	dir, err := os.MkdirTemp("", "lbkeogh-segbench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	all := lbkeogh.SyntheticProjectilePoints(seed, m+queries, n)
	rows, qs := all[:m], all[m:]

	// Bulk ingest with precomputed features, rolled into several segments so
	// the query path exercises cross-segment ID location.
	perSegment := int64(m/4 + 1)
	ingestStart := time.Now()
	bw, err := segment.NewBulkWriter(dir, n, segmentDims, perSegment)
	if err != nil {
		return nil, err
	}
	for id, row := range rows {
		mags, paas := segment.Features(row, segmentDims)
		if err := bw.AddPrecomputed(row, mags, paas, int64(id)); err != nil {
			bw.Abort()
			return nil, err
		}
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	ingestSecs := time.Since(ingestStart).Seconds()

	buildStart := time.Now()
	ix, err := lbkeogh.OpenSegmentIndex(dir, segmentDims)
	if err != nil {
		return nil, err
	}
	defer ix.Close()
	buildSecs := time.Since(buildStart).Seconds()

	// Storage-plane observability over the query phase: cold/warm fetch
	// split, read amplification, and (where supported) page residency.
	rec := storeobs.NewRecorder(storeobs.Config{})
	ix.SegmentStore().SetObserver(rec)

	var diskBytes int64
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if info, err := e.Info(); err == nil {
				diskBytes += info.Size()
			}
		}
	}

	var totalReads int64
	reconcile := true
	queryStart := time.Now()
	for _, series := range qs {
		q, err := lbkeogh.NewQuery(series, lbkeogh.Euclidean())
		if err != nil {
			return nil, err
		}
		ix.ResetDiskReads()
		ix.ResetStats()
		if _, err := ix.Search(q); err != nil {
			return nil, err
		}
		reads := ix.DiskReads()
		totalReads += int64(reads)
		if ix.Stats().DiskReads != int64(reads) {
			reconcile = false
		}
	}
	querySecs := time.Since(queryStart).Seconds()

	totals := rec.Totals()
	residentFraction := -1.0
	if samples := segment.ProbeResidency(ix.SegmentStore())(); len(samples) > 0 {
		var mapped, resident int64
		supported := false
		for _, s := range samples {
			if s.Err == "" {
				supported = true
				mapped += s.MappedBytes
				resident += s.ResidentBytes
			}
		}
		if supported && mapped > 0 {
			residentFraction = float64(resident) / float64(mapped)
		}
	}

	db, err := segment.OpenDB(dir, segmentDims)
	if err != nil {
		return nil, err
	}
	st := db.Stats()
	db.Close()

	avgReads := float64(totalReads) / float64(queries)
	return &segmentReport{
		M:                 m,
		N:                 n,
		Dims:              segmentDims,
		Segments:          len(st.Segments),
		ZeroCopy:          st.ZeroCopy,
		DiskBytes:         diskBytes,
		MappedBytes:       st.MappedBytes,
		IngestSeconds:     ingestSecs,
		IngestRowsPerSec:  float64(m) / ingestSecs,
		IndexBuildSeconds: buildSecs,
		Queries:           queries,
		QuerySeconds:      querySecs,
		AvgDiskReads:      avgReads,
		FetchFraction:     avgReads / float64(m),
		ReadsReconcile:    reconcile,
		ColdFetches:       totals.ColdFetches,
		WarmFetches:       totals.WarmFetches,
		ReadAmplification: totals.ReadAmplification(),
		FetchesReconcile:  totals.Fetches() == totalReads,
		ResidentFraction:  residentFraction,
	}, nil
}

func printSegmentReport(sr *segmentReport) {
	fmt.Printf("   segment store: m=%d n=%d D=%d in %d segments (%.1f MB on disk, zero_copy=%v)\n",
		sr.M, sr.N, sr.Dims, sr.Segments, float64(sr.DiskBytes)/(1<<20), sr.ZeroCopy)
	fmt.Printf("   ingest %.2fs (%.0f rows/s)   index build %.2fs   %d queries in %.2fs\n",
		sr.IngestSeconds, sr.IngestRowsPerSec, sr.IndexBuildSeconds, sr.Queries, sr.QuerySeconds)
	fmt.Printf("   avg disk reads/query %.1f -> fetch fraction %.5f   reads reconcile=%v\n",
		sr.AvgDiskReads, sr.FetchFraction, sr.ReadsReconcile)
	resident := "n/a (unsupported)"
	if sr.ResidentFraction >= 0 {
		resident = fmt.Sprintf("%.1f%%", 100*sr.ResidentFraction)
	}
	fmt.Printf("   fetches cold=%d warm=%d   read amplification %.2fx   resident %s   fetches reconcile=%v\n",
		sr.ColdFetches, sr.WarmFetches, sr.ReadAmplification, resident, sr.FetchesReconcile)
}
