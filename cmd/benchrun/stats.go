package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lbkeogh"
	"lbkeogh/internal/core"
	"lbkeogh/internal/obs"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/wedge"
)

// strategyReport is the per-strategy instrumentation summary emitted by
// -stats-json and -bench-out: the full pruning breakdown, the num_steps
// total, and two reconciliation checks (the outcome buckets sum to the
// rotations covered, and the record's step total equals the independently
// maintained num_steps counter).
type strategyReport struct {
	Strategy          string       `json:"strategy"`
	WallSeconds       float64      `json:"wall_seconds"`
	Steps             int64        `json:"steps"`
	StepsMatchCounter bool         `json:"steps_match_counter"`
	Reconciles        bool         `json:"reconciles"`
	Stats             obs.Snapshot `json:"stats"`
}

type benchReport struct {
	Date       string           `json:"date"`
	Workload   string           `json:"workload"`
	M          int              `json:"m"`
	N          int              `json:"n"`
	Queries    int              `json:"queries"`
	Seed       int64            `json:"seed"`
	Strategies []strategyReport `json:"strategies"`
}

// collectStats runs every search strategy over the same projectile-point
// workload with a live SearchStats record each, optionally registering the
// records in reg so a concurrent -serve scrape sees them update.
func collectStats(m, n, queries int, seed int64, reg *obs.Registry) benchReport {
	all := lbkeogh.SyntheticProjectilePoints(seed, m+queries, n)
	db, qs := all[:m], all[m:]
	rep := benchReport{
		Date:     time.Now().UTC().Format(time.RFC3339),
		Workload: "projectile-points",
		M:        m, N: n, Queries: queries, Seed: seed,
	}
	for _, str := range []struct {
		label string
		s     core.Strategy
	}{
		{"brute", core.BruteForce},
		{"early-abandon", core.EarlyAbandon},
		{"fft", core.FFTFilter},
		{"wedge", core.Wedge},
	} {
		rec := &obs.SearchStats{}
		if reg != nil {
			reg.SearchStats("lbkeogh_"+strings.ReplaceAll(str.label, "-", "_"),
				"search breakdown for the "+str.label+" strategy", rec)
		}
		var cnt stats.Counter // scan cost only; construction charged separately
		start := time.Now()
		for _, q := range qs {
			rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
			sc := core.NewSearcher(rs, wedge.ED{}, str.s, core.SearcherConfig{Obs: rec})
			sc.Scan(db, &cnt)
		}
		sn := rec.Snapshot()
		rep.Strategies = append(rep.Strategies, strategyReport{
			Strategy:          str.label,
			WallSeconds:       time.Since(start).Seconds(),
			Steps:             sn.Steps,
			StepsMatchCounter: sn.Steps == cnt.Steps(),
			Reconciles:        sn.Reconciles(),
			Stats:             sn,
		})
	}
	return rep
}

// writeReport marshals the report to path ("-" means stdout).
func writeReport(rep benchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	// Stage through a temp file in the target directory and rename into
	// place: readers never observe a truncated report, and an interrupted
	// run leaves no partial file under the final name.
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeBenchJSON writes the report as BENCH_<date>.json under dir.
func writeBenchJSON(rep benchReport, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+time.Now().UTC().Format("2006-01-02")+".json")
	return path, writeReport(rep, path)
}

// serveObs mounts the metric registry at /metrics, expvar at /debug/vars,
// and the pprof profiles at /debug/pprof/ on a private mux, then serves in
// the background.
func serveObs(addr string, reg *obs.Registry) error {
	reg.PublishExpvar("lbkeogh")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	// Give a bad address (port in use, etc.) a moment to fail loudly instead
	// of blocking forever at the end of the run.
	select {
	case err := <-errc:
		return fmt.Errorf("benchrun: -serve %s: %w", addr, err)
	case <-time.After(100 * time.Millisecond):
		return nil
	}
}
