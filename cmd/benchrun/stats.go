package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lbkeogh"
)

// strategyReport is the per-strategy instrumentation summary emitted by
// -stats-json and -bench-out: the full pruning breakdown, the num_steps
// total, per-stage latency percentiles, and two reconciliation checks (the
// outcome buckets sum to the rotations covered, and the record's step total
// equals the independently maintained num_steps counter).
type strategyReport struct {
	Strategy          string              `json:"strategy"`
	WallSeconds       float64             `json:"wall_seconds"`
	Steps             int64               `json:"steps"`
	StepsMatchCounter bool                `json:"steps_match_counter"`
	Reconciles        bool                `json:"reconciles"`
	Stats             lbkeogh.SearchStats `json:"stats"`
	// Tightness is the sampled bound-tightness summary (per-bound ratio
	// quantiles and false-positive fractions), one row per waterfall stage.
	// It comes from a separate untimed pass over the same queries, so the
	// wall/latency numbers above never include measurement cost.
	Tightness []lbkeogh.BoundTightness `json:"tightness,omitempty"`
}

type benchReport struct {
	Date       string           `json:"date"`
	Workload   string           `json:"workload"`
	M          int              `json:"m"`
	N          int              `json:"n"`
	Queries    int              `json:"queries"`
	Seed       int64            `json:"seed"`
	Strategies []strategyReport `json:"strategies"`
	// Segment is the disk-resident counterpart (-segment-m): the same
	// workload served through a memory-mapped segment store and its index.
	// Absent from points recorded before the segment store existed.
	Segment *segmentReport `json:"segment,omitempty"`
}

// liveObs is the mutable source/log registry behind -serve: the instrumented
// scan registers its per-strategy records and trace logs after the server is
// already up, so a concurrent scrape or dashboard load sees them appear and
// update live.
type liveObs struct {
	mu      sync.Mutex
	sources map[string]lbkeogh.StatsSource
	logs    map[string]*lbkeogh.TraceLog
}

func newLiveObs() *liveObs {
	return &liveObs{
		sources: map[string]lbkeogh.StatsSource{},
		logs:    map[string]*lbkeogh.TraceLog{},
	}
}

func (l *liveObs) add(name string, src lbkeogh.StatsSource, t *lbkeogh.TraceLog) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sources[name] = src
	l.logs[name] = t
	l.mu.Unlock()
}

func (l *liveObs) snapshot() (map[string]lbkeogh.StatsSource, map[string]*lbkeogh.TraceLog) {
	l.mu.Lock()
	defer l.mu.Unlock()
	src := make(map[string]lbkeogh.StatsSource, len(l.sources))
	for k, v := range l.sources {
		src[k] = v
	}
	logs := make(map[string]*lbkeogh.TraceLog, len(l.logs))
	for k, v := range l.logs {
		logs[k] = v
	}
	return src, logs
}

// strategyStats accumulates the records of every query one strategy has run:
// finished queries are folded into base, the in-flight query is read live
// (its record is safe to snapshot concurrently). Implements
// lbkeogh.StatsSource for /metrics and the dashboard.
type strategyStats struct {
	mu   sync.Mutex
	base lbkeogh.SearchStats
	cur  *lbkeogh.Query
	tlog *lbkeogh.TraceLog
}

func (a *strategyStats) setCurrent(q *lbkeogh.Query) {
	a.mu.Lock()
	a.cur = q
	a.mu.Unlock()
}

func (a *strategyStats) fold() {
	a.mu.Lock()
	if a.cur != nil {
		addStats(&a.base, a.cur.Stats())
		a.cur = nil
	}
	a.mu.Unlock()
}

func (a *strategyStats) Stats() lbkeogh.SearchStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := cloneStats(a.base)
	if a.cur != nil {
		addStats(&out, a.cur.Stats())
	}
	finishStats(&out)
	out.StageLatencies = a.tlog.StageLatencies()
	return out
}

// cloneStats deep-copies the slice-valued fields so callers never alias the
// accumulator's backing arrays.
func cloneStats(s lbkeogh.SearchStats) lbkeogh.SearchStats {
	out := s
	out.WedgePrunesByLevel = append([]int64(nil), s.WedgePrunesByLevel...)
	out.StepsHistogram = append([]lbkeogh.HistogramBucket(nil), s.StepsHistogram...)
	out.KTrajectory = nil // per-query trajectories don't aggregate
	out.StageLatencies = nil
	return out
}

// addStats accumulates b's counters into a; derived rates are left stale
// until finishStats.
func addStats(a *lbkeogh.SearchStats, b lbkeogh.SearchStats) {
	a.Comparisons += b.Comparisons
	a.Rotations += b.Rotations
	a.Steps += b.Steps
	a.FullDistEvals += b.FullDistEvals
	a.EarlyAbandons += b.EarlyAbandons
	a.WedgeNodeVisits += b.WedgeNodeVisits
	a.WedgeLeafVisits += b.WedgeLeafVisits
	a.WedgePrunedMembers += b.WedgePrunedMembers
	a.WedgeLeafLBPrunes += b.WedgeLeafLBPrunes
	a.FFTRejects += b.FFTRejects
	a.FFTRejectedMembers += b.FFTRejectedMembers
	a.FFTFallbacks += b.FFTFallbacks
	a.IndexCandidates += b.IndexCandidates
	a.IndexFetches += b.IndexFetches
	a.DiskReads += b.DiskReads
	a.KChanges += b.KChanges
	a.StepsHistogramSum += b.StepsHistogramSum
	if len(b.WedgePrunesByLevel) > 0 {
		if len(a.WedgePrunesByLevel) < len(b.WedgePrunesByLevel) {
			grown := make([]int64, len(b.WedgePrunesByLevel))
			copy(grown, a.WedgePrunesByLevel)
			a.WedgePrunesByLevel = grown
		}
		for i, v := range b.WedgePrunesByLevel {
			a.WedgePrunesByLevel[i] += v
		}
	}
	if len(b.StepsHistogram) > 0 {
		a.StepsHistogram = mergeBuckets(a.StepsHistogram, b.StepsHistogram)
	}
}

func finishStats(a *lbkeogh.SearchStats) {
	if a.Rotations > 0 {
		a.PruneRate = 1 - float64(a.FullDistEvals)/float64(a.Rotations)
	}
	if a.Comparisons > 0 {
		a.StepsPerComparison = float64(a.Steps) / float64(a.Comparisons)
	}
}

// mergeBuckets sums two non-empty-bucket lists by upper bound, keeping the
// overflow bucket (bound -1) last.
func mergeBuckets(a, b []lbkeogh.HistogramBucket) []lbkeogh.HistogramBucket {
	m := map[int64]int64{}
	for _, x := range a {
		m[x.UpperBound] += x.Count
	}
	for _, x := range b {
		m[x.UpperBound] += x.Count
	}
	bounds := make([]int64, 0, len(m))
	for k := range m {
		bounds = append(bounds, k)
	}
	sort.Slice(bounds, func(i, j int) bool {
		bi, bj := bounds[i], bounds[j]
		if bi < 0 {
			return false // overflow sorts last
		}
		if bj < 0 {
			return true
		}
		return bi < bj
	})
	out := make([]lbkeogh.HistogramBucket, len(bounds))
	for i, k := range bounds {
		out[i] = lbkeogh.HistogramBucket{UpperBound: k, Count: m[k]}
	}
	return out
}

// benchSampleInterval is the bound-tightness sampling interval for the bench
// scans: every 16th candidate comparison gets the full waterfall measured,
// plenty for stable p50/p90 ratios over a few hundred comparisons.
const benchSampleInterval = 16

// tightnessSummary extracts the per-bound summaries, dropping the bucket
// arrays — the trajectory file tracks quantiles, not full histograms.
func tightnessSummary(sampler *lbkeogh.BoundSampler) []lbkeogh.BoundTightness {
	snap := sampler.Snapshot()
	out := make([]lbkeogh.BoundTightness, len(snap.Bounds))
	for i, bt := range snap.Bounds {
		bt.Buckets = nil
		out[i] = bt
	}
	return out
}

// sampleTightness reruns the strategy's queries untimed with a BoundSampler
// attached. A waterfall measurement costs roughly one brute-force comparison,
// so it must stay out of the timed scan — wall_seconds and the traced stage
// latencies keep measuring the search alone, and the tightness pass sees the
// identical workload.
func sampleTightness(db, qs []lbkeogh.Series, s lbkeogh.Strategy) ([]lbkeogh.BoundTightness, error) {
	sampler := lbkeogh.NewBoundSampler(benchSampleInterval)
	for _, series := range qs {
		q, err := lbkeogh.NewQuery(series, lbkeogh.Euclidean(), lbkeogh.WithStrategy(s))
		if err != nil {
			return nil, err
		}
		q.SetBoundSampler(sampler)
		if _, err := q.Search(db); err != nil {
			return nil, err
		}
	}
	return tightnessSummary(sampler), nil
}

// collectStats runs every search strategy over the same projectile-point
// workload through the public API, one trace log per strategy, optionally
// registering the live records in live so a concurrent -serve scrape or
// dashboard load sees them update. Every query is traced (sample rate 1), so
// the reported stage latencies cover the whole scan; wall_seconds therefore
// includes the (small) tracing overhead for every strategy equally.
func collectStats(m, n, queries int, seed int64, live *liveObs) (benchReport, error) {
	all := lbkeogh.SyntheticProjectilePoints(seed, m+queries, n)
	db, qs := all[:m], all[m:]
	rep := benchReport{
		Date:     time.Now().UTC().Format(time.RFC3339),
		Workload: "projectile-points",
		M:        m, N: n, Queries: queries, Seed: seed,
	}
	for _, str := range []struct {
		label string
		s     lbkeogh.Strategy
	}{
		{"brute", lbkeogh.BruteForceSearch},
		{"early-abandon", lbkeogh.EarlyAbandonSearch},
		{"fft", lbkeogh.FFTSearch},
		{"wedge", lbkeogh.WedgeSearch},
	} {
		tlog := lbkeogh.NewTraceLog(
			lbkeogh.WithSampleRate(1),
			lbkeogh.WithSlowThreshold(10*time.Millisecond),
		)
		agg := &strategyStats{tlog: tlog}
		live.add("lbkeogh_"+strings.ReplaceAll(str.label, "-", "_"), agg, tlog)
		var counterSteps int64
		start := time.Now()
		for _, series := range qs {
			q, err := lbkeogh.NewQuery(series, lbkeogh.Euclidean(),
				lbkeogh.WithStrategy(str.s), lbkeogh.WithTraceLog(tlog))
			if err != nil {
				return rep, fmt.Errorf("%s: %w", str.label, err)
			}
			q.ResetSteps() // charge the scan only; construction is not scan cost
			agg.setCurrent(q)
			if _, err := q.Search(db); err != nil {
				return rep, fmt.Errorf("%s: %w", str.label, err)
			}
			counterSteps += q.Steps()
			agg.fold()
		}
		wall := time.Since(start).Seconds()
		st := agg.Stats()
		tightness, err := sampleTightness(db, qs, str.s)
		if err != nil {
			return rep, fmt.Errorf("%s: %w", str.label, err)
		}
		rep.Strategies = append(rep.Strategies, strategyReport{
			Strategy:          str.label,
			WallSeconds:       wall,
			Steps:             st.Steps,
			StepsMatchCounter: st.Steps == counterSteps,
			Reconciles:        st.Reconciles(),
			Stats:             st,
			Tightness:         tightness,
		})
	}
	return rep, nil
}

// writeReport marshals the report to path ("-" means stdout).
func writeReport(rep benchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	// Stage through a temp file in the target directory and rename into
	// place: readers never observe a truncated report, and an interrupted
	// run leaves no partial file under the final name.
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeBenchJSON writes the report as BENCH_<date>.json under dir.
func writeBenchJSON(rep benchReport, dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+time.Now().UTC().Format("2006-01-02")+".json")
	return path, writeReport(rep, path)
}

// stageP50 finds the p50 latency (ns) for the named stage, -1 if absent.
func stageP50(st lbkeogh.SearchStats, stage string) int64 {
	for _, sl := range st.StageLatencies {
		if sl.Stage == stage {
			return sl.P50NS
		}
	}
	return -1
}

// stageP99 finds the p99 latency (ns) for the named stage, -1 if absent.
func stageP99(st lbkeogh.SearchStats, stage string) int64 {
	for _, sl := range st.StageLatencies {
		if sl.Stage == stage {
			return sl.P99NS
		}
	}
	return -1
}

// p99RegressionLimit fails the comparison when a strategy's search-stage p99
// grows beyond this factor. The latencies sit in power-of-two buckets, so a
// genuine move is at least 2x and always trips this; the check is a tripwire
// for real regressions, not a precision gate.
const p99RegressionLimit = 1.25

// compareBench diffs the two most recent BENCH_*.json files in dir (the
// date-stamped names sort chronologically). It fails with fewer than two
// trajectory points — a "comparison" against nothing passing silently is how
// perf regressions slip through CI — and fails when any strategy's
// search-stage p99 regressed beyond p99RegressionLimit.
func compareBench(dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	if len(files) == 0 {
		return fmt.Errorf("no BENCH_*.json files under %s (run with -bench-out first)", dir)
	}
	load := func(path string) (benchReport, error) {
		var rep benchReport
		data, err := os.ReadFile(path)
		if err != nil {
			return rep, err
		}
		return rep, json.Unmarshal(data, &rep)
	}
	cur, err := load(files[len(files)-1])
	if err != nil {
		return err
	}
	if len(files) == 1 {
		fmt.Printf("baseline %s only\n", files[0])
		for _, s := range cur.Strategies {
			fmt.Printf("  %-14s steps=%-12d prune_rate=%.4f wall=%.2fs search_p50=%s\n",
				s.Strategy, s.Steps, s.Stats.PruneRate, s.WallSeconds, fmtP50(stageP50(s.Stats, "search")))
		}
		return fmt.Errorf("bench trajectory has 1 point; a comparison needs >= 2 (run bench-json again on another day or commit)")
	}
	prev, err := load(files[len(files)-2])
	if err != nil {
		return err
	}
	fmt.Printf("comparing %s -> %s\n", files[len(files)-2], files[len(files)-1])
	old := map[string]strategyReport{}
	for _, s := range prev.Strategies {
		old[s.Strategy] = s
	}
	var regressions []string
	for _, s := range cur.Strategies {
		o, ok := old[s.Strategy]
		if !ok {
			fmt.Printf("  %-14s new strategy: steps=%d wall=%.2fs\n", s.Strategy, s.Steps, s.WallSeconds)
			continue
		}
		oldP99, curP99 := stageP99(o.Stats, "search"), stageP99(s.Stats, "search")
		fmt.Printf("  %-14s steps %d -> %d (%+.2f%%)  wall %.2fs -> %.2fs (%+.2f%%)  search_p50 %s -> %s  search_p99 %s -> %s\n",
			s.Strategy,
			o.Steps, s.Steps, pctDelta(float64(o.Steps), float64(s.Steps)),
			o.WallSeconds, s.WallSeconds, pctDelta(o.WallSeconds, s.WallSeconds),
			fmtP50(stageP50(o.Stats, "search")), fmtP50(stageP50(s.Stats, "search")),
			fmtP50(oldP99), fmtP50(curP99))
		if oldP99 > 0 && curP99 > 0 && float64(curP99) > float64(oldP99)*p99RegressionLimit {
			regressions = append(regressions, fmt.Sprintf("%s search p99 %s -> %s (%+.2f%%)",
				s.Strategy, fmtP50(oldP99), fmtP50(curP99), pctDelta(float64(oldP99), float64(curP99))))
		}
		warnTightnessErosion(s.Strategy, o.Tightness, s.Tightness)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("search-stage p99 regressed beyond %.0f%%:\n  %s",
			(p99RegressionLimit-1)*100, strings.Join(regressions, "\n  "))
	}
	compareSegment(prev.Segment, cur.Segment)
	loadTrajectory(dir)
	return nil
}

// compareSegment diffs the segment-store blocks of two trajectory points.
// Informational: older points predate the segment store, and the fetch
// fraction is workload-determined, so drift warns rather than fails.
func compareSegment(old, cur *segmentReport) {
	switch {
	case cur == nil:
		return
	case old == nil:
		fmt.Printf("  segment (new)   m=%d fetch_fraction=%.5f ingest %.0f rows/s build %.2fs\n",
			cur.M, cur.FetchFraction, cur.IngestRowsPerSec, cur.IndexBuildSeconds)
	default:
		fmt.Printf("  segment         fetch_fraction %.5f -> %.5f (%+.2f%%)  ingest %.0f -> %.0f rows/s  build %.2fs -> %.2fs\n",
			old.FetchFraction, cur.FetchFraction, pctDelta(old.FetchFraction, cur.FetchFraction),
			old.IngestRowsPerSec, cur.IngestRowsPerSec, old.IndexBuildSeconds, cur.IndexBuildSeconds)
		if old.FetchFraction > 0 && cur.FetchFraction > old.FetchFraction*1.25 && cur.M == old.M {
			fmt.Printf("  WARNING: segment fetch fraction grew >25%% at the same m; the index is pruning less\n")
		}
		// Storage-plane block: absent (all-zero) in trajectory files written
		// before the recorder existed, so only diff when both points carry it.
		if old.ReadAmplification > 0 && cur.ReadAmplification > 0 {
			fmt.Printf("  segment i/o     read_amplification %.2fx -> %.2fx  cold %d -> %d  warm %d -> %d\n",
				old.ReadAmplification, cur.ReadAmplification,
				old.ColdFetches, cur.ColdFetches, old.WarmFetches, cur.WarmFetches)
			if cur.ReadAmplification > old.ReadAmplification*1.5 && cur.M == old.M {
				fmt.Printf("  WARNING: segment read amplification grew >50%% at the same m; fetches are touching more cold pages per byte\n")
			}
		}
	}
}

// tightnessErosionLimit flags a bound whose median tightness ratio shrank by
// more than this fraction between trajectory points. A looser bound means
// weaker pruning at the same workload — worth a look, but quantiles are
// bucket-resolution (0.05), so this warns rather than fails.
const tightnessErosionLimit = 0.10

// warnTightnessErosion compares per-bound p50 tightness ratios between two
// trajectory points and prints a warning for every bound that eroded beyond
// tightnessErosionLimit. Informational only: older points predate tightness
// recording, and a sampling wobble should not fail CI.
func warnTightnessErosion(strategy string, old, cur []lbkeogh.BoundTightness) {
	prev := map[string]lbkeogh.BoundTightness{}
	for _, bt := range old {
		prev[bt.Bound] = bt
	}
	for _, bt := range cur {
		o, ok := prev[bt.Bound]
		if !ok || o.Samples == 0 || bt.Samples == 0 || o.P50Ratio <= 0 {
			continue
		}
		if bt.P50Ratio < o.P50Ratio*(1-tightnessErosionLimit) {
			fmt.Printf("  WARNING: %s %s bound tightness eroded: p50 ratio %.2f -> %.2f (%+.2f%%)\n",
				strategy, bt.Bound, o.P50Ratio, bt.P50Ratio, pctDelta(o.P50Ratio, bt.P50Ratio))
		}
	}
}

// loadTrajectory summarizes the LOAD_*.json capacity reports shapeload has
// recorded alongside the BENCH_*.json points. Informational: the load
// trajectory is optional (it needs a booted server), so its absence never
// fails the bench comparison — but when points exist, a shrinking knee QPS
// between the two most recent ones is called out so a capacity regression is
// visible in the same place as a microbenchmark one.
func loadTrajectory(dir string) {
	files, err := filepath.Glob(filepath.Join(dir, "LOAD_*.json"))
	if err != nil || len(files) == 0 {
		return
	}
	sort.Strings(files)
	fmt.Printf("load trajectory (%d point(s)):\n", len(files))
	type loadPoint struct {
		Date    string  `json:"date"`
		Mode    string  `json:"mode"`
		KneeQPS float64 `json:"knee_qps"`
		Fixed   *struct {
			OfferedQPS  float64 `json:"offered_qps"`
			AchievedQPS float64 `json:"achieved_qps"`
			Overall     struct {
				P99MS float64 `json:"p99_ms"`
			} `json:"overall"`
		} `json:"fixed"`
	}
	var prevKnee, curKnee float64
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			continue
		}
		var p loadPoint
		if err := json.Unmarshal(data, &p); err != nil {
			fmt.Printf("  %s: unparseable (%v)\n", f, err)
			continue
		}
		switch {
		case p.Mode == "ramp":
			fmt.Printf("  %s  knee %.1f qps\n", p.Date, p.KneeQPS)
			prevKnee, curKnee = curKnee, p.KneeQPS
		case p.Fixed != nil:
			fmt.Printf("  %s  fixed %.1f qps (achieved %.1f), p99 %.1fms\n",
				p.Date, p.Fixed.OfferedQPS, p.Fixed.AchievedQPS, p.Fixed.Overall.P99MS)
		}
	}
	if prevKnee > 0 && curKnee > 0 && curKnee < prevKnee {
		fmt.Printf("  NOTE: knee QPS shrank %.1f -> %.1f (%+.2f%%); check for a capacity regression\n",
			prevKnee, curKnee, pctDelta(prevKnee, curKnee))
	}
}

func pctDelta(old, cur float64) float64 {
	if old == 0 {
		return 0
	}
	return (cur - old) / old * 100
}

func fmtP50(ns int64) string {
	if ns < 0 {
		return "n/a"
	}
	return time.Duration(ns).String()
}

// serveObs mounts the public metrics handler at /metrics, the live trace
// dashboard at /debug/lbkeogh, expvar at /debug/vars, and the pprof profiles
// at /debug/pprof/ on a private mux, then serves in the background.
func serveObs(addr string, live *liveObs) error {
	expvar.Publish("lbkeogh", expvar.Func(func() any {
		src, _ := live.snapshot()
		out := map[string]any{}
		for n, s := range src {
			out[n] = s.Stats()
		}
		return out
	}))
	mux := http.NewServeMux()
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		src, _ := live.snapshot()
		lbkeogh.MetricsHandler(src).ServeHTTP(w, r)
	}))
	mux.Handle("/debug/lbkeogh", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		src, logs := live.snapshot()
		lbkeogh.DebugHandler(src, logs).ServeHTTP(w, r)
	}))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	// Give a bad address (port in use, etc.) a moment to fail loudly instead
	// of blocking forever at the end of the run.
	select {
	case err := <-errc:
		return fmt.Errorf("benchrun: -serve %s: %w", addr, err)
	case <-time.After(100 * time.Millisecond):
		return nil
	}
}
