// Command shapeload drives a running shapeserver with open-loop
// (Poisson-arrival, coordinated-omission-safe) load and writes an SLO report
// into the bench trajectory as bench/LOAD_<date>.json.
//
// Two modes:
//
//	-mode fixed  one run at -qps for -duration
//	-mode ramp   saturation search: double the rate until the SLO breaks,
//	             then bisect the bracket to find the knee QPS
//
// Every run is scraped before and after through the server's /metrics, and
// the client's per-endpoint, per-class outcome counts must reconcile with
// the server's cumulative counters (shapeserver_endpoint_requests_total)
// within -count-tol; shapeload exits non-zero when they disagree, because a
// capacity number derived from unreconciled telemetry is worse than none.
//
// Typical session:
//
//	shapeserver -addr :8321 -synthetic 2000,256 &
//	shapeload -target http://127.0.0.1:8321 -mode ramp -out bench
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lbkeogh/internal/loadgen"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8321", "shapeserver base URL")
		mode     = flag.String("mode", "ramp", "fixed: one run at -qps; ramp: saturation search for the knee QPS")
		mixSpec  = flag.String("mix", "search=1", "endpoint mix as op=weight pairs, e.g. search=2,topk=1,range=1")
		repeat   = flag.Float64("repeat", 0.5, "fraction of requests repeating one query spec (session-pool hits)")
		timeout  = flag.Duration("timeout", 2*time.Second, "per-request server-side deadline (timeout_ms)")
		seed     = flag.Int64("seed", 1, "seed for the arrival process and workload draws")
		qps      = flag.Float64("qps", 50, "offered rate for -mode fixed")
		duration = flag.Duration("duration", 10*time.Second, "run length for -mode fixed")
		startQPS = flag.Float64("start-qps", 4, "ramp: initial probe rate")
		maxQPS   = flag.Float64("max-qps", 4096, "ramp: rate cap (reaching it without an SLO failure ends the search)")
		stepDur  = flag.Duration("step", 3*time.Second, "ramp: duration of each probe")
		relTol   = flag.Float64("rel-tol", 0.2, "ramp: stop bisecting once the knee bracket is this tight (relative)")
		sloP99   = flag.Duration("slo-p99", 250*time.Millisecond, "SLO: client-observed overall p99 bound")
		sloErr   = flag.Float64("slo-errors", 0.01, "SLO: max fraction of arrivals ending rejected/timeout/server/network/dropped")
		countTol = flag.Int64("count-tol", 0, "allowed absolute client/server disagreement per endpoint+class count")
		outDir   = flag.String("out", "bench", "directory for the LOAD_<date>.json report (empty: stdout summary only)")
	)
	flag.Parse()
	if err := run(*target, *mode, *mixSpec, *repeat, *timeout, *seed, *qps, *duration,
		*startQPS, *maxQPS, *stepDur, *relTol, *sloP99, *sloErr, *countTol, *outDir); err != nil {
		fmt.Fprintf(os.Stderr, "shapeload: %v\n", err)
		os.Exit(1)
	}
}

// parseMix turns "search=2,topk=1" into mix entries.
func parseMix(spec string) ([]loadgen.MixEntry, error) {
	var mix []loadgen.MixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		op, weight, found := strings.Cut(part, "=")
		w := 1.0
		if found {
			var err error
			if w, err = strconv.ParseFloat(weight, 64); err != nil {
				return nil, fmt.Errorf("mix entry %q: %w", part, err)
			}
		}
		mix = append(mix, loadgen.MixEntry{Op: loadgen.Op(op), Weight: w})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix %q", spec)
	}
	return mix, nil
}

func run(target, mode, mixSpec string, repeat float64, timeout time.Duration, seed int64,
	qps float64, duration time.Duration, startQPS, maxQPS float64, stepDur time.Duration,
	relTol float64, sloP99 time.Duration, sloErr float64, countTol int64, outDir string) error {

	mix, err := parseMix(mixSpec)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dbSize, seriesLen, err := loadgen.Discover(ctx, target, nil)
	if err != nil {
		return fmt.Errorf("target %s not answering /livez: %w", target, err)
	}
	fmt.Printf("target %s: db_size=%d series_len=%d\n", target, dbSize, seriesLen)

	g, err := loadgen.New(loadgen.Config{
		Target:         target,
		Mix:            mix,
		RepeatFraction: repeat,
		DBSize:         dbSize,
		TimeoutMS:      int(timeout.Milliseconds()),
		Seed:           seed,
	})
	if err != nil {
		return err
	}

	slo := loadgen.SLO{P99: sloP99, MaxErrorFraction: sloErr}
	now := time.Now()
	rep := &loadgen.Report{
		Date:   now.UTC().Format("2006-01-02"),
		Target: target,
		Mode:   mode,
		Workload: loadgen.Workload{
			Mix:            g.Mix(),
			RepeatFraction: repeat,
			TimeoutMS:      int(timeout.Milliseconds()),
			DBSize:         dbSize,
			SeriesLen:      seriesLen,
			Seed:           seed,
		},
		SLO: loadgen.SLOReport{
			P99MS:            float64(sloP99) / float64(time.Millisecond),
			MaxErrorFraction: sloErr,
		},
	}

	switch mode {
	case "fixed":
		fmt.Printf("fixed run: %.1f qps for %v\n", qps, duration)
		res, err := g.RunValidated(ctx, qps, duration, countTol)
		if err != nil {
			return err
		}
		res.SLOViolations = slo.Check(res)
		rep.Fixed = &res
		fmt.Printf("achieved %.1f qps, overall p50 %.1fms p99 %.1fms p999 %.1fms, classes %v\n",
			res.AchievedQPS, res.Overall.P50MS, res.Overall.P99MS, res.Overall.P999MS, res.Overall.Classes)
		if len(res.SLOViolations) > 0 {
			fmt.Printf("SLO violations: %v\n", res.SLOViolations)
		}
		if err := writeOut(rep, outDir, now); err != nil {
			return err
		}
		if !res.CrossValidation.CountsAgree {
			return fmt.Errorf("client/server counts disagree: %v", res.CrossValidation.Mismatches)
		}
	case "ramp":
		fmt.Printf("saturation search: %v steps from %.1f qps (cap %.1f), SLO p99<=%v errors<=%.4f\n",
			stepDur, startQPS, maxQPS, sloP99, sloErr)
		sat, err := g.FindKnee(ctx, loadgen.SaturationConfig{
			StartQPS:       startQPS,
			MaxQPS:         maxQPS,
			StepDuration:   stepDur,
			SLO:            slo,
			RelTolerance:   relTol,
			CountTolerance: countTol,
		}, func(format string, args ...any) { fmt.Printf(format+"\n", args...) })
		// Keep whatever steps completed in the report even when the search
		// aborted, so the failure is diagnosable from the artifact.
		rep.Saturation = &sat
		rep.KneeQPS = sat.KneeQPS
		if werr := writeOut(rep, outDir, now); werr != nil && err == nil {
			err = werr
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -mode %q (fixed or ramp)", mode)
	}
	return nil
}

func writeOut(rep *loadgen.Report, outDir string, now time.Time) error {
	if outDir == "" {
		return nil
	}
	path := loadgen.ReportPath(outDir, now)
	if err := loadgen.WriteReport(path, rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
