// Command lbkeoghvet runs this repository's custom static-analysis suite —
// the kernel and accounting invariant checks described in internal/lint —
// over the given package patterns.
//
// Usage:
//
//	lbkeoghvet [-only tallyescape,nilsink] [-timing] [-bce auto|on|off] [-bce-update] [packages]
//
// With no packages, ./... is checked. The AST analyzers run through
// lint.Run; the bcebaseline check additionally shells out to the compiler
// (go build -gcflags=-d=ssa/check_bce) and diffs hot-path bounds-check
// counts against internal/lint/testdata/bce_baseline.txt — by default it
// runs whenever that baseline file exists. -bce-update regenerates the
// baseline and exits.
//
// Exit status is 0 when the suite is clean, 1 when it reports findings, and
// 2 on usage or load errors; a package that fails to list or type-check is
// always a hard exit 2 naming every failing package. It is wired into
// `make lint` and `make ci` alongside go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lbkeogh/internal/lint"
)

// baselineRelPath is where the committed BCE baseline lives, relative to the
// module root.
const baselineRelPath = "internal/lint/testdata/bce_baseline.txt"

func main() {
	var (
		only      = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list      = flag.Bool("list", false, "list the analyzers and exit")
		timing    = flag.Bool("timing", false, "print per-analyzer finding counts and wall time to stderr")
		bceMode   = flag.String("bce", "auto", "bcebaseline check: auto (run when the baseline file exists), on, off")
		bceUpdate = flag.Bool("bce-update", false, "regenerate "+baselineRelPath+" from the current compiler output and exit")
	)
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", lint.BCEBaselineName,
			"diff hot-path bounds-check counts (go build -gcflags=-d=ssa/check_bce) against "+baselineRelPath)
		return
	}
	runBCE := true
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		runBCE = keep[lint.BCEBaselineName]
		delete(keep, lint.BCEBaselineName)
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fatalf("lbkeoghvet: unknown analyzer %q (use -list)", name)
		}
		analyzers = selected
		if runBCE && *bceMode == "auto" {
			*bceMode = "on" // -only bcebaseline is an explicit request
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("lbkeoghvet: %v", err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatalf("lbkeoghvet: %v", err)
	}
	loader, err := lint.NewLoader(root, patterns...)
	if err != nil {
		fatalf("lbkeoghvet: %v", err)
	}
	pkgs, err := loader.Packages()
	if err != nil {
		fatalf("lbkeoghvet: %v", err)
	}

	baselinePath := filepath.Join(root, filepath.FromSlash(baselineRelPath))
	if *bceUpdate {
		if err := lint.WriteBCEBaseline(root, pkgs, baselinePath); err != nil {
			fatalf("lbkeoghvet: %v", err)
		}
		fmt.Printf("lbkeoghvet: wrote %s — commit this file\n", baselineRelPath)
		return
	}

	diags, stats := lint.RunWithStats(pkgs, analyzers)

	bceCount := 0
	switch *bceMode {
	case "off":
	case "on", "auto":
		if *bceMode == "auto" && !runBCE {
			break
		}
		if _, err := os.Stat(baselinePath); err != nil {
			if *bceMode == "on" {
				fatalf("lbkeoghvet: bcebaseline: %s missing; run `make bce-baseline` and commit it", baselineRelPath)
			}
			break // auto: no baseline yet, nothing to diff against
		}
		res, err := lint.RunBCE(root, pkgs, baselinePath)
		if err != nil {
			fatalf("lbkeoghvet: %v", err)
		}
		bceCount = len(res.Diagnostics)
		diags = append(diags, res.Diagnostics...)
		for _, s := range res.Stale {
			fmt.Fprintf(os.Stderr, "lbkeoghvet: note: %s\n", s)
		}
	default:
		fatalf("lbkeoghvet: -bce must be auto, on or off (got %q)", *bceMode)
	}

	for _, d := range diags {
		fmt.Println(d)
	}
	if *timing {
		for _, s := range stats {
			fmt.Fprintf(os.Stderr, "lbkeoghvet: %-12s %4d finding(s) %12v\n", s.Name, s.Findings, s.Elapsed.Round(10_000))
		}
		if *bceMode != "off" {
			fmt.Fprintf(os.Stderr, "lbkeoghvet: %-12s %4d finding(s)\n", lint.BCEBaselineName, bceCount)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
