// Command lbkeoghvet runs this repository's custom static-analysis suite —
// the kernel and accounting invariant checks described in internal/lint —
// over the given package patterns.
//
// Usage:
//
//	lbkeoghvet [-only tallyescape,nilsink] [packages]
//
// With no packages, ./... is checked. Exit status is 0 when the suite is
// clean, 1 when it reports findings, and 2 on usage or load errors. It is
// wired into `make lint` and `make ci` alongside go vet.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lbkeogh/internal/lint"
)

func main() {
	var (
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var selected []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				selected = append(selected, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fatalf("lbkeoghvet: unknown analyzer %q (use -list)", name)
		}
		analyzers = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatalf("lbkeoghvet: %v", err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatalf("lbkeoghvet: %v", err)
	}
	loader, err := lint.NewLoader(root, patterns...)
	if err != nil {
		fatalf("lbkeoghvet: %v", err)
	}
	pkgs, err := loader.Packages()
	if err != nil {
		fatalf("lbkeoghvet: %v", err)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
