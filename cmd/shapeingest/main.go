// Command shapeingest bulk-loads synthetic shapes into a memory-mapped
// segment store (internal/segment) — the ingest half of the million-shape
// serving path. Workers generate batches and precompute the compressed
// feature columns (FFT magnitudes, PAA means) in parallel; a single writer
// goroutine streams records into segment files, cutting a new segment every
// -segment-records rows, and commits the whole load with one atomic
// manifest swap.
//
// By default indexes are deferred (-defer-indexes): the load writes raw and
// feature columns only, and the VP-tree/R-tree are built later — at server
// start, on first query, or here with -defer-indexes=false, which reports
// the build time separately. This is the two-phase pattern of large-scale
// loaders: sequential ingest first, index construction off the load path.
//
// Typical sessions:
//
//	shapeingest -dir /data/shapes -count 1000000 -n 64
//	shapeingest -dir /data/shapes -count 50000 -n 64 -defer-indexes=false -verify
//	shapeserver -addr :8321 -segments /data/shapes
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"lbkeogh"
	"lbkeogh/internal/segment"
	"lbkeogh/internal/synth"
)

func main() {
	var (
		dir        = flag.String("dir", "", "segment store directory (required)")
		count      = flag.Int64("count", 50000, "shapes to generate and ingest")
		n          = flag.Int("n", 64, "series length per shape")
		dims       = flag.Int("dims", 8, "feature dims stored per record (clamped to n/2)")
		batch      = flag.Int("batch", 1024, "shapes per generator batch")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "feature-computation workers")
		segRecords = flag.Int64("segment-records", 1<<17, "records per segment file")
		maxRows    = flag.Int64("max-rows", 10_000_000, "safety cap on total store rows after the load")
		dataset    = flag.String("dataset", "projectile", "generator: projectile | heterogeneous")
		seed       = flag.Int64("seed", 1, "generator seed")
		deferIx    = flag.Bool("defer-indexes", true, "skip index build; raw+feature columns only")
		progress   = flag.Duration("progress", 2*time.Second, "progress report interval (0 disables)")
		verify     = flag.Bool("verify", false, "reopen the store with full checksum verification after the load")
	)
	flag.Parse()
	if err := run(*dir, *count, *n, *dims, *batch, *workers, *segRecords, *maxRows,
		*dataset, *seed, *deferIx, *progress, *verify); err != nil {
		fmt.Fprintf(os.Stderr, "shapeingest: %v\n", err)
		os.Exit(1)
	}
}

// genBatch is one worker's output: a contiguous run of records with features
// precomputed, keyed by batch index so the writer commits in global order.
type genBatch struct {
	idx    int
	rows   [][]float64
	mags   [][]float64
	paas   [][]float64
	labels []int64
}

func run(dir string, count int64, n, dims int, batch int, workers int, segRecords, maxRows int64,
	dataset string, seed int64, deferIx bool, progress time.Duration, verify bool) error {
	if dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if count < 1 {
		return fmt.Errorf("-count must be >= 1")
	}
	if n < 2 {
		return fmt.Errorf("-n must be >= 2")
	}
	if batch < 1 || workers < 1 {
		return fmt.Errorf("-batch and -workers must be >= 1")
	}
	var gen func(seed int64, m, n int) [][]float64
	switch dataset {
	case "projectile":
		gen = synth.ProjectilePoints
	case "heterogeneous":
		gen = synth.Heterogeneous
	default:
		return fmt.Errorf("unknown -dataset %q (projectile | heterogeneous)", dataset)
	}
	d := dims
	if d < 1 {
		d = 8
	}
	if d > n/2 {
		d = n / 2
	}

	b, err := segment.NewBulkWriter(dir, n, d, segRecords)
	if err != nil {
		return err
	}
	if have := b.Total(); have+count > maxRows {
		b.Abort()
		return fmt.Errorf("load would put the store at %d rows, over the -max-rows cap %d", have+count, maxRows)
	}
	firstID := b.Total()

	// Parallel generate+featurize, ordered single-writer commit. Workers pull
	// batch indexes, push completed batches; the writer drains them in index
	// order so global IDs are deterministic for a given seed.
	numBatches := int((count + int64(batch) - 1) / int64(batch))
	idxCh := make(chan int, workers)
	outCh := make(chan genBatch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				size := batch
				if rem := count - int64(idx)*int64(batch); rem < int64(size) {
					size = int(rem)
				}
				// Each batch draws from its own deterministic stream, so the
				// load is reproducible at any worker count.
				rows := gen(seed+int64(idx), size, n)
				gb := genBatch{
					idx:    idx,
					rows:   rows,
					mags:   make([][]float64, size),
					paas:   make([][]float64, size),
					labels: make([]int64, size),
				}
				for i, row := range rows {
					gb.mags[i], gb.paas[i] = segment.Features(row, d)
					gb.labels[i] = firstID + int64(idx)*int64(batch) + int64(i)
				}
				outCh <- gb
			}
		}()
	}
	go func() {
		for idx := 0; idx < numBatches; idx++ {
			idxCh <- idx
		}
		close(idxCh)
		wg.Wait()
		close(outCh)
	}()

	start := time.Now()
	lastReport := start
	var written int64
	pending := make(map[int]genBatch)
	nextIdx := 0
	for gb := range outCh {
		pending[gb.idx] = gb
		for {
			cur, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			for i := range cur.rows {
				if err := b.AddPrecomputed(cur.rows[i], cur.mags[i], cur.paas[i], cur.labels[i]); err != nil {
					b.Abort()
					return err
				}
			}
			written += int64(len(cur.rows))
			nextIdx++
		}
		if progress > 0 && time.Since(lastReport) >= progress {
			lastReport = time.Now()
			elapsed := time.Since(start).Seconds()
			fmt.Printf("ingested %d/%d rows (%.0f rows/s)\n", written, count, float64(written)/elapsed)
		}
	}
	if written != count {
		b.Abort()
		return fmt.Errorf("wrote %d of %d rows", written, count)
	}
	if err := b.Close(); err != nil {
		return err
	}
	ingestSecs := time.Since(start).Seconds()
	fmt.Printf("ingest complete: %d rows in %.1fs (%.0f rows/s), store now %d rows, dir %s\n",
		count, ingestSecs, float64(count)/ingestSecs, firstID+count, dir)

	if verify {
		vStart := time.Now()
		m, ok, err := segment.LoadManifest(dir)
		if err != nil || !ok {
			return fmt.Errorf("verify: manifest: ok=%v err=%v", ok, err)
		}
		var total int64
		for _, ms := range m.Segments {
			r, err := segment.Open(dir + "/" + ms.File) // full CRC verification
			if err != nil {
				return fmt.Errorf("verify: %w", err)
			}
			if int64(r.Len()) != ms.Records {
				r.Close()
				return fmt.Errorf("verify: %s holds %d records, manifest says %d", ms.File, r.Len(), ms.Records)
			}
			total += ms.Records
			r.Close()
		}
		if total != firstID+count {
			return fmt.Errorf("verify: store holds %d rows, want %d", total, firstID+count)
		}
		fmt.Printf("verify complete: %d segments, %d rows, all checksums good (%.1fs)\n",
			len(m.Segments), total, time.Since(vStart).Seconds())
	}

	if !deferIx {
		ixStart := time.Now()
		ix, err := lbkeogh.OpenSegmentIndex(dir, d)
		if err != nil {
			return fmt.Errorf("index build: %w", err)
		}
		defer ix.Close()
		fmt.Printf("index build complete: m=%d dims=%d in %.1fs\n",
			ix.Len(), ix.Dims(), time.Since(ixStart).Seconds())
	} else {
		fmt.Println("indexes deferred: build at serve time or rerun with -defer-indexes=false")
	}
	return nil
}
