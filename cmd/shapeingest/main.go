// Command shapeingest bulk-loads synthetic shapes into a memory-mapped
// segment store (internal/segment) — the ingest half of the million-shape
// serving path. Workers generate batches and precompute the compressed
// feature columns (FFT magnitudes, PAA means) in parallel; a single writer
// goroutine streams records into segment files, cutting a new segment every
// -segment-records rows, and commits the whole load with one atomic
// manifest swap.
//
// By default indexes are deferred (-defer-indexes): the load writes raw and
// feature columns only, and the VP-tree/R-tree are built later — at server
// start, on first query, or here with -defer-indexes=false, which reports
// the build time separately. This is the two-phase pattern of large-scale
// loaders: sequential ingest first, index construction off the load path.
//
// Progress is reported as structured log events on stderr (JSON by default;
// see -log): every sealed segment and the final manifest swap come from the
// storage event journal, interleaved with periodic row-count progress. On
// success the process prints a single-line JSON run summary to stdout —
// rows, throughput, bytes written, per-stage durations, and the journal's
// per-kind event counts — for scripts to consume.
//
// Typical sessions:
//
//	shapeingest -dir /data/shapes -count 1000000 -n 64
//	shapeingest -dir /data/shapes -count 50000 -n 64 -defer-indexes=false -verify
//	shapeserver -addr :8321 -segments /data/shapes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"sync"
	"time"

	"lbkeogh"
	"lbkeogh/internal/obs/ops"
	"lbkeogh/internal/obs/storeobs"
	"lbkeogh/internal/segment"
	"lbkeogh/internal/synth"
)

func main() {
	var (
		dir        = flag.String("dir", "", "segment store directory (required)")
		count      = flag.Int64("count", 50000, "shapes to generate and ingest")
		n          = flag.Int("n", 64, "series length per shape")
		dims       = flag.Int("dims", 8, "feature dims stored per record (clamped to n/2)")
		batch      = flag.Int("batch", 1024, "shapes per generator batch")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "feature-computation workers")
		segRecords = flag.Int64("segment-records", 1<<17, "records per segment file")
		maxRows    = flag.Int64("max-rows", 10_000_000, "safety cap on total store rows after the load")
		dataset    = flag.String("dataset", "projectile", "generator: projectile | heterogeneous")
		seed       = flag.Int64("seed", 1, "generator seed")
		deferIx    = flag.Bool("defer-indexes", true, "skip index build; raw+feature columns only")
		progress   = flag.Duration("progress", 2*time.Second, "progress report interval (0 disables)")
		verify     = flag.Bool("verify", false, "reopen the store with full checksum verification after the load")
		logFormat  = flag.String("log", "json", "structured log format: json or text")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	logger := ops.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err := run(logger, *dir, *count, *n, *dims, *batch, *workers, *segRecords, *maxRows,
		*dataset, *seed, *deferIx, *progress, *verify); err != nil {
		logger.Error("ingest failed", "error", err.Error())
		os.Exit(1)
	}
}

// genBatch is one worker's output: a contiguous run of records with features
// precomputed, keyed by batch index so the writer commits in global order.
type genBatch struct {
	idx    int
	rows   [][]float64
	mags   [][]float64
	paas   [][]float64
	labels []int64
}

// runSummary is the single-line JSON report printed to stdout on success.
type runSummary struct {
	Rows         int64              `json:"rows"`
	RowsPerS     float64            `json:"rows_per_s"`
	BytesWritten int64              `json:"bytes_written"`
	Segments     int64              `json:"segments"` // sealed by this run
	StoreRows    int64              `json:"store_rows"`
	StageSeconds map[string]float64 `json:"stage_seconds"`
	// JournalEvents is the storage journal's per-kind count for this run.
	JournalEvents map[string]int64 `json:"journal_events"`
}

func run(logger *slog.Logger, dir string, count int64, n, dims int, batch int, workers int,
	segRecords, maxRows int64, dataset string, seed int64, deferIx bool,
	progress time.Duration, verify bool) error {
	if dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if count < 1 {
		return fmt.Errorf("-count must be >= 1")
	}
	if n < 2 {
		return fmt.Errorf("-n must be >= 2")
	}
	if batch < 1 || workers < 1 {
		return fmt.Errorf("-batch and -workers must be >= 1")
	}
	var gen func(seed int64, m, n int) [][]float64
	switch dataset {
	case "projectile":
		gen = synth.ProjectilePoints
	case "heterogeneous":
		gen = synth.Heterogeneous
	default:
		return fmt.Errorf("unknown -dataset %q (projectile | heterogeneous)", dataset)
	}
	d := dims
	if d < 1 {
		d = 8
	}
	if d > n/2 {
		d = n / 2
	}

	b, err := segment.NewBulkWriter(dir, n, d, segRecords)
	if err != nil {
		return err
	}
	// The journal turns segment seals and the manifest swap into structured
	// progress events on the same logger as the row-count ticker.
	journal := storeobs.NewJournal(256, logger)
	b.SetJournal(journal)
	if have := b.Total(); have+count > maxRows {
		b.Abort()
		return fmt.Errorf("load would put the store at %d rows, over the -max-rows cap %d", have+count, maxRows)
	}
	firstID := b.Total()
	logger.Info("ingest starting", "dir", dir, "count", count, "n", n, "dims", d,
		"dataset", dataset, "workers", workers, "segment_records", segRecords, "existing_rows", firstID)

	// Parallel generate+featurize, ordered single-writer commit. Workers pull
	// batch indexes, push completed batches; the writer drains them in index
	// order so global IDs are deterministic for a given seed.
	numBatches := int((count + int64(batch) - 1) / int64(batch))
	idxCh := make(chan int, workers)
	outCh := make(chan genBatch, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				size := batch
				if rem := count - int64(idx)*int64(batch); rem < int64(size) {
					size = int(rem)
				}
				// Each batch draws from its own deterministic stream, so the
				// load is reproducible at any worker count.
				rows := gen(seed+int64(idx), size, n)
				gb := genBatch{
					idx:    idx,
					rows:   rows,
					mags:   make([][]float64, size),
					paas:   make([][]float64, size),
					labels: make([]int64, size),
				}
				for i, row := range rows {
					gb.mags[i], gb.paas[i] = segment.Features(row, d)
					gb.labels[i] = firstID + int64(idx)*int64(batch) + int64(i)
				}
				outCh <- gb
			}
		}()
	}
	go func() {
		for idx := 0; idx < numBatches; idx++ {
			idxCh <- idx
		}
		close(idxCh)
		wg.Wait()
		close(outCh)
	}()

	start := time.Now()
	lastReport := start
	var written int64
	pending := make(map[int]genBatch)
	nextIdx := 0
	for gb := range outCh {
		pending[gb.idx] = gb
		for {
			cur, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			for i := range cur.rows {
				if err := b.AddPrecomputed(cur.rows[i], cur.mags[i], cur.paas[i], cur.labels[i]); err != nil {
					b.Abort()
					return err
				}
			}
			written += int64(len(cur.rows))
			nextIdx++
		}
		if progress > 0 && time.Since(lastReport) >= progress {
			lastReport = time.Now()
			elapsed := time.Since(start).Seconds()
			logger.Info("ingest progress", "rows", written, "total", count,
				"rows_per_s", float64(written)/elapsed)
		}
	}
	if written != count {
		b.Abort()
		return fmt.Errorf("wrote %d of %d rows", written, count)
	}
	if err := b.Close(); err != nil {
		return err
	}
	ingestSecs := time.Since(start).Seconds()
	summary := runSummary{
		Rows:         count,
		RowsPerS:     float64(count) / ingestSecs,
		BytesWritten: b.BytesWritten(),
		StoreRows:    firstID + count,
		StageSeconds: map[string]float64{"generate_ingest": ingestSecs},
	}
	logger.Info("ingest complete", "rows", count, "seconds", ingestSecs,
		"rows_per_s", summary.RowsPerS, "bytes_written", summary.BytesWritten,
		"store_rows", summary.StoreRows, "dir", dir)

	if verify {
		vStart := time.Now()
		m, ok, err := segment.LoadManifest(dir)
		if err != nil || !ok {
			return fmt.Errorf("verify: manifest: ok=%v err=%v", ok, err)
		}
		var total int64
		for _, ms := range m.Segments {
			r, err := segment.Open(dir + "/" + ms.File) // full CRC verification
			if err != nil {
				return fmt.Errorf("verify: %w", err)
			}
			if int64(r.Len()) != ms.Records {
				r.Close()
				return fmt.Errorf("verify: %s holds %d records, manifest says %d", ms.File, r.Len(), ms.Records)
			}
			total += ms.Records
			r.Close()
		}
		if total != firstID+count {
			return fmt.Errorf("verify: store holds %d rows, want %d", total, firstID+count)
		}
		summary.StageSeconds["verify"] = time.Since(vStart).Seconds()
		logger.Info("verify complete", "segments", len(m.Segments), "rows", total,
			"checksums", "good", "seconds", summary.StageSeconds["verify"])
	}

	if !deferIx {
		ixStart := time.Now()
		ix, err := lbkeogh.OpenSegmentIndex(dir, d)
		if err != nil {
			return fmt.Errorf("index build: %w", err)
		}
		defer ix.Close()
		summary.StageSeconds["index_build"] = time.Since(ixStart).Seconds()
		logger.Info("index build complete", "m", ix.Len(), "dims", ix.Dims(),
			"seconds", summary.StageSeconds["index_build"])
	} else {
		logger.Info("indexes deferred", "hint", "build at serve time or rerun with -defer-indexes=false")
	}

	counts := journal.Counts()
	summary.Segments = counts[storeobs.EventSegmentSealed]
	summary.JournalEvents = counts
	out, err := json.Marshal(summary)
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}
