// Command mkdata emits the synthetic datasets as CSV for inspection or use
// by other tools. Each row is: label, v0, v1, ..., v(n-1).
//
// Usage:
//
//	mkdata -dataset projectile -m 200 -n 251 > points.csv
//	mkdata -dataset lightcurves -m 90 -n 512 > curves.csv
//	mkdata -dataset table8:Fish > fish.csv
//	mkdata -dataset skulls > skulls.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lbkeogh"
)

func main() {
	var (
		dataset = flag.String("dataset", "projectile", "projectile | heterogeneous | lightcurves | skulls | table8:<Name>")
		m       = flag.Int("m", 200, "number of instances (projectile/heterogeneous/lightcurves)")
		n       = flag.Int("n", 251, "series length (projectile/heterogeneous/lightcurves)")
		noise   = flag.Float64("noise", 0.15, "light-curve photometric noise")
		seed    = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	var series []lbkeogh.Series
	var labels []int
	switch {
	case *dataset == "projectile":
		series = lbkeogh.SyntheticProjectilePoints(*seed, *m, *n)
	case *dataset == "heterogeneous":
		series = lbkeogh.SyntheticHeterogeneous(*seed, *m, *n)
	case *dataset == "lightcurves":
		d := lbkeogh.SyntheticLightCurves(*seed, *m, *n, *noise)
		series, labels = d.Series, d.Labels
	case *dataset == "skulls":
		d, names := lbkeogh.SkullDataset(*seed, 4, *n, 0.02)
		series, labels = d.Series, d.Labels
		fmt.Fprintf(os.Stderr, "species: %s\n", strings.Join(names, ", "))
	case strings.HasPrefix(*dataset, "table8:"):
		name := strings.TrimPrefix(*dataset, "table8:")
		d, err := lbkeogh.Table8Dataset(name, 1.0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mkdata: %v\n", err)
			os.Exit(1)
		}
		series, labels = d.Series, d.Labels
	default:
		fmt.Fprintf(os.Stderr, "mkdata: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	for i, s := range series {
		label := 0
		if labels != nil {
			label = labels[i]
		}
		fmt.Fprint(w, label)
		for _, v := range s {
			w.WriteByte(',')
			w.WriteString(strconv.FormatFloat(v, 'g', 8, 64))
		}
		w.WriteByte('\n')
	}
}
