// Command shapesearch answers rotation-invariant nearest-neighbour queries
// over a CSV database (as written by mkdata): the query is a row index, the
// database the remaining rows.
//
// Usage:
//
//	mkdata -dataset projectile -m 500 > db.csv
//	shapesearch -db db.csv -query 17 -k 5 -measure dtw -r 5
//	shapesearch -db db.csv -query 3 -mirror -maxdeg 45
//	shapesearch -db db.csv -query 4 -indexed -dims 16
//	shapesearch -db db.csv -query 4 -stats          # pruning breakdown as JSON
//	shapesearch -db db.csv -query 4 -pprof :8080    # serve /metrics + pprof
//	shapesearch -db db.csv -query 4 -serve :8080    # trace the search and serve
//	                                                # the /debug/lbkeogh dashboard
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"

	"lbkeogh"
	"lbkeogh/internal/seriesio"
)

func main() {
	var (
		dbPath   = flag.String("db", "", "CSV database file (label,v0,v1,...)")
		queryI   = flag.Int("query", 0, "row index of the query")
		k        = flag.Int("k", 1, "number of neighbours to report")
		measure  = flag.String("measure", "euclidean", "euclidean | dtw | lcss")
		r        = flag.Int("r", 5, "DTW Sakoe-Chiba radius / LCSS window")
		eps      = flag.Float64("eps", 0.25, "LCSS matching threshold")
		mirror   = flag.Bool("mirror", false, "enable mirror-image invariance")
		maxDeg   = flag.Float64("maxdeg", -1, "rotation limit in degrees (<0: unlimited)")
		indexed  = flag.Bool("indexed", false, "search through the compressed disk index")
		dims     = flag.Int("dims", 16, "index dimensionality (with -indexed)")
		radius   = flag.Float64("radius", -1, "range query: report all matches within this distance (with -indexed)")
		parallel = flag.Int("parallel", 1, "worker goroutines for the linear scan (0 = GOMAXPROCS)")
		emitStat = flag.Bool("stats", false, "print the search's pruning breakdown as JSON after the results")
		explain  = flag.Bool("explain", false, "run the search in EXPLAIN mode and print the structured plan (stage waterfall, bound tightness, survivors) as JSON; not supported with -indexed")
		health   = flag.Bool("index-health", false, "print the index structural health report (VP-tree, R-tree, wedge hierarchy) as JSON; builds the index if -indexed is off")
		pprofOn  = flag.String("pprof", "", "serve /metrics (Prometheus text), /debug/vars and /debug/pprof/ on this address and block after the search")
		serveOn  = flag.String("serve", "", "like -pprof, but additionally trace the search (every query sampled) and serve the live /debug/lbkeogh dashboard")
	)
	flag.Parse()
	if *dbPath == "" {
		fmt.Fprintln(os.Stderr, "shapesearch: -db is required")
		os.Exit(2)
	}
	labels, series, err := seriesio.ReadCSV(*dbPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shapesearch: %v\n", err)
		os.Exit(1)
	}
	if *queryI < 0 || *queryI >= len(series) {
		fmt.Fprintf(os.Stderr, "shapesearch: query index %d outside [0,%d)\n", *queryI, len(series))
		os.Exit(2)
	}

	var m lbkeogh.Measure
	switch *measure {
	case "euclidean":
		m = lbkeogh.Euclidean()
	case "dtw":
		m = lbkeogh.DTW(*r)
	case "lcss":
		m = lbkeogh.LCSS(*r, *eps)
	default:
		fmt.Fprintf(os.Stderr, "shapesearch: unknown measure %q\n", *measure)
		os.Exit(2)
	}
	var opts []lbkeogh.QueryOption
	if *mirror {
		opts = append(opts, lbkeogh.WithMirrorInvariance())
	}
	if *maxDeg >= 0 {
		opts = append(opts, lbkeogh.WithMaxRotationDegrees(*maxDeg))
	}
	addr := *serveOn
	if addr == "" {
		addr = *pprofOn
	}
	var tlog *lbkeogh.TraceLog
	if *serveOn != "" {
		tlog = lbkeogh.NewTraceLog(lbkeogh.WithSampleRate(1))
		opts = append(opts, lbkeogh.WithTraceLog(tlog))
	}

	query := series[*queryI]
	db := make([]lbkeogh.Series, 0, len(series)-1)
	dbRows := make([]int, 0, len(series)-1)
	for i, s := range series {
		if i != *queryI {
			db = append(db, s)
			dbRows = append(dbRows, i)
		}
	}

	q, err := lbkeogh.NewQuery(query, m, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shapesearch: %v\n", err)
		os.Exit(1)
	}
	if *explain {
		if *indexed {
			fmt.Fprintln(os.Stderr, "shapesearch: -explain is not supported with -indexed (the index runs its own searchers)")
			os.Exit(2)
		}
		q.SetExplain(true)
	}

	sources := newSourceSet()
	sources.add("shapesearch_query", q, tlog)
	if addr != "" {
		lbkeogh.PublishExpvar("shapesearch_query", q)
		go serveObs(addr, sources)
	}

	var results []lbkeogh.SearchResult
	var statIx *lbkeogh.Index
	switch {
	case *indexed:
		ix, err := lbkeogh.NewIndex(db, *dims)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shapesearch: %v\n", err)
			os.Exit(1)
		}
		statIx = ix
		ix.SetTraceLog(tlog) // nil when untraced: a no-op attach
		sources.add("shapesearch_index", ix, nil)
		if *radius > 0 {
			results, err = ix.SearchRange(q, *radius)
		} else {
			var res lbkeogh.SearchResult
			res, err = ix.Search(q)
			results = []lbkeogh.SearchResult{res}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "shapesearch: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("index fetched %d of %d objects from disk\n", ix.DiskReads(), ix.Len())
	case *parallel != 1:
		res, err := q.SearchParallel(db, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shapesearch: %v\n", err)
			os.Exit(1)
		}
		results = []lbkeogh.SearchResult{res}
	default:
		results, err = q.SearchTopK(db, *k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shapesearch: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("query: row %d (label %d), measure %s, %d alignments, %d steps spent\n",
		*queryI, labels[*queryI], m.Name(), q.Rotations(), q.Steps())
	for rank, res := range results {
		mir := ""
		if res.Rotation.Mirrored {
			mir = " (mirrored)"
		}
		fmt.Printf("  #%d: row %d (label %d)  dist %.4f  at %.1f°%s\n",
			rank+1, dbRows[res.Index], labels[dbRows[res.Index]], res.Dist, res.Rotation.Degrees, mir)
	}

	if *explain {
		plan := q.Explain()
		if plan == nil {
			fmt.Fprintln(os.Stderr, "shapesearch: -explain: no plan recorded")
			os.Exit(1)
		}
		fmt.Printf("explain plan (waterfall reconciles: %v):\n", plan.Waterfall.Reconciles())
		emitJSON("-explain", plan)
	}
	if *health {
		ix := statIx
		if ix == nil {
			ix, err = lbkeogh.NewIndex(db, *dims)
			if err != nil {
				fmt.Fprintf(os.Stderr, "shapesearch: -index-health: %v\n", err)
				os.Exit(1)
			}
		}
		report := struct {
			Dims  int                    `json:"dims"`
			Index lbkeogh.IndexHealth    `json:"index"`
			Wedge lbkeogh.WedgeTreeStats `json:"wedge"`
		}{Dims: ix.Dims(), Index: ix.Health(), Wedge: q.WedgeStats()}
		fmt.Println("index health:")
		emitJSON("-index-health", report)
	}
	if *emitStat {
		st := q.Stats()
		if statIx != nil {
			st = statIx.Stats() // indexed searches record into the index
		}
		emitJSON("-stats", st)
	}
	if addr != "" {
		fmt.Printf("search done; serving /metrics, /debug/lbkeogh and /debug/pprof/ on %s (interrupt to stop)\n", addr)
		select {}
	}
}

// emitJSON prints v as indented JSON, exiting on encoding failure.
func emitJSON(what string, v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "shapesearch: %s: %v\n", what, err)
		os.Exit(1)
	}
}

// sourceSet is a mutex-guarded set of stats sources and trace logs: the
// index source is registered after the metrics server is already running.
type sourceSet struct {
	mu   sync.Mutex
	m    map[string]lbkeogh.StatsSource
	logs map[string]*lbkeogh.TraceLog
}

func newSourceSet() *sourceSet {
	return &sourceSet{
		m:    map[string]lbkeogh.StatsSource{},
		logs: map[string]*lbkeogh.TraceLog{},
	}
}

func (s *sourceSet) add(name string, src lbkeogh.StatsSource, t *lbkeogh.TraceLog) {
	s.mu.Lock()
	s.m[name] = src
	if t != nil {
		s.logs[name] = t
	}
	s.mu.Unlock()
}

func (s *sourceSet) snapshot() (map[string]lbkeogh.StatsSource, map[string]*lbkeogh.TraceLog) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]lbkeogh.StatsSource, len(s.m))
	for k, v := range s.m {
		out[k] = v
	}
	logs := make(map[string]*lbkeogh.TraceLog, len(s.logs))
	for k, v := range s.logs {
		logs[k] = v
	}
	return out, logs
}

// serveObs serves the public metrics handler, the trace dashboard, expvar
// and the pprof profiles on a private mux.
func serveObs(addr string, sources *sourceSet) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		src, _ := sources.snapshot()
		lbkeogh.MetricsHandler(src).ServeHTTP(w, r)
	}))
	mux.Handle("/debug/lbkeogh", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		src, logs := sources.snapshot()
		lbkeogh.DebugHandler(src, logs).ServeHTTP(w, r)
	}))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "shapesearch: serve %s: %v\n", addr, err)
		os.Exit(1)
	}
}
