package diskstore

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lbkeogh/internal/segment"
	"lbkeogh/internal/ts"
)

// writeV1 hand-builds a version-1 file (no footer), the format existing
// stores on disk still use.
func writeV1(t *testing.T, path string, db [][]float64) {
	t.Helper()
	n := len(db[0])
	buf := make([]byte, headerSize+len(db)*n*8)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[4:], version1)
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(db)))
	off := headerSize
	for _, s := range db {
		for _, v := range s {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenVersion1Compat(t *testing.T) {
	path := tempFile(t)
	db := sampleDB(3, 9, 16)
	writeV1(t, path, db)
	s, err := Open(path)
	if err != nil {
		t.Fatalf("v1 open: %v", err)
	}
	defer s.Close()
	for i, want := range db {
		if !ts.Equal(s.Fetch(i), want, 0) {
			t.Fatalf("v1 record %d mismatch", i)
		}
	}
}

func TestOpenVersion2FooterCheck(t *testing.T) {
	path := tempFile(t)
	db := sampleDB(4, 9, 16)
	if err := Write(path, db); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a record byte: v2 open must notice.
	buf[headerSize+40] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("want CRC mismatch, got %v", err)
	}
}

func TestMigrate(t *testing.T) {
	path := tempFile(t)
	db := sampleDB(5, 40, 32)
	writeV1(t, path, db) // migrating the legacy version is the point
	dir := filepath.Join(t.TempDir(), "store")

	moved, err := Migrate(path, dir, 8)
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if moved != len(db) {
		t.Fatalf("migrated %d, want %d", moved, len(db))
	}

	seg, err := segment.OpenDB(dir, 8)
	if err != nil {
		t.Fatalf("opening migrated store: %v", err)
	}
	defer seg.Close()
	if seg.Len() != len(db) || seg.SeriesLen() != 32 || seg.Dims() != 8 {
		t.Fatalf("migrated shape: m=%d n=%d d=%d", seg.Len(), seg.SeriesLen(), seg.Dims())
	}
	snap := seg.Acquire()
	defer snap.Release()
	for i, want := range db {
		if !ts.Equal(snap.Series(i), want, 0) {
			t.Fatalf("migrated record %d mismatch", i)
		}
		wm, wp := segment.Features(want, 8)
		if !ts.Equal(snap.Rows()[i], want, 0) {
			t.Fatalf("migrated row %d mismatch", i)
		}
		mags, paas := snap.Features()
		if !ts.Equal(mags[i], wm, 0) || !ts.Equal(paas[i], wp, 0) {
			t.Fatalf("migrated features %d mismatch", i)
		}
	}

	// A second migrate into the same dir must refuse.
	if _, err := Migrate(path, dir, 8); err == nil {
		t.Fatal("migrate over an existing store accepted")
	}
}
