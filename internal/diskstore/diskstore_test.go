package diskstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lbkeogh/internal/ts"
)

func tempFile(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "series.lbks")
}

func sampleDB(seed int64, m, n int) [][]float64 {
	rng := ts.NewRand(seed)
	db := make([][]float64, m)
	for i := range db {
		db[i] = ts.RandomSeries(rng, n)
	}
	return db
}

func TestWriteOpenRoundTrip(t *testing.T) {
	path := tempFile(t)
	db := sampleDB(1, 17, 33)
	if err := Write(path, db); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 17 || s.SeriesLen() != 33 {
		t.Fatalf("store shape (%d,%d)", s.Len(), s.SeriesLen())
	}
	for i, want := range db {
		got := s.Fetch(i)
		if !ts.Equal(got, want, 0) {
			t.Fatalf("record %d round-trip mismatch", i)
		}
	}
	if s.Reads() != 17 {
		t.Fatalf("reads = %d, want 17", s.Reads())
	}
	s.ResetReads()
	if s.Reads() != 0 {
		t.Fatal("reset failed")
	}
}

func TestWriteValidation(t *testing.T) {
	path := tempFile(t)
	if err := Write(path, nil); err == nil {
		t.Fatal("want error for empty collection")
	}
	if err := Write(path, [][]float64{{}}); err == nil {
		t.Fatal("want error for empty series")
	}
	if err := Write(path, [][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("want error for ragged series")
	}
	if err := Write(filepath.Join(path, "nope", "x"), sampleDB(2, 2, 4)); err == nil {
		t.Fatal("want error for bad path")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := tempFile(t)
	if err := os.WriteFile(path, []byte("this is not a series file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("want error for bad magic")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestOpenRejectsTruncated(t *testing.T) {
	path := tempFile(t)
	db := sampleDB(3, 8, 16)
	if err := Write(path, db); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("want error for truncated file")
	}
}

func TestOpenRejectsBadVersion(t *testing.T) {
	path := tempFile(t)
	if err := Write(path, sampleDB(4, 2, 4)); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	binary.LittleEndian.PutUint32(raw[4:], 99)
	os.WriteFile(path, raw, 0o644)
	if _, err := Open(path); err == nil {
		t.Fatal("want error for unsupported version")
	}
}

func TestFetchErrOutOfRange(t *testing.T) {
	path := tempFile(t)
	if err := Write(path, sampleDB(5, 3, 8)); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.FetchErr(-1); err == nil {
		t.Fatal("want error for negative id")
	}
	if _, err := s.FetchErr(3); err == nil {
		t.Fatal("want error for id == m")
	}
}

func TestFetchPanicsOnRange(t *testing.T) {
	path := tempFile(t)
	if err := Write(path, sampleDB(6, 2, 4)); err != nil {
		t.Fatal(err)
	}
	s, _ := Open(path)
	defer s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.Fetch(99)
}

func TestConcurrentFetch(t *testing.T) {
	path := tempFile(t)
	db := sampleDB(7, 50, 24)
	if err := Write(path, db); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := (i + w) % 50
				if got := s.Fetch(id); !ts.Equal(got, db[id], 0) {
					t.Errorf("worker %d: record %d mismatch", w, id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Reads() != 8*50 {
		t.Fatalf("reads = %d, want %d", s.Reads(), 8*50)
	}
}

func TestSpecialFloatValues(t *testing.T) {
	path := tempFile(t)
	weird := [][]float64{{0, -0, 1e308, -1e-308, 3.141592653589793}}
	if err := Write(path, weird); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Fetch(0); !ts.Equal(got, weird[0], 0) {
		t.Fatalf("special values mangled: %v", got)
	}
}
