// Package diskstore implements a real file-backed series store for the
// rotation-invariant index — the disk the paper's Section 4.2 is about.
//
// Deprecated: diskstore is the single-file, raw-series-only predecessor of
// the columnar segment store (internal/segment), which adds memory mapping,
// precomputed feature columns, and online ingest/compaction. New code should
// use segment; this package stays for existing LBKS files, and Migrate
// converts one into a segment store directory.
//
// File format (little endian):
//
//	offset 0:  magic "LBKS" (4 bytes)
//	offset 4:  uint32 version (1 or 2)
//	offset 8:  uint32 n  — series length
//	offset 12: uint32 m  — series count
//	offset 16: m × n float64 records, row major
//	footer:    uint32 CRC32 (IEEE) of everything before it — version 2 only
//
// Write emits version 2; Open accepts both, verifying the footer when
// present.
//
// Fetch reads one record with a positioned read (ReadAt), so concurrent
// fetches are safe and the OS page cache — not this package — decides what
// stays in memory. Read accounting counts logical record fetches, the
// quantity Figure 24 reports.
package diskstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"time"
)

const (
	magic      = "LBKS"
	version1   = 1
	version2   = 2
	headerSize = 16
	footerSize = 4
)

// Write creates (or truncates) path with the given series collection, all of
// one length, as a version-2 file (CRC32 footer over header and records).
func Write(path string, series [][]float64) error {
	if len(series) == 0 {
		return fmt.Errorf("diskstore: nothing to write")
	}
	n := len(series[0])
	if n == 0 {
		return fmt.Errorf("diskstore: empty series")
	}
	for i, s := range series {
		if len(s) != n {
			return fmt.Errorf("diskstore: series %d length %d != %d", i, len(s), n)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	defer f.Close()

	crc := crc32.NewIEEE()
	w := io.MultiWriter(f, crc)
	header := make([]byte, headerSize)
	copy(header, magic)
	binary.LittleEndian.PutUint32(header[4:], version2)
	binary.LittleEndian.PutUint32(header[8:], uint32(n))
	binary.LittleEndian.PutUint32(header[12:], uint32(len(series)))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	buf := make([]byte, 8*n)
	for _, s := range series {
		for i, v := range s {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("diskstore: %w", err)
		}
	}
	binary.LittleEndian.PutUint32(buf, crc.Sum32())
	if _, err := f.Write(buf[:footerSize]); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return f.Sync()
}

// Store is an open series file. It is safe for concurrent Fetch calls.
type Store struct {
	f    *os.File
	n, m int

	mu    sync.Mutex
	reads int
	hook  func(id int, dur time.Duration)
}

// SetFetchHook installs a callback invoked after every successful record
// read with the read's wall duration (nil removes it). The observability
// layer uses it to stream per-read events and disk-latency histograms; the
// hook must be safe for concurrent calls when fetches are.
func (s *Store) SetFetchHook(hook func(id int, dur time.Duration)) {
	s.mu.Lock()
	s.hook = hook
	s.mu.Unlock()
}

// Open validates the header of path and returns a store over it.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	header := make([]byte, headerSize)
	if _, err := f.ReadAt(header, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: reading header: %w", err)
	}
	if string(header[:4]) != magic {
		f.Close()
		return nil, fmt.Errorf("diskstore: %s is not a series file (bad magic)", path)
	}
	v := binary.LittleEndian.Uint32(header[4:])
	if v != version1 && v != version2 {
		f.Close()
		return nil, fmt.Errorf("diskstore: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(header[8:]))
	m := int(binary.LittleEndian.Uint32(header[12:]))
	if n <= 0 || m <= 0 {
		f.Close()
		return nil, fmt.Errorf("diskstore: corrupt header (n=%d, m=%d)", n, m)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	want := int64(headerSize) + int64(m)*int64(n)*8
	if v == version2 {
		want += footerSize
	}
	if info.Size() < want {
		f.Close()
		return nil, fmt.Errorf("diskstore: file truncated: %d bytes, want %d", info.Size(), want)
	}
	if v == version2 {
		if err := verifyFooter(f, want); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Store{f: f, n: n, m: m}, nil
}

// verifyFooter recomputes the CRC32 of everything before the footer and
// compares it with the stored value. size includes the footer.
func verifyFooter(f *os.File, size int64) error {
	crc := crc32.NewIEEE()
	if _, err := io.Copy(crc, io.NewSectionReader(f, 0, size-footerSize)); err != nil {
		return fmt.Errorf("diskstore: checksumming: %w", err)
	}
	var foot [footerSize]byte
	if _, err := f.ReadAt(foot[:], size-footerSize); err != nil {
		return fmt.Errorf("diskstore: reading footer: %w", err)
	}
	if got, stored := crc.Sum32(), binary.LittleEndian.Uint32(foot[:]); got != stored {
		return fmt.Errorf("diskstore: CRC mismatch (file %#x, computed %#x)", stored, got)
	}
	return nil
}

// Len returns the number of stored series.
func (s *Store) Len() int { return s.m }

// SeriesLen returns the length of each series.
func (s *Store) SeriesLen() int { return s.n }

// Fetch reads record id from disk. It panics on out-of-range ids (a caller
// bug) and on I/O errors after a successful Open (disk failure mid-query has
// no meaningful recovery at this layer; callers needing graceful handling
// use FetchErr).
func (s *Store) Fetch(id int) []float64 {
	out, err := s.FetchErr(id)
	if err != nil {
		panic(err)
	}
	return out
}

// FetchErr is Fetch with an error return instead of a panic on I/O failure.
func (s *Store) FetchErr(id int) ([]float64, error) {
	if id < 0 || id >= s.m {
		return nil, fmt.Errorf("diskstore: record %d outside [0,%d)", id, s.m)
	}
	start := time.Now()
	buf := make([]byte, 8*s.n)
	off := int64(headerSize) + int64(id)*int64(s.n)*8
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("diskstore: reading record %d: %w", id, err)
	}
	out := make([]float64, s.n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	s.mu.Lock()
	s.reads++
	hook := s.hook
	s.mu.Unlock()
	if hook != nil {
		hook(id, time.Since(start))
	}
	return out, nil
}

// Reads reports logical record fetches since the last ResetReads.
func (s *Store) Reads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads
}

// ResetReads zeroes the access counter.
func (s *Store) ResetReads() {
	s.mu.Lock()
	s.reads = 0
	s.mu.Unlock()
}

// Close releases the file handle.
func (s *Store) Close() error { return s.f.Close() }
