package diskstore

import (
	"fmt"
	"os"

	"lbkeogh/internal/segment"
)

// migrateSegmentRecords caps how many records one migrated segment holds so
// very large LBKS files land as several compactable segments.
const migrateSegmentRecords = 1 << 17

// Migrate converts the LBKS series file at path (version 1 or 2) into a
// segment store rooted at dir, computing the feature columns (FFT
// magnitudes, PAA means at dims dimensions; dims < 1 picks 8, clamped to
// n/2) that the old format never carried. dir must not already hold a
// store. Returns the number of records migrated; the source file is left
// untouched.
func Migrate(path, dir string, dims int) (int, error) {
	s, err := Open(path)
	if err != nil {
		return 0, err
	}
	defer s.Close()

	if _, ok, err := segment.LoadManifest(dir); err != nil {
		return 0, err
	} else if ok {
		return 0, fmt.Errorf("diskstore: %s already holds a segment store", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("diskstore: %w", err)
	}

	n := s.SeriesLen()
	d := dims
	if d < 1 {
		d = 8
	}
	if d > n/2 {
		d = n / 2
	}
	perSeg := int64(migrateSegmentRecords)
	if int64(s.Len()) < perSeg {
		perSeg = int64(s.Len())
	}
	b, err := segment.NewBulkWriter(dir, n, d, perSeg)
	if err != nil {
		return 0, err
	}
	for id := 0; id < s.Len(); id++ {
		row, err := s.FetchErr(id)
		if err != nil {
			b.Abort()
			return 0, err
		}
		if err := b.Add(row, 0); err != nil {
			b.Abort()
			return 0, err
		}
	}
	if err := b.Close(); err != nil {
		return 0, err
	}
	return s.Len(), nil
}
