package server

// This file holds the online store-mutation endpoints, available only when
// the server fronts a segment store (Config.Store): /v1/ingest appends rows
// and /v1/compact merges small segments, both committing with an atomic
// manifest/snapshot swap that in-flight searches never observe mid-change.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"
)

// IngestRequest is the /v1/ingest body: a batch of series, all the store's
// series length (or, into an empty store, any one shared length ≥ 2, which
// fixes it). Labels optionally carries one label per row; absent labels
// default to each row's global ID.
type IngestRequest struct {
	Series [][]float64 `json:"series"`
	Labels []int64     `json:"labels,omitempty"`
}

// IngestResponse reports the committed append.
type IngestResponse struct {
	FirstID    int64   `json:"first_id"` // global ID of the first appended row
	Count      int     `json:"count"`
	Generation int64   `json:"generation"` // manifest generation now serving
	Records    int     `json:"records"`    // store rows after the append
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// CompactRequest is the /v1/compact body. MinRecords is the "small segment"
// threshold: runs of at least two consecutive segments each under it are
// merged. Zero (or omitted) merges everything into one segment.
type CompactRequest struct {
	MinRecords int `json:"min_records,omitempty"`
}

// CompactResponse reports the compaction outcome.
type CompactResponse struct {
	Merged     int     `json:"merged"` // segments merged away (0: nothing to do)
	Generation int64   `json:"generation"`
	Segments   int     `json:"segments"` // live segments after
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// mutationEndpoint wraps a store-mutation handler with the checks and
// accounting every mutation shares: POST-only, 409 without a store, 503 while
// draining, the in-flight mutation gauge (surfaced by /readyz as "ingesting"),
// and one RED observation + log line per terminal outcome.
func (s *Server) mutationEndpoint(ep string, body func(w http.ResponseWriter, r *http.Request, finish func(status int, msg string, attrs ...any))) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		rid := s.tel.ids.Next()
		w.Header().Set("X-Request-ID", rid)
		lg := s.tel.logger.With("request_id", rid, "endpoint", ep)
		finish := func(status int, msg string, attrs ...any) {
			s.tel.observeRequest(ep, status, time.Since(began), 0)
			attrs = append(attrs, "status", status, "dur_ms", float64(time.Since(began).Microseconds())/1000)
			if status >= 400 {
				lg.Warn(msg, attrs...)
			} else {
				lg.Info(msg, attrs...)
			}
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			finish(http.StatusMethodNotAllowed, "method not allowed", "method", r.Method)
			return
		}
		if s.store == nil {
			writeError(w, http.StatusConflict, "server is not store-backed: %s requires -segments mode", r.URL.Path)
			finish(http.StatusConflict, "refused: no store")
			return
		}
		if s.Draining() {
			s.drained.Add(1)
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			finish(http.StatusServiceUnavailable, "refused: draining")
			return
		}
		s.mutationsIn.Add(1)
		defer s.mutationsIn.Add(-1)
		body(w, r, finish)
	}
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.mutationEndpoint("ingest", func(w http.ResponseWriter, r *http.Request, finish func(int, string, ...any)) {
		var req IngestRequest
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 256<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			finish(http.StatusBadRequest, "bad request", "error", err.Error())
			return
		}
		if len(req.Series) == 0 {
			writeError(w, http.StatusBadRequest, "series must carry at least one row")
			finish(http.StatusBadRequest, "bad request", "error", "empty series")
			return
		}
		if req.Labels != nil && len(req.Labels) != len(req.Series) {
			writeError(w, http.StatusBadRequest, "%d labels for %d series", len(req.Labels), len(req.Series))
			finish(http.StatusBadRequest, "bad request", "error", "label count mismatch")
			return
		}
		start := time.Now()
		firstID, err := s.store.Ingest(req.Series, req.Labels)
		if err != nil {
			// Shape errors (length mismatch, too-short rows) are the client's;
			// anything the store could not commit is ours.
			writeError(w, http.StatusBadRequest, "ingest: %v", err)
			finish(http.StatusBadRequest, "ingest failed", "error", err.Error())
			return
		}
		s.ingestRows.Add(int64(len(req.Series)))
		s.invalidateIntrospection()
		resp := IngestResponse{
			FirstID:    int64(firstID),
			Count:      len(req.Series),
			Generation: s.store.Generation(),
			Records:    s.store.Len(),
			ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		}
		writeJSON(w, http.StatusOK, resp)
		finish(http.StatusOK, "ingest committed", "rows", resp.Count, "first_id", resp.FirstID, "generation", resp.Generation)
	})(w, r)
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.mutationEndpoint("compact", func(w http.ResponseWriter, r *http.Request, finish func(int, string, ...any)) {
		var req CompactRequest
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		// An empty body is allowed: it selects the merge-everything default.
		if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			finish(http.StatusBadRequest, "bad request", "error", err.Error())
			return
		}
		start := time.Now()
		merged, err := s.store.Compact(int64(req.MinRecords))
		if err != nil {
			writeError(w, http.StatusInternalServerError, "compact: %v", err)
			finish(http.StatusInternalServerError, "compact failed", "error", err.Error())
			return
		}
		if merged > 0 {
			s.compactOps.Add(1)
			s.invalidateIntrospection()
		}
		resp := CompactResponse{
			Merged:     merged,
			Generation: s.store.Generation(),
			Segments:   len(s.store.Stats().Segments),
			ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		}
		writeJSON(w, http.StatusOK, resp)
		finish(http.StatusOK, "compact done", "merged", resp.Merged, "segments", resp.Segments, "generation", resp.Generation)
	})(w, r)
}
