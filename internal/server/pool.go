package server

import (
	"container/list"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"lbkeogh"
)

// QuerySpec identifies a compiled query for pooling: everything that goes
// into NewQuery. Two requests with the same spec can reuse the same built
// rotation set and wedge hierarchy — the O(n²) part of serving a query.
type QuerySpec struct {
	Measure  string
	R        int
	Eps      float64
	Mirror   bool
	MaxDeg   float64 // < 0: unlimited
	Strategy string
	Series   []float64
}

// Key hashes the spec (FNV-64a over the exact float bits; no collisions are
// assumed — see Pool) for use as the pool key.
func (sp QuerySpec) Key() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(sp.Measure))
	h.Write([]byte{0})
	h.Write([]byte(sp.Strategy))
	h.Write([]byte{0})
	writeU64(uint64(int64(sp.R)))
	writeU64(math.Float64bits(sp.Eps))
	if sp.Mirror {
		writeU64(1)
	} else {
		writeU64(0)
	}
	writeU64(math.Float64bits(sp.MaxDeg))
	writeU64(uint64(len(sp.Series)))
	for _, v := range sp.Series {
		writeU64(math.Float64bits(v))
	}
	return h.Sum64()
}

// Session is one pooled query. A checked-out session is owned exclusively by
// its request (a Query is single-goroutine); Spec is retained so an exact
// hash collision cannot silently serve the wrong rotation set.
type Session struct {
	Q    *lbkeogh.Query
	Spec QuerySpec
	key  uint64
}

// Pool is an LRU pool of idle query sessions keyed by QuerySpec hash.
// Checkout pops the most recently used idle session for the spec (building a
// fresh one on miss); Checkin returns it, evicting the least recently used
// idle session when the pool is over capacity. Repeated queries — the common
// serving pattern the paper's batch experiments simulate — skip the rotation
// matrix and wedge-tree build entirely.
type Pool struct {
	mu        sync.Mutex
	max       int
	lru       *list.List // of *Session; front = least recently used idle
	byKey     map[uint64][]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// NewPool creates a pool retaining up to max idle sessions (min 1).
func NewPool(max int) *Pool {
	if max < 1 {
		max = 1
	}
	return &Pool{max: max, lru: list.New(), byKey: map[uint64][]*list.Element{}}
}

// Checkout returns an exclusive session for the spec, reusing an idle one
// when available and calling build otherwise. hit reports which happened.
// Concurrent misses on the same spec each build their own session; the
// duplicates merge back into the pool at Checkin.
func (p *Pool) Checkout(spec QuerySpec, build func() (*lbkeogh.Query, error)) (s *Session, hit bool, err error) {
	key := spec.Key()
	p.mu.Lock()
	elems := p.byKey[key]
	for i := len(elems) - 1; i >= 0; i-- {
		el := elems[i]
		cand := el.Value.(*Session)
		if !specEqual(cand.Spec, spec) {
			continue // hash collision: leave the stranger alone
		}
		p.byKey[key] = append(elems[:i], elems[i+1:]...)
		p.lru.Remove(el)
		p.hits++
		p.mu.Unlock()
		return cand, true, nil
	}
	p.misses++
	p.mu.Unlock()
	q, err := build() // outside the lock: building is the expensive part
	if err != nil {
		return nil, false, err
	}
	return &Session{Q: q, Spec: spec, key: key}, false, nil
}

// Checkin returns a session to the idle pool, evicting the least recently
// used idle session if the pool is over capacity.
func (p *Pool) Checkin(s *Session) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el := p.lru.PushBack(s)
	p.byKey[s.key] = append(p.byKey[s.key], el)
	for p.lru.Len() > p.max {
		old := p.lru.Front()
		p.lru.Remove(old)
		victim := old.Value.(*Session)
		elems := p.byKey[victim.key]
		for i, e := range elems {
			if e == old {
				elems = append(elems[:i], elems[i+1:]...)
				break
			}
		}
		if len(elems) == 0 {
			delete(p.byKey, victim.key)
		} else {
			p.byKey[victim.key] = elems
		}
		p.evictions++
	}
}

func specEqual(a, b QuerySpec) bool {
	if a.Measure != b.Measure || a.Strategy != b.Strategy || a.R != b.R ||
		a.Eps != b.Eps || a.Mirror != b.Mirror || a.MaxDeg != b.MaxDeg ||
		len(a.Series) != len(b.Series) {
		return false
	}
	for i, v := range a.Series {
		if math.Float64bits(v) != math.Float64bits(b.Series[i]) {
			return false
		}
	}
	return true
}

// PoolStats is a point-in-time view of the session pool.
type PoolStats struct {
	// Idle is the number of sessions currently parked; Hits/Misses/Evictions
	// are cumulative Checkout and capacity outcomes.
	Idle      int   `json:"idle"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Idle: p.lru.Len(), Hits: p.hits, Misses: p.misses, Evictions: p.evictions}
}
