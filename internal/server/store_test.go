package server

// Store-mode serving tests: the ingest-first workflow over an empty
// segment store, online /v1/ingest and /v1/compact, readyz reasons, and —
// the contract the online path hangs on — zero failed searches while a
// compaction swaps the manifest under concurrent query load.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lbkeogh"
	"lbkeogh/internal/segment"
)

func newStoreServer(t *testing.T, cfg Config) (*segment.DB, *Server, *httptest.Server) {
	t.Helper()
	db, err := segment.OpenDB(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	cfg.Store = db
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return db, srv, ts
}

// postJSON posts a body and decodes the response into out (when non-nil and
// the status is 200), returning status and raw body.
func postJSON(t *testing.T, ts *httptest.Server, path, body string, out any) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s: bad response JSON: %v\n%s", path, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

func ingestBody(rows []lbkeogh.Series) string {
	b, _ := json.Marshal(map[string]any{"series": rows})
	return string(b)
}

func storeRows(seed int64, m, n int) []lbkeogh.Series {
	return lbkeogh.SyntheticProjectilePoints(seed, m, n)
}

func TestStoreModeIngestFirstWorkflow(t *testing.T) {
	db, _, ts := newStoreServer(t, Config{})

	// Empty store: searches refuse with 503, readyz stays ready ("serving" —
	// the process can take ingests), livez reports db_size 0.
	code, raw := postJSON(t, ts, "/v1/search", `{"query_index":0}`, nil)
	if code != http.StatusServiceUnavailable || !strings.Contains(raw, "ingest") {
		t.Fatalf("empty-store search: status %d body %s", code, raw)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready readyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ready.Status != "ready" || ready.Reason == "" {
		t.Fatalf("empty-store readyz: status %d body %+v", resp.StatusCode, ready)
	}

	// First ingest fixes the series length and makes searches live.
	rows := storeRows(3, 6, 32)
	var ing IngestResponse
	code, raw = postJSON(t, ts, "/v1/ingest", ingestBody(rows), &ing)
	if code != http.StatusOK {
		t.Fatalf("ingest: status %d body %s", code, raw)
	}
	if ing.FirstID != 0 || ing.Count != 6 || ing.Records != 6 {
		t.Fatalf("ingest response: %+v", ing)
	}
	var sr SearchResponse
	code, raw = postJSON(t, ts, "/v1/search", `{"query_index":2}`, &sr)
	if code != http.StatusOK {
		t.Fatalf("search after ingest: status %d body %s", code, raw)
	}
	if len(sr.Results) != 1 || sr.Results[0].Index != 2 || sr.Results[0].Dist != 0 {
		t.Fatalf("self-match: %+v", sr.Results)
	}
	// Labels default to global IDs in store mode.
	if sr.Results[0].Label == nil || *sr.Results[0].Label != 2 {
		t.Fatalf("store label: %+v", sr.Results[0].Label)
	}

	// Wrong-length ingest into a fixed store is the client's error.
	code, raw = postJSON(t, ts, "/v1/ingest", ingestBody(storeRows(4, 2, 16)), nil)
	if code != http.StatusBadRequest {
		t.Fatalf("mismatched ingest: status %d body %s", code, raw)
	}

	// Second ingest appends with continuing IDs; compact merges to one segment.
	code, raw = postJSON(t, ts, "/v1/ingest", ingestBody(storeRows(5, 4, 32)), &ing)
	if code != http.StatusOK || ing.FirstID != 6 || ing.Records != 10 {
		t.Fatalf("second ingest: status %d resp %+v body %s", code, ing, raw)
	}
	var comp CompactResponse
	code, raw = postJSON(t, ts, "/v1/compact", `{}`, &comp)
	if code != http.StatusOK {
		t.Fatalf("compact: status %d body %s", code, raw)
	}
	if comp.Merged != 2 || comp.Segments != 1 {
		t.Fatalf("compact response: %+v", comp)
	}
	if db.Len() != 10 {
		t.Fatalf("store rows after compact: %d", db.Len())
	}
	// Rows survive compaction under the same IDs.
	code, raw = postJSON(t, ts, "/v1/search", `{"query_index":7}`, &sr)
	if code != http.StatusOK || sr.Results[0].Index != 7 {
		t.Fatalf("post-compact search: status %d body %s", code, raw)
	}
}

func TestStoreMutationsRefusedOutsideStoreMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/ingest", "/v1/compact"} {
		code, raw := postJSON(t, ts, path, `{}`, nil)
		if code != http.StatusConflict {
			t.Fatalf("%s on static server: status %d body %s", path, code, raw)
		}
	}
}

func TestStoreModeRejectsStaticConfig(t *testing.T) {
	db, err := segment.OpenDB(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := New(Config{Store: db, DB: storeRows(1, 2, 16)}); err == nil {
		t.Fatal("Store+DB accepted")
	}
	if _, err := New(Config{Store: db, Labels: []int{1}}); err == nil {
		t.Fatal("Store+Labels accepted")
	}
}

// TestStoreModeConcurrentCompactSwap is the online-compaction contract at the
// HTTP layer: query load never observes a swap. Readers hammer /v1/search
// (fresh specs each time, defeating the session pool's cache, so every
// request re-reads the store) while the writer ingests and compacts; every
// search must come back 200 with its self-match intact.
func TestStoreModeConcurrentCompactSwap(t *testing.T) {
	db, _, ts := newStoreServer(t, Config{MaxInflight: 8, MaxQueue: 64})
	seedRows := storeRows(11, 20, 24)
	if code, raw := postJSON(t, ts, "/v1/ingest", ingestBody(seedRows), nil); code != http.StatusOK {
		t.Fatalf("seed ingest: status %d body %s", code, raw)
	}

	const readers = 6
	var searches, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qi := (r*7 + i) % len(seedRows) // seed rows: present in every generation
				var sr SearchResponse
				code, raw := postJSON(t, ts, "/v1/search",
					fmt.Sprintf(`{"query_index":%d,"strategy":"early_abandon"}`, qi), &sr)
				searches.Add(1)
				if code != http.StatusOK {
					failed.Add(1)
					t.Errorf("search during compact: status %d body %s", code, raw)
					return
				}
				if sr.Results[0].Dist != 0 {
					failed.Add(1)
					t.Errorf("self-match lost during swap: qi=%d got %+v", qi, sr.Results[0])
					return
				}
			}
		}(r)
	}

	for round := 0; round < 10; round++ {
		if code, raw := postJSON(t, ts, "/v1/ingest", ingestBody(storeRows(int64(100+round), 10, 24)), nil); code != http.StatusOK {
			t.Fatalf("round %d ingest: status %d body %s", round, code, raw)
		}
		if round%3 == 2 {
			var comp CompactResponse
			if code, raw := postJSON(t, ts, "/v1/compact", `{}`, &comp); code != http.StatusOK {
				t.Fatalf("round %d compact: status %d body %s", round, code, raw)
			}
		}
	}
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d of %d searches failed during online mutations", failed.Load(), searches.Load())
	}
	if searches.Load() == 0 {
		t.Fatal("no searches ran")
	}
	st := db.Stats()
	if st.Records != 20+10*10 {
		t.Fatalf("store records: %d", st.Records)
	}
	if st.Compactions == 0 || st.Ingests < 11 {
		t.Fatalf("mutation counters: %+v", st)
	}
	t.Logf("%d searches, %d ingests, %d compactions, generation %d, %d segments",
		searches.Load(), st.Ingests, st.Compactions, st.Generation, len(st.Segments))
}

// TestStoreMetricsAndIntrospection pins the store metric families on
// /metrics, the livez store block, and /debug/index generation invalidation.
func TestStoreMetricsAndIntrospection(t *testing.T) {
	db, _, ts := newStoreServer(t, Config{})
	if code, raw := postJSON(t, ts, "/v1/ingest", ingestBody(storeRows(7, 8, 32)), nil); code != http.StatusOK {
		t.Fatalf("ingest: status %d body %s", code, raw)
	}
	if code, raw := postJSON(t, ts, "/v1/search", `{"query_index":0}`, nil); code != http.StatusOK {
		t.Fatalf("search: status %d body %s", code, raw)
	}

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %s", path, resp.StatusCode, raw)
		}
		return string(raw)
	}

	metrics := get("/metrics")
	for _, family := range []string{
		"shapeserver_store_generation",
		"shapeserver_store_segments 1",
		"shapeserver_store_records 8",
		"shapeserver_store_mapped_bytes",
		"shapeserver_store_reads_total",
		"shapeserver_store_ingests_total 1",
		"shapeserver_store_segment_records{segment=",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("metrics missing %q", family)
		}
	}

	live := get("/livez")
	var health healthResponse
	if err := json.Unmarshal([]byte(live), &health); err != nil {
		t.Fatal(err)
	}
	if health.Store == nil || health.Store.Records != 8 || health.DBSize != 8 || health.SeriesLen != 32 {
		t.Fatalf("livez store block: %s", live)
	}

	var rep1 IndexReport
	if err := json.Unmarshal([]byte(get("/debug/index")), &rep1); err != nil {
		t.Fatal(err)
	}
	if rep1.Rows != 8 || rep1.Generation != db.Generation() {
		t.Fatalf("index report: %+v", rep1)
	}
	// A mutation moves the generation; the cached report rebuilds.
	if code, raw := postJSON(t, ts, "/v1/ingest", ingestBody(storeRows(9, 3, 32)), nil); code != http.StatusOK {
		t.Fatalf("second ingest: status %d body %s", code, raw)
	}
	var rep2 IndexReport
	if err := json.Unmarshal([]byte(get("/debug/index")), &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Rows != 11 || rep2.Generation != db.Generation() || rep2.Generation == rep1.Generation {
		t.Fatalf("stale index report after ingest: before %+v after %+v", rep1, rep2)
	}
}
