package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lbkeogh"
	"lbkeogh/internal/obs/ops"
	"lbkeogh/internal/segment"
)

// searchKind selects which search a /v1 endpoint runs.
type searchKind int

const (
	kindNearest searchKind = iota
	kindTopK
	kindRange
)

// SearchRequest is the JSON body of the /v1 search endpoints. Exactly one of
// Series and QueryIndex identifies the query shape; the rest parameterize
// the measure, invariances, strategy, and the endpoint-specific knobs.
type SearchRequest struct {
	// Series is the query signature (must match the database series length).
	Series []float64 `json:"series,omitempty"`
	// QueryIndex selects a database row as the query instead.
	QueryIndex *int `json:"query_index,omitempty"`

	// Measure is euclidean (default), dtw, or lcss; R is the DTW Sakoe-Chiba
	// radius / LCSS window (default 5), Eps the LCSS threshold (default 0.25).
	Measure string  `json:"measure,omitempty"`
	R       *int    `json:"r,omitempty"`
	Eps     float64 `json:"eps,omitempty"`

	// Mirror enables mirror-image invariance; MaxDegrees limits rotations to
	// ±deg of the original orientation.
	Mirror     bool     `json:"mirror,omitempty"`
	MaxDegrees *float64 `json:"max_degrees,omitempty"`

	// Strategy is wedge (default), brute, early_abandon, or fft.
	Strategy string `json:"strategy,omitempty"`

	// K is the neighbour count for /v1/topk (default 1); Threshold the
	// strict distance cutoff for /v1/range (required there); Parallel the
	// worker count for /v1/search (0 or 1: serial).
	K         int     `json:"k,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Parallel  int     `json:"parallel,omitempty"`

	// TimeoutMS bounds this request's search; 0 uses the server default, and
	// values above the server maximum are clamped to it.
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// Explain runs the search in EXPLAIN mode: the response additionally
	// carries a structured plan (stage waterfall, sampled bound tightness,
	// survivors annotated with the admitting bound). Costs roughly one extra
	// waterfall measurement every few comparisons; meant for diagnostics, not
	// steady-state traffic.
	Explain bool `json:"explain,omitempty"`
}

// Hit is one search result row.
type Hit struct {
	Index    int     `json:"index"`
	Label    *int    `json:"label,omitempty"`
	Dist     float64 `json:"dist"`
	Shift    int     `json:"shift"`
	Degrees  float64 `json:"degrees"`
	Mirrored bool    `json:"mirrored,omitempty"`
}

// SearchResponse is the JSON body of a successful search.
type SearchResponse struct {
	Results []Hit `json:"results"`
	// Stats is this request's own pruning breakdown (its outcome buckets
	// reconcile); the server-wide aggregate lives at /metrics.
	Stats lbkeogh.SearchStats `json:"stats"`
	// PoolHit reports whether a pooled session served the request (the
	// rotation-set build was skipped).
	PoolHit   bool    `json:"pool_hit"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// TraceID is the retained trace of this search (0 when tracing is off or
	// the sampler dropped it); resolve it at /debug/lbkeogh.
	TraceID int64 `json:"trace_id"`
	// Plan is the structured EXPLAIN output, present only when the request
	// set explain. Its waterfall counts reconcile with Stats exactly.
	Plan *lbkeogh.ExplainPlan `json:"plan,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing left to do on a broken client connection
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// parse validates the body and resolves it into the query series, its pool
// spec, and the request deadline. rows is the request's database view (for
// query_index resolution against the same generation the search will scan).
func (s *Server) parse(r *http.Request, kind searchKind, rows []lbkeogh.Series) (SearchRequest, QuerySpec, time.Duration, error) {
	var req SearchRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, QuerySpec{}, 0, fmt.Errorf("bad request body: %v", err)
	}
	if (req.Series == nil) == (req.QueryIndex == nil) {
		return req, QuerySpec{}, 0, fmt.Errorf("exactly one of series and query_index is required")
	}
	series := req.Series
	if req.QueryIndex != nil {
		qi := *req.QueryIndex
		if qi < 0 || qi >= len(rows) {
			return req, QuerySpec{}, 0, fmt.Errorf("query_index %d outside [0,%d)", qi, len(rows))
		}
		series = rows[qi]
		if s.store != nil {
			// The row is a view into the request's snapshot, but the spec (and
			// the pooled session built from it) outlives the snapshot: copy.
			series = append(lbkeogh.Series(nil), series...)
		}
	}
	if n := s.seriesLen(); len(series) != n {
		return req, QuerySpec{}, 0, fmt.Errorf("series length %d != database series length %d", len(series), n)
	}
	if req.Measure == "" {
		req.Measure = "euclidean"
	}
	switch req.Measure {
	case "euclidean", "dtw", "lcss":
	default:
		return req, QuerySpec{}, 0, fmt.Errorf("unknown measure %q", req.Measure)
	}
	if req.Strategy == "" {
		req.Strategy = "wedge"
	}
	switch req.Strategy {
	case "wedge", "brute", "early_abandon", "fft":
	default:
		return req, QuerySpec{}, 0, fmt.Errorf("unknown strategy %q", req.Strategy)
	}
	if kind == kindRange && !(req.Threshold > 0) {
		return req, QuerySpec{}, 0, fmt.Errorf("range search requires threshold > 0")
	}
	if req.TimeoutMS < 0 {
		return req, QuerySpec{}, 0, fmt.Errorf("timeout_ms must be >= 0")
	}
	radius := 5
	if req.R != nil {
		radius = *req.R
	}
	eps := req.Eps
	if eps == 0 {
		eps = 0.25
	}
	maxDeg := -1.0
	if req.MaxDegrees != nil {
		maxDeg = *req.MaxDegrees
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	spec := QuerySpec{
		Measure:  req.Measure,
		R:        radius,
		Eps:      eps,
		Mirror:   req.Mirror,
		MaxDeg:   maxDeg,
		Strategy: req.Strategy,
		Series:   series,
	}
	return req, spec, timeout, nil
}

// buildQuery compiles the spec into a query session, tracing it through the
// server's log when one is configured.
func (s *Server) buildQuery(spec QuerySpec) (*lbkeogh.Query, error) {
	var m lbkeogh.Measure
	switch spec.Measure {
	case "dtw":
		m = lbkeogh.DTW(spec.R)
	case "lcss":
		m = lbkeogh.LCSS(spec.R, spec.Eps)
	default:
		m = lbkeogh.Euclidean()
	}
	var strat lbkeogh.Strategy
	switch spec.Strategy {
	case "brute":
		strat = lbkeogh.BruteForceSearch
	case "early_abandon":
		strat = lbkeogh.EarlyAbandonSearch
	case "fft":
		strat = lbkeogh.FFTSearch
	default:
		strat = lbkeogh.WedgeSearch
	}
	opts := []lbkeogh.QueryOption{lbkeogh.WithStrategy(strat)}
	if spec.Mirror {
		opts = append(opts, lbkeogh.WithMirrorInvariance())
	}
	if spec.MaxDeg >= 0 {
		opts = append(opts, lbkeogh.WithMaxRotationDegrees(spec.MaxDeg))
	}
	if s.cfg.TraceLog != nil {
		opts = append(opts, lbkeogh.WithTraceLog(s.cfg.TraceLog))
	}
	q, err := lbkeogh.NewQuery(spec.Series, m, opts...)
	if err != nil {
		return nil, err
	}
	// Every pooled session feeds the server-owned bound-tightness sampler
	// (a nil sampler detaches, costing one nil check per comparison).
	q.SetBoundSampler(s.sampler)
	return q, nil
}

// searchEndpoint returns the handler for one /v1 endpoint: admission, pool
// checkout, the deadline-bounded search, and the stats-bearing response.
// Every terminal outcome is logged with the request ID (echoed in the
// X-Request-ID header) and folded into the endpoint's rolling RED window.
func (s *Server) searchEndpoint(kind searchKind) http.HandlerFunc {
	ep := endpointName(kind)
	return func(w http.ResponseWriter, r *http.Request) {
		began := time.Now()
		rid := s.tel.ids.Next()
		w.Header().Set("X-Request-ID", rid)
		lg := s.tel.logger.With("request_id", rid, "endpoint", ep)
		ctx := ops.WithLogger(r.Context(), lg)
		// finish is every terminal outcome's single exit: one RED
		// observation and one log line per request.
		finish := func(status int, traceID int64, msg string, attrs ...any) {
			s.tel.observeRequest(ep, status, time.Since(began), traceID)
			attrs = append(attrs, "status", status, "dur_ms", float64(time.Since(began).Microseconds())/1000)
			if status >= 400 {
				lg.Warn(msg, attrs...)
			} else {
				lg.Info(msg, attrs...)
			}
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			finish(http.StatusMethodNotAllowed, 0, "method not allowed", "method", r.Method)
			return
		}
		if s.Draining() {
			s.drained.Add(1)
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			finish(http.StatusServiceUnavailable, 0, "refused: draining")
			return
		}
		// Pin this request's database view: in store mode a refcounted
		// snapshot whose mappings survive any concurrent compaction; the
		// search, query_index resolution, and labels all read one generation.
		view := s.acquireView()
		defer view.release()
		if len(view.rows) == 0 {
			writeError(w, http.StatusServiceUnavailable, "store is empty: ingest data first")
			finish(http.StatusServiceUnavailable, 0, "refused: empty store")
			return
		}
		req, spec, timeout, err := s.parse(r, kind, view.rows)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			finish(http.StatusBadRequest, 0, "bad request", "error", err.Error())
			return
		}
		lg = lg.With("strategy", spec.Strategy, "measure", spec.Measure)
		ctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()

		if err := s.adm.Acquire(ctx); err != nil {
			switch {
			case errors.Is(err, ErrSaturated):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "%v", err)
				finish(http.StatusTooManyRequests, 0, "shed: admission queue full")
			case errors.Is(err, context.DeadlineExceeded):
				s.timeouts.Add(1)
				writeError(w, http.StatusGatewayTimeout, "deadline expired while queued for admission")
				finish(http.StatusGatewayTimeout, 0, "timeout while queued")
			default: // client went away while queued
				s.timeouts.Add(1)
				writeError(w, http.StatusServiceUnavailable, "request cancelled while queued")
				finish(http.StatusServiceUnavailable, 0, "client gone while queued")
			}
			return
		}
		defer s.adm.Release()
		s.requests.Add(1)

		sess, hit, err := s.pool.Checkout(spec, func() (*lbkeogh.Query, error) { return s.buildQuery(spec) })
		if err != nil {
			// The only build failures left after parse are option conflicts
			// (e.g. fft with a non-Euclidean measure): the client's fault.
			writeError(w, http.StatusBadRequest, "%v", err)
			finish(http.StatusBadRequest, 0, "session build failed", "error", err.Error())
			return
		}
		if !hit {
			lg.Debug("built fresh query session")
		}
		// A cancelled search leaves the session reusable (the library
		// guarantees its adaptive state is not polluted), so it goes back to
		// the pool on every path.
		defer s.pool.Checkin(sess)
		if req.Explain {
			sess.Q.SetExplain(true)
			// Disarm before Checkin (defers run LIFO) so a pooled session
			// never carries EXPLAIN cost into another request.
			defer sess.Q.SetExplain(false)
		}

		if hook := s.cfg.BeforeSearchHook; hook != nil {
			hook()
		}
		q := sess.Q
		q.ResetStats() // per-request delta: the response carries only this search
		start := time.Now()
		results, err := s.runSearch(ctx, q, kind, req, view.rows)
		elapsed := time.Since(start)
		stats := q.Stats()
		stats.StageLatencies = nil // log-global, not per-request; see /metrics
		s.record(stats)
		traceID := q.LastTraceID()
		searchDone := func(status int, msg string, attrs ...any) {
			s.tel.observeSearch(spec.Strategy, status, elapsed, traceID, stats)
			attrs = append(attrs, "trace_id", traceID, "pool_hit", hit, "comparisons", stats.Comparisons)
			finish(status, traceID, msg, attrs...)
		}
		if err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				s.timeouts.Add(1)
				writeError(w, http.StatusGatewayTimeout, "search exceeded its %v deadline", timeout)
				searchDone(http.StatusGatewayTimeout, "search deadline exceeded", "timeout", timeout.String())
			case errors.Is(err, context.Canceled):
				s.timeouts.Add(1)
				writeError(w, http.StatusServiceUnavailable, "search cancelled")
				searchDone(http.StatusServiceUnavailable, "search cancelled")
			default:
				writeError(w, http.StatusBadRequest, "%v", err)
				searchDone(http.StatusBadRequest, "search failed", "error", err.Error())
			}
			return
		}
		resp := SearchResponse{
			Results:   s.hits(results, view.labels),
			Stats:     stats,
			PoolHit:   hit,
			ElapsedMS: float64(elapsed.Microseconds()) / 1000,
			TraceID:   traceID,
		}
		if req.Explain {
			resp.Plan = q.Explain()
		}
		writeJSON(w, http.StatusOK, resp)
		searchDone(http.StatusOK, "search served", "results", len(resp.Results))
	}
}

func (s *Server) runSearch(ctx context.Context, q *lbkeogh.Query, kind searchKind, req SearchRequest, rows []lbkeogh.Series) ([]lbkeogh.SearchResult, error) {
	switch kind {
	case kindTopK:
		k := req.K
		if k <= 0 {
			k = 1
		}
		return q.SearchTopKContext(ctx, rows, k)
	case kindRange:
		return q.SearchRangeContext(ctx, rows, req.Threshold)
	default:
		if req.Parallel > 1 { // serial unless explicitly parallel
			res, err := q.SearchParallelContext(ctx, rows, req.Parallel)
			if err != nil {
				return nil, err
			}
			return []lbkeogh.SearchResult{res}, nil
		}
		res, err := q.SearchContext(ctx, rows)
		if err != nil {
			return nil, err
		}
		return []lbkeogh.SearchResult{res}, nil
	}
}

func (s *Server) hits(results []lbkeogh.SearchResult, labels []int) []Hit {
	out := make([]Hit, len(results))
	for i, r := range results {
		h := Hit{
			Index:    r.Index,
			Dist:     r.Dist,
			Shift:    r.Rotation.Shift,
			Degrees:  r.Rotation.Degrees,
			Mirrored: r.Rotation.Mirrored,
		}
		if labels != nil {
			label := labels[r.Index]
			h.Label = &label
		}
		out[i] = h
	}
	return out
}

// healthResponse is the /livez (and aliased /healthz) body.
type healthResponse struct {
	Status    string         `json:"status"` // always "ok": liveness, not readiness
	Draining  bool           `json:"draining"`
	SeriesLen int            `json:"series_len"`
	DBSize    int            `json:"db_size"`
	Admission AdmissionStats `json:"admission"`
	Pool      PoolStats      `json:"pool"`
	Requests  int64          `json:"requests"`
	Timeouts  int64          `json:"timeouts"`
	// Store is present only in segment-store mode.
	Store *segment.Stats `json:"store,omitempty"`
}

// handleLivez is the liveness probe: 200 for as long as the process can
// serve HTTP at all, draining included — restarting a draining server would
// defeat the drain. Routing decisions belong to /readyz.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:    "ok",
		Draining:  s.Draining(),
		SeriesLen: s.seriesLen(),
		DBSize:    s.dbSize(),
		Admission: s.adm.Stats(),
		Pool:      s.pool.Stats(),
		Requests:  s.requests.Load(),
		Timeouts:  s.timeouts.Load(),
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	writeJSON(w, http.StatusOK, resp)
}

// readyResponse is the /readyz body. Reason always explains the status —
// "serving" or "ingesting" when ready, "draining" (or, from the process
// wrapper before the database is swapped in, "loading" / "mapping") when not —
// so probes and operators never see a bare 503.
type readyResponse struct {
	Status string `json:"status"` // "ready" or "unready"
	Reason string `json:"reason"`
}

// handleReadyz is the readiness probe: 503 once the server is draining so
// load balancers route new work elsewhere while in-flight requests finish.
// A store mutation in flight does not unready the server — searches keep
// serving the previous snapshot — but the reason surfaces it as "ingesting".
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, readyResponse{Status: "unready", Reason: "draining"})
		return
	}
	reason := "serving"
	if s.store != nil && (s.store.Busy() || s.mutationsIn.Load() > 0) {
		reason = "ingesting"
	}
	writeJSON(w, http.StatusOK, readyResponse{Status: "ready", Reason: reason})
}
