// Package server implements the shape-search serving layer: an HTTP/JSON
// front end over a loaded series database, with per-request deadlines wired
// into the library's cooperative cancellation, admission control (a bounded
// in-flight set plus a bounded wait queue, shedding load with 429s once both
// fill), and an LRU pool of compiled query sessions so repeated queries skip
// the O(n²) rotation-set build. Every response carries the request's own
// pruning breakdown (SearchStats), and the server aggregates those into a
// record served at /metrics and /debug/lbkeogh.
package server

import (
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"lbkeogh"
	"lbkeogh/internal/obs/explain"
	"lbkeogh/internal/obs/ops"
	"lbkeogh/internal/obs/storeobs"
	"lbkeogh/internal/segment"
)

// Config sizes a Server. The zero value of any field selects its default.
type Config struct {
	// DB is the series database searched by every request; all rows must
	// share one length. Labels optionally carries a class label per row.
	// Mutually exclusive with Store.
	DB     []lbkeogh.Series
	Labels []int

	// Store serves searches from a memory-mapped segment store instead of a
	// heap-resident DB: every request reads through a reference-counted
	// snapshot of the store's current generation, so /v1/ingest and
	// /v1/compact (only available in this mode) can grow and reorganize the
	// database online with zero failed queries. An empty store is allowed —
	// the ingest-first workflow — and searches answer 503 until the first
	// ingest fixes the series length. Labels come from the store's metadata
	// column; Config.Labels must be nil.
	Store *segment.DB

	// MaxInflight bounds concurrent searches (default 4); MaxQueue bounds
	// requests waiting for a slot beyond them (default 16; above it the
	// server answers 429 immediately).
	MaxInflight int
	MaxQueue    int

	// PoolSize bounds the idle query-session pool (default 32 sessions).
	PoolSize int

	// DefaultTimeout bounds requests that set no timeout_ms (default 10s);
	// MaxTimeout caps what a request may ask for (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// TraceLog, when set, traces every pooled query session; the dashboard
	// and Perfetto export at /debug/lbkeogh read from it.
	TraceLog *lbkeogh.TraceLog

	// Logger receives the structured request log (one line per terminal
	// outcome, carrying request and trace IDs). Nil discards it.
	Logger *slog.Logger

	// SLO sets the objectives the rolling latency/error windows are judged
	// against; the zero value selects the ops defaults (250ms @ 99%, 99.9%
	// non-error).
	SLO ops.SLO

	// WindowSlots and WindowSlotDur size the rolling telemetry windows
	// (default 60 slots of 1s — a smoothly rolling minute).
	WindowSlots   int
	WindowSlotDur time.Duration

	// Profiler, when set, is browsable at /debug/profiles. The server does
	// not start or stop it; the owning process does.
	Profiler *ops.Profiler

	// StoreObs, when set alongside Store, is the storage-plane recorder the
	// owning process attached to the store (segment.DB.SetObserver). The
	// server surfaces it: its metric families join /metrics, per-segment
	// heat joins the shapeserver_segment_* families, and /debug/storage
	// renders the segment heatmap, residency, and the event journal. The
	// server never creates or samples it — the process owns the recorder
	// and any residency Sampler.
	StoreObs *storeobs.Recorder

	// ExplainSampleInterval is the bound-tightness sampling interval: one of
	// every N candidate comparisons across all requests gets its full bound
	// waterfall measured (FFT, PAA, envelope lower bounds vs the true
	// distance), feeding the tightness histograms on /metrics and the
	// explain panel on /debug/lbkeogh. Default 512; negative disables the
	// sampler entirely.
	ExplainSampleInterval int

	// BeforeSearchHook, when non-nil, runs after a request is admitted and
	// its session checked out, immediately before the search executes. It is
	// a test seam: integration tests block inside it to hold in-flight slots
	// open and pin the admission-control semantics (429 on queue overflow,
	// 504 on queued-deadline expiry) deterministically. Leave nil in
	// production.
	BeforeSearchHook func()
}

func (c *Config) fillDefaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.ExplainSampleInterval == 0 {
		c.ExplainSampleInterval = 512
	}
}

// Server serves rotation-invariant shape searches over one database.
// Create with New, mount Handler, and call BeginDrain before shutting the
// http.Server down so in-flight requests finish while new ones get 503s.
type Server struct {
	cfg      Config
	n        int         // series length every query must match (static mode)
	store    *segment.DB // nil in static (heap DB) mode
	storeObs *storeobs.Recorder
	pool     *Pool
	adm      *Admission
	mux      *http.ServeMux
	tel      *telemetry

	// sampler is the server-owned bound-tightness sink, armed on every
	// pooled query session (nil when ExplainSampleInterval < 0).
	sampler *lbkeogh.BoundSampler

	// Lazily built index introspection report behind /debug/index,
	// invalidated when the store generation moves.
	ixMu     sync.Mutex
	ixBuilt  bool
	ixGen    int64
	ixReport IndexReport
	ixErr    error

	draining    atomic.Bool
	requests    atomic.Int64 // /v1/* requests accepted for processing
	timeouts    atomic.Int64 // requests ended by deadline or client cancel
	drained     atomic.Int64 // requests refused because the server was draining
	ingestRows  atomic.Int64 // rows accepted through /v1/ingest
	compactOps  atomic.Int64 // /v1/compact requests that merged segments
	mutationsIn atomic.Int64 // in-flight ingest/compact handlers (readyz reason)

	mu  sync.Mutex
	agg lbkeogh.SearchStats // per-request deltas, summed
}

// New validates the database and builds the server.
func New(cfg Config) (*Server, error) {
	var n int
	if cfg.Store != nil {
		if cfg.DB != nil {
			return nil, fmt.Errorf("server: Config.DB and Config.Store are mutually exclusive")
		}
		if cfg.Labels != nil {
			return nil, fmt.Errorf("server: Config.Labels is unused in store mode (labels live in the store)")
		}
		n = cfg.Store.SeriesLen() // 0 for an empty store: fixed by the first ingest
	} else {
		if len(cfg.DB) == 0 {
			return nil, fmt.Errorf("server: empty database")
		}
		n = len(cfg.DB[0])
		if n < 2 {
			return nil, fmt.Errorf("server: database series need >= 2 samples, got %d", n)
		}
		for i, row := range cfg.DB {
			if len(row) != n {
				return nil, fmt.Errorf("server: database series %d length %d != %d", i, len(row), n)
			}
		}
		if cfg.Labels != nil && len(cfg.Labels) != len(cfg.DB) {
			return nil, fmt.Errorf("server: %d labels for %d series", len(cfg.Labels), len(cfg.DB))
		}
	}
	cfg.fillDefaults()
	if cfg.StoreObs != nil && cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.StoreObs requires Config.Store (it observes the segment store)")
	}
	s := &Server{
		cfg:      cfg,
		n:        n,
		store:    cfg.Store,
		storeObs: cfg.StoreObs,
		pool:     NewPool(cfg.PoolSize),
		adm:      NewAdmission(cfg.MaxInflight, cfg.MaxQueue),
		tel:      newTelemetry(cfg),
	}
	if cfg.ExplainSampleInterval > 0 {
		s.sampler = lbkeogh.NewBoundSampler(cfg.ExplainSampleInterval)
	}
	s.mux = s.buildMux()
	return s, nil
}

// Len returns the series length every query must match (0 while a
// store-backed server is still empty).
func (s *Server) Len() int { return s.seriesLen() }

// seriesLen is the live series length: fixed at construction in static mode,
// read from the store (which an ingest may have just fixed) in store mode.
func (s *Server) seriesLen() int {
	if s.store != nil {
		return s.store.SeriesLen()
	}
	return s.n
}

// dbSize is the live row count.
func (s *Server) dbSize() int {
	if s.store != nil {
		return s.store.Len()
	}
	return len(s.cfg.DB)
}

// dbView is one request's stable view of the database: in static mode the
// config slices, in store mode a pinned snapshot's zero-copy rows. release
// must be called when the request is done with the rows.
type dbView struct {
	rows    []lbkeogh.Series
	labels  []int
	release func()
}

// acquireView pins the database for one request.
func (s *Server) acquireView() dbView {
	if s.store == nil {
		return dbView{rows: s.cfg.DB, labels: s.cfg.Labels, release: func() {}}
	}
	snap := s.store.Acquire()
	return dbView{rows: snap.Rows(), labels: snap.Labels(), release: snap.Release}
}

// Handler returns the server's full mux: the /v1 search endpoints, healthz,
// and the observability surface (/metrics, /debug/lbkeogh, /debug/vars,
// /debug/pprof/).
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain puts the server into draining mode: search endpoints answer 503
// immediately, /readyz flips to 503 (so load balancers stop routing here),
// and already-admitted requests run to completion. Call it before
// http.Server.Shutdown, leaving readiness probes time to observe the flip.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.tel.logger.Info("drain started")
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats returns the server's cumulative search record: the sum of every
// served request's pruning breakdown (so the same reconciling outcome
// buckets as a single query's stats), with the trace log's per-stage
// latencies attached when tracing is on. Server implements
// lbkeogh.StatsSource, so it plugs straight into MetricsHandler and
// DebugHandler.
func (s *Server) Stats() lbkeogh.SearchStats {
	s.mu.Lock()
	out := s.agg
	s.mu.Unlock()
	if out.Rotations > 0 {
		out.PruneRate = 1 - float64(out.FullDistEvals)/float64(out.Rotations)
	}
	if out.Comparisons > 0 {
		out.StepsPerComparison = float64(out.Steps) / float64(out.Comparisons)
	}
	if s.cfg.TraceLog != nil {
		out.StageLatencies = s.cfg.TraceLog.StageLatencies()
	}
	return out
}

// record folds one request's stats delta into the server aggregate.
func (s *Server) record(d lbkeogh.SearchStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := &s.agg
	a.Comparisons += d.Comparisons
	a.Rotations += d.Rotations
	a.Steps += d.Steps
	a.FullDistEvals += d.FullDistEvals
	a.EarlyAbandons += d.EarlyAbandons
	a.WedgeNodeVisits += d.WedgeNodeVisits
	a.WedgeLeafVisits += d.WedgeLeafVisits
	a.WedgePrunedMembers += d.WedgePrunedMembers
	a.WedgeLeafLBPrunes += d.WedgeLeafLBPrunes
	a.FFTRejects += d.FFTRejects
	a.FFTRejectedMembers += d.FFTRejectedMembers
	a.FFTFallbacks += d.FFTFallbacks
	a.CancelledMembers += d.CancelledMembers
	a.IndexCandidates += d.IndexCandidates
	a.IndexFetches += d.IndexFetches
	a.DiskReads += d.DiskReads
	a.KChanges += d.KChanges
	for len(a.WedgePrunesByLevel) < len(d.WedgePrunesByLevel) {
		a.WedgePrunesByLevel = append(a.WedgePrunesByLevel, 0)
	}
	for i, v := range d.WedgePrunesByLevel {
		a.WedgePrunesByLevel[i] += v
	}
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/search", s.searchEndpoint(kindNearest))
	mux.HandleFunc("/v1/topk", s.searchEndpoint(kindTopK))
	mux.HandleFunc("/v1/range", s.searchEndpoint(kindRange))
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/compact", s.handleCompact)
	// Kubernetes-style probe split: /livez answers 200 for as long as the
	// process can serve HTTP at all, /readyz drops to 503 once draining (or
	// before the database is swapped in — see cmd/shapeserver). /healthz is
	// a backwards-compatible alias for liveness.
	mux.HandleFunc("/livez", s.handleLivez)
	mux.HandleFunc("/healthz", s.handleLivez)
	mux.HandleFunc("/readyz", s.handleReadyz)
	sources := map[string]lbkeogh.StatsSource{"shapeserver": s}
	logs := map[string]*lbkeogh.TraceLog{}
	if s.cfg.TraceLog != nil {
		logs["shapeserver"] = s.cfg.TraceLog
	}
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lbkeogh.MetricsHandler(sources).ServeHTTP(w, r)
		s.writeServerMetrics(w)
		s.writeWaterfallMetrics(w)
		if s.sampler != nil {
			s.sampler.WriteMetrics(w)
		}
		s.tel.writeMetrics(w)
		if s.storeObs != nil {
			s.storeObs.WriteMetrics(w)
			s.writeSegmentMetrics(w)
		}
	}))
	mux.Handle("/debug/lbkeogh", lbkeogh.DebugHandlerWithPanels(sources, logs, s.tel.panel(), s.explainPanel()))
	mux.HandleFunc("/debug/index", s.handleDebugIndex)
	mux.HandleFunc("/debug/storage", s.handleDebugStorage)
	mux.Handle("/debug/profiles", s.cfg.Profiler.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeServerMetrics appends the serving-layer families (admission, pool,
// request outcomes) to the Prometheus text the library already wrote.
func (s *Server) writeServerMetrics(w io.Writer) {
	ad := s.adm.Stats()
	ops.WriteGaugeInt(w, "shapeserver_inflight", "Searches currently executing.", ad.Inflight)
	ops.WriteGaugeInt(w, "shapeserver_queue_waiting", "Requests waiting for an in-flight slot.", ad.Waiting)
	ops.WriteCounter(w, "shapeserver_admitted_total", "Requests granted an in-flight slot.", ad.Admitted)
	ops.WriteCounter(w, "shapeserver_rejected_total", "Requests shed with 429 (queue full).", ad.Rejected)
	pl := s.pool.Stats()
	ops.WriteGaugeInt(w, "shapeserver_pool_idle", "Idle query sessions in the pool.", int64(pl.Idle))
	ops.WriteCounter(w, "shapeserver_pool_hits_total", "Checkouts served by a pooled session.", pl.Hits)
	ops.WriteCounter(w, "shapeserver_pool_misses_total", "Checkouts that built a fresh session.", pl.Misses)
	ops.WriteCounter(w, "shapeserver_pool_evictions_total", "Idle sessions evicted by the pool cap.", pl.Evictions)
	ops.WriteCounter(w, "shapeserver_requests_total", "Search requests accepted for processing.", s.requests.Load())
	ops.WriteCounter(w, "shapeserver_timeouts_total", "Requests ended by deadline or client cancellation.", s.timeouts.Load())
	ops.WriteCounter(w, "shapeserver_drained_total", "Requests refused while draining.", s.drained.Load())
	drainingVal := int64(0)
	if s.Draining() {
		drainingVal = 1
	}
	ops.WriteGaugeInt(w, "shapeserver_draining", "1 while the server is draining.", drainingVal)
	s.writeStoreMetrics(w)
}

// writeStoreMetrics appends the segment-store families (store mode only):
// per-segment record counts, mapped bytes, generation, the store's own fetch
// counter, and page-fault-adjacent process stats — the numbers that show a
// mapped million-shape database being paged, not heaped.
func (s *Server) writeStoreMetrics(w io.Writer) {
	if s.store == nil {
		return
	}
	st := s.store.Stats()
	ops.WriteGaugeInt(w, "shapeserver_store_generation", "Manifest generation currently serving.", st.Generation)
	ops.WriteGaugeInt(w, "shapeserver_store_segments", "Live segment files in the current generation.", int64(len(st.Segments)))
	ops.WriteGaugeInt(w, "shapeserver_store_records", "Records visible in the current generation.", int64(st.Records))
	ops.WriteGaugeInt(w, "shapeserver_store_mapped_bytes", "Bytes of segment data currently memory-mapped.", st.MappedBytes)
	busy := int64(0)
	if st.Busy || s.mutationsIn.Load() > 0 {
		busy = 1
	}
	ops.WriteGaugeInt(w, "shapeserver_store_busy", "1 while an ingest or compaction is in flight.", busy)
	ops.WriteCounter(w, "shapeserver_store_reads_total", "Record fetches served by the segment store.", st.Reads)
	ops.WriteCounter(w, "shapeserver_store_ingests_total", "Online ingests applied to the store.", st.Ingests)
	ops.WriteCounter(w, "shapeserver_store_compactions_total", "Compactions applied to the store.", st.Compactions)
	ops.WriteCounter(w, "shapeserver_store_ingested_records_total", "Records appended through online ingest.", st.IngestedRecords)
	ops.WriteFamily(w, "shapeserver_store_segment_records", "gauge",
		"Records per live segment file.")
	for _, seg := range st.Segments {
		fmt.Fprintf(w, "shapeserver_store_segment_records{segment=%q} %d\n", seg.File, seg.Records)
	}
	if ps, ok := readProcStat(); ok {
		ops.WriteFamily(w, "shapeserver_page_faults_total", "counter",
			"Process page faults since start, by kind (major faults hit the disk — the mmap serving cost).")
		fmt.Fprintf(w, "shapeserver_page_faults_total{kind=\"minor\"} %d\n", ps.MinorFaults)
		fmt.Fprintf(w, "shapeserver_page_faults_total{kind=\"major\"} %d\n", ps.MajorFaults)
		ops.WriteGaugeInt(w, "shapeserver_rss_bytes",
			"Resident set size (stays well under mapped bytes when serving from page cache).", ps.RSSBytes)
	}
}

// writeWaterfallMetrics appends the cumulative pruning-waterfall breakdown:
// every rotation covered by every served search, attributed to the stage
// that disposed of it. The stage members plus survivors plus cancelled sum
// to the rotations counter — the same reconciliation a single request's
// stats satisfy.
func (s *Server) writeWaterfallMetrics(w io.Writer) {
	wf := explain.FromCounts(countsFromStats(s.Stats()))
	ops.WriteCounter(w, "shapeserver_pruning_waterfall_rotations_total",
		"Rotations covered by served searches (waterfall denominator).", wf.Rotations)
	ops.WriteFamily(w, "shapeserver_pruning_waterfall_members_total", "counter",
		"Rotations eliminated per waterfall stage across served searches.")
	for _, st := range wf.Eliminated {
		fmt.Fprintf(w, "shapeserver_pruning_waterfall_members_total{stage=%q} %d\n", st.Stage, st.Members)
	}
	ops.WriteCounter(w, "shapeserver_pruning_waterfall_survivors_total",
		"Rotations that survived every stage into a full distance evaluation.", wf.Survivors)
	ops.WriteCounter(w, "shapeserver_pruning_waterfall_cancelled_total",
		"Rotations left undisposed by cancelled searches.", wf.Cancelled)
}
