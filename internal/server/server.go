// Package server implements the shape-search serving layer: an HTTP/JSON
// front end over a loaded series database, with per-request deadlines wired
// into the library's cooperative cancellation, admission control (a bounded
// in-flight set plus a bounded wait queue, shedding load with 429s once both
// fill), and an LRU pool of compiled query sessions so repeated queries skip
// the O(n²) rotation-set build. Every response carries the request's own
// pruning breakdown (SearchStats), and the server aggregates those into a
// record served at /metrics and /debug/lbkeogh.
package server

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"lbkeogh"
)

// Config sizes a Server. The zero value of any field selects its default.
type Config struct {
	// DB is the series database searched by every request; all rows must
	// share one length. Labels optionally carries a class label per row.
	DB     []lbkeogh.Series
	Labels []int

	// MaxInflight bounds concurrent searches (default 4); MaxQueue bounds
	// requests waiting for a slot beyond them (default 16; above it the
	// server answers 429 immediately).
	MaxInflight int
	MaxQueue    int

	// PoolSize bounds the idle query-session pool (default 32 sessions).
	PoolSize int

	// DefaultTimeout bounds requests that set no timeout_ms (default 10s);
	// MaxTimeout caps what a request may ask for (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// TraceLog, when set, traces every pooled query session; the dashboard
	// and Perfetto export at /debug/lbkeogh read from it.
	TraceLog *lbkeogh.TraceLog
}

func (c *Config) fillDefaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 16
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 32
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
}

// Server serves rotation-invariant shape searches over one database.
// Create with New, mount Handler, and call BeginDrain before shutting the
// http.Server down so in-flight requests finish while new ones get 503s.
type Server struct {
	cfg  Config
	n    int // series length every query must match
	pool *Pool
	adm  *Admission
	mux  *http.ServeMux

	draining atomic.Bool
	requests atomic.Int64 // /v1/* requests accepted for processing
	timeouts atomic.Int64 // requests ended by deadline or client cancel
	drained  atomic.Int64 // requests refused because the server was draining

	mu  sync.Mutex
	agg lbkeogh.SearchStats // per-request deltas, summed
}

// New validates the database and builds the server.
func New(cfg Config) (*Server, error) {
	if len(cfg.DB) == 0 {
		return nil, fmt.Errorf("server: empty database")
	}
	n := len(cfg.DB[0])
	if n < 2 {
		return nil, fmt.Errorf("server: database series need >= 2 samples, got %d", n)
	}
	for i, row := range cfg.DB {
		if len(row) != n {
			return nil, fmt.Errorf("server: database series %d length %d != %d", i, len(row), n)
		}
	}
	if cfg.Labels != nil && len(cfg.Labels) != len(cfg.DB) {
		return nil, fmt.Errorf("server: %d labels for %d series", len(cfg.Labels), len(cfg.DB))
	}
	cfg.fillDefaults()
	s := &Server{
		cfg:  cfg,
		n:    n,
		pool: NewPool(cfg.PoolSize),
		adm:  NewAdmission(cfg.MaxInflight, cfg.MaxQueue),
	}
	s.mux = s.buildMux()
	return s, nil
}

// Len returns the series length every query must match.
func (s *Server) Len() int { return s.n }

// Handler returns the server's full mux: the /v1 search endpoints, healthz,
// and the observability surface (/metrics, /debug/lbkeogh, /debug/vars,
// /debug/pprof/).
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain puts the server into draining mode: search endpoints answer 503
// immediately while already-admitted requests run to completion. Call it
// right before http.Server.Shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats returns the server's cumulative search record: the sum of every
// served request's pruning breakdown (so the same reconciling outcome
// buckets as a single query's stats), with the trace log's per-stage
// latencies attached when tracing is on. Server implements
// lbkeogh.StatsSource, so it plugs straight into MetricsHandler and
// DebugHandler.
func (s *Server) Stats() lbkeogh.SearchStats {
	s.mu.Lock()
	out := s.agg
	s.mu.Unlock()
	if out.Rotations > 0 {
		out.PruneRate = 1 - float64(out.FullDistEvals)/float64(out.Rotations)
	}
	if out.Comparisons > 0 {
		out.StepsPerComparison = float64(out.Steps) / float64(out.Comparisons)
	}
	if s.cfg.TraceLog != nil {
		out.StageLatencies = s.cfg.TraceLog.StageLatencies()
	}
	return out
}

// record folds one request's stats delta into the server aggregate.
func (s *Server) record(d lbkeogh.SearchStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := &s.agg
	a.Comparisons += d.Comparisons
	a.Rotations += d.Rotations
	a.Steps += d.Steps
	a.FullDistEvals += d.FullDistEvals
	a.EarlyAbandons += d.EarlyAbandons
	a.WedgeNodeVisits += d.WedgeNodeVisits
	a.WedgeLeafVisits += d.WedgeLeafVisits
	a.WedgePrunedMembers += d.WedgePrunedMembers
	a.WedgeLeafLBPrunes += d.WedgeLeafLBPrunes
	a.FFTRejects += d.FFTRejects
	a.FFTRejectedMembers += d.FFTRejectedMembers
	a.FFTFallbacks += d.FFTFallbacks
	a.CancelledMembers += d.CancelledMembers
	a.IndexCandidates += d.IndexCandidates
	a.IndexFetches += d.IndexFetches
	a.DiskReads += d.DiskReads
	a.KChanges += d.KChanges
	for len(a.WedgePrunesByLevel) < len(d.WedgePrunesByLevel) {
		a.WedgePrunesByLevel = append(a.WedgePrunesByLevel, 0)
	}
	for i, v := range d.WedgePrunesByLevel {
		a.WedgePrunesByLevel[i] += v
	}
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/search", s.searchEndpoint(kindNearest))
	mux.HandleFunc("/v1/topk", s.searchEndpoint(kindTopK))
	mux.HandleFunc("/v1/range", s.searchEndpoint(kindRange))
	mux.HandleFunc("/healthz", s.handleHealthz)
	sources := map[string]lbkeogh.StatsSource{"shapeserver": s}
	logs := map[string]*lbkeogh.TraceLog{}
	if s.cfg.TraceLog != nil {
		logs["shapeserver"] = s.cfg.TraceLog
	}
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lbkeogh.MetricsHandler(sources).ServeHTTP(w, r)
		s.writeServerMetrics(w)
	}))
	mux.Handle("/debug/lbkeogh", lbkeogh.DebugHandler(sources, logs))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeServerMetrics appends the serving-layer families (admission, pool,
// request outcomes) to the Prometheus text the library already wrote.
func (s *Server) writeServerMetrics(w io.Writer) {
	emit := func(field, kind, help string, v int64) {
		fmt.Fprintf(w, "# HELP shapeserver_%s %s\n# TYPE shapeserver_%s %s\nshapeserver_%s %d\n",
			field, help, field, kind, field, v)
	}
	ad := s.adm.Stats()
	emit("inflight", "gauge", "Searches currently executing.", ad.Inflight)
	emit("queue_waiting", "gauge", "Requests waiting for an in-flight slot.", ad.Waiting)
	emit("admitted_total", "counter", "Requests granted an in-flight slot.", ad.Admitted)
	emit("rejected_total", "counter", "Requests shed with 429 (queue full).", ad.Rejected)
	pl := s.pool.Stats()
	emit("pool_idle", "gauge", "Idle query sessions in the pool.", int64(pl.Idle))
	emit("pool_hits_total", "counter", "Checkouts served by a pooled session.", pl.Hits)
	emit("pool_misses_total", "counter", "Checkouts that built a fresh session.", pl.Misses)
	emit("pool_evictions_total", "counter", "Idle sessions evicted by the pool cap.", pl.Evictions)
	emit("requests_total", "counter", "Search requests accepted for processing.", s.requests.Load())
	emit("timeouts_total", "counter", "Requests ended by deadline or client cancellation.", s.timeouts.Load())
	emit("drained_total", "counter", "Requests refused while draining.", s.drained.Load())
	drainingVal := int64(0)
	if s.Draining() {
		drainingVal = 1
	}
	emit("draining", "gauge", "1 while the server is draining.", drainingVal)
}
