package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lbkeogh/internal/obs/explain"
	"lbkeogh/internal/obs/expofmt"
)

func scrapeMetrics(t *testing.T, ts *httptest.Server) *expofmt.Exposition {
	t.Helper()
	code, body := getStatus(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	exp, err := expofmt.Parse(body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	return exp
}

func waterfallCounters(t *testing.T, ts *httptest.Server) (rot, surv, canc int64, stages map[string]int64) {
	t.Helper()
	exp := scrapeMetrics(t, ts)
	stages = map[string]int64{}
	for _, s := range exp.Find("shapeserver_pruning_waterfall_members_total") {
		stages[s.Labels["stage"]] = int64(s.Value)
	}
	return exp.Counter("shapeserver_pruning_waterfall_rotations_total", nil),
		exp.Counter("shapeserver_pruning_waterfall_survivors_total", nil),
		exp.Counter("shapeserver_pruning_waterfall_cancelled_total", nil),
		stages
}

// TestServerExplainSearch: an explain:true request returns a plan whose
// waterfall reconciles exactly with the response's own per-request stats AND
// with the /metrics waterfall counter deltas for that request.
func TestServerExplainSearch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rot0, surv0, canc0, st0 := waterfallCounters(t, ts)

	code, sr, raw := post(t, ts, "/v1/search", `{"query_index":1,"explain":true}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if sr.Plan == nil {
		t.Fatalf("explain:true returned no plan: %s", raw)
	}
	wf := sr.Plan.Waterfall
	if !wf.Reconciles() {
		t.Fatalf("plan waterfall does not reconcile: %+v", wf)
	}
	st := sr.Stats
	if wf.Rotations != st.Rotations || wf.Comparisons != st.Comparisons {
		t.Fatalf("waterfall rotations/comparisons %d/%d != stats %d/%d",
			wf.Rotations, wf.Comparisons, st.Rotations, st.Comparisons)
	}
	if got := wf.Stage(explain.StageFFT); got != st.FFTRejectedMembers {
		t.Errorf("fft stage %d != FFTRejectedMembers %d", got, st.FFTRejectedMembers)
	}
	if got := wf.Stage(explain.StageEnvelope); got != st.WedgePrunedMembers+st.WedgeLeafLBPrunes {
		t.Errorf("envelope stage %d != wedge prunes %d", got, st.WedgePrunedMembers+st.WedgeLeafLBPrunes)
	}
	if got := wf.Stage(explain.StageKernel); got != st.EarlyAbandons {
		t.Errorf("kernel stage %d != EarlyAbandons %d", got, st.EarlyAbandons)
	}
	if wf.Survivors != st.FullDistEvals || wf.Cancelled != st.CancelledMembers {
		t.Errorf("survivors/cancelled %d/%d != stats %d/%d",
			wf.Survivors, wf.Cancelled, st.FullDistEvals, st.CancelledMembers)
	}
	if len(sr.Plan.Survivors) == 0 {
		t.Error("1-NN explain plan has no survivor annotations")
	}

	// The /metrics waterfall counters moved by exactly this search.
	rot1, surv1, canc1, st1 := waterfallCounters(t, ts)
	if rot1-rot0 != wf.Rotations || surv1-surv0 != wf.Survivors || canc1-canc0 != wf.Cancelled {
		t.Errorf("metrics deltas rot/surv/canc %d/%d/%d != plan %d/%d/%d",
			rot1-rot0, surv1-surv0, canc1-canc0, wf.Rotations, wf.Survivors, wf.Cancelled)
	}
	for _, stage := range wf.Eliminated {
		if got := st1[stage.Stage] - st0[stage.Stage]; got != stage.Members {
			t.Errorf("stage %q metrics delta %d != plan %d", stage.Stage, got, stage.Members)
		}
	}

	// A pooled re-use of the same session without explain must NOT carry a
	// plan (the per-request arm/disarm contract).
	code, sr2, raw := post(t, ts, "/v1/search", `{"query_index":1}`)
	if code != http.StatusOK || !sr2.PoolHit {
		t.Fatalf("second request: status %d pool_hit %v (%s)", code, sr2.PoolHit, raw)
	}
	if sr2.Plan != nil {
		t.Fatal("plan leaked into a non-explain request on a pooled session")
	}
}

// TestServerExplainTopKAndRange: the other search flavours carry reconciling
// plans too.
func TestServerExplainTopKAndRange(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, tk, raw := post(t, ts, "/v1/topk", `{"query_index":2,"k":4,"explain":true}`)
	if code != http.StatusOK || tk.Plan == nil || !tk.Plan.Waterfall.Reconciles() {
		t.Fatalf("topk explain: status %d plan %+v (%s)", code, tk.Plan, raw)
	}
	if tk.Plan.Waterfall.Rotations != tk.Stats.Rotations {
		t.Fatalf("topk plan rotations %d != stats %d", tk.Plan.Waterfall.Rotations, tk.Stats.Rotations)
	}
	code, rg, raw := post(t, ts, "/v1/range", `{"query_index":2,"threshold":5,"explain":true}`)
	if code != http.StatusOK || rg.Plan == nil || !rg.Plan.Waterfall.Reconciles() {
		t.Fatalf("range explain: status %d plan %+v (%s)", code, rg.Plan, raw)
	}
}

// TestServerExplainSamplerMetrics: the server-owned sampler feeds from
// ordinary (non-explain) requests and its families appear on /metrics.
func TestServerExplainSamplerMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{ExplainSampleInterval: 1})
	for i := 0; i < 3; i++ {
		if code, _, raw := post(t, ts, "/v1/search", `{"query_index":3}`); code != http.StatusOK {
			t.Fatalf("search %d: %d (%s)", i, code, raw)
		}
	}
	exp := scrapeMetrics(t, ts)
	if exp.Counter("lbkeogh_explain_samples_total", nil) == 0 {
		t.Fatal("interval-1 server sampler measured nothing")
	}
	if got := exp.Types["lbkeogh_explain_bound_tightness_ratio"]; got != "histogram" {
		t.Fatalf("tightness family type = %q, want histogram", got)
	}
	// Negative interval disables the sampler; families must be absent, and
	// explain requests still work off the query-local aggregate.
	_, tsOff := newTestServer(t, Config{ExplainSampleInterval: -1})
	expOff := scrapeMetrics(t, tsOff)
	if len(expOff.Find("lbkeogh_explain_samples_total")) != 0 {
		t.Fatal("disabled sampler still exports explain families")
	}
	if code, sr, raw := post(t, tsOff, "/v1/search", `{"query_index":0,"explain":true}`); code != http.StatusOK || sr.Plan == nil {
		t.Fatalf("explain without sampler: status %d plan %v (%s)", code, sr.Plan, raw)
	}
}

// TestServerDebugIndex: the introspection endpoint serves a stable JSON
// report of the structural health of both index trees and the wedge
// hierarchy.
func TestServerDebugIndex(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := getStatus(t, ts.URL+"/debug/index")
	if code != http.StatusOK {
		t.Fatalf("/debug/index: %d (%s)", code, body)
	}
	var rep IndexReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/debug/index JSON: %v\n%s", err, body)
	}
	if rep.Dims != introspectDims {
		t.Errorf("dims = %d, want %d", rep.Dims, introspectDims)
	}
	if rep.Index.Objects != 20 || rep.Index.VPTree.Points != 20 || rep.Index.RTree.Points != 20 {
		t.Errorf("tree point counts = %d/%d/%d, want 20 each",
			rep.Index.Objects, rep.Index.VPTree.Points, rep.Index.RTree.Points)
	}
	if rep.Wedge.Members == 0 || rep.Wedge.RootArea <= 0 || len(rep.Wedge.KProfiles) == 0 {
		t.Errorf("wedge stats incomplete: %+v", rep.Wedge)
	}
	// Built once, served verbatim after.
	code2, body2 := getStatus(t, ts.URL+"/debug/index")
	if code2 != http.StatusOK || body2 != body {
		t.Error("second /debug/index response differs from the first")
	}
}

// TestDebugPanelShowsTightness: the /debug/lbkeogh page carries the bound
// tightness panel in both sampler states.
func TestDebugPanelShowsTightness(t *testing.T) {
	_, ts := newTestServer(t, Config{ExplainSampleInterval: 1})
	if code, _, raw := post(t, ts, "/v1/search", `{"query_index":0}`); code != http.StatusOK {
		t.Fatalf("search: %d (%s)", code, raw)
	}
	code, body := getStatus(t, ts.URL+"/debug/lbkeogh")
	if code != http.StatusOK || !strings.Contains(body, "bound tightness") {
		t.Fatalf("/debug/lbkeogh missing tightness panel: %d", code)
	}
	if !strings.Contains(body, "envelope") {
		t.Error("tightness panel lists no envelope bound after a sampled search")
	}
	_, tsOff := newTestServer(t, Config{ExplainSampleInterval: -1})
	code, body = getStatus(t, tsOff.URL+"/debug/lbkeogh")
	if code != http.StatusOK || !strings.Contains(body, "sampling is disabled") {
		t.Fatalf("disabled-sampler panel wrong: %d", code)
	}
}
