package server

// This file holds index-health introspection and the explain dashboard
// panel: /debug/index serves a structural report of the rotation-invariant
// index built over the serving database (VP-tree shape, R-tree overlap,
// wedge-hierarchy merge quality), and the /debug/lbkeogh explain panel
// renders the bound-tightness sampler's aggregate.

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"lbkeogh"
)

// introspectDims is the compressed dimensionality the introspection index is
// built with — the paper's default operating point (D = 8).
const introspectDims = 8

// introspectMaxRows caps how many rows the introspection index is built over.
// The report measures structural health (tree balance, overlap, merge
// quality), which a uniform stride sample preserves, so a million-shape store
// never pays a million-row index build for a debug endpoint.
const introspectMaxRows = 20000

// IndexReport is the /debug/index body: the index structures' health plus a
// representative wedge hierarchy (the one a query for database row 0 builds,
// since wedge sets are per-query).
type IndexReport struct {
	Dims int `json:"dims"`
	Rows int `json:"rows"` // rows the report was built over
	// SampledFrom is the full database size when Rows is a sample of it
	// (store mode over a large store); 0 when the report covers every row.
	SampledFrom int                    `json:"sampled_from,omitempty"`
	Generation  int64                  `json:"generation,omitempty"` // store generation (store mode)
	Index       lbkeogh.IndexHealth    `json:"index"`
	Wedge       lbkeogh.WedgeTreeStats `json:"wedge"`
}

// introspectRows picks the rows the report is built over: the whole database
// when it fits, else a uniform stride sample of the pinned view.
func introspectRows(rows []lbkeogh.Series) (sample []lbkeogh.Series, sampledFrom int) {
	if len(rows) <= introspectMaxRows {
		return rows, 0
	}
	stride := (len(rows) + introspectMaxRows - 1) / introspectMaxRows
	sample = make([]lbkeogh.Series, 0, len(rows)/stride+1)
	for i := 0; i < len(rows); i += stride {
		sample = append(sample, rows[i])
	}
	return sample, len(rows)
}

// buildIntrospection builds the report over the current database view.
func (s *Server) buildIntrospection() (IndexReport, error) {
	view := s.acquireView()
	defer view.release()
	if len(view.rows) == 0 {
		return IndexReport{}, fmt.Errorf("store is empty: nothing to introspect")
	}
	rows, sampledFrom := introspectRows(view.rows)
	ix, err := lbkeogh.NewIndex(rows, introspectDims)
	if err != nil {
		return IndexReport{}, fmt.Errorf("building introspection index: %w", err)
	}
	q, err := lbkeogh.NewQuery(rows[0], lbkeogh.Euclidean())
	if err != nil {
		return IndexReport{}, fmt.Errorf("building representative query: %w", err)
	}
	rep := IndexReport{
		Dims:        ix.Dims(),
		Rows:        len(rows),
		SampledFrom: sampledFrom,
		Index:       ix.Health(),
		Wedge:       q.WedgeStats(),
	}
	if s.store != nil {
		rep.Generation = s.store.Generation()
	}
	return rep, nil
}

// invalidateIntrospection marks the cached report stale after a store
// mutation; the next /debug/index request rebuilds it.
func (s *Server) invalidateIntrospection() {
	s.ixMu.Lock()
	s.ixBuilt = false
	s.ixMu.Unlock()
}

// handleDebugIndex serves the lazily built index-health report as JSON. The
// first request pays the index build; later ones are free until an ingest or
// compaction moves the store generation, which invalidates the cache.
func (s *Server) handleDebugIndex(w http.ResponseWriter, r *http.Request) {
	s.ixMu.Lock()
	stale := !s.ixBuilt
	if s.store != nil && s.ixGen != s.store.Generation() {
		stale = true
	}
	if stale {
		s.ixReport, s.ixErr = s.buildIntrospection()
		s.ixBuilt = true
		s.ixGen = s.ixReport.Generation
	}
	report, err := s.ixReport, s.ixErr
	s.ixMu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}

// explainPanel renders the bound-tightness sampler on /debug/lbkeogh.
func (s *Server) explainPanel() lbkeogh.DebugPanel {
	return lbkeogh.DebugPanel{
		Title: "bound tightness (sampled waterfalls)",
		HTML:  s.explainPanelHTML,
	}
}

type explainPanelData struct {
	Off  bool
	Snap lbkeogh.BoundSamplerSnapshot
}

func (s *Server) explainPanelHTML() template.HTML {
	data := explainPanelData{Off: s.sampler == nil}
	if s.sampler != nil {
		data.Snap = s.sampler.Snapshot()
	}
	var b strings.Builder
	if err := explainPanelTemplate.Execute(&b, data); err != nil {
		return template.HTML(template.HTMLEscapeString(err.Error()))
	}
	return template.HTML(b.String())
}

var explainPanelTemplate = template.Must(template.New("explain").Parse(`
{{if .Off}}<p class="meta">bound-tightness sampling is disabled (ExplainSampleInterval &lt; 0)</p>{{else}}
<p class="meta">{{.Snap.Sampled}} of {{.Snap.Seen}} comparisons sampled (interval {{.Snap.Interval}}) &middot;
{{.Snap.Survived}} survived every stage &middot; {{.Snap.KernelKills}} killed only by the exact kernel</p>
{{if .Snap.Bounds}}
<table>
<tr><th class="l">bound</th><th>checks</th><th>ratio p50</th><th>ratio p90</th><th>mean</th>
<th>false pos</th><th>fp fraction</th><th>eliminated</th></tr>
{{range .Snap.Bounds}}
<tr><td class="l">{{.Bound}}</td><td>{{.Checks}}</td>
<td>{{printf "%.2f" .P50Ratio}}</td><td>{{printf "%.2f" .P90Ratio}}</td><td>{{printf "%.3f" .MeanRatio}}</td>
<td>{{.FalsePositives}}</td><td>{{printf "%.4f" .FalsePositiveFraction}}</td><td>{{.Eliminated}}</td></tr>
{{end}}
</table>
<p class="meta">ratio = lower bound / true rotation-invariant distance (1 = perfectly tight) &middot;
full histograms with trace-ID exemplars on /metrics &middot;
index structure health at <a href="/debug/index">/debug/index</a></p>
{{end}}{{end}}
`))
