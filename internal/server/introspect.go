package server

// This file holds index-health introspection and the explain dashboard
// panel: /debug/index serves a structural report of the rotation-invariant
// index built over the serving database (VP-tree shape, R-tree overlap,
// wedge-hierarchy merge quality), and the /debug/lbkeogh explain panel
// renders the bound-tightness sampler's aggregate.

import (
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"lbkeogh"
)

// introspectDims is the compressed dimensionality the introspection index is
// built with — the paper's default operating point (D = 8).
const introspectDims = 8

// IndexReport is the /debug/index body: the index structures' health plus a
// representative wedge hierarchy (the one a query for database row 0 builds,
// since wedge sets are per-query).
type IndexReport struct {
	Dims  int                    `json:"dims"`
	Index lbkeogh.IndexHealth    `json:"index"`
	Wedge lbkeogh.WedgeTreeStats `json:"wedge"`
}

// buildIntrospection builds the index and a representative query once; the
// serving database is immutable, so the report never goes stale.
func (s *Server) buildIntrospection() (IndexReport, error) {
	ix, err := lbkeogh.NewIndex(s.cfg.DB, introspectDims)
	if err != nil {
		return IndexReport{}, fmt.Errorf("building introspection index: %w", err)
	}
	q, err := lbkeogh.NewQuery(s.cfg.DB[0], lbkeogh.Euclidean())
	if err != nil {
		return IndexReport{}, fmt.Errorf("building representative query: %w", err)
	}
	return IndexReport{Dims: ix.Dims(), Index: ix.Health(), Wedge: q.WedgeStats()}, nil
}

// handleDebugIndex serves the lazily built index-health report as JSON. The
// first request pays the index build; later ones are free.
func (s *Server) handleDebugIndex(w http.ResponseWriter, r *http.Request) {
	s.ixOnce.Do(func() { s.ixReport, s.ixErr = s.buildIntrospection() })
	if s.ixErr != nil {
		writeError(w, http.StatusInternalServerError, "%v", s.ixErr)
		return
	}
	writeJSON(w, http.StatusOK, s.ixReport)
}

// explainPanel renders the bound-tightness sampler on /debug/lbkeogh.
func (s *Server) explainPanel() lbkeogh.DebugPanel {
	return lbkeogh.DebugPanel{
		Title: "bound tightness (sampled waterfalls)",
		HTML:  s.explainPanelHTML,
	}
}

type explainPanelData struct {
	Off  bool
	Snap lbkeogh.BoundSamplerSnapshot
}

func (s *Server) explainPanelHTML() template.HTML {
	data := explainPanelData{Off: s.sampler == nil}
	if s.sampler != nil {
		data.Snap = s.sampler.Snapshot()
	}
	var b strings.Builder
	if err := explainPanelTemplate.Execute(&b, data); err != nil {
		return template.HTML(template.HTMLEscapeString(err.Error()))
	}
	return template.HTML(b.String())
}

var explainPanelTemplate = template.Must(template.New("explain").Parse(`
{{if .Off}}<p class="meta">bound-tightness sampling is disabled (ExplainSampleInterval &lt; 0)</p>{{else}}
<p class="meta">{{.Snap.Sampled}} of {{.Snap.Seen}} comparisons sampled (interval {{.Snap.Interval}}) &middot;
{{.Snap.Survived}} survived every stage &middot; {{.Snap.KernelKills}} killed only by the exact kernel</p>
{{if .Snap.Bounds}}
<table>
<tr><th class="l">bound</th><th>checks</th><th>ratio p50</th><th>ratio p90</th><th>mean</th>
<th>false pos</th><th>fp fraction</th><th>eliminated</th></tr>
{{range .Snap.Bounds}}
<tr><td class="l">{{.Bound}}</td><td>{{.Checks}}</td>
<td>{{printf "%.2f" .P50Ratio}}</td><td>{{printf "%.2f" .P90Ratio}}</td><td>{{printf "%.3f" .MeanRatio}}</td>
<td>{{.FalsePositives}}</td><td>{{printf "%.4f" .FalsePositiveFraction}}</td><td>{{.Eliminated}}</td></tr>
{{end}}
</table>
<p class="meta">ratio = lower bound / true rotation-invariant distance (1 = perfectly tight) &middot;
full histograms with trace-ID exemplars on /metrics &middot;
index structure health at <a href="/debug/index">/debug/index</a></p>
{{end}}{{end}}
`))
