package server

import (
	"fmt"
	"html/template"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"lbkeogh"
	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/ops"
)

// The label vocabularies the rolling windows are keyed by. Eager creation
// keeps every family present on /metrics from the first scrape, so absence
// never has to be disambiguated from zero.
var (
	telemetryEndpoints  = []string{"search", "topk", "range", "ingest", "compact"}
	telemetryStrategies = []string{"wedge", "brute", "early_abandon", "fft"}
)

func endpointName(kind searchKind) string {
	switch kind {
	case kindTopK:
		return "topk"
	case kindRange:
		return "range"
	default:
		return "search"
	}
}

// telemetry is the server's operational-telemetry state: the request logger,
// the request-ID source, and the rolling RED / SLO / pruning-power windows.
// Everything here is request-rate accounting — one Observe per finished
// request, nothing on the comparison hot path.
type telemetry struct {
	logger *slog.Logger
	ids    *ops.IDSource
	slo    ops.SLO

	// endpoints holds one RED window per /v1 endpoint (every terminal
	// outcome, including refusals); strategies one per search strategy
	// (only requests that actually ran a search); prune one pruning-power
	// window per strategy.
	endpoints  map[string]*ops.RED
	strategies map[string]*ops.RED
	prune      map[string]*ops.PruneWindow

	// reqTotals counts every terminal request outcome since process start,
	// by endpoint and error class. Unlike the rolling windows these are
	// cumulative, so an external scraper can delta two scrapes and compare
	// against its own accounting exactly — the seam shapeload's client/server
	// cross-validation hangs off.
	reqTotals map[string]map[string]*atomic.Int64
}

func newTelemetry(cfg Config) *telemetry {
	wcfg := ops.WindowConfig{Slots: cfg.WindowSlots, SlotDur: cfg.WindowSlotDur}
	t := &telemetry{
		logger:     ops.Or(cfg.Logger),
		ids:        ops.NewIDSource(),
		slo:        cfg.SLO.WithDefaults(),
		endpoints:  map[string]*ops.RED{},
		strategies: map[string]*ops.RED{},
		prune:      map[string]*ops.PruneWindow{},
		reqTotals:  map[string]map[string]*atomic.Int64{},
	}
	for _, ep := range telemetryEndpoints {
		t.endpoints[ep] = ops.NewRED(wcfg)
		t.reqTotals[ep] = map[string]*atomic.Int64{}
		for _, class := range ops.ClassNames() {
			t.reqTotals[ep][class] = &atomic.Int64{}
		}
	}
	for _, st := range telemetryStrategies {
		t.strategies[st] = ops.NewRED(wcfg)
		t.prune[st] = ops.NewPruneWindow(wcfg)
	}
	return t
}

// observeRequest folds one terminal request outcome into its endpoint window
// and the cumulative endpoint/class totals.
func (t *telemetry) observeRequest(endpoint string, status int, dur time.Duration, traceID int64) {
	t.endpoints[endpoint].Observe(status, dur, traceID)
	t.reqTotals[endpoint][ops.ErrorClass(status)].Add(1)
}

// observeSearch folds one executed search into its strategy's RED and
// pruning-power windows.
func (t *telemetry) observeSearch(strategy string, status int, dur time.Duration, traceID int64, delta lbkeogh.SearchStats) {
	t.strategies[strategy].Observe(status, dur, traceID)
	t.prune[strategy].Observe(countsFromStats(delta), delta.WedgePrunesByLevel)
}

// countsFromStats converts a public per-request stats delta to the internal
// plain-counter form the ops windows aggregate (ops must not import the root
// package, so the conversion lives on the serving side).
func countsFromStats(d lbkeogh.SearchStats) obs.Counts {
	return obs.Counts{
		Comparisons:        d.Comparisons,
		Rotations:          d.Rotations,
		Steps:              d.Steps,
		FullDistEvals:      d.FullDistEvals,
		EarlyAbandons:      d.EarlyAbandons,
		WedgeNodeVisits:    d.WedgeNodeVisits,
		WedgeLeafVisits:    d.WedgeLeafVisits,
		WedgePrunedMembers: d.WedgePrunedMembers,
		WedgeLeafLBPrunes:  d.WedgeLeafLBPrunes,
		FFTRejects:         d.FFTRejects,
		FFTRejectedMembers: d.FFTRejectedMembers,
		FFTFallbacks:       d.FFTFallbacks,
		CancelledMembers:   d.CancelledMembers,
		IndexCandidates:    d.IndexCandidates,
		IndexFetches:       d.IndexFetches,
		DiskReads:          d.DiskReads,
		KChanges:           d.KChanges,
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeMetrics appends the rolling-window families, SLO burn rates, and the
// runtime telemetry to the /metrics exposition.
func (t *telemetry) writeMetrics(w io.Writer) {
	eps := sortedKeys(t.endpoints)
	snaps := map[string]ops.REDSnapshot{}
	for _, ep := range eps {
		snaps[ep] = t.endpoints[ep].Snapshot()
	}

	ops.WriteFamily(w, "shapeserver_request_duration_seconds", "histogram",
		"Request latency over the trailing window, by endpoint; buckets carry trace-ID exemplars.")
	for _, ep := range eps {
		writeREDHistogram(w, "shapeserver_request_duration_seconds", ep, snaps[ep])
	}

	ops.WriteFamily(w, "shapeserver_endpoint_requests_total", "counter",
		"Terminal request outcomes since process start, by endpoint and error class (the cumulative counters shapeload cross-validates against).")
	for _, ep := range eps {
		for _, class := range ops.ClassNames() {
			fmt.Fprintf(w, "shapeserver_endpoint_requests_total{endpoint=%q,class=%q} %d\n",
				ep, class, t.reqTotals[ep][class].Load())
		}
	}

	ops.WriteFamily(w, "shapeserver_window_requests", "gauge",
		"Requests observed inside the rolling window, by endpoint.")
	for _, ep := range eps {
		fmt.Fprintf(w, "shapeserver_window_requests{endpoint=%q} %d\n", ep, snaps[ep].Requests)
	}
	ops.WriteFamily(w, "shapeserver_window_request_rate", "gauge",
		"Requests per second over the rolling window, by endpoint.")
	for _, ep := range eps {
		fmt.Fprintf(w, "shapeserver_window_request_rate{endpoint=%q} %s\n", ep, ops.FormatFloat(snaps[ep].RatePerSec))
	}
	ops.WriteFamily(w, "shapeserver_window_errors", "gauge",
		"Requests inside the rolling window by endpoint and error class.")
	for _, ep := range eps {
		for _, class := range sortedKeys(snaps[ep].Classes) {
			fmt.Fprintf(w, "shapeserver_window_errors{endpoint=%q,class=%q} %d\n",
				ep, class, snaps[ep].Classes[class])
		}
	}

	ops.WriteGaugeFloat(w, "shapeserver_slo_latency_objective_seconds",
		"The latency objective requests are judged against.", t.slo.WithDefaults().LatencyObjective.Seconds())
	ops.WriteFamily(w, "shapeserver_slo_latency_burn_rate", "gauge",
		"Latency error-budget burn rate over the rolling window (1.0 consumes the budget exactly on schedule).")
	burns := map[string]ops.Burn{}
	for _, ep := range eps {
		burns[ep] = t.slo.Burn(snaps[ep])
		fmt.Fprintf(w, "shapeserver_slo_latency_burn_rate{endpoint=%q} %s\n", ep, ops.FormatFloat(burns[ep].LatencyBurnRate))
	}
	ops.WriteFamily(w, "shapeserver_slo_error_burn_rate", "gauge",
		"Error-budget burn rate over the rolling window (server-attributable classes only).")
	for _, ep := range eps {
		fmt.Fprintf(w, "shapeserver_slo_error_burn_rate{endpoint=%q} %s\n", ep, ops.FormatFloat(burns[ep].ErrorBurnRate))
	}

	sts := sortedKeys(t.strategies)
	ops.WriteFamily(w, "shapeserver_window_strategy_requests", "gauge",
		"Executed searches inside the rolling window, by strategy.")
	for _, st := range sts {
		fmt.Fprintf(w, "shapeserver_window_strategy_requests{strategy=%q} %d\n", st, t.strategies[st].Snapshot().Requests)
	}
	ops.WriteFamily(w, "shapeserver_window_strategy_p99_seconds", "gauge",
		"Bucket-resolution p99 search latency inside the rolling window, by strategy.")
	for _, st := range sts {
		fmt.Fprintf(w, "shapeserver_window_strategy_p99_seconds{strategy=%q} %s\n",
			st, ops.FormatFloat(float64(t.strategies[st].Snapshot().P99NS)/1e9))
	}

	prunes := map[string]ops.PruneSnapshot{}
	for _, st := range sts {
		prunes[st] = t.prune[st].Snapshot()
	}
	ops.WriteFamily(w, "shapeserver_window_rotations", "gauge",
		"Rotations covered by searches inside the rolling window, by strategy.")
	for _, st := range sts {
		fmt.Fprintf(w, "shapeserver_window_rotations{strategy=%q} %d\n", st, prunes[st].Counts.Rotations)
	}
	ops.WriteFamily(w, "shapeserver_window_prune_rate", "gauge",
		"Fraction of covered rotations dismissed without a full distance evaluation, by strategy.")
	for _, st := range sts {
		fmt.Fprintf(w, "shapeserver_window_prune_rate{strategy=%q} %s\n", st, ops.FormatFloat(prunes[st].PruneRate))
	}
	ops.WriteFamily(w, "shapeserver_window_fft_reject_rate", "gauge",
		"Fraction of covered rotations rejected by the FFT magnitude screen, by strategy.")
	for _, st := range sts {
		fmt.Fprintf(w, "shapeserver_window_fft_reject_rate{strategy=%q} %s\n", st, ops.FormatFloat(prunes[st].FFTRejectRate))
	}
	ops.WriteFamily(w, "shapeserver_window_level_prune_fraction", "gauge",
		"Fraction of covered rotations pruned at each wedge dendrogram level, by strategy.")
	for _, st := range sts {
		for level, frac := range prunes[st].LevelFraction {
			fmt.Fprintf(w, "shapeserver_window_level_prune_fraction{strategy=%q,level=\"%d\"} %s\n",
				st, level, ops.FormatFloat(frac))
		}
	}
	ops.WriteFamily(w, "shapeserver_window_k_changes", "gauge",
		"Dynamic-K adjustments inside the rolling window, by strategy.")
	for _, st := range sts {
		fmt.Fprintf(w, "shapeserver_window_k_changes{strategy=%q} %d\n", st, prunes[st].KChanges)
	}

	ops.WriteRuntimeMetrics(w)
}

// writeREDHistogram emits one endpoint's cumulative latency buckets in
// seconds, attaching the window's exemplars OpenMetrics-style. Interior
// buckets where the cumulative count does not change are skipped unless they
// carry an exemplar.
func writeREDHistogram(w io.Writer, name, endpoint string, snap ops.REDSnapshot) {
	exemplars := map[int64]ops.BucketExemplar{}
	for _, ex := range snap.Exemplars {
		exemplars[ex.UpperBoundNS] = ex
	}
	var cum, prev int64
	for i, c := range snap.Buckets {
		bound := obs.BucketBound(i)
		if bound < 0 {
			break // overflow folds into +Inf
		}
		cum += c
		ex, hasEx := exemplars[bound]
		if cum == prev && i > 0 && !hasEx {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=%q} %d", name, endpoint, ops.FormatFloat(float64(bound)/1e9), cum)
		if hasEx {
			fmt.Fprintf(w, " # {trace_id=\"%d\"} %s %s",
				ex.TraceID, ops.FormatFloat(float64(ex.DurNS)/1e9),
				ops.FormatFloat(float64(ex.Wall.UnixNano())/1e9))
		}
		fmt.Fprintln(w)
		prev = cum
	}
	total := cum + snap.Buckets[len(snap.Buckets)-1]
	fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d", name, endpoint, total)
	if ex, ok := exemplars[-1]; ok {
		fmt.Fprintf(w, " # {trace_id=\"%d\"} %s %s",
			ex.TraceID, ops.FormatFloat(float64(ex.DurNS)/1e9),
			ops.FormatFloat(float64(ex.Wall.UnixNano())/1e9))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%s_sum{endpoint=%q} %s\n", name, endpoint, ops.FormatFloat(float64(snap.DurSumNS)/1e9))
	fmt.Fprintf(w, "%s_count{endpoint=%q} %d\n", name, endpoint, total)
}

// panel renders the rolling windows as a dashboard section for
// /debug/lbkeogh.
func (t *telemetry) panel() lbkeogh.DebugPanel {
	return lbkeogh.DebugPanel{
		Title: "serving telemetry (rolling windows)",
		HTML:  t.panelHTML,
	}
}

type telemetryPanelData struct {
	Endpoints []endpointRow
	Prune     []pruneRow
}

type endpointRow struct {
	Endpoint string
	Snap     ops.REDSnapshot
	Burn     ops.Burn
	P50, P99 time.Duration
}

type pruneRow struct {
	Strategy string
	Snap     ops.PruneSnapshot
	Levels   string
}

func (t *telemetry) panelHTML() template.HTML {
	var data telemetryPanelData
	for _, ep := range sortedKeys(t.endpoints) {
		snap := t.endpoints[ep].Snapshot()
		data.Endpoints = append(data.Endpoints, endpointRow{
			Endpoint: ep,
			Snap:     snap,
			Burn:     t.slo.Burn(snap),
			P50:      time.Duration(max64(snap.P50NS, 0)),
			P99:      time.Duration(max64(snap.P99NS, 0)),
		})
	}
	for _, st := range sortedKeys(t.prune) {
		snap := t.prune[st].Snapshot()
		if snap.Counts.Rotations == 0 {
			continue
		}
		fracs := make([]string, len(snap.LevelFraction))
		for i, f := range snap.LevelFraction {
			fracs[i] = fmt.Sprintf("%.2f", f)
		}
		data.Prune = append(data.Prune, pruneRow{Strategy: st, Snap: snap, Levels: strings.Join(fracs, " ")})
	}
	var b strings.Builder
	if err := telemetryPanelTemplate.Execute(&b, data); err != nil {
		return template.HTML(template.HTMLEscapeString(err.Error()))
	}
	return template.HTML(b.String())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

var telemetryPanelTemplate = template.Must(template.New("telemetry").Parse(`
<table>
<tr><th class="l">endpoint</th><th>requests</th><th>rate/s</th>
<th>ok</th><th>client</th><th>rejected</th><th>timeout</th><th>server</th>
<th>p50</th><th>p99</th><th>latency burn</th><th>error burn</th></tr>
{{range .Endpoints}}
<tr><td class="l">{{.Endpoint}}</td><td>{{.Snap.Requests}}</td><td>{{printf "%.2f" .Snap.RatePerSec}}</td>
<td>{{index .Snap.Classes "ok"}}</td><td>{{index .Snap.Classes "client"}}</td>
<td>{{index .Snap.Classes "rejected"}}</td><td>{{index .Snap.Classes "timeout"}}</td>
<td>{{index .Snap.Classes "server"}}</td>
<td>{{.P50}}</td><td>{{.P99}}</td>
<td>{{printf "%.2f" .Burn.LatencyBurnRate}}</td><td>{{printf "%.2f" .Burn.ErrorBurnRate}}</td></tr>
{{end}}
</table>
{{if .Prune}}
<table>
<tr><th class="l">strategy</th><th>rotations</th><th>prune rate</th><th>fft reject</th>
<th>k changes</th><th class="l">level fractions</th></tr>
{{range .Prune}}
<tr><td class="l">{{.Strategy}}</td><td>{{.Snap.Counts.Rotations}}</td>
<td>{{printf "%.4f" .Snap.PruneRate}}</td><td>{{printf "%.4f" .Snap.FFTRejectRate}}</td>
<td>{{.Snap.KChanges}}</td><td class="l">{{.Levels}}</td></tr>
{{end}}
</table>
{{end}}
<p class="meta">quantiles are bucket-resolution (power-of-two bounds) &middot;
exemplars on /metrics link latency buckets to retained traces &middot;
<a href="/debug/profiles">continuous profiling ring</a></p>
`))
