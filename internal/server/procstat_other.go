//go:build !linux

package server

// procStat mirrors the linux build's struct; see procstat_linux.go.
type procStat struct {
	MinorFaults int64
	MajorFaults int64
	RSSBytes    int64
}

// readProcStat has no portable source off linux; the page-fault metric
// families are simply absent there.
func readProcStat() (procStat, bool) {
	return procStat{}, false
}
