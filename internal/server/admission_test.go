package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestAdmissionImmediateAndQueue(t *testing.T) {
	a := NewAdmission(1, 1)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Slot busy: one waiter is allowed, the second is shed.
	done := make(chan error, 1)
	go func() { done <- a.Acquire(context.Background()) }()
	for a.Stats().Waiting == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("third acquire: want ErrSaturated, got %v", err)
	}
	a.Release()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.Release()
	st := a.Stats()
	if st.Admitted != 2 || st.Rejected != 1 || st.Inflight != 0 || st.Waiting != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAdmissionQueuedContextExpiry(t *testing.T) {
	a := NewAdmission(1, 4)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := a.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	a.Release()
	if st := a.Stats(); st.Waiting != 0 || st.Inflight != 0 {
		t.Fatalf("gauges not restored: %+v", st)
	}
}
