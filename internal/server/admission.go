package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSaturated is returned by Admission.Acquire when both the in-flight
// slots and the wait queue are full; the HTTP layer maps it to 429.
var ErrSaturated = errors.New("server: saturated: in-flight slots and wait queue full")

// Admission is the server's load shedder: a bounded set of in-flight slots
// plus a bounded wait queue in front of them. A request either gets a slot
// immediately, waits in the queue until one frees (or its context expires),
// or — when the queue itself is full — is rejected at once, so a saturated
// server answers cheaply instead of accumulating work.
type Admission struct {
	slots    chan struct{}
	maxQueue int64

	waiting  atomic.Int64
	inflight atomic.Int64
	rejected atomic.Int64
	admitted atomic.Int64
}

// NewAdmission sizes the shedder: maxInflight concurrent searches (min 1)
// and up to maxQueue waiters beyond them (0 means reject as soon as every
// slot is busy).
func NewAdmission(maxInflight, maxQueue int) *Admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Admission{slots: make(chan struct{}, maxInflight), maxQueue: int64(maxQueue)}
}

// Acquire claims an in-flight slot, waiting in the bounded queue if
// necessary. It returns ErrSaturated when the queue is full, or the
// context's error if it expires while queued. On nil return the caller owns
// a slot and must Release it.
func (a *Admission) Acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inflight.Add(1)
		return nil
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return ErrSaturated
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		a.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed by a successful Acquire.
func (a *Admission) Release() {
	a.inflight.Add(-1)
	<-a.slots
}

// AdmissionStats is a point-in-time view of the shedder.
type AdmissionStats struct {
	// Inflight and Waiting are current occupancy gauges; Admitted and
	// Rejected cumulative totals since the server started.
	Inflight int64 `json:"inflight"`
	Waiting  int64 `json:"waiting"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
}

// Stats snapshots the shedder's gauges and totals.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Inflight: a.inflight.Load(),
		Waiting:  a.waiting.Load(),
		Admitted: a.admitted.Load(),
		Rejected: a.rejected.Load(),
	}
}
