package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lbkeogh"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = lbkeogh.SyntheticProjectilePoints(7, 20, 32)
		labels := make([]int, len(cfg.DB))
		for i := range labels {
			labels[i] = i % 3
		}
		cfg.Labels = labels
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, SearchResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sr SearchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatalf("%s: bad response JSON: %v\n%s", path, err, raw)
		}
	}
	return resp.StatusCode, sr, string(raw)
}

func TestServerSearchBasicAndPoolHit(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceLog: lbkeogh.NewTraceLog(lbkeogh.WithSampleRate(1))})
	code, sr, raw := post(t, ts, "/v1/search", `{"query_index":0}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, raw)
	}
	if len(sr.Results) != 1 || sr.Results[0].Index != 0 || sr.Results[0].Dist > 1e-9 {
		t.Fatalf("self search results = %+v", sr.Results)
	}
	if sr.Results[0].Label == nil || *sr.Results[0].Label != 0 {
		t.Fatalf("label = %v, want 0", sr.Results[0].Label)
	}
	if !sr.Stats.Reconciles() || sr.Stats.Comparisons == 0 {
		t.Fatalf("per-request stats bad: %+v", sr.Stats)
	}
	if sr.PoolHit {
		t.Fatal("first request cannot be a pool hit")
	}
	code, sr2, raw := post(t, ts, "/v1/search", `{"query_index":0}`)
	if code != http.StatusOK || !sr2.PoolHit {
		t.Fatalf("second request: status %d pool_hit %v (%s)", code, sr2.PoolHit, raw)
	}
	// Per-request stats cover only this search, not the cumulative session.
	if sr2.Stats.Comparisons != sr.Stats.Comparisons {
		t.Fatalf("per-request comparisons drifted: %d then %d", sr.Stats.Comparisons, sr2.Stats.Comparisons)
	}
	// The parallel path answers identically.
	code, sp, raw := post(t, ts, "/v1/search", `{"query_index":0,"parallel":2}`)
	if code != http.StatusOK || sp.Results[0].Index != 0 {
		t.Fatalf("parallel search: status %d %+v (%s)", code, sp.Results, raw)
	}
}

func TestServerTopKAndRange(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, tk, raw := post(t, ts, "/v1/topk", `{"query_index":2,"k":5}`)
	if code != http.StatusOK || len(tk.Results) != 5 {
		t.Fatalf("topk: status %d, %d results (%s)", code, len(tk.Results), raw)
	}
	for i := 1; i < len(tk.Results); i++ {
		if tk.Results[i-1].Dist > tk.Results[i].Dist {
			t.Fatalf("topk not ascending: %+v", tk.Results)
		}
	}
	threshold := tk.Results[3].Dist
	code, rg, raw := post(t, ts, "/v1/range", fmt.Sprintf(`{"query_index":2,"threshold":%g}`, threshold))
	if code != http.StatusOK {
		t.Fatalf("range: status %d (%s)", code, raw)
	}
	if len(rg.Results) != 3 {
		t.Fatalf("range below %g returned %d hits, want 3: %+v", threshold, len(rg.Results), rg.Results)
	}
	for i, h := range rg.Results {
		if h.Index != tk.Results[i].Index || h.Dist != tk.Results[i].Dist {
			t.Fatalf("range hit %d = %+v, want %+v", i, h, tk.Results[i])
		}
	}
}

func TestServerBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/search", `{}`, http.StatusBadRequest},
		{"/v1/search", `{"query_index":0,"series":[1,2,3]}`, http.StatusBadRequest},
		{"/v1/search", `{"query_index":99}`, http.StatusBadRequest},
		{"/v1/search", `{"series":[1,2,3]}`, http.StatusBadRequest}, // length mismatch
		{"/v1/search", `{"query_index":0,"measure":"cosine"}`, http.StatusBadRequest},
		{"/v1/search", `{"query_index":0,"strategy":"magic"}`, http.StatusBadRequest},
		{"/v1/search", `{"query_index":0,"measure":"dtw","strategy":"fft"}`, http.StatusBadRequest},
		{"/v1/search", `{"query_index":0,"timeout_ms":-5}`, http.StatusBadRequest},
		{"/v1/search", `{"query_index":0,"bogus_field":1}`, http.StatusBadRequest},
		{"/v1/search", `not json`, http.StatusBadRequest},
		{"/v1/range", `{"query_index":0}`, http.StatusBadRequest}, // no threshold
	}
	for _, c := range cases {
		if code, _, raw := post(t, ts, c.path, c.body); code != c.want {
			t.Fatalf("%s %s: status %d, want %d (%s)", c.path, c.body, code, c.want, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/search: status %d, want 405", resp.StatusCode)
	}
}

// TestServerDeadline exercises the 504 path: a deliberately hopeless
// deadline on a brute-force DTW scan. The cancelled search's undisposed
// rotations must land in the server aggregate's CancelledMembers bucket.
func TestServerDeadline(t *testing.T) {
	srv, ts := newTestServer(t, Config{DB: lbkeogh.SyntheticProjectilePoints(11, 150, 64)})
	code, _, raw := post(t, ts, "/v1/search", `{"query_index":0,"measure":"dtw","strategy":"brute","timeout_ms":1}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", code, raw)
	}
	if !strings.Contains(raw, "deadline") {
		t.Fatalf("error body should mention the deadline: %s", raw)
	}
	agg := srv.Stats()
	if agg.CancelledMembers == 0 || !agg.Reconciles() {
		t.Fatalf("aggregate after timeout: %+v", agg)
	}
	if srv.timeouts.Load() == 0 {
		t.Fatal("timeout counter not bumped")
	}
	// The pooled session survived the cancellation: the same spec without a
	// deadline must succeed (and reuse the session).
	code, sr, raw := post(t, ts, "/v1/search", `{"query_index":0,"measure":"dtw","strategy":"brute"}`)
	if code != http.StatusOK || !sr.PoolHit || sr.Results[0].Index != 0 {
		t.Fatalf("post-timeout reuse: status %d pool_hit %v %+v (%s)", code, sr.PoolHit, sr.Results, raw)
	}
}

// TestServerConcurrentSaturation drives the admission controller from 12
// parallel clients against a single in-flight slot with a one-deep queue:
// some requests must succeed, the overflow must be shed with 429, and the
// books must balance. Run under -race this doubles as the serving layer's
// data-race check.
func TestServerConcurrentSaturation(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		DB:          lbkeogh.SyntheticProjectilePoints(13, 120, 64),
		MaxInflight: 1,
		MaxQueue:    1,
	})
	const clients = 12
	codes := make([]int, clients)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			// brute DTW is slow enough (tens of ms) that simultaneous
			// requests genuinely overlap even on one CPU.
			resp, err := http.Post(ts.URL+"/v1/search", "application/json",
				strings.NewReader(`{"query_index":0,"measure":"dtw","strategy":"brute"}`))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	start.Done()
	done.Wait()
	var ok200, rej429, other int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			rej429++
		default:
			other++
		}
	}
	if other != 0 {
		t.Fatalf("unexpected statuses: %v", codes)
	}
	if ok200 == 0 || rej429 == 0 {
		t.Fatalf("want both successes and 429s under saturation, got %d ok / %d rejected", ok200, rej429)
	}
	ad := srv.adm.Stats()
	if ad.Rejected != int64(rej429) {
		t.Fatalf("admission counted %d rejections, clients saw %d", ad.Rejected, rej429)
	}
	if ad.Inflight != 0 || ad.Waiting != 0 {
		t.Fatalf("gauges not drained: %+v", ad)
	}
	if agg := srv.Stats(); !agg.Reconciles() {
		t.Fatalf("aggregate does not reconcile after concurrent load: %+v", agg)
	}
}

func TestServerDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if code, _, _ := post(t, ts, "/v1/search", `{"query_index":0}`); code != http.StatusOK {
		t.Fatalf("pre-drain search failed: %d", code)
	}
	srv.BeginDrain()
	code, _, raw := post(t, ts, "/v1/search", `{"query_index":0}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining search: status %d, want 503 (%s)", code, raw)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// /healthz aliases liveness: it stays "ok" (200) through a drain and
	// reports the drain as a flag; routing decisions belong to /readyz.
	if h.Status != "ok" || !h.Draining || h.Requests != 1 {
		t.Fatalf("healthz = %+v", h)
	}
	if srv.drained.Load() == 0 {
		t.Fatal("drained counter not bumped")
	}
}

func TestServerMetricsAndDebug(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceLog: lbkeogh.NewTraceLog(lbkeogh.WithSampleRate(1))})
	if code, _, _ := post(t, ts, "/v1/search", `{"query_index":1}`); code != http.StatusOK {
		t.Fatalf("search failed: %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"shapeserver_comparisons", "shapeserver_requests_total",
		"shapeserver_pool_misses_total", "shapeserver_rejected_total",
		"shapeserver_inflight", "shapeserver_draining",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	resp, err = http.Get(ts.URL + "/debug/lbkeogh")
	if err != nil {
		t.Fatal(err)
	}
	dash, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(dash), "shapeserver") {
		t.Fatalf("/debug/lbkeogh: status %d", resp.StatusCode)
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for empty database")
	}
	if _, err := New(Config{DB: []lbkeogh.Series{{1, 2, 3}, {1, 2}}}); err == nil {
		t.Fatal("want error for ragged database")
	}
	if _, err := New(Config{DB: []lbkeogh.Series{{1, 2, 3}, {4, 5, 6}}, Labels: []int{1}}); err == nil {
		t.Fatal("want error for label count mismatch")
	}
}

func TestServerDefaultTimeoutApplies(t *testing.T) {
	// A tiny server-wide default deadline must bound requests that ask for
	// nothing — and clamp ones that ask for more than the maximum.
	_, ts := newTestServer(t, Config{
		DB:             lbkeogh.SyntheticProjectilePoints(17, 150, 64),
		DefaultTimeout: time.Millisecond,
		MaxTimeout:     2 * time.Millisecond,
	})
	if code, _, raw := post(t, ts, "/v1/search", `{"query_index":0,"measure":"dtw","strategy":"brute"}`); code != http.StatusGatewayTimeout {
		t.Fatalf("default deadline: status %d, want 504 (%s)", code, raw)
	}
	if code, _, raw := post(t, ts, "/v1/search", `{"query_index":0,"measure":"dtw","strategy":"brute","timeout_ms":60000}`); code != http.StatusGatewayTimeout {
		t.Fatalf("clamped deadline: status %d, want 504 (%s)", code, raw)
	}
}
