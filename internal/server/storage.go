package server

// This file is the storage-plane dashboard: /debug/storage renders the
// segment heatmap (per-segment access recency × page residency), the
// cold/warm fetch split, and the storage event journal collected by the
// storeobs recorder the process attached to the segment store. The same
// recorder's per-segment aggregates are exposed on /metrics as the
// shapeserver_segment_* families written by writeSegmentMetrics.

import (
	"fmt"
	"html/template"
	"io"
	"net/http"
	"sort"
	"time"

	"lbkeogh/internal/obs/ops"
	"lbkeogh/internal/obs/storeobs"
)

// storageJournalTail bounds how many journal events the dashboard and the
// JSON report carry (newest last); ?format=jsonl streams the full ring.
const storageJournalTail = 64

// StorageSegment is one row of the /debug/storage heatmap: a live segment
// file joined across the store manifest (records), the access accountant
// (reads, bytes, first-touch pages), and the residency sampler.
type StorageSegment struct {
	Segment   string `json:"segment"`
	Records   int64  `json:"records"`
	FileBytes int64  `json:"file_bytes"`

	// Reads and ReadBytes are per column (raw, fft, paa, meta).
	Reads      [storeobs.NumColumns]int64 `json:"reads"`
	ReadBytes  [storeobs.NumColumns]int64 `json:"read_bytes"`
	TotalReads int64                      `json:"total_reads"`

	// TouchedFraction is the fraction of the file's pages ever first-touched
	// through a read — the access-coverage axis of the heatmap.
	Pages           int64   `json:"pages"`
	TouchedPages    int64   `json:"touched_pages"`
	TouchedFraction float64 `json:"touched_fraction"`

	// ResidentFraction is the page-cache axis, -1 when residency sampling is
	// unsupported (non-Linux or pread fallback) — never a fake zero.
	ResidentBytes    int64   `json:"resident_bytes"`
	ResidentFraction float64 `json:"resident_fraction"`

	LastAccess time.Time `json:"last_access"`
	AgeSeconds float64   `json:"age_seconds"` // since LastAccess; -1 if never read
}

// StorageReport is the ?format=json body of /debug/storage.
type StorageReport struct {
	Generation         int64            `json:"generation"`
	Records            int64            `json:"records"`
	Totals             storeobs.Totals  `json:"totals"`
	ReadAmplification  float64          `json:"read_amplification"`
	ResidencySupported bool             `json:"residency_supported"`
	ResidencyAt        time.Time        `json:"residency_at"`
	Segments           []StorageSegment `json:"segments"`
	Orphans            []string         `json:"orphans,omitempty"`
	JournalCounts      map[string]int64 `json:"journal_counts"`
	// Journal is the tail of the event ring, oldest first.
	Journal []storeobs.Event `json:"journal"`
}

// buildStorageReport joins the recorder's view with the store manifest.
func (s *Server) buildStorageReport() StorageReport {
	st := s.store.Stats()
	rep := StorageReport{
		Generation:    st.Generation,
		Records:       int64(st.Records),
		Totals:        s.storeObs.Totals(),
		Orphans:       st.Orphans,
		JournalCounts: s.storeObs.Journal().Counts(),
	}
	rep.ReadAmplification = rep.Totals.ReadAmplification()

	records := make(map[string]int64, len(st.Segments))
	for _, seg := range st.Segments {
		records[seg.File] = seg.Records
	}
	resSamples, resAt := s.storeObs.Residency()
	rep.ResidencyAt = resAt
	resident := make(map[string]storeobs.SegmentResidency, len(resSamples))
	for _, r := range resSamples {
		resident[r.Segment] = r
		if r.Err == "" {
			rep.ResidencySupported = true
		}
	}

	now := time.Now()
	for _, acct := range s.storeObs.Segments() {
		row := StorageSegment{
			Segment:          acct.Segment,
			Records:          records[acct.Segment],
			FileBytes:        acct.FileBytes,
			Reads:            acct.Reads,
			ReadBytes:        acct.Bytes,
			TotalReads:       acct.TotalReads(),
			Pages:            acct.Pages,
			TouchedPages:     acct.TouchedPages,
			ResidentFraction: -1,
			LastAccess:       acct.LastAccess,
			AgeSeconds:       -1,
		}
		if acct.Pages > 0 {
			row.TouchedFraction = float64(acct.TouchedPages) / float64(acct.Pages)
		}
		if r, ok := resident[acct.Segment]; ok && r.Err == "" {
			row.ResidentBytes = r.ResidentBytes
			row.ResidentFraction = r.Fraction()
		}
		if !acct.LastAccess.IsZero() {
			row.AgeSeconds = now.Sub(acct.LastAccess).Seconds()
		}
		rep.Segments = append(rep.Segments, row)
	}
	sort.Slice(rep.Segments, func(i, j int) bool {
		return rep.Segments[i].Segment < rep.Segments[j].Segment
	})

	events := s.storeObs.Journal().Events()
	if len(events) > storageJournalTail {
		events = events[len(events)-storageJournalTail:]
	}
	rep.Journal = events
	return rep
}

// handleDebugStorage serves the storage-plane dashboard. ?format=json
// returns the report as JSON; ?format=jsonl streams the raw event journal
// one JSON object per line (the same form shapeingest logs).
func (s *Server) handleDebugStorage(w http.ResponseWriter, r *http.Request) {
	if s.storeObs == nil {
		writeError(w, http.StatusNotFound,
			"storage observability is not enabled (server has no store observer; run shapeserver with -segments)")
		return
	}
	switch r.URL.Query().Get("format") {
	case "jsonl":
		w.Header().Set("Content-Type", "application/jsonl")
		s.storeObs.Journal().WriteJSONL(w)
		return
	case "json":
		writeJSON(w, http.StatusOK, s.buildStorageReport())
		return
	}
	rep := s.buildStorageReport()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := storageTemplate.Execute(w, rep); err != nil {
		// Too late for a status change; note the failure in the body.
		fmt.Fprintf(w, "<!-- template: %v -->", err)
	}
}

// writeSegmentMetrics appends the per-segment heat families to /metrics:
// the label cardinality is one series per live segment file, bounded by
// compaction the same way the files themselves are.
func (s *Server) writeSegmentMetrics(w io.Writer) {
	rep := s.buildStorageReport()
	ops.WriteFamily(w, "shapeserver_segment_reads_total", "counter",
		"Record and label reads served per live segment file.")
	for _, seg := range rep.Segments {
		fmt.Fprintf(w, "shapeserver_segment_reads_total{segment=%q} %d\n", seg.Segment, seg.TotalReads)
	}
	ops.WriteFamily(w, "shapeserver_segment_read_bytes_total", "counter",
		"Bytes requested from each live segment file.")
	for _, seg := range rep.Segments {
		var b int64
		for _, v := range seg.ReadBytes {
			b += v
		}
		fmt.Fprintf(w, "shapeserver_segment_read_bytes_total{segment=%q} %d\n", seg.Segment, b)
	}
	ops.WriteFamily(w, "shapeserver_segment_file_bytes", "gauge",
		"Size of each live segment file.")
	for _, seg := range rep.Segments {
		fmt.Fprintf(w, "shapeserver_segment_file_bytes{segment=%q} %d\n", seg.Segment, seg.FileBytes)
	}
	ops.WriteFamily(w, "shapeserver_segment_touched_fraction", "gauge",
		"Fraction of each segment's pages ever first-touched by a read.")
	for _, seg := range rep.Segments {
		fmt.Fprintf(w, "shapeserver_segment_touched_fraction{segment=%q} %s\n",
			seg.Segment, ops.FormatFloat(seg.TouchedFraction))
	}
	if rep.ResidencySupported {
		ops.WriteFamily(w, "shapeserver_segment_resident_bytes", "gauge",
			"Bytes of each segment's mapping resident in the page cache (mincore sample).")
		for _, seg := range rep.Segments {
			if seg.ResidentFraction >= 0 {
				fmt.Fprintf(w, "shapeserver_segment_resident_bytes{segment=%q} %d\n", seg.Segment, seg.ResidentBytes)
			}
		}
		ops.WriteFamily(w, "shapeserver_segment_resident_fraction", "gauge",
			"Fraction of each segment's mapping resident in the page cache.")
		for _, seg := range rep.Segments {
			if seg.ResidentFraction >= 0 {
				fmt.Fprintf(w, "shapeserver_segment_resident_fraction{segment=%q} %s\n",
					seg.Segment, ops.FormatFloat(seg.ResidentFraction))
			}
		}
	}
	ops.WriteFamily(w, "shapeserver_segment_last_access_age_seconds", "gauge",
		"Seconds since each segment was last read (absent until first read).")
	for _, seg := range rep.Segments {
		if seg.AgeSeconds >= 0 {
			fmt.Fprintf(w, "shapeserver_segment_last_access_age_seconds{segment=%q} %s\n",
				seg.Segment, ops.FormatFloat(seg.AgeSeconds))
		}
	}
}

// storageFuncs are the template helpers: heat colors for the two heatmap
// axes and human-readable sizes/ages.
var storageFuncs = template.FuncMap{
	// heat maps a [0,1] fraction onto a cold-to-hot background; negative
	// (unsupported/never) renders neutral gray.
	"heat": func(f float64) template.CSS {
		if f < 0 {
			return "background:#eee;color:#777"
		}
		if f > 1 {
			f = 1
		}
		// 210° (cool blue) down to 0° (hot red), washed out for legibility.
		hue := 210 * (1 - f)
		return template.CSS(fmt.Sprintf("background:hsl(%.0f,70%%,85%%)", hue))
	},
	// recency maps age-seconds onto the same scale: just-read is hot,
	// minutes-old is cool, never-read is gray. Log-ish breakpoints.
	"recency": func(age float64) template.CSS {
		if age < 0 {
			return "background:#eee;color:#777"
		}
		f := 1.0
		switch {
		case age > 600:
			f = 0
		case age > 60:
			f = 0.25
		case age > 10:
			f = 0.5
		case age > 1:
			f = 0.75
		}
		hue := 210 * (1 - f)
		return template.CSS(fmt.Sprintf("background:hsl(%.0f,70%%,85%%)", hue))
	},
	"pct": func(f float64) string {
		if f < 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f%%", 100*f)
	},
	"bytes": func(b int64) string {
		switch {
		case b >= 1<<30:
			return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
		case b >= 1<<20:
			return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
		case b >= 1<<10:
			return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
		}
		return fmt.Sprintf("%d B", b)
	},
	"ago": func(age float64) string {
		if age < 0 {
			return "never"
		}
		return time.Duration(float64(time.Second) * age).Truncate(time.Millisecond).String()
	},
	"durms": func(sec float64) string {
		return time.Duration(float64(time.Second) * sec).Truncate(time.Microsecond).String()
	},
	"wall": func(t time.Time) string { return t.Format("15:04:05.000") },
	// barwidth scales an operation duration to a pixel bar, log-compressed
	// so a 10s compaction doesn't push a 2ms ingest off the page.
	"barwidth": func(sec float64) int {
		px := 8
		for sec >= 0.001 && px < 200 {
			px += 24
			sec /= 10
		}
		return px
	},
	"lifecycle": func(kind string) bool {
		switch kind {
		case storeobs.EventIngestBatch, storeobs.EventSegmentCompacted, storeobs.EventManifestSwap:
			return true
		}
		return false
	},
}

var storageTemplate = template.Must(template.New("storage").Funcs(storageFuncs).Parse(`<!doctype html>
<html><head><title>lbkeogh storage</title><style>
body { font-family: system-ui, sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
table { border-collapse: collapse; font-size: 0.9em; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: right; }
th.l, td.l { text-align: left; }
.meta { color: #666; font-size: 0.85em; }
.bar { display: inline-block; height: 0.7em; background: #69c; vertical-align: middle; }
</style></head><body>
<h1>storage plane &middot; generation {{.Generation}} &middot; {{.Records}} records</h1>
<p class="meta">
cold fetches {{.Totals.ColdFetches}} &middot; warm fetches {{.Totals.WarmFetches}} &middot;
requested {{bytes .Totals.RequestedBytes}} &middot; faulted pages {{.Totals.FaultedPages}} &middot;
read amplification {{printf "%.2f" .ReadAmplification}}&times;
{{if not .ResidencySupported}} &middot; residency sampling unsupported on this platform/backend{{else if not .ResidencyAt.IsZero}} &middot; residency sampled {{wall .ResidencyAt}}{{end}}
&middot; <a href="?format=json">json</a> &middot; <a href="?format=jsonl">journal jsonl</a>
</p>

<h2>segment heatmap</h2>
<table>
<tr><th class="l">segment</th><th>records</th><th>file</th><th>reads</th>
<th>raw</th><th>fft</th><th>paa</th><th>meta</th>
<th>touched pages</th><th>resident</th><th>last read</th></tr>
{{range .Segments}}
<tr><td class="l">{{.Segment}}</td><td>{{.Records}}</td><td>{{bytes .FileBytes}}</td><td>{{.TotalReads}}</td>
<td>{{index .Reads 0}}</td><td>{{index .Reads 1}}</td><td>{{index .Reads 2}}</td><td>{{index .Reads 3}}</td>
<td style="{{heat .TouchedFraction}}">{{.TouchedPages}}/{{.Pages}} ({{pct .TouchedFraction}})</td>
<td style="{{heat .ResidentFraction}}">{{pct .ResidentFraction}}</td>
<td style="{{recency .AgeSeconds}}">{{ago .AgeSeconds}}</td></tr>
{{end}}
</table>
<p class="meta">touched = pages first-faulted by reads since the segment was opened (cold-read coverage) &middot;
resident = mincore sample of the mapping &middot; colors run cold (blue) to hot (red), gray = unsupported/never</p>
{{if .Orphans}}<p class="meta">orphaned segment files ignored at open: {{range .Orphans}}{{.}} {{end}}</p>{{end}}

<h2>compaction &amp; ingest timeline</h2>
<table>
<tr><th>seq</th><th>wall</th><th class="l">kind</th><th class="l">note</th><th>records</th><th>bytes</th><th>reclaimed</th><th>duration</th><th class="l"></th></tr>
{{range .Journal}}{{if lifecycle .Kind}}
<tr><td>{{.Seq}}</td><td>{{wall .Wall}}</td><td class="l">{{.Kind}}</td><td class="l">{{.Note}}</td>
<td>{{.Records}}</td><td>{{bytes .Bytes}}</td><td>{{bytes .ReclaimedBytes}}</td><td>{{durms .DurationSeconds}}</td>
<td class="l"><span class="bar" style="width:{{barwidth .DurationSeconds}}px"></span></td></tr>
{{end}}{{end}}
</table>

<h2>event journal (last {{len .Journal}})</h2>
<table>
<tr><th>seq</th><th>wall</th><th class="l">kind</th><th class="l">segment</th><th>gen</th><th>records</th><th>bytes</th><th>duration</th><th class="l">note</th></tr>
{{range .Journal}}
<tr><td>{{.Seq}}</td><td>{{wall .Wall}}</td><td class="l">{{.Kind}}</td><td class="l">{{.Segment}}</td>
<td>{{.Generation}}</td><td>{{.Records}}</td><td>{{.Bytes}}</td><td>{{durms .DurationSeconds}}</td><td class="l">{{.Note}}</td></tr>
{{end}}
</table>
<p class="meta">per-kind totals: {{range $k, $v := .JournalCounts}}{{$k}}={{$v}} {{end}}</p>
</body></html>
`))
