package server

// Storage-plane dashboard tests: /debug/storage rendering and formats, the
// shapeserver_segment_* metric families joining a parseable /metrics, and
// the snapshot-lifecycle regression — a handler panic must not leak its
// pinned snapshot, or compaction could never unlink merged-away segments.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lbkeogh/internal/obs/expofmt"
	"lbkeogh/internal/obs/storeobs"
	"lbkeogh/internal/segment"
)

// newObservedStoreServer builds a store-backed server with storage-plane
// observability attached, returning the store directory for on-disk asserts.
func newObservedStoreServer(t *testing.T, cfg Config) (string, *segment.DB, *storeobs.Recorder, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	db, err := segment.OpenDB(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	rec := storeobs.NewRecorder(storeobs.Config{})
	db.SetObserver(rec)
	cfg.Store = db
	cfg.StoreObs = rec
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return dir, db, rec, ts
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

func TestDebugStoragePage(t *testing.T) {
	_, db, rec, ts := newObservedStoreServer(t, Config{})
	if code, raw := postJSON(t, ts, "/v1/ingest", ingestBody(storeRows(21, 6, 32)), nil); code != http.StatusOK {
		t.Fatalf("ingest: status %d body %s", code, raw)
	}
	if code, raw := postJSON(t, ts, "/v1/ingest", ingestBody(storeRows(22, 4, 32)), nil); code != http.StatusOK {
		t.Fatalf("ingest: status %d body %s", code, raw)
	}
	if code, raw := postJSON(t, ts, "/v1/search", `{"query_index":0,"strategy":"brute"}`, nil); code != http.StatusOK {
		t.Fatalf("search: status %d body %s", code, raw)
	}
	if code, raw := postJSON(t, ts, "/v1/compact", `{}`, nil); code != http.StatusOK {
		t.Fatalf("compact: status %d body %s", code, raw)
	}
	// Record fetches (the index path) flow through ObserveFetch; the row
	// scans above only feed the byte/page accountants.
	for id := 0; id < 4; id++ {
		db.Fetch(id)
	}

	// HTML renders with the heatmap, timeline, and journal sections.
	code, page := getBody(t, ts, "/debug/storage")
	if code != http.StatusOK {
		t.Fatalf("/debug/storage: status %d", code)
	}
	for _, want := range []string{"segment heatmap", "event journal", "ingest timeline", "segment_compacted", ".lbseg"} {
		if !strings.Contains(page, want) {
			t.Errorf("/debug/storage missing %q", want)
		}
	}

	// JSON report carries the joined per-segment rows and journal counts.
	code, raw := getBody(t, ts, "/debug/storage?format=json")
	if code != http.StatusOK {
		t.Fatalf("?format=json: status %d", code)
	}
	var rep StorageReport
	if err := json.Unmarshal([]byte(raw), &rep); err != nil {
		t.Fatalf("report JSON: %v\n%s", err, raw)
	}
	if len(rep.Segments) != 1 {
		t.Fatalf("segments after compact: %+v", rep.Segments)
	}
	if rep.Records != 10 || rep.Segments[0].Records != 10 {
		t.Fatalf("record join: report %d segment %d", rep.Records, rep.Segments[0].Records)
	}
	if rep.Totals.Fetches() != 4 || rep.Totals.RequestedBytes == 0 {
		t.Fatalf("fetch totals: %+v", rep.Totals)
	}
	if rep.JournalCounts[storeobs.EventSegmentCompacted] != 1 ||
		rep.JournalCounts[storeobs.EventIngestBatch] != 2 {
		t.Fatalf("journal counts: %+v", rep.JournalCounts)
	}
	if len(rep.Journal) == 0 {
		t.Fatal("empty journal tail")
	}

	// JSONL streams one valid event object per line.
	code, raw = getBody(t, ts, "/debug/storage?format=jsonl")
	if code != http.StatusOK {
		t.Fatalf("?format=jsonl: status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(raw), "\n")
	if int64(len(lines)) != rec.Journal().Len() {
		t.Fatalf("jsonl lines %d != journal len %d", len(lines), rec.Journal().Len())
	}
	for _, line := range lines {
		var ev storeobs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("jsonl line %q: %v", line, err)
		}
	}
}

// TestStoreObsMetricsParse pins the composite /metrics page with storage
// observability enabled: every family — library, server, storeobs, and the
// per-segment heat — must survive the strict exposition parser, and the
// store's fetch counter must reconcile exactly with the recorder's.
func TestStoreObsMetricsParse(t *testing.T) {
	_, db, rec, ts := newObservedStoreServer(t, Config{})
	if code, raw := postJSON(t, ts, "/v1/ingest", ingestBody(storeRows(31, 8, 32)), nil); code != http.StatusOK {
		t.Fatalf("ingest: status %d body %s", code, raw)
	}
	if code, raw := postJSON(t, ts, "/v1/search", `{"query_index":3,"strategy":"brute"}`, nil); code != http.StatusOK {
		t.Fatalf("search: status %d body %s", code, raw)
	}
	for id := 0; id < 8; id++ {
		db.Fetch(id)
	}

	code, body := getBody(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	exp, err := expofmt.Parse(body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	fetches := exp.Counter("lbkeogh_store_fetches_total", map[string]string{"temperature": "cold"}) +
		exp.Counter("lbkeogh_store_fetches_total", map[string]string{"temperature": "warm"})
	reads := exp.Counter("shapeserver_store_reads_total", nil)
	if fetches == 0 || fetches != reads {
		t.Fatalf("recorder fetches %d != store reads %d", fetches, reads)
	}
	if got := rec.Totals().Fetches(); got != fetches {
		t.Fatalf("recorder totals %d != exposed %d", got, fetches)
	}

	for _, name := range []string{
		"shapeserver_segment_reads_total",
		"shapeserver_segment_read_bytes_total",
		"shapeserver_segment_file_bytes",
		"shapeserver_segment_touched_fraction",
		"lbkeogh_store_requested_bytes_total",
		"lbkeogh_store_read_amplification",
		"lbkeogh_store_journal_events_total",
	} {
		if len(exp.Find(name)) == 0 {
			t.Errorf("metrics missing family %s", name)
		}
	}
	if v, ok := exp.Value("lbkeogh_store_journal_events_total", map[string]string{"kind": "ingest_batch"}); !ok || v != 1 {
		t.Errorf("journal ingest_batch metric = %v ok=%v, want 1", v, ok)
	}
}

func TestDebugStorageDisabledOutsideStoreObs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, raw := getBody(t, ts, "/debug/storage")
	if code != http.StatusNotFound || !strings.Contains(raw, "not enabled") {
		t.Fatalf("/debug/storage without observer: status %d body %s", code, raw)
	}
}

// TestHandlerPanicReleasesSnapshot is the snapshot-lifecycle regression: a
// search handler that panics mid-request (net/http recovers it) must still
// release its pinned snapshot through the deferred release, so a later
// compaction can unlink the merged-away segment files. A leaked snapshot
// would keep the old generation's readers open forever.
func TestHandlerPanicReleasesSnapshot(t *testing.T) {
	panics := make(chan struct{}, 1)
	dir, _, _, ts := newObservedStoreServer(t, Config{BeforeSearchHook: func() {
		select {
		case <-panics:
			panic("injected handler failure")
		default:
		}
	}})
	for seed := int64(41); seed <= 42; seed++ {
		if code, raw := postJSON(t, ts, "/v1/ingest", ingestBody(storeRows(seed, 5, 24)), nil); code != http.StatusOK {
			t.Fatalf("ingest: status %d body %s", code, raw)
		}
	}

	// The panicking request: the server closes the connection without a
	// response, so the client sees a transport error, not a status.
	panics <- struct{}{}
	if _, err := http.Post(ts.URL+"/v1/search", "application/json",
		strings.NewReader(`{"query_index":0}`)); err == nil {
		t.Fatal("panicking request returned a response; hook did not fire")
	}

	// Compaction must merge and unlink the two old segments: if the panicked
	// request leaked its snapshot, their readers would stay pinned and the
	// files would survive.
	var comp CompactResponse
	if code, raw := postJSON(t, ts, "/v1/compact", `{}`, &comp); code != http.StatusOK || comp.Merged != 2 {
		t.Fatalf("compact after panic: status %d resp %+v body %s", code, comp, raw)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "*.lbseg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		names := make([]string, len(segs))
		for i, s := range segs {
			names[i] = filepath.Base(s)
		}
		t.Fatalf("segment files after compact: %v (leaked snapshot kept old readers open)", names)
	}
	if _, err := os.Stat(filepath.Join(dir, "MANIFEST.json")); err != nil {
		t.Fatal(err)
	}

	// The admission slot was released too: the next request serves normally.
	var sr SearchResponse
	if code, raw := postJSON(t, ts, "/v1/search", `{"query_index":3}`, &sr); code != http.StatusOK {
		t.Fatalf("search after panic: status %d body %s", code, raw)
	}
	if len(sr.Results) != 1 || sr.Results[0].Dist != 0 {
		t.Fatalf("self-match after panic: %+v", sr.Results)
	}
}
