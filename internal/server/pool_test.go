package server

import (
	"testing"

	"lbkeogh"
)

func testSpec(series []float64) QuerySpec {
	return QuerySpec{Measure: "euclidean", R: 5, Eps: 0.25, MaxDeg: -1, Strategy: "wedge", Series: series}
}

func buildFor(spec QuerySpec) func() (*lbkeogh.Query, error) {
	return func() (*lbkeogh.Query, error) { return lbkeogh.NewQuery(spec.Series, lbkeogh.Euclidean()) }
}

func TestPoolHitMissEvict(t *testing.T) {
	db := lbkeogh.SyntheticProjectilePoints(1, 3, 32)
	p := NewPool(1)
	specA, specB := testSpec(db[0]), testSpec(db[1])

	sa, hit, err := p.Checkout(specA, buildFor(specA))
	if err != nil || hit {
		t.Fatalf("first checkout: hit=%v err=%v", hit, err)
	}
	p.Checkin(sa)
	sa2, hit, err := p.Checkout(specA, buildFor(specA))
	if err != nil || !hit {
		t.Fatalf("second checkout: hit=%v err=%v", hit, err)
	}
	if sa2 != sa {
		t.Fatal("hit returned a different session")
	}
	p.Checkin(sa2)

	// A different spec misses; checking it in evicts the older idle session.
	sb, hit, err := p.Checkout(specB, buildFor(specB))
	if err != nil || hit {
		t.Fatalf("specB checkout: hit=%v err=%v", hit, err)
	}
	p.Checkin(sb)
	st := p.Stats()
	if st.Idle != 1 || st.Hits != 1 || st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, hit, _ := p.Checkout(specA, buildFor(specA)); hit {
		t.Fatal("specA should have been evicted")
	}
}

func TestQuerySpecKeyDistinguishesParams(t *testing.T) {
	base := testSpec([]float64{1, 2, 3, 4})
	variants := []QuerySpec{base, base, base, base, base, base}
	variants[1].Measure = "dtw"
	variants[2].R = 6
	variants[3].Mirror = true
	variants[4].Strategy = "brute"
	variants[5].Series = []float64{1, 2, 3, 5}
	keys := map[uint64]bool{}
	for _, v := range variants {
		keys[v.Key()] = true
	}
	if len(keys) != len(variants) {
		t.Fatalf("expected %d distinct keys, got %d", len(variants), len(keys))
	}
	if base.Key() != testSpec([]float64{1, 2, 3, 4}).Key() {
		t.Fatal("equal specs must hash equal")
	}
}
