package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"lbkeogh"
	"lbkeogh/internal/obs/ops"
)

func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

// TestProbeSplitAcrossDrain covers the livez/readyz contract through a drain
// transition: liveness never flips, readiness does, and /healthz aliases
// liveness.
func TestProbeSplitAcrossDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	for _, path := range []string{"/livez", "/healthz", "/readyz"} {
		if code, body := getStatus(t, ts.URL+path); code != http.StatusOK {
			t.Fatalf("%s before drain: %d (%s)", path, code, body)
		}
	}
	if _, body := getStatus(t, ts.URL+"/readyz"); !strings.Contains(body, `"ready"`) {
		t.Fatalf("readyz body = %s", body)
	}

	srv.BeginDrain()
	if code, body := getStatus(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, `"draining"`) {
		t.Fatalf("readyz during drain: %d (%s), want 503 draining", code, body)
	}
	for _, path := range []string{"/livez", "/healthz"} {
		code, body := getStatus(t, ts.URL+path)
		if code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
			t.Fatalf("%s during drain: %d (%s), want 200 ok", path, code, body)
		}
		if !strings.Contains(body, `"draining": true`) {
			t.Fatalf("%s during drain does not report the flag: %s", path, body)
		}
	}
}

// TestRequestLogCarriesIDs decodes the structured request log and checks the
// request ID matches the X-Request-ID header and the trace ID matches the
// response body.
func TestRequestLogCarriesIDs(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts := newTestServer(t, Config{
		Logger:   ops.NewLogger(&logBuf, "json", "info"),
		TraceLog: lbkeogh.NewTraceLog(lbkeogh.WithSampleRate(1)),
	})
	resp, err := http.Post(ts.URL+"/v1/search", "application/json",
		strings.NewReader(`{"query_index":0}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rid := resp.Header.Get("X-Request-ID")
	if rid == "" {
		t.Fatal("response has no X-Request-ID header")
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.TraceID == 0 {
		t.Fatal("response trace_id is 0 with sample rate 1")
	}

	var entry struct {
		Msg       string  `json:"msg"`
		RequestID string  `json:"request_id"`
		TraceID   int64   `json:"trace_id"`
		Endpoint  string  `json:"endpoint"`
		Strategy  string  `json:"strategy"`
		Status    int     `json:"status"`
		DurMS     float64 `json:"dur_ms"`
		PoolHit   *bool   `json:"pool_hit"`
	}
	found := false
	for _, line := range bytes.Split(logBuf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &entry); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if entry.Msg == "search served" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no 'search served' line in log:\n%s", logBuf.String())
	}
	if entry.RequestID != rid {
		t.Errorf("log request_id %q != header %q", entry.RequestID, rid)
	}
	if entry.TraceID != sr.TraceID {
		t.Errorf("log trace_id %d != response %d", entry.TraceID, sr.TraceID)
	}
	if entry.Endpoint != "search" || entry.Strategy != "wedge" || entry.Status != 200 {
		t.Errorf("log fields wrong: %+v", entry)
	}
	if entry.PoolHit == nil || entry.DurMS <= 0 {
		t.Errorf("log missing pool_hit/dur_ms: %+v", entry)
	}
}

// TestRefusalsAreLoggedAndWindowed drives the non-success paths and checks
// they land in the log and the endpoint RED window with the right classes.
func TestRefusalsAreLoggedAndWindowed(t *testing.T) {
	var logBuf bytes.Buffer
	srv, ts := newTestServer(t, Config{Logger: ops.NewLogger(&logBuf, "json", "info")})
	if code, _, _ := post(t, ts, "/v1/search", `{"bogus":1}`); code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", code)
	}
	srv.BeginDrain()
	if code, _, _ := post(t, ts, "/v1/search", `{"query_index":0}`); code != http.StatusServiceUnavailable {
		t.Fatalf("draining: %d", code)
	}
	snap := srv.tel.endpoints["search"].Snapshot()
	if snap.Classes["client"] != 1 || snap.Classes["server"] != 1 {
		t.Fatalf("window classes = %+v", snap.Classes)
	}
	for _, want := range []string{`"msg":"bad request"`, `"msg":"refused: draining"`, `"msg":"drain started"`} {
		if !strings.Contains(logBuf.String(), want) {
			t.Errorf("log missing %s:\n%s", want, logBuf.String())
		}
	}
}

// TestMetricsUnderConcurrentLoad hammers one endpoint from 8 goroutines
// while a reader scrapes /metrics — meaningful under -race (make race runs
// this package).
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxInflight: 4,
		TraceLog:    lbkeogh.NewTraceLog(lbkeogh.WithSampleRate(1)),
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body := fmt.Sprintf(`{"query_index":%d}`, (g+i)%4)
				resp, err := http.Post(ts.URL+"/v1/search", "application/json", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining the body
				resp.Body.Close()
			}
		}(g)
	}
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining the body
			resp.Body.Close()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	scraper.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"shapeserver_request_duration_seconds_bucket",
		`shapeserver_window_requests{endpoint="search"} 80`,
		"shapeserver_slo_latency_burn_rate",
		"shapeserver_window_prune_rate",
		"lbkeogh_runtime_goroutines",
		"# {trace_id=\"",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q after load:\n%s", want, body)
		}
	}
}
