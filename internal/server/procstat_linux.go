//go:build linux

package server

import (
	"os"
	"strconv"
	"strings"
)

// procStat is the slice of /proc/self/stat the serving metrics care about:
// fault counters and resident set size, the runtime evidence that a mapped
// store is paged on demand rather than held on heap.
type procStat struct {
	MinorFaults int64
	MajorFaults int64
	RSSBytes    int64
}

// readProcStat parses /proc/self/stat. The comm field (2) may contain spaces
// and parentheses, so fields are counted after the last ')'. Field numbers
// (1-based, per proc(5)): minflt=10, majflt=12, rss=24 (pages).
func readProcStat() (procStat, bool) {
	buf, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return procStat{}, false
	}
	line := string(buf)
	close := strings.LastIndexByte(line, ')')
	if close < 0 {
		return procStat{}, false
	}
	rest := strings.Fields(line[close+1:])
	// rest[0] is field 3 (state); field k lives at rest[k-3].
	field := func(k int) int64 {
		i := k - 3
		if i < 0 || i >= len(rest) {
			return -1
		}
		v, err := strconv.ParseInt(rest[i], 10, 64)
		if err != nil {
			return -1
		}
		return v
	}
	minflt, majflt, rssPages := field(10), field(12), field(24)
	if minflt < 0 || majflt < 0 || rssPages < 0 {
		return procStat{}, false
	}
	return procStat{
		MinorFaults: minflt,
		MajorFaults: majflt,
		RSSBytes:    rssPages * int64(os.Getpagesize()),
	}, true
}
