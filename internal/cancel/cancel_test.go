package cancel

import (
	"context"
	"errors"
	"testing"
)

func TestNilCheckerNeverCancels(t *testing.T) {
	var c *Checker
	for i := 0; i < 100; i++ {
		if err := c.Stop(); err != nil {
			t.Fatalf("nil checker returned %v", err)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("nil checker Err = %v", err)
	}
}

func TestBackgroundContextYieldsNilChecker(t *testing.T) {
	if c := New(context.Background(), 8); c != nil {
		t.Fatalf("New(Background) = %v, want nil", c)
	}
	if c := New(nil, 8); c != nil {
		t.Fatalf("New(nil) = %v, want nil", c)
	}
}

func TestAlreadyCancelledObservedOnFirstStop(t *testing.T) {
	ctx, cancelFn := context.WithCancel(context.Background())
	cancelFn()
	c := New(ctx, 64)
	if err := c.Stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("first Stop = %v, want Canceled", err)
	}
}

// pollCountCtx counts Err() polls so the amortization interval is testable.
type pollCountCtx struct {
	context.Context
	polls int
	fail  bool
}

func (p *pollCountCtx) Err() error {
	p.polls++
	if p.fail {
		return context.Canceled
	}
	return nil
}

func TestStopPollsEveryInterval(t *testing.T) {
	base, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	p := &pollCountCtx{Context: base}
	c := New(p, 10)
	// First call polls (left starts at 1), then every 10th.
	for i := 0; i < 31; i++ {
		if err := c.Stop(); err != nil {
			t.Fatalf("Stop %d = %v", i, err)
		}
	}
	if p.polls != 4 { // calls 1, 11, 21, 31
		t.Fatalf("polls = %d, want 4", p.polls)
	}
}

func TestErrorIsSticky(t *testing.T) {
	base, cancelFn := context.WithCancel(context.Background())
	defer cancelFn()
	p := &pollCountCtx{Context: base, fail: true}
	c := New(p, 5)
	if err := c.Stop(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stop = %v, want Canceled", err)
	}
	polls := p.polls
	for i := 0; i < 20; i++ {
		if err := c.Stop(); !errors.Is(err, context.Canceled) {
			t.Fatalf("sticky Stop = %v", err)
		}
	}
	if p.polls != polls {
		t.Fatalf("sticky error re-polled the context: %d -> %d", polls, p.polls)
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", c.Err())
	}
}
