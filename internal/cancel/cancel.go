// Package cancel implements the cooperative-cancellation checkpoint used by
// the search hot paths. A rotation-invariant DTW scan — the paper's worst
// case (Table 5) — can run for seconds; the serving layer needs to bound it
// with a deadline without the kernel loops paying a context poll per
// rotation. A Checker amortizes ctx.Err() over a fixed number of checkpoint
// hits, so the hot loops pay one predictable branch per hit and one real
// context poll per interval.
//
// A Checker is single-goroutine scratch, like *stats.Tally: each scan (and
// each parallel-scan worker) owns its own. A nil *Checker is the documented
// "never cancelled" mode — the uninstrumented path costs one nil check.
package cancel

import "context"

// DefaultInterval is the checkpoint interval: the number of Stop calls
// between consecutive ctx.Err() polls. The scan loops call Stop once per
// comparison and the H-Merge walk once per wedge visit, so a cancellation
// is observed after at most DefaultInterval such steps — a few kernel
// evaluations — while the poll cost is amortized to ~zero.
const DefaultInterval = 16

// Checker polls a context's error at an amortized interval. The zero of the
// type is not useful; construct with New. A nil receiver never cancels.
type Checker struct {
	ctx      context.Context
	interval int
	left     int
	err      error
}

// New returns a Checker polling ctx every interval checkpoint hits
// (interval <= 0 selects DefaultInterval). A nil or never-cancellable
// context (Done() == nil, e.g. context.Background) yields a nil Checker, so
// the uncancellable path stays free. An already-expired context is observed
// immediately: the first Stop call reports it.
func New(ctx context.Context, interval int) *Checker {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultInterval
	}
	// left = 1 makes the first checkpoint poll for real, so an
	// already-cancelled context never starts an interval's worth of work.
	return &Checker{ctx: ctx, interval: interval, left: 1}
}

// Stop is the checkpoint: it returns a non-nil error once the context is
// cancelled or past its deadline, polling ctx.Err() only every interval-th
// call. The error is sticky — once observed, every subsequent Stop (and Err)
// call returns it without polling again.
func (c *Checker) Stop() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	c.left--
	if c.left > 0 {
		return nil
	}
	c.left = c.interval
	c.err = c.ctx.Err()
	return c.err
}

// Err reports the sticky error observed by a previous Stop, without
// advancing the checkpoint counter or polling the context.
func (c *Checker) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}
