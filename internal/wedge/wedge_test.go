package wedge

import (
	"math"
	"testing"
	"testing/quick"

	"lbkeogh/internal/dist"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/ts"
)

func buildRandomTree(seed int64, m, n int) (*Tree, [][]float64) {
	rng := ts.NewRand(seed)
	members := make([][]float64, m)
	for i := range members {
		members[i] = ts.RandomWalk(rng, n)
	}
	tree := Build(members, func(i, j int) float64 {
		return dist.Euclidean(members[i], members[j], nil)
	}, nil)
	return tree, members
}

func bruteMin(q []float64, members [][]float64, k Kernel) (float64, int) {
	best, bestIdx := math.Inf(1), -1
	for i, m := range members {
		d, _ := k.Distance(q, m, -1, nil)
		if d < best {
			best, bestIdx = d, i
		}
	}
	return best, bestIdx
}

func TestTreeStructure(t *testing.T) {
	tree, members := buildRandomTree(1, 9, 32)
	if tree.Members() != 9 || tree.Len() != 32 {
		t.Fatalf("tree shape wrong: %d members, len %d", tree.Members(), tree.Len())
	}
	// Every node's envelope contains all leaves below it.
	d := tree.Dendrogram()
	for id := range d.Nodes {
		env := tree.Envelope(id)
		for _, leaf := range d.Leaves(id) {
			if !env.Contains(members[leaf], 1e-12) {
				t.Fatalf("node %d envelope misses leaf %d", id, leaf)
			}
		}
	}
}

func TestSearchMatchesBruteForceED(t *testing.T) {
	tree, members := buildRandomTree(2, 16, 40)
	rng := ts.NewRand(3)
	for trial := 0; trial < 20; trial++ {
		q := ts.RandomWalk(rng, 40)
		want, wantIdx := bruteMin(q, members, ED{})
		for _, K := range []int{1, 2, 4, 8, 16} {
			for _, tr := range []Traversal{LIFO, BestFirst} {
				res := tree.Search(q, ED{}, K, -1, tr, nil)
				if math.Abs(res.Dist-want) > 1e-9 || res.BestMember != wantIdx {
					t.Fatalf("K=%d tr=%d: H-Merge (%v,%d) != brute (%v,%d)",
						K, tr, res.Dist, res.BestMember, want, wantIdx)
				}
			}
		}
	}
}

func TestSearchMatchesBruteForceDTW(t *testing.T) {
	tree, members := buildRandomTree(4, 12, 32)
	rng := ts.NewRand(5)
	for _, R := range []int{0, 2, 5} {
		k := DTW{R: R}
		for trial := 0; trial < 10; trial++ {
			q := ts.RandomWalk(rng, 32)
			want, wantIdx := bruteMin(q, members, k)
			for _, K := range []int{1, 3, 12} {
				res := tree.Search(q, k, K, -1, LIFO, nil)
				if math.Abs(res.Dist-want) > 1e-9 || res.BestMember != wantIdx {
					t.Fatalf("R=%d K=%d: H-Merge (%v,%d) != brute (%v,%d)",
						R, K, res.Dist, res.BestMember, want, wantIdx)
				}
			}
		}
	}
}

func TestSearchMatchesBruteForceLCSS(t *testing.T) {
	tree, members := buildRandomTree(6, 10, 28)
	rng := ts.NewRand(7)
	k := LCSS{Delta: 3, Eps: 0.25}
	for trial := 0; trial < 10; trial++ {
		q := ts.RandomWalk(rng, 28)
		want, _ := bruteMin(q, members, k)
		res := tree.Search(q, k, 4, -1, LIFO, nil)
		if math.Abs(res.Dist-want) > 1e-9 {
			t.Fatalf("LCSS H-Merge %v != brute %v", res.Dist, want)
		}
	}
}

func TestSearchThresholdSemantics(t *testing.T) {
	tree, members := buildRandomTree(8, 8, 24)
	rng := ts.NewRand(9)
	q := ts.RandomWalk(rng, 24)
	want, _ := bruteMin(q, members, ED{})
	res := tree.Search(q, ED{}, 4, want*0.9, LIFO, nil)
	if !math.IsInf(res.Dist, 1) || res.BestMember != -1 {
		t.Fatalf("threshold below min should yield +Inf, got %+v", res)
	}
	res = tree.Search(q, ED{}, 4, want*1.1, LIFO, nil)
	if math.Abs(res.Dist-want) > 1e-9 {
		t.Fatalf("threshold above min should find exact: %v vs %v", res.Dist, want)
	}
}

func TestSearchStepsLessThanBruteForceOnClusteredData(t *testing.T) {
	// Members are tiny perturbations of one base series: the root wedge is
	// thin and should prune nearly everything for a far-away query.
	rng := ts.NewRand(10)
	base := ts.RandomWalk(rng, 64)
	members := make([][]float64, 32)
	for i := range members {
		members[i] = ts.AddNoise(rng, base, 0.01)
	}
	tree := Build(members, func(i, j int) float64 {
		return dist.Euclidean(members[i], members[j], nil)
	}, nil)

	far := make([]float64, 64)
	for i := range far {
		far[i] = 50
	}
	var wedgeCnt, bruteCnt stats.Tally
	res := tree.Search(far, ED{}, 1, 1.0, LIFO, &wedgeCnt) // threshold 1: prune all
	if !math.IsInf(res.Dist, 1) {
		t.Fatal("far query should be pruned entirely")
	}
	for _, m := range members {
		dist.EuclideanEA(far, m, 1.0, &bruteCnt)
	}
	if wedgeCnt.Steps() >= bruteCnt.Steps() {
		t.Fatalf("wedge steps %d not below brute EA steps %d", wedgeCnt.Steps(), bruteCnt.Steps())
	}
}

// Property: H-Merge is exact for arbitrary K, traversal and kernel.
func TestSearchExactnessProperty(t *testing.T) {
	tree, members := buildRandomTree(11, 14, 24)
	rng := ts.NewRand(12)
	f := func(kSeed, trSeed, kernSeed uint8) bool {
		q := ts.RandomWalk(rng, 24)
		K := 1 + int(kSeed)%14
		tr := Traversal(int(trSeed) % 2)
		var kern Kernel = ED{}
		if kernSeed%2 == 1 {
			kern = DTW{R: 1 + int(kernSeed)%4}
		}
		want, _ := bruteMin(q, members, kern)
		res := tree.Search(q, kern, K, -1, tr, nil)
		return math.Abs(res.Dist-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSearchQueryLengthMismatchPanics(t *testing.T) {
	tree, _ := buildRandomTree(13, 4, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on length mismatch")
		}
	}()
	tree.Search(make([]float64, 8), ED{}, 2, -1, LIFO, nil)
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on empty member set")
		}
	}()
	Build(nil, nil, nil)
}

func TestBuildChargesSetupCost(t *testing.T) {
	var cnt stats.Tally
	rng := ts.NewRand(14)
	members := make([][]float64, 8)
	for i := range members {
		members[i] = ts.RandomWalk(rng, 32)
	}
	Build(members, func(i, j int) float64 {
		return dist.Euclidean(members[i], members[j], nil)
	}, &cnt)
	if cnt.Steps() != int64(7*32) { // m-1 merges, n steps each
		t.Fatalf("setup steps = %d, want %d", cnt.Steps(), 7*32)
	}
}

func TestKernelMetadata(t *testing.T) {
	if (ED{}).Name() != "euclidean" || !(ED{}).LeafLBIsExact() || (ED{}).Radius() != 0 {
		t.Fatal("ED kernel metadata wrong")
	}
	k := DTW{R: 7}
	if k.Name() != "dtw" || k.LeafLBIsExact() || k.Radius() != 7 {
		t.Fatal("DTW kernel metadata wrong")
	}
	l := LCSS{Delta: 3, Eps: 0.5}
	if l.Name() != "lcss" || l.LeafLBIsExact() || l.Radius() != 3 {
		t.Fatal("LCSS kernel metadata wrong")
	}
}

func TestDynamicKStartsAtTwo(t *testing.T) {
	d := NewDynamicK(100, 5)
	if d.K() != 2 {
		t.Fatalf("initial K = %d, want 2", d.K())
	}
	d = NewDynamicK(1, 5)
	if d.K() != 1 {
		t.Fatalf("clamped initial K = %d, want 1", d.K())
	}
}

func TestDynamicKProbesAndSettles(t *testing.T) {
	d := NewDynamicK(64, 5)
	// No change: K stays.
	d.Observe(100, false)
	if d.K() != 2 {
		t.Fatal("K should not move without a best-so-far change")
	}
	// Change triggers probing over candidates; make the largest candidate
	// the clear winner and check the controller settles on it.
	d.Observe(100, true)
	if !d.probing {
		t.Fatal("probe should have started")
	}
	cands := append([]int{}, d.candidates...)
	wantK := 0
	for _, k := range cands {
		if k > wantK {
			wantK = k
		}
	}
	for range cands {
		k := d.K()
		d.Observe(int64(1000-k), false) // cheapest at largest K
	}
	if d.probing {
		t.Fatal("probe should have finished")
	}
	if d.Current() != wantK {
		t.Fatalf("settled K = %d, want %d", d.Current(), wantK)
	}
}

func TestDynamicKCandidatesInRange(t *testing.T) {
	for _, intervals := range []int{1, 3, 5, 20} {
		for _, maxK := range []int{1, 2, 7, 100} {
			d := NewDynamicK(maxK, intervals)
			d.curK = (maxK + 1) / 2
			for _, k := range d.candidateKs() {
				if k < 1 || k > maxK {
					t.Fatalf("candidate %d outside [1,%d]", k, maxK)
				}
			}
		}
	}
}

func TestDynamicKRearmsAfterChangeDuringProbe(t *testing.T) {
	d := NewDynamicK(32, 3)
	d.Observe(10, true) // start probe
	if !d.probing {
		t.Fatal("probe should have started")
	}
	n := len(d.candidates)
	for i := 0; i < n; i++ {
		d.Observe(int64(50-i), i == 0) // change during probe
	}
	if !d.probing {
		t.Fatal("controller should have re-armed a probe after mid-probe change")
	}
}
