package wedge

// DynamicK implements the paper's on-the-fly wedge-set-size controller
// (Section 4.1): search starts with K = 2; each time the best-so-far value
// changes, a subset of candidate K values is probed — the values that evenly
// divide the ranges [1, K] and [K, maxK] into `intervals` intervals — one
// probe per subsequent comparison, measuring num_steps; the cheapest
// candidate becomes the new K. The paper reports the controller is
// insensitive to `intervals` anywhere in 3..20 (they use 5).
//
// The probe cost is charged to the search like any other comparison, exactly
// as the paper includes "this slight overhead in adjusting the parameter" in
// all its experiments.
type DynamicK struct {
	maxK      int
	intervals int

	curK       int
	probing    bool
	candidates []int
	probeIdx   int
	bestSteps  int64
	bestK      int
	rearm      bool // best-so-far changed while a probe was running

	onChange func(oldK, newK int) // observability hook; nil when untraced
}

// NewDynamicK returns a controller over wedge-set sizes 1..maxK with the
// given number of probe intervals (the paper's single parameter; 5 there).
// intervals < 1 is treated as 1.
func NewDynamicK(maxK, intervals int) *DynamicK {
	if maxK < 1 {
		maxK = 1
	}
	if intervals < 1 {
		intervals = 1
	}
	k := 2
	if k > maxK {
		k = maxK
	}
	return &DynamicK{maxK: maxK, intervals: intervals, curK: k}
}

// K returns the wedge-set size to use for the next comparison.
func (d *DynamicK) K() int {
	if d.probing {
		return d.candidates[d.probeIdx]
	}
	return d.curK
}

// Current returns the controller's settled K (ignoring any probe in flight).
func (d *DynamicK) Current() int { return d.curK }

// SetChangeHook installs a callback fired whenever the settled K moves to a
// different value (probe traffic does not fire it). Pass nil to remove.
func (d *DynamicK) SetChangeHook(f func(oldK, newK int)) { d.onChange = f }

// Observe records the outcome of the comparison that used K(): the number of
// steps it took and whether it improved the best-so-far. It advances the
// probe state machine.
func (d *DynamicK) Observe(steps int64, bestChanged bool) {
	if d.probing {
		if steps < d.bestSteps || d.bestK < 0 {
			d.bestSteps = steps
			d.bestK = d.candidates[d.probeIdx]
		}
		if bestChanged {
			d.rearm = true
		}
		d.probeIdx++
		if d.probeIdx >= len(d.candidates) {
			if d.onChange != nil && d.bestK != d.curK {
				d.onChange(d.curK, d.bestK)
			}
			d.curK = d.bestK
			d.probing = false
			if d.rearm {
				d.rearm = false
				d.startProbe()
			}
		}
		return
	}
	if bestChanged {
		d.startProbe()
	}
}

func (d *DynamicK) startProbe() {
	cands := d.candidateKs()
	if len(cands) <= 1 {
		return
	}
	d.candidates = cands
	d.probing = true
	d.probeIdx = 0
	d.bestSteps = 0
	d.bestK = -1
}

// candidateKs returns the probe set: values that evenly divide [1, curK] and
// [curK, maxK] into d.intervals intervals, deduplicated and clamped.
func (d *DynamicK) candidateKs() []int {
	seen := map[int]bool{}
	var out []int
	add := func(k int) {
		if k < 1 {
			k = 1
		}
		if k > d.maxK {
			k = d.maxK
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for i := 0; i <= d.intervals; i++ {
		add(1 + i*(d.curK-1)/d.intervals)
	}
	for i := 0; i <= d.intervals; i++ {
		add(d.curK + i*(d.maxK-d.curK)/d.intervals)
	}
	return out
}
