package wedge

import (
	"fmt"
	"math"
	"sync"

	"lbkeogh/internal/cancel"
	"lbkeogh/internal/cluster"
	"lbkeogh/internal/envelope"
	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/trace"
	"lbkeogh/internal/stats"
)

// Traversal selects the H-Merge frontier/children visit order.
type Traversal int

const (
	// LIFO visits wedges depth-first with a stack, as in the paper's Table 6.
	LIFO Traversal = iota
	// BestFirst visits wedges in ascending lower-bound order with a priority
	// queue, terminating as soon as the smallest outstanding bound meets the
	// best-so-far. Used by the traversal-order ablation.
	BestFirst
)

// Tree is the hierarchically nested wedge structure built over a set of
// candidate series (in the paper: the rotations of the query). Node indexing
// follows the underlying dendrogram: 0..m-1 are the individual candidates,
// m..2m-2 the merged wedges, 2m-2 the root wedge.
//
// A Tree is safe for concurrent Search calls: the lazily built caches
// (expanded envelopes, frontier cuts) are guarded by a mutex, and everything
// else is immutable after Build. Parallel database scans share one tree.
type Tree struct {
	members [][]float64
	dend    *cluster.Dendrogram
	env     []envelope.Envelope // base (unexpanded) envelope per node
	depth   []int               // node depth from the root (root = 0)

	mu       sync.Mutex
	expanded map[int][]envelope.Envelope // per widening radius
	frontier map[int][]int               // cached dendrogram cuts per K
}

// Build constructs the wedge tree for the given member series (all the same
// length) using group-average-linkage clustering over the provided pairwise
// distance function, exactly as Section 4.1 prescribes. The cost of building
// every node's envelope — the O(n²) set-up cost the paper charges to the
// wedge strategy — is recorded on cnt (one step per sample merged).
func Build(members [][]float64, distFn func(i, j int) float64, cnt *stats.Tally) *Tree {
	if len(members) == 0 {
		panic("wedge: Build requires at least one member")
	}
	n := len(members[0])
	for i, m := range members {
		if len(m) != n {
			panic(fmt.Sprintf("wedge: member %d length %d != %d", i, len(m), n))
		}
	}
	m := len(members)
	dend := cluster.Agglomerative(m, distFn, cluster.Average)

	env := make([]envelope.Envelope, len(dend.Nodes))
	for i := 0; i < m; i++ {
		env[i] = envelope.Envelope{U: members[i], L: members[i]}
	}
	for id := m; id < len(dend.Nodes); id++ {
		node := dend.Nodes[id]
		env[id] = envelope.Merge(env[node.Left], env[node.Right])
		cnt.Add(int64(n))
	}
	// Node depths, walked top-down: dendrogram children always precede their
	// parent, so one reverse pass suffices.
	depth := make([]int, len(dend.Nodes))
	for id := len(dend.Nodes) - 1; id >= 0; id-- {
		node := dend.Nodes[id]
		if node.Left >= 0 {
			depth[node.Left] = depth[id] + 1
			depth[node.Right] = depth[id] + 1
		}
	}
	return &Tree{
		members:  members,
		dend:     dend,
		env:      env,
		depth:    depth,
		expanded: map[int][]envelope.Envelope{0: env},
		frontier: map[int][]int{},
	}
}

// Members returns the number of candidate series in the tree.
func (t *Tree) Members() int { return len(t.members) }

// Member returns the i-th candidate series.
func (t *Tree) Member(i int) []float64 { return t.members[i] }

// Len returns the series length.
func (t *Tree) Len() int { return len(t.members[0]) }

// Dendrogram exposes the underlying merge tree (for visualization and the
// examples that print dendrograms).
func (t *Tree) Dendrogram() *cluster.Dendrogram { return t.dend }

// Envelope returns the base envelope of the given node.
func (t *Tree) Envelope(node int) envelope.Envelope { return t.env[node] }

// envelopesFor returns the per-node envelopes widened by radius, building and
// caching them on first use (the paper widens wedges by the Sakoe-Chiba R for
// DTW, Figure 13).
func (t *Tree) envelopesFor(radius int, cnt *stats.Tally) []envelope.Envelope {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.expanded[radius]; ok {
		return e
	}
	out := make([]envelope.Envelope, len(t.env))
	for i, e := range t.env {
		out[i] = e.ExpandDTW(radius)
		cnt.Add(int64(e.Len()))
	}
	t.expanded[radius] = out
	return out
}

// frontierFor returns the (cached) K-cluster dendrogram cut.
func (t *Tree) frontierFor(k int) []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.frontier[k]; ok {
		return f
	}
	f := t.dend.Frontier(k)
	t.frontier[k] = f
	return f
}

// MaxK returns the largest meaningful wedge-set size (one wedge per member).
func (t *Tree) MaxK() int { return len(t.members) }

// Depth returns the dendrogram depth of the given node (root = 0).
func (t *Tree) Depth(node int) int { return t.depth[node] }

// FrontierEnvelopes returns the envelopes of the K-wedge dendrogram cut,
// widened by radius (0 for Euclidean, the band R for DTW). The index layer
// reduces these to its compressed representation ("search for the best match
// to K envelopes in the wedge set W", Section 4.2).
func (t *Tree) FrontierEnvelopes(K, radius int) []envelope.Envelope {
	envs := t.envelopesFor(radius, nil)
	frontier := t.frontierFor(K)
	out := make([]envelope.Envelope, len(frontier))
	for i, id := range frontier {
		out[i] = envs[id]
	}
	return out
}

// Result reports the outcome of an H-Merge search.
type Result struct {
	// Dist is the exact minimum kernel distance from the probe to any member,
	// or +Inf if every member was proven to exceed the threshold.
	Dist float64
	// BestMember is the index of the minimizing member, or -1.
	BestMember int
	// Steps is the number of num_steps charged by this call.
	Steps int64
	// Aborted reports that a cancellation checkpoint stopped the walk before
	// every member was disposed of; Dist and BestMember are meaningless. The
	// undisposed members have been attributed to the cancelled bucket, so the
	// instrumentation record still reconciles.
	Aborted bool
}

// Search runs H-Merge (Table 6): it returns the exact minimum distance from
// q to any member of the tree, provided that minimum is strictly below r
// (r < 0 or +Inf means unbounded). K is the wedge-set size to start from;
// traversal selects stack vs best-first order. The result is exact: H-Merge
// returns precisely what brute force over all members would, as long as the
// caller treats Dist = +Inf as "no member beats r".
func (t *Tree) Search(q []float64, k Kernel, K int, r float64, traversal Traversal, cnt *stats.Tally) Result {
	return t.SearchObs(q, k, K, r, traversal, cnt, nil, nil)
}

// SearchObs is Search with instrumentation: every rotation the walk disposes
// of is attributed to exactly one outcome on st (internal-wedge prune
// weighted by subtree size, singleton-wedge LB prune, early abandon, or full
// distance evaluation), and tr receives per-wedge trace events. Both st and
// tr may be nil; the nil path costs one branch per event.
func (t *Tree) SearchObs(q []float64, k Kernel, K int, r float64, traversal Traversal, cnt *stats.Tally, st *obs.SearchStats, tr obs.Tracer) Result {
	return t.SearchTraced(q, k, K, r, traversal, cnt, st, tr, nil, nil)
}

// SearchTraced is SearchObs plus span recording and cooperative
// cancellation: the H-Merge walk, the exact kernel evaluations at surviving
// leaves and the per-level node-visit counts land in the goroutine-confined
// arena ar, which the caller flushes into its trace recorder after the
// comparison. The walk polls chk once per wedge visit — a cancellation is
// observed within one checkpoint interval of visits, at which point every
// undisposed member is attributed to the cancelled bucket and the Result
// comes back Aborted. ar and chk may be nil (or disarmed) — the untraced,
// uncancellable path costs one predictable branch per event, like the nil
// st/tr paths.
//
//lbkeogh:hotpath
func (t *Tree) SearchTraced(q []float64, k Kernel, K int, r float64, traversal Traversal, cnt *stats.Tally, st *obs.SearchStats, tr obs.Tracer, ar *trace.Arena, chk *cancel.Checker) Result {
	if len(q) != t.Len() {
		panic(fmt.Sprintf("wedge: query length %d != member length %d", len(q), t.Len()))
	}
	var local stats.Tally
	envs := t.envelopesFor(k.Radius(), &local)

	best := math.Inf(1)
	if r >= 0 {
		best = r
	}
	bestMember := -1

	visitLeaf := func(id int) { //lint:ignore hotalloc non-escaping closure, invoked directly below
		st.CountLeafVisit()
		if k.LeafLBIsExact() {
			// For Euclidean, LB against the singleton wedge IS the distance;
			// compute it once via the kernel's exact path.
			kt0 := ar.Now()
			d, abandoned := k.Distance(q, t.members[id], best, &local)
			ar.Kernel(id, kt0)
			if abandoned {
				st.CountAbandon()
				obs.TraceAbandon(tr, id)
				return
			}
			st.CountFullDist()
			if d < best {
				best, bestMember = d, id
			}
			return
		}
		// For warped measures: cheap LB first (classic LB_Keogh), then the
		// full distance only if the bound cannot prune.
		lb, abandoned := k.LowerBound(q, envs[id], best, &local)
		if abandoned || lb >= best {
			st.CountLeafLBPrune()
			obs.TraceWedgeVisit(tr, id, t.depth[id], lb, true)
			return
		}
		kt0 := ar.Now()
		d, abandoned := k.Distance(q, t.members[id], best, &local)
		ar.Kernel(id, kt0)
		if abandoned {
			st.CountAbandon()
			obs.TraceAbandon(tr, id)
			return
		}
		st.CountFullDist()
		if d < best {
			best, bestMember = d, id
		}
	}
	// pruneNode attributes all rotations under an internal or frontier wedge
	// to the wedge-LB-prune bucket at the wedge's dendrogram level.
	pruneNode := func(id int, lb float64) { //lint:ignore hotalloc non-escaping closure, invoked directly below
		st.CountWedgePrune(t.depth[id], int64(t.dend.Nodes[id].Size))
		obs.TraceWedgeVisit(tr, id, t.depth[id], lb, true)
	}

	frontier := t.frontierFor(K)
	hm := ar.Begin(trace.StageHMerge, -1)
	aborted := false
	switch traversal {
	case BestFirst:
		var pq boundHeap
		for fi, id := range frontier {
			if chk.Stop() != nil {
				// Cancelled while seeding: everything not yet bounded plus
				// everything already queued is undisposed.
				for _, rest := range frontier[fi:] {
					st.CountCancelled(int64(t.dend.Nodes[rest].Size))
				}
				for _, it := range pq {
					st.CountCancelled(int64(t.dend.Nodes[it.id].Size))
				}
				aborted = true
				break
			}
			lb, abandoned := k.LowerBound(q, envs[id], best, &local)
			if !abandoned && lb < best {
				pq.push(boundItem{id: id, lb: lb})
			} else {
				pruneNode(id, lb)
			}
		}
		for !aborted && len(pq) > 0 {
			if chk.Stop() != nil {
				for _, it := range pq {
					st.CountCancelled(int64(t.dend.Nodes[it.id].Size))
				}
				aborted = true
				break
			}
			it := pq.pop()
			if it.lb >= best {
				// Smallest outstanding bound cannot improve: done. Everything
				// still queued is excluded by its (stale) bound.
				pruneNode(it.id, it.lb)
				for _, rest := range pq {
					pruneNode(rest.id, rest.lb)
				}
				break
			}
			node := t.dend.Nodes[it.id]
			if node.Left < 0 {
				visitLeaf(it.id)
				continue
			}
			st.CountNodeVisit()
			ar.CountVisit(t.depth[it.id])
			obs.TraceWedgeVisit(tr, it.id, t.depth[it.id], it.lb, false)
			// Left then right, without materializing a child slice per visit.
			for c := 0; c < 2; c++ {
				ch := node.Left
				if c == 1 {
					ch = node.Right
				}
				lb, abandoned := k.LowerBound(q, envs[ch], best, &local)
				if !abandoned && lb < best {
					pq.push(boundItem{id: ch, lb: lb})
				} else {
					pruneNode(ch, lb)
				}
			}
		}
	default: // LIFO, the paper's Table 6
		stack := make([]int, len(frontier), 2*len(frontier)+2) //lint:ignore hotalloc per-search scratch, amortized over the traversal
		copy(stack, frontier)
		for len(stack) > 0 {
			if chk.Stop() != nil {
				// Cancelled mid-walk: every member under a node still on the
				// stack is undisposed (pops either dispose or push children,
				// so the stack is exactly the undisposed partition).
				for _, rest := range stack {
					st.CountCancelled(int64(t.dend.Nodes[rest].Size))
				}
				aborted = true
				break
			}
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			node := t.dend.Nodes[id]
			if node.Left < 0 {
				visitLeaf(id)
				continue
			}
			lb, abandoned := k.LowerBound(q, envs[id], best, &local)
			if abandoned || lb >= best {
				pruneNode(id, lb) // prune the whole wedge
				continue
			}
			st.CountNodeVisit()
			ar.CountVisit(t.depth[id])
			obs.TraceWedgeVisit(tr, id, t.depth[id], lb, false)
			stack = append(stack, node.Left, node.Right) //lint:ignore hotalloc bounded by the dendrogram size; grows a few times at most
		}
	}

	ar.End(hm)
	cnt.Add(local.Steps())
	if aborted {
		return Result{Dist: math.Inf(1), BestMember: -1, Steps: local.Steps(), Aborted: true}
	}
	if bestMember < 0 {
		return Result{Dist: math.Inf(1), BestMember: -1, Steps: local.Steps()}
	}
	return Result{Dist: best, BestMember: bestMember, Steps: local.Steps()}
}

type boundItem struct {
	id int
	lb float64
}

// boundHeap is a hand-rolled min-heap on lb. container/heap would box every
// boundItem in an interface on Push and Pop; the explicit sift keeps the
// best-first traversal allocation-free apart from amortized slice growth.
type boundHeap []boundItem

func (h *boundHeap) push(it boundItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].lb <= s[i].lb {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *boundHeap) pop() boundItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s[l].lb < s[min].lb {
			min = l
		}
		if r < n && s[r].lb < s[min].lb {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
