package wedge

// KProfile describes one candidate wedge-set size K: the frontier the
// dendrogram cut yields, its total envelope area (the paper's W figure of
// merit — smaller wedges bound tighter), and how unevenly members are packed
// into wedges.
type KProfile struct {
	K int `json:"k"`
	// Wedges is the actual frontier size (the cut clamps to at most K).
	Wedges int `json:"wedges"`
	// TotalArea is the summed base-envelope area of the frontier wedges;
	// MeanArea divides by the wedge count.
	TotalArea float64 `json:"total_area"`
	MeanArea  float64 `json:"mean_area"`
	// MaxMembers is the largest member count packed under a single wedge of
	// this frontier.
	MaxMembers int `json:"max_members"`
}

// TreeStats is a structural self-report of a built wedge hierarchy, serving
// the index introspection endpoint: wedge sizes across candidate K cuts and
// the quality of the agglomerative merges (how much area each merge added —
// bad merges produce fat wedges that never prune).
type TreeStats struct {
	// Members is the number of candidate series (rotations); Nodes counts all
	// dendrogram nodes, leaves included; Len is the series length.
	Members int `json:"members"`
	Nodes   int `json:"nodes"`
	Len     int `json:"len"`
	// MaxDepth is the deepest leaf's dendrogram depth (root = 0).
	MaxDepth int `json:"max_depth"`
	// RootArea is the root wedge's base envelope area — the widest the
	// hierarchy ever gets; per-sample that is RootArea/Len.
	RootArea float64 `json:"root_area"`
	// Merge quality: per merge, the area the merged wedge adds over its
	// larger child, normalized per sample (so it is comparable across series
	// lengths). Mean and max over all merges; a large max flags one merge
	// that glued dissimilar rotations together.
	MeanMergeInflation float64 `json:"mean_merge_inflation"`
	MaxMergeInflation  float64 `json:"max_merge_inflation"`
	// KProfiles samples the K-cut trade-off at powers of two up to MaxK
	// (always including K = MaxK, the all-singletons cut).
	KProfiles []KProfile `json:"k_profiles"`
}

// Stats walks the built hierarchy and returns its structural report. It uses
// the same locked frontier cache as searches, so it is safe to call
// concurrently with them (the extra cuts it materializes stay cached).
func (t *Tree) Stats() TreeStats {
	m := len(t.members)
	st := TreeStats{
		Members:  m,
		Nodes:    len(t.dend.Nodes),
		Len:      t.Len(),
		RootArea: t.env[len(t.env)-1].Area(),
	}
	for i := 0; i < m; i++ {
		if t.depth[i] > st.MaxDepth {
			st.MaxDepth = t.depth[i]
		}
	}
	n := float64(t.Len())
	merges := 0
	for id := m; id < len(t.dend.Nodes); id++ {
		node := t.dend.Nodes[id]
		childMax := t.env[node.Left].Area()
		if a := t.env[node.Right].Area(); a > childMax {
			childMax = a
		}
		infl := (t.env[id].Area() - childMax) / n
		st.MeanMergeInflation += infl
		if infl > st.MaxMergeInflation {
			st.MaxMergeInflation = infl
		}
		merges++
	}
	if merges > 0 {
		st.MeanMergeInflation /= float64(merges)
	}
	for k := 1; ; k *= 2 {
		if k >= m {
			st.KProfiles = append(st.KProfiles, t.kProfile(m))
			break
		}
		st.KProfiles = append(st.KProfiles, t.kProfile(k))
	}
	return st
}

func (t *Tree) kProfile(k int) KProfile {
	frontier := t.frontierFor(k)
	p := KProfile{K: k, Wedges: len(frontier)}
	for _, id := range frontier {
		p.TotalArea += t.env[id].Area()
		size := 1
		if id >= len(t.members) {
			size = t.dend.Nodes[id].Size
		}
		if size > p.MaxMembers {
			p.MaxMembers = size
		}
	}
	if len(frontier) > 0 {
		p.MeanArea = p.TotalArea / float64(len(frontier))
	}
	return p
}
