// Package wedge implements the paper's central machinery: hierarchically
// nested wedges over a set of candidate series (the query's rotations),
// the H-Merge search algorithm (Table 6), and the dynamic wedge-set-size
// controller (Section 4.1, final paragraphs).
package wedge

import (
	"lbkeogh/internal/dist"
	"lbkeogh/internal/envelope"
	"lbkeogh/internal/stats"
)

// KernelStageName is the stable stage tag for the exact-kernel stage — the
// final, non-bound stage of the pruning waterfall — in explain plans and
// /metrics labels.
const KernelStageName = "kernel"

// Kernel abstracts a distance measure for H-Merge: an exact (early
// abandoning) pairwise distance plus an admissible lower bound against a
// wedge that encloses a group of candidates. The three kernels mirror the
// three measures the paper supports: Euclidean, DTW and LCSS.
//
// All kernels are phrased as distances to be minimized; LCSS (a similarity)
// is wrapped in its normalized distance form 1 - LCSS/n, with the envelope
// match-count bound converted accordingly (the paper: "the minor changes
// include reversing some inequality signs since LCSS is a similarity
// measure").
type Kernel interface {
	// Distance returns the exact distance between q and c, abandoning once
	// it can prove the result exceeds r (r < 0 disables abandoning). The
	// boolean reports abandonment, in which case the distance is +Inf.
	Distance(q, c []float64, r float64, cnt *stats.Tally) (float64, bool)

	// LowerBound returns an admissible lower bound of Distance(q, m) for
	// every member m of the wedge env, abandoning once the bound provably
	// exceeds r. env must already include this kernel's widening (Radius).
	LowerBound(q []float64, env envelope.Envelope, r float64, cnt *stats.Tally) (float64, bool)

	// Radius is the envelope widening this kernel requires: 0 for Euclidean,
	// the Sakoe-Chiba band R for DTW, the matching window delta for LCSS.
	Radius() int

	// LeafLBIsExact reports whether LowerBound against a singleton wedge
	// equals Distance exactly (true for Euclidean), letting H-Merge skip the
	// redundant exact computation at leaves.
	LeafLBIsExact() bool

	// Name identifies the kernel in diagnostics.
	Name() string
}

// ED is the Euclidean-distance kernel.
type ED struct{}

// Distance implements Kernel using EA_Euclidean_Dist (Table 1).
//
//lbkeogh:hotpath
func (ED) Distance(q, c []float64, r float64, cnt *stats.Tally) (float64, bool) {
	return dist.EuclideanEA(q, c, r, cnt)
}

// LowerBound implements Kernel using EA_LB_Keogh (Table 5).
//
//lbkeogh:hotpath
//lbkeogh:lowerbound
func (ED) LowerBound(q []float64, env envelope.Envelope, r float64, cnt *stats.Tally) (float64, bool) {
	return envelope.LBKeogh(q, env, r, cnt)
}

// Radius implements Kernel.
func (ED) Radius() int { return 0 }

// LeafLBIsExact implements Kernel: LB_Keogh against a singleton wedge
// degenerates to the Euclidean distance.
func (ED) LeafLBIsExact() bool { return true }

// Name implements Kernel.
func (ED) Name() string { return "euclidean" }

// DTW is the banded dynamic-time-warping kernel with Sakoe-Chiba radius R.
type DTW struct {
	R int
}

// Distance implements Kernel using early-abandoning banded DTW.
//
//lbkeogh:hotpath
func (k DTW) Distance(q, c []float64, r float64, cnt *stats.Tally) (float64, bool) {
	return dist.DTWEA(q, c, k.R, r, cnt)
}

// LowerBound implements Kernel using LB_KeoghDTW (Proposition 2); env must
// be widened by R.
//
//lbkeogh:hotpath
//lbkeogh:lowerbound
func (k DTW) LowerBound(q []float64, env envelope.Envelope, r float64, cnt *stats.Tally) (float64, bool) {
	return envelope.LBKeogh(q, env, r, cnt)
}

// Radius implements Kernel.
func (k DTW) Radius() int { return k.R }

// LeafLBIsExact implements Kernel: a singleton DTW wedge still only lower
// bounds the warped distance.
func (DTW) LeafLBIsExact() bool { return false }

// Name implements Kernel.
func (k DTW) Name() string { return "dtw" }

// LCSS is the Longest-Common-SubSequence kernel in normalized distance form
// 1 - LCSS/n, with matching window Delta and threshold Eps.
type LCSS struct {
	Delta int
	Eps   float64
}

// Distance implements Kernel. LCSS has no incremental early-abandon in our
// implementation; it computes the exact value and reports abandonment if the
// result exceeds r, which preserves correctness (abandonment is only an
// optimization).
//
//lbkeogh:hotpath
func (k LCSS) Distance(q, c []float64, r float64, cnt *stats.Tally) (float64, bool) {
	d := dist.LCSSDist(q, c, k.Delta, k.Eps, cnt)
	if r >= 0 && d > r {
		return dist.Inf, true
	}
	return d, false
}

// LowerBound implements Kernel: the envelope match count bounds the LCSS
// similarity from above, so 1 - count/n bounds the distance from below.
//
//lbkeogh:hotpath
//lbkeogh:lowerbound
func (k LCSS) LowerBound(q []float64, env envelope.Envelope, r float64, cnt *stats.Tally) (float64, bool) {
	//lint:ignore lbmono intentional inversion, audited: LCSS is a similarity, so the envelope match-count UPPER bound converts to an admissible distance lower bound via 1 - count/n (the paper's "reversing some inequality signs")
	ub := envelope.LCSSUpperBound(q, env, k.Eps, cnt)
	n := len(q)
	if n == 0 {
		return 0, false
	}
	lb := 1 - float64(ub)/float64(n)
	if r >= 0 && lb > r {
		return dist.Inf, true
	}
	return lb, false
}

// Radius implements Kernel.
func (k LCSS) Radius() int { return k.Delta }

// LeafLBIsExact implements Kernel.
func (LCSS) LeafLBIsExact() bool { return false }

// Name implements Kernel.
func (k LCSS) Name() string { return "lcss" }
