package wedge

import (
	"math"
	"testing"

	"lbkeogh/internal/stats"
	"lbkeogh/internal/ts"
)

func buildStatsTree(t *testing.T, m, n int) *Tree {
	t.Helper()
	rng := ts.NewRand(11)
	members := make([][]float64, m)
	for i := range members {
		s := make([]float64, n)
		for j := range s {
			s[j] = rng.Float64()*2 - 1
		}
		members[i] = s
	}
	var tally stats.Tally
	return Build(members, func(i, j int) float64 {
		var acc float64
		for k := range members[i] {
			d := members[i][k] - members[j][k]
			acc += d * d
		}
		return math.Sqrt(acc)
	}, &tally)
}

func TestTreeStats(t *testing.T) {
	const m, n = 40, 32
	tr := buildStatsTree(t, m, n)
	st := tr.Stats()
	if st.Members != m || st.Len != n {
		t.Errorf("Members/Len = %d/%d, want %d/%d", st.Members, st.Len, m, n)
	}
	if st.Nodes != 2*m-1 {
		t.Errorf("Nodes = %d, want %d", st.Nodes, 2*m-1)
	}
	if st.MaxDepth < 1 {
		t.Errorf("MaxDepth = %d, want >= 1", st.MaxDepth)
	}
	if st.RootArea <= 0 {
		t.Errorf("RootArea = %v, want > 0", st.RootArea)
	}
	if st.MeanMergeInflation <= 0 || st.MaxMergeInflation < st.MeanMergeInflation {
		t.Errorf("merge inflation mean %v max %v broken",
			st.MeanMergeInflation, st.MaxMergeInflation)
	}
	// K profiles: powers of two then MaxK, each cut no wider than K, areas
	// shrinking per wedge as K grows (finer wedges bound tighter).
	if len(st.KProfiles) == 0 {
		t.Fatal("no K profiles")
	}
	last := st.KProfiles[len(st.KProfiles)-1]
	if last.K != m || last.Wedges != m || last.MaxMembers != 1 {
		t.Errorf("final profile = %+v, want the all-singletons cut", last)
	}
	for i, p := range st.KProfiles {
		if p.Wedges > p.K {
			t.Errorf("profile %d: %d wedges for K=%d", i, p.Wedges, p.K)
		}
		if p.MaxMembers < 1 {
			t.Errorf("profile %d: MaxMembers = %d", i, p.MaxMembers)
		}
		if i > 0 && p.MeanArea > st.KProfiles[i-1].MeanArea+1e-9 {
			t.Errorf("profile %d: mean area %v grew over coarser cut's %v",
				i, p.MeanArea, st.KProfiles[i-1].MeanArea)
		}
	}
	// K=1 is the root wedge.
	if st.KProfiles[0].K != 1 || math.Abs(st.KProfiles[0].TotalArea-st.RootArea) > 1e-9 {
		t.Errorf("K=1 profile %+v != root area %v", st.KProfiles[0], st.RootArea)
	}
	// Singleton wedges are degenerate envelopes with zero area.
	if last.TotalArea > 1e-12 {
		t.Errorf("singleton cut total area = %v, want 0", last.TotalArea)
	}
}

func TestTreeStatsSingleMember(t *testing.T) {
	tr := buildStatsTree(t, 1, 8)
	st := tr.Stats()
	if st.Members != 1 || st.Nodes != 1 || st.MaxDepth != 0 {
		t.Errorf("single-member stats = %+v", st)
	}
	if st.MeanMergeInflation > 1e-12 || st.MaxMergeInflation > 1e-12 {
		t.Errorf("no merges, inflation = %v/%v", st.MeanMergeInflation, st.MaxMergeInflation)
	}
	if len(st.KProfiles) != 1 || st.KProfiles[0].K != 1 {
		t.Errorf("single-member profiles = %+v", st.KProfiles)
	}
}
