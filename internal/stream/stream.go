// Package stream implements wedge-based query filtering for streaming time
// series — the "Atomic Wedgie" application of the LB_Keogh framework
// (reference [40] of the paper, Wei, Keogh et al., ICDM 2005), which the
// paper cites as evidence that the wedge machinery generalizes beyond shape
// search.
//
// A Monitor holds a set of pattern series merged into hierarchical wedges.
// Each incoming stream value slides a window forward; the window is compared
// against the wedge set with early-abandoning LB_Keogh, descending into
// individual patterns only when a wedge cannot exclude them. The monitor
// reports exactly the (time, pattern) pairs a brute-force scan would — the
// same no-false-dismissal contract as the rest of the library.
package stream

import (
	"fmt"
	"time"

	"lbkeogh/internal/dist"
	"lbkeogh/internal/envelope"
	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/trace"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/wedge"
)

// Match reports one pattern firing at one stream position.
type Match struct {
	// End is the stream index of the last value of the matching window
	// (the window covers [End-n+1, End]).
	End int
	// Pattern indexes the pattern set given to NewMonitor.
	Pattern int
	// Dist is the exact kernel distance between window and pattern.
	Dist float64
}

// Monitor filters a stream against a fixed set of equal-length patterns.
type Monitor struct {
	tree      *wedge.Tree
	kernel    wedge.Kernel
	threshold float64
	n         int

	envs   []envelope.Envelope // per dendrogram node, widened by kernel radius
	buf    []float64           // ring buffer of the last n values
	filled int
	pos    int
	seen   int // total values consumed

	steps stats.Counter   // cumulative num_steps; Push flushes a stack-local Tally
	obs   obs.SearchStats // per-window pruning breakdowns
	trace obs.Tracer      // nil: untraced
	tlog  *trace.Log      // nil: no filter-latency histograms
}

// NewMonitor compiles patterns (all the same length n) into a wedge
// hierarchy for threshold filtering under kern. A window matches pattern p
// when the kernel distance is strictly below threshold.
func NewMonitor(patterns [][]float64, kern wedge.Kernel, threshold float64) (*Monitor, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("stream: no patterns")
	}
	n := len(patterns[0])
	if n < 2 {
		return nil, fmt.Errorf("stream: patterns need >= 2 samples")
	}
	for i, p := range patterns {
		if len(p) != n {
			return nil, fmt.Errorf("stream: pattern %d length %d != %d", i, len(p), n)
		}
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("stream: threshold must be positive")
	}
	tree := wedge.Build(patterns, func(i, j int) float64 {
		return dist.Euclidean(patterns[i], patterns[j], nil)
	}, nil)
	d := tree.Dendrogram()
	envs := make([]envelope.Envelope, len(d.Nodes))
	for id := range d.Nodes {
		envs[id] = tree.Envelope(id)
		if r := kern.Radius(); r > 0 {
			envs[id] = envs[id].ExpandDTW(r)
		}
	}
	return &Monitor{
		tree:      tree,
		kernel:    kern,
		threshold: threshold,
		n:         n,
		envs:      envs,
		buf:       make([]float64, n),
	}, nil
}

// WindowLen returns the pattern/window length n.
func (m *Monitor) WindowLen() int { return m.n }

// Steps reports the cumulative num_steps spent filtering.
func (m *Monitor) Steps() int64 { return m.steps.Steps() }

// Stats returns the monitor's instrumentation record: each full window is
// one "comparison", each pattern either wedge-pruned, abandoned, or fully
// evaluated.
func (m *Monitor) Stats() *obs.SearchStats { return &m.obs }

// SetTracer installs a tracer receiving per-wedge filter events (nil
// removes it).
func (m *Monitor) SetTracer(t obs.Tracer) { m.trace = t }

// SetTraceLog attaches a trace log whose monitor_filter stage histogram
// receives the wall duration of every full-window filter pass (nil removes
// it). Per-window spans are deliberately not recorded — a monitor pushes
// millions of values; the histogram is the useful granularity.
func (m *Monitor) SetTraceLog(l *trace.Log) { m.tlog = l }

// window materializes the current ring buffer in stream order.
func (m *Monitor) window() []float64 {
	out := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		out[i] = m.buf[(m.pos+i)%m.n]
	}
	return out
}

// Push consumes one stream value and returns the patterns matching the
// window that ends at this value (empty until the first full window, and
// whenever no pattern is within threshold).
//
// Unlike nearest-neighbour search, filtering must report EVERY pattern
// below threshold, so H-Merge's single-best contract does not apply
// directly; the monitor walks the wedge hierarchy pruning subtrees whose
// LB_Keogh already exceeds the threshold, and verifies each surviving leaf.
func (m *Monitor) Push(v float64) []Match {
	m.buf[m.pos] = v
	m.pos = (m.pos + 1) % m.n
	m.seen++
	if m.filled < m.n {
		m.filled++
		if m.filled < m.n {
			return nil
		}
	}
	var t0 time.Time
	if m.tlog != nil {
		t0 = time.Now()
	}
	w := m.window()
	var out []Match
	var local stats.Tally // kernel-facing scratch, flushed below
	m.obs.AddComparison(int64(m.tree.Members()))

	// Depth-first over the wedge hierarchy with threshold pruning.
	d := m.tree.Dendrogram()
	stack := []int{d.Root()}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := d.Nodes[id]
		if node.Left < 0 {
			m.obs.CountLeafVisit()
			dd, abandoned := m.kernel.Distance(w, m.tree.Member(id), m.threshold, &local)
			if abandoned {
				m.obs.CountAbandon()
				obs.TraceAbandon(m.trace, id)
				continue
			}
			m.obs.CountFullDist()
			if dd < m.threshold {
				out = append(out, Match{End: m.seen - 1, Pattern: id, Dist: dd})
			}
			continue
		}
		lb, abandoned := m.kernel.LowerBound(w, m.envs[id], m.threshold, &local)
		if abandoned || lb >= m.threshold {
			m.obs.CountWedgePrune(m.tree.Depth(id), int64(node.Size))
			obs.TraceWedgeVisit(m.trace, id, m.tree.Depth(id), lb, true)
			continue
		}
		m.obs.CountNodeVisit()
		obs.TraceWedgeVisit(m.trace, id, m.tree.Depth(id), lb, false)
		stack = append(stack, node.Left, node.Right)
	}
	delta := local.Steps()
	m.steps.Add(delta)
	m.obs.AddSteps(delta)
	m.obs.ObserveComparisonSteps(delta)
	if m.tlog != nil {
		m.tlog.ObserveStage(trace.StageMonitorFilter, int64(time.Since(t0)))
	}
	return out
}

// PushAll consumes a batch of values and concatenates the matches.
func (m *Monitor) PushAll(values []float64) []Match {
	var out []Match
	for _, v := range values {
		out = append(out, m.Push(v)...)
	}
	return out
}
