package stream

import (
	"math"
	"sort"
	"testing"

	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

// bruteFilter replays the stream with a plain sliding window and exhaustive
// pattern comparison — the reference the monitor must match exactly.
func bruteFilter(values []float64, patterns [][]float64, kern wedge.Kernel, threshold float64) []Match {
	n := len(patterns[0])
	var out []Match
	for end := n - 1; end < len(values); end++ {
		w := values[end-n+1 : end+1]
		for p, pat := range patterns {
			d, _ := kern.Distance(w, pat, -1, nil)
			if d < threshold {
				out = append(out, Match{End: end, Pattern: p, Dist: d})
			}
		}
	}
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(a, b int) bool {
		if ms[a].End != ms[b].End {
			return ms[a].End < ms[b].End
		}
		return ms[a].Pattern < ms[b].Pattern
	})
}

func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	sortMatches(a)
	sortMatches(b)
	for i := range a {
		if a[i].End != b[i].End || a[i].Pattern != b[i].Pattern ||
			math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
			return false
		}
	}
	return true
}

func testStream(seed int64, length int, patterns [][]float64) []float64 {
	rng := ts.NewRand(seed)
	stream := ts.RandomSeries(rng, length)
	// Embed each pattern once, with mild noise.
	for p, pat := range patterns {
		at := (p + 1) * length / (len(patterns) + 2)
		for i, v := range pat {
			stream[at+i] = v + 0.05*rng.NormFloat64()
		}
	}
	return stream
}

func makePatterns(seed int64, k, n int) [][]float64 {
	rng := ts.NewRand(seed)
	out := make([][]float64, k)
	for i := range out {
		out[i] = ts.RandomWalk(rng, n)
	}
	return out
}

func TestMonitorMatchesBruteED(t *testing.T) {
	patterns := makePatterns(1, 4, 32)
	stream := testStream(2, 400, patterns)
	m, err := NewMonitor(patterns, wedge.ED{}, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	got := m.PushAll(stream)
	want := bruteFilter(stream, patterns, wedge.ED{}, 2.0)
	if len(want) == 0 {
		t.Fatal("test stream should contain matches")
	}
	if !matchesEqual(got, want) {
		t.Fatalf("monitor %d matches != brute %d matches", len(got), len(want))
	}
}

func TestMonitorMatchesBruteDTW(t *testing.T) {
	patterns := makePatterns(3, 3, 24)
	stream := testStream(4, 300, patterns)
	kern := wedge.DTW{R: 2}
	m, err := NewMonitor(patterns, kern, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	got := m.PushAll(stream)
	want := bruteFilter(stream, patterns, kern, 1.5)
	if !matchesEqual(got, want) {
		t.Fatalf("DTW monitor %d matches != brute %d matches", len(got), len(want))
	}
}

func TestMonitorFindsEmbeddedPatterns(t *testing.T) {
	patterns := makePatterns(5, 3, 32)
	stream := testStream(6, 500, patterns)
	m, err := NewMonitor(patterns, wedge.ED{}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, match := range m.PushAll(stream) {
		found[match.Pattern] = true
	}
	for p := range patterns {
		if !found[p] {
			t.Fatalf("embedded pattern %d never fired", p)
		}
	}
}

func TestMonitorNoMatchesBeforeWindowFills(t *testing.T) {
	patterns := makePatterns(7, 2, 16)
	m, err := NewMonitor(patterns, wedge.ED{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if got := m.Push(patterns[0][i%16]); got != nil {
			t.Fatalf("match before window filled at %d: %v", i, got)
		}
	}
}

func TestMonitorSavesStepsOverBrute(t *testing.T) {
	patterns := makePatterns(8, 16, 64)
	rng := ts.NewRand(9)
	stream := ts.RandomSeries(rng, 2000) // pure noise: everything prunes
	m, err := NewMonitor(patterns, wedge.ED{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m.PushAll(stream)
	windows := int64(2000 - 63)
	brutePerWindow := int64(16 * 64) // full comparison per pattern
	if m.Steps() >= windows*brutePerWindow/4 {
		t.Fatalf("wedge filtering saved too little: %d steps vs brute %d",
			m.Steps(), windows*brutePerWindow)
	}
}

func TestMonitorValidation(t *testing.T) {
	good := makePatterns(10, 2, 8)
	if _, err := NewMonitor(nil, wedge.ED{}, 1); err == nil {
		t.Fatal("want error for empty pattern set")
	}
	if _, err := NewMonitor([][]float64{{1}}, wedge.ED{}, 1); err == nil {
		t.Fatal("want error for 1-sample patterns")
	}
	if _, err := NewMonitor([][]float64{good[0], good[1][:4]}, wedge.ED{}, 1); err == nil {
		t.Fatal("want error for ragged patterns")
	}
	if _, err := NewMonitor(good, wedge.ED{}, 0); err == nil {
		t.Fatal("want error for non-positive threshold")
	}
	m, err := NewMonitor(good, wedge.ED{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.WindowLen() != 8 {
		t.Fatalf("WindowLen = %d", m.WindowLen())
	}
}
