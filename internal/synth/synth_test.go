package synth

import (
	"math"
	"testing"

	"lbkeogh/internal/core"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

func TestMakeClassDatasetShape(t *testing.T) {
	d := MakeClassDataset("test", 1, 4, 5, 64, false, DefaultInstanceConfig())
	if len(d.Series) != 20 || len(d.Labels) != 20 || d.NumClasses != 4 || d.N != 64 {
		t.Fatalf("dataset malformed: %d series, %d labels", len(d.Series), len(d.Labels))
	}
	for i, s := range d.Series {
		if len(s) != 64 {
			t.Fatalf("series %d has length %d", i, len(s))
		}
		if m := ts.Mean(s); math.Abs(m) > 1e-9 {
			t.Fatalf("series %d not z-normalized", i)
		}
		if d.Labels[i] != i%4 {
			t.Fatalf("label %d = %d, want %d", i, d.Labels[i], i%4)
		}
	}
}

func TestMakeClassDatasetDeterministic(t *testing.T) {
	a := MakeClassDataset("x", 9, 3, 4, 32, true, DefaultInstanceConfig())
	b := MakeClassDataset("x", 9, 3, 4, 32, true, DefaultInstanceConfig())
	for i := range a.Series {
		if !ts.Equal(a.Series[i], b.Series[i], 0) {
			t.Fatal("same seed must reproduce the dataset exactly")
		}
	}
	c := MakeClassDataset("x", 10, 3, 4, 32, true, DefaultInstanceConfig())
	if ts.Equal(a.Series[0], c.Series[0], 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestMakeClassDatasetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MakeClassDataset("bad", 1, 0, 5, 64, false, DefaultInstanceConfig())
}

func TestProjectilePointsShape(t *testing.T) {
	db := ProjectilePoints(1, 100, 251)
	if len(db) != 100 {
		t.Fatalf("m = %d", len(db))
	}
	for _, s := range db {
		if len(s) != 251 {
			t.Fatalf("n = %d", len(s))
		}
	}
	// Small m works too.
	if got := ProjectilePoints(2, 7, 64); len(got) != 7 {
		t.Fatalf("small m = %d", len(got))
	}
}

func TestHeterogeneousDiverse(t *testing.T) {
	db := Heterogeneous(3, 60, 128)
	if len(db) != 60 {
		t.Fatalf("m = %d", len(db))
	}
	// Heterogeneous data should have high mean pairwise rotation-invariant
	// distance relative to projectile points' within-class structure — a
	// cheap proxy: check distinctness of a few instances.
	for i := 1; i < 5; i++ {
		if ts.Equal(db[0], db[i], 1e-9) {
			t.Fatal("heterogeneous instances should differ")
		}
	}
}

// Within-class neighbours must be closer than cross-class ones under
// rotation-invariant ED for the classification datasets to be learnable.
func TestClassStructureLearnable(t *testing.T) {
	d := MakeClassDataset("learn", 5, 4, 8, 96, false, DefaultInstanceConfig())
	hits := 0
	for i := 0; i < 12; i++ { // subsample for speed
		q := d.Series[i]
		rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
		s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
		best, bestJ := math.Inf(1), -1
		for j := range d.Series {
			if j == i {
				continue
			}
			m := s.MatchSeries(d.Series[j], best, nil)
			if m.Found() && m.Dist < best {
				best, bestJ = m.Dist, j
			}
		}
		if d.Labels[bestJ] == d.Labels[i] {
			hits++
		}
	}
	if hits < 9 {
		t.Fatalf("1-NN hit rate too low on synthetic classes: %d/12", hits)
	}
}

func TestRasterMixedBag(t *testing.T) {
	bitmaps, labels := RasterMixedBag(9, 4, 3, 48)
	if len(bitmaps) != 12 || len(labels) != 12 {
		t.Fatalf("size: %d bitmaps, %d labels", len(bitmaps), len(labels))
	}
	for i, b := range bitmaps {
		if b.Count() == 0 {
			t.Fatalf("bitmap %d empty", i)
		}
		// Fat shapes: the foreground must cover a substantial fraction of the
		// canvas (the radial-range compression guarantees a fat core).
		if frac := float64(b.Count()) / float64(48*48); frac < 0.1 {
			t.Fatalf("bitmap %d suspiciously thin: %.3f", i, frac)
		}
		if labels[i] != i%4 {
			t.Fatalf("label %d = %d", i, labels[i])
		}
	}
	// Deterministic.
	again, _ := RasterMixedBag(9, 4, 3, 48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 48; x++ {
			if bitmaps[0].Get(x, y) != again[0].Get(x, y) {
				t.Fatal("RasterMixedBag not deterministic")
			}
		}
	}
}

func TestMakeSiblingDatasetConfusable(t *testing.T) {
	cfg := DefaultInstanceConfig()
	tight := MakeSiblingDataset("sib", 5, 2, 6, 64, 0.02, cfg)
	wide := MakeSiblingDataset("sib", 5, 2, 6, 64, 0.5, cfg)
	if len(tight.Series) != 12 || tight.NumClasses != 2 {
		t.Fatalf("sibling dataset malformed")
	}
	// Wider spread should separate the sibling classes more: compare the
	// mean cross-class rotation-invariant distance.
	meanCross := func(d *Dataset) float64 {
		var sum float64
		var cnt int
		for i := range d.Series {
			if d.Labels[i] != 0 {
				continue
			}
			rs := core.NewRotationSet(d.Series[i], core.DefaultOptions(), nil)
			s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
			for j := range d.Series {
				if d.Labels[j] != 1 {
					continue
				}
				m := s.MatchSeries(d.Series[j], -1, nil)
				sum += m.Dist
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	if meanCross(wide) <= meanCross(tight) {
		t.Fatalf("wider sibling spread should separate classes more: %v vs %v",
			meanCross(wide), meanCross(tight))
	}
}

func TestMakeSiblingDatasetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MakeSiblingDataset("bad", 1, 0, 1, 8, 0.1, DefaultInstanceConfig())
}

func TestTable8Catalogue(t *testing.T) {
	names := Table8Names()
	if len(names) != 10 || names[0] != "Face" || names[9] != "Yoga" {
		t.Fatalf("Table8Names = %v", names)
	}
	for _, name := range names {
		if Table8PaperSize(name) <= 0 {
			t.Fatalf("%s: missing paper size", name)
		}
	}
}

func TestTable8DatasetsInstantiate(t *testing.T) {
	for _, name := range Table8Names() {
		d, err := Table8Dataset(name, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.N != Table8SeriesLength {
			t.Fatalf("%s: n = %d", name, d.N)
		}
		if len(d.Series) < 2*d.NumClasses {
			t.Fatalf("%s: too few instances %d", name, len(d.Series))
		}
		seen := map[int]bool{}
		for _, l := range d.Labels {
			seen[l] = true
		}
		if len(seen) != d.NumClasses {
			t.Fatalf("%s: %d observed classes, want %d", name, len(seen), d.NumClasses)
		}
	}
}

func TestTable8UnknownName(t *testing.T) {
	if _, err := Table8Dataset("nope", 1); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestGlyphs(t *testing.T) {
	g, err := Glyphs(96)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 6 {
		t.Fatalf("glyph count = %d", len(g))
	}
	for ch, sig := range g {
		if len(sig) != 96 {
			t.Fatalf("%c: length %d", ch, len(sig))
		}
	}
	// b and d are mirror images: mirror-invariant match must be near zero
	// while the plain rotation-invariant match is not.
	rsPlain := core.NewRotationSet(g['b'], core.DefaultOptions(), nil)
	rsMir := core.NewRotationSet(g['b'], core.Options{Mirror: true, MaxShift: -1}, nil)
	plain := core.NewSearcher(rsPlain, wedge.ED{}, core.Wedge, core.SearcherConfig{}).MatchSeries(g['d'], -1, nil)
	mir := core.NewSearcher(rsMir, wedge.ED{}, core.Wedge, core.SearcherConfig{}).MatchSeries(g['d'], -1, nil)
	if mir.Dist >= plain.Dist {
		t.Fatalf("mirror invariance should shrink b-d distance: %v vs %v", mir.Dist, plain.Dist)
	}
}

func TestSkullFamilies(t *testing.T) {
	species := SkullSpecies()
	if len(species) != 8 {
		t.Fatalf("species count = %d", len(species))
	}
	rng := ts.NewRand(5)
	n := 128
	// Same-species (a/b pairs) must match closer than cross-genus pairs.
	owlA := SkullSignature(rng, species["owl-monkey-a"], n, 0.01)
	owlB := SkullSignature(rng, species["owl-monkey-b"], n, 0.01)
	orang := SkullSignature(rng, species["orangutan-adult"], n, 0.01)
	rs := core.NewRotationSet(owlA, core.DefaultOptions(), nil)
	s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
	dSame := s.MatchSeries(owlB, -1, nil)
	dDiff := s.MatchSeries(orang, -1, nil)
	if dSame.Dist >= dDiff.Dist {
		t.Fatalf("owl monkeys should cluster: same %v vs diff %v", dSame.Dist, dDiff.Dist)
	}
}
