// Package synth generates the synthetic datasets that stand in for the
// paper's real image collections (see DESIGN.md, substitutions): projectile
// points, the heterogeneous mix, the ten Table-8 classification families,
// procedural "skulls" for the clustering figures, and glyphs for the
// mirror-invariance and rotation-limited demos.
//
// Every generator is driven by an explicit seed and returns z-normalized
// centroid-distance signatures at arbitrary rotation, i.e. exactly the input
// the paper's algorithms consume. Class structure is created in the radius
// domain: a per-class base contour plus per-instance harmonics, articulation
// (feature positions slide along the contour — the distortion DTW absorbs
// and ED cannot), occlusion and noise.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"lbkeogh/internal/shape"
	"lbkeogh/internal/ts"
)

// classBase builds a deterministic per-class base contour: a superformula
// backbone plus a few fixed bumps, giving each class a distinctive
// signature.
func classBase(rng *rand.Rand, spiky bool) func(float64) float64 {
	sf := shape.Superformula{
		M:  float64(2 + rng.Intn(9)),
		N1: 1.5 + 4*rng.Float64(),
		N2: 2 + 10*rng.Float64(),
		N3: 2 + 10*rng.Float64(),
		A:  1,
		B:  1,
	}
	if spiky {
		sf.N1 = 0.6 + 0.8*rng.Float64()
		sf.N2 = 6 + 14*rng.Float64()
		sf.N3 = sf.N2
	}
	// Fixed feature bumps (brow ridge / tang / fin analogues).
	type bump struct{ at, w, amp float64 }
	bumps := make([]bump, 1+rng.Intn(3))
	for i := range bumps {
		bumps[i] = bump{
			at:  rng.Float64() * 2 * math.Pi,
			w:   0.2 + 0.5*rng.Float64(),
			amp: 0.08 + 0.25*rng.Float64(),
		}
	}
	return func(theta float64) float64 {
		r := sf.Radius(theta)
		// Normalize the superformula's scale so bumps are comparable.
		for _, b := range bumps {
			d := theta - b.at
			for d > math.Pi {
				d -= 2 * math.Pi
			}
			for d < -math.Pi {
				d += 2 * math.Pi
			}
			if x := d / b.w; x > -1 && x < 1 {
				r *= 1 + b.amp*(1+math.Cos(math.Pi*x))/2
			}
		}
		return r
	}
}

// InstanceConfig tunes how much within-class variation instances get.
type InstanceConfig struct {
	Noise        float64 // multiplicative contour ripple amplitude
	Articulation float64 // max angular feature slide (radians)
	OcclusionP   float64 // probability of a missing part
	Rotate       bool    // random circular rotation (always true in practice)
	MirrorP      float64 // probability an instance is mirrored
}

// DefaultInstanceConfig gives moderate within-class variation.
func DefaultInstanceConfig() InstanceConfig {
	return InstanceConfig{Noise: 0.03, Articulation: 0.12, Rotate: true}
}

// instance renders one series from the class base contour.
func instance(rng *rand.Rand, base func(float64) float64, n int, cfg InstanceConfig) []float64 {
	rs := shape.NewRadialShape(base)
	if cfg.Articulation > 0 {
		at := rng.Float64() * 2 * math.Pi
		rs = rs.WithArticulation(at, 0.4+0.4*rng.Float64(), cfg.Articulation*(2*rng.Float64()-1))
	}
	if cfg.Noise > 0 {
		rs = rs.WithNoise(rng, cfg.Noise)
	}
	if cfg.OcclusionP > 0 && rng.Float64() < cfg.OcclusionP {
		rs = rs.WithOcclusion(rng.Float64()*2*math.Pi, 0.2+0.3*rng.Float64(), 0.6)
	}
	sig := shape.RadialSignature(rs.Radius, n)
	if cfg.MirrorP > 0 && rng.Float64() < cfg.MirrorP {
		sig = ts.Mirror(sig)
	}
	if cfg.Rotate {
		sig = ts.Rotate(sig, rng.Intn(n))
	}
	return ts.ZNorm(sig)
}

// Dataset is a labelled collection of equal-length series.
type Dataset struct {
	Name       string
	Series     [][]float64
	Labels     []int
	NumClasses int
	N          int
}

// MakeClassDataset builds `classes` classes with `perClass` instances each,
// of length n. Spiky selects projectile-point-like pointed contours.
func MakeClassDataset(name string, seed int64, classes, perClass, n int, spiky bool, cfg InstanceConfig) *Dataset {
	if classes < 1 || perClass < 1 || n < 4 {
		panic(fmt.Sprintf("synth: invalid dataset spec %d/%d/%d", classes, perClass, n))
	}
	baseRng := ts.NewRand(seed)
	bases := make([]func(float64) float64, classes)
	for c := range bases {
		bases[c] = classBase(ts.NewRand(baseRng.Int63()), spiky)
	}
	d := &Dataset{Name: name, NumClasses: classes, N: n}
	inst := ts.NewRand(seed + 1)
	for i := 0; i < classes*perClass; i++ {
		c := i % classes
		d.Series = append(d.Series, instance(inst, bases[c], n, cfg))
		d.Labels = append(d.Labels, c)
	}
	return d
}

// ProjectilePoints generates the homogeneous projectile-point workload of
// Figures 19–20: m spiky contour signatures of length n (251 in the paper)
// drawn from a moderate number of point "types", at arbitrary rotation.
func ProjectilePoints(seed int64, m, n int) [][]float64 {
	classes := 40
	if m < classes {
		classes = m
	}
	per := (m + classes - 1) / classes
	cfg := DefaultInstanceConfig()
	cfg.OcclusionP = 0.15 // broken tips and tangs (Figure 15)
	d := MakeClassDataset("projectile-points", seed, classes, per, n, true, cfg)
	return d.Series[:m]
}

// MakeSiblingDataset builds classes that are perturbations of one shared
// parent contour — deliberately confusable, like the paper's Yoga dataset
// (two visually similar pose silhouettes). spread sets the per-class
// perturbation amplitude: smaller spread, harder problem.
func MakeSiblingDataset(name string, seed int64, classes, perClass, n int, spread float64, cfg InstanceConfig) *Dataset {
	if classes < 1 || perClass < 1 || n < 4 {
		panic(fmt.Sprintf("synth: invalid dataset spec %d/%d/%d", classes, perClass, n))
	}
	rng := ts.NewRand(seed)
	parent := classBase(rng, false)
	bases := make([]func(float64) float64, classes)
	for c := range bases {
		order := 2 + c%5
		phase := rng.Float64() * 2 * math.Pi
		amp := spread
		bases[c] = func(theta float64) float64 {
			return parent(theta) * (1 + amp*math.Sin(float64(order)*theta+phase))
		}
	}
	d := &Dataset{Name: name, NumClasses: classes, N: n}
	inst := ts.NewRand(seed + 1)
	for i := 0; i < classes*perClass; i++ {
		c := i % classes
		d.Series = append(d.Series, instance(inst, bases[c], n, cfg))
		d.Labels = append(d.Labels, c)
	}
	return d
}

// RasterMixedBag renders a small MixedBag-style collection as binary rasters
// (size×size), each instance rotated by a random image-space angle — the
// input the image-space baselines (Chamfer, Hausdorff) and the full
// bitmap→signature pipeline both consume. Labels identify the class.
func RasterMixedBag(seed int64, classes, perClass, size int) ([]*shape.Bitmap, []int) {
	baseRng := ts.NewRand(seed)
	bases := make([]func(float64) float64, classes)
	for c := range bases {
		// Rounded contours only: the paper's MixedBag contains solid real
		// objects. Needle-thin spiky arms degenerate to 1-2 pixel strokes at
		// raster scale, where boundary topology itself changes with
		// orientation and no contour method is rotation-covariant.
		bases[c] = classBase(ts.NewRand(baseRng.Int63()), false)
	}
	// Compress each base's radial dynamic range into [0.45, 1]: the shape
	// then always contains a fat disk, so its boundary stays a single thick
	// closed curve at any raster orientation.
	for c := range bases {
		base := bases[c]
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 720; i++ {
			r := base(2 * math.Pi * float64(i) / 720)
			lo = math.Min(lo, r)
			hi = math.Max(hi, r)
		}
		span := hi - lo
		if span < 1e-9 {
			span = 1
		}
		bases[c] = func(theta float64) float64 {
			return 0.45 + 0.55*(base(theta)-lo)/span
		}
	}
	inst := ts.NewRand(seed + 1)
	var bitmaps []*shape.Bitmap
	var labels []int
	for i := 0; i < classes*perClass; i++ {
		c := i % classes
		rs := shape.NewRadialShape(bases[c]).WithNoise(inst, 0.02)
		bmp := shape.FromRadial(rs.Radius, size)
		angle := inst.Float64() * 2 * math.Pi
		bitmaps = append(bitmaps, bmp.Rotate(angle))
		labels = append(labels, c)
	}
	return bitmaps, labels
}

// Heterogeneous generates the mixed workload of Figure 21: instances drawn
// from many dissimilar families, length n (1024 in the paper).
func Heterogeneous(seed int64, m, n int) [][]float64 {
	families := 60
	if m < families {
		families = m
	}
	per := (m + families - 1) / families
	cfg := DefaultInstanceConfig()
	cfg.Noise = 0.05
	cfg.MirrorP = 0.2
	d := MakeClassDataset("heterogeneous", seed, families, per, n, false, cfg)
	// Interleave spiky shapes for extra diversity.
	spikyCfg := DefaultInstanceConfig()
	spiky := MakeClassDataset("heterogeneous-spiky", seed+7, families/2+1, per, n, true, spikyCfg)
	out := make([][]float64, 0, m)
	for i := 0; len(out) < m; i++ {
		if i%3 == 2 {
			out = append(out, spiky.Series[i%len(spiky.Series)])
		} else {
			out = append(out, d.Series[i%len(d.Series)])
		}
	}
	return out
}
