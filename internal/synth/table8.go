package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lbkeogh/internal/lightcurve"
	"lbkeogh/internal/shape"
	"lbkeogh/internal/ts"
)

// table8Spec mirrors one row of the paper's Table 8: the class count is the
// paper's, the instance count is scaled down so leave-one-out 1-NN runs in
// seconds (documented per dataset in EXPERIMENTS.md), and the articulation
// level controls how much DTW should beat ED (the paper's observed gap).
type table8Spec struct {
	classes      int
	perClass     int
	paperSize    int
	articulation float64
	noise        float64
	spiky        bool
	occlusionP   float64
	// siblingSpread > 0 derives all classes from one parent contour with
	// this perturbation amplitude (deliberately confusable classes, like the
	// paper's two-pose Yoga dataset).
	siblingSpread float64
	seed          int64
}

// table8Specs lists the ten datasets of Table 8. Articulation levels are
// chosen to reproduce the paper's qualitative outcome per row: strong
// DTW gains on OSU Leaves / Swedish Leaves / Light-Curve / Face, ties on
// Chicken / MixedBag / Diatoms / Yoga, small gains elsewhere.
var table8Specs = map[string]table8Spec{
	"Face":           {classes: 16, perClass: 14, paperSize: 2240, articulation: 0.30, noise: 0.13, seed: 101},
	"Swedish Leaves": {classes: 15, perClass: 10, paperSize: 1125, articulation: 0.40, noise: 0.18, seed: 102},
	"Chicken":        {classes: 5, perClass: 18, paperSize: 446, articulation: 0.12, noise: 0.46, seed: 103},
	"MixedBag":       {classes: 9, perClass: 12, paperSize: 160, articulation: 0.12, noise: 0.17, seed: 104},
	"OSU Leaves":     {classes: 6, perClass: 16, paperSize: 442, articulation: 0.50, noise: 0.25, spiky: true, seed: 105},
	"Diatoms":        {classes: 37, perClass: 4, paperSize: 781, articulation: 0.06, noise: 0.24, seed: 106},
	"Aircraft":       {classes: 7, perClass: 15, paperSize: 210, articulation: 0.12, noise: 0.06, spiky: true, seed: 107},
	"Fish":           {classes: 7, perClass: 15, paperSize: 350, articulation: 0.28, noise: 0.30, seed: 108},
	"Light-Curve":    {classes: 3, perClass: 40, paperSize: 954, articulation: 0, noise: 0.36, seed: 109},
	"Yoga":           {classes: 2, perClass: 25, paperSize: 3300, articulation: 0.05, noise: 0.12, occlusionP: 0.15, siblingSpread: 0.09, seed: 110},
}

// Table8Names returns the dataset names in the paper's row order.
func Table8Names() []string {
	names := make([]string, 0, len(table8Specs))
	for n := range table8Specs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return table8Order(names[i]) < table8Order(names[j]) })
	return names
}

func table8Order(name string) int {
	order := []string{"Face", "Swedish Leaves", "Chicken", "MixedBag", "OSU Leaves",
		"Diatoms", "Aircraft", "Fish", "Light-Curve", "Yoga"}
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}

// Table8SeriesLength is the signature length used for the classification
// experiments (scaled down from the paper's image resolutions for LOO speed).
const Table8SeriesLength = 128

// Table8Dataset instantiates one of the paper's ten classification datasets
// by name. The instance counts are scaled (see PaperSize vs len(Series));
// sizeScale multiplies the default per-class count (1.0 for defaults,
// clamped to at least 2 per class).
func Table8Dataset(name string, sizeScale float64) (*Dataset, error) {
	spec, ok := table8Specs[name]
	if !ok {
		return nil, fmt.Errorf("synth: unknown Table 8 dataset %q (have %v)", name, Table8Names())
	}
	per := int(float64(spec.perClass) * sizeScale)
	if per < 2 {
		per = 2
	}
	if name == "Light-Curve" {
		series, labels := lightcurve.Dataset(spec.seed, spec.classes*per, Table8SeriesLength, spec.noise)
		return &Dataset{
			Name:       name,
			Series:     series,
			Labels:     labels,
			NumClasses: spec.classes,
			N:          Table8SeriesLength,
		}, nil
	}
	cfg := InstanceConfig{
		Noise:        spec.noise,
		Articulation: spec.articulation,
		OcclusionP:   spec.occlusionP,
		Rotate:       true,
	}
	var d *Dataset
	if spec.siblingSpread > 0 {
		d = MakeSiblingDataset(name, spec.seed, spec.classes, per, Table8SeriesLength, spec.siblingSpread, cfg)
	} else {
		d = MakeClassDataset(name, spec.seed, spec.classes, per, Table8SeriesLength, spec.spiky, cfg)
	}
	return d, nil
}

// Table8PaperSize reports the instance count the paper used for the dataset.
func Table8PaperSize(name string) int {
	return table8Specs[name].paperSize
}

// Glyphs returns the signatures of the paper's motivating glyph examples:
// "b"/"d"/"p"/"q" for mirror invariance and "6"/"9" for rotation-limited
// queries, each rendered through the full raster pipeline at the given
// signature length.
func Glyphs(n int) (map[byte][]float64, error) {
	out := map[byte][]float64{}
	for _, ch := range []byte{'b', 'd', 'p', 'q', '6', '9'} {
		sig, err := glyphSignature(ch, n)
		if err != nil {
			return nil, err
		}
		out[ch] = sig
	}
	return out, nil
}

func glyphSignature(ch byte, n int) ([]float64, error) {
	sig, err := shape.Signature(shape.Letter(ch, 160), n)
	if err != nil {
		return nil, fmt.Errorf("synth: glyph %c: %w", ch, err)
	}
	return sig, nil
}

// SkullParams parametrizes the procedural "primate skull" contour used by
// the clustering examples (Figures 3 and 16): an elongated cranium, a brow
// ridge, a snout and a jaw notch, all expressed as radial features.
type SkullParams struct {
	Elongation float64 // cranium aspect ratio
	Brow       float64 // brow ridge amplitude
	Snout      float64 // snout protrusion
	Jaw        float64 // jaw notch depth
	// Crest is an occipital crest at the back of the skull. When it rivals
	// the snout in protrusion, the "most protruding point" landmark flips
	// between front and back across closely related specimens — exactly the
	// brittleness of major-axis alignment the paper demonstrates in Figure 3.
	Crest float64
	// BrowAt and JawAt place the brow ridge and jaw notch on the contour
	// (radians); zero selects the defaults 5.5 and 1.1. Feature positions are
	// what distinguish genera after z-normalization removes overall scale.
	BrowAt, JawAt float64
}

// Skull returns the radial contour for the given skull parameters.
func Skull(p SkullParams) func(float64) float64 {
	browAt, jawAt := p.BrowAt, p.JawAt
	if browAt == 0 {
		browAt = 5.5
	}
	if jawAt == 0 {
		jawAt = 1.1
	}
	return func(theta float64) float64 {
		// Ellipse-like cranium: radius of an ellipse with semi-axes
		// (1+Elongation, 1) at angle theta.
		c := math.Cos(theta) / (1 + p.Elongation)
		s := math.Sin(theta)
		r := 1 / math.Sqrt(c*c+s*s)
		// Snout: broad bump around theta = 0.
		r += p.Snout * bumpAt(theta, 0, 0.7)
		// Brow ridge: narrow bump above the snout.
		r += p.Brow * bumpAt(theta, browAt, 0.35)
		// Jaw notch: indentation below the snout.
		r -= p.Jaw * bumpAt(theta, jawAt, 0.45)
		// Occipital crest: bump at the back of the skull.
		r += p.Crest * bumpAt(theta, math.Pi, 0.5)
		if r < 0.05 {
			r = 0.05
		}
		return r
	}
}

// bumpAt is a smooth raised-cosine bump of the given angular half-width
// centred at `at`.
func bumpAt(theta, at, width float64) float64 {
	d := math.Mod(theta-at, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	if x := d / width; x > -1 && x < 1 {
		return (1 + math.Cos(math.Pi*x)) / 2
	}
	return 0
}

// SkullSpecies returns the named reference skulls used by examples/skulls,
// loosely mirroring the species in Figure 16: pairs of related forms plus
// outgroups.
func SkullSpecies() map[string]SkullParams {
	// Within each related pair the most protruding feature differs: one form
	// leads with the snout, the other with the occipital crest, so landmark
	// alignment rotates them ~180° apart while the shapes remain similar.
	// Within each pair the shapes are nearly identical; only the tiny
	// snout-vs-crest margin differs, flipping which point is most
	// protruding. A few degrees of landmark error then produce a large
	// Euclidean difference (the paper's Figure 3, bottom).
	return map[string]SkullParams{
		"owl-monkey-a":    {Elongation: 0.25, Brow: 0.45, Snout: 0.36, Jaw: 0.20, Crest: 0.32, BrowAt: 5.0, JawAt: 0.8},
		"owl-monkey-b":    {Elongation: 0.25, Brow: 0.45, Snout: 0.32, Jaw: 0.20, Crest: 0.36, BrowAt: 5.0, JawAt: 0.8},
		"howler-monkey-a": {Elongation: 0.45, Brow: 0.18, Snout: 0.56, Jaw: 0.55, Crest: 0.52, BrowAt: 5.9, JawAt: 1.6},
		"howler-monkey-b": {Elongation: 0.45, Brow: 0.18, Snout: 0.52, Jaw: 0.55, Crest: 0.56, BrowAt: 5.9, JawAt: 1.6},
		"orangutan-adult": {Elongation: 0.70, Brow: 0.70, Snout: 0.86, Jaw: 0.40, Crest: 0.82, BrowAt: 4.4, JawAt: 2.2},
		"orangutan-juv":   {Elongation: 0.64, Brow: 0.62, Snout: 0.74, Jaw: 0.36, Crest: 0.78, BrowAt: 4.4, JawAt: 2.2},
		"human":           {Elongation: 0.10, Brow: 0.15, Snout: 0.20, Jaw: 0.15, Crest: 0.16},
		"human-ancestor":  {Elongation: 0.16, Brow: 0.28, Snout: 0.26, Jaw: 0.17, Crest: 0.30},
	}
}

// SkullSignature renders a skull contour into a signature of length n at a
// random rotation, with smooth instance noise.
func SkullSignature(rng *rand.Rand, p SkullParams, n int, noise float64) []float64 {
	rs := shape.NewRadialShape(Skull(p))
	if noise > 0 {
		rs = rs.WithNoise(rng, noise)
	}
	sig := shape.RadialSignature(rs.Radius, n)
	return ts.Rotate(sig, rng.Intn(n))
}
