package core

import (
	"math"
	"testing"

	"lbkeogh/internal/stats"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

func parallelTestDB(seed int64, m, n int) ([][]float64, []float64) {
	rng := ts.NewRand(seed)
	db := make([][]float64, m)
	for i := range db {
		db[i] = ts.ZNorm(ts.RandomWalk(rng, n))
	}
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	return db, q
}

func TestScanParallelMatchesSerial(t *testing.T) {
	db, q := parallelTestDB(1, 200, 48)
	rs := NewRotationSet(q, DefaultOptions(), nil)
	for _, kern := range []wedge.Kernel{wedge.ED{}, wedge.DTW{R: 3}} {
		serial := NewSearcher(rs, kern, Wedge, SearcherConfig{}).Scan(db, nil)
		for _, workers := range []int{0, 1, 2, 4, 7} {
			got := ScanParallel(rs, kern, Wedge, SearcherConfig{}, db, workers, nil)
			if got.Index != serial.Index || math.Abs(got.Dist-serial.Dist) > 1e-9 {
				t.Fatalf("%s workers=%d: parallel (%d,%v) != serial (%d,%v)",
					kern.Name(), workers, got.Index, got.Dist, serial.Index, serial.Dist)
			}
		}
	}
}

func TestScanParallelAllStrategies(t *testing.T) {
	db, q := parallelTestDB(2, 100, 40)
	rs := NewRotationSet(q, DefaultOptions(), nil)
	want := NewSearcher(rs, wedge.ED{}, BruteForce, SearcherConfig{}).Scan(db, nil)
	for _, strat := range allStrategies() {
		got := ScanParallel(rs, wedge.ED{}, strat, SearcherConfig{}, db, 4, nil)
		if got.Index != want.Index || math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("%v: parallel (%d,%v) != brute (%d,%v)", strat, got.Index, got.Dist, want.Index, want.Dist)
		}
	}
}

func TestScanParallelTieBreaksToLowestIndex(t *testing.T) {
	rng := ts.NewRand(3)
	base := ts.ZNorm(ts.RandomWalk(rng, 32))
	db := make([][]float64, 64)
	for i := range db {
		db[i] = ts.ZNorm(ts.RandomWalk(rng, 32))
	}
	// Plant identical best matches at two positions; the lower index wins.
	db[37] = ts.Rotate(base, 5)
	db[11] = ts.Rotate(base, 20)
	rs := NewRotationSet(base, DefaultOptions(), nil)
	for trial := 0; trial < 5; trial++ {
		got := ScanParallel(rs, wedge.ED{}, Wedge, SearcherConfig{}, db, 8, nil)
		if got.Index != 11 {
			t.Fatalf("trial %d: tie broke to %d, want 11", trial, got.Index)
		}
		if got.Dist > 1e-9 {
			t.Fatalf("planted match distance %v", got.Dist)
		}
	}
}

func TestScanParallelStepsAccounted(t *testing.T) {
	db, q := parallelTestDB(4, 120, 32)
	rs := NewRotationSet(q, DefaultOptions(), nil)
	var cnt stats.Counter
	ScanParallel(rs, wedge.ED{}, Wedge, SearcherConfig{}, db, 4, &cnt)
	if cnt.Steps() == 0 {
		t.Fatal("parallel scan charged no steps")
	}
}

func TestScanParallelSmallDB(t *testing.T) {
	db, q := parallelTestDB(5, 3, 24)
	rs := NewRotationSet(q, DefaultOptions(), nil)
	serial := NewSearcher(rs, wedge.ED{}, Wedge, SearcherConfig{}).Scan(db, nil)
	got := ScanParallel(rs, wedge.ED{}, Wedge, SearcherConfig{}, db, 16, nil)
	if got.Index != serial.Index {
		t.Fatalf("tiny db: %d != %d", got.Index, serial.Index)
	}
}
