package core

import (
	"context"
	"math"
	"runtime"
	"sync"

	"lbkeogh/internal/cancel"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/wedge"
)

// ScanParallel performs the exact linear scan of Scan across the given
// number of workers (0 selects GOMAXPROCS). Every worker shares the rotation
// set's wedge tree (concurrency-safe) but owns its search state; the
// best-so-far threshold is shared through a mutex so all workers prune
// against the global best. The result is identical to the serial scan: the
// database series with the minimum rotation-invariant distance, with ties
// broken towards the lowest index.
//
// Work is handed out in contiguous chunks via an atomic-style cursor under
// the same mutex that guards the best-so-far; the per-item work dwarfs the
// coordination cost.
func ScanParallel(rs *RotationSet, kernel wedge.Kernel, strategy Strategy, cfg SearcherConfig, db [][]float64, workers int, cnt *stats.Counter) ScanResult {
	r, _ := ScanParallelContext(context.Background(), rs, kernel, strategy, cfg, db, workers, cnt) // uncancellable: never errs
	return r
}

// ScanParallelContext is ScanParallel bounded by ctx. Every worker owns its
// cancellation checkpoint (a checker, like the searcher it feeds, is
// single-goroutine) and polls it per comparison, so a cancellation stops
// all workers within one checkpoint interval each; the WaitGroup then joins
// them before the error is returned — a cancelled scan leaks no goroutines.
// An uncancelled ScanParallelContext is identical to ScanParallel.
func ScanParallelContext(ctx context.Context, rs *RotationSet, kernel wedge.Kernel, strategy Strategy, cfg SearcherConfig, db [][]float64, workers int, cnt *stats.Counter) (ScanResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(db) {
		workers = len(db)
	}
	if workers <= 1 {
		s := NewSearcher(rs, kernel, strategy, cfg)
		return s.ScanContext(ctx, db, cnt)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return ScanResult{Index: -1, Dist: math.Inf(1)}, err
	}

	const chunk = 16
	var mu sync.Mutex
	next := 0
	best := ScanResult{Index: -1, Dist: math.Inf(1)}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Workers share cnt (atomic) and any cfg.Obs record directly;
			// MatchSeries flushes its stack-local counter once per series, so
			// the shared atomics are touched O(1) times per comparison. Each
			// worker owns its checkpoint (single-goroutine, like the searcher).
			searcher := NewSearcher(rs, kernel, strategy, cfg)
			chk := cancel.New(ctx, CancelCheckInterval)
			searcher.SetCancelChecker(chk)
			for {
				mu.Lock()
				lo := next
				next += chunk
				threshold := best.Dist
				mu.Unlock()
				if lo >= len(db) {
					break
				}
				hi := lo + chunk
				if hi > len(db) {
					hi = len(db)
				}
				for i := lo; i < hi; i++ {
					if chk.Stop() != nil {
						return
					}
					m := searcher.MatchSeries(db[i], threshold, cnt)
					if chk.Err() != nil {
						return
					}
					if !m.Found() {
						continue
					}
					mu.Lock()
					if m.Dist < best.Dist || (m.Dist == best.Dist && i < best.Index) {
						best = ScanResult{Index: i, Dist: m.Dist, Member: m.Member}
					}
					threshold = best.Dist
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return ScanResult{Index: -1, Dist: math.Inf(1)}, err
	}
	if best.Index < 0 {
		return best, nil
	}
	// Ties at exactly equal distance across workers may resolve to a higher
	// index than the serial scan would report, because a worker that found
	// the tie first blocks the equal-distance match at a lower index (its
	// threshold comparison is strict). Resolve by re-checking all earlier
	// items at an epsilon-loosened threshold.
	searcher := NewSearcher(rs, kernel, strategy, cfg)
	searcher.SetCancelChecker(cancel.New(ctx, CancelCheckInterval))
	for i := 0; i < best.Index; i++ {
		if err := ctx.Err(); err != nil {
			return ScanResult{Index: -1, Dist: math.Inf(1)}, err
		}
		m := searcher.MatchSeries(db[i], best.Dist*(1+1e-12)+1e-300, cnt)
		if m.Found() && m.Dist <= best.Dist {
			best = ScanResult{Index: i, Dist: m.Dist, Member: m.Member}
			break
		}
	}
	return best, nil
}
