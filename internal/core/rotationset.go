// Package core implements rotation-invariant matching (Section 3 of the
// paper) and the four search strategies the evaluation compares: brute force
// (Tables 2–3), early abandoning, FFT-magnitude filtering, and the wedge /
// H-Merge strategy of Section 4.
//
// A query series C of length n is expanded into the rotation matrix C — all
// n circular shifts, optionally doubled with the mirror image's shifts for
// enantiomorphic invariance, and optionally restricted to a shift window for
// rotation-limited queries. The rotation-invariant distance to a database
// series X is then the minimum kernel distance from X to any row.
package core

import (
	"fmt"
	"math"

	"lbkeogh/internal/obs/trace"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

// Options configures the rotation matrix of a RotationSet.
type Options struct {
	// Mirror additionally admits all rotations of the mirror image
	// (enantiomorphic invariance, Section 3): matching a "d" to a "b".
	Mirror bool

	// MaxShift, when >= 0, restricts rotations to circular shifts in
	// [-MaxShift, +MaxShift] (rotation-limited queries, Section 3: "find the
	// best match allowing a maximum rotation of 15 degrees"). The default of
	// -1 admits every rotation.
	MaxShift int
}

// DefaultOptions admits all rotations, no mirror images.
func DefaultOptions() Options { return Options{Mirror: false, MaxShift: -1} }

// Member identifies one row of the rotation matrix.
type Member struct {
	// Shift is the circular shift applied to the base (or mirrored) series.
	Shift int
	// Mirrored reports whether the row comes from the mirror image.
	Mirrored bool
}

// RotationSet is the expanded rotation matrix of one query series together
// with its wedge hierarchy. Building one costs O(n²) — the set-up cost the
// paper charges against the wedge strategy — but it is built once per query
// and amortized over the whole database scan.
type RotationSet struct {
	base    []float64
	n       int
	members [][]float64
	ids     []Member
	tree    *wedge.Tree

	// Circulant distance profiles (see NewRotationSet).
	profSame  []float64
	profCross []float64

	// SetupSteps is the num_steps charged for construction (circulant
	// distance profile + envelope building).
	SetupSteps int64
}

// NewRotationSet expands base into its rotation matrix per opts and builds
// the hierarchical wedge structure over it. The pairwise distances needed by
// the clustering are computed in O(n²) total using the circulant structure
// of the rotation matrix: the Euclidean distance between two rotations of
// the same series depends only on their relative shift, and the distance
// between a rotation and a mirrored rotation depends only on the sum of the
// indices, so n + n profile entries suffice for the full matrix.
func NewRotationSet(base []float64, opts Options, cnt *stats.Counter) *RotationSet {
	return NewRotationSetTraced(base, opts, cnt, nil)
}

// NewRotationSetTraced is NewRotationSet with build-phase span recording:
// the rotation-matrix expansion (including the circulant distance profiles)
// and the wedge-hierarchy construction each get a span on rec. A nil rec is
// the untraced path.
func NewRotationSetTraced(base []float64, opts Options, cnt *stats.Counter, rec *trace.Recorder) *RotationSet {
	n := len(base)
	if n == 0 {
		panic("core: empty query series")
	}
	var local stats.Tally
	rotSpan := rec.Begin(trace.StageRotationMatrix, -1)

	// Which shifts are admitted?
	shifts := allowedShifts(n, opts.MaxShift)
	if len(shifts) == 0 {
		panic("core: rotation limit admits no rotations")
	}

	rs := &RotationSet{base: ts.Clone(base), n: n}
	for _, s := range shifts {
		rs.members = append(rs.members, ts.Rotate(base, s))
		rs.ids = append(rs.ids, Member{Shift: s})
	}
	var mirrored []float64
	if opts.Mirror {
		mirrored = ts.Mirror(base)
		for _, s := range shifts {
			rs.members = append(rs.members, ts.Rotate(mirrored, s))
			rs.ids = append(rs.ids, Member{Shift: s, Mirrored: true})
		}
	}

	// Circulant distance profiles.
	// same[l]  = ED(base, rotate(base, l)) — also the distance between two
	//            mirrored rotations at relative shift l.
	// cross[s] = ED(rot_i(base), rot_j(mirror)) for (i - j + n - 1) mod n = s.
	same := make([]float64, n)
	for l := 1; l < n; l++ {
		var acc float64
		for t := 0; t < n; t++ {
			d := base[t] - base[(t+l)%n]
			acc += d * d
		}
		same[l] = math.Sqrt(acc)
		local.Add(int64(n))
	}
	var cross []float64
	if opts.Mirror {
		cross = make([]float64, n)
		for s := 0; s < n; s++ {
			var acc float64
			for t := 0; t < n; t++ {
				d := base[t] - base[((s-t)%n+n)%n]
				acc += d * d
			}
			cross[s] = math.Sqrt(acc)
			local.Add(int64(n))
		}
	}

	rs.profSame = same
	rs.profCross = cross
	rec.End(rotSpan)
	wedgeSpan := rec.Begin(trace.StageWedgeBuild, -1)
	rs.tree = wedge.Build(rs.members, rs.memberDistance, &local)
	rec.End(wedgeSpan)
	rs.SetupSteps = local.Steps()
	cnt.Add(local.Steps())
	return rs
}

// memberDistance returns the Euclidean distance between rotation-matrix rows
// i and j via the O(1) circulant profile lookups.
func (rs *RotationSet) memberDistance(i, j int) float64 {
	a, b := rs.ids[i], rs.ids[j]
	n := rs.n
	if a.Mirrored == b.Mirrored {
		return rs.profSame[((a.Shift-b.Shift)%n+n)%n]
	}
	if a.Mirrored {
		a, b = b, a
	}
	return rs.profCross[((a.Shift-b.Shift+n-1)%n+n)%n]
}

// allowedShifts lists the admitted circular shifts: all of 0..n-1, or the
// window [-maxShift, maxShift] when limited.
func allowedShifts(n, maxShift int) []int {
	if maxShift < 0 || maxShift >= n/2 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	var out []int
	for s := -maxShift; s <= maxShift; s++ {
		out = append(out, ((s%n)+n)%n)
	}
	// Deduplicate (maxShift == 0 yields a single shift; the window never
	// wraps onto itself because maxShift < n/2).
	seen := map[int]bool{}
	uniq := out[:0]
	for _, s := range out {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	return uniq
}

// Len returns the series length n.
func (rs *RotationSet) Len() int { return rs.n }

// Members returns the number of rows in the rotation matrix.
func (rs *RotationSet) Members() int { return len(rs.members) }

// Member returns the i-th row.
func (rs *RotationSet) Member(i int) []float64 { return rs.members[i] }

// MemberID describes the i-th row (shift and mirroredness).
func (rs *RotationSet) MemberID(i int) Member { return rs.ids[i] }

// Tree exposes the wedge hierarchy (for the index layer and diagnostics).
func (rs *RotationSet) Tree() *wedge.Tree { return rs.tree }

// Base returns the original query series.
func (rs *RotationSet) Base() []float64 { return rs.base }

func (rs *RotationSet) checkLen(x []float64) {
	if len(x) != rs.n {
		panic(fmt.Sprintf("core: series length %d != query length %d", len(x), rs.n))
	}
}
