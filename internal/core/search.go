package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"lbkeogh/internal/cancel"
	"lbkeogh/internal/fourier"
	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/explain"
	"lbkeogh/internal/obs/trace"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/wedge"
)

// CancelCheckInterval is the cooperative-cancellation checkpoint interval:
// the scan loops and the per-rotation strategy loops poll the context's
// error once per this many checkpoint hits (comparisons at the scan level,
// rotations or wedge visits within one). A cancellation is therefore
// observed within one interval — at most a few kernel evaluations — while
// the uncancelled hot path pays one predictable branch per hit.
const CancelCheckInterval = cancel.DefaultInterval

// Strategy selects how a RotationSet is matched against database series.
type Strategy int

const (
	// BruteForce computes the full kernel distance for every rotation with no
	// early abandoning (the paper's "Brute force" baseline, Table 2 with
	// r = infinity throughout).
	BruteForce Strategy = iota
	// EarlyAbandon is Test_All_Rotations with early abandoning and
	// best-so-far propagation (Tables 1–3; the "Early abandon" baseline).
	EarlyAbandon
	// FFTFilter computes the rotation-invariant Fourier-magnitude lower bound
	// per database item first (cost model: n·log2(n) steps, as in Section 5.3)
	// and falls back to EarlyAbandon when the bound cannot prune. Euclidean
	// only — magnitudes do not lower-bound DTW.
	FFTFilter
	// Wedge is H-Merge over the hierarchical wedge set with the dynamic-K
	// controller (Section 4.1; the paper's contribution).
	Wedge
)

func (s Strategy) String() string {
	switch s {
	case BruteForce:
		return "brute"
	case EarlyAbandon:
		return "early-abandon"
	case FFTFilter:
		return "fft"
	case Wedge:
		return "wedge"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Match is the result of matching one database series against the rotation
// set: the exact minimum distance over all admitted rotations (or +Inf if a
// threshold proved unbeatable) and the minimizing rotation.
type Match struct {
	Dist    float64
	Member  Member
	found   bool
	aborted bool
}

// Found reports whether any rotation beat the threshold.
func (m Match) Found() bool { return m.found }

// Aborted reports whether a cancellation checkpoint stopped the comparison
// before every rotation was disposed of.
func (m Match) Aborted() bool { return m.aborted }

// Searcher matches database series against one query's rotation set under a
// fixed kernel and strategy. It carries the dynamic-K state across calls so
// a database scan behaves exactly as in the paper.
type Searcher struct {
	rs        *RotationSet
	kernel    wedge.Kernel
	strategy  Strategy
	traversal wedge.Traversal
	dyn       *wedge.DynamicK
	fixedK    int // > 0 disables the dynamic controller (ablation)
	queryMag  []float64
	obs       *obs.SearchStats // nil: the no-op sink
	tracer    obs.Tracer       // nil: untraced
	rec       *trace.Recorder  // nil: no span recording
	ref       int              // comparison ordinal within the current trace
	chk       *cancel.Checker  // nil: uncancellable
	exp       *explain.Op      // nil: no explain sampling
	expCtx    *explain.QueryContext
}

// SearcherConfig tunes a Searcher beyond its strategy.
type SearcherConfig struct {
	// Traversal selects the H-Merge visit order (default LIFO, as the paper).
	Traversal wedge.Traversal
	// FixedK, when > 0, pins the wedge-set size instead of running the
	// dynamic controller — used by the ablation benches.
	FixedK int
	// ProbeIntervals is the dynamic controller's single parameter (paper: 5).
	// <= 0 selects 5.
	ProbeIntervals int
	// Obs, when non-nil, receives the structured pruning/cost record of
	// every comparison. It is safe to share one record across the searchers
	// of a parallel scan.
	Obs *obs.SearchStats
	// Tracer, when non-nil, receives fine-grained search events (wedge
	// visits, abandons, dynamic-K changes).
	Tracer obs.Tracer
}

// NewSearcher builds a Searcher. FFTFilter requires a Euclidean kernel;
// anything else panics, because the magnitude bound is not admissible for
// warped measures.
func NewSearcher(rs *RotationSet, kernel wedge.Kernel, strategy Strategy, cfg SearcherConfig) *Searcher {
	if strategy == FFTFilter {
		if _, ok := kernel.(wedge.ED); !ok {
			panic("core: FFTFilter strategy requires the Euclidean kernel")
		}
	}
	intervals := cfg.ProbeIntervals
	if intervals <= 0 {
		intervals = 5
	}
	s := &Searcher{
		rs:        rs,
		kernel:    kernel,
		strategy:  strategy,
		traversal: cfg.Traversal,
		fixedK:    cfg.FixedK,
		dyn:       wedge.NewDynamicK(rs.Members(), intervals),
		obs:       cfg.Obs,
		tracer:    cfg.Tracer,
	}
	if s.obs != nil || s.tracer != nil {
		s.dyn.SetChangeHook(func(oldK, newK int) {
			s.obs.RecordKChange(oldK, newK)
			obs.TraceKChange(s.tracer, oldK, newK)
		})
	}
	if strategy == FFTFilter {
		s.queryMag = fourier.Magnitudes(rs.Base(), rs.Len()/2)
	}
	return s
}

// SetRecorder attaches (or, with nil, detaches) a span recorder for the next
// query. The comparison ordinal restarts at zero, so span refs index the scan.
// The recorder is single-goroutine: attach it to at most one searcher.
func (s *Searcher) SetRecorder(rec *trace.Recorder) {
	s.rec = rec
	s.ref = 0
}

// SetExplain attaches (or, with nil, detaches) explain state: sampled
// bound-waterfall measurement before comparisons and, when the op has
// attribution on, per-comparison counter-delta recording. Like the recorder,
// the op is single-goroutine: attach it to at most one searcher. A detached
// searcher pays one nil check per comparison.
func (s *Searcher) SetExplain(op *explain.Op) { s.exp = op }

// ExplainContext lazily builds (and caches) the measurement context explain
// ops need for this searcher's query: rotation members, root envelope and
// compressed-space features under the searcher's kernel.
func (s *Searcher) ExplainContext() *explain.QueryContext {
	if s.expCtx == nil {
		s.expCtx = explain.NewQueryContext(s.rs.Base(), s.rs.Members(), s.rs.Member, s.rs.tree, s.kernel)
	}
	return s.expCtx
}

// SetCancelChecker attaches (or, with nil, detaches) a cooperative
// cancellation checkpoint. Like the Searcher itself, the checker is
// single-goroutine: attach it to at most one searcher. While attached, the
// strategy loops poll it per rotation (or per wedge visit) and abort the
// comparison once it trips; the undisposed rotations are attributed to the
// cancelled outcome bucket so the record still reconciles.
func (s *Searcher) SetCancelChecker(chk *cancel.Checker) { s.chk = chk }

// Kernel returns the searcher's distance kernel.
func (s *Searcher) Kernel() wedge.Kernel { return s.kernel }

// Strategy returns the searcher's strategy.
func (s *Searcher) Strategy() Strategy { return s.strategy }

// CurrentK reports the wedge-set size in effect (diagnostics).
func (s *Searcher) CurrentK() int {
	if s.fixedK > 0 {
		return s.fixedK
	}
	return s.dyn.Current()
}

// MatchSeries returns the exact rotation-invariant match of x against the
// query, subject to threshold r (r < 0 or +Inf: unbounded). The returned
// Match.Dist is +Inf when every rotation provably exceeds r. The num_steps
// spent are charged to cnt.
func (s *Searcher) MatchSeries(x []float64, r float64, cnt *stats.Counter) Match {
	if s.exp != nil {
		return s.matchSeriesExplained(x, r, cnt)
	}
	if s.rec != nil {
		return s.matchSeriesTraced(x, r, cnt)
	}
	return s.matchSeries(x, r, cnt, nil)
}

// matchSeriesExplained wraps one comparison with explain sampling: the op
// decides whether to measure the full bound waterfall for this candidate
// (never charging the query's counters), and under attribution the
// comparison's own counter delta is recorded for the plan's survivor
// annotations.
func (s *Searcher) matchSeriesExplained(x []float64, r float64, cnt *stats.Counter) Match {
	s.exp.BeforeComparison(x, r)
	if !s.exp.Attribution() {
		if s.rec != nil {
			return s.matchSeriesTraced(x, r, cnt)
		}
		return s.matchSeries(x, r, cnt, nil)
	}
	before := s.obs.Counts()
	var m Match
	if s.rec != nil {
		m = s.matchSeriesTraced(x, r, cnt)
	} else {
		m = s.matchSeries(x, r, cnt, nil)
	}
	s.exp.RecordComparison(s.obs.Counts().Sub(before), m.Dist, m.Found(), m.Aborted())
	return m
}

// matchSeriesTraced wraps one comparison in a span carrying the counter
// deltas it caused, with the hot-path spans (H-Merge walk, kernel evals)
// staged through a stack-owned arena and flushed once per comparison —
// the span analogue of the stats.Tally discipline.
func (s *Searcher) matchSeriesTraced(x []float64, r float64, cnt *stats.Counter) Match {
	before := s.obs.Counts()
	comp := s.rec.Begin(trace.StageComparison, s.ref)
	s.ref++
	var ar trace.Arena
	ar.Init(s.rec)
	m := s.matchSeries(x, r, cnt, &ar)
	s.rec.FlushArena(&ar, comp)
	s.rec.EndAttrs(comp, s.obs.Counts().Sub(before))
	return m
}

func (s *Searcher) matchSeries(x []float64, r float64, cnt *stats.Counter, ar *trace.Arena) Match {
	s.rs.checkLen(x)
	s.obs.AddComparison(int64(s.rs.Members()))
	var local stats.Tally
	var m Match
	switch s.strategy {
	case BruteForce:
		m = s.matchBrute(x, r, &local)
	case EarlyAbandon:
		m = s.matchEarlyAbandon(x, r, &local)
	case FFTFilter:
		m = s.matchFFT(x, r, &local, ar)
	default:
		m = s.matchWedge(x, r, &local, ar)
	}
	cnt.Add(local.Steps())
	s.obs.AddSteps(local.Steps())
	s.obs.ObserveComparisonSteps(local.Steps())
	return m
}

func (s *Searcher) matchBrute(x []float64, r float64, cnt *stats.Tally) Match {
	best := math.Inf(1)
	bestIdx := -1
	for i := 0; i < s.rs.Members(); i++ {
		if s.chk.Stop() != nil {
			s.obs.AddOutcomes(int64(i), 0)
			s.obs.CountCancelled(int64(s.rs.Members() - i))
			return Match{Dist: math.Inf(1), aborted: true}
		}
		d, _ := s.kernel.Distance(x, s.rs.Member(i), -1, cnt)
		if d < best {
			best, bestIdx = d, i
		}
	}
	s.obs.AddOutcomes(int64(s.rs.Members()), 0)
	if r >= 0 && best >= r {
		return Match{Dist: math.Inf(1)}
	}
	return Match{Dist: best, Member: s.rs.MemberID(bestIdx), found: true}
}

func (s *Searcher) matchEarlyAbandon(x []float64, r float64, cnt *stats.Tally) Match {
	best := math.Inf(1)
	if r >= 0 {
		best = r
	}
	bestIdx := -1
	var fullDist, abandons int64 // batched into the record once per comparison
	for i := 0; i < s.rs.Members(); i++ {
		if s.chk.Stop() != nil {
			s.obs.AddOutcomes(fullDist, abandons)
			s.obs.CountCancelled(int64(s.rs.Members() - i))
			return Match{Dist: math.Inf(1), aborted: true}
		}
		d, abandoned := s.kernel.Distance(x, s.rs.Member(i), best, cnt)
		if abandoned {
			abandons++
			obs.TraceAbandon(s.tracer, i)
			continue
		}
		fullDist++
		if d < best {
			best, bestIdx = d, i
		}
	}
	s.obs.AddOutcomes(fullDist, abandons)
	if bestIdx < 0 {
		return Match{Dist: math.Inf(1)}
	}
	return Match{Dist: best, Member: s.rs.MemberID(bestIdx), found: true}
}

func (s *Searcher) matchFFT(x []float64, r float64, cnt *stats.Tally, ar *trace.Arena) Match {
	// The magnitude filter only applies under a finite threshold; an
	// unbounded match (r < 0) neither computes the bound nor pays for it.
	if r >= 0 {
		// Cost model from Section 5.3: n·log2(n) steps for the transform,
		// plus the magnitude-space Euclidean distance.
		ft0 := ar.Now()
		n := s.rs.Len()
		cnt.Add(int64(float64(n)*math.Log2(float64(n))) + int64(len(s.queryMag)))
		xmag := fourier.Magnitudes(x, n/2)
		rejected := fourier.LowerBoundED(s.queryMag, xmag) >= r
		ar.Emit(trace.StageFFT, -1, ft0, ar.Now()-ft0)
		if rejected {
			s.obs.CountFFTReject(int64(s.rs.Members()))
			return Match{Dist: math.Inf(1)}
		}
	}
	s.obs.CountFFTFallback()
	return s.matchEarlyAbandon(x, r, cnt)
}

func (s *Searcher) matchWedge(x []float64, r float64, cnt *stats.Tally, ar *trace.Arena) Match {
	K := s.fixedK
	if K <= 0 {
		K = s.dyn.K()
	}
	env := ar.Begin(trace.StageEnvelope, -1)
	res := s.rs.tree.SearchTraced(x, s.kernel, K, r, s.traversal, cnt, s.obs, s.tracer, ar, s.chk)
	ar.End(env)
	if res.Aborted {
		// A cancelled comparison must not feed the dynamic-K controller:
		// its partial step count would bias the wedge-set size and leave the
		// query in a different adaptive state than an uncancelled run.
		return Match{Dist: math.Inf(1), aborted: true}
	}
	improved := res.BestMember >= 0
	if s.fixedK <= 0 {
		s.dyn.Observe(res.Steps, improved)
	}
	if !improved {
		return Match{Dist: math.Inf(1)}
	}
	return Match{Dist: res.Dist, Member: s.rs.MemberID(res.BestMember), found: true}
}

// ScanResult is the outcome of a database scan: the nearest neighbour's
// index, its exact rotation-invariant distance and the best rotation.
type ScanResult struct {
	Index  int
	Dist   float64
	Member Member
}

// Scan is Search_Database_for_Rotated_Match (Table 3): a linear scan that
// finds the database series with the smallest rotation-invariant distance to
// the query, propagating the best-so-far as the early-abandon threshold.
func (s *Searcher) Scan(db [][]float64, cnt *stats.Counter) ScanResult {
	r, _ := s.ScanContext(context.Background(), db, cnt) // uncancellable: never errs
	return r
}

// beginScan installs a checkpoint for one context-bounded scan and reports
// an already-expired context before any work is done. The returned checker
// is nil (free) for uncancellable contexts.
func (s *Searcher) beginScan(ctx context.Context) (*cancel.Checker, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	chk := cancel.New(ctx, CancelCheckInterval)
	s.chk = chk
	return chk, nil
}

// endScan detaches the scan's checkpoint.
func (s *Searcher) endScan() { s.chk = nil }

// ScanContext is Scan bounded by ctx: the loop polls a cancellation
// checkpoint once per comparison (and the strategy loops poll it per
// rotation or wedge visit), so ctx.Err() is returned within one checkpoint
// interval of the cancellation. An already-expired ctx returns immediately
// without scanning. An uncancelled ScanContext is bit-identical to Scan.
func (s *Searcher) ScanContext(ctx context.Context, db [][]float64, cnt *stats.Counter) (ScanResult, error) {
	none := ScanResult{Index: -1, Dist: math.Inf(1)}
	chk, err := s.beginScan(ctx)
	if err != nil {
		return none, err
	}
	defer s.endScan()
	best := none
	for i, x := range db {
		if err := chk.Stop(); err != nil {
			return none, err
		}
		m := s.MatchSeries(x, best.Dist, cnt)
		if err := chk.Err(); err != nil {
			return none, err
		}
		if m.Found() && m.Dist < best.Dist {
			best = ScanResult{Index: i, Dist: m.Dist, Member: m.Member}
		}
	}
	return best, nil
}

// ScanTopK returns the k nearest database series in ascending distance
// order, using the k-th best as the abandoning threshold.
func (s *Searcher) ScanTopK(db [][]float64, k int, cnt *stats.Counter) []ScanResult {
	rs, _ := s.ScanTopKContext(context.Background(), db, k, cnt) // uncancellable: never errs
	return rs
}

// ScanTopKContext is ScanTopK bounded by ctx, with the same checkpoint
// semantics as ScanContext.
func (s *Searcher) ScanTopKContext(ctx context.Context, db [][]float64, k int, cnt *stats.Counter) ([]ScanResult, error) {
	if k < 1 {
		k = 1
	}
	chk, err := s.beginScan(ctx)
	if err != nil {
		return nil, err
	}
	defer s.endScan()
	var heapRes []ScanResult // sorted ascending, max len k
	threshold := func() float64 {
		if len(heapRes) < k {
			return math.Inf(1)
		}
		return heapRes[len(heapRes)-1].Dist
	}
	for i, x := range db {
		if err := chk.Stop(); err != nil {
			return nil, err
		}
		m := s.MatchSeries(x, threshold(), cnt)
		if err := chk.Err(); err != nil {
			return nil, err
		}
		if !m.Found() || m.Dist >= threshold() {
			continue
		}
		r := ScanResult{Index: i, Dist: m.Dist, Member: m.Member}
		pos := len(heapRes)
		for pos > 0 && heapRes[pos-1].Dist > r.Dist {
			pos--
		}
		heapRes = append(heapRes, ScanResult{})
		copy(heapRes[pos+1:], heapRes[pos:])
		heapRes[pos] = r
		if len(heapRes) > k {
			heapRes = heapRes[:k]
		}
	}
	return heapRes, nil
}

// ScanRangeContext returns every database series whose rotation-invariant
// distance is strictly below threshold, in ascending distance order (ties
// towards the lower index), bounded by ctx with the same checkpoint
// semantics as ScanContext. The fixed threshold serves as the early-abandon
// bound for every comparison.
func (s *Searcher) ScanRangeContext(ctx context.Context, db [][]float64, threshold float64, cnt *stats.Counter) ([]ScanResult, error) {
	chk, err := s.beginScan(ctx)
	if err != nil {
		return nil, err
	}
	defer s.endScan()
	var out []ScanResult
	for i, x := range db {
		if err := chk.Stop(); err != nil {
			return nil, err
		}
		m := s.MatchSeries(x, threshold, cnt)
		if err := chk.Err(); err != nil {
			return nil, err
		}
		if m.Found() && m.Dist < threshold {
			out = append(out, ScanResult{Index: i, Dist: m.Dist, Member: m.Member})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	return out, nil
}
