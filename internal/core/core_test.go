package core

import (
	"math"
	"testing"
	"testing/quick"

	"lbkeogh/internal/dist"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

// bruteRED is the reference rotation-invariant distance: the minimum kernel
// distance over the explicitly enumerated rotation matrix.
func bruteRED(q, x []float64, k wedge.Kernel, mirror bool, maxShift int) (float64, Member) {
	n := len(q)
	best := math.Inf(1)
	var bestM Member
	try := func(s int, mir bool) {
		rot := q
		if mir {
			rot = ts.Mirror(q)
		}
		d, _ := k.Distance(x, ts.Rotate(rot, s), -1, nil)
		if d < best {
			best = d
			bestM = Member{Shift: s, Mirrored: mir}
		}
	}
	for s := 0; s < n; s++ {
		ok := maxShift < 0 || maxShift >= n/2
		if !ok {
			rel := s
			if rel > n/2 {
				rel = rel - n
			}
			ok = rel >= -maxShift && rel <= maxShift
		}
		if !ok {
			continue
		}
		try(s, false)
		if mirror {
			try(s, true)
		}
	}
	return best, bestM
}

func TestRotationSetShape(t *testing.T) {
	rng := ts.NewRand(1)
	q := ts.RandomWalk(rng, 32)
	rs := NewRotationSet(q, DefaultOptions(), nil)
	if rs.Members() != 32 || rs.Len() != 32 {
		t.Fatalf("members=%d len=%d", rs.Members(), rs.Len())
	}
	// Each member is the advertised rotation.
	for i := 0; i < rs.Members(); i++ {
		id := rs.MemberID(i)
		want := ts.Rotate(q, id.Shift)
		if !ts.Equal(rs.Member(i), want, 0) {
			t.Fatalf("member %d is not rotation %d", i, id.Shift)
		}
	}
}

func TestRotationSetMirrorDoubles(t *testing.T) {
	rng := ts.NewRand(2)
	q := ts.RandomWalk(rng, 20)
	rs := NewRotationSet(q, Options{Mirror: true, MaxShift: -1}, nil)
	if rs.Members() != 40 {
		t.Fatalf("mirror should double rows: %d", rs.Members())
	}
}

func TestRotationSetLimited(t *testing.T) {
	rng := ts.NewRand(3)
	q := ts.RandomWalk(rng, 30)
	rs := NewRotationSet(q, Options{MaxShift: 3}, nil)
	if rs.Members() != 7 { // shifts -3..3
		t.Fatalf("limited set has %d members, want 7", rs.Members())
	}
	rs = NewRotationSet(q, Options{MaxShift: 0}, nil)
	if rs.Members() != 1 {
		t.Fatalf("MaxShift 0 should admit only identity: %d", rs.Members())
	}
}

func TestRotationSetSetupCharged(t *testing.T) {
	rng := ts.NewRand(4)
	q := ts.RandomWalk(rng, 24)
	var cnt stats.Counter
	rs := NewRotationSet(q, DefaultOptions(), &cnt)
	if cnt.Steps() == 0 || cnt.Steps() != rs.SetupSteps {
		t.Fatalf("setup steps not charged: cnt=%d setup=%d", cnt.Steps(), rs.SetupSteps)
	}
	// Circulant profile alone is (n-1)*n.
	if rs.SetupSteps < int64(23*24) {
		t.Fatalf("setup steps %d below circulant cost", rs.SetupSteps)
	}
}

// The circulant trick must reproduce the real pairwise distances between
// rotation-matrix rows — including mirrored rows and limited windows.
func TestCirculantDistancesExact(t *testing.T) {
	rng := ts.NewRand(5)
	for _, opts := range []Options{
		{Mirror: false, MaxShift: -1},
		{Mirror: true, MaxShift: -1},
		{Mirror: true, MaxShift: 4},
	} {
		q := ts.RandomWalk(rng, 17)
		rs := NewRotationSet(q, opts, nil)
		for i := 0; i < rs.Members(); i++ {
			for j := 0; j < rs.Members(); j++ {
				want := dist.Euclidean(rs.Member(i), rs.Member(j), nil)
				got := rs.memberDistance(i, j)
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("opts %+v rows (%d,%d): profile %v != direct %v", opts, i, j, got, want)
				}
			}
		}
	}
}

func allStrategies() []Strategy {
	return []Strategy{BruteForce, EarlyAbandon, FFTFilter, Wedge}
}

func TestAllStrategiesAgreeED(t *testing.T) {
	rng := ts.NewRand(6)
	n := 40
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	db := make([][]float64, 12)
	for i := range db {
		db[i] = ts.ZNorm(ts.RandomWalk(rng, n))
	}
	// Plant a near-match: a rotated noisy copy of q.
	db[7] = ts.AddNoise(rng, ts.Rotate(q, 13), 0.05)

	rs := NewRotationSet(q, DefaultOptions(), nil)
	wantIdx, wantDist := -1, math.Inf(1)
	for i, x := range db {
		d, _ := bruteRED(q, x, wedge.ED{}, false, -1)
		if d < wantDist {
			wantIdx, wantDist = i, d
		}
	}
	for _, strat := range allStrategies() {
		s := NewSearcher(rs, wedge.ED{}, strat, SearcherConfig{})
		res := s.Scan(db, nil)
		if res.Index != wantIdx || math.Abs(res.Dist-wantDist) > 1e-9 {
			t.Fatalf("%v: scan (%d,%v) != brute (%d,%v)", strat, res.Index, res.Dist, wantIdx, wantDist)
		}
	}
}

func TestAllStrategiesAgreeDTW(t *testing.T) {
	rng := ts.NewRand(7)
	n := 32
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	db := make([][]float64, 8)
	for i := range db {
		db[i] = ts.ZNorm(ts.RandomWalk(rng, n))
	}
	db[3] = ts.AddNoise(rng, ts.Rotate(q, 5), 0.05)
	rs := NewRotationSet(q, DefaultOptions(), nil)
	kern := wedge.DTW{R: 3}
	wantIdx, wantDist := -1, math.Inf(1)
	for i, x := range db {
		d, _ := bruteRED(q, x, kern, false, -1)
		if d < wantDist {
			wantIdx, wantDist = i, d
		}
	}
	for _, strat := range []Strategy{BruteForce, EarlyAbandon, Wedge} {
		s := NewSearcher(rs, kern, strat, SearcherConfig{})
		res := s.Scan(db, nil)
		if res.Index != wantIdx || math.Abs(res.Dist-wantDist) > 1e-9 {
			t.Fatalf("%v: scan (%d,%v) != brute (%d,%v)", strat, res.Index, res.Dist, wantIdx, wantDist)
		}
	}
}

func TestFFTRequiresEuclidean(t *testing.T) {
	rng := ts.NewRand(8)
	rs := NewRotationSet(ts.RandomWalk(rng, 16), DefaultOptions(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("FFTFilter with DTW kernel must panic")
		}
	}()
	NewSearcher(rs, wedge.DTW{R: 2}, FFTFilter, SearcherConfig{})
}

func TestMatchSeriesRotationInvariance(t *testing.T) {
	rng := ts.NewRand(9)
	n := 36
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	x := ts.ZNorm(ts.RandomWalk(rng, n))
	rs := NewRotationSet(q, DefaultOptions(), nil)
	s := NewSearcher(rs, wedge.ED{}, Wedge, SearcherConfig{})
	base := s.MatchSeries(x, -1, nil)
	for _, k := range []int{1, 9, 35} {
		got := s.MatchSeries(ts.Rotate(x, k), -1, nil)
		if math.Abs(got.Dist-base.Dist) > 1e-9 {
			t.Fatalf("RED not rotation invariant: %v vs %v (shift %d)", got.Dist, base.Dist, k)
		}
	}
}

func TestMirrorInvariance(t *testing.T) {
	rng := ts.NewRand(10)
	n := 30
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	x := ts.Mirror(ts.Rotate(q, 11)) // a mirrored rotation of q
	plain := NewRotationSet(q, DefaultOptions(), nil)
	mir := NewRotationSet(q, Options{Mirror: true, MaxShift: -1}, nil)
	sPlain := NewSearcher(plain, wedge.ED{}, Wedge, SearcherConfig{})
	sMir := NewSearcher(mir, wedge.ED{}, Wedge, SearcherConfig{})
	dPlain := sPlain.MatchSeries(x, -1, nil)
	dMir := sMir.MatchSeries(x, -1, nil)
	if dMir.Dist > 1e-9 {
		t.Fatalf("mirror-invariant match should be ~0, got %v", dMir.Dist)
	}
	if !dMir.Member.Mirrored {
		t.Fatal("best member should be a mirrored rotation")
	}
	if dPlain.Dist < 0.5 {
		t.Fatalf("plain match unexpectedly close (%v); test shape too symmetric", dPlain.Dist)
	}
}

func TestRotationLimitedSemantics(t *testing.T) {
	rng := ts.NewRand(11)
	n := 40
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	// x is q rotated by 10 — outside a ±3 limit, inside a ±12 limit.
	x := ts.Rotate(q, 10)
	narrow := NewRotationSet(q, Options{MaxShift: 3}, nil)
	wide := NewRotationSet(q, Options{MaxShift: 12}, nil)
	sn := NewSearcher(narrow, wedge.ED{}, Wedge, SearcherConfig{})
	sw := NewSearcher(wide, wedge.ED{}, Wedge, SearcherConfig{})
	dn := sn.MatchSeries(x, -1, nil)
	dw := sw.MatchSeries(x, -1, nil)
	if dw.Dist > 1e-9 {
		t.Fatalf("wide limit should find exact match, got %v", dw.Dist)
	}
	// Note x = Rotate(q, 10) means member shift -10 ≡ n-10 reproduces it:
	// Rotate(q, n-10) vs x ... the matching shift is +10 in the member list.
	if got := dw.Member.Shift; got != 10 {
		t.Fatalf("matching shift = %d, want 10", got)
	}
	if dn.Dist < dw.Dist || dn.Dist < 1e-6 {
		t.Fatalf("narrow limit should not find the +10 rotation: %v", dn.Dist)
	}
	// Narrow result must equal brute force restricted to the window.
	want, _ := bruteRED(q, x, wedge.ED{}, false, 3)
	if math.Abs(dn.Dist-want) > 1e-9 {
		t.Fatalf("narrow = %v, want %v", dn.Dist, want)
	}
}

func TestThresholdPruning(t *testing.T) {
	rng := ts.NewRand(12)
	n := 24
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	x := ts.ZNorm(ts.RandomWalk(rng, n))
	rs := NewRotationSet(q, DefaultOptions(), nil)
	for _, strat := range allStrategies() {
		s := NewSearcher(rs, wedge.ED{}, strat, SearcherConfig{})
		exact := s.MatchSeries(x, -1, nil)
		pruned := s.MatchSeries(x, exact.Dist*0.5, nil)
		if pruned.Found() {
			t.Fatalf("%v: threshold below min must not find a match", strat)
		}
		ok := s.MatchSeries(x, exact.Dist*1.01, nil)
		if !ok.Found() || math.Abs(ok.Dist-exact.Dist) > 1e-9 {
			t.Fatalf("%v: threshold above min must find exact value", strat)
		}
	}
}

func TestWedgeStepsBeatBruteOnScan(t *testing.T) {
	rng := ts.NewRand(13)
	n := 64
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	db := make([][]float64, 100)
	for i := range db {
		db[i] = ts.ZNorm(ts.RandomWalk(rng, n))
	}
	rs := NewRotationSet(q, DefaultOptions(), nil)
	var bruteCnt, wedgeCnt stats.Counter
	resB := NewSearcher(rs, wedge.ED{}, BruteForce, SearcherConfig{}).Scan(db, &bruteCnt)
	resW := NewSearcher(rs, wedge.ED{}, Wedge, SearcherConfig{}).Scan(db, &wedgeCnt)
	if resB.Index != resW.Index {
		t.Fatalf("strategies disagree: %d vs %d", resB.Index, resW.Index)
	}
	// Include the setup cost in the wedge ledger as the paper does.
	total := wedgeCnt.Steps() + rs.SetupSteps
	if total >= bruteCnt.Steps() {
		t.Fatalf("wedge total %d not below brute %d on m=100", total, bruteCnt.Steps())
	}
}

func TestScanTopK(t *testing.T) {
	rng := ts.NewRand(14)
	n := 28
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	db := make([][]float64, 20)
	for i := range db {
		db[i] = ts.ZNorm(ts.RandomWalk(rng, n))
	}
	rs := NewRotationSet(q, DefaultOptions(), nil)
	s := NewSearcher(rs, wedge.ED{}, Wedge, SearcherConfig{})
	top := s.ScanTopK(db, 5, nil)
	if len(top) != 5 {
		t.Fatalf("got %d results, want 5", len(top))
	}
	// Ascending order and exactness vs brute.
	var all []float64
	for _, x := range db {
		d, _ := bruteRED(q, x, wedge.ED{}, false, -1)
		all = append(all, d)
	}
	for i := 0; i < 5; i++ {
		if i > 0 && top[i].Dist < top[i-1].Dist {
			t.Fatal("results not sorted")
		}
		want, _ := bruteRED(q, db[top[i].Index], wedge.ED{}, false, -1)
		if math.Abs(top[i].Dist-want) > 1e-9 {
			t.Fatalf("top-%d dist %v != brute %v", i, top[i].Dist, want)
		}
	}
	// The 5th best must be <= every excluded item's distance.
	excluded := map[int]bool{}
	for _, r := range top {
		excluded[r.Index] = true
	}
	for i, d := range all {
		if !excluded[i] && d < top[4].Dist-1e-9 {
			t.Fatalf("missed a closer item %d (%v < %v)", i, d, top[4].Dist)
		}
	}
}

func TestFixedKAblation(t *testing.T) {
	rng := ts.NewRand(15)
	n := 32
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	x := ts.ZNorm(ts.RandomWalk(rng, n))
	rs := NewRotationSet(q, DefaultOptions(), nil)
	want := NewSearcher(rs, wedge.ED{}, BruteForce, SearcherConfig{}).MatchSeries(x, -1, nil)
	for _, K := range []int{1, 2, 8, 32} {
		s := NewSearcher(rs, wedge.ED{}, Wedge, SearcherConfig{FixedK: K})
		got := s.MatchSeries(x, -1, nil)
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("fixed K=%d: %v != %v", K, got.Dist, want.Dist)
		}
		if s.CurrentK() != K {
			t.Fatalf("CurrentK = %d, want %d", s.CurrentK(), K)
		}
	}
}

// Property: every strategy returns the identical exact RED on random data,
// with random mirror/limit options.
func TestStrategiesExactProperty(t *testing.T) {
	rng := ts.NewRand(16)
	f := func(mir bool, limSeed uint8) bool {
		n := 24
		maxShift := -1
		if limSeed%3 == 0 {
			maxShift = int(limSeed) % (n / 2)
		}
		q := ts.ZNorm(ts.RandomWalk(rng, n))
		x := ts.ZNorm(ts.RandomWalk(rng, n))
		rs := NewRotationSet(q, Options{Mirror: mir, MaxShift: maxShift}, nil)
		want, _ := bruteRED(q, x, wedge.ED{}, mir, maxShift)
		for _, strat := range allStrategies() {
			s := NewSearcher(rs, wedge.ED{}, strat, SearcherConfig{})
			got := s.MatchSeries(x, -1, nil)
			if math.Abs(got.Dist-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyString(t *testing.T) {
	if BruteForce.String() != "brute" || EarlyAbandon.String() != "early-abandon" ||
		FFTFilter.String() != "fft" || Wedge.String() != "wedge" {
		t.Fatal("Strategy.String broken")
	}
	if Strategy(42).String() != "Strategy(42)" {
		t.Fatal("unknown Strategy.String broken")
	}
}

func TestEmptyQueryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewRotationSet(nil, DefaultOptions(), nil)
}
