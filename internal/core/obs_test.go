package core

import (
	"testing"

	"lbkeogh/internal/obs"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/wedge"
)

// TestPruningCountsReconcile is the accounting contract of the obs layer:
// for every strategy (and both H-Merge traversal orders), each rotation
// covered by a comparison lands in exactly one outcome bucket, and the steps
// recorded in the stats record equal the steps charged to the caller's
// counter.
func TestPruningCountsReconcile(t *testing.T) {
	db, q := parallelTestDB(11, 120, 48)
	rs := NewRotationSet(q, DefaultOptions(), nil)
	cases := []struct {
		name      string
		strategy  Strategy
		traversal wedge.Traversal
	}{
		{"brute", BruteForce, wedge.LIFO},
		{"early-abandon", EarlyAbandon, wedge.LIFO},
		{"fft", FFTFilter, wedge.LIFO},
		{"wedge-lifo", Wedge, wedge.LIFO},
		{"wedge-bestfirst", Wedge, wedge.BestFirst},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := &obs.SearchStats{}
			var cnt stats.Counter
			s := NewSearcher(rs, wedge.ED{}, c.strategy, SearcherConfig{Obs: st, Traversal: c.traversal})
			s.Scan(db, &cnt)
			sn := st.Snapshot()
			if sn.Comparisons != int64(len(db)) {
				t.Fatalf("Comparisons = %d, want %d", sn.Comparisons, len(db))
			}
			if want := int64(len(db) * rs.Members()); sn.Rotations != want {
				t.Fatalf("Rotations = %d, want %d", sn.Rotations, want)
			}
			if !sn.Reconciles() {
				t.Fatalf("outcome buckets do not sum to rotations: %+v", sn)
			}
			if sn.Steps != cnt.Steps() {
				t.Fatalf("stats steps %d != counter steps %d", sn.Steps, cnt.Steps())
			}
			if got := int64(0); true {
				for _, b := range sn.StepsHistogram {
					got += b.Count
				}
				if got != sn.Comparisons {
					t.Fatalf("histogram holds %d observations, want one per comparison (%d)", got, sn.Comparisons)
				}
			}
			// Strategy-specific shape of the breakdown.
			switch c.strategy {
			case BruteForce:
				if sn.FullDistEvals != sn.Rotations || sn.EarlyAbandons != 0 {
					t.Fatalf("brute force should fully evaluate everything: %+v", sn)
				}
			case EarlyAbandon:
				if sn.FullDistEvals+sn.EarlyAbandons != sn.Rotations {
					t.Fatalf("early abandon should only fully-evaluate or abandon: %+v", sn)
				}
				if sn.EarlyAbandons == 0 {
					t.Fatal("expected some early abandons on a 120-series scan")
				}
			case FFTFilter:
				if sn.FFTRejects == 0 || sn.FFTRejectedMembers == 0 {
					t.Fatalf("expected magnitude-bound rejections: %+v", sn)
				}
				if sn.FFTRejects+sn.FFTFallbacks != sn.Comparisons {
					t.Fatalf("every comparison is rejected or falls through: %+v", sn)
				}
			case Wedge:
				if sn.WedgePrunedMembers == 0 {
					t.Fatalf("expected internal-wedge prunes: %+v", sn)
				}
				var byLevel int64
				for _, v := range sn.WedgePrunesByLevel {
					byLevel += v
				}
				if byLevel == 0 {
					t.Fatal("per-level breakdown is empty despite wedge prunes")
				}
			}
		})
	}
}

// TestWedgeReconcilesUnderDTW covers the warped-measure path, where leaves
// carry their own LB_Keogh bound (WedgeLeafLBPrunes) before the exact DTW.
func TestWedgeReconcilesUnderDTW(t *testing.T) {
	db, q := parallelTestDB(12, 60, 40)
	rs := NewRotationSet(q, DefaultOptions(), nil)
	st := &obs.SearchStats{}
	var cnt stats.Counter
	NewSearcher(rs, wedge.DTW{R: 3}, Wedge, SearcherConfig{Obs: st}).Scan(db, &cnt)
	sn := st.Snapshot()
	if !sn.Reconciles() {
		t.Fatalf("DTW wedge scan does not reconcile: %+v", sn)
	}
	if sn.Steps != cnt.Steps() {
		t.Fatalf("stats steps %d != counter steps %d", sn.Steps, cnt.Steps())
	}
}

// TestScanParallelSharedStats shares one record across all workers; run with
// -race this doubles as the concurrency check for the whole obs layer.
func TestScanParallelSharedStats(t *testing.T) {
	db, q := parallelTestDB(13, 200, 48)
	rs := NewRotationSet(q, DefaultOptions(), nil)
	for _, strat := range []Strategy{EarlyAbandon, Wedge} {
		st := &obs.SearchStats{}
		var cnt stats.Counter
		ScanParallel(rs, wedge.ED{}, strat, SearcherConfig{Obs: st}, db, 4, &cnt)
		sn := st.Snapshot()
		// The tie-resolution pass may re-check earlier items, so the record can
		// hold more comparisons than series — never fewer.
		if sn.Comparisons < int64(len(db)) {
			t.Fatalf("strategy %v: Comparisons = %d, want >= %d", strat, sn.Comparisons, len(db))
		}
		if !sn.Reconciles() {
			t.Fatalf("strategy %v: shared record does not reconcile: %+v", strat, sn)
		}
		if sn.Steps != cnt.Steps() {
			t.Fatalf("strategy %v: stats steps %d != counter steps %d", strat, sn.Steps, cnt.Steps())
		}
	}
}

// TestMatchFFTUnboundedSkipsTransform is the cost-accounting fix: with no
// threshold (r < 0) the magnitude filter can never reject, so the FFT
// strategy must neither compute nor charge the transform — its cost equals
// plain early abandoning.
func TestMatchFFTUnboundedSkipsTransform(t *testing.T) {
	db, q := parallelTestDB(14, 1, 64)
	x := db[0]
	rs := NewRotationSet(q, DefaultOptions(), nil)

	var fftCnt, eaCnt stats.Counter
	fft := NewSearcher(rs, wedge.ED{}, FFTFilter, SearcherConfig{})
	ea := NewSearcher(rs, wedge.ED{}, EarlyAbandon, SearcherConfig{})
	mf := fft.MatchSeries(x, -1, &fftCnt)
	me := ea.MatchSeries(x, -1, &eaCnt)
	if mf.Dist != me.Dist {
		t.Fatalf("distances differ: fft %v vs early-abandon %v", mf.Dist, me.Dist)
	}
	if fftCnt.Steps() != eaCnt.Steps() {
		t.Fatalf("unbounded FFT match charged %d steps, early abandon %d — transform should be skipped",
			fftCnt.Steps(), eaCnt.Steps())
	}

	// With a finite threshold the transform is charged again.
	var boundedCnt stats.Counter
	fft.MatchSeries(x, me.Dist, &boundedCnt)
	if boundedCnt.Steps() == 0 {
		t.Fatal("bounded FFT match should charge the transform")
	}
}

// TestTracerReceivesEvents wires a FuncTracer through a wedge scan and
// checks the hook counts line up with the stats record.
func TestTracerReceivesEvents(t *testing.T) {
	db, q := parallelTestDB(15, 80, 40)
	rs := NewRotationSet(q, DefaultOptions(), nil)
	var visits, prunes, abandons int64
	tr := &obs.FuncTracer{
		WedgeVisit: func(node, level int, lb float64, pruned bool) {
			if pruned {
				prunes++
			} else {
				visits++
			}
		},
		Abandon: func(member int) { abandons++ },
	}
	st := &obs.SearchStats{}
	var cnt stats.Counter
	NewSearcher(rs, wedge.ED{}, Wedge, SearcherConfig{Obs: st, Tracer: tr}).Scan(db, &cnt)
	sn := st.Snapshot()
	if visits != sn.WedgeNodeVisits {
		t.Fatalf("tracer saw %d unpruned wedge visits, stats %d", visits, sn.WedgeNodeVisits)
	}
	if abandons != sn.EarlyAbandons {
		t.Fatalf("tracer saw %d abandons, stats %d", abandons, sn.EarlyAbandons)
	}
	var pruneEvents int64
	for _, v := range sn.WedgePrunesByLevel {
		pruneEvents += v
	}
	if prunes != pruneEvents {
		t.Fatalf("tracer saw %d prunes, stats %d", prunes, pruneEvents)
	}
}
