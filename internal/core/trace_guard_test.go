package core

import (
	"math"
	"os"
	"sync"
	"testing"

	"lbkeogh/internal/obs/trace"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

// guardWorkload is a fixed scan shared by the tracing-overhead benchmarks so
// both sides measure identical work.
var guardWorkload struct {
	once sync.Once
	rs   *RotationSet
	db   [][]float64
}

func guardSetup() (*RotationSet, [][]float64) {
	guardWorkload.once.Do(func() {
		rng := ts.NewRand(11)
		q := ts.RandomWalk(rng, 64)
		guardWorkload.rs = NewRotationSet(q, DefaultOptions(), nil)
		guardWorkload.db = make([][]float64, 32)
		for i := range guardWorkload.db {
			guardWorkload.db[i] = ts.RandomWalk(rng, 64)
		}
	})
	return guardWorkload.rs, guardWorkload.db
}

// scanDirect is the untraced baseline: matchSeries with no recorder plumbing
// at all.
func scanDirect(b *testing.B) {
	rs, db := guardSetup()
	s := NewSearcher(rs, wedge.ED{}, Wedge, SearcherConfig{})
	var cnt stats.Counter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.matchSeries(db[i%len(db)], -1, &cnt, nil)
	}
}

// scanNilRecorder is the production entry point with tracing disabled: one
// nil check per comparison, nothing else.
func scanNilRecorder(b *testing.B) {
	rs, db := guardSetup()
	s := NewSearcher(rs, wedge.ED{}, Wedge, SearcherConfig{})
	s.SetRecorder(nil)
	var cnt stats.Counter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MatchSeries(db[i%len(db)], -1, &cnt)
	}
}

// scanNilExplain is the production entry point with BOTH diagnostics hooks
// explicitly disabled: the explain nil check plus the recorder nil check,
// exactly what every steady-state comparison pays.
func scanNilExplain(b *testing.B) {
	rs, db := guardSetup()
	s := NewSearcher(rs, wedge.ED{}, Wedge, SearcherConfig{})
	s.SetRecorder(nil)
	s.SetExplain(nil)
	var cnt stats.Counter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MatchSeries(db[i%len(db)], -1, &cnt)
	}
}

func BenchmarkMatchSeriesUntraced(b *testing.B)    { scanDirect(b) }
func BenchmarkMatchSeriesNilRecorder(b *testing.B) { scanNilRecorder(b) }
func BenchmarkMatchSeriesNilExplain(b *testing.B)  { scanNilExplain(b) }

// BenchmarkMatchSeriesTraced shows the cost of full span recording, for
// comparison; it is not subject to the 2% guard.
func BenchmarkMatchSeriesTraced(b *testing.B) {
	rs, db := guardSetup()
	s := NewSearcher(rs, wedge.ED{}, Wedge, SearcherConfig{})
	rec := trace.NewRecorder("bench", trace.DefaultSpanCap)
	s.SetRecorder(rec)
	var cnt stats.Counter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MatchSeries(db[i%len(db)], -1, &cnt)
	}
}

// TestNilRecorderOverheadGuard asserts the issue's performance criterion:
// with no recorder attached, MatchSeries must stay within 2% of the direct
// untraced path. Wall-clock comparisons are noisy under shared CI machines,
// so the guard runs only when LBKEOGH_PERF_GUARD is set (it is part of the
// documented local gate, not the default test run).
func TestNilRecorderOverheadGuard(t *testing.T) {
	if os.Getenv("LBKEOGH_PERF_GUARD") == "" {
		t.Skip("set LBKEOGH_PERF_GUARD=1 to run the tracing-overhead guard")
	}
	best := func(f func(b *testing.B)) float64 {
		lo := math.Inf(1)
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			if ns := float64(r.T.Nanoseconds()) / float64(r.N); ns < lo {
				lo = ns
			}
		}
		return lo
	}
	// Warm all paths once so none pays first-touch costs.
	testing.Benchmark(scanDirect)
	testing.Benchmark(scanNilRecorder)
	testing.Benchmark(scanNilExplain)
	direct := best(scanDirect)
	nilRec := best(scanNilRecorder)
	ratio := nilRec / direct
	t.Logf("untraced %.0f ns/op, nil-recorder %.0f ns/op, ratio %.4f", direct, nilRec, ratio)
	if ratio > 1.02 {
		t.Errorf("nil-recorder path is %.2f%% slower than untraced search, budget is 2%%",
			(ratio-1)*100)
	}
	// The explain hook rides the same dispatch: with sampling disabled it must
	// stay one nil check, inside the same 2% budget.
	nilExp := best(scanNilExplain)
	ratio = nilExp / direct
	t.Logf("untraced %.0f ns/op, nil-explain %.0f ns/op, ratio %.4f", direct, nilExp, ratio)
	if ratio > 1.02 {
		t.Errorf("disabled-explain path is %.2f%% slower than untraced search, budget is 2%%",
			(ratio-1)*100)
	}
}
