package fourier

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"lbkeogh/internal/dist"
	"lbkeogh/internal/ts"
)

// naiveDFT is the O(n²) textbook reference.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			s += x[t] * cmplx.Rect(1, -2*math.Pi*float64(k)*float64(t)/float64(n))
		}
		out[k] = s
	}
	return out
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesNaive(t *testing.T) {
	rng := ts.NewRand(1)
	for _, n := range []int{1, 2, 3, 4, 5, 8, 12, 16, 17, 31, 32, 64, 100, 127, 128, 251} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := FFT(x)
		want := naiveDFT(x)
		if !complexClose(got, want, 1e-7*float64(n)) {
			t.Fatalf("n=%d: FFT differs from naive DFT", n)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := ts.NewRand(2)
	for _, n := range []int{1, 7, 16, 251, 256, 1000} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
		}
		y := IFFT(FFT(x))
		if !complexClose(x, y, 1e-9*float64(n)) {
			t.Fatalf("n=%d: IFFT(FFT(x)) != x", n)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if FFT(nil) != nil || IFFT(nil) != nil {
		t.Fatal("empty transforms should be nil")
	}
}

func TestFFTLinearity(t *testing.T) {
	rng := ts.NewRand(3)
	n := 40
	x := make([]complex128, n)
	y := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		y[i] = complex(rng.NormFloat64(), 0)
	}
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = 2*x[i] + 3*y[i]
	}
	X, Y, S := FFT(x), FFT(y), FFT(sum)
	for k := range S {
		if cmplx.Abs(S[k]-(2*X[k]+3*Y[k])) > 1e-8 {
			t.Fatal("FFT not linear")
		}
	}
}

func TestParseval(t *testing.T) {
	rng := ts.NewRand(4)
	for _, n := range []int{16, 251, 512} {
		x := ts.RandomSeries(rng, n)
		X := FFTReal(x)
		var timeE, freqE float64
		for _, v := range x {
			timeE += v * v
		}
		for _, V := range X {
			m := cmplx.Abs(V)
			freqE += m * m
		}
		freqE /= float64(n)
		if math.Abs(timeE-freqE) > 1e-8*timeE {
			t.Fatalf("n=%d: Parseval violated: %v vs %v", n, timeE, freqE)
		}
	}
}

func TestMagnitudesRotationInvariant(t *testing.T) {
	rng := ts.NewRand(5)
	for _, n := range []int{64, 251} {
		x := ts.RandomWalk(rng, n)
		base := Magnitudes(x, 16)
		for _, s := range []int{1, 7, n / 2, n - 1} {
			rot := Magnitudes(ts.Rotate(x, s), 16)
			if !ts.Equal(base, rot, 1e-9) {
				t.Fatalf("n=%d shift=%d: magnitudes not rotation invariant", n, s)
			}
		}
		mir := Magnitudes(ts.Mirror(x), 16)
		if !ts.Equal(base, mir, 1e-9) {
			t.Fatalf("n=%d: magnitudes not mirror invariant", n)
		}
	}
}

// The headline admissibility property: the magnitude distance lower-bounds
// the Euclidean distance under EVERY relative rotation, at every
// dimensionality.
func TestLowerBoundAdmissible(t *testing.T) {
	rng := ts.NewRand(6)
	for trial := 0; trial < 10; trial++ {
		n := 60
		q := ts.RandomWalk(rng, n)
		c := ts.RandomWalk(rng, n)
		for _, D := range []int{1, 4, 8, 16, 30} {
			lb := LowerBoundED(Magnitudes(q, D), Magnitudes(c, D))
			for s := 0; s < n; s++ {
				ed := dist.Euclidean(q, ts.Rotate(c, s), nil)
				if lb > ed+1e-9 {
					t.Fatalf("D=%d s=%d: LB %v exceeds ED %v", D, s, lb, ed)
				}
			}
		}
	}
}

func TestLowerBoundMonotoneInD(t *testing.T) {
	rng := ts.NewRand(7)
	n := 128
	q := ts.RandomWalk(rng, n)
	c := ts.RandomWalk(rng, n)
	prev := 0.0
	for _, D := range []int{1, 2, 4, 8, 16, 32, 64} {
		lb := LowerBoundED(Magnitudes(q, D), Magnitudes(c, D))
		if lb < prev-1e-12 {
			t.Fatalf("LB decreased when adding coefficients: D=%d %v < %v", D, lb, prev)
		}
		prev = lb
	}
}

func TestMagnitudesFullDTight(t *testing.T) {
	// With all n/2 coefficients (z-normalized input so DC is 0), the bound
	// equals the true minimum only when phases align; but it must equal the
	// magnitude-space distance and be <= min over rotations. For c == rotated
	// copy of q, the full-D bound must be ~0.
	rng := ts.NewRand(8)
	n := 100
	q := ts.ZNorm(ts.RandomWalk(rng, n))
	c := ts.Rotate(q, 17)
	lb := LowerBoundED(Magnitudes(q, n/2), Magnitudes(c, n/2))
	if lb > 1e-8 {
		t.Fatalf("rotated copy should have zero magnitude distance, got %v", lb)
	}
}

func TestMagnitudesClamping(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	if got := Magnitudes(x, 100); len(got) != 3 {
		t.Fatalf("D clamped to n/2: len = %d, want 3", len(got))
	}
	if got := Magnitudes(x, 0); len(got) != 1 {
		t.Fatalf("D clamped up to 1: len = %d, want 1", len(got))
	}
	if Magnitudes(nil, 4) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestLowerBoundEDPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	LowerBoundED([]float64{1}, []float64{1, 2})
}

// Property: admissibility holds for random series, random length (including
// primes via Bluestein), random shift and random D.
func TestLowerBoundProperty(t *testing.T) {
	rng := ts.NewRand(9)
	f := func(nSeed, dSeed, sSeed uint8) bool {
		n := 20 + int(nSeed)%50
		D := 1 + int(dSeed)%(n/2)
		s := int(sSeed) % n
		q := ts.RandomWalk(rng, n)
		c := ts.RandomWalk(rng, n)
		lb := LowerBoundED(Magnitudes(q, D), Magnitudes(c, D))
		ed := dist.Euclidean(q, ts.Rotate(c, s), nil)
		return lb <= ed+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
