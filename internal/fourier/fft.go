// Package fourier implements the discrete Fourier transform (radix-2
// Cooley-Tukey plus Bluestein's chirp-z algorithm for arbitrary lengths,
// stdlib only) and the rotation-invariant Fourier-magnitude lower bound used
// to index shapes (Section 4.2 of the paper, following Vlachos et al. [38]).
//
// The key fact: a circular shift of a real series multiplies each DFT
// coefficient by a unit-modulus phase, so coefficient magnitudes are
// invariant under rotation. By Parseval's theorem and the reverse triangle
// inequality applied per coefficient,
//
//	ED(Q, rotate(C, s)) >= ||mag(Q) - mag(C)||₂  for every shift s,
//
// where mag is the suitably scaled magnitude vector. Truncating the vector
// to its first D coefficients only discards non-negative terms, so the bound
// stays admissible at any dimensionality — which is what makes it usable
// inside a spatial index.
package fourier

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// BoundName is the stable stage tag for the Fourier-magnitude bound in
// pruning-waterfall telemetry (explain plans, /metrics labels).
const BoundName = "fft"

// FFT returns the discrete Fourier transform of x:
// X[k] = sum_t x[t] * exp(-2πi·kt/n). Any length is supported; powers of two
// use radix-2 Cooley-Tukey and other lengths use Bluestein's algorithm.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := make([]complex128, n)
		copy(out, x)
		fftPow2InPlace(out, false)
		return out
	}
	return bluestein(x)
}

// IFFT returns the inverse DFT of X, normalized by 1/n.
func IFFT(X []complex128) []complex128 {
	n := len(X)
	if n == 0 {
		return nil
	}
	conj := make([]complex128, n)
	for i, v := range X {
		conj[i] = cmplx.Conj(v)
	}
	y := FFT(conj)
	out := make([]complex128, n)
	for i, v := range y {
		out[i] = cmplx.Conj(v) / complex(float64(n), 0)
	}
	return out
}

// FFTReal transforms a real series.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// fftPow2InPlace is iterative radix-2 Cooley-Tukey; inverse selects the
// conjugate twiddles (without normalization).
func fftPow2InPlace(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	shift := bits.LeadingZeros(uint(n)) + 1
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		if inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * w
				a[start+k] = u + v
				a[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution with a chirp,
// evaluated with a power-of-two FFT of length >= 2n-1.
func bluestein(x []complex128) []complex128 {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	// chirp[k] = exp(-iπ k²/n); k² mod 2n avoids precision loss for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, -math.Pi*float64(kk)/float64(n))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	fftPow2InPlace(a, false)
	fftPow2InPlace(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftPow2InPlace(a, true)
	out := make([]complex128, n)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

// Magnitudes returns the D-dimensional rotation-invariant magnitude feature
// of a real series of length n: entry j holds the magnitude of DFT
// coefficient j+1 (the DC coefficient is skipped — it is zero for
// z-normalized data and carries no shape information), scaled so that the
// plain Euclidean distance between two feature vectors lower-bounds the
// Euclidean distance between the series under every relative rotation (see
// LowerBoundED). D must satisfy 1 <= D <= n/2; larger requests are clamped.
func Magnitudes(x []float64, D int) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	maxD := n / 2
	if maxD < 1 {
		maxD = 1
	}
	if D < 1 {
		D = 1
	}
	if D > maxD {
		D = maxD
	}
	X := FFTReal(x)
	out := make([]float64, D)
	for j := 0; j < D; j++ {
		k := j + 1
		// Coefficients k and n-k are conjugates for real input; both terms
		// appear in Parseval's sum, so each magnitude counts twice except at
		// the Nyquist frequency k = n/2 (for even n), which is its own mirror.
		weight := 2.0
		if 2*k == n {
			weight = 1.0
		}
		out[j] = math.Sqrt(weight/float64(n)) * cmplx.Abs(X[k])
	}
	return out
}

// LowerBoundED returns the Euclidean distance between two magnitude feature
// vectors (as produced by Magnitudes with the same D). The result lower
// bounds ED(q, rotate(c, s)) for every shift s — and, with mirror images,
// ED(q, rotate(mirror(c), s)) too, since reversal also preserves magnitudes.
//
// This is a documented root-space API boundary: callers compare the result
// directly against root-space best-so-far distances, so the Sqrt happens
// here, once, rather than in every caller.
//
//lbkeogh:rootspace
//lbkeogh:lowerbound
func LowerBoundED(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fourier: feature length mismatch %d vs %d", len(a), len(b)))
	}
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}
