package fourier

import (
	"math"
	"math/cmplx"
	"testing"

	"lbkeogh/internal/ts"
)

// An impulse transforms to a flat spectrum.
func TestFFTImpulse(t *testing.T) {
	n := 32
	x := make([]complex128, n)
	x[0] = 1
	X := FFT(x)
	for k, v := range X {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum not flat at %d: %v", k, v)
		}
	}
}

// A constant transforms to a DC spike.
func TestFFTConstant(t *testing.T) {
	n := 27 // exercise Bluestein
	x := make([]complex128, n)
	for i := range x {
		x[i] = 2
	}
	X := FFT(x)
	if cmplx.Abs(X[0]-complex(2*float64(n), 0)) > 1e-9 {
		t.Fatalf("DC coefficient = %v, want %v", X[0], 2*n)
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(X[k]) > 1e-9 {
			t.Fatalf("constant has energy at k=%d: %v", k, X[k])
		}
	}
}

// A pure sinusoid's magnitude feature concentrates at its frequency.
func TestMagnitudesSinusoidConcentrated(t *testing.T) {
	n := 128
	freq := 5
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(freq) * float64(i) / float64(n))
	}
	mags := Magnitudes(x, n/2)
	peak := 0
	for k, v := range mags {
		if v > mags[peak] {
			peak = k
		}
	}
	// Magnitudes index j holds coefficient j+1.
	if peak+1 != freq {
		t.Fatalf("spectral peak at coefficient %d, want %d", peak+1, freq)
	}
	var rest float64
	for k, v := range mags {
		if k != peak {
			rest += v * v
		}
	}
	if rest > 1e-15*mags[peak]*mags[peak]+1e-12 {
		t.Fatalf("sinusoid energy leaked: %v off-peak", rest)
	}
}

// Time shift changes only phase: spectra of shifted series have identical
// magnitudes AND the shift is recoverable from the first coefficient's phase
// (the property the convolution "trick" of [38] exploits).
func TestShiftTheorem(t *testing.T) {
	rng := ts.NewRand(1)
	n := 64
	x := ts.RandomWalk(rng, n)
	shift := 13
	X := FFTReal(x)
	Y := FFTReal(ts.Rotate(x, shift))
	for k := 0; k < n; k++ {
		want := X[k] * cmplx.Rect(1, 2*math.Pi*float64(k)*float64(shift)/float64(n))
		if cmplx.Abs(Y[k]-want) > 1e-8 {
			t.Fatalf("shift theorem violated at k=%d", k)
		}
	}
}

// Magnitude features of two UNRELATED series should not collide: the lower
// bound is generically positive (sanity against a degenerate all-zero
// feature extractor).
func TestMagnitudesDiscriminate(t *testing.T) {
	rng := ts.NewRand(2)
	a := ts.ZNorm(ts.RandomWalk(rng, 100))
	b := ts.ZNorm(ts.RandomWalk(rng, 100))
	if lb := LowerBoundED(Magnitudes(a, 16), Magnitudes(b, 16)); lb <= 0.01 {
		t.Fatalf("magnitude features do not discriminate: LB = %v", lb)
	}
}

// Parseval tightness: the full-dimensional magnitude distance equals the
// Euclidean distance when the two series' spectra are phase-aligned.
func TestFullDimensionalTightness(t *testing.T) {
	n := 64
	// Two pure cosines at the same frequency, different amplitudes: phases
	// align, so the magnitude bound is exact.
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = 3 * math.Cos(2*math.Pi*4*float64(i)/float64(n))
		b[i] = 5 * math.Cos(2*math.Pi*4*float64(i)/float64(n))
	}
	var ed float64
	for i := range a {
		d := a[i] - b[i]
		ed += d * d
	}
	ed = math.Sqrt(ed)
	lb := LowerBoundED(Magnitudes(a, n/2), Magnitudes(b, n/2))
	if math.Abs(lb-ed) > 1e-8 {
		t.Fatalf("phase-aligned bound should be tight: LB %v vs ED %v", lb, ed)
	}
}
