package imagedist

import (
	"math"
	"testing"

	"lbkeogh/internal/shape"
)

func disk(cx, cy, r float64) *shape.Bitmap {
	b := shape.NewBitmap(64, 64)
	b.FillDisk(cx, cy, r)
	return b
}

func TestDistanceTransformZeroOnForeground(t *testing.T) {
	b := disk(32, 32, 10)
	dt := DistanceTransform(b)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) && dt[y*b.W+x] != 0 {
				t.Fatalf("DT nonzero on foreground at (%d,%d)", x, y)
			}
		}
	}
}

func TestDistanceTransformApproximatesEuclidean(t *testing.T) {
	b := shape.NewBitmap(64, 64)
	b.Set(32, 32, true)
	dt := DistanceTransform(b)
	for _, tc := range []struct {
		x, y int
		want float64
	}{
		{42, 32, 10},             // straight: exact
		{32, 20, 12},             // straight: exact
		{40, 40, 8 * math.Sqrt2}, // diagonal: 3-4 chamfer approximates
	} {
		got := dt[tc.y*64+tc.x]
		if math.Abs(got-tc.want)/tc.want > 0.08 {
			t.Fatalf("DT(%d,%d) = %v, want ~%v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestDistanceTransformEmpty(t *testing.T) {
	dt := DistanceTransform(shape.NewBitmap(8, 8))
	if !math.IsInf(dt[0], 1) {
		t.Fatal("empty bitmap DT should be +Inf")
	}
}

func TestChamferIdentityZero(t *testing.T) {
	b := disk(32, 32, 12)
	if d := Chamfer(b, b); d != 0 {
		t.Fatalf("Chamfer(x,x) = %v, want 0", d)
	}
	if d := Hausdorff(b, b); d != 0 {
		t.Fatalf("Hausdorff(x,x) = %v, want 0", d)
	}
}

func TestChamferGrowsWithOffset(t *testing.T) {
	a := disk(28, 32, 10)
	prev := -1.0
	for _, off := range []float64{0, 4, 8, 16} {
		b := disk(28+off, 32, 10)
		d := ChamferSym(a, b)
		if d < prev {
			t.Fatalf("Chamfer not monotone with offset: %v after %v", d, prev)
		}
		prev = d
	}
}

func TestHausdorffOffsetKnown(t *testing.T) {
	// Two identical disks offset by 8: Hausdorff between boundaries is ~8.
	a := disk(24, 32, 10)
	b := disk(32, 32, 10)
	d := Hausdorff(a, b)
	if math.Abs(d-8) > 1.5 {
		t.Fatalf("Hausdorff = %v, want ~8", d)
	}
}

func TestHausdorffSensitiveToOutlier(t *testing.T) {
	// The paper's "car antenna" thought experiment: one stray far feature
	// blows up Hausdorff but barely moves Chamfer (a mean).
	a := disk(32, 32, 12)
	b := disk(32, 32, 12)
	bMod := b.Clone()
	bMod.FillRect(32, 2, 33, 18) // antenna
	dH := Hausdorff(a, bMod)
	dC := ChamferSym(a, bMod)
	if dH < 8 {
		t.Fatalf("Hausdorff should spike with an antenna: %v", dH)
	}
	if dC > dH/3 {
		t.Fatalf("Chamfer (%v) should be far below Hausdorff (%v)", dC, dH)
	}
}

func TestEmptyShapesInf(t *testing.T) {
	empty := shape.NewBitmap(16, 16)
	full := disk(8, 8, 4)
	if !math.IsInf(Chamfer(empty, full), 1) {
		t.Fatal("Chamfer from empty should be +Inf")
	}
	if !math.IsInf(Hausdorff(empty, full), 1) {
		t.Fatal("Hausdorff with empty should be +Inf")
	}
}

func TestMinOverRotationsRecoversAlignment(t *testing.T) {
	// A bar rotated by 90° matches itself only after rotation search.
	a := shape.NewBitmap(64, 64)
	a.FillRect(12, 28, 52, 36)
	b := a.Rotate(math.Pi / 2)
	misaligned := ChamferSym(a, b)
	aligned := MinOverRotations(a, b, 36, ChamferSym)
	if aligned >= misaligned/2 {
		t.Fatalf("rotation search should shrink the distance: %v vs %v", aligned, misaligned)
	}
	if aligned > 1.5 {
		t.Fatalf("aligned bar distance too large: %v", aligned)
	}
}

func TestMinOverRotationsClampsR(t *testing.T) {
	a := disk(32, 32, 8)
	if d := MinOverRotations(a, a, 0, ChamferSym); d != 0 {
		t.Fatalf("rotations<1 should still evaluate once: %v", d)
	}
}
