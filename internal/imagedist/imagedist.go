// Package imagedist implements the two classic image-space shape distances
// the paper positions 1-D methods against (Section 2): the Chamfer distance
// (Borgefors [6]) and the Hausdorff distance (Huttenlocher et al. [27]),
// both with brute-force rotation search. They require O(R·p) work per
// comparison (p perimeter pixels, R rotations) and serve as accuracy
// baselines for the MixedBag-style experiments in Section 5.1.
package imagedist

import (
	"math"

	"lbkeogh/internal/shape"
)

// DistanceTransform returns, for every pixel, the approximate Euclidean
// distance to the nearest foreground pixel, computed with the two-pass 3-4
// chamfer algorithm (weights 3 for edge steps and 4 for diagonal steps,
// normalized by 3). An all-background bitmap yields +Inf everywhere.
func DistanceTransform(b *shape.Bitmap) []float64 {
	w, h := b.W, b.H
	const big = math.MaxFloat64 / 8
	dt := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if b.Get(x, y) {
				dt[y*w+x] = 0
			} else {
				dt[y*w+x] = big
			}
		}
	}
	at := func(x, y int) float64 {
		if x < 0 || y < 0 || x >= w || y >= h {
			return big
		}
		return dt[y*w+x]
	}
	// Forward pass: N, NW, NE, W neighbours.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := dt[y*w+x]
			v = math.Min(v, at(x-1, y)+3)
			v = math.Min(v, at(x-1, y-1)+4)
			v = math.Min(v, at(x, y-1)+3)
			v = math.Min(v, at(x+1, y-1)+4)
			dt[y*w+x] = v
		}
	}
	// Backward pass: S, SE, SW, E neighbours.
	for y := h - 1; y >= 0; y-- {
		for x := w - 1; x >= 0; x-- {
			v := dt[y*w+x]
			v = math.Min(v, at(x+1, y)+3)
			v = math.Min(v, at(x+1, y+1)+4)
			v = math.Min(v, at(x, y+1)+3)
			v = math.Min(v, at(x-1, y+1)+4)
			dt[y*w+x] = v
		}
	}
	for i, v := range dt {
		if v >= big {
			dt[i] = math.Inf(1)
		} else {
			dt[i] = v / 3
		}
	}
	return dt
}

// edgePixels returns the foreground pixels with at least one background
// 4-neighbour — the shape's boundary under any topology.
func edgePixels(b *shape.Bitmap) [][2]int {
	var out [][2]int
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if !b.Get(x, y) {
				continue
			}
			if !b.Get(x-1, y) || !b.Get(x+1, y) || !b.Get(x, y-1) || !b.Get(x, y+1) {
				out = append(out, [2]int{x, y})
			}
		}
	}
	return out
}

// Chamfer returns the directed Chamfer distance from a to b: the mean
// distance from each boundary pixel of a to the nearest foreground pixel of
// b. Returns +Inf if either shape is empty.
func Chamfer(a, b *shape.Bitmap) float64 {
	edges := edgePixels(a)
	if len(edges) == 0 {
		return math.Inf(1)
	}
	dt := DistanceTransform(b)
	var sum float64
	for _, p := range edges {
		sum += dt[p[1]*b.W+p[0]]
	}
	return sum / float64(len(edges))
}

// ChamferSym returns the symmetric Chamfer distance max(Chamfer(a,b),
// Chamfer(b,a)).
func ChamferSym(a, b *shape.Bitmap) float64 {
	return math.Max(Chamfer(a, b), Chamfer(b, a))
}

// Hausdorff returns the symmetric Hausdorff distance between the boundary
// point sets of a and b (the max-of-min distance), computed via distance
// transforms. Returns +Inf if either shape is empty.
func Hausdorff(a, b *shape.Bitmap) float64 {
	return math.Max(directedHausdorff(a, b), directedHausdorff(b, a))
}

func directedHausdorff(a, b *shape.Bitmap) float64 {
	edges := edgePixels(a)
	if len(edges) == 0 {
		return math.Inf(1)
	}
	dt := DistanceTransform(b)
	worst := 0.0
	for _, p := range edges {
		if d := dt[p[1]*b.W+p[0]]; d > worst {
			worst = d
		}
	}
	return worst
}

// MinOverRotations rotates a through `rotations` evenly spaced angles and
// returns the minimum of metric(rotated a, b) — the brute-force rotation
// alignment the paper's footnote 1 describes, costing R distance evaluations.
func MinOverRotations(a, b *shape.Bitmap, rotations int, metric func(x, y *shape.Bitmap) float64) float64 {
	if rotations < 1 {
		rotations = 1
	}
	best := math.Inf(1)
	for i := 0; i < rotations; i++ {
		angle := 2 * math.Pi * float64(i) / float64(rotations)
		if d := metric(a.Rotate(angle), b); d < best {
			best = d
		}
	}
	return best
}
