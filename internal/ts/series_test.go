package ts

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRotateBasic(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	got := Rotate(s, 2)
	want := []float64{3, 4, 5, 1, 2}
	if !Equal(got, want, 0) {
		t.Fatalf("Rotate(s,2) = %v, want %v", got, want)
	}
}

func TestRotateZeroAndFull(t *testing.T) {
	s := []float64{1, 2, 3}
	if !Equal(Rotate(s, 0), s, 0) {
		t.Fatal("Rotate by 0 should be identity")
	}
	if !Equal(Rotate(s, 3), s, 0) {
		t.Fatal("Rotate by n should be identity")
	}
	if !Equal(Rotate(s, -1), Rotate(s, 2), 0) {
		t.Fatal("Rotate by -1 should equal Rotate by n-1")
	}
	if !Equal(Rotate(s, 7), Rotate(s, 1), 0) {
		t.Fatal("Rotate should wrap modulo n")
	}
}

func TestRotateEmpty(t *testing.T) {
	if got := Rotate(nil, 3); len(got) != 0 {
		t.Fatalf("Rotate(nil) = %v, want empty", got)
	}
}

func TestRotateDoesNotAlias(t *testing.T) {
	s := []float64{1, 2, 3}
	r := Rotate(s, 1)
	r[0] = 99
	if s[1] == 99 {
		t.Fatal("Rotate must return a copy")
	}
}

func TestMirror(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	want := []float64{4, 3, 2, 1}
	if got := Mirror(s); !Equal(got, want, 0) {
		t.Fatalf("Mirror = %v, want %v", got, want)
	}
	if got := Mirror(Mirror(s)); !Equal(got, s, 0) {
		t.Fatal("Mirror twice should be identity")
	}
}

func TestZNorm(t *testing.T) {
	rng := NewRand(1)
	s := RandomSeries(rng, 100)
	z := ZNorm(s)
	if m := Mean(z); math.Abs(m) > 1e-9 {
		t.Fatalf("ZNorm mean = %v, want 0", m)
	}
	if sd := Std(z); math.Abs(sd-1) > 1e-9 {
		t.Fatalf("ZNorm std = %v, want 1", sd)
	}
}

func TestZNormConstant(t *testing.T) {
	z := ZNorm([]float64{5, 5, 5, 5})
	for _, v := range z {
		if v != 0 {
			t.Fatalf("ZNorm of constant series = %v, want zeros", z)
		}
	}
}

func TestResampleIdentityLength(t *testing.T) {
	s := []float64{1, 2, 3, 4}
	got, err := Resample(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, s, 1e-12) {
		t.Fatalf("Resample to same length = %v, want %v", got, s)
	}
}

func TestResampleUpDown(t *testing.T) {
	s := []float64{0, 1, 0, -1}
	up, err := Resample(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != 8 {
		t.Fatalf("len = %d, want 8", len(up))
	}
	// Every original sample appears at even indices.
	for i, v := range s {
		if math.Abs(up[2*i]-v) > 1e-12 {
			t.Fatalf("up[%d] = %v, want %v", 2*i, up[2*i], v)
		}
	}
	down, err := Resample(up, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(down, s, 1e-12) {
		t.Fatalf("down = %v, want %v", down, s)
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := Resample(nil, 4); err == nil {
		t.Fatal("want error for empty input")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for non-positive target length")
		}
	}()
	_, _ = Resample([]float64{1}, 0)
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("MinMax = (%v,%v), want (-1,5)", lo, hi)
	}
}

func TestCloneIndependent(t *testing.T) {
	s := []float64{1, 2}
	c := Clone(s)
	c[0] = 9
	if s[0] == 9 {
		t.Fatal("Clone must copy")
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := RandomWalk(NewRand(42), 64)
	b := RandomWalk(NewRand(42), 64)
	if !Equal(a, b, 0) {
		t.Fatal("same seed must give identical series")
	}
	c := RandomWalk(NewRand(43), 64)
	if Equal(a, c, 0) {
		t.Fatal("different seeds should differ")
	}
}

// Property: rotation composes additively modulo n.
func TestRotateComposeProperty(t *testing.T) {
	rng := NewRand(7)
	f := func(j, k uint8) bool {
		s := RandomSeries(rng, 37)
		a := Rotate(Rotate(s, int(j)), int(k))
		b := Rotate(s, int(j)+int(k))
		return Equal(a, b, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Mirror(Rotate(s,k)) == Rotate(Mirror(s), n-k) — mirroring
// reverses rotation direction, which is why mirror invariance only needs the
// reversed series added to the rotation matrix.
func TestMirrorRotateProperty(t *testing.T) {
	rng := NewRand(8)
	f := func(k uint8) bool {
		n := 29
		s := RandomSeries(rng, n)
		a := Mirror(Rotate(s, int(k)))
		b := Rotate(Mirror(s), -int(k))
		return Equal(a, b, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddNoiseZeroSigma(t *testing.T) {
	rng := NewRand(3)
	s := RandomSeries(rng, 10)
	if !Equal(AddNoise(rng, s, 0), s, 0) {
		t.Fatal("sigma=0 noise must be identity")
	}
}
