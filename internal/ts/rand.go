package ts

import "math/rand"

// NewRand returns a deterministic PRNG for the given seed. All synthetic data
// in this repository flows through explicitly seeded sources so that tests,
// benches and the experiment harness are reproducible run to run.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// RandomSeries returns a series of n values drawn i.i.d. from the standard
// normal distribution.
func RandomSeries(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// RandomWalk returns a z-normalized random walk of length n. Random walks are
// the classic "smooth but unstructured" workload for time-series indexing
// experiments: adjacent values are correlated, as in real contour signatures.
func RandomWalk(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	var acc float64
	for i := range out {
		acc += rng.NormFloat64()
		out[i] = acc
	}
	return ZNorm(out)
}

// AddNoise returns a copy of s with i.i.d. Gaussian noise of standard
// deviation sigma added to every sample.
func AddNoise(rng *rand.Rand, s []float64, sigma float64) []float64 {
	out := make([]float64, len(s))
	for i, v := range s {
		out[i] = v + sigma*rng.NormFloat64()
	}
	return out
}
