// Package ts provides the basic time-series representation and utilities the
// rest of the library is built on: circular rotation, mirroring,
// z-normalization and resampling.
//
// Shapes are matched in a 1-D representation (Figure 2 of the paper): the
// distance from each contour point to the shape centroid, read clockwise, is
// a time series of length n. A rotation of the original 2-D shape is a
// circular shift of that series, and a mirror image is its reversal — which
// is why everything here is phrased in terms of circular shifts.
package ts

import (
	"fmt"
	"math"
)

// Rotate returns a copy of s circularly shifted left by k positions, so that
// Rotate(s, k)[i] == s[(i+k) mod n]. k may be negative or exceed len(s).
func Rotate(s []float64, k int) []float64 {
	n := len(s)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	k = ((k % n) + n) % n
	copy(out, s[k:])
	copy(out[n-k:], s[:k])
	return out
}

// Mirror returns a reversed copy of s. In the shape domain this is the
// enantiomorphic (mirror-image) form of the contour (Section 3).
func Mirror(s []float64) []float64 {
	out := make([]float64, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}

// Mean returns the arithmetic mean of s (0 for empty input).
func Mean(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation of s.
func Std(s []float64) float64 {
	if len(s) == 0 {
		return 0
	}
	m := Mean(s)
	var sum float64
	for _, v := range s {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s)))
}

// ZNorm returns a copy of s normalized to zero mean and unit standard
// deviation. A (near-)constant series normalizes to all zeros rather than
// dividing by ~0; this matches standard practice in the time-series matching
// literature and keeps distances between degenerate series finite.
func ZNorm(s []float64) []float64 {
	out := make([]float64, len(s))
	m := Mean(s)
	sd := Std(s)
	if sd < 1e-12 {
		return out // all zeros
	}
	for i, v := range s {
		out[i] = (v - m) / sd
	}
	return out
}

// Resample linearly interpolates s (treated as a closed, circular sequence)
// to exactly n samples. It panics for n <= 0 and errors on empty input.
//
// Circular interpolation is the right choice for contour signatures: the
// series wraps around the shape, so the segment between the last and first
// samples is as real as any other.
func Resample(s []float64, n int) ([]float64, error) {
	if n <= 0 {
		panic(fmt.Sprintf("ts: Resample target length %d must be positive", n))
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("ts: cannot resample empty series")
	}
	m := len(s)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		pos := float64(i) * float64(m) / float64(n)
		j := int(pos)
		frac := pos - float64(j)
		a := s[j%m]
		b := s[(j+1)%m]
		out[i] = a + frac*(b-a)
	}
	return out, nil
}

// AlignToMax rotates s so its maximum value leads — the domain-independent
// "most protruding point" landmark (the analogue of major-axis alignment the
// paper critiques in Section 2.1). It is exactly as brittle as the paper
// says: a small perturbation can move the argmax and rotate the whole
// signature.
func AlignToMax(s []float64) []float64 {
	if len(s) == 0 {
		return nil
	}
	best := 0
	for i, v := range s {
		if v > s[best] {
			best = i
		}
	}
	return Rotate(s, best)
}

// Clone returns a copy of s.
func Clone(s []float64) []float64 {
	out := make([]float64, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two series have identical length and elements within
// tolerance tol.
func Equal(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// MinMax returns the minimum and maximum values of s. It panics on empty
// input, since there is no sensible zero answer.
func MinMax(s []float64) (lo, hi float64) {
	if len(s) == 0 {
		panic("ts: MinMax of empty series")
	}
	lo, hi = s[0], s[0]
	for _, v := range s[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
