package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit of analysis. In-package test files are
// checked together with the package's regular files under the package's own
// import path; an external test package ("package foo_test") forms its own
// unit under the path "<importpath>_test".
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader resolves and type-checks packages without golang.org/x/tools: it
// shells out once to `go list -export -test -deps`, which compiles every
// dependency (including test-only ones) and reports the build-cache export
// files, and then feeds those to the standard library's gc importer. This
// works fully offline; the only requirement is the go toolchain itself.
type Loader struct {
	moduleDir string
	fset      *token.FileSet
	exports   map[string]string // import path -> export data file
	targets   []listPackage     // packages matching the requested patterns
	imp       types.Importer
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir          string
	ImportPath   string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	DepOnly      bool
	ForTest      string
	Incomplete   bool
	Error        *struct{ Err string }
	DepsErrors   []*struct{ Err string }
}

// NewLoader lists patterns (e.g. "./...") relative to moduleDir and prepares
// an importer over the resulting export data. The listing includes test
// dependencies, so both in-package and external test files can be checked.
func NewLoader(moduleDir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-test", "-deps",
		"-json=Dir,ImportPath,Export,GoFiles,TestGoFiles,XTestGoFiles,DepOnly,ForTest,Incomplete,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	l := &Loader{
		moduleDir: moduleDir,
		fset:      token.NewFileSet(),
		exports:   map[string]string{},
	}
	// Collect EVERY failing package before erroring, so a broken build names
	// all culprits in one shot instead of the first in list order. `go list
	// -e` reports errors three ways — Error on the broken package itself,
	// DepsErrors on its importers, and a bare Incomplete flag — and a load
	// that swallows any of them would silently analyze a stale or partial
	// package set.
	dec := json.NewDecoder(bytes.NewReader(out))
	var loadErrs []string
	var incompleteOnly []string
	seenErr := map[string]bool{}
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		switch {
		case p.Error != nil:
			if !seenErr[p.ImportPath] {
				seenErr[p.ImportPath] = true
				loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", p.ImportPath, p.Error.Err))
			}
		case len(p.DepsErrors) > 0:
			for _, de := range p.DepsErrors {
				key := p.ImportPath + "\x00" + de.Err
				if !seenErr[key] {
					seenErr[key] = true
					loadErrs = append(loadErrs, fmt.Sprintf("%s: dependency error: %s", p.ImportPath, de.Err))
				}
			}
		case p.Incomplete:
			// Incomplete without its own message: usually redundant with a
			// dependency's Error entry, but if nothing else explains the
			// failure this is the only signal — never swallow it.
			incompleteOnly = append(incompleteOnly, p.ImportPath)
		}
		// Plain compiles only: test-variant export data shadows symbols the
		// importer must resolve identically across units.
		if p.Export != "" && p.ForTest == "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && p.ForTest == "" && !strings.HasSuffix(p.ImportPath, ".test") {
			l.targets = append(l.targets, p)
		}
	}
	if len(loadErrs) == 0 && len(incompleteOnly) > 0 {
		loadErrs = append(loadErrs, fmt.Sprintf("packages marked incomplete by go list with no error detail: %s", strings.Join(incompleteOnly, ", ")))
	}
	if len(loadErrs) > 0 {
		return nil, fmt.Errorf("go list: %d package(s) failed to load:\n\t%s", len(loadErrs), strings.Join(loadErrs, "\n\t"))
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l, nil
}

// Packages parses and type-checks every target package: one unit per package
// (regular + in-package test files) plus one per non-empty external test
// package.
func (l *Loader) Packages() ([]*Package, error) {
	var pkgs []*Package
	for _, t := range l.targets {
		names := append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
		if len(names) > 0 {
			pkg, err := l.check(t.ImportPath, t.Dir, names)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if len(t.XTestGoFiles) > 0 {
			pkg, err := l.check(t.ImportPath+"_test", t.Dir, t.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir parses every .go file directly under dir as a single package and
// type-checks it under the given import path. Used by the analysistest-style
// golden tests over internal/lint/testdata, whose files may import real
// repository packages (resolved through the loader's export data).
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	sort.Strings(names)
	return l.check(importPath, dir, names)
}

func (l *Loader) check(importPath, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	pkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type checking %s:\n\t%s", importPath, strings.Join(typeErrs, "\n\t"))
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}

// FindModuleRoot walks upward from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
