package lint

import (
	"go/ast"
	"go/types"
)

// tallyTypeKey identifies the single-goroutine scratch accumulator whose
// ownership discipline tallyescape enforces.
const tallyTypeKey = "lbkeogh/internal/stats.Tally"

// TallyEscape returns the tallyescape analyzer: a *stats.Tally is a plain
// (non-atomic) accumulator that must stay confined to one goroutine, so it
// must not be referenced from a go-statement — neither passed as an argument
// nor captured by the spawned closure — and must not be stored in a struct
// field, where it could outlive its owning goroutine. Goroutine-local
// tallies declared inside the spawned function are fine; shared accounting
// goes through the atomic *stats.Counter, flushed once per comparison.
func TallyEscape() *Analyzer {
	a := &Analyzer{
		Name: "tallyescape",
		Doc: "check that *stats.Tally values never cross goroutines or hide in struct fields; " +
			"share a *stats.Counter (atomic) instead and flush per comparison",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					checkGoStmt(pass, n)
				case *ast.StructType:
					checkStructFields(pass, n)
				}
				return true
			})
		}
	}
	return a
}

// checkGoStmt flags every reference inside the go statement to a
// Tally-typed variable declared outside it. Variables declared within the
// statement (locals of the spawned closure, or its parameters) are
// goroutine-local and allowed.
func checkGoStmt(pass *Pass, g *ast.GoStmt) {
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || !typeContains(v.Type(), tallyTypeKey) {
			return true
		}
		if v.Pos() >= g.Pos() && v.Pos() <= g.End() {
			return true // declared inside the go statement: goroutine-local
		}
		pass.Reportf(id.Pos(),
			"%s (a *stats.Tally) crosses into a goroutine; Tally is single-goroutine scratch — use a *stats.Counter or a goroutine-local Tally flushed into one", id.Name)
		return true
	})
}

// checkStructFields flags struct fields that embed or point to a Tally: a
// Tally parked in a struct can be reached from any goroutine holding the
// struct, which defeats the single-owner contract. The stats package itself
// is exempt (it defines the type).
func checkStructFields(pass *Pass, s *ast.StructType) {
	if pass.Pkg != nil && pass.Pkg.Path() == "lbkeogh/internal/stats" {
		return
	}
	for _, field := range s.Fields.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !typeContains(t, tallyTypeKey) {
			continue
		}
		pass.Reportf(field.Pos(),
			"struct field holds a stats.Tally; keep tallies on the stack of their owning goroutine and flush into a *stats.Counter")
	}
}
