package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named invariant check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer closely enough that the checks
// could be ported to the upstream framework verbatim if the dependency ever
// becomes available; this repository vendors no third-party code, so the
// driver below is a minimal stdlib-only reimplementation.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Applies filters packages by import path; nil means every package.
	// In-package test files are analyzed under the package's own path, and
	// external test packages under "<path>_test", so filters should match
	// with the "_test" suffix stripped (see pkgPathIn).
	Applies func(pkgPath string) bool
	// Prepare, if non-nil, runs once over the whole package set before any
	// per-package pass, so an analyzer can build module-wide state — e.g. a
	// cross-package table of annotated functions. Per-package passes only see
	// dependency packages through export data (no ASTs, no comments), so
	// directive-driven cross-package checks need this hook.
	Prepare func(pkgs []*Package)
	// Run reports findings on one type-checked package via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package (subject to each analyzer's
// Applies filter), drops findings suppressed by //lint:ignore directives,
// and returns the rest sorted by position. Malformed directives are reported
// as findings of the pseudo-analyzer "directive".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunWithStats(pkgs, analyzers)
	return diags
}

// AnalyzerStats is one analyzer's cost and yield over a RunWithStats call.
type AnalyzerStats struct {
	Name     string
	Findings int // post-suppression diagnostics attributed to the analyzer
	Elapsed  time.Duration
}

// RunWithStats is Run plus per-analyzer accounting: wall time (Prepare
// included) and surviving finding counts, in suite order, with a trailing
// "directive" entry when malformed //lint directives were reported.
func RunWithStats(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []AnalyzerStats) {
	elapsed := map[string]time.Duration{}
	findings := map[string]int{}
	for _, a := range analyzers {
		if a.Prepare != nil {
			start := time.Now()
			a.Prepare(pkgs)
			elapsed[a.Name] += time.Since(start)
		}
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := newSuppressions(pkg.Fset, pkg.Files, analyzerNames(analyzers))
		diags = append(diags, sup.malformed...)
		findings["directive"] += len(sup.malformed)
		var raw []Diagnostic
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(strings.TrimSuffix(pkg.ImportPath, "_test")) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &raw,
			}
			start := time.Now()
			a.Run(pass)
			elapsed[a.Name] += time.Since(start)
		}
		for _, d := range raw {
			if !sup.suppressed(d) {
				diags = append(diags, d)
				findings[d.Analyzer]++
			}
		}
	}
	stats := make([]AnalyzerStats, 0, len(analyzers)+1)
	for _, a := range analyzers {
		stats = append(stats, AnalyzerStats{Name: a.Name, Findings: findings[a.Name], Elapsed: elapsed[a.Name]})
	}
	if findings["directive"] > 0 {
		stats = append(stats, AnalyzerStats{Name: "directive", Findings: findings["directive"]})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, stats
}

func analyzerNames(analyzers []*Analyzer) map[string]bool {
	names := map[string]bool{}
	for _, a := range analyzers {
		names[a.Name] = true
	}
	return names
}

// suppressions indexes the //lint:ignore and //lint:file-ignore directives
// of one package.
//
// Syntax, following the staticcheck convention:
//
//	//lint:ignore <analyzers> <reason>       suppress on this and the next line
//	//lint:file-ignore <analyzers> <reason>  suppress in the whole file
//
// where <analyzers> is a comma-separated list of analyzer names or "*", and
// <reason> is mandatory free text explaining why the finding is acceptable.
type suppressions struct {
	// lines maps filename -> line -> analyzer names suppressed ("*" = all).
	lines map[string]map[int]map[string]bool
	// files maps filename -> analyzer names suppressed file-wide.
	files     map[string]map[string]bool
	malformed []Diagnostic
}

func newSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) *suppressions {
	s := &suppressions{
		lines: map[string]map[int]map[string]bool{},
		files: map[string]map[string]bool{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, fileWide := strings.CutPrefix(c.Text, "//lint:file-ignore ")
				if !fileWide {
					var ok bool
					text, ok = strings.CutPrefix(c.Text, "//lint:ignore ")
					if !ok {
						if strings.HasPrefix(c.Text, "//lint:ignore") || strings.HasPrefix(c.Text, "//lint:file-ignore") {
							s.malformed = append(s.malformed, malformedDirective(fset, c, "missing analyzer list and reason"))
						}
						continue
					}
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					s.malformed = append(s.malformed, malformedDirective(fset, c, "need an analyzer list and a reason"))
					continue
				}
				names := map[string]bool{}
				bad := false
				for _, name := range strings.Split(fields[0], ",") {
					if name != "*" && !known[name] {
						s.malformed = append(s.malformed, malformedDirective(fset, c, fmt.Sprintf("unknown analyzer %q", name)))
						bad = true
						break
					}
					names[name] = true
				}
				if bad {
					continue
				}
				pos := fset.Position(c.Pos())
				if fileWide {
					merge(s.files, pos.Filename, names)
					continue
				}
				byLine := s.lines[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					s.lines[pos.Filename] = byLine
				}
				// A trailing directive suppresses its own line; a standalone
				// directive line suppresses the line below. Covering both is
				// harmless and keeps the matcher position-format agnostic.
				mergeLine(byLine, pos.Line, names)
				mergeLine(byLine, pos.Line+1, names)
			}
		}
	}
	return s
}

func malformedDirective(fset *token.FileSet, c *ast.Comment, why string) Diagnostic {
	return Diagnostic{
		Pos:      fset.Position(c.Pos()),
		Analyzer: "directive",
		Message:  "malformed //lint directive: " + why,
	}
}

func merge(m map[string]map[string]bool, key string, names map[string]bool) {
	if m[key] == nil {
		m[key] = map[string]bool{}
	}
	for n := range names {
		m[key][n] = true
	}
}

func mergeLine(m map[int]map[string]bool, line int, names map[string]bool) {
	if m[line] == nil {
		m[line] = map[string]bool{}
	}
	for n := range names {
		m[line][n] = true
	}
}

func (s *suppressions) suppressed(d Diagnostic) bool {
	if set := s.files[d.Pos.Filename]; set["*"] || set[d.Analyzer] {
		return true
	}
	set := s.lines[d.Pos.Filename][d.Pos.Line]
	return set["*"] || set[d.Analyzer]
}

// pkgPathIn returns an Applies filter matching exactly the given import
// paths.
func pkgPathIn(paths ...string) func(string) bool {
	set := map[string]bool{}
	for _, p := range paths {
		set[p] = true
	}
	return func(path string) bool { return set[path] }
}

// funcHasDirective reports whether the function's doc comment contains the
// given //-directive line (e.g. "//lbkeogh:hotpath").
func funcHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// namedTypeKey renders a named (possibly pointer-wrapped) type as
// "pkgpath.Name", or "" for anything else.
func namedTypeKey(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// typeContains reports whether t contains the named type key anywhere in its
// structure (through pointers, slices, arrays, maps and channels). Struct
// and interface internals are not descended into: a struct holding another
// struct is that type's own contract.
func typeContains(t types.Type, key string) bool {
	seen := map[types.Type]bool{}
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if seen[t] {
			return false
		}
		seen[t] = true
		if namedTypeKey(t) == key {
			return true
		}
		switch u := t.(type) {
		case *types.Pointer:
			return walk(u.Elem())
		case *types.Slice:
			return walk(u.Elem())
		case *types.Array:
			return walk(u.Elem())
		case *types.Map:
			return walk(u.Key()) || walk(u.Elem())
		case *types.Chan:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}
