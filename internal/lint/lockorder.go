package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder returns the lockorder analyzer. It builds a per-package
// lock-acquisition graph — an edge A→B means lock B was acquired (directly,
// or through a same-package callee) while lock A was held — and reports:
//
//   - ordering cycles (A taken under B somewhere, B taken under A elsewhere),
//     the static shadow of an AB/BA deadlock;
//   - acquiring a lock that is already held (recursive locking, or two
//     instances of the same lock field taken without an ordering rule);
//   - channel sends while a lock is held, unless the enclosing select has a
//     default case (a blocked receiver would deadlock every contender);
//   - time.Sleep while a lock is held (stalls every contender).
//
// Locks are identified type-level: every instance of the same struct's mutex
// field is one node, so an ordering violation between two objects of one
// type is caught. Goroutine bodies and deferred/stored function literals are
// analyzed with an empty held-set — they run on another goroutine or at an
// unknown time.
func LockOrder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc: "build a per-package lock-acquisition graph and flag ordering cycles, " +
			"re-entrant acquisition, and channel sends or time.Sleep while a lock is held",
	}
	a.Run = func(pass *Pass) {
		g := &lockGraph{
			pass:    pass,
			names:   map[types.Object]string{},
			edges:   map[types.Object]map[types.Object]token.Pos{},
			direct:  map[*types.Func]map[types.Object]bool{},
			callees: map[*types.Func][]*types.Func{},
			decls:   map[*types.Func]*ast.FuncDecl{},
		}
		g.collect()
		g.fixpoint()
		g.walkAll()
		g.reportCycles()
	}
	return a
}

type lockGraph struct {
	pass  *Pass
	names map[types.Object]string
	// edges[a][b] = first position where b was acquired while a was held.
	edges map[types.Object]map[types.Object]token.Pos
	// direct[f] = locks f acquires in its own body; callees[f] = same-package
	// functions f calls; acquires[f] = transitive closure of the two.
	direct   map[*types.Func]map[types.Object]bool
	callees  map[*types.Func][]*types.Func
	acquires map[*types.Func]map[types.Object]bool
	decls    map[*types.Func]*ast.FuncDecl
}

// syncLockMethods classifies the sync.Mutex/RWMutex methods.
var syncLockMethods = map[string]bool{"Lock": true, "RLock": true}
var syncUnlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// lockCall decomposes a call into (lock object, acquire?) if it is a
// sync Mutex/RWMutex method call on a resolvable lock.
func (g *lockGraph) lockCall(call *ast.CallExpr) (types.Object, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	fn, ok := g.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	acquire := syncLockMethods[fn.Name()]
	if !acquire && !syncUnlockMethods[fn.Name()] {
		return nil, false, false
	}
	obj, name := g.resolveLock(sel.X)
	if obj == nil {
		return nil, false, false
	}
	if _, seen := g.names[obj]; !seen {
		g.names[obj] = name
	}
	return obj, acquire, true
}

// resolveLock names the lock denoted by the receiver expression of a
// Lock/Unlock call. Struct fields resolve to the field object — one node per
// field declaration, shared by every instance of the type — and plain
// variables to the variable object.
func (g *lockGraph) resolveLock(e ast.Expr) (types.Object, string) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil, ""
			}
			e = x.X
		case *ast.SelectorExpr:
			if s, ok := g.pass.TypesInfo.Selections[x]; ok && s.Kind() == types.FieldVal {
				owner := namedTypeKey(s.Recv())
				if owner == "" {
					owner = "struct"
				}
				return s.Obj(), owner + "." + s.Obj().Name()
			}
			// Package-qualified variable (pkg.mu).
			if v, ok := g.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
				return v, x.Sel.Name
			}
			return nil, ""
		case *ast.Ident:
			if v, ok := g.pass.TypesInfo.Uses[x].(*types.Var); ok {
				return v, x.Name
			}
			return nil, ""
		default:
			return nil, ""
		}
	}
}

// calleeFunc resolves a call to a same-package function or method with a
// declaration in this package.
func (g *lockGraph) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := g.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != g.pass.Pkg {
		return nil
	}
	return fn
}

// collect records, per function declaration, the locks it acquires directly
// and the same-package functions it calls (goroutine bodies excluded: their
// acquisitions happen on another goroutine).
func (g *lockGraph) collect() {
	for _, f := range g.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := g.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			acq := map[types.Object]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.GoStmt); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if obj, acquire, isLock := g.lockCall(call); isLock {
					if acquire {
						acq[obj] = true
					}
					return true
				}
				if callee := g.calleeFunc(call); callee != nil {
					g.callees[fn] = append(g.callees[fn], callee)
				}
				return true
			})
			g.direct[fn] = acq
		}
	}
}

// fixpoint computes acquires(f) = direct(f) ∪ ⋃ acquires(callee) to a fixed
// point, giving one-hop-and-beyond interprocedural lock summaries within the
// package.
func (g *lockGraph) fixpoint() {
	g.acquires = map[*types.Func]map[types.Object]bool{}
	for fn, d := range g.direct {
		cp := map[types.Object]bool{}
		for o := range d {
			cp[o] = true
		}
		g.acquires[fn] = cp
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range g.callees {
			acc := g.acquires[fn]
			if acc == nil {
				acc = map[types.Object]bool{}
				g.acquires[fn] = acc
			}
			for _, c := range callees {
				for o := range g.acquires[c] {
					if !acc[o] {
						acc[o] = true
						changed = true
					}
				}
			}
		}
	}
}

func (g *lockGraph) addEdge(from, to types.Object, pos token.Pos) {
	m := g.edges[from]
	if m == nil {
		m = map[types.Object]token.Pos{}
		g.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// walkAll runs the held-set walk over every function body and every function
// literal (the latter with an empty held-set).
func (g *lockGraph) walkAll() {
	for _, fd := range g.decls {
		g.walkBody(fd.Body, map[types.Object]token.Pos{})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				g.walkBody(lit.Body, map[types.Object]token.Pos{})
			}
			return true
		})
	}
}

func copyHeld(held map[types.Object]token.Pos) map[types.Object]token.Pos {
	cp := make(map[types.Object]token.Pos, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// walkBody processes a statement list sequentially, mutating held; nested
// control flow gets a copy so branch-local acquisitions don't leak out.
func (g *lockGraph) walkBody(b *ast.BlockStmt, held map[types.Object]token.Pos) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		g.walkStmt(s, held)
	}
}

func (g *lockGraph) walkStmt(s ast.Stmt, held map[types.Object]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		g.walkExpr(s.X, held)
	case *ast.SendStmt:
		g.reportSend(s.Pos(), held)
		g.walkExpr(s.Chan, held)
		g.walkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			g.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			g.walkExpr(e, held)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				g.handleCall(call, held)
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			g.walkExpr(e, held)
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the function:
		// leave it in the held-set. Other deferred calls run at an unknown
		// held-state; skip them.
	case *ast.GoStmt:
		// The goroutine body runs with its own empty held-set; walkAll covers
		// its function literal. Arguments are evaluated here, though.
		for _, arg := range s.Call.Args {
			g.walkExpr(arg, held)
		}
	case *ast.BlockStmt:
		g.walkBody(s, copyHeld(held))
	case *ast.IfStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, held)
		}
		g.walkExpr(s.Cond, held)
		g.walkBody(s.Body, copyHeld(held))
		if s.Else != nil {
			g.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		inner := copyHeld(held)
		if s.Init != nil {
			g.walkStmt(s.Init, inner)
		}
		if s.Cond != nil {
			g.walkExpr(s.Cond, inner)
		}
		g.walkBody(s.Body, inner)
		if s.Post != nil {
			g.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		inner := copyHeld(held)
		g.walkExpr(s.X, inner)
		g.walkBody(s.Body, inner)
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			g.walkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, st := range cc.Body {
					g.walkStmt(st, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := copyHeld(held)
				for _, st := range cc.Body {
					g.walkStmt(st, inner)
				}
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault {
				g.reportSend(send.Pos(), held)
			}
			inner := copyHeld(held)
			for _, st := range cc.Body {
				g.walkStmt(st, inner)
			}
		}
	case *ast.LabeledStmt:
		g.walkStmt(s.Stmt, held)
	}
}

// walkExpr finds calls inside an expression and applies lock semantics;
// function literal bodies are skipped (walkAll analyzes them with an empty
// held-set).
func (g *lockGraph) walkExpr(e ast.Expr, held map[types.Object]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			g.handleCall(call, held)
		}
		return true
	})
}

func (g *lockGraph) handleCall(call *ast.CallExpr, held map[types.Object]token.Pos) {
	if obj, acquire, isLock := g.lockCall(call); isLock {
		if !acquire {
			delete(held, obj)
			return
		}
		if _, already := held[obj]; already {
			g.pass.Reportf(call.Pos(),
				"lock %s acquired while already held; recursive locking (or two instances locked with no ordering rule) deadlocks",
				g.names[obj])
		}
		for h := range held {
			if h != obj {
				g.addEdge(h, obj, call.Pos())
			}
		}
		held[obj] = call.Pos()
		return
	}
	if isTimeSleep(g.pass, call) && len(held) > 0 {
		g.pass.Reportf(call.Pos(),
			"time.Sleep while holding %s stalls every goroutine contending for the lock; release it before sleeping",
			g.heldNames(held))
		return
	}
	if callee := g.calleeFunc(call); callee != nil && len(held) > 0 {
		for l := range g.acquires[callee] {
			if _, already := held[l]; already && g.directlyLocks(callee, l) {
				g.pass.Reportf(call.Pos(),
					"call to %s acquires %s, which is already held here; this deadlocks",
					callee.Name(), g.names[l])
				continue
			}
			for h := range held {
				if h != l {
					g.addEdge(h, l, call.Pos())
				}
			}
		}
	}
}

// directlyLocks reports whether fn itself (not a callee) acquires l — the
// precise case worth a hard re-entrancy diagnostic at the call site.
func (g *lockGraph) directlyLocks(fn *types.Func, l types.Object) bool {
	return g.direct[fn][l]
}

func (g *lockGraph) reportSend(pos token.Pos, held map[types.Object]token.Pos) {
	if len(held) == 0 {
		return
	}
	g.pass.Reportf(pos,
		"channel send while holding %s; if no receiver is ready this blocks with the lock held — send outside the critical section or use a select with default",
		g.heldNames(held))
}

func (g *lockGraph) heldNames(held map[types.Object]token.Pos) string {
	names := make([]string, 0, len(held))
	for o := range held {
		names = append(names, g.names[o])
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func isTimeSleep(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sleep" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "time"
}

// reportCycles reports each unordered lock pair {a,b} where a is acquired
// under b and, transitively, b under a. Edges are visited in file order so
// the report lands deterministically on the first offending acquisition.
func (g *lockGraph) reportCycles() {
	type edge struct {
		from, to types.Object
		pos      token.Pos
	}
	var all []edge
	for a, outs := range g.edges {
		for b, pos := range outs {
			all = append(all, edge{a, b, pos})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := g.pass.Fset.Position(all[i].pos), g.pass.Fset.Position(all[j].pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	reported := map[string]bool{}
	for _, e := range all {
		if !g.reaches(e.to, e.from) {
			continue
		}
		na, nb := g.names[e.from], g.names[e.to]
		key := na + "\x00" + nb
		if nb < na {
			key = nb + "\x00" + na
		}
		if reported[key] {
			continue
		}
		reported[key] = true
		g.pass.Reportf(e.pos,
			"lock ordering cycle: %s is acquired while holding %s here, but elsewhere %s is (transitively) acquired while holding %s; pick one order",
			nb, na, na, nb)
	}
}

// reaches reports whether `to` is reachable from `from` in the acquisition
// graph.
func (g *lockGraph) reaches(from, to types.Object) bool {
	seen := map[types.Object]bool{}
	var dfs func(types.Object) bool
	dfs = func(o types.Object) bool {
		if o == to {
			return true
		}
		if seen[o] {
			return false
		}
		seen[o] = true
		for next := range g.edges[o] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}
