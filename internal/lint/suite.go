package lint

// DefaultAnalyzers returns the production lbkeoghvet suite, configured for
// this repository's packages and conventions:
//
//	tallyescape  *stats.Tally confinement (no goroutine crossing, no fields)
//	nilsink      nil-receiver guards on stats/obs sink methods
//	floateq      no float ==/!= in internal/{dist,envelope,wedge}
//	hotalloc     no allocations in //lbkeogh:hotpath functions
//	lbguard      no math.Sqrt in LB*/lowerBound* except //lbkeogh:rootspace
//	ctxcheck     context.Context first in exported signatures; no
//	             per-iteration ctx.Err() polls in //lbkeogh:hotpath loops
//	metricnames  metric names registered via obs/ops are snake_case,
//	             lbkeogh_/shapeserver_-namespaced, counters end _total,
//	             units are base units (_seconds, _bytes) placed last
//	atomicmix    no mixed atomic/plain field access, no locks copied by
//	             value, no WaitGroup.Add inside the goroutine it gates
//	lockorder    no lock-ordering cycles, re-entrant acquisition, or
//	             channel sends / time.Sleep while a lock is held
//	lbmono       //lbkeogh:lowerbound functions compose only annotated
//	             lower bounds and monotone-safe operations
//
// The bcebaseline check (bounds-check-elimination regression against a
// committed baseline) shells out to the compiler rather than walking ASTs;
// cmd/lbkeoghvet runs it as a separate step (see bce.go).
func DefaultAnalyzers() []*Analyzer {
	floatEq := FloatEq()
	floatEq.Applies = pkgPathIn(FloatEqPackages...)
	return []*Analyzer{
		TallyEscape(),
		NilSink(),
		floatEq,
		HotAlloc(),
		LBGuard(),
		CtxCheck(),
		MetricNames(),
		AtomicMix(),
		LockOrder(),
		LBMono(),
	}
}
