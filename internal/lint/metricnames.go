package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// MetricNames returns the metricnames analyzer, enforcing the exposition
// naming contract on every metric registered through internal/obs or written
// through internal/obs/ops:
//
//  1. Names are snake_case: [a-z0-9_], starting with a letter, no doubled or
//     trailing underscores.
//  2. Names carry the repository namespace: the lbkeogh_ prefix for library
//     metrics, shapeserver_ for serving-layer metrics.
//  3. Counters end in _total; nothing else may claim that suffix.
//  4. Units are base units (_seconds, _bytes), never ns/ms/us/kb/mb, and the
//     unit component sits last in the name (only _total may follow it).
//
// Only string-literal name arguments are checked; dynamically built names
// (table-driven exposition like ops.WriteRuntimeMetrics) are the caller's
// responsibility.
func MetricNames() *Analyzer {
	a := &Analyzer{
		Name: "metricnames",
		Doc: "metric names registered via obs.Registry or written via ops.Write* are " +
			"snake_case, lbkeogh_/shapeserver_-namespaced, counter-suffixed with _total, " +
			"and use base units (_seconds, _bytes) placed last",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkMetricCall(pass, call)
				}
				return true
			})
		}
	}
	return a
}

// metricRegistrar describes one function that accepts a metric name: which
// argument carries the name and what sample kind the function implies. The
// kind "family" means the kind is itself an argument (WriteFamily's third),
// read from a string literal when present.
type metricRegistrar struct {
	nameArg int
	kind    string
}

// metricRegistrars maps types.Func.FullName of every registration and
// exposition entry point to its name-argument slot.
var metricRegistrars = map[string]metricRegistrar{
	"(*lbkeogh/internal/obs.Registry).Counter":     {0, "counter"},
	"(*lbkeogh/internal/obs.Registry).Histogram":   {0, "histogram"},
	"(*lbkeogh/internal/obs.Registry).SearchStats": {0, "stats"},
	"lbkeogh/internal/obs/ops.WriteFamily":         {1, "family"},
	"lbkeogh/internal/obs/ops.WriteCounter":        {1, "counter"},
	"lbkeogh/internal/obs/ops.WriteGaugeInt":       {1, "gauge"},
	"lbkeogh/internal/obs/ops.WriteGaugeFloat":     {1, "gauge"},
}

func checkMetricCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return
	}
	reg, ok := metricRegistrars[fn.FullName()]
	if !ok || reg.nameArg >= len(call.Args) {
		return
	}
	name, ok := stringLiteral(call.Args[reg.nameArg])
	if !ok {
		return // dynamic name; out of scope
	}
	kind := reg.kind
	if kind == "family" {
		kind = "" // unknown unless the kind argument is a literal
		if reg.nameArg+1 < len(call.Args) {
			if k, ok := stringLiteral(call.Args[reg.nameArg+1]); ok {
				kind = k
			}
		}
	}
	checkMetricName(pass, call.Args[reg.nameArg].Pos(), name, kind)
}

func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metricBadUnits are unit components the exposition format bans: durations
// are seconds, sizes are bytes, with any scaling left to the consumer.
var metricBadUnits = map[string]bool{
	"ns": true, "nanoseconds": true,
	"ms": true, "milliseconds": true,
	"us": true, "microseconds": true,
	"kb": true, "mb": true,
}

func checkMetricName(pass *Pass, pos token.Pos, name, kind string) {
	if !metricNameRE.MatchString(name) || strings.Contains(name, "__") || strings.HasSuffix(name, "_") {
		pass.Reportf(pos,
			"metric name %q is not snake_case (lowercase [a-z0-9_], no doubled or trailing underscores)", name)
		return // the remaining rules assume well-formed components
	}
	if !strings.HasPrefix(name, "lbkeogh_") && !strings.HasPrefix(name, "shapeserver_") {
		pass.Reportf(pos, "metric name %q lacks the lbkeogh_ or shapeserver_ namespace prefix", name)
	}
	switch {
	case kind == "counter" && !strings.HasSuffix(name, "_total"):
		pass.Reportf(pos, "counter %q must end in _total", name)
	case kind != "counter" && kind != "" && strings.HasSuffix(name, "_total"):
		pass.Reportf(pos, "%s %q must not end in _total (the suffix is reserved for counters)", kind, name)
	}
	parts := strings.Split(name, "_")
	for i, p := range parts {
		if metricBadUnits[p] {
			pass.Reportf(pos, "metric name %q uses unit %q; use base units (_seconds, _bytes)", name, p)
			continue
		}
		if p != "seconds" && p != "bytes" {
			continue
		}
		rest := parts[i+1:]
		if len(rest) > 1 || (len(rest) == 1 && rest[0] != "total") {
			pass.Reportf(pos, "metric name %q buries the unit %q; the unit goes last (only _total may follow)", name, p)
		}
	}
}
