package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicMix returns the atomicmix analyzer, the concurrency-hygiene gate the
// scale arc (sharded scatter-gather, cross-shard best-so-far broadcast)
// depends on. It enforces three invariants per package:
//
//  1. A struct field accessed through a sync/atomic function anywhere in the
//     package must be accessed through sync/atomic everywhere: one plain
//     load or store next to atomic ones is a data race the race detector
//     only catches when the interleaving happens to fire. (Typed atomics —
//     atomic.Int64 and friends — make this mistake unrepresentable and are
//     the preferred fix.)
//  2. Values whose type contains a sync lock (Mutex, RWMutex, WaitGroup,
//     Once, Cond) must not be copied: value receivers, by-value parameters
//     and results, and plain assignments that copy a lock all split the
//     lock state in two.
//  3. sync.WaitGroup.Add must not run inside the goroutine it gates: the
//     spawned goroutine races with Wait, which may return before Add runs.
func AtomicMix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc: "flag struct fields accessed both atomically (sync/atomic) and plainly, " +
			"sync locks copied by value, and WaitGroup.Add inside the goroutine it gates",
	}
	a.Run = func(pass *Pass) {
		checkAtomicPlainMix(pass)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					checkLockReceiver(pass, n)
				case *ast.FuncType:
					checkLockSignature(pass, n)
				case *ast.AssignStmt:
					checkLockAssign(pass, n)
				case *ast.GoStmt:
					checkGoWaitGroupAdd(pass, n)
				}
				return true
			})
		}
	}
	return a
}

// checkAtomicPlainMix collects every struct field whose address is passed to
// a sync/atomic function, then reports each remaining plain (non-atomic) use
// of the same field in the package.
func checkAtomicPlainMix(pass *Pass) {
	atomicFields := map[*types.Var]token.Position{}
	// Selectors consumed by an atomic call (the &x.f argument) must not be
	// re-reported as plain uses.
	atomicSites := map[*ast.SelectorExpr]bool{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				field := selectedField(pass, sel)
				if field == nil {
					continue
				}
				if _, seen := atomicFields[field]; !seen {
					atomicFields[field] = pass.Fset.Position(un.Pos())
				}
				atomicSites[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicSites[sel] {
				return true
			}
			field := selectedField(pass, sel)
			if field == nil {
				return true
			}
			atomicAt, ok := atomicFields[field]
			if !ok {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is accessed via sync/atomic at %s but plainly here; every access must be atomic (or use the typed atomic.%s)",
				field.Name(), shortPosition(atomicAt), suggestTypedAtomic(field.Type()))
			return true
		})
	}
}

// selectedField resolves a selector expression to the struct field it
// denotes, or nil for methods, package qualifiers and non-field selections.
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

func isSyncAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// suggestTypedAtomic names the typed atomic replacing a plain field.
func suggestTypedAtomic(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		case types.Bool:
			return "Bool"
		}
	}
	return "Value"
}

func shortPosition(p token.Position) string {
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// lockKinds are the sync types whose values must never be copied once used.
var lockKinds = map[string]bool{
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.WaitGroup": true,
	"sync.Once":      true,
	"sync.Cond":      true,
}

// typeHasLock reports whether t contains a sync lock by value (not behind a
// pointer: copying a pointer to a lock is fine).
func typeHasLock(t types.Type) bool {
	seen := map[types.Type]bool{}
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		if lockKinds[namedTypeKeyNoPtr(t)] {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}

// namedTypeKeyNoPtr is namedTypeKey without the pointer unwrap: a *sync.Mutex
// field is shareable, only the value form is a copy hazard.
func namedTypeKeyNoPtr(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func lockTypeName(t types.Type) string {
	if s := namedTypeKeyNoPtr(t); s != "" {
		return s
	}
	return t.String()
}

// checkLockReceiver flags value receivers on types containing a lock: every
// call copies the lock.
func checkLockReceiver(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if typeHasLock(t) {
		pass.Reportf(fd.Recv.List[0].Pos(),
			"method %s has a value receiver of type %s, which contains a lock; every call copies it — use a pointer receiver",
			fd.Name.Name, lockTypeName(t))
	}
}

// checkLockSignature flags by-value lock parameters and results.
func checkLockSignature(pass *Pass, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if typeHasLock(t) {
				pass.Reportf(field.Pos(),
					"%s of type %s passes a lock by value; pass a pointer so both sides share one lock state",
					what, lockTypeName(t))
			}
		}
	}
	report(ft.Params, "parameter")
	report(ft.Results, "result")
}

// checkLockAssign flags assignments that copy a lock-containing value from an
// existing variable, field, element or dereference. Composite literals and
// zero-value declarations initialize rather than copy and stay allowed.
func checkLockAssign(pass *Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		// Assigning to the blank identifier evaluates but discards: no second
		// live lock comes into existence.
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		switch rhs.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue // literals, calls, conversions: not a copy of a live lock
		}
		t := pass.TypesInfo.TypeOf(rhs)
		if t == nil {
			continue
		}
		if _, isPtr := t.(*types.Pointer); isPtr {
			continue
		}
		if typeHasLock(t) {
			pass.Reportf(rhs.Pos(),
				"assignment copies a value of type %s, which contains a lock; copy a pointer instead",
				lockTypeName(t))
		}
	}
}

// checkGoWaitGroupAdd flags wg.Add calls lexically inside a go statement when
// wg is declared outside it: the new goroutine races with Wait, which may
// observe a zero counter and return before Add runs. Add belongs on the
// spawning goroutine, before the go statement.
func checkGoWaitGroupAdd(pass *Pass, g *ast.GoStmt) {
	ast.Inspect(g.Call, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		recv := rootIdent(sel.X)
		if recv == nil {
			return true
		}
		v, ok := pass.TypesInfo.Uses[recv].(*types.Var)
		if !ok {
			return true
		}
		if v.Pos() >= g.Pos() && v.Pos() <= g.End() {
			return true // goroutine-local WaitGroup gating nested work
		}
		pass.Reportf(call.Pos(),
			"%s.Add inside the goroutine it gates races with Wait; call Add on the spawning goroutine, before the go statement",
			recv.Name)
		return true
	})
}

// rootIdent returns the leftmost identifier of a selector chain (wg in
// wg.Add, s in s.wg.Add), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
