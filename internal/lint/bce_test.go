package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestBCEFixtureFlagsInjectedBoundsCheck is the acceptance check for the
// bcebaseline analyzer: the fixture package carries a hotpath function with
// a deliberately un-eliminable bounds check (gatherAt) that the committed
// fixture baseline does not record, and RunBCE must fail on exactly it while
// leaving the clean function (sumClean) alone.
func TestBCEFixtureFlagsInjectedBoundsCheck(t *testing.T) {
	pkg := loadFixture(t, "bcebaseline", "bcebaseline_fixture")
	baseline := filepath.Join(sharedRoot, "internal", "lint", "testdata", "src", "bcebaseline", "bce_baseline.txt")
	res, err := RunBCE(sharedRoot, []*Package{pkg}, baseline)
	if err != nil {
		t.Fatalf("RunBCE: %v", err)
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("diagnostics = %d, want exactly 1 (the injected check in gatherAt):\n%s", len(res.Diagnostics), format(res.Diagnostics))
	}
	d := res.Diagnostics[0]
	want := regexp.MustCompile(`hotpath function bcebaseline_fixture\.gatherAt has \d+ bounds checks but no baseline entry`)
	if !want.MatchString(d.Message) {
		t.Errorf("diagnostic %q does not match %q", d.Message, want)
	}
	if d.Analyzer != BCEBaselineName {
		t.Errorf("analyzer = %q, want %q", d.Analyzer, BCEBaselineName)
	}
	for _, s := range res.Stale {
		if strings.Contains(s, "sumClean") {
			t.Errorf("clean function reported stale: %s", s)
		}
	}
}

// TestBCERepositoryBaseline is the whole-repo self-check: the committed
// bce_baseline.txt must exactly match what the compiler emits today — no new
// hot-path bounds checks (diagnostics) and no stale entries (someone
// improved a kernel without committing the tighter baseline).
func TestBCERepositoryBaseline(t *testing.T) {
	l := moduleLoader(t)
	pkgs, err := l.Packages()
	if err != nil {
		t.Fatalf("type-checking module: %v", err)
	}
	baseline := filepath.Join(sharedRoot, "internal", "lint", "testdata", "bce_baseline.txt")
	res, err := RunBCE(sharedRoot, pkgs, baseline)
	if err != nil {
		t.Fatalf("RunBCE: %v", err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("%s", d)
	}
	for _, s := range res.Stale {
		t.Errorf("stale baseline: %s", s)
	}
}

// TestBCEBaselineParser covers the baseline file grammar.
func TestBCEBaselineParser(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.txt", "# comment\n\npkg.F 2\n(pkg.T).M 0\n")
	m, err := readBCEBaseline(good)
	if err != nil {
		t.Fatalf("readBCEBaseline: %v", err)
	}
	if m["pkg.F"] != 2 || m["(pkg.T).M"] != 0 || len(m) != 2 {
		t.Errorf("parsed %v, want pkg.F=2 (pkg.T).M=0", m)
	}
	if _, err := readBCEBaseline(write("badfields.txt", "pkg.F\n")); err == nil {
		t.Error("missing count accepted")
	}
	if _, err := readBCEBaseline(write("badcount.txt", "pkg.F many\n")); err == nil {
		t.Error("non-integer count accepted")
	}
}
