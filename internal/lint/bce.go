package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The bcebaseline check proves bounds-check elimination instead of guessing
// at it: it drives `go build -gcflags=-d=ssa/check_bce` over every package
// that contains a //lbkeogh:hotpath function, maps the compiler's "Found
// IsInBounds"/"Found IsSliceInBounds" positions into those functions, and
// diffs the per-function counts against a committed baseline. A NEW bounds
// check in a hot path — the kind that quietly kills vectorization — fails
// lbkeoghvet; an eliminated one is reported as a stale-baseline notice so
// the improvement gets committed via `make bce-baseline`.
//
// Unlike the AST analyzers this check shells out to the compiler, so it runs
// as a separate step in cmd/lbkeoghvet rather than through lint.Run. The
// gcflags debug output is part of the compile's cached output and is
// replayed verbatim on cache hits, so repeated runs stay cheap and
// deterministic.

// BCEBaselineName is the analyzer name bcebaseline diagnostics carry, used
// by //lint:ignore directives and -only filters.
const BCEBaselineName = "bcebaseline"

// bceFunc is one //lbkeogh:hotpath function eligible for baseline tracking.
type bceFunc struct {
	key       string // pkgpath.Func or (pkgpath.Type).Method
	file      string // absolute path
	startLine int
	endLine   int
	pos       token.Position
	count     int
}

// bceResult is the outcome of one baseline comparison.
type bceResult struct {
	Diagnostics []Diagnostic
	// Stale lists baseline entries whose function improved or disappeared:
	// not a failure, but the baseline should be regenerated and committed.
	Stale []string
}

// collectHotpathFuncs finds every //lbkeogh:hotpath function in the loaded
// packages, keyed for the baseline and carrying its file/line extent.
// Functions in _test.go files are skipped: `go build` never compiles them.
func collectHotpathFuncs(pkgs []*Package) []*bceFunc {
	var funcs []*bceFunc
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !funcHasDirective(fd.Doc, HotpathDirective) {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := fn.FullName()
				if seen[key] {
					continue
				}
				seen[key] = true
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				funcs = append(funcs, &bceFunc{
					key:       key,
					file:      start.Filename,
					startLine: start.Line,
					endLine:   end.Line,
					pos:       start,
				})
			}
		}
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].key < funcs[j].key })
	return funcs
}

// bceCounts compiles the packages owning hotpath functions with the
// check_bce debug flag and fills in each function's bounds-check count.
func bceCounts(moduleDir string, funcs []*bceFunc) error {
	dirs := map[string]bool{}
	for _, fn := range funcs {
		dirs[filepath.Dir(fn.file)] = true
	}
	if len(dirs) == 0 {
		return nil
	}
	args := []string{"build", "-gcflags=-d=ssa/check_bce"}
	var sorted []string
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)
	for _, d := range sorted {
		rel, err := filepath.Rel(moduleDir, d)
		if err != nil {
			return fmt.Errorf("bcebaseline: package dir %s outside module: %v", d, err)
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("bcebaseline: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	// Index functions by file for the position walk.
	byFile := map[string][]*bceFunc{}
	for _, fn := range funcs {
		byFile[fn.file] = append(byFile[fn.file], fn)
	}
	sc := bufio.NewScanner(&stderr)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasSuffix(line, "Found IsInBounds") && !strings.HasSuffix(line, "Found IsSliceInBounds") {
			continue
		}
		// path:line:col: Found Is[Slice]InBounds, path relative to moduleDir.
		parts := strings.SplitN(line, ":", 4)
		if len(parts) < 4 || strings.HasPrefix(parts[0], "<") {
			continue
		}
		lineNo, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		abs := parts[0]
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(moduleDir, abs)
		}
		for _, fn := range byFile[abs] {
			if lineNo >= fn.startLine && lineNo <= fn.endLine {
				fn.count++
				break
			}
		}
	}
	return sc.Err()
}

// readBCEBaseline parses "key count" lines, ignoring blanks and # comments.
func readBCEBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	baseline := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"<function> <count>\", got %q", path, i+1, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad count %q: %v", path, i+1, fields[1], err)
		}
		baseline[fields[0]] = n
	}
	return baseline, nil
}

// RunBCE measures the current bounds-check counts of every hotpath function
// in pkgs and compares them to the committed baseline. New or increased
// counts become diagnostics; decreased or vanished entries become stale
// notices.
func RunBCE(moduleDir string, pkgs []*Package, baselinePath string) (bceResult, error) {
	var res bceResult
	funcs := collectHotpathFuncs(pkgs)
	if len(funcs) == 0 {
		return res, nil
	}
	if err := bceCounts(moduleDir, funcs); err != nil {
		return res, err
	}
	baseline, err := readBCEBaseline(baselinePath)
	if err != nil {
		return res, fmt.Errorf("bcebaseline: reading %s (run `make bce-baseline` to create it): %w", baselinePath, err)
	}
	current := map[string]bool{}
	for _, fn := range funcs {
		current[fn.key] = true
		base, known := baseline[fn.key]
		switch {
		case !known && fn.count > 0:
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Pos:      fn.pos,
				Analyzer: BCEBaselineName,
				Message: fmt.Sprintf("hotpath function %s has %d bounds checks but no baseline entry; eliminate them (re-slice to a constant bound the prove pass can see) or record them via `make bce-baseline`",
					fn.key, fn.count),
			})
		case known && fn.count > base:
			res.Diagnostics = append(res.Diagnostics, Diagnostic{
				Pos:      fn.pos,
				Analyzer: BCEBaselineName,
				Message: fmt.Sprintf("hotpath function %s grew from %d to %d bounds checks; a new check in a hot loop blocks vectorization — eliminate it or consciously rebaseline via `make bce-baseline`",
					fn.key, base, fn.count),
			})
		case known && fn.count < base:
			res.Stale = append(res.Stale, fmt.Sprintf("%s improved from %d to %d bounds checks; run `make bce-baseline` and commit the result", fn.key, base, fn.count))
		}
	}
	for key := range baseline {
		if !current[key] {
			res.Stale = append(res.Stale, fmt.Sprintf("%s is in the baseline but no longer a hotpath function; run `make bce-baseline`", key))
		}
	}
	sort.Strings(res.Stale)
	return res, nil
}

// WriteBCEBaseline regenerates the baseline file from the current compiler
// output.
func WriteBCEBaseline(moduleDir string, pkgs []*Package, baselinePath string) error {
	funcs := collectHotpathFuncs(pkgs)
	if err := bceCounts(moduleDir, funcs); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("# BCE baseline: bounds checks the compiler still emits inside //lbkeogh:hotpath\n")
	b.WriteString("# functions (go build -gcflags=-d=ssa/check_bce). lbkeoghvet fails on any NEW\n")
	b.WriteString("# check relative to this file. Regenerate with `make bce-baseline` and commit.\n")
	for _, fn := range funcs {
		fmt.Fprintf(&b, "%s %d\n", fn.key, fn.count)
	}
	return os.WriteFile(baselinePath, []byte(b.String()), 0o644)
}
