package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEqPackages are the admissibility-critical packages where raw
// floating-point equality is forbidden: a bound that compares distances with
// == or != can silently lose exactness under reassociation or FMA
// contraction, which is precisely the class of regression Propositions 1–2
// rule out.
var FloatEqPackages = []string{
	"lbkeogh/internal/dist",
	"lbkeogh/internal/envelope",
	"lbkeogh/internal/wedge",
}

// FloatEq returns the floateq analyzer: it flags == and != where either
// operand is floating-point (or complex). Comparisons entirely between
// compile-time constants are exact and exempt. Sentinel checks belong to
// math.IsInf/math.IsNaN; everything else goes through an epsilon helper.
// The production configuration (DefaultAnalyzers) restricts the analyzer to
// FloatEqPackages, test files included.
func FloatEq() *Analyzer {
	a := &Analyzer{
		Name: "floateq",
		Doc: "forbid ==/!= on floating-point operands in admissibility-critical packages; " +
			"use epsilon helpers or math.IsInf/math.IsNaN",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, yt := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
				if !isFloatish(xt.Type) && !isFloatish(yt.Type) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true // constant folding: exact at compile time
				}
				pass.Reportf(be.OpPos,
					"floating-point %s comparison; use an epsilon helper (or math.IsInf/math.IsNaN for sentinels) to keep bounds admissible",
					be.Op)
				return true
			})
		}
	}
	return a
}

func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
