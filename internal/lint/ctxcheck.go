package lint

import (
	"go/ast"
	"go/types"
)

// CtxCheck returns the ctxcheck analyzer, enforcing the repository's two
// context conventions:
//
//  1. Exported functions and methods that accept a context.Context take it
//     as their first parameter (the standard Go signature shape — SearchContext,
//     ScanParallelContext and friends all follow it).
//  2. Inside //lbkeogh:hotpath functions, a loop must not call ctx.Err() on
//     every iteration: polling the context involves an atomic load (and for
//     deadline contexts a mutex), which is exactly the per-step overhead the
//     hot path bans. The poll must sit behind an amortizing counter — an
//     integer-guarded branch like internal/cancel.Checker's — so its cost
//     spreads over the checkpoint interval.
func CtxCheck() *Analyzer {
	a := &Analyzer{
		Name: "ctxcheck",
		Doc: "exported functions take context.Context first; //lbkeogh:hotpath loops " +
			"must amortize ctx.Err() polls behind an integer-guarded checkpoint",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				checkCtxParamOrder(pass, fd)
				if fd.Body != nil && funcHasDirective(fd.Doc, HotpathDirective) {
					scanHotpathPolls(pass, fd.Body, false, false)
				}
			}
		}
	}
	return a
}

// checkCtxParamOrder flags context.Context parameters of exported functions
// at any position but the first.
func checkCtxParamOrder(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies one position
		}
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) && idx > 0 {
			pass.Reportf(field.Pos(),
				"exported %s takes context.Context at parameter %d; contexts go first (as in SearchContext)",
				fd.Name.Name, idx)
		}
		idx += n
	}
}

// scanHotpathPolls walks a hotpath function body tracking whether the
// current node executes once per loop iteration (inLoop) and whether an
// enclosing if condition mentions an integer variable (guarded) — the
// amortizing-counter shape. An unguarded per-iteration ctx.Err() call is
// reported.
func scanHotpathPolls(pass *Pass, n ast.Node, inLoop, guarded bool) {
	root := n
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil || m == root {
			return true
		}
		switch s := m.(type) {
		case *ast.ForStmt:
			if s.Init != nil {
				scanHotpathPolls(pass, s.Init, inLoop, guarded)
			}
			// Cond and Post re-execute on every iteration, like the body.
			if s.Cond != nil {
				scanHotpathPolls(pass, s.Cond, true, guarded)
			}
			if s.Post != nil {
				scanHotpathPolls(pass, s.Post, true, guarded)
			}
			scanHotpathPolls(pass, s.Body, true, guarded)
			return false
		case *ast.RangeStmt:
			if s.X != nil {
				scanHotpathPolls(pass, s.X, inLoop, guarded) // evaluated once
			}
			scanHotpathPolls(pass, s.Body, true, guarded)
			return false
		case *ast.IfStmt:
			scanIf(pass, s, inLoop, guarded)
			return false
		case *ast.CallExpr:
			if inLoop && !guarded && isCtxErrCall(pass, s) {
				pass.Reportf(s.Pos(),
					"hotpath loop polls ctx.Err() on every iteration; amortize the poll behind an integer checkpoint counter (see internal/cancel.Checker)")
			}
			return true
		}
		return true
	})
}

// scanIf handles one if statement (and any else-if chain) explicitly: a
// condition mentioning an integer-typed variable marks the whole statement —
// condition included, so `i%16 == 0 && ctx.Err() != nil` passes — as an
// amortized checkpoint.
func scanIf(pass *Pass, s *ast.IfStmt, inLoop, guarded bool) {
	g := guarded || mentionsIntVar(pass, s.Cond)
	if s.Init != nil {
		scanHotpathPolls(pass, s.Init, inLoop, g)
	}
	scanHotpathPolls(pass, s.Cond, inLoop, g)
	scanHotpathPolls(pass, s.Body, inLoop, g)
	switch e := s.Else.(type) {
	case nil:
	case *ast.IfStmt:
		scanIf(pass, e, inLoop, guarded) // the chained condition guards itself
	default:
		scanHotpathPolls(pass, e, inLoop, g)
	}
}

// mentionsIntVar reports whether the expression references an integer-typed
// identifier (the checkpoint countdown of an amortized poll).
func mentionsIntVar(pass *Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || found {
			return !found
		}
		t := pass.TypesInfo.TypeOf(id)
		if t == nil {
			return true
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			found = true
		}
		return !found
	})
	return found
}

// isCtxErrCall reports whether the call is ctx.Err() on a context.Context.
func isCtxErrCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Err" || len(call.Args) != 0 {
		return false
	}
	return isContextType(pass.TypesInfo.TypeOf(sel.X))
}

func isContextType(t types.Type) bool {
	return t != nil && namedTypeKey(t) == "context.Context"
}
