// Package ctxcheck is the golden fixture for the ctxcheck analyzer:
// exported functions take context.Context first, and //lbkeogh:hotpath loops
// amortize ctx.Err() polls behind an integer checkpoint counter.
package ctxcheck

import "context"

// SearchContext takes its context first: clean.
func SearchContext(ctx context.Context, db []float64) error { return ctx.Err() }

// SearchLate buries the context behind the data.
func SearchLate(db []float64, ctx context.Context) error { return ctx.Err() } // want `contexts go first`

type scanner struct{}

// ScanContext is a method; the receiver does not count as a parameter.
func (scanner) ScanContext(ctx context.Context, n int) error { return ctx.Err() }

// ScanLate is a method with a misplaced context.
func (scanner) ScanLate(n int, ctx context.Context) error { return ctx.Err() } // want `contexts go first`

// Grouped declares the context in a shared parameter group, still late.
func Grouped(a, b int, c, ctx context.Context) error { return ctx.Err() } // want `contexts go first`

// unexportedLate is not part of the API surface: not checked.
func unexportedLate(n int, ctx context.Context) error { return ctx.Err() }

// hotUnamortized polls the context on every iteration of a hot loop.
//
//lbkeogh:hotpath
func hotUnamortized(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		if ctx.Err() != nil { // want `amortize the poll`
			return s
		}
		s += x
	}
	return s
}

// hotCondPoll hides the per-iteration poll in the loop condition.
//
//lbkeogh:hotpath
func hotCondPoll(ctx context.Context, n int) int {
	i := 0
	for ctx.Err() == nil { // want `amortize the poll`
		i++
		if i == n {
			break
		}
	}
	return i
}

// hotAmortized counts down to its polls: the checkpoint shape.
//
//lbkeogh:hotpath
func hotAmortized(ctx context.Context, xs []float64) float64 {
	s := 0.0
	left := 16
	for _, x := range xs {
		left--
		if left == 0 {
			left = 16
			if ctx.Err() != nil {
				return s
			}
		}
		s += x
	}
	return s
}

// hotInlineGuard amortizes inside one condition: the integer operand marks
// the whole condition as a checkpoint.
//
//lbkeogh:hotpath
func hotInlineGuard(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for i, x := range xs {
		if i%16 == 0 && ctx.Err() != nil {
			return s
		}
		s += x
	}
	return s
}

// hotEntryPoll polls once outside any loop: fine.
//
//lbkeogh:hotpath
func hotEntryPoll(ctx context.Context, xs []float64) float64 {
	if ctx.Err() != nil {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// coldLoop is not a hot path; it may poll every iteration.
func coldLoop(ctx context.Context, xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		if ctx.Err() != nil {
			return s
		}
		s += x
	}
	return s
}
