// Package bcebaseline_fixture is the golden fixture for the bcebaseline
// check. gatherAt indexes through an arbitrary index slice, a bounds check
// the prove pass cannot eliminate — the injected regression the check must
// flag, since the committed fixture baseline records only sumClean.
// sumClean ranges directly and compiles bounds-check-free.
package bcebaseline_fixture

// gatherAt sums xs at the given positions. xs[i] needs a runtime bounds
// check: i comes from data.
//
//lbkeogh:hotpath
func gatherAt(xs []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += xs[i]
	}
	return s
}

// sumClean is the clean counterpart: ranging over the slice itself proves
// every access in bounds.
//
//lbkeogh:hotpath
func sumClean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

var (
	_ = gatherAt
	_ = sumClean
)
