// Package floateq is the golden fixture for the floateq analyzer: no ==/!=
// where either operand is floating-point.
package floateq

import "math"

func eq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func neq(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want `floating-point == comparison`
}

type meters float64

func namedFloat(a, b meters) bool {
	return a == b // want `floating-point == comparison`
}

func zeroCheck(a float64) bool {
	return a == 0 // want `floating-point == comparison`
}

// ints compares integers; no finding.
func ints(a, b int) bool { return a == b }

const half = 0.5

// constFold compares two compile-time constants; exact, exempt.
func constFold() bool {
	return half == 0.5
}

// sentinels use the sanctioned predicates.
func sentinels(a float64) bool {
	return math.IsNaN(a) || math.IsInf(a, 0)
}

// ordered comparisons are fine; only equality is unstable.
func ordered(a, b float64) bool { return a < b }

var (
	_ = eq
	_ = neq
	_ = mixed
	_ = namedFloat
	_ = zeroCheck
	_ = ints
	_ = constFold
	_ = sentinels
	_ = ordered
)
