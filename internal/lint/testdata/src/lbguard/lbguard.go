// Package lbguard is the golden fixture for the lbguard analyzer: LB*,
// LowerBound* and lowerBound* functions stay in squared space unless
// annotated as root-space API boundaries.
package lbguard

import "math"

// LBRooted takes the root inside a bound without declaring the boundary.
func LBRooted(acc float64) float64 {
	return math.Sqrt(acc) // want `calls math.Sqrt`
}

// lowerBoundNested hides the Sqrt in a closure; still flagged.
func lowerBoundNested(acc float64) float64 {
	f := func() float64 { return math.Sqrt(acc) } // want `calls math.Sqrt`
	return f()
}

// LowerBoundBoundary is a documented root-space API boundary.
//
//lbkeogh:rootspace
func LowerBoundBoundary(acc float64) float64 {
	return math.Sqrt(acc)
}

// LBSquared is the sanctioned shape: accumulate and compare squared.
func LBSquared(q, u, l []float64) float64 {
	acc := 0.0
	for i := range q {
		switch {
		case q[i] > u[i]:
			d := q[i] - u[i]
			acc += d * d
		case q[i] < l[i]:
			d := q[i] - l[i]
			acc += d * d
		}
	}
	return acc
}

// distance is not a lower-bound name; Sqrt is its job.
func distance(acc float64) float64 {
	return math.Sqrt(acc)
}

var (
	_ = LBRooted
	_ = lowerBoundNested
	_ = LowerBoundBoundary
	_ = LBSquared
	_ = distance
)
