// Package directive exercises the //lint:ignore grammar: one well-formed
// suppression, one directive missing its reason, one naming an unknown
// analyzer. The malformed directives are reported and suppress nothing.
package directive

func suppressed(a, b float64) bool {
	return a == b //lint:ignore floateq fixture for the valid-directive path
}

//lint:ignore floateq
func missingReason(a, b float64) bool {
	return a != b
}

//lint:ignore nosuchanalyzer the analyzer list must name known analyzers
func unknownAnalyzer(a, b float64) bool {
	return a != b
}

var (
	_ = suppressed
	_ = missingReason
	_ = unknownAnalyzer
)
