// Package atomicmix_fixture is the golden fixture for the atomicmix
// analyzer: mixed atomic/plain field access, locks copied by value, and
// WaitGroup.Add inside the goroutine it gates, each next to a clean
// counterpart that must stay silent.
package atomicmix_fixture

import (
	"sync"
	"sync/atomic"
)

// mixedCounter increments hits atomically but reads it plainly: the classic
// prune-accounting race.
type mixedCounter struct {
	hits int64
	name string
}

func (m *mixedCounter) Inc() {
	atomic.AddInt64(&m.hits, 1)
}

func (m *mixedCounter) Snapshot() int64 {
	return m.hits // want `field hits is accessed via sync/atomic at atomicmix\.go:\d+ but plainly here`
}

func (m *mixedCounter) Reset() {
	m.hits = 0  // want `field hits is accessed via sync/atomic`
	m.name = "" // plain-only field: fine
}

// typedCounter is the clean counterpart: the typed atomic makes a plain
// access unrepresentable.
type typedCounter struct {
	hits atomic.Int64
}

func (t *typedCounter) Inc() { t.hits.Add(1) }

func (t *typedCounter) Snapshot() int64 { return t.hits.Load() }

// suppressedMix documents a deliberate single-writer read with a reason.
type suppressedMix struct {
	gen uint64
}

func (s *suppressedMix) Bump() { atomic.AddUint64(&s.gen, 1) }

func (s *suppressedMix) Gen() uint64 {
	//lint:ignore atomicmix read happens before any goroutine is spawned
	return s.gen
}

// guarded copies a lock via a value receiver.
type guarded struct {
	mu sync.Mutex
	n  int
}

func (g guarded) Bad() int { // want `method Bad has a value receiver of type atomicmix_fixture\.guarded, which contains a lock`
	return g.n
}

func (g *guarded) Good() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// takesLock passes a mutex-bearing struct by value.
func takesLock(g guarded) int { // want `parameter of type atomicmix_fixture\.guarded passes a lock by value`
	return g.n
}

func takesLockPtr(g *guarded) int { return g.n }

func copiesLock(src *guarded) {
	cp := *src // want `assignment copies a value of type atomicmix_fixture\.guarded, which contains a lock`
	_ = cp
	fresh := guarded{} // composite literal: initialization, not a copy
	_ = fresh
	ptr := src // pointer copy shares the lock: fine
	_ = ptr
}

// addInsideGoroutine calls wg.Add on the goroutine Wait is waiting for.
func addInsideGoroutine() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `wg\.Add inside the goroutine it gates races with Wait`
		defer wg.Done()
	}()
	wg.Wait()
}

// addBeforeGoroutine is the correct shape.
func addBeforeGoroutine() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

// nestedOwnWaitGroup declares the WaitGroup inside the goroutine: gating
// nested work from there is fine.
func nestedOwnWaitGroup() {
	go func() {
		var inner sync.WaitGroup
		inner.Add(1)
		go func() { inner.Done() }()
		inner.Wait()
	}()
}

var (
	_ = (&mixedCounter{}).Snapshot
	_ = (&typedCounter{}).Snapshot
	_ = (&suppressedMix{}).Gen
	_ = takesLock
	_ = takesLockPtr
	_ = copiesLock
	_ = addInsideGoroutine
	_ = addBeforeGoroutine
	_ = nestedOwnWaitGroup
)
