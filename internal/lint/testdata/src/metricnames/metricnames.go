// Package metricnames is the golden fixture for the metricnames analyzer:
// every metric name handed to the obs registry or the ops exposition helpers
// must be snake_case, carry the lbkeogh_/shapeserver_ namespace, end counters
// in _total, and keep base units (_seconds, _bytes) last.
package metricnames

import (
	"io"

	"lbkeogh/internal/obs"
	"lbkeogh/internal/obs/ops"
)

// Register covers the registry entry points; the first block is the clean
// counterpart that must stay silent.
func Register(r *obs.Registry, st *obs.SearchStats) {
	r.Counter("lbkeogh_good_total", "well-formed counter")
	r.Histogram("shapeserver_step_seconds", "well-formed histogram")
	r.SearchStats("lbkeogh_search", "well-formed stats prefix", st)

	r.Counter("lbkeogh_requests", "counter without the suffix")    // want `counter "lbkeogh_requests" must end in _total`
	r.Histogram("lbkeogh_wait_total", "histogram claiming _total") // want `must not end in _total`
	r.Counter("requests_total", "no namespace")                    // want `lacks the lbkeogh_ or shapeserver_ namespace prefix`
	r.Counter("lbkeogh_BadName_total", "camel case")               // want `is not snake_case`
	r.Counter("lbkeogh__doubled_total", "doubled underscore")      // want `is not snake_case`
	r.Histogram("lbkeogh_latency_ms", "scaled unit")               // want `use base units`
	r.Histogram("lbkeogh_seconds_wait", "unit not last")           // want `buries the unit "seconds"`
}

// Expose covers the exposition helpers, including the kind read from
// WriteFamily's literal argument.
func Expose(w io.Writer) {
	ops.WriteCounter(w, "shapeserver_good_total", "fine", 1)
	ops.WriteGaugeInt(w, "shapeserver_depth", "fine", 1)
	ops.WriteGaugeFloat(w, "lbkeogh_ratio", "fine", 0.5)
	ops.WriteFamily(w, "lbkeogh_hist_seconds", "histogram", "fine")

	ops.WriteCounter(w, "shapeserver_drops", "counter without the suffix", 1)   // want `counter "shapeserver_drops" must end in _total`
	ops.WriteGaugeInt(w, "shapeserver_depth_total", "gauge claiming _total", 1) // want `gauge "shapeserver_depth_total" must not end in _total`
	ops.WriteFamily(w, "lbkeogh_batch", "counter", "kind from the literal")     // want `counter "lbkeogh_batch" must end in _total`
	ops.WriteGaugeFloat(w, "lbkeogh_heap_kb", "scaled unit", 1)                 // want `use base units`
}

// Dynamic names are out of scope: only string literals are checked.
func Dynamic(w io.Writer, name string) {
	ops.WriteCounter(w, name, "dynamic name", 1)
}
