// Package hotalloc is the golden fixture for the hotalloc analyzer:
// functions annotated //lbkeogh:hotpath must not contain syntactic
// heap-allocation sites.
package hotalloc

// hotMake allocates a fresh buffer per call.
//
//lbkeogh:hotpath
func hotMake(n int) []float64 {
	out := make([]float64, n) // want `calls make per invocation`
	return out
}

// hotNew allocates per call.
//
//lbkeogh:hotpath
func hotNew() *int {
	return new(int) // want `calls new per invocation`
}

// hotAppend may grow and reallocate.
//
//lbkeogh:hotpath
func hotAppend(dst []int, v int) []int {
	return append(dst, v) // want `appends, which may grow`
}

// hotSliceLit materializes a slice literal per call.
//
//lbkeogh:hotpath
func hotSliceLit(a, b int) int {
	sum := 0
	for _, v := range []int{a, b} { // want `allocates a slice literal`
		sum += v
	}
	return sum
}

// hotAddr escapes a composite literal to the heap.
//
//lbkeogh:hotpath
func hotAddr() *struct{ x int } {
	return &struct{ x int }{x: 1} // want `address of a composite literal`
}

// hotClosure defines a closure whose captures may heap-allocate.
//
//lbkeogh:hotpath
func hotClosure(s []float64) float64 {
	f := func(i int) float64 { return s[i] } // want `defines a closure`
	return f(0)
}

// hotSuppressed documents its one intentional allocation.
//
//lbkeogh:hotpath
func hotSuppressed(n int) []float64 {
	return make([]float64, n) //lint:ignore hotalloc fixture for the suppression path
}

// hotClean works entirely in caller-provided storage; no findings.
//
//lbkeogh:hotpath
func hotClean(dst, src []float64) {
	for i := range src {
		dst[i] = src[i] * 2
	}
}

// coldMake is not annotated; allocations are fine outside hot paths.
func coldMake(n int) []float64 {
	return make([]float64, n)
}

var (
	_ = hotMake
	_ = hotNew
	_ = hotAppend
	_ = hotSliceLit
	_ = hotAddr
	_ = hotClosure
	_ = hotSuppressed
	_ = hotClean
	_ = coldMake
)
