// Package tallyescape is the golden fixture for the tallyescape analyzer:
// *stats.Tally values must stay confined to one goroutine and off structs.
package tallyescape

import (
	"sync"

	"lbkeogh/internal/stats"
)

// badField parks a Tally where any goroutine holding the struct can reach it.
type badField struct {
	steps stats.Tally // want `struct field holds a stats.Tally`
}

// badDeepField hides the Tally behind a slice of pointers; typeContains must
// still see it.
type badDeepField struct {
	tallies []*stats.Tally // want `struct field holds a stats.Tally`
}

// goodCounterField is fine: Counter is atomic and may be shared.
type goodCounterField struct {
	steps stats.Counter
}

func crossByCapture() {
	var t stats.Tally
	done := make(chan struct{})
	go func() {
		t.Add(1) // want `crosses into a goroutine`
		close(done)
	}()
	<-done
}

func crossByArgument() {
	var t stats.Tally
	var wg sync.WaitGroup
	wg.Add(1)
	go accumulate(&t, &wg) // want `crosses into a goroutine`
	wg.Wait()
}

func accumulate(t *stats.Tally, wg *sync.WaitGroup) {
	defer wg.Done()
	t.Add(1)
}

// goroutineLocal is the sanctioned pattern: each goroutine owns its Tally and
// flushes it into a shared atomic Counter.
func goroutineLocal(total *stats.Counter) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var local stats.Tally
		local.Add(1)
		total.Add(local.Steps())
	}()
	wg.Wait()
}

// sameGoroutine never spawns; passing a Tally down the stack is fine.
func sameGoroutine() int64 {
	var t stats.Tally
	helper(&t)
	return t.Steps()
}

func helper(t *stats.Tally) { t.Add(2) }

var _ = badField{}
var _ = badDeepField{}
var _ = goodCounterField{}
var _ = crossByCapture
var _ = crossByArgument
var _ = goroutineLocal
var _ = sameGoroutine
