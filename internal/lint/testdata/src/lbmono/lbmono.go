// Package lbmono_fixture is the golden fixture for the lbmono analyzer. It
// models a lower-bound cascade in miniature: annotated admissible stages
// composed with max (accepted), plus each contamination the analyzer must
// catch — max over a non-bound, an upper-bound call inside a lower bound, an
// undeclared root-space API boundary, an unannotated float callee, and the
// annotation on a non-float function.
package lbmono_fixture

import "math"

// lbPAA stands in for the PAA piecewise bound: an admissible stage.
//
//lbkeogh:lowerbound
func lbPAA(q, c []float64) float64 {
	d := 0.0
	for i := range q {
		if i < len(c) && q[i] > c[i] {
			d += (q[i] - c[i]) * (q[i] - c[i])
		}
	}
	return d
}

// lbFFT stands in for the FFT magnitude bound: another admissible stage.
//
//lbkeogh:lowerbound
func lbFFT(q, c []float64) float64 {
	return 0
}

// lbCascade is the accepted composition: the max of two admissible lower
// bounds is again an admissible lower bound, and a literal floor is fine.
//
//lbkeogh:lowerbound
func lbCascade(q, c []float64) float64 {
	return max(0, lbPAA(q, c), lbFFT(q, c))
}

// estimate is a heuristic, not a bound: nothing guarantees it stays below
// the true distance.
func estimate(q, c []float64) float64 {
	return float64(len(q)+len(c)) * 0.5
}

// lbContaminated mixes a heuristic into the max: numerically plausible,
// admissibility silently gone.
//
//lbkeogh:lowerbound
func lbContaminated(q, c []float64) float64 {
	return max(lbPAA(q, c), estimate(q, c)) // want `max\(\) over lbmono_fixture\.estimate, which is not an annotated lower bound`
}

// lbContaminatedMathMax does the same through math.Max.
//
//lbkeogh:lowerbound
func lbContaminatedMathMax(q, c []float64) float64 {
	return math.Max(lbPAA(q, c), estimate(q, c)) // want `max\(\) over lbmono_fixture\.estimate`
}

// envelopeUpperBound stands in for a match-count upper bound.
func envelopeUpperBound(q, c []float64) float64 {
	return float64(len(q))
}

// lbMixedWithUpper calls an upper bound from inside a lower bound.
//
//lbkeogh:lowerbound
func lbMixedWithUpper(q, c []float64) float64 {
	return envelopeUpperBound(q, c) // want `calls lbmono_fixture\.envelopeUpperBound, which names an upper bound`
}

// lbInvertedUpper documents an intentional inversion: an upper bound on
// similarity inverts to a lower bound on distance.
//
//lbkeogh:lowerbound
func lbInvertedUpper(q, c []float64) float64 {
	//lint:ignore lbmono a similarity upper bound inverts to an admissible distance lower bound
	return float64(len(q)) - envelopeUpperBound(q, c)
}

// LBRooted leaks root-space results from an exported bound without declaring
// the contract.
//
//lbkeogh:lowerbound
func LBRooted(q, c []float64) float64 {
	return math.Sqrt(lbPAA(q, c)) // want `exported lower bound LBRooted calls math\.Sqrt without //lbkeogh:rootspace`
}

// LBRootedDocumented declares the same conversion as a documented API
// boundary.
//
//lbkeogh:lowerbound
//lbkeogh:rootspace
func LBRootedDocumented(q, c []float64) float64 {
	return math.Sqrt(lbPAA(q, c))
}

// lbRootedInternal is unexported: not an API boundary, free to convert.
//
//lbkeogh:lowerbound
func lbRootedInternal(q, c []float64) float64 {
	return math.Sqrt(lbPAA(q, c))
}

// lbDrifted feeds a non-bound helper into the result arithmetic.
//
//lbkeogh:lowerbound
func lbDrifted(q, c []float64) float64 {
	return lbPAA(q, c) - estimate(q, c) // want `lower bound lbDrifted calls unannotated lbmono_fixture\.estimate`
}

// lbMatchCount misuses the annotation on a non-float function.
//
//lbkeogh:lowerbound
func lbMatchCount(q, c []float64) int { // want `lbMatchCount is annotated //lbkeogh:lowerbound but returns no float`
	return len(q)
}

// bounder dispatches bounds through an interface, as the wedge kernels do.
type bounder interface {
	LowerBound(q, c []float64) float64
	Estimate(q, c []float64) float64
}

// lbDispatch calls an interface method named LowerBound: accepted — the
// concrete implementations carry their own annotations where they are
// defined.
//
//lbkeogh:lowerbound
func lbDispatch(b bounder, q, c []float64) float64 {
	return b.LowerBound(q, c)
}

// lbDispatchBad dispatches to an interface method that promises nothing.
//
//lbkeogh:lowerbound
func lbDispatchBad(b bounder, q, c []float64) float64 {
	return b.Estimate(q, c) // want `calls unannotated \(lbmono_fixture\.bounder\)\.Estimate`
}

// kernelED shows the annotation on a method.
type kernelED struct{}

// LowerBound composes an annotated stage: accepted.
//
//lbkeogh:lowerbound
func (kernelED) LowerBound(q, c []float64) float64 {
	return lbPAA(q, c)
}

var (
	_ = lbCascade
	_ = lbContaminated
	_ = lbContaminatedMathMax
	_ = lbMixedWithUpper
	_ = lbInvertedUpper
	_ = LBRooted
	_ = LBRootedDocumented
	_ = lbRootedInternal
	_ = lbDrifted
	_ = lbMatchCount
	_ = lbDispatch
	_ = lbDispatchBad
	_ = kernelED{}.LowerBound
)
