// Package nilsink is the golden fixture for the nilsink analyzer: exported
// pointer-receiver methods on the configured sink types must begin with a
// nil-receiver guard.
package nilsink

// Sink stands in for the production stats/obs accounting records; the test
// configures the analyzer with NilSink("nilsink_fixture.Sink").
type Sink struct{ n int64 }

// Add has the canonical leading negative guard.
func (s *Sink) Add(d int64) {
	if s == nil {
		return
	}
	s.n += d
}

// Value guards and returns the zero value on nil.
func (s *Sink) Value() int64 {
	if s == nil {
		return 0
	}
	return s.n
}

// Reset uses the positive wrapping guard form.
func (s *Sink) Reset() {
	if s != nil {
		s.n = 0
	}
}

// Inc forgets the guard; a nil sink would panic here.
func (s *Sink) Inc() { // want `must begin with a nil-receiver guard`
	s.n++
}

// Merge guards the wrong variable: the condition is not about the receiver.
func (s *Sink) Merge(o *Sink) { // want `must begin with a nil-receiver guard`
	if o == nil {
		return
	}
	s.n += o.n
}

// Clear has an unnamed receiver, so it cannot guard it.
func (*Sink) Clear() { // want `unnamed receiver`
}

// touch is unexported: internal call sites own the nil discipline.
func (s *Sink) touch() { s.n++ }

// Snapshot has a value receiver, which can never be nil.
func (s Sink) Snapshot() int64 { return s.n }

// Other is not a configured sink type; no guard required.
type Other struct{ n int64 }

// Bump is exported and guard-free, but Other is not a sink.
func (o *Other) Bump() { o.n++ }

var _ = (&Sink{}).touch
