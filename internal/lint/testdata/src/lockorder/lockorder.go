// Package lockorder_fixture is the golden fixture for the lockorder
// analyzer: an AB/BA ordering cycle, re-entrant acquisition (direct and
// through a same-package callee), channel sends and time.Sleep under a lock,
// each next to a clean counterpart that must stay silent.
package lockorder_fixture

import (
	"sync"
	"time"
)

// pair carries two locks that two functions below take in opposite orders.
type pair struct {
	a, b sync.Mutex
	n    int
}

func lockAB(p *pair) {
	p.a.Lock()
	p.b.Lock() // want `lock ordering cycle: lockorder_fixture\.pair\.b is acquired while holding lockorder_fixture\.pair\.a`
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	p.a.Lock() // reverse order: the cycle is reported once, at the first edge
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

// ordered always takes first before second: a consistent order is silent.
type ordered struct {
	first, second sync.Mutex
	n             int
}

func lockConsistently(o *ordered) {
	o.first.Lock()
	o.second.Lock()
	o.n++
	o.second.Unlock()
	o.first.Unlock()
}

func lockConsistentlyAgain(o *ordered) {
	o.first.Lock()
	defer o.first.Unlock()
	o.second.Lock()
	defer o.second.Unlock()
	o.n--
}

// cache exercises re-entrancy, sends and sleeps under its mutex.
type cache struct {
	mu sync.Mutex
	n  int
}

func (c *cache) locked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *cache) relockDirect() {
	c.mu.Lock()
	c.mu.Lock() // want `lock lockorder_fixture\.cache\.mu acquired while already held`
	c.mu.Unlock()
	c.mu.Unlock()
}

func (c *cache) relockViaCallee() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.locked() // want `call to locked acquires lockorder_fixture\.cache\.mu, which is already held`
}

func (c *cache) relockReleasedFirst() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.locked() // released before the call: fine
}

func (c *cache) sendUnderLock(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n // want `channel send while holding lockorder_fixture\.cache\.mu`
}

func (c *cache) sendAfterUnlock(ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	ch <- n
}

func (c *cache) trySendUnderLock(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- c.n: // non-blocking: the default case keeps this silent
	default:
	}
}

func (c *cache) suppressedSend(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:ignore lockorder ch is buffered to the worker count and drained by a dedicated goroutine
	ch <- c.n
}

func (c *cache) sleepUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding lockorder_fixture\.cache\.mu`
}

func (c *cache) sleepOutsideLock() {
	time.Sleep(time.Millisecond)
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// spawnWorker holds the lock while starting a goroutine; the goroutine body
// runs with its own empty held-set, so its sleep and locking are fine.
func (c *cache) spawnWorker() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}

var (
	_ = lockAB
	_ = lockBA
	_ = lockConsistently
	_ = lockConsistentlyAgain
	_ = (&cache{}).relockDirect
	_ = (&cache{}).relockViaCallee
	_ = (&cache{}).relockReleasedFirst
	_ = (&cache{}).sendUnderLock
	_ = (&cache{}).sendAfterUnlock
	_ = (&cache{}).trySendUnderLock
	_ = (&cache{}).suppressedSend
	_ = (&cache{}).sleepUnderLock
	_ = (&cache{}).sleepOutsideLock
	_ = (&cache{}).spawnWorker
)
