package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DefaultNilSinkTypes are the accounting and observability sink types whose
// exported pointer-receiver methods must be nil-safe: a nil sink is the
// documented "uninstrumented" mode of every search hot path, costing exactly
// one predictable branch per call.
var DefaultNilSinkTypes = []string{
	"lbkeogh/internal/stats.Counter",
	"lbkeogh/internal/stats.Tally",
	"lbkeogh/internal/obs.SearchStats",
	"lbkeogh/internal/obs.Histogram",
	"lbkeogh/internal/obs.Counter",
}

// NilSink returns the nilsink analyzer for the given "pkgpath.Type" names:
// every exported method with a pointer receiver on one of these types must
// begin with the nil-receiver guard, in one of the two idiomatic forms
//
//	func (s *T) M() { if s == nil { return } ... }
//	func (s *T) M() { if s != nil { ... } }
//
// so that an uninstrumented (nil-sink) call is a guaranteed no-op rather
// than a panic.
func NilSink(typeNames ...string) *Analyzer {
	if len(typeNames) == 0 {
		typeNames = DefaultNilSinkTypes
	}
	targets := map[string]bool{}
	for _, n := range typeNames {
		targets[n] = true
	}
	a := &Analyzer{
		Name: "nilsink",
		Doc: "check that exported pointer-receiver methods on nil-sink types (stats/obs accounting records) " +
			"begin with a nil-receiver guard, keeping the uninstrumented path a no-op",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
					continue
				}
				recv := fd.Recv.List[0]
				t := pass.TypesInfo.TypeOf(recv.Type)
				if t == nil {
					continue
				}
				if _, isPtr := t.(*types.Pointer); !isPtr {
					continue // value receivers cannot be nil-guarded
				}
				key := namedTypeKey(t)
				if !targets[key] {
					continue
				}
				typeName := key[strings.LastIndexByte(key, '.')+1:]
				if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
					pass.Reportf(fd.Pos(),
						"exported method (*%s).%s has an unnamed receiver and so cannot nil-guard it; name the receiver and guard for nil",
						typeName, fd.Name.Name)
					continue
				}
				if fd.Body == nil || hasNilGuard(fd.Body, recv.Names[0].Name, pass) {
					continue
				}
				pass.Reportf(fd.Pos(),
					"exported method (*%s).%s must begin with a nil-receiver guard (`if %s == nil { return ... }`); a nil %s is the documented no-op sink",
					typeName, fd.Name.Name, recv.Names[0].Name, typeName)
			}
		}
	}
	return a
}

// hasNilGuard accepts the two guard shapes used throughout the repository:
// a leading `if recv == nil { ...; return }`, or a body that consists of a
// single `if recv != nil { ... }` wrapping all the work.
func hasNilGuard(body *ast.BlockStmt, recvName string, pass *Pass) bool {
	if len(body.List) == 0 {
		return true // empty method body is trivially nil-safe
	}
	first, ok := body.List[0].(*ast.IfStmt)
	if !ok || first.Init != nil {
		return false
	}
	cmp, ok := nilComparison(first.Cond, recvName, pass)
	if !ok {
		return false
	}
	switch cmp {
	case "==":
		// Guard body must leave the method: its last statement is a return.
		if len(first.Body.List) == 0 {
			return false
		}
		_, ret := first.Body.List[len(first.Body.List)-1].(*ast.ReturnStmt)
		return ret
	case "!=":
		// The positive guard must wrap the entire method.
		return len(body.List) == 1 && first.Else == nil
	}
	return false
}

// nilComparison matches `recv == nil` / `recv != nil` (either operand
// order) and returns the operator.
func nilComparison(cond ast.Expr, recvName string, pass *Pass) (string, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return "", false
	}
	op := be.Op.String()
	if op != "==" && op != "!=" {
		return "", false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == recvName
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		_, isNilConst := pass.TypesInfo.Uses[id].(*types.Nil)
		return isNilConst
	}
	if (isRecv(be.X) && isNil(be.Y)) || (isRecv(be.Y) && isNil(be.X)) {
		return op, true
	}
	return "", false
}
