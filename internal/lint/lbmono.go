package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LowerBoundDirective marks a function as an admissible lower bound: for
// every input it returns a value ≤ the true distance its cascade guards
// (LB_Keogh ≤ DTW, the FFT magnitude bound ≤ ED, the PAA bound ≤ LB_Keogh —
// Keogh et al., VLDB 2006; Lemire, arXiv:0807.1734). The lbmono analyzer
// restricts what annotated functions may compose, so the exactness guarantee
// survives refactors of the cascade.
const LowerBoundDirective = "//lbkeogh:lowerbound"

// lbMonoAllowedPkgs are module packages whose float-returning helpers are
// admissibility-neutral: instrumentation, cancellation and summary
// statistics never feed the bound value itself.
var lbMonoAllowedPkgs = []string{
	"lbkeogh/internal/stats",
	"lbkeogh/internal/obs",
	"lbkeogh/internal/cancel",
}

// LBMono returns the lbmono analyzer. Functions annotated
// //lbkeogh:lowerbound may only compose monotone-safe operations:
//
//   - a float-returning call to another module function must target another
//     annotated lower bound (taking the max of two admissible lower bounds
//     is again admissible; mixing in an arbitrary value is not);
//   - max(...) / math.Max(...) arguments that are calls must resolve to
//     annotated lower bounds — max with an upper bound or any other
//     non-bound quantity silently breaks admissibility while staying
//     numerically plausible;
//   - calling anything named Upper*/UB*/*UpperBound* inside a lower bound is
//     flagged as contamination outright (an intentional inversion — e.g. an
//     LCSS match-count upper bound inverting to a distance lower bound —
//     must carry a //lint:ignore with its admissibility argument);
//   - an exported annotated function calling math.Sqrt must also carry
//     //lbkeogh:rootspace, so root-space results at API boundaries stay a
//     documented contract (squared-space pruning is the default);
//   - an annotated function must return a float: the annotation on anything
//     else is a mistake.
//
// The annotation table is built module-wide in a Prepare pass, so a wedge
// bound calling envelope.LBKeogh sees the callee's annotation across the
// package boundary.
func LBMono() *Analyzer {
	a := &Analyzer{
		Name: "lbmono",
		Doc: "functions annotated //lbkeogh:lowerbound may only compose annotated lower bounds " +
			"and monotone-safe operations; flag max-with-non-bound contamination, upper-bound " +
			"calls, unannotated float-returning callees, and undeclared root-space boundaries",
	}
	annotated := map[string]bool{}
	a.Prepare = func(pkgs []*Package) {
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || !funcHasDirective(fd.Doc, LowerBoundDirective) {
						continue
					}
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						annotated[fn.FullName()] = true
					}
				}
			}
		}
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !funcHasDirective(fd.Doc, LowerBoundDirective) {
					continue
				}
				checkLowerBound(pass, fd, annotated)
			}
		}
	}
	return a
}

func checkLowerBound(pass *Pass, fd *ast.FuncDecl, annotated map[string]bool) {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	if !returnsFloat(fn) {
		pass.Reportf(fd.Name.Pos(),
			"%s is annotated %s but returns no float; the annotation marks admissible distance lower bounds only",
			fd.Name.Name, LowerBoundDirective)
		return
	}
	rootspace := funcHasDirective(fd.Doc, RootspaceDirective)
	// max arguments get the stricter per-argument check; remember them so the
	// general callee walk does not double-report.
	insideMax := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isMaxCall(pass, call) {
			for _, arg := range call.Args {
				argCall, ok := unparen(arg).(*ast.CallExpr)
				if !ok {
					continue // literals and variables are the caller's claim
				}
				insideMax[argCall] = true
				if callee := calledFunc(pass, argCall); callee != nil && !isAdmissibleCallee(callee, annotated) {
					pass.Reportf(argCall.Pos(),
						"max() over %s, which is not an annotated lower bound; max is only admissible over admissible lower bounds",
						calleeLabel(callee))
				}
			}
			return true
		}
		callee := calledFunc(pass, call)
		if callee == nil || insideMax[call] {
			return true
		}
		if isUpperBoundName(callee.Name()) && !annotated[callee.FullName()] {
			pass.Reportf(call.Pos(),
				"lower bound %s calls %s, which names an upper bound; if the inversion is admissible, document it with a //lint:ignore lbmono reason",
				fd.Name.Name, calleeLabel(callee))
			return true
		}
		if callee.Pkg() != nil && callee.Pkg().Path() == "math" && callee.Name() == "Sqrt" {
			if fd.Name.IsExported() && !rootspace {
				pass.Reportf(call.Pos(),
					"exported lower bound %s calls math.Sqrt without %s; root-space results at an API boundary must be a documented contract",
					fd.Name.Name, RootspaceDirective)
			}
			return true
		}
		if !inModuleScope(pass, callee) || !returnsFloat(callee) {
			return true
		}
		if !isAdmissibleCallee(callee, annotated) {
			pass.Reportf(call.Pos(),
				"lower bound %s calls unannotated %s; a cascade stays admissible only through annotated lower bounds (annotate the callee %s, or //lint:ignore lbmono with the admissibility argument)",
				fd.Name.Name, calleeLabel(callee), LowerBoundDirective)
		}
		return true
	})
}

// calledFunc resolves the function or method a call targets, or nil for
// builtins, conversions and indirect calls through variables.
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isMaxCall matches the builtin max and math.Max.
func isMaxCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin)
		return ok && b.Name() == "max"
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return ok && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Max"
	}
	return false
}

// isAdmissibleCallee reports whether a call target is safe inside a lower
// bound: annotated, an admissibility-neutral helper package, or an interface
// method whose name declares it a lower bound (the concrete implementations
// carry their own annotations and are checked where they are defined).
func isAdmissibleCallee(fn *types.Func, annotated map[string]bool) bool {
	if annotated[fn.FullName()] {
		return true
	}
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		for _, allowed := range lbMonoAllowedPkgs {
			if path == allowed || strings.HasPrefix(path, allowed+"/") {
				return true
			}
		}
	}
	if isInterfaceMethod(fn) && isLowerBoundName(fn.Name()) {
		return true
	}
	return false
}

// calleeLabel renders a call target for diagnostics: pkgpath.Func for
// functions, (pkgpath.Type).Method for methods.
func calleeLabel(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.FullName()
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// inModuleScope reports whether the callee lives in this module (same
// package or an lbkeogh path): only module code can carry the annotation, so
// only module callees are held to it.
func inModuleScope(pass *Pass, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg() == pass.Pkg {
		return true
	}
	path := fn.Pkg().Path()
	return path == "lbkeogh" || strings.HasPrefix(path, "lbkeogh/")
}

func isUpperBoundName(name string) bool {
	return strings.HasPrefix(name, "Upper") ||
		strings.HasPrefix(name, "upperBound") ||
		strings.HasPrefix(name, "UB") ||
		strings.Contains(name, "UpperBound")
}

// returnsFloat reports whether any result of fn is (or is named as) a float.
func returnsFloat(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if b, ok := sig.Results().At(i).Type().Underlying().(*types.Basic); ok {
			if b.Info()&types.IsFloat != 0 {
				return true
			}
		}
	}
	return false
}
