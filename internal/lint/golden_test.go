package lint

// Golden tests in the style of golang.org/x/tools/go/analysis/analysistest:
// each fixture package under testdata/src/<analyzer>/ contains deliberately
// broken code annotated with trailing `// want "regexp"` comments, plus clean
// counterparts that must stay silent. A diagnostic is expected on exactly the
// lines carrying a want comment; any extra or missing finding fails the test.
// This is the acceptance check that breaking an invariant makes lbkeoghvet
// fail.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	sharedRoot string
	sharedLdr  *Loader
	loaderErr  error
)

// moduleLoader builds one Loader over the whole module, shared across tests:
// the expensive part is the single `go list -export -test -deps` run, and its
// export data serves both the testdata fixtures and the self-check.
func moduleLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		sharedRoot, loaderErr = FindModuleRoot(".")
		if loaderErr != nil {
			return
		}
		sharedLdr, loaderErr = NewLoader(sharedRoot, "./...")
	})
	if loaderErr != nil {
		t.Fatalf("loading module: %v", loaderErr)
	}
	return sharedLdr
}

// loadFixture type-checks testdata/src/<name> as one package under the given
// import path. Fixtures may import real repository packages (e.g.
// lbkeogh/internal/stats); the shared loader's export data resolves them.
func loadFixture(t *testing.T, name, importPath string) *Package {
	t.Helper()
	l := moduleLoader(t)
	dir := filepath.Join(sharedRoot, "internal", "lint", "testdata", "src", name)
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wantString matches one Go string literal (quoted or backquoted) inside a
// `// want` comment.
var wantString = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectations collects the want regexps of a fixture, keyed by file and
// line. A want comment constrains the line it appears on.
func expectations(t *testing.T, pkg *Package) map[string]map[int][]*regexp.Regexp {
	t.Helper()
	want := map[string]map[int][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := cutWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lits := wantString.FindAllString(rest, -1)
				if len(lits) == 0 {
					t.Fatalf("%s:%d: want comment without a pattern", pos.Filename, pos.Line)
				}
				for _, lit := range lits {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					if want[pos.Filename] == nil {
						want[pos.Filename] = map[int][]*regexp.Regexp{}
					}
					want[pos.Filename][pos.Line] = append(want[pos.Filename][pos.Line], re)
				}
			}
		}
	}
	return want
}

func cutWant(comment string) (string, bool) {
	const marker = "// want "
	for i := 0; i+len(marker) <= len(comment); i++ {
		if comment[i:i+len(marker)] == marker {
			return comment[i+len(marker):], true
		}
	}
	return "", false
}

// runGolden runs the analyzers over the fixture and reconciles the findings
// against the want comments, both directions.
func runGolden(t *testing.T, pkg *Package, analyzers ...*Analyzer) {
	t.Helper()
	diags := Run([]*Package{pkg}, analyzers)
	want := expectations(t, pkg)
	for _, d := range diags {
		res := want[d.Pos.Filename][d.Pos.Line]
		matched := -1
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		want[d.Pos.Filename][d.Pos.Line] = append(res[:matched], res[matched+1:]...)
	}
	for file, lines := range want {
		for line, res := range lines {
			for _, re := range res {
				t.Errorf("%s:%d: no diagnostic matched %q", file, line, re)
			}
		}
	}
}

func TestTallyEscapeGolden(t *testing.T) {
	runGolden(t, loadFixture(t, "tallyescape", "tallyescape_fixture"), TallyEscape())
}

func TestNilSinkGolden(t *testing.T) {
	// The fixture declares its own sink type; point the analyzer at it
	// instead of the production DefaultNilSinkTypes.
	runGolden(t, loadFixture(t, "nilsink", "nilsink_fixture"), NilSink("nilsink_fixture.Sink"))
}

func TestFloatEqGolden(t *testing.T) {
	// Run without the production package filter: the fixture stands in for
	// an admissibility-critical package.
	runGolden(t, loadFixture(t, "floateq", "floateq_fixture"), FloatEq())
}

func TestHotAllocGolden(t *testing.T) {
	runGolden(t, loadFixture(t, "hotalloc", "hotalloc_fixture"), HotAlloc())
}

func TestLBGuardGolden(t *testing.T) {
	runGolden(t, loadFixture(t, "lbguard", "lbguard_fixture"), LBGuard())
}

func TestCtxCheckGolden(t *testing.T) {
	runGolden(t, loadFixture(t, "ctxcheck", "ctxcheck_fixture"), CtxCheck())
}

func TestMetricNamesGolden(t *testing.T) {
	runGolden(t, loadFixture(t, "metricnames", "metricnames_fixture"), MetricNames())
}

func TestAtomicMixGolden(t *testing.T) {
	runGolden(t, loadFixture(t, "atomicmix", "atomicmix_fixture"), AtomicMix())
}

func TestLockOrderGolden(t *testing.T) {
	runGolden(t, loadFixture(t, "lockorder", "lockorder_fixture"), LockOrder())
}

func TestLBMonoGolden(t *testing.T) {
	runGolden(t, loadFixture(t, "lbmono", "lbmono_fixture"), LBMono())
}

// TestDirectiveGrammar checks the //lint:ignore grammar end to end on the
// directive fixture: a well-formed directive suppresses its finding, while a
// directive missing its reason or naming an unknown analyzer is itself
// reported (as the pseudo-analyzer "directive") and suppresses nothing.
func TestDirectiveGrammar(t *testing.T) {
	pkg := loadFixture(t, "directive", "directive_fixture")
	diags := Run([]*Package{pkg}, []*Analyzer{FloatEq()})
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["directive"] != 2 {
		t.Errorf("malformed-directive findings = %d, want 2; diags:\n%s", byAnalyzer["directive"], format(diags))
	}
	// The two float comparisons under malformed directives stay flagged; the
	// one under the valid directive is suppressed.
	if byAnalyzer["floateq"] != 2 {
		t.Errorf("floateq findings = %d, want 2 (valid directive must suppress exactly one); diags:\n%s", byAnalyzer["floateq"], format(diags))
	}
}

func format(diags []Diagnostic) string {
	out := ""
	for _, d := range diags {
		out += "\t" + d.String() + "\n"
	}
	return out
}
