// Package lint implements lbkeoghvet, this repository's custom static
// analysis suite. It enforces, at vet time, the hand-maintained conventions
// the paper's guarantees rest on: the exactness of the LB_Keogh bounds
// (Propositions 1–2 — no false dismissals) and the implementation-bias-free
// num_steps accounting (Section 5.3).
//
// The suite is a stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis shape (this module deliberately has no
// third-party dependencies): packages are resolved and compiled through
// `go list -export -test -deps`, type-checked with go/types against the
// resulting export data, and each Analyzer walks the typed syntax trees.
// Run it with `make lint` or directly:
//
//	go run ./cmd/lbkeoghvet ./...
//
// # Analyzers
//
//	tallyescape  A *stats.Tally is single-goroutine scratch. It must not be
//	             passed to or captured by a go statement, and must not be
//	             stored in a struct field. Cross-goroutine accounting uses
//	             the atomic *stats.Counter, flushed once per comparison.
//	nilsink      Exported pointer-receiver methods on the stats/obs sink
//	             types (stats.Counter, stats.Tally, obs.SearchStats,
//	             obs.Histogram, obs.Counter) must begin with a nil-receiver
//	             guard: a nil sink is the documented uninstrumented mode.
//	floateq      ==/!= on floating-point operands is forbidden in
//	             internal/dist, internal/envelope and internal/wedge
//	             (tests included). Use epsilon helpers, or math.IsInf and
//	             math.IsNaN for sentinels.
//	hotalloc     Functions annotated //lbkeogh:hotpath must not contain
//	             syntactic allocation sites: make, new, append, slice/map
//	             composite literals, &-literals, or closures.
//	lbguard      Functions named LB*, LowerBound* or lowerBound* must not
//	             call math.Sqrt, keeping pruning comparisons in squared
//	             space, unless annotated //lbkeogh:rootspace.
//	ctxcheck     Exported functions that accept a context.Context take it
//	             as the first parameter, and //lbkeogh:hotpath loops never
//	             call ctx.Err() on every iteration — cancellation polls are
//	             amortized behind an integer checkpoint counter (the
//	             internal/cancel.Checker shape).
//	metricnames  Metric names registered through obs.Registry or written
//	             through ops.Write* are snake_case, namespaced, and keep
//	             counter/unit suffixes last.
//	atomicmix    A struct field accessed through sync/atomic anywhere must
//	             be accessed through sync/atomic everywhere (typed atomics
//	             make the mistake unrepresentable); values containing sync
//	             locks are never copied (value receivers, by-value
//	             params/results, plain assignments); WaitGroup.Add never
//	             runs inside the goroutine it gates.
//	lockorder    Builds a per-package lock-acquisition graph over
//	             sync.Mutex/RWMutex fields: inconsistent acquisition order
//	             between two locks (a deadlock-shaped cycle), re-entrant
//	             acquisition of a lock already held (including through a
//	             same-package callee), and channel sends or time.Sleep
//	             executed while a lock is held.
//	lbmono       Functions annotated //lbkeogh:lowerbound may only compose
//	             monotone-admissible operations: other annotated lower
//	             bounds under max(), no upper-bound-named callees, no
//	             unannotated float-returning callees, and math.Sqrt at an
//	             exported boundary only together with //lbkeogh:rootspace.
//	bcebaseline  Not an AST analyzer: cmd/lbkeoghvet drives the compiler
//	             with -gcflags=-d=ssa/check_bce over every package that
//	             contains a //lbkeogh:hotpath function and diffs the
//	             surviving bounds checks against the committed baseline
//	             (internal/lint/testdata/bce_baseline.txt). Any NEW check
//	             in a hot-path function fails; regenerate deliberately with
//	             `make bce-baseline`.
//
// # The //lbkeogh:hotpath convention
//
// A function is annotated hotpath when it executes once per rotation, per
// candidate, or per DP cell inside the query loop — the distance kernels
// (dist.Euclidean, dist.EuclideanEA, dtwBanded, dist.LCSS), the envelope
// lower bounds (envelope.LBKeogh, envelope.LCSSUpperBound), the envelope
// builders (envelope.New, Merge, ExpandDTW, slidingMax) and the H-Merge
// traversal (wedge.(*Tree).SearchObs). The annotation is a standalone
// directive line in the function's doc comment:
//
//	// dtwBanded computes ...
//	//
//	//lbkeogh:hotpath
//	func dtwBanded(...)
//
// hotalloc then keeps those bodies allocation-free. Where an allocation is
// intentional — a result buffer handed to the caller, per-search scratch
// amortized over a whole traversal — the site carries a suppression
// directive with a reason (see below), which doubles as documentation.
//
// # The //lbkeogh:rootspace convention
//
// Lower bounds accumulate squared discrepancies and compare against r² so
// that early abandoning never pays a square root. The few exported bounds
// that return distances in root units for API symmetry (envelope.LBKeogh,
// paa.LowerBound, fourier.LowerBoundED) declare that boundary with a
// //lbkeogh:rootspace directive line in their doc comment; lbguard flags
// any other math.Sqrt inside a lower-bound function.
//
// # The //lbkeogh:lowerbound convention
//
// A function is annotated lowerbound when its return value must lower-bound
// an exact distance for every series a wedge encloses — the no-false-dismissal
// contract of Propositions 1–3. The annotation declares membership in the
// admissible family; lbmono then checks, across packages, that annotated
// functions only compose operations that preserve admissibility: the max of
// admissible bounds is admissible, the min is admissible for unions, but one
// upper bound or one unvetted estimate mixed into the cascade silently breaks
// exactness (false dismissals, which no test that checks only *found* matches
// will catch). Inverting an upper bound into a lower bound — the paper's
// LCSS similarity-to-distance flip — is legal but must be audited and
// carries a //lint:ignore lbmono suppression explaining the inversion.
//
// # Suppressing a finding
//
// Following the staticcheck convention, a finding is suppressed in place
// with a directive naming the analyzers and a mandatory reason:
//
//	out := make([]float64, n) //lint:ignore hotalloc result buffer, one per build
//
// A standalone //lint:ignore line suppresses the line below it; the
// file-wide form is //lint:file-ignore. The analyzer list is
// comma-separated, with * matching every analyzer. Directives with a
// missing reason or an unknown analyzer name are themselves reported.
package lint
