package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathDirective marks a function as a search hot path: it runs once per
// rotation (or per DP cell) inside the query loop, so per-call heap traffic
// is a measurable regression. See internal/lint/doc.go for the annotation
// convention.
const HotpathDirective = "//lbkeogh:hotpath"

// HotAlloc returns the hotalloc analyzer: inside functions annotated with
// //lbkeogh:hotpath it flags the syntactic allocation sites — make, new,
// append (which may grow), slice/map composite literals, &-composite
// literals, and function literals (which may escape, forcing their captures
// to the heap). Intentional allocations (e.g. a result buffer allocated once
// per build) carry a //lint:ignore hotalloc directive stating why.
func HotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc: "flag heap-allocation sites (make, new, append, slice/map/& composite literals, closures) " +
			"inside functions annotated //lbkeogh:hotpath",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !funcHasDirective(fd.Doc, HotpathDirective) {
					continue
				}
				checkHotFunc(pass, fd)
			}
		}
	}
	return a
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	// Composite literals reached through a unary & are reported once, at the
	// &, so remember them to avoid double reports.
	addrTaken := map[*ast.CompositeLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				addrTaken[cl] = true
				pass.Reportf(n.Pos(), "hot path %s takes the address of a composite literal, which escapes to the heap", fd.Name.Name)
			}
		case *ast.CompositeLit:
			if addrTaken[n] {
				return true
			}
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "hot path %s allocates a %s literal per call", fd.Name.Name, kindName(t))
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s defines a closure, which may escape and heap-allocate its captures", fd.Name.Name)
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "make":
				pass.Reportf(n.Pos(), "hot path %s calls make per invocation; preallocate or pool the buffer", fd.Name.Name)
			case "new":
				pass.Reportf(n.Pos(), "hot path %s calls new per invocation; preallocate or pool the value", fd.Name.Name)
			case "append":
				pass.Reportf(n.Pos(), "hot path %s appends, which may grow and reallocate; size the buffer up front", fd.Name.Name)
			}
		}
		return true
	})
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
