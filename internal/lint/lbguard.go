package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RootspaceDirective marks a lower-bound function as a documented API
// boundary that intentionally converts its result from squared space to
// root ("distance") units on return. See internal/lint/doc.go.
const RootspaceDirective = "//lbkeogh:rootspace"

// LBGuard returns the lbguard analyzer: functions named LB*, LowerBound* or
// lowerBound* must not call math.Sqrt — pruning comparisons stay in squared
// space, where the accumulate-and-compare loop is exact and cheap — unless
// the function's doc comment carries the //lbkeogh:rootspace directive
// declaring it a documented API boundary that returns root-space distances.
func LBGuard() *Analyzer {
	a := &Analyzer{
		Name: "lbguard",
		Doc: "forbid math.Sqrt inside LB*/lowerBound* functions unless annotated //lbkeogh:rootspace; " +
			"pruning comparisons belong in squared space",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isLowerBoundName(fd.Name.Name) {
					continue
				}
				if funcHasDirective(fd.Doc, RootspaceDirective) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if n, ok := n.(*ast.FuncLit); ok && n != nil {
						return true // nested closures inherit the check
					}
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
					if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "math" || obj.Name() != "Sqrt" {
						return true
					}
					pass.Reportf(sel.Pos(),
						"lower bound %s calls math.Sqrt; keep pruning comparisons in squared space, or annotate the function %s if it is a documented root-space API boundary",
						fd.Name.Name, RootspaceDirective)
					return true
				})
			}
		}
	}
	return a
}

func isLowerBoundName(name string) bool {
	return strings.HasPrefix(name, "LB") ||
		strings.HasPrefix(name, "LowerBound") ||
		strings.HasPrefix(name, "lowerBound")
}
