package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSuppressions runs newSuppressions over one synthetic source file.
func parseSuppressions(t *testing.T, src string, known ...string) *suppressions {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing synthetic source: %v", err)
	}
	set := map[string]bool{}
	for _, k := range known {
		set[k] = true
	}
	return newSuppressions(fset, []*ast.File{f}, set)
}

// TestDirectiveEdgeCases is the table-driven grammar check for //lint:ignore
// and //lint:file-ignore: where a directive's suppression window lands,
// which malformed shapes are rejected, and how file-ignore scopes.
func TestDirectiveEdgeCases(t *testing.T) {
	const src = `package p

func a() {
	_ = 1 //lint:ignore floateq trailing directive, same line
	_ = 2
	//lint:ignore floateq standalone directive, next line
	_ = 3
	_ = 4
	//lint:ignore floateq,hotalloc multiple analyzers listed
	_ = 5
	//lint:ignore * wildcard suppresses every analyzer
	_ = 6
	//lint:ignore floateq
	_ = 7
	//lint:ignore unknownalyzer some reason
	_ = 8
	//lint:ignore
	_ = 9
}
`
	sup := parseSuppressions(t, src, "floateq", "hotalloc")

	diag := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "fixture.go", Line: line}, Analyzer: analyzer}
	}
	cases := []struct {
		name       string
		d          Diagnostic
		suppressed bool
	}{
		{"trailing directive suppresses its own line", diag(4, "floateq"), true},
		{"trailing directive also covers the next line", diag(5, "floateq"), true},
		{"standalone directive suppresses the line below", diag(7, "floateq"), true},
		{"suppression window is two lines, not three", diag(8, "floateq"), false},
		{"listed analyzer suppressed (first of two)", diag(10, "floateq"), true},
		{"listed analyzer suppressed (second of two)", diag(10, "hotalloc"), true},
		{"unlisted analyzer not suppressed", diag(10, "lbguard"), false},
		{"wildcard suppresses any analyzer", diag(12, "metricnames"), true},
		{"missing reason suppresses nothing", diag(14, "floateq"), false},
		{"unknown analyzer suppresses nothing", diag(16, "unknownalyzer"), false},
		{"bare directive suppresses nothing", diag(18, "floateq"), false},
	}
	for _, tc := range cases {
		if got := sup.suppressed(tc.d); got != tc.suppressed {
			t.Errorf("%s: suppressed(%s line %d) = %v, want %v", tc.name, tc.d.Analyzer, tc.d.Pos.Line, got, tc.suppressed)
		}
	}

	// The three malformed shapes must each be reported: missing reason,
	// unknown analyzer, missing everything.
	wantMalformed := []string{
		"need an analyzer list and a reason",
		`unknown analyzer "unknownalyzer"`,
		"missing analyzer list and reason",
	}
	if len(sup.malformed) != len(wantMalformed) {
		t.Fatalf("malformed = %d, want %d:\n%s", len(sup.malformed), len(wantMalformed), format(sup.malformed))
	}
	for i, want := range wantMalformed {
		if !strings.Contains(sup.malformed[i].Message, want) {
			t.Errorf("malformed[%d] = %q, want substring %q", i, sup.malformed[i].Message, want)
		}
	}
}

// TestFileIgnoreScoping checks that //lint:file-ignore covers every line of
// its own file for the listed analyzer only — and no other file.
func TestFileIgnoreScoping(t *testing.T) {
	const src = `package p

//lint:file-ignore floateq generated comparisons audited in review

func a() {
	_ = 1
}
`
	sup := parseSuppressions(t, src, "floateq", "hotalloc")
	in := func(line int, analyzer, file string) bool {
		return sup.suppressed(Diagnostic{Pos: token.Position{Filename: file, Line: line}, Analyzer: analyzer})
	}
	if !in(6, "floateq", "fixture.go") {
		t.Error("file-ignore did not suppress the listed analyzer in its own file")
	}
	if !in(1, "floateq", "fixture.go") {
		t.Error("file-ignore must cover lines above the directive too")
	}
	if in(6, "hotalloc", "fixture.go") {
		t.Error("file-ignore leaked to an unlisted analyzer")
	}
	if in(6, "floateq", "other.go") {
		t.Error("file-ignore leaked to another file")
	}
}
