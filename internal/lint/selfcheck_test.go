package lint

import "testing"

// TestRepositoryIsClean runs the production analyzer suite over the whole
// module — exactly what `make lint` / cmd/lbkeoghvet do — and requires zero
// findings. This puts lint cleanliness inside the ordinary test gate: a
// change that reintroduces a Tally escape, drops a nil guard, or allocates in
// a hot path fails `go test ./...`, not just CI's lint step.
func TestRepositoryIsClean(t *testing.T) {
	l := moduleLoader(t)
	pkgs, err := l.Packages()
	if err != nil {
		t.Fatalf("type-checking module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is not seeing the module", len(pkgs))
	}
	diags := Run(pkgs, DefaultAnalyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
