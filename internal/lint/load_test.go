package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// brokenModule lays out a throwaway module for loader failure tests.
func brokenModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module brokentest\n\ngo 1.24\n"
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoaderHardFailsOnBrokenPackage pins the load-error contract behind
// lbkeoghvet's exit 2: a package that cannot be listed or compiled must fail
// NewLoader with the failing package named — never degrade into analyzing a
// partial package set.
func TestLoaderHardFailsOnBrokenPackage(t *testing.T) {
	cases := []struct {
		name     string
		files    map[string]string
		wantPkg  string
		wantText string
	}{
		{
			name: "type error in package",
			files: map[string]string{
				"bad/bad.go": "package bad\n\nfunc f() int { return \"not an int\" }\n",
			},
			wantPkg: "brokentest/bad",
		},
		{
			name: "missing import",
			files: map[string]string{
				"needs/needs.go": "package needs\n\nimport \"brokentest/nonexistent\"\n\nvar _ = nonexistent.X\n",
			},
			wantPkg: "brokentest/needs",
		},
		{
			name: "type error in test file",
			files: map[string]string{
				"ok/ok.go":      "package ok\n\nfunc F() int { return 1 }\n",
				"ok/ok_test.go": "package ok\n\nimport \"testing\"\n\nfunc TestF(t *testing.T) { var x int = F(1) }\n",
			},
			wantPkg: "brokentest/ok",
		},
		{
			name: "two broken packages both named",
			files: map[string]string{
				"bad1/a.go": "package bad1\n\nfunc f() int { return \"\" }\n",
				"bad2/b.go": "package bad2\n\nfunc g() string { return 0 }\n",
			},
			wantPkg:  "brokentest/bad1",
			wantText: "brokentest/bad2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := brokenModule(t, tc.files)
			l, err := NewLoader(dir, "./...")
			if err == nil {
				// Some failures (in-package test type errors) surface at the
				// type-check stage rather than go list; both paths must be
				// hard errors.
				_, err = l.Packages()
			}
			if err == nil {
				t.Fatal("broken module loaded without error")
			}
			if !strings.Contains(err.Error(), tc.wantPkg) {
				t.Errorf("error does not name %s:\n%v", tc.wantPkg, err)
			}
			if tc.wantText != "" && !strings.Contains(err.Error(), tc.wantText) {
				t.Errorf("error does not name %s:\n%v", tc.wantText, err)
			}
		})
	}
}

// TestLoaderCleanModuleLoads is the control: a healthy throwaway module
// loads and yields its packages.
func TestLoaderCleanModuleLoads(t *testing.T) {
	dir := brokenModule(t, map[string]string{
		"good/good.go": "package good\n\nfunc F() int { return 1 }\n",
	})
	l, err := NewLoader(dir, "./...")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Packages()
	if err != nil {
		t.Fatalf("Packages: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "brokentest/good" {
		t.Fatalf("pkgs = %v, want exactly brokentest/good", pkgs)
	}
}
