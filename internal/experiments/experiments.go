// Package experiments implements the paper's evaluation harness: one
// function per figure/table of Section 5, shared by cmd/benchrun, the
// root-level benchmarks and the regression tests.
//
// Efficiency is measured exactly as in the paper (Section 5.3): the number
// of real-value subtractions ("num_steps") per comparison of two shapes,
// normalized by the brute-force cost. The brute-force denominator is
// analytic — n² steps per Euclidean comparison (n rotations × n steps) and
// n·cells(n,R) for DTW — because brute force performs exactly that many
// steps by construction; the competing strategies are measured by running
// them. The wedge strategy's O(n²) set-up cost and the dynamic-K probing
// overhead are charged to it, as the paper does.
package experiments

import (
	"fmt"
	"math"

	"lbkeogh/internal/classify"
	"lbkeogh/internal/core"
	"lbkeogh/internal/index"
	"lbkeogh/internal/lightcurve"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/synth"
	"lbkeogh/internal/wedge"
)

// Workload names the dataset generators of Section 5.3.
type Workload string

const (
	// ProjectilePoints is the homogeneous dataset (Figures 19–20; the paper
	// uses 16,000 objects of length 251).
	ProjectilePoints Workload = "projectile-points"
	// Heterogeneous is the mixed dataset (Figure 21; 5,844 × 1,024).
	Heterogeneous Workload = "heterogeneous"
	// LightCurves is the star-light-curve dataset (Figures 22–23; 954).
	LightCurves Workload = "light-curves"
)

// LightCurveNoise is the photometric noise level of the light-curve
// workload. High noise makes every rotation of a curve look alike, which
// inflates wedge areas and flattens the wedge strategy's advantage — the
// paper's curves are smooth, so the default models good photometry.
var LightCurveNoise = 0.05

// generate returns m+extra series of length n from the workload.
func generate(w Workload, seed int64, m, n int) ([][]float64, error) {
	switch w {
	case ProjectilePoints:
		return synth.ProjectilePoints(seed, m, n), nil
	case Heterogeneous:
		return synth.Heterogeneous(seed, m, n), nil
	case LightCurves:
		series, _ := lightcurve.Dataset(seed, m, n, LightCurveNoise)
		return series, nil
	default:
		return nil, fmt.Errorf("experiments: unknown workload %q", w)
	}
}

// dtwCells returns the exact number of DP cells a banded DTW of length n and
// radius R computes: sum over rows of the clamped band width.
func dtwCells(n, R int) int64 {
	if R < 0 || R > n-1 {
		R = n - 1
	}
	var cells int64
	for i := 0; i < n; i++ {
		lo, hi := i-R, i+R
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		cells += int64(hi - lo + 1)
	}
	return cells
}

// Curve is one strategy's efficiency curve: the steps-per-comparison ratio
// against brute force at each database size.
type Curve struct {
	Label string
	Sizes []int
	Ratio []float64
}

// EfficiencyConfig parametrizes Figures 19–23.
type EfficiencyConfig struct {
	Workload Workload
	// UseDTW selects the DTW variant of the figure (Figures 20/23); false
	// selects Euclidean (Figures 19/21-left/22).
	UseDTW bool
	// R is the Sakoe-Chiba radius for DTW figures (the paper learns ≈ a few
	// percent of n; Figure 20's baseline line uses R = 5).
	R int
	// Sizes are the database sizes m to sweep.
	Sizes []int
	// N is the series length.
	N int
	// Queries is the number of query repetitions to average (paper: 50).
	Queries int
	// Seed drives the data generator and query choice.
	Seed int64
}

// Efficiency reproduces one of the efficiency figures: the steps ratio of
// each strategy versus brute force, as a function of database size.
//
// Euclidean figures return curves: brute, fft, early-abandon, wedge
// (Figure 19/21-left/22). DTW figures return: brute (unconstrained),
// brute-R (banded, no abandoning), early-abandon, wedge (Figure 20/21-right/23).
func Efficiency(cfg EfficiencyConfig) ([]Curve, error) {
	if len(cfg.Sizes) == 0 || cfg.N < 8 || cfg.Queries < 1 {
		return nil, fmt.Errorf("experiments: bad config %+v", cfg)
	}
	maxM := 0
	for _, m := range cfg.Sizes {
		if m > maxM {
			maxM = m
		}
	}
	all, err := generate(cfg.Workload, cfg.Seed, maxM+cfg.Queries, cfg.N)
	if err != nil {
		return nil, err
	}
	queries := all[maxM : maxM+cfg.Queries]
	pool := all[:maxM]

	n := cfg.N
	var labels []string
	if cfg.UseDTW {
		labels = []string{"brute", "brute-R", "early-abandon", "wedge"}
	} else {
		labels = []string{"brute", "fft", "early-abandon", "wedge"}
	}
	curves := make([]Curve, len(labels))
	for i, l := range labels {
		curves[i] = Curve{Label: l, Sizes: cfg.Sizes, Ratio: make([]float64, len(cfg.Sizes))}
	}

	for si, m := range cfg.Sizes {
		db := pool[:m]
		// Analytic brute-force denominators.
		var brutePer float64
		if cfg.UseDTW {
			brutePer = float64(n) * float64(dtwCells(n, -1)) // all rotations × full matrix
		} else {
			brutePer = float64(n) * float64(n)
		}
		comparisons := float64(m) * float64(cfg.Queries)

		perStrategy := map[string]float64{"brute": brutePer * comparisons}
		if cfg.UseDTW {
			perStrategy["brute-R"] = float64(n) * float64(dtwCells(n, cfg.R)) * comparisons
		}

		measured := []struct {
			label    string
			strategy core.Strategy
		}{
			{"early-abandon", core.EarlyAbandon},
			{"wedge", core.Wedge},
		}
		if !cfg.UseDTW {
			measured = append(measured, struct {
				label    string
				strategy core.Strategy
			}{"fft", core.FFTFilter})
		}
		for _, ms := range measured {
			var cnt stats.Counter
			for _, q := range queries {
				var kern wedge.Kernel = wedge.ED{}
				if cfg.UseDTW {
					kern = wedge.DTW{R: cfg.R}
				}
				// The rotation set's O(n²) set-up cost is charged only to the
				// wedge strategy, as in the paper; baselines use the plain
				// rotation loop which needs no set-up.
				var setup stats.Counter
				rs := core.NewRotationSet(q, core.DefaultOptions(), &setup)
				if ms.strategy == core.Wedge {
					cnt.Add(setup.Steps())
				}
				s := core.NewSearcher(rs, kern, ms.strategy, core.SearcherConfig{})
				s.Scan(db, &cnt)
			}
			perStrategy[ms.label] = float64(cnt.Steps())
		}

		for i, l := range labels {
			curves[i].Ratio[si] = perStrategy[l] / (brutePer * comparisons)
		}
	}
	return curves, nil
}

// DiskConfig parametrizes Figure 24.
type DiskConfig struct {
	Workload Workload
	// Dims sweeps the retained dimensionalities (paper: 4, 8, 16, 32).
	Dims []int
	// M is the database size; N the series length.
	M, N int
	// R is the DTW band for the DTW curve.
	R int
	// Queries is the number of query repetitions to average.
	Queries int
	Seed    int64
}

// DiskCurve is the fraction of objects fetched from disk per dimensionality.
type DiskCurve struct {
	Label    string
	Dims     []int
	Fraction []float64
}

// DiskAccesses reproduces Figure 24: the fraction of database objects that
// must be retrieved from disk to answer an exact 1-NN query, for the
// Euclidean (VP-tree over Fourier magnitudes) and DTW (PAA envelope bounds)
// index paths, across dimensionalities.
func DiskAccesses(cfg DiskConfig) ([]DiskCurve, error) {
	if len(cfg.Dims) == 0 || cfg.M < 2 || cfg.Queries < 1 {
		return nil, fmt.Errorf("experiments: bad config %+v", cfg)
	}
	all, err := generate(cfg.Workload, cfg.Seed, cfg.M+cfg.Queries, cfg.N)
	if err != nil {
		return nil, err
	}
	db := all[:cfg.M]
	queries := all[cfg.M : cfg.M+cfg.Queries]

	ed := DiskCurve{Label: "wedge-euclidean", Dims: cfg.Dims, Fraction: make([]float64, len(cfg.Dims))}
	dtw := DiskCurve{Label: "wedge-dtw", Dims: cfg.Dims, Fraction: make([]float64, len(cfg.Dims))}
	for di, D := range cfg.Dims {
		ix := index.Build(db, D)
		var edReads, dtwReads int
		for _, q := range queries {
			rs := core.NewRotationSet(q, core.DefaultOptions(), nil)
			ix.Store().ResetReads()
			ix.SearchED(rs, nil)
			edReads += ix.Store().Reads()
			ix.Store().ResetReads()
			ix.SearchDTW(rs, cfg.R, 0, nil)
			dtwReads += ix.Store().Reads()
		}
		ed.Fraction[di] = float64(edReads) / float64(cfg.M*cfg.Queries)
		dtw.Fraction[di] = float64(dtwReads) / float64(cfg.M*cfg.Queries)
	}
	return []DiskCurve{ed, dtw}, nil
}

// ExponentConfig parametrizes the empirical-complexity experiment (the
// paper's O(n^1.06) claim, Sections 1 and 2.3).
type ExponentConfig struct {
	Lengths []int
	M       int
	Queries int
	Seed    int64
}

// ExponentResult reports the fitted power law steps ≈ a·n^b for the wedge
// strategy's per-comparison cost.
type ExponentResult struct {
	Lengths  []int
	Steps    []float64 // measured steps per comparison at each n
	Exponent float64
	Coeff    float64
}

// EmpiricalExponent measures the wedge strategy's per-comparison num_steps
// as a function of series length n on projectile-point data and fits a
// power law in log-log space.
func EmpiricalExponent(cfg ExponentConfig) (*ExponentResult, error) {
	if len(cfg.Lengths) < 2 || cfg.M < 2 || cfg.Queries < 1 {
		return nil, fmt.Errorf("experiments: bad config %+v", cfg)
	}
	res := &ExponentResult{Lengths: cfg.Lengths}
	for _, n := range cfg.Lengths {
		all := synth.ProjectilePoints(cfg.Seed, cfg.M+cfg.Queries, n)
		db := all[:cfg.M]
		var cnt stats.Counter
		for _, q := range all[cfg.M:] {
			rs := core.NewRotationSet(q, core.DefaultOptions(), &cnt)
			s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
			s.Scan(db, &cnt)
		}
		res.Steps = append(res.Steps, float64(cnt.Steps())/float64(cfg.M*cfg.Queries))
	}
	xs := make([]float64, len(cfg.Lengths))
	for i, n := range cfg.Lengths {
		xs[i] = float64(n)
	}
	exp, coeff, err := stats.PowerLawFit(xs, res.Steps)
	if err != nil {
		return nil, err
	}
	res.Exponent, res.Coeff = exp, coeff
	return res, nil
}

// Table8Row is one row of the classification table.
type Table8Row struct {
	Name         string
	Classes      int
	Instances    int
	PaperSize    int
	EuclideanErr float64
	DTWErr       float64
	BestR        int
	PaperEuclErr float64
	PaperDTWErr  float64
	PaperR       int
}

// paperTable8 records the paper's reported numbers for EXPERIMENTS.md
// comparison (Table 8).
var paperTable8 = map[string]struct {
	ed, dtw float64
	r       int
}{
	"Face":           {3.839, 3.170, 3},
	"Swedish Leaves": {13.33, 10.84, 2},
	"Chicken":        {19.96, 19.96, 1},
	"MixedBag":       {4.375, 4.375, 1},
	"OSU Leaves":     {33.71, 15.61, 2},
	"Diatoms":        {27.53, 27.53, 1},
	"Aircraft":       {0.95, 0.0, 3},
	"Fish":           {11.43, 9.71, 1},
	"Light-Curve":    {14.15, 11.43, 3},
	"Yoga":           {4.70, 4.85, 1},
}

// Table8 reproduces the classification experiment for the named dataset:
// leave-one-out 1-NN error under rotation-invariant Euclidean distance and
// under DTW with the warping radius learned on a held-out split.
func Table8(name string, sizeScale float64) (*Table8Row, error) {
	d, err := synth.Table8Dataset(name, sizeScale)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	edErr, _ := classify.LeaveOneOut(d.Series, d.Labels, wedge.ED{}, opts, nil)
	// Learn R on the training half only, then evaluate LOO on everything
	// with the chosen R (the paper's protocol).
	trS, trL, _, _ := classify.Split(d.Series, d.Labels)
	bestR, _ := classify.BestWarpingWindow(trS, trL, []int{1, 2, 3, 4}, opts, nil)
	dtwErr, _ := classify.LeaveOneOut(d.Series, d.Labels, wedge.DTW{R: bestR}, opts, nil)
	row := &Table8Row{
		Name:         name,
		Classes:      d.NumClasses,
		Instances:    len(d.Series),
		PaperSize:    synth.Table8PaperSize(name),
		EuclideanErr: 100 * edErr,
		DTWErr:       100 * dtwErr,
		BestR:        bestR,
	}
	if p, ok := paperTable8[name]; ok {
		row.PaperEuclErr, row.PaperDTWErr, row.PaperR = p.ed, p.dtw, p.r
	}
	return row, nil
}

// GeometricSizes returns the size sweep used on the figures' x axes: the
// paper's {32, 64, 125, 250, 500, 1000, 2000, 4000, 8000, 16000} clipped to
// maxM.
func GeometricSizes(maxM int) []int {
	base := []int{32, 64, 125, 250, 500, 1000, 2000, 4000, 8000, 16000}
	var out []int
	for _, m := range base {
		if m <= maxM {
			out = append(out, m)
		}
	}
	if len(out) == 0 {
		out = []int{maxM}
	}
	return out
}

// SpeedupAtLargestM summarizes a curve set: the wedge strategy's speedup
// factor over brute force at the largest database size.
func SpeedupAtLargestM(curves []Curve) float64 {
	for _, c := range curves {
		if c.Label == "wedge" && len(c.Ratio) > 0 {
			r := c.Ratio[len(c.Ratio)-1]
			if r <= 0 {
				return math.Inf(1)
			}
			return 1 / r
		}
	}
	return 0
}
