package experiments

import (
	"testing"
)

// TestLandmarkVsRotation reproduces the Section 5.1 Yoga finding in shape:
// exact rotation invariance must not be worse than landmark alignment (the
// paper found a 3x improvement).
func TestLandmarkVsRotation(t *testing.T) {
	res, err := LandmarkVsRotation("Yoga", 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.RotInvED > res.LandmarkED {
		t.Fatalf("rotation-invariant ED error %.2f%% worse than landmark %.2f%%",
			res.RotInvED, res.LandmarkED)
	}
	if res.RotInvDTW > res.LandmarkDTW {
		t.Fatalf("rotation-invariant DTW error %.2f%% worse than landmark %.2f%%",
			res.RotInvDTW, res.LandmarkDTW)
	}
	if _, err := LandmarkVsRotation("bogus", 1, 2); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

// TestImageSpaceBaselines reproduces the Section 5.1 MixedBag aside in
// shape: the 1-D signature under rotation-invariant ED is competitive with
// (not worse than) the quadratic-time image-space measures.
func TestImageSpaceBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("image-space rotation sweep is slow")
	}
	res, err := ImageSpaceBaselines(7, 5, 3, 48, 16, 96)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 15 {
		t.Fatalf("instances = %d", res.Instances)
	}
	for name, v := range map[string]float64{
		"chamfer": res.ChamferErr, "hausdorff": res.HausdorffErr, "signature": res.SignatureEuclideanErr,
	} {
		if v < 0 || v > 100 {
			t.Fatalf("%s error out of range: %v", name, v)
		}
	}
	if res.SignatureEuclideanErr > res.ChamferErr+20 {
		t.Fatalf("signature error %.2f%% far above Chamfer %.2f%% — pipeline broken?",
			res.SignatureEuclideanErr, res.ChamferErr)
	}
	if _, err := ImageSpaceBaselines(1, 1, 1, 32, 4, 32); err == nil {
		t.Fatal("want error for degenerate spec")
	}
}

// TestSamplingAblation: heavy down-sampling must not help (Sections 2.3/5.1).
func TestSamplingAblation(t *testing.T) {
	res, err := SamplingAblation("Fish", 0.6, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.SampledErr+1e-9 < res.FullErr {
		t.Fatalf("16-point sampling error %.2f%% below full-resolution %.2f%%",
			res.SampledErr, res.FullErr)
	}
	if _, err := SamplingAblation("Fish", 0.6, 2); err == nil {
		t.Fatal("want error for sampledLen < 4")
	}
	if _, err := SamplingAblation("Fish", 0.6, 4096); err == nil {
		t.Fatal("want error for sampledLen >= n")
	}
	if _, err := SamplingAblation("bogus", 1, 40); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

// TestOcclusionRobustness: on occlusion-heavy data LCSS — which simply skips
// the unmatchable region — must beat both ED and DTW. The paper makes
// exactly this argument (Figure 14): forcing DTW to warp across a missing
// part produces an "unnatural alignment", so DTW is NOT asserted to beat ED.
func TestOcclusionRobustness(t *testing.T) {
	res, err := OcclusionRobustness(11, 4, 8, 96, 0.5, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.LCSSErr > res.EDErr+1e-9 {
		t.Fatalf("LCSS error %.2f%% worse than ED %.2f%% on occluded data",
			res.LCSSErr, res.EDErr)
	}
	if res.LCSSErr > res.DTWErr+1e-9 {
		t.Fatalf("LCSS error %.2f%% worse than DTW %.2f%% on occluded data",
			res.LCSSErr, res.DTWErr)
	}
	if _, err := OcclusionRobustness(1, 1, 1, 64, 0.5, 3, 0.5); err == nil {
		t.Fatal("want error for degenerate spec")
	}
}

// TestProbeIntervalSensitivity: the dynamic-K controller's parameter barely
// matters (Section 5.3 reports < 4% across 3..20; we allow more slack on a
// small workload).
func TestProbeIntervalSensitivity(t *testing.T) {
	res, err := ProbeIntervalSensitivity(13, 300, 64, 3, []int{3, 5, 10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 {
		t.Fatalf("steps = %v", res.Steps)
	}
	if res.MaxSpread > 0.25 {
		t.Fatalf("probe-interval spread %.1f%% too large — controller unstable", 100*res.MaxSpread)
	}
	if _, err := ProbeIntervalSensitivity(13, 100, 64, 2, []int{5}); err == nil {
		t.Fatal("want error for single setting")
	}
}

// TestChainCodeBaseline reproduces the Section 2.3 comparison in shape: the
// signature pipeline must be at least as accurate as chain codes and
// orders of magnitude cheaper per comparison.
func TestChainCodeBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("cyclic edit distance sweep is slow")
	}
	res, err := ChainCodeBaseline(17, 5, 3, 48, 96)
	if err != nil {
		t.Fatal(err)
	}
	if res.SignatureErr > res.ChainCodeErr+10 {
		t.Fatalf("signature error %.2f%% far above chain codes %.2f%%", res.SignatureErr, res.ChainCodeErr)
	}
	if res.SpeedupOverChains < 10 {
		t.Fatalf("expected a large speedup over the chain-code cost model, got %.1fx", res.SpeedupOverChains)
	}
	if _, err := ChainCodeBaseline(1, 1, 1, 32, 32); err == nil {
		t.Fatal("want error for degenerate spec")
	}
}
