package experiments

// Clustering demonstrations of Figures 17 and 18: DTW-based clustering of a
// morphologically diverse collection, and articulation robustness of the
// centroid-distance representation (the "bent hindwing" experiment).

import (
	"testing"

	"lbkeogh/internal/cluster"
	"lbkeogh/internal/core"
	"lbkeogh/internal/mining"
	"lbkeogh/internal/shape"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

// TestArticulationClustering reproduces Figure 18: three Lepidoptera-like
// contours and a copy of each with a "bent hindwing" (a local angular
// articulation). Group-average clustering under rotation-invariant ED must
// pair every original with its articulated copy — the centroid-based
// representation is robust to articulation, unlike Hausdorff-style measures
// (the paper's car-antenna thought experiment).
func TestArticulationClustering(t *testing.T) {
	bases := []shape.Superformula{
		{M: 4, N1: 2.5, N2: 7, N3: 7, A: 1, B: 1},   // Actias maenas stand-in
		{M: 5, N1: 2.0, N2: 11, N3: 11, A: 1, B: 1}, // Actias philippinica
		{M: 6, N1: 3.5, N2: 12, N3: 12, A: 1, B: 1}, // Chorinea amazon
	}
	n := 128
	var db [][]float64
	for _, sf := range bases {
		plain := shape.RadialSignature(sf.Radius, n)
		bent := shape.NewRadialShape(sf.Radius).WithArticulation(4.5, 0.6, 0.06)
		bentSig := shape.RadialSignature(bent.Radius, n)
		rng := ts.NewRand(int64(n))
		db = append(db, ts.Rotate(plain, rng.Intn(n)), ts.Rotate(bentSig, rng.Intn(n)))
	}
	dend := mining.Cluster(db, wedge.ED{}, core.DefaultOptions(), cluster.Average, nil)
	for _, id := range dend.Frontier(3) {
		leaves := dend.Leaves(id)
		if len(leaves) != 2 || leaves[0]/2 != leaves[1]/2 {
			t.Fatalf("articulated pair split: K=3 cut contains %v", leaves)
		}
	}
}

// TestDTWClusteringDiverse reproduces the Figure 17 mechanism: on a
// morphologically diverse collection whose within-pair variation is
// articulation (features sliding along the contour), DTW-based clustering
// recovers every related pair.
func TestDTWClusteringDiverse(t *testing.T) {
	n := 96
	rng := ts.NewRand(99)
	var db [][]float64
	pairs := 4
	for p := 0; p < pairs; p++ {
		base := shape.Superformula{
			M:  float64(3 + p),
			N1: 2 + float64(p)*0.8,
			N2: 6 + float64(p)*2,
			N3: 6 + float64(p)*2,
			A:  1, B: 1,
		}
		for k := 0; k < 2; k++ {
			inst := shape.NewRadialShape(base.Radius).
				WithArticulation(rng.Float64()*6, 0.5, 0.12).
				WithNoise(rng, 0.02)
			sig := shape.RadialSignature(inst.Radius, n)
			db = append(db, ts.Rotate(sig, rng.Intn(n)))
		}
	}
	dend := mining.Cluster(db, wedge.DTW{R: 4}, core.DefaultOptions(), cluster.Average, nil)
	for _, id := range dend.Frontier(pairs) {
		leaves := dend.Leaves(id)
		if len(leaves) != 2 || leaves[0]/2 != leaves[1]/2 {
			t.Fatalf("DTW clustering split a related pair: %v", leaves)
		}
	}
}
