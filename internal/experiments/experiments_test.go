package experiments

import (
	"testing"
)

func TestEfficiencyEuclideanShape(t *testing.T) {
	curves, err := Efficiency(EfficiencyConfig{
		Workload: ProjectilePoints,
		Sizes:    []int{32, 128, 512},
		N:        64,
		Queries:  3,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]float64{}
	for _, c := range curves {
		byLabel[c.Label] = c.Ratio
	}
	for _, l := range []string{"brute", "fft", "early-abandon", "wedge"} {
		if len(byLabel[l]) != 3 {
			t.Fatalf("missing curve %q", l)
		}
	}
	// Brute is the normalizer.
	for _, r := range byLabel["brute"] {
		if r != 1 {
			t.Fatalf("brute ratio = %v, want 1", r)
		}
	}
	// At the largest size the wedge strategy must beat brute force clearly
	// and also beat plain early abandoning (the paper's headline shape).
	last := len(byLabel["wedge"]) - 1
	if byLabel["wedge"][last] >= 0.5 {
		t.Fatalf("wedge ratio at large m = %v, want << 1", byLabel["wedge"][last])
	}
	if byLabel["wedge"][last] >= byLabel["early-abandon"][last] {
		t.Fatalf("wedge (%v) should beat early abandon (%v) at large m",
			byLabel["wedge"][last], byLabel["early-abandon"][last])
	}
	// The wedge curve must improve (not degrade) with database size.
	if byLabel["wedge"][last] > byLabel["wedge"][0] {
		t.Fatalf("wedge ratio should shrink with m: %v", byLabel["wedge"])
	}
}

func TestEfficiencyDTWShape(t *testing.T) {
	curves, err := Efficiency(EfficiencyConfig{
		Workload: ProjectilePoints,
		UseDTW:   true,
		R:        3,
		Sizes:    []int{32, 256},
		N:        48,
		Queries:  2,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]float64{}
	for _, c := range curves {
		byLabel[c.Label] = c.Ratio
	}
	if len(byLabel["brute-R"]) == 0 {
		t.Fatal("missing brute-R curve")
	}
	// Banded brute force is far below unconstrained brute force.
	if byLabel["brute-R"][0] >= 0.5 {
		t.Fatalf("brute-R ratio = %v, want well below 1", byLabel["brute-R"][0])
	}
	// Wedge wins big for DTW (the paper: >5000x at m=16000; here smaller m).
	last := len(byLabel["wedge"]) - 1
	if byLabel["wedge"][last] >= byLabel["brute-R"][last] {
		t.Fatalf("wedge (%v) should beat brute-R (%v)", byLabel["wedge"][last], byLabel["brute-R"][last])
	}
}

func TestEfficiencyLightCurves(t *testing.T) {
	curves, err := Efficiency(EfficiencyConfig{
		Workload: LightCurves,
		Sizes:    []int{64, 256},
		N:        64,
		Queries:  2,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curve count = %d", len(curves))
	}
}

func TestEfficiencyBadConfig(t *testing.T) {
	if _, err := Efficiency(EfficiencyConfig{}); err == nil {
		t.Fatal("want error")
	}
	if _, err := Efficiency(EfficiencyConfig{Workload: "nope", Sizes: []int{8}, N: 32, Queries: 1}); err == nil {
		t.Fatal("want error for unknown workload")
	}
}

func TestDiskAccessesShape(t *testing.T) {
	curves, err := DiskAccesses(DiskConfig{
		Workload: ProjectilePoints,
		Dims:     []int{4, 16},
		M:        150,
		N:        64,
		R:        3,
		Queries:  3,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		for di, f := range c.Fraction {
			if f <= 0 || f > 1 {
				t.Fatalf("%s: fraction %v out of (0,1]", c.Label, f)
			}
			if di > 0 && f > c.Fraction[di-1]+0.05 {
				t.Fatalf("%s: fraction should not grow much with D: %v", c.Label, c.Fraction)
			}
		}
		// An index must beat fetching everything at the highest D.
		if c.Fraction[len(c.Fraction)-1] > 0.8 {
			t.Fatalf("%s: index fetched almost everything: %v", c.Label, c.Fraction)
		}
	}
}

func TestEmpiricalExponent(t *testing.T) {
	// The O(n²) query set-up must be amortized over a database that is large
	// relative to n (the paper uses m = 16,000); with tiny m the set-up
	// dominates and the exponent drifts towards 2.
	res, err := EmpiricalExponent(ExponentConfig{
		Lengths: []int{32, 64, 128},
		M:       800,
		Queries: 2,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~O(n^1.06); synthetic data and small m won't hit
	// that exactly, but the exponent must be far below brute force's 2 and
	// at least linear-ish.
	if res.Exponent <= 0.5 || res.Exponent >= 1.9 {
		t.Fatalf("exponent = %v, want in (0.5, 1.9)", res.Exponent)
	}
	if len(res.Steps) != 3 {
		t.Fatalf("steps = %v", res.Steps)
	}
}

func TestTable8Row(t *testing.T) {
	row, err := Table8("MixedBag", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if row.Classes != 9 || row.PaperSize != 160 {
		t.Fatalf("row metadata wrong: %+v", row)
	}
	if row.EuclideanErr < 0 || row.EuclideanErr > 100 || row.DTWErr < 0 || row.DTWErr > 100 {
		t.Fatalf("error rates out of range: %+v", row)
	}
	if row.PaperEuclErr == 0 {
		t.Fatal("paper reference missing")
	}
	if _, err := Table8("bogus", 1); err == nil {
		t.Fatal("want error for unknown dataset")
	}
}

func TestGeometricSizes(t *testing.T) {
	s := GeometricSizes(600)
	want := []int{32, 64, 125, 250, 500}
	if len(s) != len(want) {
		t.Fatalf("sizes = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sizes = %v", s)
		}
	}
	if got := GeometricSizes(10); len(got) != 1 || got[0] != 10 {
		t.Fatalf("tiny maxM: %v", got)
	}
}

func TestSpeedupSummary(t *testing.T) {
	curves := []Curve{{Label: "wedge", Ratio: []float64{0.5, 0.01}}}
	if s := SpeedupAtLargestM(curves); s != 100 {
		t.Fatalf("speedup = %v, want 100", s)
	}
	if s := SpeedupAtLargestM(nil); s != 0 {
		t.Fatalf("missing wedge curve should give 0, got %v", s)
	}
}
