package experiments

import (
	"fmt"
	"math"

	"lbkeogh/internal/chaincode"
	"lbkeogh/internal/classify"
	"lbkeogh/internal/core"
	"lbkeogh/internal/imagedist"
	"lbkeogh/internal/shape"
	"lbkeogh/internal/stats"
	"lbkeogh/internal/synth"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

// LandmarkResult reports the Yoga-style landmark-vs-rotation experiment
// (Section 5.1): classification error with landmark alignment versus exact
// rotation-invariant matching, under ED and DTW. The paper found rotation
// invariance cut the Yoga error by a factor of three (17.0% → 4.70% for ED).
type LandmarkResult struct {
	Dataset                 string
	LandmarkED, LandmarkDTW float64 // percent error, argmax-landmark aligned
	RotInvED, RotInvDTW     float64 // percent error, exact rotation invariance
	R                       int
}

// LandmarkVsRotation classifies one of the Table 8 datasets twice: once with
// the brittle "most protruding point" landmark alignment and plain (fixed-
// alignment) 1-NN, and once with exact rotation-invariant 1-NN.
func LandmarkVsRotation(name string, sizeScale float64, r int) (*LandmarkResult, error) {
	d, err := synth.Table8Dataset(name, sizeScale)
	if err != nil {
		return nil, err
	}
	aligned := make([][]float64, len(d.Series))
	for i, s := range d.Series {
		aligned[i] = ts.AlignToMax(s)
	}
	lmED, _ := classify.LeaveOneOutAligned(aligned, d.Labels, wedge.ED{}, nil)
	lmDTW, _ := classify.LeaveOneOutAligned(aligned, d.Labels, wedge.DTW{R: r}, nil)
	opts := core.DefaultOptions()
	riED, _ := classify.LeaveOneOut(d.Series, d.Labels, wedge.ED{}, opts, nil)
	riDTW, _ := classify.LeaveOneOut(d.Series, d.Labels, wedge.DTW{R: r}, opts, nil)
	return &LandmarkResult{
		Dataset:     name,
		LandmarkED:  100 * lmED,
		LandmarkDTW: 100 * lmDTW,
		RotInvED:    100 * riED,
		RotInvDTW:   100 * riDTW,
		R:           r,
	}, nil
}

// ImageSpaceResult reports the Section 5.1 MixedBag aside: error rates of
// the image-space Chamfer and Hausdorff measures versus the 1-D signature
// with rotation-invariant Euclidean distance, on the same rasters. The paper
// reports Chamfer 6.0%, Hausdorff 7.0%, Euclidean 4.375%.
type ImageSpaceResult struct {
	Instances             int
	ChamferErr            float64
	HausdorffErr          float64
	SignatureEuclideanErr float64
}

// ImageSpaceBaselines rasterizes a MixedBag-style collection and classifies
// it three ways: Chamfer and Hausdorff with brute-force rotation search in
// image space, and the centroid-distance signature under exact rotation-
// invariant Euclidean distance.
func ImageSpaceBaselines(seed int64, classes, perClass, size, rotations, sigLen int) (*ImageSpaceResult, error) {
	if classes < 2 || perClass < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 classes and instances, got %d/%d", classes, perClass)
	}
	bitmaps, labels := synth.RasterMixedBag(seed, classes, perClass, size)
	m := len(bitmaps)

	classifyMetric := func(metric func(a, b *shape.Bitmap) float64) float64 {
		errs := 0
		for i := range bitmaps {
			best, bestJ := math.Inf(1), -1
			for j := range bitmaps {
				if j == i {
					continue
				}
				if d := imagedist.MinOverRotations(bitmaps[i], bitmaps[j], rotations, metric); d < best {
					best, bestJ = d, j
				}
			}
			if labels[bestJ] != labels[i] {
				errs++
			}
		}
		return 100 * float64(errs) / float64(m)
	}

	res := &ImageSpaceResult{Instances: m}
	res.ChamferErr = classifyMetric(imagedist.ChamferSym)
	res.HausdorffErr = classifyMetric(imagedist.Hausdorff)

	sigs := make([][]float64, m)
	for i, b := range bitmaps {
		sig, err := shape.Signature(b, sigLen)
		if err != nil {
			return nil, fmt.Errorf("experiments: signature of raster %d: %w", i, err)
		}
		sigs[i] = sig
	}
	edErr, _ := classify.LeaveOneOut(sigs, labels, wedge.ED{}, core.DefaultOptions(), nil)
	res.SignatureEuclideanErr = 100 * edErr
	return res, nil
}

// SamplingResult reports the contour-sampling experiment (Sections 2.3 and
// 5.1): heavy down-sampling of the contour, claimed in the fish-recognition
// literature to "retain the important shape features", costs real accuracy
// versus matching the full-resolution signature.
type SamplingResult struct {
	Dataset             string
	FullLen, SampledLen int
	FullErr, SampledErr float64
}

// SamplingAblation classifies a dataset at full signature resolution and
// again with every signature down-sampled to sampledLen points (then both
// under exact rotation-invariant ED).
func SamplingAblation(name string, sizeScale float64, sampledLen int) (*SamplingResult, error) {
	d, err := synth.Table8Dataset(name, sizeScale)
	if err != nil {
		return nil, err
	}
	if sampledLen < 4 || sampledLen >= d.N {
		return nil, fmt.Errorf("experiments: sampledLen %d outside [4, %d)", sampledLen, d.N)
	}
	opts := core.DefaultOptions()
	fullErr, _ := classify.LeaveOneOut(d.Series, d.Labels, wedge.ED{}, opts, nil)
	down := make([][]float64, len(d.Series))
	for i, s := range d.Series {
		r, err := ts.Resample(s, sampledLen)
		if err != nil {
			return nil, err
		}
		down[i] = ts.ZNorm(r)
	}
	dsErr, _ := classify.LeaveOneOut(down, d.Labels, wedge.ED{}, opts, nil)
	return &SamplingResult{
		Dataset: name, FullLen: d.N, SampledLen: sampledLen,
		FullErr: 100 * fullErr, SampledErr: 100 * dsErr,
	}, nil
}

// OcclusionResult compares the three measures on occlusion-heavy data
// (Figures 14–15: broken projectile points, the Skhul V skull): LCSS can
// ignore the missing region, DTW must warp across it, ED pays in full.
type OcclusionResult struct {
	EDErr, DTWErr, LCSSErr float64
}

// OcclusionRobustness builds a dataset in which a fraction of instances have
// a large occluded (flattened) contour region, then classifies with ED, DTW
// and LCSS.
func OcclusionRobustness(seed int64, classes, perClass, n int, occlusionP float64, r int, eps float64) (*OcclusionResult, error) {
	if classes < 2 || perClass < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 classes and instances")
	}
	cfg := synth.DefaultInstanceConfig()
	cfg.OcclusionP = occlusionP
	cfg.Articulation = 0.05
	d := synth.MakeClassDataset("occlusion", seed, classes, perClass, n, false, cfg)
	opts := core.DefaultOptions()
	edErr, _ := classify.LeaveOneOut(d.Series, d.Labels, wedge.ED{}, opts, nil)
	dtwErr, _ := classify.LeaveOneOut(d.Series, d.Labels, wedge.DTW{R: r}, opts, nil)
	lcssErr, _ := classify.LeaveOneOut(d.Series, d.Labels, wedge.LCSS{Delta: r, Eps: eps}, opts, nil)
	return &OcclusionResult{EDErr: 100 * edErr, DTWErr: 100 * dtwErr, LCSSErr: 100 * lcssErr}, nil
}

// ChainCodeResult reports the Section 2.3 comparison against the
// discretized chain-code pipeline of Marzal & Palazón [23]: classification
// error of cyclic-edit-distance 1-NN on chain codes versus rotation-
// invariant ED on signatures extracted from the very same rasters, plus the
// per-comparison cost of each (the [23] cost model n²·log n versus the
// measured wedge num_steps).
type ChainCodeResult struct {
	Instances         int
	ChainCodeErr      float64
	SignatureErr      float64
	ChainCodeSteps    float64 // reference-algorithm cost model per comparison
	SignatureSteps    float64 // measured wedge steps per comparison (incl. set-up)
	SpeedupOverChains float64
}

// ChainCodeBaseline rasterizes a MixedBag-style collection and classifies it
// with both pipelines.
func ChainCodeBaseline(seed int64, classes, perClass, size, sigLen int) (*ChainCodeResult, error) {
	if classes < 2 || perClass < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 classes and instances")
	}
	bitmaps, labels := synth.RasterMixedBag(seed, classes, perClass, size)
	m := len(bitmaps)

	codes := make([][]byte, m)
	var avgCodeLen float64
	for i, b := range bitmaps {
		code, err := chaincode.FromBitmap(b)
		if err != nil {
			return nil, fmt.Errorf("experiments: chain code of raster %d: %w", i, err)
		}
		codes[i] = code
		avgCodeLen += float64(len(code))
	}
	avgCodeLen /= float64(m)

	ccErrs := 0
	for i := range codes {
		best, bestJ := math.Inf(1), -1
		for j := range codes {
			if j == i {
				continue
			}
			if d := chaincode.CyclicEditDistance(codes[i], codes[j], chaincode.AngularSubstCost, 1); d < best {
				best, bestJ = d, j
			}
		}
		if labels[bestJ] != labels[i] {
			ccErrs++
		}
	}

	sigs := make([][]float64, m)
	for i, b := range bitmaps {
		sig, err := shape.Signature(b, sigLen)
		if err != nil {
			return nil, err
		}
		sigs[i] = sig
	}
	var cnt stats.Counter
	sigErrs := 0
	for i := range sigs {
		rs := core.NewRotationSet(sigs[i], core.DefaultOptions(), &cnt)
		s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
		best, bestJ := math.Inf(1), -1
		for j := range sigs {
			if j == i {
				continue
			}
			match := s.MatchSeries(sigs[j], best, &cnt)
			if match.Found() && match.Dist < best {
				best, bestJ = match.Dist, j
			}
		}
		if labels[bestJ] != labels[i] {
			sigErrs++
		}
	}

	res := &ChainCodeResult{
		Instances:      m,
		ChainCodeErr:   100 * float64(ccErrs) / float64(m),
		SignatureErr:   100 * float64(sigErrs) / float64(m),
		ChainCodeSteps: chaincode.ReferenceSteps(int(avgCodeLen)),
		SignatureSteps: float64(cnt.Steps()) / float64(m*(m-1)),
	}
	if res.SignatureSteps > 0 {
		res.SpeedupOverChains = res.ChainCodeSteps / res.SignatureSteps
	}
	return res, nil
}

// ProbeSensitivityResult reports wedge-search cost as a function of the
// dynamic-K controller's single parameter (the probe interval count). The
// paper reports any value in 3..20 stays within 4% (Section 5.3).
type ProbeSensitivityResult struct {
	Intervals []int
	Steps     []float64 // steps per comparison
	MaxSpread float64   // (max-min)/min over the measured settings
}

// ProbeIntervalSensitivity measures the wedge strategy's per-comparison cost
// across controller settings on a projectile-point scan.
func ProbeIntervalSensitivity(seed int64, m, n, queries int, intervals []int) (*ProbeSensitivityResult, error) {
	if len(intervals) < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 interval settings")
	}
	all := synth.ProjectilePoints(seed, m+queries, n)
	db := all[:m]
	res := &ProbeSensitivityResult{Intervals: intervals}
	for _, iv := range intervals {
		var cnt stats.Counter
		for _, q := range all[m:] {
			rs := core.NewRotationSet(q, core.DefaultOptions(), &cnt)
			s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{ProbeIntervals: iv})
			s.Scan(db, &cnt)
		}
		res.Steps = append(res.Steps, float64(cnt.Steps())/float64(m*queries))
	}
	lo, hi := res.Steps[0], res.Steps[0]
	for _, s := range res.Steps {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	res.MaxSpread = (hi - lo) / lo
	return res, nil
}
