package vptree

import "sort"

// Health is a structural self-report of a built tree, serving the index
// introspection endpoint: a skewed or radius-degenerate VP-tree prunes
// poorly, and these aggregates surface that without re-running queries.
type Health struct {
	// Points, Nodes and Leaves size the structure.
	Points int `json:"points"`
	Nodes  int `json:"nodes"`
	Leaves int `json:"leaves"`
	// LeafSize is the configured leaf capacity; MeanLeafFill is the average
	// leaf payload over that capacity (degenerate duplicate-point splits can
	// push individual leaves above 1).
	LeafSize     int     `json:"leaf_size"`
	MeanLeafFill float64 `json:"mean_leaf_fill"`
	// MaxDepth and MeanLeafDepth describe the shape (root depth 0); Balance
	// is the mean, over internal nodes, of the smaller child subtree's share
	// of the node's split points (0.5 = perfectly balanced).
	MaxDepth      int     `json:"max_depth"`
	MeanLeafDepth float64 `json:"mean_leaf_depth"`
	Balance       float64 `json:"balance"`
	// RadiusMin/P50/Max summarize the vantage-ball radii of internal nodes.
	// A collapsed distribution (min ≈ max ≈ 0) means the feature vectors are
	// near-duplicates and the tree cannot separate them.
	RadiusMin float64 `json:"radius_min"`
	RadiusP50 float64 `json:"radius_p50"`
	RadiusMax float64 `json:"radius_max"`
}

// Inspect walks the tree once and returns its structural health report.
func (t *Tree) Inspect() Health {
	h := Health{Points: len(t.points), Nodes: len(t.nodes), LeafSize: t.leafSize}
	var (
		leafItems    int
		leafDepthSum int
		balanceSum   float64
		internal     int
		radii        []float64
	)
	// walk returns the number of points in the subtree (internal nodes hold
	// their vantage point in addition to both child subtrees).
	var walk func(id, depth int) int
	walk = func(id, depth int) int {
		if depth > h.MaxDepth {
			h.MaxDepth = depth
		}
		nd := t.nodes[id]
		if nd.vp < 0 {
			h.Leaves++
			leafItems += len(nd.items)
			leafDepthSum += depth
			return len(nd.items)
		}
		internal++
		radii = append(radii, nd.median)
		in := walk(nd.inner, depth+1)
		out := walk(nd.outer, depth+1)
		lo, hi := in, out
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 0 {
			balanceSum += float64(lo) / float64(lo+hi)
		}
		return 1 + in + out
	}
	walk(t.root, 0)
	if h.Leaves > 0 {
		h.MeanLeafDepth = float64(leafDepthSum) / float64(h.Leaves)
		if t.leafSize > 0 {
			h.MeanLeafFill = float64(leafItems) / float64(h.Leaves) / float64(t.leafSize)
		}
	}
	if internal > 0 {
		h.Balance = balanceSum / float64(internal)
		sort.Float64s(radii)
		h.RadiusMin = radii[0]
		h.RadiusP50 = radii[len(radii)/2]
		h.RadiusMax = radii[len(radii)-1]
	}
	return h
}
