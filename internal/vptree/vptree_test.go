package vptree

import (
	"math"
	"testing"
	"testing/quick"

	"lbkeogh/internal/ts"
)

func randomPoints(seed int64, m, d int) [][]float64 {
	rng := ts.NewRand(seed)
	pts := make([][]float64, m)
	for i := range pts {
		pts[i] = ts.RandomSeries(rng, d)
	}
	return pts
}

// linearNN is the exhaustive reference.
func linearNN(pts [][]float64, q []float64) (int, float64) {
	best, bestIdx := math.Inf(1), -1
	for i, p := range pts {
		if d := euclid(q, p); d < best {
			best, bestIdx = d, i
		}
	}
	return bestIdx, best
}

// searchNN runs Search with a plain "feature distance is the true distance"
// verification, i.e. exact NN in feature space.
func searchNN(t *Tree, q []float64) (int, float64) {
	bestIdx, best := -1, math.Inf(1)
	t.Search(q, math.Inf(1), func(id int, fd, bsf float64) float64 {
		if fd < best {
			best, bestIdx = fd, id
		}
		return best
	})
	return bestIdx, best
}

func TestSearchMatchesLinear(t *testing.T) {
	pts := randomPoints(1, 200, 8)
	tree := New(pts, 8, 42)
	rng := ts.NewRand(2)
	for trial := 0; trial < 50; trial++ {
		q := ts.RandomSeries(rng, 8)
		wantIdx, wantDist := linearNN(pts, q)
		gotIdx, gotDist := searchNN(tree, q)
		if gotIdx != wantIdx || math.Abs(gotDist-wantDist) > 1e-12 {
			t.Fatalf("trial %d: (%d,%v) != (%d,%v)", trial, gotIdx, gotDist, wantIdx, wantDist)
		}
	}
}

func TestSearchPrunes(t *testing.T) {
	pts := randomPoints(3, 500, 6)
	tree := New(pts, 4, 7)
	rng := ts.NewRand(4)
	q := ts.RandomSeries(rng, 6)
	visited := 0
	tree.Search(q, math.Inf(1), func(id int, fd, bsf float64) float64 {
		visited++
		return math.Min(bsf, fd)
	})
	if visited >= 500 {
		t.Fatalf("no pruning: visited %d of 500", visited)
	}
}

func TestSearchRespectsSeedBSF(t *testing.T) {
	pts := randomPoints(5, 100, 4)
	tree := New(pts, 4, 1)
	rng := ts.NewRand(6)
	q := ts.RandomSeries(rng, 4)
	_, nn := linearNN(pts, q)
	called := false
	tree.Search(q, nn*0.5, func(id int, fd, bsf float64) float64 {
		if fd >= nn*0.5 {
			t.Fatalf("visited point with bound %v above seed bsf", fd)
		}
		called = true
		return bsf
	})
	_ = called // may legitimately be false: everything pruned
}

func TestSearchVisitsAllWithinRadius(t *testing.T) {
	// Every point closer than the final bsf must have been offered to visit:
	// we check by keeping bsf fixed at a radius and collecting ids.
	pts := randomPoints(7, 300, 5)
	tree := New(pts, 8, 3)
	rng := ts.NewRand(8)
	q := ts.RandomSeries(rng, 5)
	radius := 1.5
	got := map[int]bool{}
	tree.Search(q, radius, func(id int, fd, bsf float64) float64 {
		got[id] = true
		return bsf // never shrink: plain range query
	})
	for i, p := range pts {
		if euclid(q, p) < radius && !got[i] {
			t.Fatalf("point %d within radius was never visited", i)
		}
	}
}

func TestSingletonAndDuplicates(t *testing.T) {
	pts := [][]float64{{1, 1}}
	tree := New(pts, 4, 0)
	if idx, d := searchNN(tree, []float64{1, 1}); idx != 0 || d != 0 {
		t.Fatalf("singleton NN = (%d,%v)", idx, d)
	}
	// All-duplicate points must not loop forever.
	dup := [][]float64{{2, 2}, {2, 2}, {2, 2}, {2, 2}, {2, 2}}
	tree = New(dup, 1, 0)
	if tree.Size() != 5 {
		t.Fatal("size wrong")
	}
	idx, d := searchNN(tree, []float64{2, 2})
	if d != 0 || idx < 0 {
		t.Fatalf("duplicate NN = (%d,%v)", idx, d)
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on empty")
		}
	}()
	New(nil, 4, 0)
}

func TestNewPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on dim mismatch")
		}
	}()
	New([][]float64{{1}, {1, 2}}, 4, 0)
}

// Property: exact NN for random dimensionalities, sizes and leaf sizes.
func TestSearchExactProperty(t *testing.T) {
	f := func(seed int64, mSeed, dSeed, lSeed uint8) bool {
		m := 2 + int(mSeed)%80
		d := 1 + int(dSeed)%6
		leaf := 1 + int(lSeed)%10
		pts := randomPoints(seed, m, d)
		tree := New(pts, leaf, seed+1)
		rng := ts.NewRand(seed + 2)
		q := ts.RandomSeries(rng, d)
		wantIdx, wantDist := linearNN(pts, q)
		gotIdx, gotDist := searchNN(tree, q)
		return gotIdx == wantIdx && math.Abs(gotDist-wantDist) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
