package vptree

import (
	"testing"

	"lbkeogh/internal/ts"
)

func TestInspect(t *testing.T) {
	rng := ts.NewRand(3)
	points := make([][]float64, 200)
	for i := range points {
		p := make([]float64, 8)
		for j := range p {
			p[j] = rng.Float64()
		}
		points[i] = p
	}
	tr := New(points, 16, 0x5eed)
	h := tr.Inspect()
	if h.Points != 200 {
		t.Errorf("Points = %d, want 200", h.Points)
	}
	if h.Nodes != len(tr.nodes) {
		t.Errorf("Nodes = %d, want %d", h.Nodes, len(tr.nodes))
	}
	if h.Leaves == 0 || h.LeafSize != 16 {
		t.Errorf("Leaves/LeafSize = %d/%d, want >0/16", h.Leaves, h.LeafSize)
	}
	if h.MaxDepth < 1 {
		t.Errorf("MaxDepth = %d, want >= 1 for 200 points at leaf size 16", h.MaxDepth)
	}
	if h.MeanLeafDepth <= 0 || h.MeanLeafDepth > float64(h.MaxDepth) {
		t.Errorf("MeanLeafDepth = %v outside (0, %d]", h.MeanLeafDepth, h.MaxDepth)
	}
	if h.Balance <= 0 || h.Balance > 0.5 {
		t.Errorf("Balance = %v outside (0, 0.5]", h.Balance)
	}
	if h.RadiusMin <= 0 || h.RadiusMin > h.RadiusP50 || h.RadiusP50 > h.RadiusMax {
		t.Errorf("radius distribution broken: min %v p50 %v max %v",
			h.RadiusMin, h.RadiusP50, h.RadiusMax)
	}
	if h.MeanLeafFill <= 0 || h.MeanLeafFill > 1.01 {
		t.Errorf("MeanLeafFill = %v outside (0, 1]", h.MeanLeafFill)
	}
	// The walk must account for every point exactly once.
	var items int
	for _, nd := range tr.nodes {
		if nd.vp >= 0 {
			items++ // vantage point
		}
		items += len(nd.items)
	}
	if items != h.Points {
		t.Errorf("tree holds %d points, health says %d", items, h.Points)
	}
}

func TestInspectSingleLeaf(t *testing.T) {
	tr := New([][]float64{{1, 2}, {3, 4}}, 16, 1)
	h := tr.Inspect()
	if h.Leaves != 1 || h.MaxDepth != 0 || h.Balance != 0 {
		t.Errorf("single-leaf health = %+v", h)
	}
}
