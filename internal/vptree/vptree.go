// Package vptree implements a vantage-point tree over Euclidean feature
// vectors, used to index the rotation-invariant Fourier-magnitude features
// (Section 4.2, Table 7 of the paper, following Vlachos et al. [38]).
//
// The tree partitions the metric space with balls around vantage points;
// search proceeds best-first over subtree lower bounds, so every feature
// vector whose bound reaches the caller is accompanied by an admissible
// lower bound of its true distance, and subtrees whose bound exceeds the
// best-so-far are never touched.
package vptree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"lbkeogh/internal/ts"
)

type node struct {
	vp           int     // vantage point id (-1 for leaf nodes)
	median       float64 // ball radius around the vantage point
	inner, outer int     // child node indices (-1 if absent)
	items        []int   // leaf payload
}

// Tree is a vantage-point tree over a fixed set of feature vectors.
type Tree struct {
	points   [][]float64
	nodes    []node
	root     int
	leafSize int
}

// New builds a tree over points (all the same dimensionality). leafSize
// bounds the size of leaf buckets (minimum 1); seed makes vantage-point
// selection deterministic.
func New(points [][]float64, leafSize int, seed int64) *Tree {
	if len(points) == 0 {
		panic("vptree: no points")
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			panic(fmt.Sprintf("vptree: point %d has dim %d, want %d", i, len(p), d))
		}
	}
	if leafSize < 1 {
		leafSize = 1
	}
	t := &Tree{points: points, leafSize: leafSize}
	ids := make([]int, len(points))
	for i := range ids {
		ids[i] = i
	}
	rng := ts.NewRand(seed)
	t.root = t.build(ids, rng)
	return t
}

func (t *Tree) build(ids []int, rng interface{ Intn(int) int }) int {
	if len(ids) <= t.leafSize {
		t.nodes = append(t.nodes, node{vp: -1, inner: -1, outer: -1, items: append([]int{}, ids...)})
		return len(t.nodes) - 1
	}
	// Pick a vantage point and split the rest at the median distance.
	vpPos := rng.Intn(len(ids))
	ids[0], ids[vpPos] = ids[vpPos], ids[0]
	vp := ids[0]
	rest := ids[1:]
	dists := make([]float64, len(rest))
	for i, id := range rest {
		dists[i] = euclid(t.points[vp], t.points[id])
	}
	order := make([]int, len(rest))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if dists[order[a]] != dists[order[b]] {
			return dists[order[a]] < dists[order[b]]
		}
		return rest[order[a]] < rest[order[b]]
	})
	mid := len(order) / 2
	median := dists[order[mid]]
	var innerIDs, outerIDs []int
	for i, oi := range order {
		if i <= mid {
			innerIDs = append(innerIDs, rest[oi])
		} else {
			outerIDs = append(outerIDs, rest[oi])
		}
	}
	if len(innerIDs) == 0 || len(outerIDs) == 0 {
		// Degenerate split (e.g. many duplicate points): stop here.
		t.nodes = append(t.nodes, node{vp: -1, inner: -1, outer: -1, items: append([]int{}, ids...)})
		return len(t.nodes) - 1
	}
	idx := len(t.nodes)
	t.nodes = append(t.nodes, node{vp: vp, median: median, inner: -1, outer: -1})
	inner := t.build(innerIDs, rng)
	outer := t.build(outerIDs, rng)
	t.nodes[idx].inner = inner
	t.nodes[idx].outer = outer
	return idx
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return len(t.points) }

func euclid(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}

type pqItem struct {
	bound float64
	node  int
}

type pq []pqItem

func (h pq) Len() int           { return len(h) }
func (h pq) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h pq) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x any)        { *h = append(*h, x.(pqItem)) }
func (h *pq) Pop() any {
	old := *h
	n := len(old) - 1
	it := old[n]
	*h = old[:n]
	return it
}

// Search drives a best-first nearest-neighbour search from query feature
// vector q. For every candidate point whose admissible bound is below the
// current best-so-far, visit(id, featureDist, bsf) is called with the exact
// feature-space distance (itself a lower bound of the true distance in our
// usage) and must return the possibly-improved best-so-far. Search returns
// the final best-so-far.
//
// bsf0 seeds the best-so-far (+Inf for an unbounded search). Subtrees whose
// lower bound reaches the best-so-far are pruned without visiting.
func (t *Tree) Search(q []float64, bsf0 float64, visit func(id int, featureDist, bsf float64) float64) float64 {
	bsf := bsf0
	h := &pq{{bound: 0, node: t.root}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.bound >= bsf {
			break // smallest outstanding bound cannot improve
		}
		nd := t.nodes[it.node]
		if nd.vp < 0 {
			for _, id := range nd.items {
				fd := euclid(q, t.points[id])
				if fd < bsf {
					bsf = visit(id, fd, bsf)
				}
			}
			continue
		}
		dq := euclid(q, t.points[nd.vp])
		if dq < bsf {
			bsf = visit(nd.vp, dq, bsf)
		}
		innerBound := math.Max(it.bound, dq-nd.median)
		outerBound := math.Max(it.bound, nd.median-dq)
		if innerBound < 0 {
			innerBound = 0
		}
		if outerBound < 0 {
			outerBound = 0
		}
		heap.Push(h, pqItem{bound: innerBound, node: nd.inner})
		heap.Push(h, pqItem{bound: outerBound, node: nd.outer})
	}
	return bsf
}
