// Package cluster implements agglomerative hierarchical clustering with the
// nearest-neighbour-chain algorithm and Lance-Williams linkage updates.
//
// The paper (Section 4.1, Figures 9–10) derives its wedge sets from a
// hierarchical clustering of the query's rotations under group-average
// linkage: the area of a wedge is driven by the pairwise distances of the
// series inside it, so minimizing within-cluster distances minimizes wedge
// area. Cutting the dendrogram at every K yields the candidate wedge sets
// W(K) among which the dynamic controller chooses.
package cluster

import (
	"container/heap"
	"fmt"
	"math"
)

// Linkage selects the cluster-distance update rule.
type Linkage int

const (
	// Average is group-average linkage (UPGMA) — the linkage the paper uses.
	Average Linkage = iota
	// Single is nearest-neighbour linkage.
	Single
	// Complete is furthest-neighbour linkage.
	Complete
)

func (l Linkage) String() string {
	switch l {
	case Average:
		return "average"
	case Single:
		return "single"
	case Complete:
		return "complete"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Node is one vertex of a dendrogram. Leaves have Left == Right == -1 and
// Height 0. Internal nodes record the linkage distance at which their two
// children merged.
type Node struct {
	Left, Right int
	Height      float64
	Size        int
}

// Dendrogram is a binary merge tree over m leaves. Nodes[0..m-1] are the
// leaves in input order; Nodes[m..2m-2] are internal nodes in creation order;
// Nodes[2m-2] is the root (for m >= 1).
type Dendrogram struct {
	NLeaves int
	Nodes   []Node
}

// Agglomerative clusters m items given a pairwise distance function, which
// must be symmetric with d(i,i) = 0. It runs the NN-chain algorithm in
// O(m²) time and O(m²) memory (the distance matrix).
func Agglomerative(m int, d func(i, j int) float64, linkage Linkage) *Dendrogram {
	if m <= 0 {
		panic("cluster: need at least one item")
	}
	matrix := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			v := d(i, j)
			matrix[i*m+j] = v
			matrix[j*m+i] = v
		}
	}
	return AgglomerativeMatrix(matrix, m, linkage)
}

// AgglomerativeMatrix clusters m items from a row-major m×m distance matrix.
// The matrix is consumed (overwritten) during clustering.
func AgglomerativeMatrix(matrix []float64, m int, linkage Linkage) *Dendrogram {
	if m <= 0 {
		panic("cluster: need at least one item")
	}
	if len(matrix) != m*m {
		panic(fmt.Sprintf("cluster: matrix size %d != %d", len(matrix), m*m))
	}
	dd := &Dendrogram{NLeaves: m, Nodes: make([]Node, m, 2*m-1)}
	for i := 0; i < m; i++ {
		dd.Nodes[i] = Node{Left: -1, Right: -1, Size: 1}
	}
	if m == 1 {
		return dd
	}

	// active[c] is the dendrogram node currently representing matrix slot c;
	// size[c] its leaf count; alive[c] whether slot c is still a cluster.
	active := make([]int, m)
	size := make([]int, m)
	alive := make([]bool, m)
	for i := range active {
		active[i] = i
		size[i] = 1
		alive[i] = true
	}
	nAlive := m

	chain := make([]int, 0, m)
	for nAlive > 1 {
		if len(chain) == 0 {
			for i := 0; i < m; i++ {
				if alive[i] {
					chain = append(chain, i)
					break
				}
			}
		}
		for {
			tip := chain[len(chain)-1]
			// Find the nearest alive neighbour of tip, preferring the
			// previous chain element on ties (required for termination).
			var prev = -1
			if len(chain) >= 2 {
				prev = chain[len(chain)-2]
			}
			best, bestDist := -1, math.Inf(1)
			if prev >= 0 {
				best, bestDist = prev, matrix[tip*m+prev]
			}
			for j := 0; j < m; j++ {
				if j == tip || !alive[j] {
					continue
				}
				if v := matrix[tip*m+j]; v < bestDist {
					best, bestDist = j, v
				}
			}
			if best == prev && prev >= 0 {
				// Reciprocal nearest neighbours: merge tip and prev.
				chain = chain[:len(chain)-2]
				mergeClusters(dd, matrix, m, active, size, alive, tip, prev, bestDist, linkage)
				nAlive--
				break
			}
			chain = append(chain, best)
		}
	}
	return dd
}

func mergeClusters(dd *Dendrogram, matrix []float64, m int, active, size []int, alive []bool, a, b int, h float64, linkage Linkage) {
	newID := len(dd.Nodes)
	dd.Nodes = append(dd.Nodes, Node{
		Left:   active[a],
		Right:  active[b],
		Height: h,
		Size:   size[a] + size[b],
	})
	// Reuse slot a for the merged cluster; retire slot b.
	na, nb := float64(size[a]), float64(size[b])
	for k := 0; k < m; k++ {
		if !alive[k] || k == a || k == b {
			continue
		}
		dak := matrix[a*m+k]
		dbk := matrix[b*m+k]
		var v float64
		switch linkage {
		case Single:
			v = math.Min(dak, dbk)
		case Complete:
			v = math.Max(dak, dbk)
		default: // Average
			v = (na*dak + nb*dbk) / (na + nb)
		}
		matrix[a*m+k] = v
		matrix[k*m+a] = v
	}
	active[a] = newID
	size[a] += size[b]
	alive[b] = false
}

// Root returns the index of the root node.
func (d *Dendrogram) Root() int { return len(d.Nodes) - 1 }

// Leaves returns the leaf indices under node, in ascending order of discovery
// (left subtree first).
func (d *Dendrogram) Leaves(node int) []int {
	var out []int
	var walk func(int)
	walk = func(v int) {
		n := d.Nodes[v]
		if n.Left < 0 {
			out = append(out, v)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(node)
	return out
}

// frontierHeap orders nodes by descending merge height so that Frontier
// always splits the "fattest" cluster next.
type frontierHeap struct {
	ids     []int
	heights []float64
}

func (h *frontierHeap) Len() int { return len(h.ids) }
func (h *frontierHeap) Less(i, j int) bool {
	if h.heights[i] != h.heights[j] {
		return h.heights[i] > h.heights[j]
	}
	return h.ids[i] > h.ids[j] // deterministic tie-break: later merges first
}
func (h *frontierHeap) Swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.heights[i], h.heights[j] = h.heights[j], h.heights[i]
}
func (h *frontierHeap) Push(x any) {
	p := x.([2]float64)
	h.ids = append(h.ids, int(p[0]))
	h.heights = append(h.heights, p[1])
}
func (h *frontierHeap) Pop() any {
	n := len(h.ids) - 1
	id := h.ids[n]
	h.ids = h.ids[:n]
	h.heights = h.heights[:n]
	return id
}

// Frontier returns the node indices of the K-cluster cut of the dendrogram:
// starting from the root, the node with the largest merge height is split
// into its children until K nodes remain. This reproduces the wedge sets of
// Figure 10 — W(K) for K = 1 is the root wedge, W(m) is the individual
// leaves. K is clamped to [1, NLeaves].
func (d *Dendrogram) Frontier(k int) []int {
	if k < 1 {
		k = 1
	}
	if k > d.NLeaves {
		k = d.NLeaves
	}
	h := &frontierHeap{}
	heap.Push(h, [2]float64{float64(d.Root()), d.Nodes[d.Root()].Height})
	for h.Len() < k {
		id := heap.Pop(h).(int)
		n := d.Nodes[id]
		if n.Left < 0 {
			// A leaf cannot be split; keep it and stop if everything left is
			// a leaf. (Cannot occur for k <= NLeaves, but keep it safe.)
			heap.Push(h, [2]float64{float64(id), -1})
			break
		}
		heap.Push(h, [2]float64{float64(n.Left), d.Nodes[n.Left].Height})
		heap.Push(h, [2]float64{float64(n.Right), d.Nodes[n.Right].Height})
	}
	out := make([]int, len(h.ids))
	copy(out, h.ids)
	return out
}

// CutHeights returns the merge heights of all internal nodes in creation
// order; useful for diagnostics and for choosing cut thresholds.
func (d *Dendrogram) CutHeights() []float64 {
	out := make([]float64, 0, len(d.Nodes)-d.NLeaves)
	for _, n := range d.Nodes[d.NLeaves:] {
		out = append(out, n.Height)
	}
	return out
}
