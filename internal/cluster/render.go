package cluster

import (
	"fmt"
	"strings"
)

// Render draws the dendrogram as indented ASCII, with leaf labels supplied
// by the caller (nil labels render leaf indices). Children are ordered by
// their smallest leaf index for deterministic output. Used by the examples
// and commands that print clustering results (the textual analogue of the
// paper's Figures 3, 16 and 17).
func (d *Dendrogram) Render(labels []string) string {
	var sb strings.Builder
	var walk func(id, depth int)
	walk = func(id, depth int) {
		indent := strings.Repeat("    ", depth)
		n := d.Nodes[id]
		if n.Left < 0 {
			if labels != nil && id < len(labels) {
				fmt.Fprintf(&sb, "%s- %s\n", indent, labels[id])
			} else {
				fmt.Fprintf(&sb, "%s- leaf %d\n", indent, id)
			}
			return
		}
		fmt.Fprintf(&sb, "%s+ (height %.3f)\n", indent, n.Height)
		first, second := n.Left, n.Right
		if d.minLeaf(second) < d.minLeaf(first) {
			first, second = second, first
		}
		walk(first, depth+1)
		walk(second, depth+1)
	}
	walk(d.Root(), 0)
	return sb.String()
}

func (d *Dendrogram) minLeaf(id int) int {
	n := d.Nodes[id]
	if n.Left < 0 {
		return id
	}
	a, b := d.minLeaf(n.Left), d.minLeaf(n.Right)
	if a < b {
		return a
	}
	return b
}
