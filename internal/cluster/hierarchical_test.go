package cluster

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"lbkeogh/internal/dist"
	"lbkeogh/internal/ts"
)

// naiveAgglomerative is an O(m³) reference implementation: repeatedly merge
// the pair of clusters with the smallest linkage distance, recomputing
// linkage distances from the full pairwise matrix.
func naiveAgglomerative(m int, d func(i, j int) float64, linkage Linkage) ([]float64, [][]int) {
	type clust struct {
		members []int
	}
	base := make([][]float64, m)
	for i := range base {
		base[i] = make([]float64, m)
		for j := range base[i] {
			if i != j {
				base[i][j] = d(i, j)
			}
		}
	}
	link := func(a, b clust) float64 {
		switch linkage {
		case Single:
			best := math.Inf(1)
			for _, i := range a.members {
				for _, j := range b.members {
					best = math.Min(best, base[i][j])
				}
			}
			return best
		case Complete:
			best := math.Inf(-1)
			for _, i := range a.members {
				for _, j := range b.members {
					best = math.Max(best, base[i][j])
				}
			}
			return best
		default:
			var s float64
			for _, i := range a.members {
				for _, j := range b.members {
					s += base[i][j]
				}
			}
			return s / float64(len(a.members)*len(b.members))
		}
	}
	clusters := make([]clust, m)
	for i := range clusters {
		clusters[i] = clust{members: []int{i}}
	}
	var heights []float64
	var partitions [][]int // flattened sorted membership snapshots, one per K
	for len(clusters) > 1 {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := range clusters {
			for j := i + 1; j < len(clusters); j++ {
				if v := link(clusters[i], clusters[j]); v < best {
					bi, bj, best = i, j, v
				}
			}
		}
		heights = append(heights, best)
		merged := clust{members: append(append([]int{}, clusters[bi].members...), clusters[bj].members...)}
		clusters = append(clusters[:bj], clusters[bj+1:]...)
		clusters[bi] = merged
		groups := make([][]int, len(clusters))
		for i, c := range clusters {
			groups[i] = c.members
		}
		partitions = append(partitions, canonicalPartition(groups))
	}
	return heights, partitions
}

// canonicalPartition encodes a partition as a sorted "cluster id per element"
// labelling so two partitions compare equal iff they group identically.
func canonicalPartition(groups [][]int) []int {
	max := 0
	for _, g := range groups {
		for _, v := range g {
			if v+1 > max {
				max = v + 1
			}
		}
	}
	label := make([]int, max)
	for _, g := range groups {
		s := append([]int{}, g...)
		sort.Ints(s)
		rep := s[0]
		for _, v := range s {
			label[v] = rep
		}
	}
	return label
}

func testDistances(seed int64, m, n int) ([][]float64, func(i, j int) float64) {
	rng := ts.NewRand(seed)
	items := make([][]float64, m)
	for i := range items {
		items[i] = ts.RandomWalk(rng, n)
	}
	return items, func(i, j int) float64 { return dist.Euclidean(items[i], items[j], nil) }
}

func TestSingleItem(t *testing.T) {
	d := Agglomerative(1, func(i, j int) float64 { return 0 }, Average)
	if d.Root() != 0 || d.NLeaves != 1 {
		t.Fatalf("singleton dendrogram malformed: %+v", d)
	}
	if got := d.Frontier(1); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("Frontier(1) = %v", got)
	}
}

func TestDendrogramShape(t *testing.T) {
	_, df := testDistances(1, 17, 24)
	d := Agglomerative(17, df, Average)
	if len(d.Nodes) != 2*17-1 {
		t.Fatalf("node count = %d, want %d", len(d.Nodes), 2*17-1)
	}
	if d.Nodes[d.Root()].Size != 17 {
		t.Fatalf("root size = %d, want 17", d.Nodes[d.Root()].Size)
	}
	// Every leaf appears exactly once under the root.
	leaves := d.Leaves(d.Root())
	sort.Ints(leaves)
	for i, v := range leaves {
		if v != i {
			t.Fatalf("leaves = %v", leaves)
		}
	}
	// Sizes are consistent.
	for id := 17; id < len(d.Nodes); id++ {
		n := d.Nodes[id]
		if n.Size != d.Nodes[n.Left].Size+d.Nodes[n.Right].Size {
			t.Fatalf("node %d size inconsistent", id)
		}
		if n.Left >= id || n.Right >= id {
			t.Fatalf("node %d references a later node", id)
		}
	}
}

func TestMatchesNaiveReference(t *testing.T) {
	for _, linkage := range []Linkage{Average, Single, Complete} {
		for seed := int64(0); seed < 4; seed++ {
			m := 12
			_, df := testDistances(seed+10, m, 16)
			d := Agglomerative(m, df, linkage)

			wantHeights, wantPartitions := naiveAgglomerative(m, df, linkage)

			gotHeights := d.CutHeights()
			sortedGot := append([]float64{}, gotHeights...)
			sortedWant := append([]float64{}, wantHeights...)
			sort.Float64s(sortedGot)
			sort.Float64s(sortedWant)
			for i := range sortedGot {
				if math.Abs(sortedGot[i]-sortedWant[i]) > 1e-9 {
					t.Fatalf("%v seed %d: heights differ: %v vs %v", linkage, seed, sortedGot, sortedWant)
				}
			}
			// Partitions at every K must match the greedy reference.
			for k := 1; k < m; k++ {
				frontier := d.Frontier(k)
				groups := make([][]int, len(frontier))
				for i, id := range frontier {
					groups[i] = d.Leaves(id)
				}
				got := canonicalPartition(groups)
				want := wantPartitions[m-1-k]
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v seed %d K=%d: partition %v != %v", linkage, seed, k, got, want)
				}
			}
		}
	}
}

func TestFrontierSizes(t *testing.T) {
	_, df := testDistances(3, 20, 16)
	d := Agglomerative(20, df, Average)
	for k := 1; k <= 20; k++ {
		f := d.Frontier(k)
		if len(f) != k {
			t.Fatalf("Frontier(%d) has %d nodes", k, len(f))
		}
		// The frontier is a partition of the leaves.
		seen := map[int]bool{}
		for _, id := range f {
			for _, leaf := range d.Leaves(id) {
				if seen[leaf] {
					t.Fatalf("leaf %d in two frontier nodes", leaf)
				}
				seen[leaf] = true
			}
		}
		if len(seen) != 20 {
			t.Fatalf("Frontier(%d) covers %d leaves", k, len(seen))
		}
	}
}

func TestFrontierClamps(t *testing.T) {
	_, df := testDistances(4, 5, 8)
	d := Agglomerative(5, df, Average)
	if len(d.Frontier(0)) != 1 {
		t.Fatal("Frontier(0) should clamp to 1")
	}
	if len(d.Frontier(99)) != 5 {
		t.Fatal("Frontier(99) should clamp to NLeaves")
	}
}

func TestAverageLinkageMonotone(t *testing.T) {
	_, df := testDistances(5, 40, 32)
	d := Agglomerative(40, df, Average)
	// Parent height >= child height (reducibility of group-average linkage).
	for id := 40; id < len(d.Nodes); id++ {
		n := d.Nodes[id]
		for _, ch := range []int{n.Left, n.Right} {
			if d.Nodes[ch].Height > n.Height+1e-9 {
				t.Fatalf("node %d height %v below child %d height %v", id, n.Height, ch, d.Nodes[ch].Height)
			}
		}
	}
}

func TestClustersSeparateObviousGroups(t *testing.T) {
	// Two tight groups far apart must be the K=2 frontier split.
	rng := ts.NewRand(6)
	base1 := ts.RandomWalk(rng, 32)
	base2 := ts.RandomWalk(rng, 32)
	for i := range base2 {
		base2[i] += 100
	}
	var items [][]float64
	for i := 0; i < 5; i++ {
		items = append(items, ts.AddNoise(rng, base1, 0.01))
	}
	for i := 0; i < 5; i++ {
		items = append(items, ts.AddNoise(rng, base2, 0.01))
	}
	d := Agglomerative(len(items), func(i, j int) float64 {
		return dist.Euclidean(items[i], items[j], nil)
	}, Average)
	f := d.Frontier(2)
	got := map[int][]int{}
	for gi, id := range f {
		got[gi] = d.Leaves(id)
	}
	for _, leaves := range got {
		sort.Ints(leaves)
		first := leaves[0] < 5
		for _, l := range leaves {
			if (l < 5) != first {
				t.Fatalf("K=2 split mixes the groups: %v", got)
			}
		}
	}
}

func TestAgglomerativeMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on bad matrix size")
		}
	}()
	AgglomerativeMatrix(make([]float64, 3), 2, Average)
}

func TestRender(t *testing.T) {
	_, df := testDistances(30, 4, 8)
	d := Agglomerative(4, df, Average)
	out := d.Render([]string{"a", "b", "c", "d"})
	for _, want := range []string{"- a", "- b", "- c", "- d", "+ (height"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Without labels, leaf indices appear.
	out = d.Render(nil)
	if !strings.Contains(out, "leaf 0") || !strings.Contains(out, "leaf 3") {
		t.Fatalf("unlabelled render wrong:\n%s", out)
	}
	// Deterministic.
	if out != d.Render(nil) {
		t.Fatal("render not deterministic")
	}
	// Singleton renders its one leaf.
	s := Agglomerative(1, func(i, j int) float64 { return 0 }, Average)
	if got := s.Render(nil); !strings.Contains(got, "leaf 0") {
		t.Fatalf("singleton render: %q", got)
	}
}

func TestLinkageString(t *testing.T) {
	if Average.String() != "average" || Single.String() != "single" || Complete.String() != "complete" {
		t.Fatal("Linkage.String broken")
	}
	if Linkage(9).String() != "Linkage(9)" {
		t.Fatal("unknown linkage String broken")
	}
}
