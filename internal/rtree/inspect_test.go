package rtree

import (
	"testing"

	"lbkeogh/internal/ts"
)

func TestInspect(t *testing.T) {
	rng := ts.NewRand(5)
	points := make([][]float64, 150)
	for i := range points {
		p := make([]float64, 4)
		for j := range p {
			p[j] = rng.Float64()
		}
		points[i] = p
	}
	tr := New(points, 16)
	h := tr.Inspect()
	if h.Points != 150 || h.Nodes != len(tr.nodes) {
		t.Errorf("Points/Nodes = %d/%d, want 150/%d", h.Points, h.Nodes, len(tr.nodes))
	}
	if h.Height != tr.Height() {
		t.Errorf("Height = %d, want %d", h.Height, tr.Height())
	}
	if h.Leaves == 0 {
		t.Fatal("no leaves")
	}
	var items int
	for _, nd := range tr.nodes {
		items += len(nd.items)
	}
	if int(h.MeanLeafOccupancy*float64(h.Leaves)+0.5) != items {
		t.Errorf("mean occupancy %v over %d leaves != %d items", h.MeanLeafOccupancy, h.Leaves, items)
	}
	if h.MinLeafOccupancy <= 0 || h.MinLeafOccupancy > h.MaxLeafOccupancy || h.MaxLeafOccupancy > 16 {
		t.Errorf("occupancy range [%d,%d] broken", h.MinLeafOccupancy, h.MaxLeafOccupancy)
	}
	if h.MeanSiblingOverlap < 0 || h.MeanSiblingOverlap > h.MaxSiblingOverlap || h.MaxSiblingOverlap > 1 {
		t.Errorf("overlap mean %v max %v outside [0, max] / [0,1]",
			h.MeanSiblingOverlap, h.MaxSiblingOverlap)
	}
}

func TestSiblingOverlap(t *testing.T) {
	a := node{lo: []float64{0, 0}, hi: []float64{1, 1}}
	b := node{lo: []float64{2, 0}, hi: []float64{3, 1}}
	// Disjoint in dim 0 (overlap 0), identical in dim 1 (overlap 1).
	if got := siblingOverlap(a, b); got != 0.5 {
		t.Errorf("siblingOverlap = %v, want 0.5", got)
	}
	// Identical boxes overlap fully.
	if got := siblingOverlap(a, a); got != 1 {
		t.Errorf("identical boxes overlap = %v, want 1", got)
	}
	// Point boxes at the same spot: union length 0 counts as total overlap.
	p := node{lo: []float64{5, 5}, hi: []float64{5, 5}}
	if got := siblingOverlap(p, p); got != 1 {
		t.Errorf("coincident point boxes overlap = %v, want 1", got)
	}
}

func TestInspectSingleLeaf(t *testing.T) {
	tr := New([][]float64{{1, 2}, {3, 4}}, 16)
	h := tr.Inspect()
	if h.Leaves != 1 || h.Height != 1 || h.MeanSiblingOverlap != 0 {
		t.Errorf("single-leaf health = %+v", h)
	}
}
