package rtree

import (
	"math"
	"testing"
	"testing/quick"

	"lbkeogh/internal/ts"
)

func randomPoints(seed int64, m, d int) [][]float64 {
	rng := ts.NewRand(seed)
	pts := make([][]float64, m)
	for i := range pts {
		pts[i] = ts.RandomSeries(rng, d)
	}
	return pts
}

func euclid(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return math.Sqrt(acc)
}

// pointBound adapts plain point-to-box MINDIST for NN testing.
func pointBound(q []float64) func(lo, hi []float64) float64 {
	w := make([]float64, len(q))
	for i := range w {
		w[i] = 1
	}
	return func(lo, hi []float64) float64 {
		return MinDistBox(q, q, lo, hi, w)
	}
}

func nnSearch(t *Tree, q []float64) (int, float64) {
	bestIdx, best := -1, math.Inf(1)
	t.Search(pointBound(q), math.Inf(1), func(id int, lb, bsf float64) float64 {
		if d := euclid(q, t.points[id]); d < best {
			best, bestIdx = d, id
		}
		return best
	})
	return bestIdx, best
}

func linearNN(pts [][]float64, q []float64) (int, float64) {
	bestIdx, best := -1, math.Inf(1)
	for i, p := range pts {
		if d := euclid(q, p); d < best {
			best, bestIdx = d, i
		}
	}
	return bestIdx, best
}

func TestNNMatchesLinear(t *testing.T) {
	pts := randomPoints(1, 300, 6)
	tree := New(pts, 8)
	rng := ts.NewRand(2)
	for trial := 0; trial < 40; trial++ {
		q := ts.RandomSeries(rng, 6)
		wi, wd := linearNN(pts, q)
		gi, gd := nnSearch(tree, q)
		if gi != wi || math.Abs(gd-wd) > 1e-12 {
			t.Fatalf("trial %d: (%d,%v) != (%d,%v)", trial, gi, gd, wi, wd)
		}
	}
}

func TestSearchPrunes(t *testing.T) {
	pts := randomPoints(3, 1000, 4)
	tree := New(pts, 8)
	rng := ts.NewRand(4)
	q := ts.RandomSeries(rng, 4)
	visited := 0
	tree.Search(pointBound(q), math.Inf(1), func(id int, lb, bsf float64) float64 {
		visited++
		if d := euclid(q, pts[id]); d < bsf {
			return d
		}
		return bsf
	})
	if visited >= 1000 {
		t.Fatalf("no pruning: visited %d", visited)
	}
}

func TestMBRsContainPoints(t *testing.T) {
	pts := randomPoints(5, 200, 5)
	tree := New(pts, 4)
	var walk func(id int) []int
	walk = func(id int) []int {
		n := tree.nodes[id]
		if n.left < 0 {
			for _, pid := range n.items {
				for k, v := range pts[pid] {
					if v < n.lo[k]-1e-12 || v > n.hi[k]+1e-12 {
						t.Fatalf("point %d escapes its leaf MBR", pid)
					}
				}
			}
			return n.items
		}
		items := append(walk(n.left), walk(n.right)...)
		for _, pid := range items {
			for k, v := range pts[pid] {
				if v < n.lo[k]-1e-12 || v > n.hi[k]+1e-12 {
					t.Fatalf("point %d escapes an internal MBR", pid)
				}
			}
		}
		return items
	}
	all := walk(tree.root)
	if len(all) != 200 {
		t.Fatalf("tree covers %d points", len(all))
	}
	if tree.Size() != 200 {
		t.Fatal("Size wrong")
	}
	if h := tree.Height(); h < 5 || h > 10 {
		t.Fatalf("height %d suspicious for 200 points, leaf 4", h)
	}
}

func TestMinDistBox(t *testing.T) {
	w := []float64{2, 3}
	// Overlapping intervals contribute 0.
	if d := MinDistBox([]float64{0, 0}, []float64{1, 1}, []float64{0.5, 0.5}, []float64{2, 2}, w); d != 0 {
		t.Fatalf("overlap should be 0, got %v", d)
	}
	// Separated: gaps (1, 2), weighted 2·1 + 3·4 = 14.
	got := MinDistBox([]float64{0, 0}, []float64{1, 1}, []float64{2, 3}, []float64{4, 5}, w)
	if math.Abs(got-math.Sqrt(14)) > 1e-12 {
		t.Fatalf("MinDistBox = %v, want sqrt(14)", got)
	}
	// Symmetric: query above the box.
	got = MinDistBox([]float64{5, 7}, []float64{6, 8}, []float64{2, 3}, []float64{4, 5}, w)
	if math.Abs(got-math.Sqrt(2*1+3*4)) > 1e-12 {
		t.Fatalf("upper-side MinDistBox = %v", got)
	}
}

// Property: MinDistBox lower-bounds the weighted distance from any interval
// query box to any point inside the MBR.
func TestMinDistBoxAdmissibleProperty(t *testing.T) {
	rng := ts.NewRand(6)
	f := func() bool {
		d := 4
		lo := make([]float64, d)
		hi := make([]float64, d)
		qlo := make([]float64, d)
		qhi := make([]float64, d)
		w := make([]float64, d)
		p := make([]float64, d)
		for k := 0; k < d; k++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			lo[k], hi[k] = math.Min(a, b), math.Max(a, b)
			a, b = rng.NormFloat64(), rng.NormFloat64()
			qlo[k], qhi[k] = math.Min(a, b), math.Max(a, b)
			w[k] = rng.Float64()*3 + 0.1
			p[k] = lo[k] + rng.Float64()*(hi[k]-lo[k]) // inside the MBR
		}
		// True weighted distance from p to the query box.
		var acc float64
		for k := 0; k < d; k++ {
			var gap float64
			if p[k] > qhi[k] {
				gap = p[k] - qhi[k]
			} else if p[k] < qlo[k] {
				gap = qlo[k] - p[k]
			}
			acc += w[k] * gap * gap
		}
		return MinDistBox(qlo, qhi, lo, hi, w) <= math.Sqrt(acc)+1e-9
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":  func() { New(nil, 4) },
		"zeroD":  func() { New([][]float64{{}}, 4) },
		"ragged": func() { New([][]float64{{1}, {1, 2}}, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSingleton(t *testing.T) {
	tree := New([][]float64{{3, 4}}, 4)
	gi, gd := nnSearch(tree, []float64{0, 0})
	if gi != 0 || math.Abs(gd-5) > 1e-12 {
		t.Fatalf("singleton NN = (%d,%v)", gi, gd)
	}
}

// Property: exact NN across random shapes and leaf sizes.
func TestNNProperty(t *testing.T) {
	f := func(seed int64, mSeed, lSeed uint8) bool {
		m := 2 + int(mSeed)%60
		leaf := 1 + int(lSeed)%9
		pts := randomPoints(seed, m, 3)
		tree := New(pts, leaf)
		q := ts.RandomSeries(ts.NewRand(seed+1), 3)
		wi, wd := linearNN(pts, q)
		gi, gd := nnSearch(tree, q)
		return gi == wi && math.Abs(gd-wd) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
