// Package rtree implements a static, bulk-loaded R-tree over points in
// D-dimensional space — the index structure of Vlachos et al. [37], which
// the paper defers to for indexing DTW envelopes. The DTW index path stores
// each object's PAA means as a point; queries arrive as sets of envelope
// boxes, and the caller supplies the admissible bound between a node's MBR
// and the query, so the tree itself stays metric-agnostic.
//
// Construction uses recursive median splits on the widest MBR dimension
// (a bulk-loading scheme with the same flavour as STR): O(m log m), perfectly
// balanced, no insertion machinery — the collection is fixed at build time,
// like everything else in this library.
package rtree

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

type node struct {
	lo, hi      []float64 // MBR
	left, right int       // children node ids (-1 for leaves)
	items       []int     // leaf payload
}

// Tree is a static R-tree over a fixed point set.
type Tree struct {
	points [][]float64
	nodes  []node
	root   int
}

// New bulk-loads a tree over points (all of one dimensionality) with at most
// leafSize points per leaf.
func New(points [][]float64, leafSize int) *Tree {
	if len(points) == 0 {
		panic("rtree: no points")
	}
	d := len(points[0])
	if d == 0 {
		panic("rtree: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			panic(fmt.Sprintf("rtree: point %d has dim %d, want %d", i, len(p), d))
		}
	}
	if leafSize < 1 {
		leafSize = 1
	}
	t := &Tree{points: points}
	ids := make([]int, len(points))
	for i := range ids {
		ids[i] = i
	}
	t.root = t.build(ids, leafSize)
	return t
}

// mbr computes the bounding box of the given point ids.
func (t *Tree) mbr(ids []int) (lo, hi []float64) {
	d := len(t.points[0])
	lo = make([]float64, d)
	hi = make([]float64, d)
	copy(lo, t.points[ids[0]])
	copy(hi, t.points[ids[0]])
	for _, id := range ids[1:] {
		for k, v := range t.points[id] {
			if v < lo[k] {
				lo[k] = v
			}
			if v > hi[k] {
				hi[k] = v
			}
		}
	}
	return lo, hi
}

func (t *Tree) build(ids []int, leafSize int) int {
	lo, hi := t.mbr(ids)
	if len(ids) <= leafSize {
		t.nodes = append(t.nodes, node{lo: lo, hi: hi, left: -1, right: -1, items: append([]int{}, ids...)})
		return len(t.nodes) - 1
	}
	// Split on the widest dimension at the median.
	widest := 0
	for k := range lo {
		if hi[k]-lo[k] > hi[widest]-lo[widest] {
			widest = k
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		pa, pb := t.points[ids[a]][widest], t.points[ids[b]][widest]
		if pa != pb {
			return pa < pb
		}
		return ids[a] < ids[b]
	})
	mid := len(ids) / 2
	idx := len(t.nodes)
	t.nodes = append(t.nodes, node{lo: lo, hi: hi, left: -1, right: -1})
	left := t.build(ids[:mid], leafSize)
	right := t.build(ids[mid:], leafSize)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// Size returns the number of indexed points.
func (t *Tree) Size() int { return len(t.points) }

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int {
	var depth func(id int) int
	depth = func(id int) int {
		n := t.nodes[id]
		if n.left < 0 {
			return 1
		}
		l, r := depth(n.left), depth(n.right)
		if r > l {
			l = r
		}
		return 1 + l
	}
	return depth(t.root)
}

type pqItem struct {
	bound float64
	node  int
}

type pq []pqItem

func (h pq) Len() int           { return len(h) }
func (h pq) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h pq) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pq) Push(x any)        { *h = append(*h, x.(pqItem)) }
func (h *pq) Pop() any {
	old := *h
	n := len(old) - 1
	it := old[n]
	*h = old[:n]
	return it
}

// Search drives a best-first search. bound(lo, hi) must return an admissible
// lower bound of the query's distance to ANY point inside the box [lo, hi]
// (for a single point, lo == hi == the point). Every point whose bound is
// below the current best-so-far is passed to visit, which returns the
// possibly-improved best-so-far; subtrees whose bound reaches it are pruned.
// Search returns the final best-so-far.
func (t *Tree) Search(bound func(lo, hi []float64) float64, bsf0 float64, visit func(id int, lb, bsf float64) float64) float64 {
	bsf := bsf0
	h := &pq{{bound: bound(t.nodes[t.root].lo, t.nodes[t.root].hi), node: t.root}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.bound >= bsf {
			break // smallest outstanding bound cannot improve
		}
		nd := t.nodes[it.node]
		if nd.left < 0 {
			// Visit leaf points in ascending bound order: each visit can
			// tighten the best-so-far and prune the rest of the leaf, so
			// order matters for how many points reach the (expensive) visit.
			type cand struct {
				id int
				lb float64
			}
			cands := make([]cand, 0, len(nd.items))
			for _, id := range nd.items {
				p := t.points[id]
				if lb := bound(p, p); lb < bsf {
					cands = append(cands, cand{id: id, lb: lb})
				}
			}
			sort.Slice(cands, func(a, b int) bool {
				if cands[a].lb != cands[b].lb {
					return cands[a].lb < cands[b].lb
				}
				return cands[a].id < cands[b].id
			})
			for _, c := range cands {
				if c.lb < bsf {
					bsf = visit(c.id, c.lb, bsf)
				}
			}
			continue
		}
		for _, ch := range []int{nd.left, nd.right} {
			c := t.nodes[ch]
			if b := bound(c.lo, c.hi); b < bsf {
				heap.Push(h, pqItem{bound: b, node: ch})
			}
		}
	}
	return bsf
}

// MinDistBox returns the admissible squared-gap lower bound between a query
// interval box [qlo, qhi] and an MBR [lo, hi] under per-dimension weights w:
// sqrt(sum_k w[k] · gap(k)²) where gap is the separation of the intervals in
// dimension k (0 when they overlap). This is the standard MINDIST
// generalized to interval queries, matching paa.LowerBound when the MBR is a
// single point.
func MinDistBox(qlo, qhi, lo, hi, w []float64) float64 {
	var acc float64
	for k := range qlo {
		var gap float64
		switch {
		case lo[k] > qhi[k]:
			gap = lo[k] - qhi[k]
		case hi[k] < qlo[k]:
			gap = qlo[k] - hi[k]
		}
		acc += w[k] * gap * gap
	}
	return math.Sqrt(acc)
}
