package rtree

// Health is a structural self-report of a built tree, serving the index
// introspection endpoint. The diagnostic that matters for pruning power is
// sibling-MBR overlap: heavily overlapping siblings force the best-first
// search to descend both sides.
type Health struct {
	// Points, Nodes, Leaves and Height size the structure.
	Points int `json:"points"`
	Nodes  int `json:"nodes"`
	Leaves int `json:"leaves"`
	Height int `json:"height"`
	// Leaf occupancy (points per leaf). Bulk loading keeps this tight; a wide
	// spread would indicate a degenerate split.
	MinLeafOccupancy  int     `json:"min_leaf_occupancy"`
	MaxLeafOccupancy  int     `json:"max_leaf_occupancy"`
	MeanLeafOccupancy float64 `json:"mean_leaf_occupancy"`
	// Sibling overlap: for each internal node, the overlap fraction between
	// its two children's MBRs, averaged over dimensions (per dimension:
	// intersection length / union length, 1 when the union is a point).
	// 0 = disjoint siblings everywhere, 1 = identical boxes.
	MeanSiblingOverlap float64 `json:"mean_sibling_overlap"`
	MaxSiblingOverlap  float64 `json:"max_sibling_overlap"`
}

// siblingOverlap computes the dimension-averaged overlap fraction of two
// boxes.
func siblingOverlap(a, b node) float64 {
	var acc float64
	d := len(a.lo)
	for k := 0; k < d; k++ {
		un := max64(a.hi[k], b.hi[k]) - min64(a.lo[k], b.lo[k])
		if un <= 0 {
			// Both intervals collapse to the same point: total overlap.
			acc++
			continue
		}
		ov := min64(a.hi[k], b.hi[k]) - max64(a.lo[k], b.lo[k])
		if ov > 0 {
			acc += ov / un
		}
	}
	return acc / float64(d)
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Inspect walks the tree once and returns its structural health report.
func (t *Tree) Inspect() Health {
	h := Health{Points: len(t.points), Nodes: len(t.nodes), Height: t.Height()}
	var (
		leafItems  int
		overlapSum float64
		internal   int
	)
	var walk func(id int)
	walk = func(id int) {
		nd := t.nodes[id]
		if nd.left < 0 {
			h.Leaves++
			leafItems += len(nd.items)
			if h.MinLeafOccupancy == 0 || len(nd.items) < h.MinLeafOccupancy {
				h.MinLeafOccupancy = len(nd.items)
			}
			if len(nd.items) > h.MaxLeafOccupancy {
				h.MaxLeafOccupancy = len(nd.items)
			}
			return
		}
		internal++
		ov := siblingOverlap(t.nodes[nd.left], t.nodes[nd.right])
		overlapSum += ov
		if ov > h.MaxSiblingOverlap {
			h.MaxSiblingOverlap = ov
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	if h.Leaves > 0 {
		h.MeanLeafOccupancy = float64(leafItems) / float64(h.Leaves)
	}
	if internal > 0 {
		h.MeanSiblingOverlap = overlapSum / float64(internal)
	}
	return h
}
