package segment

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const (
	testN = 24
	testD = 6
)

func ingestBatch(t *testing.T, db *DB, from, count int) {
	t.Helper()
	rows := make([][]float64, count)
	labels := make([]int64, count)
	for i := range rows {
		rows[i] = testSeries(from+i, testN)
		labels[i] = int64(from + i)
	}
	first, err := db.Ingest(rows, labels)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if first != from {
		t.Fatalf("Ingest first ID = %d, want %d", first, from)
	}
}

func verifyAll(t *testing.T, db *DB, total int) {
	t.Helper()
	s := db.Acquire()
	defer s.Release()
	if s.Len() != total {
		t.Fatalf("Len = %d, want %d", s.Len(), total)
	}
	for id := 0; id < total; id++ {
		if !floatsEqual(s.Series(id), testSeries(id, testN)) {
			t.Fatalf("record %d content mismatch", id)
		}
		if s.Label(id) != int64(id) {
			t.Fatalf("record %d label mismatch", id)
		}
	}
}

func TestDBIngestCompactReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, testD)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 0 || db.Generation() != 0 {
		t.Fatalf("fresh store: len=%d gen=%d", db.Len(), db.Generation())
	}

	for i := 0; i < 5; i++ {
		ingestBatch(t, db, i*40, 40)
	}
	verifyAll(t, db, 200)
	if got := db.Stats(); len(got.Segments) != 5 || got.Ingests != 5 || got.IngestedRecords != 200 {
		t.Fatalf("stats after ingest: %+v", got)
	}

	// Fetch contract: copies, counted, hooked.
	var hooked atomic.Int64
	db.SetFetchHook(func(id int, dur time.Duration) { hooked.Add(1) })
	db.ResetReads()
	for id := 0; id < 200; id += 17 {
		if !floatsEqual(db.Fetch(id), testSeries(id, testN)) {
			t.Fatalf("Fetch(%d) mismatch", id)
		}
	}
	wantReads := 0
	for id := 0; id < 200; id += 17 {
		wantReads++
	}
	if db.Reads() != wantReads || hooked.Load() != int64(wantReads) {
		t.Fatalf("reads=%d hooked=%d, want %d", db.Reads(), hooked.Load(), wantReads)
	}

	// Compact everything into one segment; IDs and contents must not move.
	merged, err := db.Compact(0)
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if merged != 5 {
		t.Fatalf("merged %d segments, want 5", merged)
	}
	verifyAll(t, db, 200)
	st := db.Stats()
	if len(st.Segments) != 1 || st.Records != 200 || st.Compactions != 1 {
		t.Fatalf("stats after compact: %+v", st)
	}

	// Replaced files are unlinked once no snapshot holds them.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segFiles := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) == segSuffix {
			segFiles++
		}
	}
	if segFiles != 1 {
		t.Fatalf("%d segment files on disk after compaction, want 1", segFiles)
	}

	// A compaction with nothing to merge is a no-op.
	if merged, err := db.Compact(10); err != nil || merged != 0 {
		t.Fatalf("no-op compact: merged=%d err=%v", merged, err)
	}

	// Reopen from the manifest.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(dir, testD)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	verifyAll(t, db2, 200)
	ingestBatch(t, db2, 200, 10)
	verifyAll(t, db2, 210)
}

func TestDBCompactPartialRuns(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, testD)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// small(10) small(10) big(50) small(10) small(10) small(10)
	sizes := []int{10, 10, 50, 10, 10, 10}
	from := 0
	for _, sz := range sizes {
		ingestBatch(t, db, from, sz)
		from += sz
	}
	merged, err := db.Compact(20)
	if err != nil {
		t.Fatal(err)
	}
	if merged != 5 {
		t.Fatalf("merged %d, want 5 (two runs of 2 and 3)", merged)
	}
	st := db.Stats()
	if len(st.Segments) != 3 {
		t.Fatalf("%d segments after compact, want 3 (merged, big, merged)", len(st.Segments))
	}
	if st.Segments[0].Records != 20 || st.Segments[1].Records != 50 || st.Segments[2].Records != 30 {
		t.Fatalf("segment sizes %+v", st.Segments)
	}
	verifyAll(t, db, from)
}

func TestSnapshotRowsAndFeatures(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, testD)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingestBatch(t, db, 0, 30)
	ingestBatch(t, db, 30, 30)

	s := db.Acquire()
	defer s.Release()
	rows := s.Rows()
	labels := s.Labels()
	mags, paas := s.Features()
	if len(rows) != 60 || len(labels) != 60 || len(mags) != 60 || len(paas) != 60 {
		t.Fatalf("lengths: %d/%d/%d/%d", len(rows), len(labels), len(mags), len(paas))
	}
	for id := 0; id < 60; id++ {
		want := testSeries(id, testN)
		if !floatsEqual(rows[id], want) {
			t.Fatalf("row %d mismatch", id)
		}
		if labels[id] != id {
			t.Fatalf("label %d mismatch", id)
		}
		wm, wp := Features(want, testD)
		if !floatsEqual(mags[id], wm) || !floatsEqual(paas[id], wp) {
			t.Fatalf("features %d mismatch", id)
		}
	}
}

// TestDBConcurrentCompactSwap is the satellite race test: one goroutine
// ingesting and compacting (manifest swaps, segment retirement) while N
// reader goroutines fetch and verify record contents. Run under -race. It
// asserts no torn reads (every fetched record matches its deterministic
// content) and exact read-count reconciliation afterward.
func TestDBConcurrentCompactSwap(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, testD)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingestBatch(t, db, 0, 50)

	const readers = 8
	stop := make(chan struct{})
	var fetches atomic.Int64
	var wg sync.WaitGroup

	db.ResetReads()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Alternate the two read planes: one-shot Fetch (copying,
				// counted) and snapshot views (zero-copy, pinned).
				s := db.Acquire()
				total := s.Len()
				id := i % total
				if got := s.Series(id); !floatsEqual(got, testSeries(id, testN)) {
					s.Release()
					t.Errorf("torn/stale snapshot read at id %d", id)
					return
				}
				s.Release()
				id = (i * 7) % total
				if got := db.Fetch(id); !floatsEqual(got, testSeries(id, testN)) {
					t.Errorf("torn Fetch read at id %d", id)
					return
				}
				fetches.Add(1)
				i++
			}
		}(g * 1000)
	}

	// Writer goroutine: grow and compact, swapping generations under load.
	next := 50
	for round := 0; round < 20; round++ {
		rows := make([][]float64, 25)
		labels := make([]int64, 25)
		for i := range rows {
			rows[i] = testSeries(next+i, testN)
			labels[i] = int64(next + i)
		}
		if _, err := db.Ingest(rows, labels); err != nil {
			t.Fatalf("round %d ingest: %v", round, err)
		}
		next += 25
		if round%3 == 2 {
			if _, err := db.Compact(1 << 20); err != nil {
				t.Fatalf("round %d compact: %v", round, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	if t.Failed() {
		return
	}
	if got, want := int64(db.Reads()), fetches.Load(); got != want {
		t.Fatalf("read accounting: store counted %d, readers made %d", got, want)
	}
	verifyAll(t, db, next)
	if db.Stats().Generation < 20 {
		t.Fatalf("generation %d, want >= 20 swaps", db.Stats().Generation)
	}
}
