//go:build linux

package segment

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mincoreResident counts the resident bytes of a mapping via the mincore
// syscall: one output byte per page, bit 0 set when the page is in core.
// Raw syscall — the repo carries no dependency for x/sys, and syscall
// exposes no Mincore wrapper on linux.
func mincoreResident(data []byte) (int64, error) {
	if len(data) == 0 {
		return 0, nil
	}
	page := int64(os.Getpagesize())
	pages := (int64(len(data)) + page - 1) / page
	vec := make([]byte, pages)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&data[0])), uintptr(len(data)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, fmt.Errorf("segment: mincore: %w", errno)
	}
	var resident int64
	for i, v := range vec {
		if v&1 == 0 {
			continue
		}
		// The final page may be a partial one.
		if int64(i) == pages-1 {
			resident += int64(len(data)) - int64(i)*page
		} else {
			resident += page
		}
	}
	return resident, nil
}
