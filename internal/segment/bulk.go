package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lbkeogh/internal/obs/storeobs"
)

// BulkWriter streams a large ingest into a store directory, cutting a new
// segment every perSegment records and committing the whole batch with one
// manifest swap at Close. It appends to an existing store (shape parameters
// must match) or initializes an empty one. Unlike DB.Ingest it never opens
// readers or builds snapshots, so a million-record load costs only
// sequential writes.
//
// Not safe for concurrent use; parallel pipelines precompute features in
// workers and funnel through one BulkWriter (see cmd/shapeingest).
type BulkWriter struct {
	dir        string
	n, d       int
	perSegment int64

	cur      *Writer
	seq      int64
	gen      int64
	segs     []ManifestSegment
	total    int64 // records in finished segments, preexisting included
	preexist int64 // records already in the store when the run began
	done     bool

	jrn          *storeobs.Journal
	segStart     time.Time
	bytesWritten int64 // finished segment files, this run
}

// SetJournal attaches a storage event journal: every sealed segment and the
// final manifest swap are recorded (and mirrored to the journal's logger),
// which is how shapeingest reports bulk progress structurally.
func (b *BulkWriter) SetJournal(j *storeobs.Journal) { b.jrn = j }

// BytesWritten returns the bytes of finished segment files this run wrote.
func (b *BulkWriter) BytesWritten() int64 { return b.bytesWritten }

// NewBulkWriter opens dir for bulk ingest of series of length n with d
// feature dims, cutting segments at perSegment records (min 1). If dir
// already holds a store, n and d must match it and new segments append
// after the existing ones.
func NewBulkWriter(dir string, n, d int, perSegment int64) (*BulkWriter, error) {
	if perSegment < 1 {
		return nil, fmt.Errorf("segment: per-segment record count %d < 1", perSegment)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	m, ok, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	b := &BulkWriter{dir: dir, n: n, d: d, perSegment: perSegment}
	if ok {
		if m.SeriesLen != n || m.Dims != d {
			return nil, fmt.Errorf("segment: store is n=%d d=%d, ingest is n=%d d=%d",
				m.SeriesLen, m.Dims, n, d)
		}
		b.gen = m.Generation
		b.segs = append(b.segs, m.Segments...)
		for _, s := range m.Segments {
			b.total += s.Records
			if seq := segSeq(s.File); seq >= b.seq {
				b.seq = seq + 1
			}
		}
		b.preexist = b.total
	}
	return b, nil
}

// Count returns the number of records appended by this bulk run.
func (b *BulkWriter) Count() int64 {
	return b.Total() - b.preexist
}

// Total returns the record count the store will hold after Close.
func (b *BulkWriter) Total() int64 {
	n := b.total
	if b.cur != nil {
		n += b.cur.Count()
	}
	return n
}

// Add appends one record, computing its feature columns inline.
func (b *BulkWriter) Add(series []float64, label int64) error {
	if err := b.roll(); err != nil {
		return err
	}
	return b.cur.Add(series, label)
}

// AddPrecomputed appends one record with features computed elsewhere.
func (b *BulkWriter) AddPrecomputed(series, mags, paas []float64, label int64) error {
	if err := b.roll(); err != nil {
		return err
	}
	return b.cur.AddPrecomputed(series, mags, paas, label)
}

// roll cuts the current segment when full and starts the next one.
func (b *BulkWriter) roll() error {
	if b.done {
		return fmt.Errorf("segment: bulk writer already closed")
	}
	if b.cur != nil && b.cur.Count() >= b.perSegment {
		if err := b.finishSegment(); err != nil {
			return err
		}
	}
	if b.cur == nil {
		w, err := NewWriter(filepath.Join(b.dir, segFileName(b.seq)), b.n, b.d)
		if err != nil {
			return err
		}
		b.cur = w
		b.segStart = time.Now()
	}
	return nil
}

func (b *BulkWriter) finishSegment() error {
	count := b.cur.Count()
	if err := b.cur.Close(); err != nil {
		return err
	}
	name := segFileName(b.seq)
	b.segs = append(b.segs, ManifestSegment{File: name, Records: count})
	b.total += count
	b.seq++
	b.cur = nil
	var size int64
	if info, err := os.Stat(filepath.Join(b.dir, name)); err == nil {
		size = info.Size()
	}
	b.bytesWritten += size
	b.jrn.Record(storeobs.Event{
		Kind:            storeobs.EventSegmentSealed,
		Segment:         name,
		Records:         count,
		Bytes:           size,
		DurationSeconds: time.Since(b.segStart).Seconds(),
	})
	return nil
}

// Abort discards the in-progress segment. Already-finished segment files
// remain on disk but are never named by a manifest, so a reopened store
// ignores them.
func (b *BulkWriter) Abort() {
	if b.done {
		return
	}
	b.done = true
	if b.cur != nil {
		b.cur.Abort()
		b.cur = nil
	}
}

// Close finishes the last segment and atomically publishes the manifest.
// Closing a bulk run that appended nothing to an empty store is an error.
func (b *BulkWriter) Close() error {
	if b.done {
		return fmt.Errorf("segment: bulk writer already closed")
	}
	b.done = true
	if b.cur != nil {
		if b.cur.Count() == 0 {
			b.cur.Abort()
			b.cur = nil
		} else if err := b.finishSegment(); err != nil {
			return err
		}
	}
	if len(b.segs) == 0 {
		return fmt.Errorf("segment: bulk ingest wrote no records")
	}
	if err := WriteManifest(b.dir, Manifest{
		Generation: b.gen + 1,
		SeriesLen:  b.n,
		Dims:       b.d,
		Segments:   b.segs,
	}); err != nil {
		return err
	}
	b.jrn.Record(storeobs.Event{
		Kind:       storeobs.EventManifestSwap,
		Generation: b.gen + 1,
		Records:    b.total,
		Note:       fmt.Sprintf("%d segments", len(b.segs)),
	})
	return nil
}
