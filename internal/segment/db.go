package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lbkeogh/internal/obs/storeobs"
)

// Snapshot is an immutable view of the store at one generation: an ordered
// list of open segments plus the global-ID prefix sums. Snapshots are
// reference counted; holding one guarantees every record view stays mapped
// even while ingest and compaction publish newer generations.
type Snapshot struct {
	segs   []*Reader
	starts []int // starts[i] = global ID of segs[i]'s first record
	total  int
	gen    int64

	refs atomic.Int64

	// jrn, when set, receives the snapshot_release event as this generation
	// retires (last reference released). born anchors its lifetime.
	jrn  atomic.Pointer[storeobs.Journal]
	born time.Time

	rowsOnce sync.Once
	rows     [][]float64
	labels   []int

	featOnce sync.Once
	mags     [][]float64
	paas     [][]float64
}

func newSnapshot(segs []*Reader, gen int64) *Snapshot {
	s := &Snapshot{segs: segs, gen: gen, starts: make([]int, len(segs)), born: time.Now()}
	for i, r := range segs {
		r.retain()
		s.starts[i] = s.total
		s.total += r.Len()
	}
	s.refs.Store(1)
	return s
}

// tryAcquire takes a reference unless the snapshot already hit zero (it is
// being torn down and must not resurrect).
func (s *Snapshot) tryAcquire() bool {
	for {
		r := s.refs.Load()
		if r <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release drops the caller's reference. When the last reference goes, every
// segment the snapshot pinned is released (and closed if no newer snapshot
// still carries it).
func (s *Snapshot) Release() {
	if s.refs.Add(-1) == 0 {
		for _, r := range s.segs {
			r.release()
		}
		if j := s.jrn.Load(); j != nil {
			j.Record(storeobs.Event{
				Kind:            storeobs.EventSnapshotRelease,
				Generation:      s.gen,
				Records:         int64(s.total),
				DurationSeconds: time.Since(s.born).Seconds(),
			})
		}
	}
}

// Len returns the number of records visible in this snapshot.
func (s *Snapshot) Len() int { return s.total }

// Generation returns the manifest generation this snapshot reflects.
func (s *Snapshot) Generation() int64 { return s.gen }

// NumSegments returns how many segment files back this snapshot.
func (s *Snapshot) NumSegments() int { return len(s.segs) }

// MappedBytes sums the live mappings across the snapshot's segments.
func (s *Snapshot) MappedBytes() int64 {
	var n int64
	for _, r := range s.segs {
		n += r.MappedBytes()
	}
	return n
}

// Segments describes the snapshot's segments for introspection.
func (s *Snapshot) Segments() []ManifestSegment {
	out := make([]ManifestSegment, len(s.segs))
	for i, r := range s.segs {
		out[i] = ManifestSegment{File: filepath.Base(r.Path()), Records: int64(r.Len())}
	}
	return out
}

// locate maps a global ID to its segment and local index.
func (s *Snapshot) locate(id int) (*Reader, int) {
	k := sort.SearchInts(s.starts, id+1) - 1
	return s.segs[k], id - s.starts[k]
}

// Series returns record id's series as a view valid while the snapshot is
// held (zero-copy under mmap on little-endian platforms).
//
//lbkeogh:hotpath
func (s *Snapshot) Series(id int) []float64 {
	r, i := s.locate(id)
	return r.Series(i)
}

// Label returns record id's metadata label.
func (s *Snapshot) Label(id int) int64 {
	r, i := s.locate(id)
	return r.Label(i)
}

// Rows materializes the snapshot as a []row slice-of-views (the shape the
// in-heap search plane expects). Built lazily once per snapshot; the rows
// alias the mappings and are valid while the snapshot is held.
func (s *Snapshot) Rows() [][]float64 {
	s.rowsOnce.Do(func() {
		s.rows = make([][]float64, s.total)
		s.labels = make([]int, s.total)
		i := 0
		for _, r := range s.segs {
			for j := 0; j < r.Len(); j++ {
				s.rows[i] = r.Series(j)
				s.labels[i] = int(r.Label(j))
				i++
			}
		}
	})
	return s.rows
}

// Labels returns per-record labels, built alongside Rows.
func (s *Snapshot) Labels() []int {
	s.Rows()
	return s.labels
}

// Features returns the stored FFT-magnitude and PAA columns as row views,
// letting an index build skip recomputing what ingest already paid for.
func (s *Snapshot) Features() (mags, paas [][]float64) {
	s.featOnce.Do(func() {
		s.mags = make([][]float64, s.total)
		s.paas = make([][]float64, s.total)
		i := 0
		for _, r := range s.segs {
			for j := 0; j < r.Len(); j++ {
				s.mags[i] = r.Magnitudes(j)
				s.paas[i] = r.PAA(j)
				i++
			}
		}
	})
	return s.mags, s.paas
}

// DB is a growable, manifest-managed store of segments. Reads go through
// reference-counted snapshots (Acquire/Release) or the one-shot Fetch, so
// Ingest and Compact can swap the live set with a single atomic pointer
// store: in-flight readers keep their generation mapped until they finish.
//
// DB implements the index.SeriesStore contract (Fetch/Len/Reads/ResetReads)
// plus SetFetchHook, so the index layer's disk-read accounting reconciles
// exactly with the store's own counters.
type DB struct {
	dir  string
	dims int // requested feature dims for the first segment of an empty store

	// mu serializes writers (Ingest, Compact, Close). Readers never take it.
	mu      sync.Mutex
	nextSeq int64
	closed  bool

	cur atomic.Pointer[Snapshot]

	reads           atomic.Int64
	ingests         atomic.Int64
	compactions     atomic.Int64
	ingestedRecords atomic.Int64
	busy            atomic.Int64 // in-flight Ingest/Compact operations

	hook atomic.Pointer[func(id int, dur time.Duration)]

	// obs, when set, is the storage observability recorder (storeobs): the
	// fetch path loads it once per Fetch — the one nil check the disabled
	// path pays — and mutators journal lifecycle events through it.
	obs atomic.Pointer[storeobs.Recorder]

	// orphans lists .lbseg files present in dir but absent from the manifest
	// at open — ignored for serving, surfaced via Stats and the journal.
	orphans []string
}

// OpenDB opens (or initializes) the store in dir. dims is the feature
// dimensionality used when the first segment of an empty store is created;
// an existing manifest's dims always wins. opts apply to every segment open
// (e.g. WithoutDataCRC for fast restarts).
func OpenDB(dir string, dims int, opts ...OpenOption) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	cleanTemp(dir)
	m, ok, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, dims: dims}
	var segs []*Reader
	if ok {
		segs = make([]*Reader, 0, len(m.Segments))
		for _, ms := range m.Segments {
			r, err := Open(filepath.Join(dir, ms.File), opts...)
			if err != nil {
				for _, o := range segs {
					o.Close()
				}
				return nil, err
			}
			if int64(r.Len()) != ms.Records {
				r.Close()
				for _, o := range segs {
					o.Close()
				}
				return nil, fmt.Errorf("segment: %s: manifest says %d records, file has %d",
					ms.File, ms.Records, r.Len())
			}
			if seq := segSeq(ms.File); seq >= db.nextSeq {
				db.nextSeq = seq + 1
			}
			segs = append(segs, r)
		}
		db.dims = m.Dims
	}
	// Orphaned segment files — debris from a crash between segment write and
	// manifest swap, or from foreign tooling — are never served: the
	// manifest is the sole source of truth. They are recorded so operators
	// (Stats.Orphans, journal events once an observer attaches) see them
	// instead of silently losing the disk space.
	known := make(map[string]bool, len(m.Segments))
	for _, ms := range m.Segments {
		known[ms.File] = true
	}
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			name := e.Name()
			if strings.HasSuffix(name, segSuffix) && !known[name] {
				db.orphans = append(db.orphans, name)
			}
		}
	}
	sort.Strings(db.orphans)
	db.cur.Store(newSnapshot(segs, m.Generation))
	return db, nil
}

// SetObserver attaches a storage observability recorder: every live segment
// gets an access account, lifecycle events flow into the recorder's
// journal, and Fetch classifies cold/warm. Meant to be called once, right
// after OpenDB and before serving; nil detaches. With no observer attached
// the fetch path costs one atomic nil check.
func (db *DB) SetObserver(rec *storeobs.Recorder) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.obs.Store(rec)
	s := db.cur.Load()
	for _, r := range s.segs {
		r.setObserver(rec)
	}
	if rec == nil {
		return
	}
	j := rec.Journal()
	s.jrn.Store(j)
	for _, name := range db.orphans {
		j.Record(storeobs.Event{
			Kind:    storeobs.EventSegmentOrphaned,
			Segment: name,
			Note:    "not named by MANIFEST.json; ignored",
		})
	}
	j.Record(storeobs.Event{
		Kind:       storeobs.EventSnapshotPin,
		Generation: s.gen,
		Records:    int64(s.total),
	})
}

// Observer returns the attached storage recorder (nil when detached).
func (db *DB) Observer() *storeobs.Recorder { return db.obs.Load() }

// LinkTrace forwards a just-assigned trace ID to the storage recorder's
// pending fetch exemplars — the seam the index layer's finishTrace uses to
// attribute slow/cold store fetches to retained query traces.
func (db *DB) LinkTrace(id int64) {
	if rec := db.obs.Load(); rec != nil {
		rec.LinkTrace(id)
	}
}

// Acquire returns a reference-counted view of the current generation. The
// caller must Release it. Never nil, even for an empty store.
func (db *DB) Acquire() *Snapshot {
	for {
		s := db.cur.Load()
		if s.tryAcquire() {
			return s
		}
		// Lost a race with a swap that already drained this snapshot; the
		// pointer must have moved on.
	}
}

// Len returns the current record count.
func (db *DB) Len() int { return db.cur.Load().total }

// SeriesLen returns the store's series length (0 while empty).
func (db *DB) SeriesLen() int {
	s := db.cur.Load()
	if len(s.segs) == 0 {
		return 0
	}
	return s.segs[0].SeriesLen()
}

// Dims returns the feature dimensionality stored per record (the requested
// dims while the store is still empty).
func (db *DB) Dims() int {
	s := db.cur.Load()
	if len(s.segs) == 0 {
		return db.dims
	}
	return s.segs[0].Dims()
}

// Generation returns the current manifest generation.
func (db *DB) Generation() int64 { return db.cur.Load().gen }

// Fetch returns a private copy of record id's series, counting the read and
// firing the fetch hook — the index.SeriesStore contract (panic on a bad
// ID, like diskstore.Fetch). The copy is safe to hold across compactions.
func (db *DB) Fetch(id int) []float64 {
	start := time.Now()
	s := db.Acquire()
	// Deferred, not inline: a record-access panic (backend I/O error) must
	// not leak the snapshot reference and pin retired segments forever.
	defer s.Release()
	if id < 0 || id >= s.total {
		panic(fmt.Sprintf("segment: fetch id %d out of range [0,%d)", id, s.total))
	}
	rec := db.obs.Load() // the disabled-observability path pays this nil check only
	cold := false
	r, li := s.locate(id)
	if rec != nil {
		cold = !r.rawCovered(li)
	}
	v := r.Series(li)
	out := make([]float64, len(v))
	copy(out, v)
	db.reads.Add(1)
	dur := time.Since(start)
	if h := db.hook.Load(); h != nil {
		(*h)(id, dur)
	}
	if rec != nil {
		rec.ObserveFetch(cold, dur)
	}
	return out
}

// Reads returns the number of record fetches since the last reset.
func (db *DB) Reads() int { return int(db.reads.Load()) }

// ResetReads zeroes the fetch counter.
func (db *DB) ResetReads() { db.reads.Store(0) }

// SetFetchHook installs a per-fetch observer (id, latency), mirroring
// diskstore.SetFetchHook so the index layer's accounting path is identical
// for both stores. Pass nil to remove.
func (db *DB) SetFetchHook(h func(id int, dur time.Duration)) {
	if h == nil {
		db.hook.Store(nil)
		return
	}
	db.hook.Store(&h)
}

// Busy reports whether an Ingest or Compact is in flight (the /readyz
// "ingesting" reason).
func (db *DB) Busy() bool { return db.busy.Load() > 0 }

// Ingest appends a batch of series (with optional labels; nil labels default
// to each record's global ID, matching shapeingest) as one new segment and
// publishes the next generation. Returns the global ID of the first appended
// record.
func (db *DB) Ingest(series [][]float64, labels []int64) (firstID int, err error) {
	if len(series) == 0 {
		return 0, fmt.Errorf("segment: ingest of zero records")
	}
	if labels != nil && len(labels) != len(series) {
		return 0, fmt.Errorf("segment: %d labels for %d records", len(labels), len(series))
	}
	db.busy.Add(1)
	defer db.busy.Add(-1)
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, fmt.Errorf("segment: store is closed")
	}
	opStart := time.Now()

	old := db.cur.Load()
	n := db.SeriesLen()
	d := db.dims
	if n == 0 { // first ingest fixes the store's shape
		n = len(series[0])
		if d < 1 {
			d = 8
		}
		if d > n/2 {
			d = n / 2
		}
	} else {
		d = old.segs[0].Dims()
	}
	for i, row := range series {
		if len(row) != n {
			return 0, fmt.Errorf("segment: record %d has length %d, want %d", i, len(row), n)
		}
	}

	path := filepath.Join(db.dir, segFileName(db.nextSeq))
	w, err := NewWriter(path, n, d)
	if err != nil {
		return 0, err
	}
	for i, row := range series {
		lb := int64(old.total + i)
		if labels != nil {
			lb = labels[i]
		}
		if err := w.Add(row, lb); err != nil {
			w.Abort()
			return 0, err
		}
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	r, err := Open(path, WithoutDataCRC())
	if err != nil {
		os.Remove(path)
		return 0, err
	}

	segs := make([]*Reader, 0, len(old.segs)+1)
	segs = append(segs, old.segs...)
	segs = append(segs, r)
	next, err := db.publish(segs, old, n, d)
	if err != nil {
		r.Close()
		os.Remove(path)
		return 0, err
	}
	db.cur.Store(next)
	old.Release()
	db.nextSeq++
	db.dims = d
	db.ingests.Add(1)
	db.ingestedRecords.Add(int64(len(series)))
	if rec := db.obs.Load(); rec != nil {
		j := rec.Journal()
		j.Record(storeobs.Event{
			Kind:       storeobs.EventSegmentCreated,
			Segment:    filepath.Base(path),
			Generation: next.gen,
			Records:    int64(len(series)),
			Bytes:      r.size,
		})
		j.Record(storeobs.Event{
			Kind:            storeobs.EventIngestBatch,
			Generation:      next.gen,
			Records:         int64(len(series)),
			Bytes:           r.size,
			DurationSeconds: time.Since(opStart).Seconds(),
		})
	}
	return old.total, nil
}

// Compact merges every run of two or more adjacent segments smaller than
// minRecords into one segment each, preserving global ID order, and swaps
// the manifest. minRecords <= 0 merges the whole store into a single
// segment. Returns how many segments were merged away. Queries running
// against the old generation keep their mappings until they release.
func (db *DB) Compact(minRecords int64) (merged int, err error) {
	db.busy.Add(1)
	defer db.busy.Add(-1)
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, fmt.Errorf("segment: store is closed")
	}
	opStart := time.Now()

	old := db.cur.Load()
	small := func(r *Reader) bool {
		return minRecords <= 0 || int64(r.Len()) < minRecords
	}

	segs := make([]*Reader, 0, len(old.segs))
	var replaced []*Reader
	var created []string
	fail := func(e error) (int, error) {
		for _, p := range created {
			os.Remove(p)
		}
		return 0, e
	}
	for i := 0; i < len(old.segs); {
		j := i
		for j < len(old.segs) && small(old.segs[j]) {
			j++
		}
		if j-i >= 2 { // a run worth merging
			path := filepath.Join(db.dir, segFileName(db.nextSeq+int64(len(created))))
			r, err := db.mergeRun(path, old.segs[i:j])
			if err != nil {
				return fail(err)
			}
			created = append(created, path)
			replaced = append(replaced, old.segs[i:j]...)
			segs = append(segs, r)
			i = j
		} else {
			if j == i {
				j = i + 1 // segment too big to merge: carry over
			}
			segs = append(segs, old.segs[i:j]...)
			i = j
		}
	}
	if len(replaced) == 0 {
		return 0, nil
	}

	n := old.segs[0].SeriesLen()
	d := old.segs[0].Dims()
	next, err := db.publish(segs, old, n, d)
	if err != nil {
		for _, r := range segs {
			for _, c := range created {
				if r.Path() == c {
					r.Close()
				}
			}
		}
		return fail(err)
	}
	// Mark before releasing the old generation: the replaced files unlink
	// once the last snapshot holding them lets go (on Unix their mappings
	// stay valid until then).
	var replacedBytes, replacedRecords int64
	for _, r := range replaced {
		r.removeOnClose.Store(true)
		replacedBytes += r.size
		replacedRecords += r.m
	}
	if rec := db.obs.Load(); rec != nil {
		j := rec.Journal()
		var createdBytes int64
		for _, r := range segs {
			for _, c := range created {
				if r.Path() == c {
					createdBytes += r.size
					j.Record(storeobs.Event{
						Kind:       storeobs.EventSegmentCreated,
						Segment:    filepath.Base(c),
						Generation: next.gen,
						Records:    r.m,
						Bytes:      r.size,
					})
				}
			}
		}
		j.Record(storeobs.Event{
			Kind:            storeobs.EventSegmentCompacted,
			Generation:      next.gen,
			Records:         replacedRecords,
			Bytes:           createdBytes,
			ReclaimedBytes:  replacedBytes - createdBytes,
			DurationSeconds: time.Since(opStart).Seconds(),
			Note:            fmt.Sprintf("%d segments -> %d", len(replaced), len(created)),
		})
	}
	db.cur.Store(next)
	old.Release()
	db.nextSeq += int64(len(created))
	db.compactions.Add(1)
	return len(replaced), nil
}

// mergeRun streams a run of segments into one new file, record order
// preserved, reusing the stored feature columns.
func (db *DB) mergeRun(path string, run []*Reader) (*Reader, error) {
	n := run[0].SeriesLen()
	d := run[0].Dims()
	w, err := NewWriter(path, n, d)
	if err != nil {
		return nil, err
	}
	for _, src := range run {
		for i := 0; i < src.Len(); i++ {
			if err := w.AddPrecomputed(src.Series(i), src.Magnitudes(i), src.PAA(i), src.Label(i)); err != nil {
				w.Abort()
				return nil, err
			}
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return Open(path, WithoutDataCRC())
}

// publish builds the next-generation snapshot (retaining its readers) and
// durably writes its manifest. The caller swaps it live with db.cur.Store
// and releases the old snapshot — in that order, after any bookkeeping that
// must precede retiring the old generation. Caller holds db.mu.
func (db *DB) publish(segs []*Reader, old *Snapshot, n, d int) (*Snapshot, error) {
	next := newSnapshot(segs, old.gen+1)
	m := Manifest{
		Generation: next.gen,
		SeriesLen:  n,
		Dims:       d,
		Segments:   next.Segments(),
	}
	if err := WriteManifest(db.dir, m); err != nil {
		next.Release()
		return nil, err
	}
	if rec := db.obs.Load(); rec != nil {
		// Segments opened by this mutation get their accounts here (existing
		// accounts are reused), and the new generation carries the journal so
		// its eventual retirement is recorded.
		for _, r := range segs {
			r.setObserver(rec)
		}
		j := rec.Journal()
		next.jrn.Store(j)
		j.Record(storeobs.Event{
			Kind:       storeobs.EventManifestSwap,
			Generation: next.gen,
			Records:    int64(next.total),
			Note:       fmt.Sprintf("%d segments", len(segs)),
		})
		j.Record(storeobs.Event{
			Kind:       storeobs.EventSnapshotPin,
			Generation: next.gen,
			Records:    int64(next.total),
		})
	}
	return next, nil
}

// Stats is a point-in-time view of the store for metrics and introspection.
type Stats struct {
	Generation      int64
	Segments        []ManifestSegment
	Records         int
	MappedBytes     int64
	ZeroCopy        bool
	Reads           int64
	Ingests         int64
	Compactions     int64
	IngestedRecords int64
	Busy            bool
	// Orphans are .lbseg files found in the store directory but not named
	// by the manifest at open — ignored for serving, kept visible here.
	Orphans []string
}

// Stats snapshots the store's counters and current segment set.
func (db *DB) Stats() Stats {
	s := db.Acquire()
	defer s.Release()
	zc := len(s.segs) > 0
	for _, r := range s.segs {
		if !r.ZeroCopy() {
			zc = false
		}
	}
	return Stats{
		Generation:      s.gen,
		Segments:        s.Segments(),
		Records:         s.total,
		MappedBytes:     s.MappedBytes(),
		ZeroCopy:        zc,
		Reads:           db.reads.Load(),
		Ingests:         db.ingests.Load(),
		Compactions:     db.compactions.Load(),
		IngestedRecords: db.ingestedRecords.Load(),
		Busy:            db.busy.Load() > 0,
		Orphans:         db.orphans,
	}
}

// Close releases the store's reference on the live snapshot. Mappings held
// by outstanding snapshots stay valid until those are released.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	old := db.cur.Swap(newSnapshot(nil, -1))
	old.Release()
	return nil
}
