package segment

import (
	"fmt"
	"os"
	"sync"
)

// preadBackend serves records with positioned reads — the portability
// fallback (non-Unix platforms, the lbkeogh_pread build tag, or a failed
// mmap). Safe for concurrent use: ReadAt carries its own offset.
type preadBackend struct {
	f    *os.File
	size int64

	mu     sync.Mutex
	closed bool
}

func newPreadBackend(f *os.File, size int64) *preadBackend {
	return &preadBackend{f: f, size: size}
}

func (b *preadBackend) record(off int64, size int, scratch []byte) ([]byte, error) {
	if off < 0 || off+int64(size) > b.size {
		return nil, fmt.Errorf("record at %d+%d outside file of %d bytes", off, size, b.size)
	}
	if cap(scratch) < size {
		scratch = make([]byte, size)
	}
	scratch = scratch[:size]
	if _, err := b.f.ReadAt(scratch, off); err != nil {
		return nil, err
	}
	return scratch, nil
}

func (b *preadBackend) zeroCopy() bool { return false }

func (b *preadBackend) mappedBytes() int64 { return 0 }

func (b *preadBackend) mapping() []byte { return nil }

func (b *preadBackend) close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	return b.f.Close()
}
