package segment

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lbkeogh/internal/obs/storeobs"
)

// bulkStore writes count records into dir as segments of perSegment records,
// returning the journal-free store directory.
func bulkStore(t *testing.T, dir string, count int, perSegment int64) {
	t.Helper()
	bw, err := NewBulkWriter(dir, testN, testD, perSegment)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		if err := bw.Add(testSeries(i, testN), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFetchObservabilityReconciles(t *testing.T) {
	dir := t.TempDir()
	bulkStore(t, dir, 64, 32)
	db, err := OpenDB(dir, testD)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rec := storeobs.NewRecorder(storeobs.Config{})
	db.SetObserver(rec)
	if db.Observer() != rec {
		t.Fatal("Observer did not return the attached recorder")
	}

	db.ResetReads()
	for id := 0; id < 64; id++ {
		db.Fetch(id)
	}
	tot := rec.Totals()
	if got, want := tot.Fetches(), int64(db.Reads()); got != want {
		t.Fatalf("storeobs fetches %d != store reads %d", got, want)
	}
	if tot.ColdFetches == 0 {
		t.Fatal("first pass over a fresh store produced no cold fetches")
	}
	if tot.RequestedBytes == 0 || tot.FaultedPages == 0 {
		t.Fatalf("no read-amplification accounting: %+v", tot)
	}

	// A second pass touches no new pages: cold count must not move.
	coldAfterFirst := tot.ColdFetches
	for id := 0; id < 64; id++ {
		db.Fetch(id)
	}
	tot = rec.Totals()
	if tot.ColdFetches != coldAfterFirst {
		t.Fatalf("warm re-read grew cold count %d -> %d", coldAfterFirst, tot.ColdFetches)
	}
	if got, want := tot.Fetches(), int64(db.Reads()); got != want {
		t.Fatalf("storeobs fetches %d != store reads %d after second pass", got, want)
	}

	// Per-segment accounts saw only raw-column reads from Fetch.
	segs := rec.Segments()
	if len(segs) != 2 {
		t.Fatalf("recorder tracks %d segments, want 2", len(segs))
	}
	for _, s := range segs {
		if s.Reads[storeobs.ColRaw] == 0 {
			t.Fatalf("segment %s has no raw reads", s.Segment)
		}
		if s.LastAccess.IsZero() {
			t.Fatalf("segment %s has no last-access time", s.Segment)
		}
	}
}

// Cold/warm classification is a pure function of the access sequence and the
// on-disk layout — not of the backend. Two identical passes under pread and
// one under the default backend must agree exactly (the S6 determinism
// pin).
func TestColdWarmDeterministicAcrossBackends(t *testing.T) {
	dir := t.TempDir()
	bulkStore(t, dir, 100, 40)

	coldCount := func(opts ...OpenOption) (int64, int64) {
		db, err := OpenDB(dir, testD, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		rec := storeobs.NewRecorder(storeobs.Config{})
		db.SetObserver(rec)
		for pass := 0; pass < 2; pass++ {
			for id := 0; id < 100; id += 3 {
				db.Fetch(id)
			}
		}
		tot := rec.Totals()
		return tot.ColdFetches, tot.FaultedPages
	}

	pread1, pages1 := coldCount(WithoutDataCRC(), WithPread())
	pread2, pages2 := coldCount(WithoutDataCRC(), WithPread())
	def, pagesDef := coldCount(WithoutDataCRC())
	if pread1 != pread2 || pages1 != pages2 {
		t.Fatalf("pread classification not deterministic: cold %d vs %d, pages %d vs %d",
			pread1, pread2, pages1, pages2)
	}
	if pread1 != def || pages1 != pagesDef {
		t.Fatalf("pread and default backends disagree: cold %d vs %d, pages %d vs %d",
			pread1, def, pages1, pagesDef)
	}
	if pread1 == 0 {
		t.Fatal("no cold fetches on a fresh store")
	}
}

func TestResidencyPreadUnsupported(t *testing.T) {
	dir := t.TempDir()
	bulkStore(t, dir, 8, 8)
	db, err := OpenDB(dir, testD, WithoutDataCRC(), WithPread())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Acquire()
	defer s.Release()
	if _, err := s.segs[0].Residency(); !errors.Is(err, ErrResidencyUnsupported) {
		t.Fatalf("pread residency error = %v, want ErrResidencyUnsupported", err)
	}
	// The probe reports the error string, never zeros that read as evicted.
	samples := ProbeResidency(db)()
	if len(samples) != 1 {
		t.Fatalf("probe returned %d samples, want 1", len(samples))
	}
	if samples[0].Err == "" {
		t.Fatal("unsupported sample carries no error")
	}
	if samples[0].MappedBytes != 0 || samples[0].ResidentBytes != 0 {
		t.Fatalf("unsupported sample carries byte counts: %+v", samples[0])
	}
}

func TestJournalLifecycleReconciles(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, testD)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rec := storeobs.NewRecorder(storeobs.Config{})
	db.SetObserver(rec)
	j := rec.Journal()

	ingestBatch(t, db, 0, 10)
	ingestBatch(t, db, 10, 10)
	if merged, err := db.Compact(0); err != nil || merged != 2 {
		t.Fatalf("Compact = %d, %v; want 2 merged", merged, err)
	}
	st := db.Stats()
	counts := j.Counts()

	if got, want := counts[storeobs.EventIngestBatch], st.Ingests; got != want {
		t.Fatalf("ingest_batch events %d != ingests counter %d", got, want)
	}
	if got, want := counts[storeobs.EventSegmentCompacted], st.Compactions; got != want {
		t.Fatalf("segment_compacted events %d != compactions counter %d", got, want)
	}
	if got, want := counts[storeobs.EventManifestSwap], st.Ingests+st.Compactions; got != want {
		t.Fatalf("manifest_swap events %d != ingests+compactions %d", got, want)
	}
	// 3 created (2 ingest + 1 merge), 2 unlinked as the merged-away readers
	// closed when the old generation released (nothing else held it).
	if got := counts[storeobs.EventSegmentCreated]; got != 3 {
		t.Fatalf("segment_created events = %d, want 3", got)
	}
	if got := counts[storeobs.EventSegmentUnlinked]; got != 2 {
		t.Fatalf("segment_unlinked events = %d, want 2", got)
	}
	// Pins: one at SetObserver + one per publish; releases: the two retired
	// publish generations (the SetObserver-time generation retired too).
	if got := counts[storeobs.EventSnapshotPin]; got != 4 {
		t.Fatalf("snapshot_pin events = %d, want 4", got)
	}
	if got := counts[storeobs.EventSnapshotRelease]; got != 3 {
		t.Fatalf("snapshot_release events = %d, want 3", got)
	}

	// Unlinked segments left the per-segment accounts.
	if segs := rec.Segments(); len(segs) != 1 {
		names := make([]string, 0, len(segs))
		for _, s := range segs {
			names = append(names, s.Segment)
		}
		t.Fatalf("recorder still tracks %v, want only the merged segment", names)
	}

	// The compaction event carries reclaimed-space accounting.
	var compacted *storeobs.Event
	for _, ev := range j.Events() {
		if ev.Kind == storeobs.EventSegmentCompacted {
			e := ev
			compacted = &e
		}
	}
	if compacted == nil {
		t.Fatal("no segment_compacted event in the ring")
	}
	if compacted.Records != 20 || compacted.Bytes <= 0 {
		t.Fatalf("compaction event bookkeeping: %+v", compacted)
	}
}

// A panicking fetch (here: an out-of-range ID) must not leak its snapshot
// reference — a leaked reference would pin merged-away segments on disk
// forever.
func TestFetchPanicReleasesSnapshot(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDB(dir, testD)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ingestBatch(t, db, 0, 5)
	ingestBatch(t, db, 5, 5)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range fetch did not panic")
			}
		}()
		db.Fetch(10)
	}()

	old, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if merged, err := db.Compact(0); err != nil || merged != 2 {
		t.Fatalf("Compact = %d, %v; want 2 merged", merged, err)
	}
	now, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Both pre-compaction segments must be gone: nothing pins the old
	// generation once the failed fetch released its reference.
	left := 0
	for _, e := range now {
		if strings.HasSuffix(e.Name(), segSuffix) {
			left++
		}
	}
	if left != 1 {
		t.Fatalf("%d segment files remain after compaction (had %d entries before), want 1", left, len(old))
	}
}

func TestManifestRecovery(t *testing.T) {
	writeStore := func(t *testing.T) string {
		dir := t.TempDir()
		bulkStore(t, dir, 20, 10)
		return dir
	}
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		wantErr string // empty: open must succeed
		orphans int
	}{
		{
			name: "truncated manifest",
			corrupt: func(t *testing.T, dir string) {
				path := filepath.Join(dir, ManifestName)
				buf, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "corrupt or truncated",
		},
		{
			name: "garbage manifest",
			corrupt: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("not json{"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "corrupt or truncated",
		},
		{
			name: "truncated segment file",
			corrupt: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, segFileName(0)), []byte("stub"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: "smaller than",
		},
		{
			name: "orphaned segment is ignored",
			corrupt: func(t *testing.T, dir string) {
				buf, err := os.ReadFile(filepath.Join(dir, segFileName(0)))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(dir, "seg-000099.lbseg"), buf, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			orphans: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeStore(t)
			tc.corrupt(t, dir)
			db, err := OpenDB(dir, testD)
			if tc.wantErr != "" {
				if err == nil {
					db.Close()
					t.Fatalf("open succeeded, want error containing %q", tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("open failed: %v", err)
			}
			defer db.Close()
			if db.Len() != 20 {
				t.Fatalf("store serves %d records, want 20 (orphan must not be served)", db.Len())
			}
			st := db.Stats()
			if len(st.Orphans) != tc.orphans {
				t.Fatalf("Stats.Orphans = %v, want %d entries", st.Orphans, tc.orphans)
			}
			rec := storeobs.NewRecorder(storeobs.Config{})
			db.SetObserver(rec)
			if got := rec.Journal().Counts()[storeobs.EventSegmentOrphaned]; got != int64(tc.orphans) {
				t.Fatalf("segment_orphaned events = %d, want %d", got, tc.orphans)
			}
		})
	}
}
