//go:build !linux

package segment

// mincoreResident is the honest non-Linux fallback: residency is
// unmeasurable here, and reporting that beats reporting zeros a dashboard
// would read as "fully evicted".
func mincoreResident(data []byte) (int64, error) {
	return 0, ErrResidencyUnsupported
}
