package segment

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lbkeogh/internal/fourier"
	"lbkeogh/internal/paa"
)

// testSeries builds a deterministic series for a record ID so readers can
// verify content integrity without reference to the writer's inputs.
func testSeries(id, n int) []float64 {
	s := make([]float64, n)
	for j := range s {
		s[j] = math.Sin(float64(id)*0.1+float64(j)*0.05) + float64(id)
	}
	return s
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func writeTestSegment(t *testing.T, path string, n, d, count int) {
	t.Helper()
	w, err := NewWriter(path, n, d)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for i := 0; i < count; i++ {
		if err := w.Add(testSeries(i, n), int64(i%7)); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-000000.lbseg")
	const n, d, count = 32, 8, 57
	writeTestSegment(t, path, n, d, count)

	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	if r.Len() != count || r.SeriesLen() != n || r.Dims() != d {
		t.Fatalf("shape: len=%d n=%d d=%d, want %d/%d/%d", r.Len(), r.SeriesLen(), r.Dims(), count, n, d)
	}
	for i := 0; i < count; i++ {
		want := testSeries(i, n)
		if got := r.Series(i); !floatsEqual(got, want) {
			t.Fatalf("Series(%d) mismatch", i)
		}
		if got := r.CopySeries(i, nil); !floatsEqual(got, want) {
			t.Fatalf("CopySeries(%d) mismatch", i)
		}
		if got := r.Magnitudes(i); !floatsEqual(got, fourier.Magnitudes(want, d)) {
			t.Fatalf("Magnitudes(%d) mismatch", i)
		}
		if got := r.PAA(i); !floatsEqual(got, paa.Reduce(want, d)) {
			t.Fatalf("PAA(%d) mismatch", i)
		}
		if got := r.Label(i); got != int64(i%7) {
			t.Fatalf("Label(%d) = %d, want %d", i, got, i%7)
		}
	}
	if r.ZeroCopy() && r.MappedBytes() == 0 {
		t.Fatal("zero-copy reader reports no mapped bytes")
	}

	// Spill and assembly temp files must all be gone.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".lbseg-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriterRejectsBadShapes(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewWriter(filepath.Join(dir, "a.lbseg"), 1, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewWriter(filepath.Join(dir, "a.lbseg"), 32, 17); err == nil {
		t.Fatal("d>n/2 accepted")
	}
	w, err := NewWriter(filepath.Join(dir, "a.lbseg"), 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(make([]float64, 31), 0); err == nil {
		t.Fatal("wrong-length series accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("empty segment accepted")
	}
	if _, err := os.Stat(filepath.Join(dir, "a.lbseg")); !os.IsNotExist(err) {
		t.Fatal("failed close left a segment file")
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.lbseg")
	writeTestSegment(t, path, 16, 4, 20)

	flip := func(t *testing.T, off int64) string {
		t.Helper()
		cp := filepath.Join(t.TempDir(), "corrupt.lbseg")
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		buf[off] ^= 0xff
		if err := os.WriteFile(cp, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return cp
	}

	t.Run("header", func(t *testing.T) {
		if _, err := Open(flip(t, 17)); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("want header CRC error, got %v", err)
		}
	})
	t.Run("table", func(t *testing.T) {
		if _, err := Open(flip(t, headerSize+9)); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("want table CRC error, got %v", err)
		}
	})
	t.Run("section-data", func(t *testing.T) {
		cp := flip(t, 300) // inside the raw section (first section starts at 256)
		if _, err := Open(cp); err == nil || !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("want section CRC error, got %v", err)
		}
		// WithoutDataCRC skips only the data checksums.
		r, err := Open(cp, WithoutDataCRC())
		if err != nil {
			t.Fatalf("WithoutDataCRC open: %v", err)
		}
		r.Close()
	})
	t.Run("truncated", func(t *testing.T) {
		cp := filepath.Join(t.TempDir(), "short.lbseg")
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(cp, buf[:len(buf)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(cp); err == nil {
			t.Fatal("truncated file accepted")
		}
	})
	t.Run("not-a-segment", func(t *testing.T) {
		cp := filepath.Join(t.TempDir(), "junk.lbseg")
		if err := os.WriteFile(cp, []byte("not a segment file at all, sorry"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(cp); err == nil {
			t.Fatal("junk file accepted")
		}
	})
}

func TestDecodeFloatsMatchesView(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg.lbseg")
	writeTestSegment(t, path, 16, 4, 5)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	raw, err := r.be.record(r.secs[0].off, 16*8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := decodeFloats(raw, 16), r.Series(0); !floatsEqual(got, want) {
		t.Fatal("decodeFloats disagrees with the platform view")
	}
}

func TestBulkWriter(t *testing.T) {
	dir := t.TempDir()
	const n, d = 24, 6
	b, err := NewBulkWriter(dir, n, d, 64)
	if err != nil {
		t.Fatal(err)
	}
	const first = 250
	for i := 0; i < first; i++ {
		if err := b.Add(testSeries(i, n), int64(i)); err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
	}
	if got := b.Count(); got != first {
		t.Fatalf("Count = %d, want %d", got, first)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	m, ok, err := LoadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("LoadManifest: ok=%v err=%v", ok, err)
	}
	if m.Generation != 1 || m.SeriesLen != n || m.Dims != d {
		t.Fatalf("manifest %+v", m)
	}
	if want := (first + 63) / 64; len(m.Segments) != want {
		t.Fatalf("%d segments, want %d", len(m.Segments), want)
	}

	// Append run: shapes must match, IDs continue, generation bumps.
	if _, err := NewBulkWriter(dir, n+1, d, 64); err == nil {
		t.Fatal("mismatched series length accepted")
	}
	b2, err := NewBulkWriter(dir, n, d, 64)
	if err != nil {
		t.Fatal(err)
	}
	const second = 30
	for i := 0; i < second; i++ {
		if err := b2.Add(testSeries(first+i, n), int64(first+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := b2.Count(); got != second {
		t.Fatalf("append-run Count = %d, want %d", got, second)
	}
	if err := b2.Close(); err != nil {
		t.Fatal(err)
	}

	db, err := OpenDB(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Len() != first+second {
		t.Fatalf("Len = %d, want %d", db.Len(), first+second)
	}
	if db.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", db.Generation())
	}
	s := db.Acquire()
	defer s.Release()
	for _, id := range []int{0, 63, 64, first - 1, first, first + second - 1} {
		if !floatsEqual(s.Series(id), testSeries(id, n)) {
			t.Fatalf("record %d mismatch", id)
		}
		if s.Label(id) != int64(id) {
			t.Fatalf("label %d mismatch", id)
		}
	}
}
