// Package segment implements the million-shape storage plane: immutable,
// memory-mapped, columnar segment files plus a manifest-managed, growable
// multi-segment store (DB) with online ingest and compaction.
//
// The paper's disk experiments (Section 4.2, Figure 24) assume the database
// lives on disk and only the candidates an index cannot exclude are fetched.
// This package makes that assumption real at scale: the cheap representations
// the screening literature presumes — raw series for envelope bounds, Fourier
// magnitudes for the FFT screen, PAA sketches for the R-tree — are laid out
// as separate, sequentially scannable columns, computed once at ingest time,
// and mapped (not loaded) at serve time, so a search touches pages rather
// than a boot-time heap slice.
//
// # Segment file format
//
// One segment is a single little-endian file (conventionally *.lbseg):
//
//	offset 0              header (64 bytes):
//	  0..8      magic "LBKSEG01"
//	  8..12     uint32 version (1)
//	  12..16    uint32 section count
//	  16..20    uint32 n  — series length
//	  20..24    uint32 d  — feature dims (FFT magnitudes, PAA segments)
//	  24..32    uint64 record count
//	  32..40    uint64 section-table offset (64)
//	  40..44    uint32 CRC32 (IEEE) of header bytes [0,40)
//	  44..64    zero padding
//	offset 64             section table (32 bytes per section):
//	  0..4      uint32 kind (1 raw, 2 fft, 3 paa, 4 meta)
//	  4..8      reserved
//	  8..16     uint64 section offset (64-byte aligned)
//	  16..24    uint64 section length in bytes
//	  24..28    uint32 CRC32 (IEEE) of the section bytes
//	  28..32    reserved
//	followed by           uint32 CRC32 of the section-table bytes
//	aligned sections      each starting on a 64-byte boundary:
//	  raw   count × n float64   full-resolution series, row major
//	  fft   count × d float64   rotation-invariant Fourier magnitudes
//	  paa   count × d float64   PAA means
//	  meta  count × int64       per-record metadata (class label)
//
// Records inside a segment, and segments inside a manifest, are strictly
// append-ordered, so a record's global ID never changes across ingests or
// compactions.
//
// # Writer, Reader, DB
//
// Writer streams batches through per-column temporary spill files (running
// CRC32, nothing buffered in memory) and assembles the final file with a
// temp-file + rename, so a crash never leaves a partial segment visible.
//
// Reader validates the header and section CRCs, then maps the file with mmap
// on Unix platforms; a positioned-read (pread) fallback is selected on other
// platforms or with the lbkeogh_pread build tag. On little-endian
// architectures mapped records are returned as zero-copy float64 views.
//
// DB manages the live set of segments named by a manifest file
// (MANIFEST.json, swapped atomically by temp-file + rename). Readers acquire
// an immutable Snapshot (reference counted, so compaction can never unmap a
// page under an in-flight query); Ingest appends a new segment and Compact
// merges consecutive runs of small segments — both publish a new snapshot
// with one atomic pointer swap and retire replaced segment files only once
// the last snapshot holding them is released.
package segment
