package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	magic   = "LBKSEG01"
	version = 1

	headerSize = 64
	entrySize  = 32

	// align is the section alignment: one cache line, which also keeps every
	// float64 record 8-byte aligned inside the mapping (the zero-copy view
	// requirement).
	align = 64
)

// Section kinds, in file order.
const (
	kindRaw  = 1 // count × n float64 full-resolution series
	kindFFT  = 2 // count × d float64 rotation-invariant Fourier magnitudes
	kindPAA  = 3 // count × d float64 PAA means
	kindMeta = 4 // count × int64 per-record metadata (label)
)

// sectionKinds lists every section a version-1 segment carries, in the order
// they are written.
var sectionKinds = [...]uint32{kindRaw, kindFFT, kindPAA, kindMeta}

// numSections is the fixed section count of a version-1 segment.
const numSections = len(sectionKinds)

// section locates one column inside an open segment.
type section struct {
	kind   uint32
	off    int64
	length int64
	crc    uint32
}

// header is the decoded 64-byte segment header.
type header struct {
	n, d     int
	count    int64
	sections int
	tableOff int64
}

// alignUp rounds off up to the next multiple of align.
func alignUp(off int64) int64 {
	return (off + align - 1) &^ (align - 1)
}

// encodeHeader serializes h into a fresh 64-byte header, CRC included.
func encodeHeader(h header) []byte {
	buf := make([]byte, headerSize)
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[8:], version)
	binary.LittleEndian.PutUint32(buf[12:], uint32(h.sections))
	binary.LittleEndian.PutUint32(buf[16:], uint32(h.n))
	binary.LittleEndian.PutUint32(buf[20:], uint32(h.d))
	binary.LittleEndian.PutUint64(buf[24:], uint64(h.count))
	binary.LittleEndian.PutUint64(buf[32:], uint64(h.tableOff))
	binary.LittleEndian.PutUint32(buf[40:], crc32.ChecksumIEEE(buf[:40]))
	return buf
}

// decodeHeader validates magic, version, and the header CRC, returning the
// decoded fields.
func decodeHeader(buf []byte) (header, error) {
	var h header
	if len(buf) < headerSize {
		return h, fmt.Errorf("segment: short header (%d bytes)", len(buf))
	}
	if string(buf[:8]) != magic {
		return h, fmt.Errorf("segment: bad magic (not a segment file)")
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != version {
		return h, fmt.Errorf("segment: unsupported version %d", v)
	}
	if got, want := crc32.ChecksumIEEE(buf[:40]), binary.LittleEndian.Uint32(buf[40:]); got != want {
		return h, fmt.Errorf("segment: header CRC mismatch (file %#x, computed %#x)", want, got)
	}
	h.sections = int(binary.LittleEndian.Uint32(buf[12:]))
	h.n = int(binary.LittleEndian.Uint32(buf[16:]))
	h.d = int(binary.LittleEndian.Uint32(buf[20:]))
	h.count = int64(binary.LittleEndian.Uint64(buf[24:]))
	h.tableOff = int64(binary.LittleEndian.Uint64(buf[32:]))
	if h.n <= 0 || h.d <= 0 || h.count < 0 || h.sections != numSections || h.tableOff != headerSize {
		return h, fmt.Errorf("segment: corrupt header (n=%d d=%d count=%d sections=%d table=%d)",
			h.n, h.d, h.count, h.sections, h.tableOff)
	}
	return h, nil
}

// encodeTable serializes the section table plus its trailing CRC32.
func encodeTable(secs []section) []byte {
	buf := make([]byte, len(secs)*entrySize+4)
	for i, s := range secs {
		e := buf[i*entrySize:]
		binary.LittleEndian.PutUint32(e[0:], s.kind)
		binary.LittleEndian.PutUint64(e[8:], uint64(s.off))
		binary.LittleEndian.PutUint64(e[16:], uint64(s.length))
		binary.LittleEndian.PutUint32(e[24:], s.crc)
	}
	binary.LittleEndian.PutUint32(buf[len(secs)*entrySize:], crc32.ChecksumIEEE(buf[:len(secs)*entrySize]))
	return buf
}

// decodeTable validates the table CRC and decodes the entries.
func decodeTable(buf []byte, sections int) ([]section, error) {
	want := sections*entrySize + 4
	if len(buf) < want {
		return nil, fmt.Errorf("segment: short section table (%d bytes, want %d)", len(buf), want)
	}
	body := buf[:sections*entrySize]
	if got, stored := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(buf[sections*entrySize:]); got != stored {
		return nil, fmt.Errorf("segment: section-table CRC mismatch (file %#x, computed %#x)", stored, got)
	}
	out := make([]section, sections)
	for i := range out {
		e := body[i*entrySize:]
		out[i] = section{
			kind:   binary.LittleEndian.Uint32(e[0:]),
			off:    int64(binary.LittleEndian.Uint64(e[8:])),
			length: int64(binary.LittleEndian.Uint64(e[16:])),
			crc:    binary.LittleEndian.Uint32(e[24:]),
		}
		if out[i].off%align != 0 || out[i].off < 0 || out[i].length < 0 {
			return nil, fmt.Errorf("segment: section %d misaligned (offset %d)", i, out[i].off)
		}
	}
	return out, nil
}
