//go:build amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mips64le || mipsle || wasm

package segment

import "unsafe"

// canViewFloats reports that this architecture is little-endian, matching the
// on-disk encoding, so a mapped record can be reinterpreted in place.
const canViewFloats = true

// floatsOf reinterprets n little-endian float64s at b without copying. The
// caller guarantees b comes from a 64-byte-aligned section of a page-aligned
// mapping, so the data is 8-byte aligned.
func floatsOf(b []byte, n int) []float64 {
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), n)
}
