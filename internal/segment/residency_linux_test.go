//go:build linux

package segment

import (
	"testing"

	"lbkeogh/internal/obs/storeobs"
)

func TestResidencyMmapMeasures(t *testing.T) {
	dir := t.TempDir()
	bulkStore(t, dir, 32, 32)
	db, err := OpenDB(dir, testD)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Acquire()
	defer s.Release()
	if !s.segs[0].ZeroCopy() {
		t.Skip("store did not map (pread fallback); residency unmeasurable here")
	}

	// Touch every record so the pages are in core, then measure.
	for id := 0; id < 32; id++ {
		db.Fetch(id)
	}
	res, err := s.segs[0].Residency()
	if err != nil {
		t.Fatalf("Residency: %v", err)
	}
	if res.MappedBytes <= 0 {
		t.Fatalf("mapped bytes = %d, want > 0", res.MappedBytes)
	}
	if res.ResidentBytes <= 0 || res.ResidentBytes > res.MappedBytes {
		t.Fatalf("resident bytes = %d of %d mapped", res.ResidentBytes, res.MappedBytes)
	}

	samples := ProbeResidency(db)()
	if len(samples) != 1 || samples[0].Err != "" {
		t.Fatalf("probe = %+v, want one errorless sample", samples)
	}
	if f := samples[0].Fraction(); f <= 0 || f > 1 {
		t.Fatalf("resident fraction = %v, want (0,1]", f)
	}

	// End to end through the sampler: the recorder reports it as supported.
	rec := storeobs.NewRecorder(storeobs.Config{})
	db.SetObserver(rec)
	sampler := storeobs.NewSampler(rec, ProbeResidency(db), 0)
	sampler.Start()
	defer sampler.Stop()
	got, at := rec.Residency()
	if len(got) != 1 || at.IsZero() {
		t.Fatalf("sampler stored %d samples at %v", len(got), at)
	}
}
