package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"lbkeogh/internal/obs/storeobs"
)

// backend abstracts how an open segment's bytes are reached: a whole-file
// memory mapping (mmap_unix.go) or positioned reads (pread.go, also the
// fallback when mapping fails). record either returns a view into the
// mapping (zero copy, valid until close) or fills scratch.
type backend interface {
	// record returns size bytes at off. A mmap backend returns a subslice of
	// the mapping and ignores scratch; a pread backend reads into scratch
	// (allocating when scratch is short) and returns it.
	record(off int64, size int, scratch []byte) ([]byte, error)
	// zeroCopy reports whether record returns mapping views.
	zeroCopy() bool
	// mappedBytes is the size of the live mapping (0 for pread).
	mappedBytes() int64
	// mapping exposes the live mapping for page-residency probes (nil for
	// pread — residency is then unmeasurable, not zero).
	mapping() []byte
	close() error
}

// OpenOption customizes Open.
type OpenOption func(*openConfig)

type openConfig struct {
	skipDataCRC bool
	forcePread  bool
}

// WithoutDataCRC skips the per-section CRC verification on open. The header
// and section-table CRCs are always checked. Intended for reopening segments
// this process just wrote and verified; default opens verify everything.
func WithoutDataCRC() OpenOption {
	return func(c *openConfig) { c.skipDataCRC = true }
}

// WithPread forces the positioned-read backend even where mmap is available
// — the same code path as non-Unix platforms and the lbkeogh_pread build
// tag. Used by tests pinning cold/warm classification determinism and the
// residency-unsupported path without cross-compiling.
func WithPread() OpenOption {
	return func(c *openConfig) { c.forcePread = true }
}

// Reader is one open, immutable segment. All accessors are safe for
// concurrent use. Series/Magnitudes/PAA return zero-copy views into the
// mapping when the platform allows it (Unix mmap on a little-endian
// architecture); the views stay valid until Close, which the owning DB only
// calls once every snapshot holding the reader is released.
type Reader struct {
	path string
	n, d int
	m    int64
	size int64
	secs [numSections]section // indexed by sectionKinds order
	be   backend

	// refs is the retain count managed by the owning DB (segments shared
	// across snapshots close only when the last holder releases). A
	// standalone Reader (refs untouched) is closed directly.
	refs atomic.Int64

	// removeOnClose unlinks the file when the reader finally closes —
	// compaction marks replaced segments with it.
	removeOnClose atomic.Bool

	// acct/obsRec attach storage observability (storeobs). nil acct — the
	// default — keeps every accessor on its uninstrumented path behind a
	// single atomic-pointer nil check.
	acct   atomic.Pointer[storeobs.SegmentAccount]
	obsRec atomic.Pointer[storeobs.Recorder]
}

// Open validates path's header, section table, and (unless WithoutDataCRC)
// every section checksum, then maps the file.
func Open(path string, opts ...OpenOption) (*Reader, error) {
	var cfg openConfig
	for _, o := range opts {
		o(&cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: %w", err)
	}
	size := info.Size()
	head := make([]byte, headerSize+numSections*entrySize+4)
	if size < int64(len(head)) {
		f.Close()
		return nil, fmt.Errorf("segment: %s: file is %d bytes, smaller than the %d-byte header and section table — truncated or not a segment file",
			path, size, len(head))
	}
	if _, err := f.ReadAt(head, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: %s: reading header: %w", path, err)
	}
	h, err := decodeHeader(head)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	secs, err := decodeTable(head[headerSize:], h.sections)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("segment: %s: %w", path, err)
	}
	r := &Reader{path: path, n: h.n, d: h.d, m: h.count, size: size}
	for i, want := range sectionKinds {
		s := secs[i]
		if s.kind != want {
			f.Close()
			return nil, fmt.Errorf("segment: %s: section %d has kind %d, want %d", path, i, s.kind, want)
		}
		var wantLen int64
		switch want {
		case kindRaw:
			wantLen = h.count * int64(h.n) * 8
		case kindFFT, kindPAA:
			wantLen = h.count * int64(h.d) * 8
		case kindMeta:
			wantLen = h.count * 8
		}
		if s.length != wantLen {
			f.Close()
			return nil, fmt.Errorf("segment: %s: section %d length %d, want %d", path, i, s.length, wantLen)
		}
		if s.off+s.length > size {
			f.Close()
			return nil, fmt.Errorf("segment: %s: truncated (section %d ends at %d, file is %d bytes)",
				path, i, s.off+s.length, size)
		}
		r.secs[i] = s
	}
	if cfg.forcePread {
		r.be = newPreadBackend(f, size)
	} else {
		be, err := openBackend(f, size)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("segment: %s: %w", path, err)
		}
		r.be = be
	}
	if !cfg.skipDataCRC {
		if err := r.verifySections(); err != nil {
			r.Close()
			return nil, fmt.Errorf("segment: %s: %w", path, err)
		}
	}
	return r, nil
}

// verifySections recomputes every section CRC through the backend in chunks.
func (r *Reader) verifySections() error {
	const chunk = 1 << 20
	scratch := make([]byte, chunk)
	for i, s := range r.secs {
		h := crc32.NewIEEE()
		for off := int64(0); off < s.length; off += chunk {
			size := int(min64(chunk, s.length-off))
			b, err := r.be.record(s.off+off, size, scratch[:size])
			if err != nil {
				return err
			}
			h.Write(b)
		}
		if got := h.Sum32(); got != s.crc {
			return fmt.Errorf("section %d (kind %d) CRC mismatch (file %#x, computed %#x)",
				i, s.kind, s.crc, got)
		}
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Len returns the number of records.
func (r *Reader) Len() int { return int(r.m) }

// SeriesLen returns the length of every stored series.
func (r *Reader) SeriesLen() int { return r.n }

// Dims returns the feature dimensionality of the FFT and PAA columns.
func (r *Reader) Dims() int { return r.d }

// Path returns the segment's file path.
func (r *Reader) Path() string { return r.path }

// MappedBytes reports the size of the live memory mapping (0 under the
// pread fallback).
func (r *Reader) MappedBytes() int64 { return r.be.mappedBytes() }

// ZeroCopy reports whether record accessors return mapping views.
func (r *Reader) ZeroCopy() bool { return r.be.zeroCopy() && canViewFloats }

// floatRecord returns record i of a float64 column as a []float64: a
// zero-copy view when the backend maps and the architecture is
// little-endian, a decoded heap copy otherwise. With a storeobs account
// attached it detours to the observed variant; detached, the only extra
// cost is the acct nil check.
func (r *Reader) floatRecord(sec int, i int, width int) []float64 {
	off := r.secs[sec].off + int64(i)*int64(width)*8
	if acct := r.acct.Load(); acct != nil {
		return r.observedFloatRecord(acct, sec, off, i, width)
	}
	if r.be.zeroCopy() {
		b, err := r.be.record(off, width*8, nil)
		if err != nil {
			panic(fmt.Sprintf("segment: %s record %d: %v", r.path, i, err))
		}
		return floatsOf(b, width)
	}
	b, err := r.be.record(off, width*8, nil)
	if err != nil {
		panic(fmt.Sprintf("segment: %s record %d: %v", r.path, i, err))
	}
	return decodeFloats(b, width)
}

// observedFloatRecord is floatRecord with storage accounting: the read is
// timed with every page of the record forced resident inside the timed
// region (under mmap the fault otherwise lands outside any measurable span,
// whenever the caller first dereferences the view), then folded into the
// account — which classifies it cold or warm by its first-touch page
// bitmap, a classification deterministic across the mmap and pread
// backends.
func (r *Reader) observedFloatRecord(acct *storeobs.SegmentAccount, sec int, off int64, i, width int) []float64 {
	start := time.Now()
	b, err := r.be.record(off, width*8, nil)
	if err != nil {
		panic(fmt.Sprintf("segment: %s record %d: %v", r.path, i, err))
	}
	touchPages(b)
	acct.ObserveRead(sec, off, int64(width)*8, time.Since(start).Nanoseconds())
	if r.be.zeroCopy() {
		return floatsOf(b, width)
	}
	return decodeFloats(b, width)
}

// pageTouchSink keeps touchPages' loads observable so the compiler cannot
// elide them; atomic, because concurrent readers all write it.
var pageTouchSink atomic.Uint32

// touchPages reads one byte per accounting page of b (plus the final byte)
// so that any page faults are taken here, inside the caller's timed region.
func touchPages(b []byte) {
	if len(b) == 0 {
		return
	}
	var s byte
	for j := 0; j < len(b); j += storeobs.PageSize {
		s += b[j]
	}
	s += b[len(b)-1]
	pageTouchSink.Store(uint32(s))
}

// Series returns record i's full-resolution series. Zero-copy under mmap on
// little-endian platforms; the view is valid until the reader closes.
//
//lbkeogh:hotpath
func (r *Reader) Series(i int) []float64 {
	return r.floatRecord(0, i, r.n)
}

// CopySeries decodes record i's series into dst (grown as needed) and
// returns it — the always-safe form whose result outlives any snapshot.
func (r *Reader) CopySeries(i int, dst []float64) []float64 {
	if cap(dst) < r.n {
		dst = make([]float64, r.n)
	}
	dst = dst[:r.n]
	copy(dst, r.Series(i))
	return dst
}

// Magnitudes returns record i's rotation-invariant Fourier magnitudes.
func (r *Reader) Magnitudes(i int) []float64 {
	return r.floatRecord(1, i, r.d)
}

// PAA returns record i's PAA means.
func (r *Reader) PAA(i int) []float64 {
	return r.floatRecord(2, i, r.d)
}

// Label returns record i's metadata label.
func (r *Reader) Label(i int) int64 {
	off := r.secs[3].off + int64(i)*8
	var scratch [8]byte
	if acct := r.acct.Load(); acct != nil {
		start := time.Now()
		b, err := r.be.record(off, 8, scratch[:])
		if err != nil {
			panic(fmt.Sprintf("segment: %s meta %d: %v", r.path, i, err))
		}
		touchPages(b)
		acct.ObserveRead(storeobs.ColMeta, off, 8, time.Since(start).Nanoseconds())
		return int64(binary.LittleEndian.Uint64(b))
	}
	b, err := r.be.record(off, 8, scratch[:])
	if err != nil {
		panic(fmt.Sprintf("segment: %s meta %d: %v", r.path, i, err))
	}
	return int64(binary.LittleEndian.Uint64(b))
}

// rawCovered reports whether record i's raw-column bytes are already fully
// page-covered — i.e. whether a fetch of it would be warm. Always true with
// no account attached (everything is "warm" when nobody is measuring).
func (r *Reader) rawCovered(i int) bool {
	acct := r.acct.Load()
	if acct == nil {
		return true
	}
	off := r.secs[0].off + int64(i)*int64(r.n)*8
	return acct.Covered(off, int64(r.n)*8)
}

// setObserver attaches (or, with nil, detaches) storage accounting. The
// account is created against the recorder keyed by the segment's file name.
func (r *Reader) setObserver(rec *storeobs.Recorder) {
	if rec == nil {
		r.acct.Store(nil)
		r.obsRec.Store(nil)
		return
	}
	r.obsRec.Store(rec)
	r.acct.Store(rec.Segment(filepath.Base(r.path), r.size))
}

// retain/release implement the DB-managed share count: a reader held by k
// snapshots closes only when the last releases it.
func (r *Reader) retain() { r.refs.Add(1) }

func (r *Reader) release() {
	if r.refs.Add(-1) == 0 {
		r.Close() //nolint:errcheck // close of an immutable read-only mapping
	}
}

// Close unmaps and closes the segment (and unlinks it when compaction marked
// it replaced). Views returned earlier must no longer be used.
func (r *Reader) Close() error {
	err := r.be.close()
	if r.removeOnClose.Load() {
		os.Remove(r.path)
		if rec := r.obsRec.Load(); rec != nil {
			name := filepath.Base(r.path)
			rec.DropSegment(name)
			rec.Journal().Record(storeobs.Event{
				Kind:    storeobs.EventSegmentUnlinked,
				Segment: name,
				Records: r.m,
				Bytes:   r.size,
			})
		}
	}
	return err
}

// decodeFloats is the portable (copying) float decode.
func decodeFloats(b []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
