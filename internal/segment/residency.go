package segment

import (
	"errors"
	"path/filepath"

	"lbkeogh/internal/obs/storeobs"
)

// ErrResidencyUnsupported marks a reader whose page residency cannot be
// measured: a positioned-read backend (non-Unix platforms, the
// lbkeogh_pread build tag, WithPread, or a failed mmap) or a platform
// without mincore. Callers must report it as "unsupported", never as zero
// residency.
var ErrResidencyUnsupported = errors.New("segment: page residency unsupported (no mmap backend or no mincore on this platform)")

// Residency is one reader's page residency at a sample instant.
type Residency struct {
	MappedBytes   int64
	ResidentBytes int64
}

// Residency asks the kernel (mincore) how much of the segment's mapping is
// currently resident. It walks the whole mapping's page vector — cheap, but
// not free — so callers sample it periodically off the query path, never
// per fetch.
func (r *Reader) Residency() (Residency, error) {
	data := r.be.mapping()
	if data == nil {
		return Residency{}, ErrResidencyUnsupported
	}
	resident, err := mincoreResident(data)
	if err != nil {
		return Residency{}, err
	}
	return Residency{MappedBytes: int64(len(data)), ResidentBytes: resident}, nil
}

// ProbeResidency adapts a DB into the probe shape storeobs.Sampler wants:
// each call snapshots the live segment set and measures every reader,
// reporting unmeasurable segments with an error string rather than zeros.
func ProbeResidency(db *DB) func() []storeobs.SegmentResidency {
	return func() []storeobs.SegmentResidency {
		s := db.Acquire()
		defer s.Release()
		out := make([]storeobs.SegmentResidency, 0, len(s.segs))
		for _, r := range s.segs {
			sr := storeobs.SegmentResidency{Segment: filepath.Base(r.Path())}
			res, err := r.Residency()
			if err != nil {
				sr.Err = err.Error()
			} else {
				sr.MappedBytes = res.MappedBytes
				sr.ResidentBytes = res.ResidentBytes
			}
			out = append(out, sr)
		}
		return out
	}
}
