//go:build !linux

package segment

import (
	"errors"
	"testing"
)

// On non-Linux platforms there is no mincore: residency must report
// unsupported even for an mmap backend — never zeros, which a dashboard
// would read as "fully evicted".
func TestResidencyUnsupportedOffLinux(t *testing.T) {
	dir := t.TempDir()
	bulkStore(t, dir, 8, 8)
	db, err := OpenDB(dir, testD)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := db.Acquire()
	defer s.Release()
	if _, err := s.segs[0].Residency(); !errors.Is(err, ErrResidencyUnsupported) {
		t.Fatalf("residency error = %v, want ErrResidencyUnsupported", err)
	}
	samples := ProbeResidency(db)()
	if len(samples) != 1 || samples[0].Err == "" {
		t.Fatalf("probe = %+v, want one errored sample", samples)
	}
}
