package segment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ManifestName is the file naming the live segment set inside a store
// directory.
const ManifestName = "MANIFEST.json"

const manifestVersion = 1

// ManifestSegment is one live segment as recorded in the manifest.
type ManifestSegment struct {
	File    string `json:"file"`
	Records int64  `json:"records"`
}

// Manifest is the durable description of a store: which segment files are
// live, in global-ID order, and the store's fixed shape parameters. It is
// swapped atomically (temp file + rename) so a crash leaves either the old
// or the new set visible, never a mix.
type Manifest struct {
	Version    int               `json:"version"`
	Generation int64             `json:"generation"`
	SeriesLen  int               `json:"series_len"`
	Dims       int               `json:"dims"`
	Segments   []ManifestSegment `json:"segments"`
}

// LoadManifest reads dir's manifest. A missing manifest is not an error: it
// returns an empty Manifest and ok=false (the empty-store, ingest-first
// case).
func LoadManifest(dir string) (Manifest, bool, error) {
	var m Manifest
	buf, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return m, false, nil
	}
	if err != nil {
		return m, false, fmt.Errorf("segment: %w", err)
	}
	if err := json.Unmarshal(buf, &m); err != nil {
		// A partial or truncated manifest means a crash interrupted a swap
		// (the rename is atomic, so this should not happen under this
		// writer) or the file was edited. Name the recovery path instead of
		// surfacing a raw decode error.
		return m, false, fmt.Errorf("segment: %s is corrupt or truncated (%d bytes: %v); "+
			"restore it from a backup or re-ingest the store — segment files themselves are immutable and may be intact",
			ManifestName, len(buf), err)
	}
	if m.Version != manifestVersion {
		return m, false, fmt.Errorf("segment: %s: unsupported version %d", ManifestName, m.Version)
	}
	for _, s := range m.Segments {
		if s.File != filepath.Base(s.File) || !strings.HasSuffix(s.File, segSuffix) {
			return m, false, fmt.Errorf("segment: %s: bad segment file name %q", ManifestName, s.File)
		}
	}
	return m, true, nil
}

// WriteManifest atomically replaces dir's manifest.
func WriteManifest(dir string, m Manifest) error {
	m.Version = manifestVersion
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	buf = append(buf, '\n')
	f, err := os.CreateTemp(dir, ".lbseg-manifest-*")
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("segment: %w", err)
	}
	return syncDir(dir)
}

const segSuffix = ".lbseg"

// segFileName names segment number seq inside a store directory.
func segFileName(seq int64) string {
	return fmt.Sprintf("seg-%06d%s", seq, segSuffix)
}

// segSeq parses the sequence number out of a segment file name, returning -1
// when the name does not match the seg-NNNNNN.lbseg convention.
func segSeq(name string) int64 {
	var seq int64
	if _, err := fmt.Sscanf(name, "seg-%d.lbseg", &seq); err != nil {
		return -1
	}
	return seq
}

// cleanTemp removes leftover spill/assembly temp files from a crashed writer.
// Live segments and the manifest are never dot-prefixed, so this touches only
// debris.
func cleanTemp(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".lbseg-") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
