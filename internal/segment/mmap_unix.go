//go:build unix && !lbkeogh_pread

package segment

import (
	"fmt"
	"os"
	"syscall"
)

// mmapBackend maps the whole segment file read-only. Records are subslices
// of the mapping: no copies, no heap growth with database size — the kernel
// pages data in on demand and evicts under pressure.
type mmapBackend struct {
	data []byte
}

// openBackend maps f whole. Mapping failures (e.g. exotic filesystems) fall
// back to positioned reads rather than failing the open.
func openBackend(f *os.File, size int64) (backend, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return newPreadBackend(f, size), nil
	}
	// The mapping survives the descriptor; close it so open segments don't
	// hold fds against the process limit.
	f.Close()
	return &mmapBackend{data: data}, nil
}

func (b *mmapBackend) record(off int64, size int, _ []byte) ([]byte, error) {
	if off < 0 || off+int64(size) > int64(len(b.data)) {
		return nil, fmt.Errorf("record at %d+%d outside mapping of %d bytes", off, size, len(b.data))
	}
	return b.data[off : off+int64(size) : off+int64(size)], nil
}

func (b *mmapBackend) zeroCopy() bool { return true }

func (b *mmapBackend) mappedBytes() int64 { return int64(len(b.data)) }

func (b *mmapBackend) mapping() []byte { return b.data }

func (b *mmapBackend) close() error {
	if b.data == nil {
		return nil
	}
	err := syscall.Munmap(b.data)
	b.data = nil
	return err
}
