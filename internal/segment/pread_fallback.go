//go:build !unix || lbkeogh_pread

package segment

import "os"

// openBackend on non-Unix platforms (or under the lbkeogh_pread build tag)
// always uses positioned reads.
func openBackend(f *os.File, size int64) (backend, error) {
	return newPreadBackend(f, size), nil
}
