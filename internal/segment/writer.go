package segment

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"lbkeogh/internal/fourier"
	"lbkeogh/internal/paa"
)

// Features computes the per-record compressed columns a segment stores
// alongside the raw series: the rotation-invariant Fourier magnitudes and
// the PAA means, both at dimensionality d. Ingest pipelines call it from
// worker goroutines and hand the results to Writer.AddPrecomputed so the
// single writer goroutine only streams bytes.
func Features(series []float64, d int) (mags, paas []float64) {
	return fourier.Magnitudes(series, d), paa.Reduce(series, d)
}

// colSpill is one column's spill state: a temporary file written through a
// buffered writer, with the section CRC accumulated as bytes stream through.
type colSpill struct {
	f   *os.File
	bw  *bufio.Writer
	crc hash.Hash32
	n   int64 // bytes written
}

func newColSpill(dir string) (*colSpill, error) {
	f, err := os.CreateTemp(dir, ".lbseg-col-*")
	if err != nil {
		return nil, err
	}
	c := &colSpill{f: f, crc: crc32.NewIEEE()}
	c.bw = bufio.NewWriterSize(io.MultiWriter(f, c.crc), 1<<16)
	return c, nil
}

func (c *colSpill) write(p []byte) error {
	n, err := c.bw.Write(p)
	c.n += int64(n)
	return err
}

func (c *colSpill) discard() {
	c.f.Close()
	os.Remove(c.f.Name())
}

// Writer builds one immutable segment file. Records stream through
// per-column spill files (nothing accumulates in memory), and Close
// assembles the final file under a temporary name before renaming it into
// place, so path either holds a complete, checksummed segment or nothing.
//
// A Writer is single-goroutine; parallel ingest pipelines precompute
// features in workers and funnel records through one Writer.
type Writer struct {
	path  string
	n, d  int
	count int64
	cols  [numSections]*colSpill
	buf   []byte // encode scratch, one record of the widest column
	done  bool
}

// NewWriter starts a segment at path for series of length n with d feature
// dimensions. The spill files live next to path so the final rename stays on
// one filesystem.
func NewWriter(path string, n, d int) (*Writer, error) {
	if n < 2 {
		return nil, fmt.Errorf("segment: series length %d < 2", n)
	}
	if d < 1 || d > n/2 {
		return nil, fmt.Errorf("segment: dims %d outside [1, n/2=%d]", d, n/2)
	}
	w := &Writer{path: path, n: n, d: d, buf: make([]byte, 8*n)}
	dir := filepath.Dir(path)
	for i := range w.cols {
		c, err := newColSpill(dir)
		if err != nil {
			w.Abort()
			return nil, fmt.Errorf("segment: %w", err)
		}
		w.cols[i] = c
	}
	return w, nil
}

// Add appends one record, computing its feature columns. Use AddPrecomputed
// when features were computed elsewhere (e.g. by ingest workers).
func (w *Writer) Add(series []float64, label int64) error {
	if len(series) != w.n {
		return fmt.Errorf("segment: series length %d != %d", len(series), w.n)
	}
	mags, paas := Features(series, w.d)
	return w.AddPrecomputed(series, mags, paas, label)
}

// AddPrecomputed appends one record with caller-computed feature columns.
func (w *Writer) AddPrecomputed(series, mags, paas []float64, label int64) error {
	if w.done {
		return fmt.Errorf("segment: writer already closed")
	}
	if len(series) != w.n {
		return fmt.Errorf("segment: series length %d != %d", len(series), w.n)
	}
	if len(mags) != w.d || len(paas) != w.d {
		return fmt.Errorf("segment: feature lengths %d/%d != dims %d", len(mags), len(paas), w.d)
	}
	if err := w.writeFloats(w.cols[0], series); err != nil {
		return err
	}
	if err := w.writeFloats(w.cols[1], mags); err != nil {
		return err
	}
	if err := w.writeFloats(w.cols[2], paas); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(w.buf, uint64(label))
	if err := w.cols[3].write(w.buf[:8]); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	w.count++
	return nil
}

func (w *Writer) writeFloats(c *colSpill, vals []float64) error {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(w.buf[8*i:], math.Float64bits(v))
	}
	if err := c.write(w.buf[:8*len(vals)]); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	return nil
}

// Count returns the number of records appended so far.
func (w *Writer) Count() int64 { return w.count }

// Abort discards the writer and every temporary file. Safe after Close.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	for _, c := range w.cols {
		if c != nil {
			c.discard()
		}
	}
}

// Close assembles the segment and atomically renames it into place. A
// zero-record writer is an error (an empty segment has no reason to exist).
func (w *Writer) Close() error {
	if w.done {
		return fmt.Errorf("segment: writer already closed")
	}
	if w.count == 0 {
		w.Abort()
		return fmt.Errorf("segment: refusing to write an empty segment")
	}
	w.done = true
	defer func() {
		for _, c := range w.cols {
			c.discard()
		}
	}()

	secs := make([]section, numSections)
	off := alignUp(int64(headerSize + numSections*entrySize + 4))
	for i, c := range w.cols {
		if err := c.bw.Flush(); err != nil {
			return fmt.Errorf("segment: %w", err)
		}
		secs[i] = section{kind: sectionKinds[i], off: off, length: c.n, crc: c.crc.Sum32()}
		off = alignUp(off + c.n)
	}

	out, err := os.CreateTemp(filepath.Dir(w.path), ".lbseg-final-*")
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	defer func() {
		if out != nil {
			out.Close()
			os.Remove(out.Name())
		}
	}()
	h := header{n: w.n, d: w.d, count: w.count, sections: numSections, tableOff: headerSize}
	if _, err := out.Write(encodeHeader(h)); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	if _, err := out.Write(encodeTable(secs)); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	for i, c := range w.cols {
		if err := copyAt(out, secs[i].off, c.f); err != nil {
			return fmt.Errorf("segment: assembling column %d: %w", i, err)
		}
	}
	if err := out.Sync(); err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	tmpName := out.Name()
	if err := out.Close(); err != nil {
		out = nil
		os.Remove(tmpName)
		return fmt.Errorf("segment: %w", err)
	}
	out = nil
	if err := os.Rename(tmpName, w.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("segment: %w", err)
	}
	return syncDir(filepath.Dir(w.path))
}

// copyAt seeks dst to off (zero-filling the alignment gap) and copies src
// from its start.
func copyAt(dst *os.File, off int64, src *os.File) error {
	if _, err := dst.Seek(off, io.SeekStart); err != nil {
		return err
	}
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return err
	}
	_, err := io.Copy(dst, src)
	return err
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
// Filesystems that refuse directory fsync (some network mounts) are
// tolerated: the rename itself is still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() //nolint:errcheck // best-effort durability, see above
	return nil
}
