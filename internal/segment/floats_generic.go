//go:build !(amd64 || arm64 || 386 || arm || riscv64 || loong64 || ppc64le || mips64le || mipsle || wasm)

package segment

// canViewFloats is false on big-endian (or unknown-endian) architectures:
// records must be decoded, not viewed.
const canViewFloats = false

// floatsOf decodes by copying on architectures whose byte order does not
// match the little-endian file encoding.
func floatsOf(b []byte, n int) []float64 {
	return decodeFloats(b, n)
}
