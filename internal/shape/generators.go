package shape

import (
	"math"
	"math/rand"
)

// Superformula is the Gielis superformula, a compact generator of organic,
// closed, star-convex-ish contours — our stand-in for the paper's insect,
// leaf and skull photographs (see DESIGN.md, substitutions).
//
//	r(θ) = ( |cos(mθ/4)/a|^n2 + |sin(mθ/4)/b|^n3 )^(-1/n1)
type Superformula struct {
	M, N1, N2, N3 float64
	A, B          float64
}

// Radius evaluates the superformula at angle theta, guarding against the
// degenerate zero denominator.
func (s Superformula) Radius(theta float64) float64 {
	a, b := s.A, s.B
	if a == 0 {
		a = 1
	}
	if b == 0 {
		b = 1
	}
	t1 := math.Pow(math.Abs(math.Cos(s.M*theta/4)/a), s.N2)
	t2 := math.Pow(math.Abs(math.Sin(s.M*theta/4)/b), s.N3)
	sum := t1 + t2
	if sum <= 0 {
		return 1
	}
	return math.Pow(sum, -1/s.N1)
}

// RadialShape is a radius function with composable distortions, used to
// build within-class variation: noise, articulation (local angular bending,
// Figure 18), occlusion (missing parts, Figures 14–15) and harmonics.
type RadialShape struct {
	Base func(theta float64) float64
	mods []func(theta, r float64) (float64, float64)
}

// NewRadialShape wraps a base radius function.
func NewRadialShape(base func(theta float64) float64) *RadialShape {
	return &RadialShape{Base: base}
}

// Radius evaluates the distorted shape at theta.
func (rs *RadialShape) Radius(theta float64) float64 {
	theta = math.Mod(theta, 2*math.Pi)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	r := rs.Base(theta)
	for _, m := range rs.mods {
		theta, r = m(theta, r)
		r = math.Max(r, 1e-3)
	}
	return r
}

// WithHarmonic adds a sinusoidal radial perturbation of the given order,
// amplitude and phase — cheap per-instance individuality.
func (rs *RadialShape) WithHarmonic(order int, amp, phase float64) *RadialShape {
	rs.mods = append(rs.mods, func(theta, r float64) (float64, float64) {
		return theta, r * (1 + amp*math.Sin(float64(order)*theta+phase))
	})
	return rs
}

// WithArticulation bends the region around angle at by locally warping the
// angular coordinate — the "tweaked hindwing" of Figure 18: features move
// along the contour without appearing or vanishing.
func (rs *RadialShape) WithArticulation(at, width, strength float64) *RadialShape {
	rs.mods = append(rs.mods, func(theta, r float64) (float64, float64) {
		d := angularDiff(theta, at)
		if math.Abs(d) < width {
			w := math.Cos(d / width * math.Pi / 2)
			shifted := theta + strength*w*w
			return shifted, rs.Base(math.Mod(shifted+2*math.Pi, 2*math.Pi))
		}
		return theta, r
	})
	return rs
}

// WithOcclusion flattens the radius over an angular window — a broken tip or
// missing part (the Skhul V nose region, projectile-point tangs).
func (rs *RadialShape) WithOcclusion(at, width, level float64) *RadialShape {
	rs.mods = append(rs.mods, func(theta, r float64) (float64, float64) {
		if math.Abs(angularDiff(theta, at)) < width {
			return theta, math.Min(r, level)
		}
		return theta, r
	})
	return rs
}

// WithNoise multiplies the radius by smooth pseudo-random ripple derived
// from rng (fixed per instance, not per evaluation).
func (rs *RadialShape) WithNoise(rng *rand.Rand, amp float64) *RadialShape {
	// A small random Fourier series keeps the contour smooth and the
	// signature well defined at any sampling density.
	const terms = 6
	amps := make([]float64, terms)
	phases := make([]float64, terms)
	for i := range amps {
		amps[i] = amp * rng.NormFloat64() / terms
		phases[i] = rng.Float64() * 2 * math.Pi
	}
	rs.mods = append(rs.mods, func(theta, r float64) (float64, float64) {
		var p float64
		for i := 0; i < terms; i++ {
			p += amps[i] * math.Sin(float64(i+2)*theta+phases[i])
		}
		return theta, r * (1 + p)
	})
	return rs
}

func angularDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

// Letter rasterizes a blocky lowercase letterform used by the paper's
// motivating examples: "b" and "d" (mirror pair), "p" and "q" (their flips),
// plus "6" and "9" (rotation pair) for rotation-limited queries. The shapes
// are deliberately simple: a stem plus a bowl, with the bowl's position
// determining which glyph it is.
func Letter(ch byte, size int) *Bitmap {
	b := NewBitmap(size, size)
	s := float64(size)
	stemW := s * 0.16
	bowlR := s * 0.28
	switch ch {
	case 'b':
		b.FillRect(s*0.18, s*0.08, s*0.18+stemW, s*0.92)
		b.FillDisk(s*0.5, s*0.64, bowlR)
	case 'd':
		b.FillRect(s*0.82-stemW, s*0.08, s*0.82, s*0.92)
		b.FillDisk(s*0.5, s*0.64, bowlR)
	case 'p':
		b.FillRect(s*0.18, s*0.08, s*0.18+stemW, s*0.92)
		b.FillDisk(s*0.5, s*0.36, bowlR)
	case 'q':
		b.FillRect(s*0.82-stemW, s*0.08, s*0.82, s*0.92)
		b.FillDisk(s*0.5, s*0.36, bowlR)
	case '6':
		b.FillDisk(s*0.5, s*0.66, bowlR)
		b.FillPolygon([][2]float64{
			{s * 0.44, s * 0.66}, {s * 0.72, s * 0.10},
			{s * 0.84, s * 0.16}, {s * 0.58, s * 0.70},
		})
	case '9':
		b.FillDisk(s*0.5, s*0.34, bowlR)
		b.FillPolygon([][2]float64{
			{s * 0.56, s * 0.34}, {s * 0.28, s * 0.90},
			{s * 0.16, s * 0.84}, {s * 0.42, s * 0.30},
		})
	default:
		panic("shape: unsupported letter " + string(ch))
	}
	return b
}
