package shape

import (
	"testing"
)

// FuzzTrace feeds arbitrary bit patterns as bitmaps: tracing must always
// terminate with a connected boundary of foreground pixels (or an error for
// empty bitmaps), never panic, and never exceed a sane length. This is the
// guard against the pinched-boundary non-termination bug (see EXPERIMENTS.md
// note 1).
func FuzzTrace(f *testing.F) {
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x18, 0x3C, 0x18, 0x00, 0x00})
	f.Add([]byte{0x01})
	f.Add(make([]byte, 32))
	f.Add([]byte{0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55, 0xAA, 0x55}) // checkerboard
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		const w = 16
		h := (len(data)*8 + w - 1) / w
		if h < 1 {
			return
		}
		if h > 64 {
			h = 64
		}
		b := NewBitmap(w, h)
		count := 0
		for bit := 0; bit < w*h && bit < len(data)*8; bit++ {
			if data[bit/8]&(1<<(bit%8)) != 0 {
				b.Set(bit%w, bit/w, true)
				count++
			}
		}
		contour, err := Trace(b)
		if count == 0 {
			if err == nil {
				t.Fatal("empty bitmap must error")
			}
			return
		}
		if err != nil {
			t.Fatalf("trace failed on non-empty bitmap: %v", err)
		}
		if len(contour) == 0 || len(contour) > 8*(w*h+8) {
			t.Fatalf("contour length %d out of range", len(contour))
		}
		for i, p := range contour {
			if !b.Get(p[0], p[1]) {
				t.Fatalf("contour point %d = %v is background", i, p)
			}
			if i > 0 {
				dx := p[0] - contour[i-1][0]
				dy := p[1] - contour[i-1][1]
				if dx < -1 || dx > 1 || dy < -1 || dy > 1 {
					t.Fatalf("contour discontinuity at %d", i)
				}
			}
		}
	})
}
