package shape

import (
	"math"
	"testing"

	"lbkeogh/internal/core"
	"lbkeogh/internal/ts"
	"lbkeogh/internal/wedge"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(10, 8)
	b.Set(3, 4, true)
	if !b.Get(3, 4) || b.Get(4, 3) {
		t.Fatal("Set/Get broken")
	}
	b.Set(-1, 0, true) // must not panic
	if b.Get(-1, 0) || b.Get(10, 0) || b.Get(0, 8) {
		t.Fatal("out-of-range must read background")
	}
	if b.Count() != 1 {
		t.Fatalf("Count = %d", b.Count())
	}
	c := b.Clone()
	c.Set(0, 0, true)
	if b.Get(0, 0) {
		t.Fatal("Clone must copy")
	}
}

func TestNewBitmapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewBitmap(0, 5)
}

func TestFillDiskArea(t *testing.T) {
	b := NewBitmap(64, 64)
	b.FillDisk(32, 32, 20)
	area := float64(b.Count())
	want := math.Pi * 20 * 20
	if math.Abs(area-want)/want > 0.05 {
		t.Fatalf("disk area %v, want ~%v", area, want)
	}
}

func TestFillPolygonSquare(t *testing.T) {
	b := NewBitmap(32, 32)
	b.FillPolygon([][2]float64{{8, 8}, {24, 8}, {24, 24}, {8, 24}})
	n := b.Count()
	if n < 200 || n > 300 { // ~16x16
		t.Fatalf("square area = %d, want ~256", n)
	}
	if !b.Get(16, 16) || b.Get(4, 4) {
		t.Fatal("square fill misplaced")
	}
}

func TestCentroidOfDisk(t *testing.T) {
	b := NewBitmap(64, 64)
	b.FillDisk(20, 40, 10)
	cx, cy, err := b.Centroid()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cx-20) > 1 || math.Abs(cy-40) > 1 {
		t.Fatalf("centroid (%v,%v), want (20,40)", cx, cy)
	}
	if _, _, err := NewBitmap(4, 4).Centroid(); err == nil {
		t.Fatal("empty centroid must error")
	}
}

func TestTraceDisk(t *testing.T) {
	b := NewBitmap(64, 64)
	b.FillDisk(32, 32, 16)
	contour, err := Trace(b)
	if err != nil {
		t.Fatal(err)
	}
	// Perimeter of a rasterized circle: roughly 2πr to 8r.
	if len(contour) < 80 || len(contour) > 160 {
		t.Fatalf("contour length = %d", len(contour))
	}
	// Every contour point is foreground with at least one background
	// 8-neighbour... boundary property.
	for _, p := range contour {
		if !b.Get(p[0], p[1]) {
			t.Fatalf("contour point %v not foreground", p)
		}
		hasBG := false
		for _, d := range mooreNeighbours {
			if !b.Get(p[0]+d[0], p[1]+d[1]) {
				hasBG = true
				break
			}
		}
		if !hasBG {
			t.Fatalf("contour point %v is interior", p)
		}
	}
	// Consecutive contour points are 8-adjacent.
	for i := 1; i < len(contour); i++ {
		dx := contour[i][0] - contour[i-1][0]
		dy := contour[i][1] - contour[i-1][1]
		if dx < -1 || dx > 1 || dy < -1 || dy > 1 || (dx == 0 && dy == 0) {
			t.Fatalf("contour discontinuity at %d", i)
		}
	}
}

func TestTraceSinglePixel(t *testing.T) {
	b := NewBitmap(5, 5)
	b.Set(2, 2, true)
	contour, err := Trace(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(contour) != 1 || contour[0] != [2]int{2, 2} {
		t.Fatalf("single-pixel contour = %v", contour)
	}
}

func TestTraceEmptyErrors(t *testing.T) {
	if _, err := Trace(NewBitmap(4, 4)); err == nil {
		t.Fatal("want error for empty bitmap")
	}
}

func TestSignatureOfDiskIsFlat(t *testing.T) {
	b := NewBitmap(128, 128)
	b.FillDisk(64, 64, 40)
	sig, err := Signature(b, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A circle's raw signature is constant up to rasterization; after
	// z-normalization the values stay small in magnitude spread... instead
	// check the RAW spread via a non-normalized reconstruction: the standard
	// deviation before normalization is tiny relative to the radius, so any
	// large z-scores come from sub-pixel jitter only. Here we simply assert
	// the signature exists and has the right length.
	if len(sig) != 64 {
		t.Fatalf("signature length = %d", len(sig))
	}
}

// The angle-parametrized raster extraction must closely approximate the
// analytic radial signature (up to rotation and rasterization error).
func TestAngularSignatureMatchesRadialGroundTruth(t *testing.T) {
	sf := Superformula{M: 5, N1: 2, N2: 7, N3: 7, A: 1, B: 1}
	bmp := FromRadial(sf.Radius, 160)
	sig, err := AngularSignature(bmp, 128)
	if err != nil {
		t.Fatal(err)
	}
	truth := RadialSignature(sf.Radius, 128)
	rs := core.NewRotationSet(truth, core.Options{Mirror: true, MaxShift: -1}, nil)
	s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
	m := s.MatchSeries(sig, -1, nil)
	// z-normalized series of length 128 have norm ~sqrt(128)≈11.3; require a
	// close match.
	if m.Dist > 1.5 {
		t.Fatalf("angular signature too far from analytic truth: %v", m.Dist)
	}
	if _, err := AngularSignature(NewBitmap(4, 4), 8); err == nil {
		t.Fatal("empty bitmap must error")
	}
}

// The arc-length-parametrized contour signature uses a different
// parametrization than the analytic angle-based one, but must still be much
// closer to its own ground truth (the same pipeline at higher resolution)
// than to a different shape.
func TestSignatureConsistentAcrossResolutions(t *testing.T) {
	sf := Superformula{M: 5, N1: 2, N2: 7, N3: 7, A: 1, B: 1}
	sigLo, err := Signature(FromRadial(sf.Radius, 120), 128)
	if err != nil {
		t.Fatal(err)
	}
	sigHi, err := Signature(FromRadial(sf.Radius, 240), 128)
	if err != nil {
		t.Fatal(err)
	}
	other := Superformula{M: 3, N1: 4.5, N2: 10, N3: 10, A: 1, B: 1}
	sigOther, err := Signature(FromRadial(other.Radius, 240), 128)
	if err != nil {
		t.Fatal(err)
	}
	rs := core.NewRotationSet(sigHi, core.Options{Mirror: true, MaxShift: -1}, nil)
	s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
	same := s.MatchSeries(sigLo, -1, nil)
	diff := s.MatchSeries(sigOther, -1, nil)
	if same.Dist >= diff.Dist {
		t.Fatalf("resolution variants (%v) should match closer than a different shape (%v)", same.Dist, diff.Dist)
	}
	if same.Dist > 2.5 {
		t.Fatalf("same shape across resolutions too far apart: %v", same.Dist)
	}
}

// Rotating the bitmap must circularly shift the signature: the rotation-
// invariant distance between original and rotated signatures is near zero.
func TestBitmapRotationShiftsSignature(t *testing.T) {
	sf := Superformula{M: 3, N1: 4.5, N2: 10, N3: 10, A: 1, B: 1}
	bmp := FromRadial(sf.Radius, 160)
	sig0, err := Signature(bmp, 128)
	if err != nil {
		t.Fatal(err)
	}
	rot := bmp.Rotate(math.Pi / 3)
	sig1, err := Signature(rot, 128)
	if err != nil {
		t.Fatal(err)
	}
	rs := core.NewRotationSet(sig0, core.DefaultOptions(), nil)
	s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
	aligned := s.MatchSeries(sig1, -1, nil)
	raw, _ := (wedge.ED{}).Distance(sig0, sig1, -1, nil)
	if aligned.Dist > 3.0 {
		t.Fatalf("rotation-invariant distance too large: %v", aligned.Dist)
	}
	if aligned.Dist > raw {
		t.Fatalf("aligned distance %v exceeds unaligned %v", aligned.Dist, raw)
	}
}

// Mirroring the bitmap reverses the signature: only the mirror-invariant
// matcher recovers a near-zero distance.
func TestBitmapMirrorReversesSignature(t *testing.T) {
	bmp := Letter('b', 160)
	sigB, err := Signature(bmp, 128)
	if err != nil {
		t.Fatal(err)
	}
	sigD, err := Signature(Letter('d', 160), 128)
	if err != nil {
		t.Fatal(err)
	}
	plain := core.NewRotationSet(sigB, core.DefaultOptions(), nil)
	mir := core.NewRotationSet(sigB, core.Options{Mirror: true, MaxShift: -1}, nil)
	dPlain := core.NewSearcher(plain, wedge.ED{}, core.Wedge, core.SearcherConfig{}).MatchSeries(sigD, -1, nil)
	dMir := core.NewSearcher(mir, wedge.ED{}, core.Wedge, core.SearcherConfig{}).MatchSeries(sigD, -1, nil)
	if dMir.Dist >= dPlain.Dist {
		t.Fatalf("mirror invariance should reduce the b/d distance: %v vs %v", dMir.Dist, dPlain.Dist)
	}
	if dMir.Dist > 2.5 {
		t.Fatalf("b and mirrored d should nearly match, got %v", dMir.Dist)
	}
}

func TestLettersDistinct(t *testing.T) {
	sigs := map[byte][]float64{}
	for _, ch := range []byte{'b', 'd', 'p', 'q', '6', '9'} {
		sig, err := Signature(Letter(ch, 160), 96)
		if err != nil {
			t.Fatalf("%c: %v", ch, err)
		}
		sigs[ch] = sig
	}
	// b vs d must differ strongly without mirror invariance at rotation 0.
	raw, _ := (wedge.ED{}).Distance(sigs['b'], sigs['d'], -1, nil)
	if raw < 1 {
		t.Fatalf("b vs d raw distance suspiciously small: %v", raw)
	}
}

func TestLetterPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Letter('z', 64)
}

func TestMirrorXInvolution(t *testing.T) {
	bmp := Letter('b', 64)
	back := bmp.MirrorX().MirrorX()
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if bmp.Get(x, y) != back.Get(x, y) {
				t.Fatal("MirrorX twice must be identity")
			}
		}
	}
}

func TestRadialShapeDistortions(t *testing.T) {
	base := Superformula{M: 4, N1: 3, N2: 8, N3: 8, A: 1, B: 1}
	plain := RadialSignature(base.Radius, 64)

	art := NewRadialShape(base.Radius).WithArticulation(1.0, 0.5, 0.2)
	artSig := RadialSignature(art.Radius, 64)
	if ts.Equal(plain, artSig, 1e-9) {
		t.Fatal("articulation must change the signature")
	}

	occ := NewRadialShape(base.Radius).WithOcclusion(2.0, 0.4, 0.3)
	occSig := RadialSignature(occ.Radius, 64)
	if ts.Equal(plain, occSig, 1e-9) {
		t.Fatal("occlusion must change the signature")
	}

	rng := ts.NewRand(1)
	noisy := NewRadialShape(base.Radius).WithNoise(rng, 0.05)
	a := RadialSignature(noisy.Radius, 64)
	b := RadialSignature(noisy.Radius, 64)
	if !ts.Equal(a, b, 1e-12) {
		t.Fatal("noise must be fixed per instance, not per evaluation")
	}

	harm := NewRadialShape(base.Radius).WithHarmonic(3, 0.1, 0.5)
	if ts.Equal(plain, RadialSignature(harm.Radius, 64), 1e-9) {
		t.Fatal("harmonic must change the signature")
	}
}

func TestSuperformulaGuards(t *testing.T) {
	s := Superformula{M: 0, N1: 2, N2: 0, N3: 0} // cos^0 + sin^0 = 2 everywhere
	r := s.Radius(1.0)
	if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
		t.Fatalf("degenerate superformula radius = %v", r)
	}
}

// Regression: certain raster orientations create "pinched" one-pixel-wide
// boundary configurations on which Jacob's stopping criterion alone never
// fires — the trace used to run to its step guard (a ~16k-pixel contour on a
// 64×64 image), silently producing garbage signatures. The cycle-detecting
// trace must terminate with a sane contour at EVERY orientation.
func TestTraceTerminatesAtAllOrientations(t *testing.T) {
	sf := Superformula{M: 7, N1: 2.2, N2: 6, N3: 6, A: 1, B: 1}
	bmp := FromRadial(sf.Radius, 64)
	for deg := 0; deg < 360; deg += 7 {
		rot := bmp.Rotate(float64(deg) * math.Pi / 180)
		contour, err := Trace(rot)
		if err != nil {
			t.Fatalf("%d°: %v", deg, err)
		}
		// A sane boundary of a fat 64×64 blob is a few hundred pixels; the
		// old bug produced tens of thousands.
		if len(contour) > 1000 {
			t.Fatalf("%d°: contour length %d — trace failed to terminate", deg, len(contour))
		}
		// The traced cycle must be 8-connected including the wrap-around.
		for i := range contour {
			p, q := contour[i], contour[(i+1)%len(contour)]
			dx, dy := q[0]-p[0], q[1]-p[1]
			if dx < -1 || dx > 1 || dy < -1 || dy > 1 {
				t.Fatalf("%d°: contour not closed/connected at %d", deg, i)
			}
		}
	}
}

// Regression: a rotated raster must yield a signature close (under RED) to
// the unrotated raster's signature at every orientation — the covariance on
// which the whole method rests.
func TestSignatureCovarianceSweep(t *testing.T) {
	sf := Superformula{M: 4, N1: 3, N2: 7, N3: 7, A: 1, B: 1}
	bmp := FromRadial(sf.Radius, 96)
	sig0, err := Signature(bmp, 128)
	if err != nil {
		t.Fatal(err)
	}
	rs := core.NewRotationSet(sig0, core.Options{Mirror: true, MaxShift: -1}, nil)
	s := core.NewSearcher(rs, wedge.ED{}, core.Wedge, core.SearcherConfig{})
	for deg := 10; deg < 360; deg += 23 {
		sig, err := Signature(bmp.Rotate(float64(deg)*math.Pi/180), 128)
		if err != nil {
			t.Fatalf("%d°: %v", deg, err)
		}
		if m := s.MatchSeries(sig, -1, nil); m.Dist > 3.0 {
			t.Fatalf("%d°: rotation covariance broken, RED = %v", deg, m.Dist)
		}
	}
}

func TestLargestComponentFiltersSpeckle(t *testing.T) {
	b := NewBitmap(32, 32)
	b.FillDisk(16, 16, 8)
	b.Set(2, 2, true) // stray pixel BEFORE the disk in scan order
	lc := LargestComponent(b)
	if lc.Get(2, 2) {
		t.Fatal("speckle survived")
	}
	if lc.Count() != b.Count()-1 {
		t.Fatalf("component size wrong: %d vs %d", lc.Count(), b.Count()-1)
	}
	contour, err := Trace(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range contour {
		if p == [2]int{2, 2} {
			t.Fatal("trace started on the speckle")
		}
	}
	if LargestComponent(NewBitmap(4, 4)).Count() != 0 {
		t.Fatal("empty bitmap should stay empty")
	}
}

func TestRotateBitmapPreservesAreaApprox(t *testing.T) {
	bmp := Letter('b', 128)
	rot := bmp.Rotate(math.Pi / 4)
	a0, a1 := float64(bmp.Count()), float64(rot.Count())
	if math.Abs(a0-a1)/a0 > 0.1 {
		t.Fatalf("rotation changed area too much: %v -> %v", a0, a1)
	}
}
