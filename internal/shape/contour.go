package shape

import (
	"fmt"
	"math"

	"lbkeogh/internal/ts"
)

// mooreNeighbours lists the 8-neighbourhood in clockwise order starting from
// west, for a raster whose y axis grows downward.
var mooreNeighbours = [8][2]int{
	{-1, 0},  // W
	{-1, -1}, // NW
	{0, -1},  // N
	{1, -1},  // NE
	{1, 0},   // E
	{1, 1},   // SE
	{0, 1},   // S
	{-1, 1},  // SW
}

// dirIndex maps a unit offset to its mooreNeighbours index.
func dirIndex(dx, dy int) int {
	for i, d := range mooreNeighbours {
		if d[0] == dx && d[1] == dy {
			return i
		}
	}
	panic(fmt.Sprintf("shape: (%d,%d) is not a Moore neighbour offset", dx, dy))
}

// LargestComponent returns a copy of b containing only its largest
// 8-connected foreground component. Rasterization artifacts — stray pixels
// from nearest-neighbour rotation, speckle noise from thresholding — would
// otherwise hijack boundary tracing, which starts from the first foreground
// pixel in scan order.
func LargestComponent(b *Bitmap) *Bitmap {
	label := make([]int, b.W*b.H)
	sizes := []int{0} // label 0 = background
	var stack [][2]int
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if !b.Get(x, y) || label[y*b.W+x] != 0 {
				continue
			}
			id := len(sizes)
			sizes = append(sizes, 0)
			stack = append(stack[:0], [2]int{x, y})
			label[y*b.W+x] = id
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				sizes[id]++
				for _, d := range mooreNeighbours {
					nx, ny := p[0]+d[0], p[1]+d[1]
					if b.Get(nx, ny) && label[ny*b.W+nx] == 0 {
						label[ny*b.W+nx] = id
						stack = append(stack, [2]int{nx, ny})
					}
				}
			}
		}
	}
	best := 0
	for id := 1; id < len(sizes); id++ {
		if sizes[id] > sizes[best] {
			best = id
		}
	}
	out := NewBitmap(b.W, b.H)
	if best == 0 {
		return out
	}
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if label[y*b.W+x] == best {
				out.Set(x, y, true)
			}
		}
	}
	return out
}

// Trace returns the closed outer boundary of the largest foreground
// component, as an ordered list of pixel coordinates, using Moore-neighbour
// tracing with Jacob's stopping criterion (terminate upon re-entering the
// start pixel from the original backtrack pixel).
func Trace(b *Bitmap) ([][2]int, error) {
	b = LargestComponent(b)
	// The start pixel is the first foreground pixel in scan order; its west
	// neighbour is guaranteed background and serves as the initial backtrack.
	sx, sy := -1, -1
scan:
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) {
				sx, sy = x, y
				break scan
			}
		}
	}
	if sx < 0 {
		return nil, fmt.Errorf("shape: cannot trace an empty bitmap")
	}

	px, py := sx, sy   // current boundary pixel
	bx, by := sx-1, sy // current backtrack (background) pixel
	contour := [][2]int{{sx, sy}}

	// The walk is deterministic in the state (pixel, backtrack), so it is
	// eventually periodic. Jacob's criterion (stop on re-entering the start
	// state) covers the common case, but on pinched one-pixel-wide
	// configurations the start state may lie on a lead-in "tail" that the
	// cycle never revisits; detecting the first repeated state of any kind —
	// and trimming the tail — terminates correctly on every input.
	type state struct{ px, py, bd int }
	seen := map[state]int{}
	maxSteps := 8 * (b.W*b.H + 8)
	for step := 0; step < maxSteps; step++ {
		// Scan the neighbours of p clockwise, starting just after the
		// backtrack pixel, for the next boundary pixel.
		bd := dirIndex(bx-px, by-py)
		if at, ok := seen[state{px, py, bd}]; ok {
			// Cycle closed: the current pixel equals both contour[at] (its
			// first occurrence) and the last appended element. Drop the
			// duplicated endpoint and any lead-in tail so the result is a
			// proper cycle whose last pixel is 8-adjacent to its first.
			return contour[at : len(contour)-1], nil
		}
		seen[state{px, py, bd}] = len(contour) - 1
		found := false
		prevX, prevY := bx, by
		for i := 1; i <= 8; i++ {
			d := (bd + i) % 8
			nx, ny := px+mooreNeighbours[d][0], py+mooreNeighbours[d][1]
			if b.Get(nx, ny) {
				bx, by = prevX, prevY
				px, py = nx, ny
				found = true
				break
			}
			prevX, prevY = nx, ny
		}
		if !found {
			return contour, nil // isolated single pixel
		}
		contour = append(contour, [2]int{px, py})
	}
	return contour, nil
}

// Signature converts the shape in b to its centroid-distance time series of
// length n (Figure 2), z-normalized. The signature starts at an arbitrary
// contour point — exactly the unknown-rotation starting-point problem this
// library solves — and proceeds in a consistent direction, so a mirrored
// shape yields a reversed signature.
//
// Samples are spaced by true Euclidean arc length along the traced contour,
// not by pixel count: an 8-connected boundary walk covers √2 the distance on
// diagonal steps, so index-uniform sampling would warp the parametrization
// whenever the shape rotates on the raster — breaking the "rotation equals
// circular shift" identity the whole method rests on.
func Signature(b *Bitmap, n int) ([]float64, error) {
	contour, err := Trace(b)
	if err != nil {
		return nil, err
	}
	cx, cy, err := b.Centroid()
	if err != nil {
		return nil, err
	}
	L := len(contour)
	raw := make([]float64, L)
	for i, p := range contour {
		dx, dy := float64(p[0])-cx, float64(p[1])-cy
		raw[i] = math.Sqrt(dx*dx + dy*dy)
	}
	if L == 1 {
		sig, err := ts.Resample(raw, n)
		if err != nil {
			return nil, err
		}
		return ts.ZNorm(sig), nil
	}
	// Cumulative arc length; segment i connects contour[i] to contour[i+1
	// mod L] (the boundary is closed).
	cum := make([]float64, L+1)
	for i := 0; i < L; i++ {
		p, q := contour[i], contour[(i+1)%L]
		cum[i+1] = cum[i] + math.Hypot(float64(q[0]-p[0]), float64(q[1]-p[1]))
	}
	total := cum[L]
	sig := make([]float64, n)
	seg := 0
	for k := 0; k < n; k++ {
		target := total * float64(k) / float64(n)
		for cum[seg+1] < target {
			seg++
		}
		frac := 0.0
		if cum[seg+1] > cum[seg] {
			frac = (target - cum[seg]) / (cum[seg+1] - cum[seg])
		}
		a := raw[seg]
		bval := raw[(seg+1)%L]
		sig[k] = a + frac*(bval-a)
	}
	return ts.ZNorm(sig), nil
}

// AngularSignature extracts the centroid-distance signature by casting n
// rays from the centroid at equally spaced angles and recording the furthest
// foreground pixel along each — an angle-parametrized alternative to the
// arc-length-parametrized Signature, exact for star-convex shapes and
// directly comparable to RadialSignature.
func AngularSignature(b *Bitmap, n int) ([]float64, error) {
	cx, cy, err := b.Centroid()
	if err != nil {
		return nil, err
	}
	maxR := math.Hypot(float64(b.W), float64(b.H))
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		dx, dy := math.Cos(theta), math.Sin(theta)
		last := 0.0
		for r := 0.0; r <= maxR; r += 0.5 {
			if b.Get(int(cx+r*dx), int(cy+r*dy)) {
				last = r
			}
		}
		out[i] = last
	}
	return ts.ZNorm(out), nil
}

// RadialSignature samples a star-convex radius function at n equally spaced
// angles and z-normalizes, bypassing rasterization. Used by the synthetic
// generators when pixel effects are not wanted, and by tests as the ground
// truth the raster pipeline must approximate.
func RadialSignature(radius func(theta float64) float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = radius(2 * math.Pi * float64(i) / float64(n))
	}
	return ts.ZNorm(out)
}

// FromRadial rasterizes a star-convex shape defined by a radius function
// (scaled so the maximum radius fits the canvas) onto a size×size bitmap.
func FromRadial(radius func(theta float64) float64, size int) *Bitmap {
	b := NewBitmap(size, size)
	c := float64(size) / 2
	maxR := 0.0
	for i := 0; i < 720; i++ {
		if r := radius(2 * math.Pi * float64(i) / 720); r > maxR {
			maxR = r
		}
	}
	if maxR <= 0 {
		return b
	}
	scale := (c - 2) / maxR
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dx, dy := float64(x)+0.5-c, float64(y)+0.5-c
			rr := math.Sqrt(dx*dx + dy*dy)
			theta := math.Atan2(dy, dx)
			if theta < 0 {
				theta += 2 * math.Pi
			}
			if rr <= radius(theta)*scale {
				b.Set(x, y, true)
			}
		}
	}
	return b
}
