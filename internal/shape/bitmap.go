// Package shape implements the 2-D substrate of the paper: binary raster
// shapes, Moore-neighbour boundary tracing, and the conversion of a closed
// contour into a 1-D centroid-distance time series (Figure 2: "the distance
// from every point on the profile to the center is measured and treated as
// the Y-axis of a time series of length n").
//
// Rotating the 2-D shape circularly shifts the signature; mirroring the
// shape reverses it — the two facts that reduce rotation-invariant and
// enantiomorphic shape matching to circular-shift matching of series.
package shape

import (
	"fmt"
	"math"
)

// Bitmap is a binary raster image.
type Bitmap struct {
	W, H int
	pix  []bool
}

// NewBitmap returns an all-background bitmap of the given size.
func NewBitmap(w, h int) *Bitmap {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("shape: invalid bitmap size %dx%d", w, h))
	}
	return &Bitmap{W: w, H: h, pix: make([]bool, w*h)}
}

// Get reports the pixel at (x, y); out-of-range coordinates are background.
func (b *Bitmap) Get(x, y int) bool {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return false
	}
	return b.pix[y*b.W+x]
}

// Set assigns the pixel at (x, y); out-of-range coordinates are ignored.
func (b *Bitmap) Set(x, y int, v bool) {
	if x < 0 || y < 0 || x >= b.W || y >= b.H {
		return
	}
	b.pix[y*b.W+x] = v
}

// Count returns the number of foreground pixels.
func (b *Bitmap) Count() int {
	n := 0
	for _, v := range b.pix {
		if v {
			n++
		}
	}
	return n
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	out := NewBitmap(b.W, b.H)
	copy(out.pix, b.pix)
	return out
}

// FillDisk sets all pixels within radius r of (cx, cy).
func (b *Bitmap) FillDisk(cx, cy, r float64) {
	x0, x1 := int(cx-r)-1, int(cx+r)+1
	y0, y1 := int(cy-r)-1, int(cy+r)+1
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			if dx*dx+dy*dy <= r*r {
				b.Set(x, y, true)
			}
		}
	}
}

// FillRect sets the axis-aligned rectangle [x0,x1]×[y0,y1].
func (b *Bitmap) FillRect(x0, y0, x1, y1 float64) {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	for y := int(y0); y <= int(y1); y++ {
		for x := int(x0); x <= int(x1); x++ {
			b.Set(x, y, true)
		}
	}
}

// FillPolygon rasterizes a simple polygon with the even-odd scanline rule.
func (b *Bitmap) FillPolygon(pts [][2]float64) {
	if len(pts) < 3 {
		return
	}
	for y := 0; y < b.H; y++ {
		fy := float64(y) + 0.5
		var xs []float64
		for i := range pts {
			p1 := pts[i]
			p2 := pts[(i+1)%len(pts)]
			y1, y2 := p1[1], p2[1]
			if (y1 <= fy && y2 > fy) || (y2 <= fy && y1 > fy) {
				t := (fy - y1) / (y2 - y1)
				xs = append(xs, p1[0]+t*(p2[0]-p1[0]))
			}
		}
		if len(xs) < 2 {
			continue
		}
		// Insertion sort (crossing lists are tiny).
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		for i := 0; i+1 < len(xs); i += 2 {
			for x := int(math.Ceil(xs[i] - 0.5)); float64(x)+0.5 <= xs[i+1]; x++ {
				b.Set(x, y, true)
			}
		}
	}
}

// Rotate returns the bitmap rotated by the given angle (radians, counter-
// clockwise) about its centre, using inverse nearest-neighbour sampling into
// a canvas of the same size.
func (b *Bitmap) Rotate(angle float64) *Bitmap {
	out := NewBitmap(b.W, b.H)
	cx, cy := float64(b.W)/2, float64(b.H)/2
	sin, cos := math.Sin(-angle), math.Cos(-angle)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			dx, dy := float64(x)+0.5-cx, float64(y)+0.5-cy
			sx := cx + dx*cos - dy*sin
			sy := cy + dx*sin + dy*cos
			if b.Get(int(sx), int(sy)) {
				out.Set(x, y, true)
			}
		}
	}
	return out
}

// MirrorX returns the bitmap flipped horizontally (the enantiomorphic form).
func (b *Bitmap) MirrorX() *Bitmap {
	out := NewBitmap(b.W, b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			out.Set(b.W-1-x, y, b.Get(x, y))
		}
	}
	return out
}

// Centroid returns the area centroid of the foreground, or an error for an
// empty bitmap.
func (b *Bitmap) Centroid() (cx, cy float64, err error) {
	var sx, sy, n float64
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) {
				sx += float64(x)
				sy += float64(y)
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("shape: empty bitmap has no centroid")
	}
	return sx / n, sy / n, nil
}

// String renders the bitmap as ASCII art (for debugging and the examples).
func (b *Bitmap) String() string {
	out := make([]byte, 0, (b.W+1)*b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			if b.Get(x, y) {
				out = append(out, '#')
			} else {
				out = append(out, '.')
			}
		}
		out = append(out, '\n')
	}
	return string(out)
}
