// Package chaincode implements the discretized shape representation and
// cyclic string matching the paper compares against in Section 2.3
// (Marzal & Palazón [23]): the contour is quantized into 8-direction chain
// codes and two shapes are compared by the minimum edit distance over every
// cyclic rotation of one of the strings.
//
// The reference algorithm runs in O(n²·log n) (Maes' divide and conquer);
// this implementation evaluates the rotations directly in O(n³), which is
// exact and fast enough at baseline-experiment scale — the point of the
// comparison is the paper's: the chain-code pipeline needs quantization, has
// parameters (substitution/indel costs), and costs orders of magnitude more
// than wedge-based matching, for no accuracy gain.
package chaincode

import (
	"fmt"
	"math"

	"lbkeogh/internal/shape"
)

// FromContour quantizes a traced contour (8-connected pixel boundary) into
// chain codes: symbol k in 0..7 encodes the direction of each step,
// counter-clockwise from east. The closing step back to the first pixel is
// included, so the code has exactly len(contour) symbols.
func FromContour(contour [][2]int) ([]byte, error) {
	if len(contour) < 2 {
		return nil, fmt.Errorf("chaincode: contour needs >= 2 points, got %d", len(contour))
	}
	// Direction table indexed by (dx+1, dy+1).
	dirOf := map[[2]int]byte{
		{1, 0}: 0, {1, -1}: 1, {0, -1}: 2, {-1, -1}: 3,
		{-1, 0}: 4, {-1, 1}: 5, {0, 1}: 6, {1, 1}: 7,
	}
	out := make([]byte, 0, len(contour))
	for i := range contour {
		p := contour[i]
		q := contour[(i+1)%len(contour)]
		d, ok := dirOf[[2]int{q[0] - p[0], q[1] - p[1]}]
		if !ok {
			return nil, fmt.Errorf("chaincode: points %d and %d are not 8-adjacent", i, (i+1)%len(contour))
		}
		out = append(out, d)
	}
	return out, nil
}

// FromBitmap traces b and chain-codes its boundary.
func FromBitmap(b *shape.Bitmap) ([]byte, error) {
	contour, err := shape.Trace(b)
	if err != nil {
		return nil, err
	}
	return FromContour(contour)
}

// AngularSubstCost is the standard substitution cost between chain-code
// symbols: the cyclic direction difference scaled to [0, 1] (opposite
// directions cost 1, equal directions 0).
func AngularSubstCost(a, b byte) float64 {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	if 8-d < d {
		d = 8 - d
	}
	return float64(d) / 4
}

// UnitSubstCost is 0/1 substitution.
func UnitSubstCost(a, b byte) float64 {
	if a == b {
		return 0
	}
	return 1
}

// EditDistance is the classic string edit distance between a and b with the
// given substitution cost and insertion/deletion cost.
func EditDistance(a, b []byte, sub func(x, y byte) float64, indel float64) float64 {
	prev := make([]float64, len(b)+1)
	curr := make([]float64, len(b)+1)
	for j := range prev {
		prev[j] = float64(j) * indel
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = float64(i) * indel
		for j := 1; j <= len(b); j++ {
			best := prev[j-1] + sub(a[i-1], b[j-1])
			if v := prev[j] + indel; v < best {
				best = v
			}
			if v := curr[j-1] + indel; v < best {
				best = v
			}
			curr[j] = best
		}
		prev, curr = curr, prev
	}
	return prev[len(b)]
}

// CyclicEditDistance is the rotation-invariant form: the minimum edit
// distance between any cyclic rotation of a and the string b. Exact, O(n³):
// every rotation of a is evaluated (the [23] baseline achieves O(n² log n)
// with Maes' algorithm; same answer, different constant — steps accounting
// in the experiments uses the reference algorithm's cost model).
func CyclicEditDistance(a, b []byte, sub func(x, y byte) float64, indel float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Max(float64(len(a)), float64(len(b))) * indel
	}
	rot := make([]byte, len(a))
	best := math.Inf(1)
	for s := 0; s < len(a); s++ {
		copy(rot, a[s:])
		copy(rot[len(a)-s:], a[:s])
		if d := EditDistance(rot, b, sub, indel); d < best {
			best = d
		}
	}
	return best
}

// ReferenceSteps is the cost model of the [23] algorithm for one comparison
// of two length-n chain codes: n·n·log2(n) elementary operations.
func ReferenceSteps(n int) float64 {
	if n < 2 {
		return float64(n)
	}
	return float64(n) * float64(n) * math.Log2(float64(n))
}
