package chaincode

import (
	"math"
	"testing"

	"lbkeogh/internal/shape"
)

func TestFromContourSquare(t *testing.T) {
	// A 2x2 pixel square traced clockwise in image coordinates (y down):
	// (0,0) -> (1,0) -> (1,1) -> (0,1) -> close.
	contour := [][2]int{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	code, err := FromContour(contour)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 7, 4, 3} // E, SE->... with y-down: (0,1) step is dir 7? verify below
	_ = want
	if len(code) != 4 {
		t.Fatalf("code length %d", len(code))
	}
	// Steps: (1,0)=E:0, (0,1)=S? y grows downward; dir table has {0,1}:6.
	if code[0] != 0 || code[1] != 6 || code[2] != 4 || code[3] != 2 {
		t.Fatalf("code = %v, want [0 6 4 2]", code)
	}
}

func TestFromContourErrors(t *testing.T) {
	if _, err := FromContour([][2]int{{0, 0}}); err == nil {
		t.Fatal("want error for single point")
	}
	if _, err := FromContour([][2]int{{0, 0}, {5, 5}}); err == nil {
		t.Fatal("want error for non-adjacent points")
	}
}

func TestFromBitmapDisk(t *testing.T) {
	b := shape.NewBitmap(32, 32)
	b.FillDisk(16, 16, 8)
	code, err := FromBitmap(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) < 30 || len(code) > 80 {
		t.Fatalf("disk chain code length %d", len(code))
	}
	// A closed boundary's direction steps must sum to a full turn; weaker
	// check: all 8 directions of a circle appear.
	seen := map[byte]bool{}
	for _, c := range code {
		seen[c] = true
	}
	if len(seen) < 8 {
		t.Fatalf("circle uses only %d directions", len(seen))
	}
}

func TestSubstCosts(t *testing.T) {
	if AngularSubstCost(0, 0) != 0 || AngularSubstCost(3, 3) != 0 {
		t.Fatal("equal symbols must cost 0")
	}
	if AngularSubstCost(0, 4) != 1 {
		t.Fatal("opposite directions must cost 1")
	}
	if AngularSubstCost(0, 7) != 0.25 || AngularSubstCost(7, 0) != 0.25 {
		t.Fatal("adjacent directions must cost 0.25 (cyclic)")
	}
	if UnitSubstCost(1, 1) != 0 || UnitSubstCost(1, 2) != 1 {
		t.Fatal("unit cost broken")
	}
}

func TestEditDistanceKnown(t *testing.T) {
	a := []byte{0, 1, 2, 3}
	if d := EditDistance(a, a, UnitSubstCost, 1); d != 0 {
		t.Fatalf("self distance %v", d)
	}
	// One substitution.
	b := []byte{0, 1, 7, 3}
	if d := EditDistance(a, b, UnitSubstCost, 1); d != 1 {
		t.Fatalf("one-subst distance %v", d)
	}
	// Pure indels.
	if d := EditDistance(a, a[:2], UnitSubstCost, 1); d != 2 {
		t.Fatalf("deletion distance %v", d)
	}
	if d := EditDistance(nil, a, UnitSubstCost, 1); d != 4 {
		t.Fatalf("empty-vs-full distance %v", d)
	}
}

func TestEditDistanceTriangle(t *testing.T) {
	strs := [][]byte{
		{0, 1, 2, 3, 4}, {0, 1, 1, 3, 4}, {7, 6, 5, 4, 3}, {0, 0, 0, 0, 0},
	}
	for _, a := range strs {
		for _, b := range strs {
			for _, c := range strs {
				ab := EditDistance(a, b, UnitSubstCost, 1)
				bc := EditDistance(b, c, UnitSubstCost, 1)
				ac := EditDistance(a, c, UnitSubstCost, 1)
				if ac > ab+bc+1e-12 {
					t.Fatalf("triangle violated: %v > %v + %v", ac, ab, bc)
				}
			}
		}
	}
}

func TestCyclicEditDistanceRotationInvariant(t *testing.T) {
	a := []byte{0, 1, 2, 3, 4, 5, 6, 7, 0, 2}
	b := []byte{1, 2, 3, 4, 5, 6, 7, 0, 2, 0}
	base := CyclicEditDistance(a, b, AngularSubstCost, 1)
	for s := 1; s < len(a); s++ {
		rot := append(append([]byte{}, a[s:]...), a[:s]...)
		if d := CyclicEditDistance(rot, b, AngularSubstCost, 1); math.Abs(d-base) > 1e-12 {
			t.Fatalf("cyclic distance not rotation invariant at shift %d: %v vs %v", s, d, base)
		}
	}
	// A rotated copy is at distance 0.
	rot := append(append([]byte{}, a[4:]...), a[:4]...)
	if d := CyclicEditDistance(rot, a, UnitSubstCost, 1); d != 0 {
		t.Fatalf("rotated copy distance %v", d)
	}
}

// Chain-coded rotated bitmaps must be close under cyclic edit distance,
// while different shapes are far — the discretized analogue of rotation-
// invariant matching.
func TestCyclicMatchingOnShapes(t *testing.T) {
	sf := shape.Superformula{M: 4, N1: 3, N2: 7, N3: 7, A: 1, B: 1}
	bmp := shape.FromRadial(sf.Radius, 48)
	codeA, err := FromBitmap(bmp)
	if err != nil {
		t.Fatal(err)
	}
	codeB, err := FromBitmap(bmp.Rotate(math.Pi / 2))
	if err != nil {
		t.Fatal(err)
	}
	other := shape.Superformula{M: 7, N1: 2, N2: 9, N3: 9, A: 1, B: 1}
	codeC, err := FromBitmap(shape.FromRadial(other.Radius, 48))
	if err != nil {
		t.Fatal(err)
	}
	same := CyclicEditDistance(codeA, codeB, AngularSubstCost, 1)
	diff := CyclicEditDistance(codeA, codeC, AngularSubstCost, 1)
	if same >= diff {
		t.Fatalf("rotated copy (%v) should be closer than a different shape (%v)", same, diff)
	}
}

func TestReferenceSteps(t *testing.T) {
	if ReferenceSteps(1) != 1 {
		t.Fatal("degenerate cost model")
	}
	if got := ReferenceSteps(256); got != 256*256*8 {
		t.Fatalf("ReferenceSteps(256) = %v", got)
	}
}

func TestCyclicEmpty(t *testing.T) {
	if d := CyclicEditDistance(nil, []byte{1, 2}, UnitSubstCost, 1); d != 2 {
		t.Fatalf("empty cyclic distance %v", d)
	}
}
