// Package expofmt parses the Prometheus text exposition format (0.0.4) with
// OpenMetrics exemplar suffixes — the exact dialect every /metrics surface in
// this repository emits. It began life as a test-only helper pinning the
// exemplar round-trip; it is now a supported package because the load
// generator (internal/loadgen) scrapes a live server through it to
// cross-validate client-observed load numbers against the server's own RED
// windows. The parser is deliberately strict: every sample's family must be
// preceded by its # HELP and # TYPE lines, sample lines must be
// `name[{labels}] value`, and exemplars must be `# {labels} value
// [timestamp]` — a malformed exposition is an error, never a silent skip,
// because a scrape that parses loosely cannot be trusted to verify anything.
package expofmt

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Sample is one parsed sample line. Exemplar holds the OpenMetrics exemplar
// labels (e.g. trace_id) when the line carries a `# {labels} value
// [timestamp]` suffix, nil otherwise.
type Sample struct {
	Name     string
	Labels   map[string]string
	Value    float64
	Exemplar map[string]string
}

// Exposition is one fully parsed scrape: the samples in emission order plus
// the per-family TYPE and HELP metadata.
type Exposition struct {
	Samples []Sample
	Types   map[string]string
	Help    map[string]string
}

// Parse reads one exposition body, enforcing the format contract described
// in the package comment. Errors carry the 1-based line number.
func Parse(body string) (*Exposition, error) {
	e := &Exposition{Types: map[string]string{}, Help: map[string]string{}}
	seen := map[string]bool{}
	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && e.Types[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for ln, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				return nil, fmt.Errorf("expofmt: line %d: HELP without text: %q", ln+1, line)
			}
			e.Help[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 {
				return nil, fmt.Errorf("expofmt: line %d: malformed TYPE: %q", ln+1, line)
			}
			e.Types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// An OpenMetrics exemplar rides after the sample value as
		// ` # {labels} value [timestamp]`; split it off before the value parse
		// below (whose LastIndex would otherwise grab the exemplar's trailing
		// timestamp).
		var exemplar map[string]string
		if i := strings.Index(line, " # {"); i >= 0 {
			ex := line[i+len(" # "):]
			end := strings.Index(ex, "}")
			if end < 0 {
				return nil, fmt.Errorf("expofmt: line %d: unterminated exemplar labels: %q", ln+1, line)
			}
			var err error
			if exemplar, err = parseLabels(ex[1:end]); err != nil {
				return nil, fmt.Errorf("expofmt: line %d: exemplar %v", ln+1, err)
			}
			fields := strings.Fields(ex[end+1:])
			if len(fields) < 1 || len(fields) > 2 {
				return nil, fmt.Errorf("expofmt: line %d: exemplar wants `value [timestamp]`, got %q", ln+1, ex[end+1:])
			}
			for _, f := range fields {
				if _, err := strconv.ParseFloat(f, 64); err != nil {
					return nil, fmt.Errorf("expofmt: line %d: bad exemplar number %q: %v", ln+1, f, err)
				}
			}
			line = strings.TrimSpace(line[:i])
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			return nil, fmt.Errorf("expofmt: line %d: malformed sample: %q", ln+1, line)
		}
		nameLabels, valStr := line[:sp], line[sp+1:]
		val, err := parseValue(valStr)
		if err != nil {
			return nil, fmt.Errorf("expofmt: line %d: bad sample value %q: %v", ln+1, valStr, err)
		}
		s := Sample{Labels: map[string]string{}, Value: val, Exemplar: exemplar}
		if i := strings.Index(nameLabels, "{"); i >= 0 {
			s.Name = nameLabels[:i]
			if s.Labels, err = parseLabels(strings.TrimSuffix(nameLabels[i+1:], "}")); err != nil {
				return nil, fmt.Errorf("expofmt: line %d: %v", ln+1, err)
			}
		} else {
			s.Name = nameLabels
		}
		fam := family(s.Name)
		if !seen[fam] {
			if e.Help[fam] == "" {
				return nil, fmt.Errorf("expofmt: line %d: sample for %s before its # HELP", ln+1, fam)
			}
			if e.Types[fam] == "" {
				return nil, fmt.Errorf("expofmt: line %d: sample for %s before its # TYPE", ln+1, fam)
			}
			seen[fam] = true
		}
		e.Samples = append(e.Samples, s)
	}
	return e, nil
}

// parseValue accepts the sample-value forms the exposition format allows,
// including +Inf/-Inf/NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(inner string) (map[string]string, error) {
	out := map[string]string{}
	for _, pair := range strings.Split(inner, ",") {
		if pair == "" {
			continue
		}
		kv := strings.SplitN(pair, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed label %q", pair)
		}
		out[kv[0]] = strings.Trim(kv[1], `"`)
	}
	return out, nil
}

// Find returns every sample of the named family (exact name match), in
// emission order.
func (e *Exposition) Find(name string) []Sample {
	var out []Sample
	for _, s := range e.Samples {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// matches reports whether the sample carries every label in want (a subset
// match: extra labels on the sample are fine).
func (s Sample) matches(want map[string]string) bool {
	for k, v := range want {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Value returns the value of the first sample named name whose labels
// contain every pair in labels (nil matches any). ok is false when no sample
// matches.
func (e *Exposition) Value(name string, labels map[string]string) (v float64, ok bool) {
	for _, s := range e.Samples {
		if s.Name == name && s.matches(labels) {
			return s.Value, true
		}
	}
	return 0, false
}

// Counter returns the integer value of a matching sample, 0 when absent —
// the convenient form for cumulative-counter deltas.
func (e *Exposition) Counter(name string, labels map[string]string) int64 {
	v, ok := e.Value(name, labels)
	if !ok {
		return 0
	}
	return int64(v)
}

// HistogramQuantile computes the nearest-rank q-quantile from family name's
// cumulative `_bucket` samples whose labels contain match. The returned
// bound is in the family's native unit (the `le` values); a quantile landing
// in the +Inf bucket reports math.Inf(1). ok is false when the histogram is
// absent or empty.
func (e *Exposition) HistogramQuantile(name string, match map[string]string, q float64) (bound float64, ok bool) {
	type bkt struct {
		le  float64
		cum float64
	}
	var buckets []bkt
	for _, s := range e.Find(name + "_bucket") {
		if !s.matches(match) {
			continue
		}
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			return 0, false
		}
		buckets = append(buckets, bkt{le: le, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	// Buckets are emitted in ascending le order with +Inf last; the last
	// cumulative count is the total.
	total := buckets[len(buckets)-1].cum
	if total <= 0 {
		return 0, false
	}
	rank := math.Floor(q*total + 0.5)
	if rank < 1 {
		rank = 1
	}
	for _, b := range buckets {
		if b.cum >= rank {
			return b.le, true
		}
	}
	return math.Inf(1), true
}
