package expofmt

import (
	"math"
	"strings"
	"testing"
)

const wellFormed = `# HELP demo_requests_total Requests served.
# TYPE demo_requests_total counter
demo_requests_total{endpoint="search",class="ok"} 12
demo_requests_total{endpoint="search",class="rejected"} 3
# HELP demo_latency_seconds Request latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{le="0.001"} 4
demo_latency_seconds_bucket{le="0.002"} 9 # {trace_id="77"} 0.0015 1700000000.5
demo_latency_seconds_bucket{le="+Inf"} 10
demo_latency_seconds_sum 0.02
demo_latency_seconds_count 10
# HELP demo_up 1 while serving.
# TYPE demo_up gauge
demo_up 1
`

func TestParseWellFormed(t *testing.T) {
	e, err := Parse(wellFormed)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Samples) != 8 {
		t.Fatalf("parsed %d samples, want 8", len(e.Samples))
	}
	if e.Types["demo_latency_seconds"] != "histogram" || e.Types["demo_requests_total"] != "counter" {
		t.Fatalf("types wrong: %v", e.Types)
	}
	if e.Help["demo_up"] != "1 while serving." {
		t.Fatalf("help wrong: %q", e.Help["demo_up"])
	}
	if got := e.Counter("demo_requests_total", map[string]string{"endpoint": "search", "class": "rejected"}); got != 3 {
		t.Fatalf("rejected counter = %d, want 3", got)
	}
	if _, ok := e.Value("demo_requests_total", map[string]string{"class": "nope"}); ok {
		t.Fatal("matched a nonexistent label set")
	}
	if v, ok := e.Value("demo_up", nil); !ok || v != 1 {
		t.Fatalf("demo_up = %v,%v", v, ok)
	}
	if got := len(e.Find("demo_latency_seconds_bucket")); got != 3 {
		t.Fatalf("Find returned %d buckets, want 3", got)
	}
}

func TestParseExemplar(t *testing.T) {
	e, err := Parse(wellFormed)
	if err != nil {
		t.Fatal(err)
	}
	var withEx *Sample
	for i := range e.Samples {
		if e.Samples[i].Exemplar != nil {
			if withEx != nil {
				t.Fatal("more than one exemplar parsed")
			}
			withEx = &e.Samples[i]
		}
	}
	if withEx == nil {
		t.Fatal("no exemplar parsed")
	}
	if withEx.Name != "demo_latency_seconds_bucket" || withEx.Labels["le"] != "0.002" {
		t.Fatalf("exemplar on the wrong sample: %+v", *withEx)
	}
	if withEx.Exemplar["trace_id"] != "77" {
		t.Fatalf("exemplar labels = %v", withEx.Exemplar)
	}
	if withEx.Value != 9 {
		t.Fatalf("exemplar-carrying sample value = %v, want 9", withEx.Value)
	}
}

func TestHistogramQuantile(t *testing.T) {
	e, err := Parse(wellFormed)
	if err != nil {
		t.Fatal(err)
	}
	// 10 observations: ranks 1..4 land in le=0.001, 5..9 in le=0.002, 10 in +Inf.
	if p50, ok := e.HistogramQuantile("demo_latency_seconds", nil, 0.50); !ok || p50 != 0.002 {
		t.Fatalf("p50 = %v,%v want 0.002", p50, ok)
	}
	if p10, ok := e.HistogramQuantile("demo_latency_seconds", nil, 0.10); !ok || p10 != 0.001 {
		t.Fatalf("p10 = %v,%v want 0.001", p10, ok)
	}
	if p99, ok := e.HistogramQuantile("demo_latency_seconds", nil, 0.99); !ok || !math.IsInf(p99, 1) {
		t.Fatalf("p99 = %v,%v want +Inf", p99, ok)
	}
	if _, ok := e.HistogramQuantile("demo_latency_seconds", map[string]string{"endpoint": "nope"}, 0.5); ok {
		t.Fatal("quantile over a nonexistent labelset reported ok")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"sample before HELP", "# TYPE x counter\nx 1\n", "before its # HELP"},
		{"sample before TYPE", "# HELP x y\nx 1\n", "before its # TYPE"},
		{"help without text", "# HELP x\n", "HELP without text"},
		{"malformed type", "# TYPE x\n", "malformed TYPE"},
		{"malformed sample", "# HELP x y\n# TYPE x counter\nx\n", "malformed sample"},
		{"bad value", "# HELP x y\n# TYPE x counter\nx ten\n", "bad sample value"},
		{"malformed label", "# HELP x y\n# TYPE x counter\nx{ab} 1\n", "malformed label"},
		{"unterminated exemplar", "# HELP x y\n# TYPE x counter\nx 1 # {a=\"1\" 2\n", "unterminated exemplar"},
		{"bad exemplar number", "# HELP x y\n# TYPE x counter\nx 1 # {a=\"1\"} nope\n", "bad exemplar number"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.body); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestParseSpecialValues(t *testing.T) {
	body := "# HELP x y\n# TYPE x gauge\nx{k=\"inf\"} +Inf\nx{k=\"ninf\"} -Inf\nx{k=\"nan\"} NaN\n"
	e, err := Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Value("x", map[string]string{"k": "inf"}); !math.IsInf(v, 1) {
		t.Errorf("+Inf parsed as %v", v)
	}
	if v, _ := e.Value("x", map[string]string{"k": "ninf"}); !math.IsInf(v, -1) {
		t.Errorf("-Inf parsed as %v", v)
	}
	if v, _ := e.Value("x", map[string]string{"k": "nan"}); !math.IsNaN(v) {
		t.Errorf("NaN parsed as %v", v)
	}
}
