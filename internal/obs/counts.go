package obs

// Counts is a plain-value copy of every scalar counter in a SearchStats
// record, cheap enough to take before and after a single comparison: one
// atomic load per field, no allocation, no histogram or trajectory copies.
// The trace layer attaches Counts deltas to spans so a span's attributes
// reconcile with the record the same way a full Snapshot does.
type Counts struct {
	Comparisons int64 `json:"comparisons,omitempty"`
	Rotations   int64 `json:"rotations,omitempty"`
	Steps       int64 `json:"steps,omitempty"`

	FullDistEvals int64 `json:"full_dist_evals,omitempty"`
	EarlyAbandons int64 `json:"early_abandons,omitempty"`

	WedgeNodeVisits    int64 `json:"wedge_node_visits,omitempty"`
	WedgeLeafVisits    int64 `json:"wedge_leaf_visits,omitempty"`
	WedgePrunedMembers int64 `json:"wedge_pruned_members,omitempty"`
	WedgeLeafLBPrunes  int64 `json:"wedge_leaf_lb_prunes,omitempty"`

	FFTRejects         int64 `json:"fft_rejects,omitempty"`
	FFTRejectedMembers int64 `json:"fft_rejected_members,omitempty"`
	FFTFallbacks       int64 `json:"fft_fallbacks,omitempty"`

	CancelledMembers int64 `json:"cancelled_members,omitempty"`

	IndexCandidates int64 `json:"index_candidates,omitempty"`
	IndexFetches    int64 `json:"index_fetches,omitempty"`
	DiskReads       int64 `json:"disk_reads,omitempty"`

	KChanges int64 `json:"k_changes,omitempty"`
}

// Counts loads the scalar counters. A nil receiver yields a zero Counts.
func (s *SearchStats) Counts() Counts {
	if s == nil {
		return Counts{}
	}
	return Counts{
		Comparisons:        s.comparisons.Load(),
		Rotations:          s.rotations.Load(),
		Steps:              s.steps.Load(),
		FullDistEvals:      s.fullDistEvals.Load(),
		EarlyAbandons:      s.earlyAbandons.Load(),
		WedgeNodeVisits:    s.wedgeNodeVisits.Load(),
		WedgeLeafVisits:    s.wedgeLeafVisits.Load(),
		WedgePrunedMembers: s.wedgePrunedMembers.Load(),
		WedgeLeafLBPrunes:  s.wedgeLeafLBPrunes.Load(),
		FFTRejects:         s.fftRejects.Load(),
		FFTRejectedMembers: s.fftRejectedMembers.Load(),
		FFTFallbacks:       s.fftFallbacks.Load(),
		CancelledMembers:   s.cancelledMembers.Load(),
		IndexCandidates:    s.indexCandidates.Load(),
		IndexFetches:       s.indexFetches.Load(),
		DiskReads:          s.diskReads.Load(),
		KChanges:           s.kChanges.Load(),
	}
}

// Sub returns the field-wise difference c - prev: the counter deltas spent
// between two Counts() calls on the same record.
func (c Counts) Sub(prev Counts) Counts {
	return Counts{
		Comparisons:        c.Comparisons - prev.Comparisons,
		Rotations:          c.Rotations - prev.Rotations,
		Steps:              c.Steps - prev.Steps,
		FullDistEvals:      c.FullDistEvals - prev.FullDistEvals,
		EarlyAbandons:      c.EarlyAbandons - prev.EarlyAbandons,
		WedgeNodeVisits:    c.WedgeNodeVisits - prev.WedgeNodeVisits,
		WedgeLeafVisits:    c.WedgeLeafVisits - prev.WedgeLeafVisits,
		WedgePrunedMembers: c.WedgePrunedMembers - prev.WedgePrunedMembers,
		WedgeLeafLBPrunes:  c.WedgeLeafLBPrunes - prev.WedgeLeafLBPrunes,
		FFTRejects:         c.FFTRejects - prev.FFTRejects,
		FFTRejectedMembers: c.FFTRejectedMembers - prev.FFTRejectedMembers,
		FFTFallbacks:       c.FFTFallbacks - prev.FFTFallbacks,
		CancelledMembers:   c.CancelledMembers - prev.CancelledMembers,
		IndexCandidates:    c.IndexCandidates - prev.IndexCandidates,
		IndexFetches:       c.IndexFetches - prev.IndexFetches,
		DiskReads:          c.DiskReads - prev.DiskReads,
		KChanges:           c.KChanges - prev.KChanges,
	}
}

// Add returns the field-wise sum c + other.
func (c Counts) Add(other Counts) Counts {
	return Counts{
		Comparisons:        c.Comparisons + other.Comparisons,
		Rotations:          c.Rotations + other.Rotations,
		Steps:              c.Steps + other.Steps,
		FullDistEvals:      c.FullDistEvals + other.FullDistEvals,
		EarlyAbandons:      c.EarlyAbandons + other.EarlyAbandons,
		WedgeNodeVisits:    c.WedgeNodeVisits + other.WedgeNodeVisits,
		WedgeLeafVisits:    c.WedgeLeafVisits + other.WedgeLeafVisits,
		WedgePrunedMembers: c.WedgePrunedMembers + other.WedgePrunedMembers,
		WedgeLeafLBPrunes:  c.WedgeLeafLBPrunes + other.WedgeLeafLBPrunes,
		FFTRejects:         c.FFTRejects + other.FFTRejects,
		FFTRejectedMembers: c.FFTRejectedMembers + other.FFTRejectedMembers,
		FFTFallbacks:       c.FFTFallbacks + other.FFTFallbacks,
		CancelledMembers:   c.CancelledMembers + other.CancelledMembers,
		IndexCandidates:    c.IndexCandidates + other.IndexCandidates,
		IndexFetches:       c.IndexFetches + other.IndexFetches,
		DiskReads:          c.DiskReads + other.DiskReads,
		KChanges:           c.KChanges + other.KChanges,
	}
}

// Reconciles reports whether the outcome buckets account for every rotation
// covered — the same identity Snapshot.Reconciles checks, applied to a delta.
func (c Counts) Reconciles() bool {
	return c.Rotations == c.FullDistEvals+c.EarlyAbandons+
		c.WedgePrunedMembers+c.WedgeLeafLBPrunes+c.FFTRejectedMembers+
		c.CancelledMembers
}

// IsZero reports whether every field is zero.
func (c Counts) IsZero() bool {
	return c == Counts{}
}
